(** File identifiers.

    §3.1: a page's label carries "a file identifier — two words" and "a
    version number — one word"; the pair (written FV in the paper) names
    a file absolutely. §3.4: "we reserve a subset of the file identifiers
    for directory files" so the scavenger can find every directory — here
    the subset is the ids with the directory bit set.

    The two identifier words hold a 30-bit serial number, the directory
    bit, and a reserved bit that is always 0 in a valid id. The reserved
    bit is what keeps real labels distinguishable from the all-ones
    pattern of a free page and from the bad-page marker. Serial 0 and
    versions 0 and 0xffff are invalid for the same reason. *)

module Word = Alto_machine.Word

type t = private { serial : int; version : int; directory : bool }

val max_serial : int
(** [2^30 - 1]. *)

val make : ?directory:bool -> serial:int -> version:int -> unit -> t
(** Raises [Invalid_argument] on serial outside [1, max_serial] or
    version outside [1, 0xfffe]. *)

val descriptor : t
(** The disk descriptor file's well-known id (serial 1). *)

val root_directory : t
(** The root directory's well-known id (serial 2, a directory). *)

val first_user_serial : int
(** Serials below this are reserved for system files. *)

val is_directory : t -> bool

val next_version : t -> t
(** Same serial, version + 1 — the id a file gets when recreated under
    the same name. Raises [Invalid_argument] at the version ceiling. *)

val to_words : t -> Word.t * Word.t * Word.t
(** The two identifier words and the version word, in label order. *)

val of_words : Word.t -> Word.t -> Word.t -> (t, string) result

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
