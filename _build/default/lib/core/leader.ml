module Word = Alto_machine.Word
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address

type t = {
  created_s : int;
  written_s : int;
  read_s : int;
  name : string;
  last_page : int;
  last_addr : Disk_address.t;
  maybe_consecutive : bool;
}

let max_name_length = 63

(* Leader-page value layout (word offsets):
     0      magic
     1-2    created (seconds, hi/lo)
     3-4    written
     5-6    read
     7      name byte count
     8-39   name, packed two bytes per word
     40     last page number
     41     last page address
     42     maybe-consecutive flag *)
let magic = 0x1EAD
let name_offset = 8
let last_page_offset = 40
let last_addr_offset = 41
let consecutive_offset = 42

let check_name name =
  if String.length name > max_name_length then
    invalid_arg "Leader: name longer than 63 bytes"
  else if String.contains name '\000' then invalid_arg "Leader: name contains NUL"

let make ?(created_s = 0) ?(written_s = 0) ?(read_s = 0) ~name ~last_page
    ~last_addr ~maybe_consecutive () =
  check_name name;
  { created_s; written_s; read_s; name; last_page; last_addr; maybe_consecutive }

let put32 value offset n =
  value.(offset) <- Word.of_int (n lsr 16);
  value.(offset + 1) <- Word.of_int n

let get32 value offset =
  (Word.to_int value.(offset) lsl 16) lor Word.to_int value.(offset + 1)

let to_value t =
  let value = Array.make Sector.value_words Word.zero in
  value.(0) <- Word.of_int magic;
  put32 value 1 t.created_s;
  put32 value 3 t.written_s;
  put32 value 5 t.read_s;
  value.(7) <- Word.of_int_exn (String.length t.name);
  Array.blit (Word.words_of_string t.name) 0 value name_offset
    ((String.length t.name + 1) / 2);
  value.(last_page_offset) <- Word.of_int_exn t.last_page;
  value.(last_addr_offset) <- Disk_address.to_word t.last_addr;
  value.(consecutive_offset) <- (if t.maybe_consecutive then Word.one else Word.zero);
  value

let of_value value =
  if Array.length value <> Sector.value_words then Error "leader: wrong value size"
  else if Word.to_int value.(0) <> magic then Error "leader: bad magic"
  else
    let name_len = Word.to_int value.(7) in
    if name_len > max_name_length then Error "leader: name length corrupt"
    else
      let name_words = Array.sub value name_offset ((name_len + 1) / 2) in
      Ok
        {
          created_s = get32 value 1;
          written_s = get32 value 3;
          read_s = get32 value 5;
          name = Word.string_of_words name_words ~len:name_len;
          last_page = Word.to_int value.(last_page_offset);
          last_addr = Disk_address.of_word value.(last_addr_offset);
          maybe_consecutive = not (Word.equal value.(consecutive_offset) Word.zero);
        }

let with_last t ~last_page ~last_addr = { t with last_page; last_addr }

let with_times t ?written_s ?read_s () =
  {
    t with
    written_s = Option.value written_s ~default:t.written_s;
    read_s = Option.value read_s ~default:t.read_s;
  }

let with_consecutive t flag = { t with maybe_consecutive = flag }

let equal a b =
  a.created_s = b.created_s && a.written_s = b.written_s && a.read_s = b.read_s
  && String.equal a.name b.name
  && a.last_page = b.last_page
  && Disk_address.equal a.last_addr b.last_addr
  && a.maybe_consecutive = b.maybe_consecutive

let pp fmt t =
  Format.fprintf fmt "leader %S (last page %d @@ %a%s)" t.name t.last_page
    Disk_address.pp t.last_addr
    (if t.maybe_consecutive then ", consecutive" else "")
