(** Journaled directories — the extension §3.5 sketches and declines.

    "As we have noted, scavenging cannot fully reconstruct lost
    directories. This could be accomplished by writing a journal of all
    changes to directories and taking an occasional snapshot of all the
    directories. By applying the changes in the journal to the snapshot
    we would get back the current state. … For the reasons already
    mentioned, we do not consider our directories important enough to
    warrant such attentions. If the user disagrees, he is free to modify
    the system-provided procedures for managing directories, or to write
    his own."

    This module is that user, disagreeing. It wraps the standard
    directory package: every mutation is appended to a journal file
    before it is applied (write-ahead), and {!take_snapshot} copies the
    directory's current contents to a snapshot file and empties the
    journal. {!recover} rebuilds the directory from snapshot + journal
    after the directory file itself has been destroyed — restoring the
    {e names}, which is exactly what the scavenger alone cannot do (it
    re-adopts orphans under their leader names, losing any aliases and
    any entry whose name differed from the leader name).

    The package is built entirely from public operations of {!File} and
    {!Directory} — no private hooks — which is the open-system claim
    made good: a user package replacing a system facility wholesale. *)

module Disk_address = Alto_disk.Disk_address

type t
(** A directory with its journal and snapshot files. *)

type error =
  | Dir_error of Directory.error
  | File_error of File.error
  | Journal_corrupt of string

val pp_error : Format.formatter -> error -> unit

val journal_name : string -> string
(** ["<name>;journal"] — the journal file's catalogue name. *)

val snapshot_name : string -> string

val create : Fs.t -> parent:File.t -> name:string -> (t, error) result
(** Make a fresh journaled directory called [name], cataloguing it and
    its journal and snapshot files in [parent]. *)

val open_existing : Fs.t -> parent:File.t -> name:string -> (t, error) result

val directory : t -> File.t
(** The underlying directory file — readable with the ordinary
    {!Directory} operations. *)

val add : t -> name:string -> Page.full_name -> (unit, error) result
val remove : t -> string -> (bool, error) result
val lookup : t -> string -> (Directory.entry option, error) result
val entries : t -> (Directory.entry list, error) result

val take_snapshot : t -> (unit, error) result
(** Copy the directory's current contents to the snapshot file and
    truncate the journal. *)

val journal_records : t -> (int, error) result
(** Mutations recorded since the last snapshot. *)

type recovery = {
  entries_restored : int;
  records_replayed : int;
}

val recover : t -> (recovery, error) result
(** Rebuild the directory's contents from snapshot + journal, replacing
    whatever (possibly nothing) the directory file currently holds. Use
    after the scavenger has put the volume back together but could not
    resurrect this directory's names. *)
