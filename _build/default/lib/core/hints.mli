(** The hint recovery ladder (§3.6).

    "The purpose of hints is to increase performance." A program holding
    the full name (FV, i) of a page and a hint address reads it directly;
    when the label check refutes the hint it climbs, in order:

    + follow links from another full name it holds for the file
      (typically the leader page);
    + look up the FV in a directory to obtain the proper disk address;
    + look up the string name of the file to obtain a new FV and address
      (the file was recreated under the same name);
    + invoke the Scavenger "to reconstruct the entire file system and all
      the directories, and then retry one of the earlier steps".

    {!read_page} executes that ladder and reports which rungs were
    climbed and what each cost in simulated time — experiment E4 is this
    module run under a stopwatch. The paper's complaint that programs too
    often die with "Hint failed, please reinstall" instead of recovering
    automatically is exactly a failure to call something like this. *)

module Word = Alto_machine.Word
module Disk_address = Alto_disk.Disk_address

type rung =
  | Direct  (** The page hint itself. *)
  | Leader_chain  (** Links from the leader-page hint. *)
  | Directory_fid  (** Directory scan for the file id. *)
  | Directory_name  (** Directory lookup by string name. *)
  | Scavenge  (** Full reconstruction, then retry. *)

val pp_rung : Format.formatter -> rung -> unit

type attempt = { rung : rung; elapsed_us : int; succeeded : bool }

type request = {
  req_name : string;  (** String name, for the directory rung. *)
  req_fid : File_id.t option;  (** FV, when the program still has one. *)
  req_page : int;  (** The page wanted. *)
  req_page_hint : Disk_address.t option;
  req_leader_hint : Disk_address.t option;
}

type success = {
  fs : Fs.t;
      (** The volume to use from now on — a fresh handle if the ladder
          reached the scavenger. *)
  value : Word.t array;
  label : Label.t;
  resolved : Page.full_name;  (** The page's now-correct full name. *)
  attempts : attempt list;  (** Every rung tried, in order. *)
}

type failure = {
  reason : string;
  failed_attempts : attempt list;
}

val read_page : Fs.t -> directory:File.t -> request -> (success, failure) result
(** Climb the ladder until the page is in hand. [directory] is where the
    FV and string-name rungs look (after a scavenge, the corresponding
    directory on the rebuilt volume — located by name — is used). *)
