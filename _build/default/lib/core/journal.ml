module Word = Alto_machine.Word
module Disk_address = Alto_disk.Disk_address

type t = {
  dir : File.t;
  journal : File.t;
  snapshot : File.t;
}

type error =
  | Dir_error of Directory.error
  | File_error of File.error
  | Journal_corrupt of string

let pp_error fmt = function
  | Dir_error e -> Directory.pp_error fmt e
  | File_error e -> File.pp_error fmt e
  | Journal_corrupt msg -> Format.fprintf fmt "journal corrupt: %s" msg

let ( let* ) = Result.bind
let dir_err r = Result.map_error (fun e -> Dir_error e) r
let file_err r = Result.map_error (fun e -> File_error e) r

let journal_name name = name ^ ";journal"
let snapshot_name name = name ^ ";snapshot"

(* {2 Journal records}

   One record per mutation, in words:
     0        operation: 1 = add, 2 = remove
     1        name length in bytes
     2..      packed name
     then     file id (3 words) and leader address (1 word); zeros for
              remove. *)

let op_add = 1
let op_remove = 2

let encode_record ~op ~name fn =
  let name_words = Word.words_of_string name in
  let fid_words =
    match fn with
    | Some (fn : Page.full_name) ->
        let w0, w1, v = File_id.to_words fn.Page.abs.Page.fid in
        [| w0; w1; v; Disk_address.to_word fn.Page.addr |]
    | None -> Array.make 4 Word.zero
  in
  Array.concat
    [
      [| Word.of_int_exn op; Word.of_int_exn (String.length name) |];
      name_words;
      fid_words;
    ]

let decode_records words =
  let total = Array.length words in
  let rec go acc pos =
    if pos >= total then Ok (List.rev acc)
    else if pos + 2 > total then Error (Journal_corrupt "truncated record header")
    else
      let op = Word.to_int words.(pos) in
      let name_len = Word.to_int words.(pos + 1) in
      let name_words = (name_len + 1) / 2 in
      let record_end = pos + 2 + name_words + 4 in
      if name_len > Directory.max_name_length then
        Error (Journal_corrupt "absurd name length")
      else if record_end > total then Error (Journal_corrupt "truncated record")
      else
        let name =
          Word.string_of_words (Array.sub words (pos + 2) name_words) ~len:name_len
        in
        if op = op_add then
          match
            File_id.of_words
              words.(pos + 2 + name_words)
              words.(pos + 2 + name_words + 1)
              words.(pos + 2 + name_words + 2)
          with
          | Error msg -> Error (Journal_corrupt msg)
          | Ok fid ->
              let addr = Disk_address.of_word words.(pos + 2 + name_words + 3) in
              go ((`Add (name, Page.full_name fid ~page:0 ~addr)) :: acc) record_end
        else if op = op_remove then go (`Remove name :: acc) record_end
        else Error (Journal_corrupt (Printf.sprintf "unknown operation %d" op))
  in
  go [] 0

let append_record t record =
  let pos = File.byte_length t.journal / 2 in
  file_err (File.write_words t.journal ~pos record)

(* {2 Construction} *)

let catalogued fs parent name ~directory =
  let* file =
    file_err
      (if directory then File.create_directory_file fs ~name else File.create fs ~name)
  in
  let* () = dir_err (Directory.add parent ~name (File.leader_name file)) in
  Ok file

let create fs ~parent ~name =
  let* dir = catalogued fs parent name ~directory:true in
  let* journal = catalogued fs parent (journal_name name) ~directory:false in
  let* snapshot = catalogued fs parent (snapshot_name name) ~directory:false in
  Ok { dir; journal; snapshot }

let open_one fs parent name =
  let* entry = dir_err (Directory.lookup parent name) in
  match entry with
  | None -> Error (Dir_error (Directory.Malformed (Printf.sprintf "no file %S" name)))
  | Some e -> file_err (File.open_leader fs e.Directory.entry_file)

let open_existing fs ~parent ~name =
  let* dir = open_one fs parent name in
  let* journal = open_one fs parent (journal_name name) in
  let* snapshot = open_one fs parent (snapshot_name name) in
  Ok { dir; journal; snapshot }

let directory t = t.dir

(* {2 Journaled mutations: log first, then apply} *)

let add t ~name fn =
  let* () = append_record t (encode_record ~op:op_add ~name (Some fn)) in
  dir_err (Directory.add t.dir ~name fn)

let remove t name =
  let* () = append_record t (encode_record ~op:op_remove ~name None) in
  dir_err (Directory.remove t.dir name)

let lookup t name = dir_err (Directory.lookup t.dir name)
let entries t = dir_err (Directory.entries t.dir)

type recovery = { entries_restored : int; records_replayed : int }

(* {2 Snapshot and recovery} *)

let take_snapshot t =
  let len = File.byte_length t.dir in
  let* bytes = file_err (File.read_bytes t.dir ~pos:0 ~len) in
  let* () = file_err (File.truncate t.snapshot ~len:0) in
  let* () =
    if Bytes.length bytes = 0 then Ok ()
    else file_err (File.write_bytes t.snapshot ~pos:0 (Bytes.to_string bytes))
  in
  let* () = file_err (File.truncate t.journal ~len:0) in
  let* () = file_err (File.flush_leader t.snapshot) in
  file_err (File.flush_leader t.journal)

let read_journal t =
  let total = File.byte_length t.journal / 2 in
  let* words = file_err (File.read_words t.journal ~pos:0 ~len:total) in
  decode_records words

let journal_records t =
  let* records = read_journal t in
  Ok (List.length records)

let recover t =
  (* The snapshot holds directory-format bytes, so the standard scanner
     reads it directly. *)
  let* base =
    match Directory.entries t.snapshot with
    | Ok entries -> Ok entries
    | Error e -> Error (Dir_error e)
  in
  let* records = read_journal t in
  let apply entries = function
    | `Add (name, fn) ->
        (* Replace any stale same-name entry, as Directory.add would have
           refused a duplicate at logging time. *)
        { Directory.entry_name = name; entry_file = fn }
        :: List.filter (fun (e : Directory.entry) -> not (String.equal e.Directory.entry_name name)) entries
    | `Remove name ->
        List.filter
          (fun (e : Directory.entry) -> not (String.equal e.Directory.entry_name name))
          entries
  in
  let final = List.rev (List.fold_left apply (List.rev base) records) in
  let* () = dir_err (Directory.rewrite t.dir final) in
  Ok { entries_restored = List.length final; records_replayed = List.length records }
