(** Installed hint files (§3.6).

    "Many programs use a collection of auxiliary files to which they need
    rapid access. … When these programs are 'installed', they create the
    necessary files and store hints for them in a data structure that is
    then written onto a state file. Subsequently the program can start
    up, read the state file, and access all its auxiliary files at
    maximum disk speed. If a hint fails, e.g. because a scratch file got
    deleted or moved, the program must repeat the installation phase."

    This module is that pattern, packaged: {!install} makes the files and
    gathers the hints, {!save}/{!load} move the hint table through a
    state file with a well-known name, and {!fast_open} opens everything
    by hints alone — succeeding in a handful of label-checked reads, or
    failing with [`Reinstall_required] and harming nothing. *)

module Disk_address = Alto_disk.Disk_address

type entry = {
  file_name : string;
  leader : Page.full_name;
  last_page : int;  (** Hint to the file's last page… *)
  last_addr : Disk_address.t;  (** …and its address. *)
}

type state = entry list

type error =
  | Dir_error of Directory.error
  | File_error of File.error
  | State_malformed of string

val pp_error : Format.formatter -> error -> unit

val install :
  Fs.t -> directory:File.t -> names:string list -> (state, error) result
(** Ensure each named file exists (creating and cataloguing missing
    ones) and collect fresh hints for all of them. *)

val save :
  Fs.t -> directory:File.t -> state_name:string -> state -> (unit, error) result
(** Write the hint table to the state file called [state_name] (created
    on first use), replacing previous contents. *)

val load :
  Fs.t -> directory:File.t -> state_name:string -> (state option, error) result
(** [Ok None] when no state file exists yet. *)

val load_from : File.t -> (state, error) result
(** Read the hint table from an already-open state file — for programs
    that remember their state file's full name (in a world image, say)
    and so never touch a directory on the fast path. *)

val fast_open : Fs.t -> state -> (File.t list, [ `Reinstall_required of string ]) result
(** Open every file through its saved hints only — no directory lookups.
    Any stale hint means the installation is out of date. *)
