(** The compacting scavenger (§3.5): "an in-place permutation of the file
    pages on the disk so that the pages of each file are in consecutive
    sectors. This arrangement typically increases the speed with which the
    files can be read sequentially by an order of magnitude over what is
    possible if the pages have become scattered."

    Files are laid out one after another starting just past the disk
    descriptor, each as one consecutive run (bad sectors are skipped,
    splitting the run but nothing else). The permutation is executed with
    ordinary timed disk operations and one in-memory sector buffer, so the
    compactor works on a completely full pack. Moved pages are written
    with their final links; a repair pass fixes the stragglers whose
    neighbours moved out from under them. Vacated sectors are freed, every
    leader's hints are refreshed (and its maybe-consecutive flag set), and
    directory entries are re-aimed at the new leader addresses. *)

type report = {
  pages_placed : int;  (** Pages now sitting in their planned slot. *)
  moves : int;  (** Physical sector copies performed. *)
  links_rewritten : int;
  sectors_freed : int;  (** Stale copies and garbage erased. *)
  leaders_updated : int;
  entries_fixed : int;  (** Directory entries re-aimed. *)
  files_consecutive : int;  (** Files whose pages ended fully consecutive. *)
  files_total : int;
  duration_us : int;
}

val pp_report : Format.formatter -> report -> unit

val compact : Fs.t -> (report, string) result
(** Compact a mounted, structurally sound volume (run {!Scavenger} first
    if in doubt). The volume handle's map is updated in place and the
    descriptor flushed. *)

val consecutive_fraction : Fs.t -> File.t -> (float, File.error) result
(** Fraction of a file's page transitions that are physically adjacent —
    0.0 for fully scattered, 1.0 for fully consecutive. Experiments use
    this as the fragmentation measure. *)
