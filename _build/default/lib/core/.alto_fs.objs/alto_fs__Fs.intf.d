lib/core/fs.mli: Alto_disk Alto_machine File_id Format Label Page Random
