lib/core/directory.mli: Alto_disk Alto_machine File Format Fs Page
