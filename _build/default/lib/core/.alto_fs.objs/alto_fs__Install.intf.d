lib/core/install.mli: Alto_disk Directory File Format Fs Page
