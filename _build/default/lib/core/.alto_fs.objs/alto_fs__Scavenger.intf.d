lib/core/scavenger.mli: Alto_disk Format Fs
