lib/core/compactor.mli: File Format Fs
