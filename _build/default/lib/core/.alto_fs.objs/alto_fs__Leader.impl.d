lib/core/leader.ml: Alto_disk Alto_machine Array Format Option String
