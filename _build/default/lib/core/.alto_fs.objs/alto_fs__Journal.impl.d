lib/core/journal.ml: Alto_disk Alto_machine Array Bytes Directory File File_id Format List Page Printf Result String
