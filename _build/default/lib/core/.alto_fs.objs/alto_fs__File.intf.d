lib/core/file.mli: Alto_disk Alto_machine Bytes File_id Format Fs Leader Page
