lib/core/hints.ml: Alto_disk Alto_machine Directory File File_id Format Fs Label Leader List Page Printf Scavenger
