lib/core/file.ml: Alto_disk Alto_machine Array Bytes Char File_id Format Fs Label Leader List Option Page Printf Result String
