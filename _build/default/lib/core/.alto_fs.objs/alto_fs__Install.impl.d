lib/core/install.ml: Alto_disk Alto_machine Array Directory File File_id Format Leader List Page Printf Result String
