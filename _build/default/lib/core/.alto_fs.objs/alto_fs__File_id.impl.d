lib/core/file_id.ml: Alto_machine Format Hashtbl Printf Stdlib
