lib/core/fs.ml: Alto_disk Alto_machine Array File_id Format Label Leader List Page Random Result
