lib/core/journal.mli: Alto_disk Directory File Format Fs Page
