lib/core/page.ml: Alto_disk Alto_machine Array File_id Format Label
