lib/core/file_id.mli: Alto_machine Format
