lib/core/page.mli: Alto_disk Alto_machine File_id Format Label
