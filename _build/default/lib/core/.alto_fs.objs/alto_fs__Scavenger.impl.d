lib/core/scavenger.ml: Alto_disk Alto_machine Array Directory File File_id Format Fs Hashtbl Label Leader List Option Page Printf String Sweep
