lib/core/hints.mli: Alto_disk Alto_machine File File_id Format Fs Label Page
