lib/core/leader.mli: Alto_disk Alto_machine Format
