lib/core/label.ml: Alto_disk Alto_machine Array File_id Format
