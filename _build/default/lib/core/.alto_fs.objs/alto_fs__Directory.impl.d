lib/core/directory.ml: Alto_disk Alto_machine Array File File_id Format Fs Leader List Option Page Printf Result String
