lib/core/sweep.ml: Alto_disk Alto_machine Array Format Label Page
