lib/core/label.mli: Alto_disk Alto_machine File_id Format
