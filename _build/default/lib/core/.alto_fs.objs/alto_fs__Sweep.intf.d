lib/core/sweep.mli: Alto_disk Format Label
