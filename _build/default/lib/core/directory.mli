(** Directories (§3.4).

    A directory is just a file "which contains a set of pairs (string,
    full name)". Nothing else is special about it: a file may appear in
    any number of directories, directories may form an arbitrary directed
    graph, and destroying one loses only the names it held, never the
    files. Directory files carry the reserved (directory-flagged) file
    ids so the scavenger can enumerate them.

    Entry encoding, in words:
    {v word 0   flags * 256 + entry length in words (flags: 1 live, 0 free)
       word 1-3 file id of the named file
       word 4   leader-page address (a hint, corrected on use)
       word 5   name length in bytes
       word 6.. name, packed two bytes per word v}
    A free slot keeps its length word so the scan can skip it; adding an
    entry reuses the first free slot that fits. *)

module Word = Alto_machine.Word
module Disk_address = Alto_disk.Disk_address

type entry = {
  entry_name : string;
  entry_file : Page.full_name;  (** Page 0 of the named file. *)
}

type error =
  | File_error of File.error
  | Malformed of string  (** The directory's contents do not scan. *)
  | Name_too_long of string

val pp_error : Format.formatter -> error -> unit

val max_name_length : int

val create : Fs.t -> name:string -> (File.t, error) result
(** A fresh, empty directory file (not itself entered anywhere). *)

val open_root : Fs.t -> (File.t, error) result
(** The root directory named by the disk descriptor. *)

val add : File.t -> name:string -> Page.full_name -> (unit, error) result
(** Add the pair. An existing live entry with the same name is an error
    ([Malformed "duplicate"]); names are compared exactly. *)

val lookup : File.t -> string -> (entry option, error) result

val remove : File.t -> string -> (bool, error) result
(** [true] when an entry was removed. *)

val update_address : File.t -> string -> Disk_address.t -> (bool, error) result
(** Refresh the address hint of an entry in place — what a client does
    after climbing the recovery ladder, and what the scavenger does for
    every entry it verifies. *)

val entries : File.t -> (entry list, error) result
(** Live entries in file order. *)

val rewrite : File.t -> entry list -> (unit, error) result
(** Replace the directory's whole contents — the scavenger's way of
    dropping dangling entries wholesale. *)

val salvage : File.t -> entry list * bool
(** Read as many live entries as possible, stopping at the first slot
    that does not scan; the boolean reports whether anything was
    unreadable. The scavenger uses this where {!entries} would refuse. *)

val entry_words : string -> int
(** Size in words of an entry with this name. *)
