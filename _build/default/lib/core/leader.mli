(** Leader pages (§3.2).

    Page 0 of every file "contains all the properties of the file other
    than its length and its data": the three dates and the leader name
    are absolute; the last-page hint and the maybe-consecutive flag are
    hints. The leader name exists solely so that the scavenger can
    re-attach a file to a directory when every directory entry for it has
    been lost (§3.4, §3.5). *)

module Word = Alto_machine.Word
module Disk_address = Alto_disk.Disk_address

type t = {
  created_s : int;  (** Creation time, seconds (absolute). *)
  written_s : int;  (** Last write (absolute). *)
  read_s : int;  (** Last read (absolute). *)
  name : string;  (** The leader name (absolute). *)
  last_page : int;  (** Page number of the last page (hint). *)
  last_addr : Disk_address.t;  (** Its disk address (hint). *)
  maybe_consecutive : bool;
      (** Set when the file was laid out consecutively; a program "is
          free to assume that a file is consecutive" and let the label
          check catch it out (hint). *)
}

val max_name_length : int
(** 63 bytes. *)

val make :
  ?created_s:int ->
  ?written_s:int ->
  ?read_s:int ->
  name:string ->
  last_page:int ->
  last_addr:Disk_address.t ->
  maybe_consecutive:bool ->
  unit ->
  t
(** Raises [Invalid_argument] on an over-long or NUL-containing name. *)

val to_value : t -> Word.t array
(** The full 256-word leader-page image. *)

val of_value : Word.t array -> (t, string) result

val with_last : t -> last_page:int -> last_addr:Disk_address.t -> t
val with_times : t -> ?written_s:int -> ?read_s:int -> unit -> t
val with_consecutive : t -> bool -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
