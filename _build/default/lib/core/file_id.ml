module Word = Alto_machine.Word

type t = { serial : int; version : int; directory : bool }

let max_serial = (1 lsl 30) - 1

(* Word 0 layout: bit 15 = directory flag, bit 14 = reserved (always 0
   in a valid id — this bit distinguishes valid labels from the all-ones
   free pattern and the bad-page marker), bits 13-0 = serial high part.
   Word 1 = serial low 16 bits. *)
let reserved_bit = 0x4000

let make ?(directory = false) ~serial ~version () =
  if serial < 1 || serial > max_serial then
    invalid_arg (Printf.sprintf "File_id.make: serial %d out of range" serial)
  else if version < 1 || version > 0xfffe then
    invalid_arg (Printf.sprintf "File_id.make: version %d out of range" version)
  else { serial; version; directory }

let descriptor = make ~serial:1 ~version:1 ()
let root_directory = make ~directory:true ~serial:2 ~version:1 ()
let first_user_serial = 16

let is_directory t = t.directory

let next_version t = make ~directory:t.directory ~serial:t.serial ~version:(t.version + 1) ()

let to_words t =
  let w0 = (if t.directory then 0x8000 else 0) lor (t.serial lsr 16) in
  (Word.of_int_exn w0, Word.of_int_exn (t.serial land 0xffff), Word.of_int_exn t.version)

let of_words w0 w1 v =
  let w0 = Word.to_int w0 and w1 = Word.to_int w1 and v = Word.to_int v in
  if w0 land reserved_bit <> 0 then Error "file id: reserved bit set"
  else
    let serial = ((w0 land 0x3fff) lsl 16) lor w1 in
    if serial < 1 then Error "file id: serial 0"
    else if v < 1 || v > 0xfffe then Error "file id: bad version"
    else Ok { serial; version = v; directory = w0 land 0x8000 <> 0 }

let equal a b = a.serial = b.serial && a.version = b.version && a.directory = b.directory

let compare a b =
  match Stdlib.compare a.serial b.serial with
  | 0 -> Stdlib.compare (a.version, a.directory) (b.version, b.directory)
  | c -> c

let hash t = Hashtbl.hash (t.serial, t.version, t.directory)

let pp fmt t =
  Format.fprintf fmt "%s%d!%d" (if t.directory then "D" else "F") t.serial t.version
