module Word = Alto_machine.Word
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address

type t = {
  fid : File_id.t;
  page : int;
  length : int;
  next : Disk_address.t;
  prev : Disk_address.t;
}

let max_length = Sector.bytes_per_page

let make ~fid ~page ~length ~next ~prev =
  if page < 0 || page > 0xffff then invalid_arg "Label.make: page number out of range"
  else if length < 0 || length > max_length then
    invalid_arg "Label.make: length out of [0, 512]"
  else { fid; page; length; next; prev }

let to_words t =
  let w0, w1, v = File_id.to_words t.fid in
  [|
    w0;
    w1;
    v;
    Word.of_int_exn t.page;
    Word.of_int_exn t.length;
    Disk_address.to_word t.next;
    Disk_address.to_word t.prev;
  |]

let ones = Word.of_int 0xffff

(* The bad marker sets only the reserved bit in word 0; no valid file id
   can produce it, and it differs from the free pattern in every other
   word. *)
let bad_marker = Word.of_int 0x4000

let free_words () = Array.make Sector.label_words ones
let bad_words () = Array.append [| bad_marker |] (Array.make (Sector.label_words - 1) Word.zero)
let free_value () = Array.make Sector.value_words ones

let check_size ws =
  if Array.length ws <> Sector.label_words then
    invalid_arg "Label: label image must be 7 words"

type classified = Valid of t | Free | Bad | Garbage of string

let classify ws =
  check_size ws;
  if Array.for_all (fun w -> Word.equal w ones) ws then Free
  else if Word.equal ws.(0) bad_marker then Bad
  else
    match File_id.of_words ws.(0) ws.(1) ws.(2) with
    | Error e -> Garbage e
    | Ok fid ->
        let length = Word.to_int ws.(4) in
        if length > max_length then Garbage "length exceeds 512 bytes"
        else
          Valid
            {
              fid;
              page = Word.to_int ws.(3);
              length;
              next = Disk_address.of_word ws.(5);
              prev = Disk_address.of_word ws.(6);
            }

let of_words ws =
  match classify ws with
  | Valid t -> Ok t
  | Free -> Error "label: page is free"
  | Bad -> Error "label: page is marked bad"
  | Garbage e -> Error ("label: " ^ e)

let check_name fid ~page =
  let w0, w1, v = File_id.to_words fid in
  [| w0; w1; v; Word.of_int_exn page; Word.zero; Word.zero; Word.zero |]

let check_free = free_words

let equal a b =
  File_id.equal a.fid b.fid && a.page = b.page && a.length = b.length
  && Disk_address.equal a.next b.next
  && Disk_address.equal a.prev b.prev

let pp fmt t =
  Format.fprintf fmt "(%a, %d) L=%d NL=%a PL=%a" File_id.pp t.fid t.page t.length
    Disk_address.pp t.next Disk_address.pp t.prev
