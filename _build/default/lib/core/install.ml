module Word = Alto_machine.Word
module Disk_address = Alto_disk.Disk_address

type entry = {
  file_name : string;
  leader : Page.full_name;
  last_page : int;
  last_addr : Disk_address.t;
}

type state = entry list

type error =
  | Dir_error of Directory.error
  | File_error of File.error
  | State_malformed of string

let pp_error fmt = function
  | Dir_error e -> Directory.pp_error fmt e
  | File_error e -> File.pp_error fmt e
  | State_malformed msg -> Format.fprintf fmt "state file malformed: %s" msg

let ( let* ) = Result.bind
let dir_err r = Result.map_error (fun e -> Dir_error e) r
let file_err r = Result.map_error (fun e -> File_error e) r

let entry_of_file file =
  let* last_fn = file_err (File.page_name file (max 1 (File.last_page file))) in
  Ok
    {
      file_name = (File.leader file).Leader.name;
      leader = File.leader_name file;
      last_page = File.last_page file;
      last_addr = last_fn.Page.addr;
    }

let install fs ~directory ~names =
  let rec each acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest ->
        let* file =
          let* existing = dir_err (Directory.lookup directory name) in
          match existing with
          | Some e -> file_err (File.open_leader fs e.Directory.entry_file)
          | None ->
              let* file = file_err (File.create fs ~name) in
              let* () = dir_err (Directory.add directory ~name (File.leader_name file)) in
              Ok file
        in
        let* entry = entry_of_file file in
        each (entry :: acc) rest
  in
  each [] names

(* State serialization: [count; per entry: fid (3 words), leader addr,
   last page, last addr, name length, packed name]. *)
let encode state =
  let encode_entry e =
    let w0, w1, v = File_id.to_words e.leader.Page.abs.Page.fid in
    Array.concat
      [
        [|
          w0;
          w1;
          v;
          Disk_address.to_word e.leader.Page.addr;
          Word.of_int_exn e.last_page;
          Disk_address.to_word e.last_addr;
          Word.of_int_exn (String.length e.file_name);
        |];
        Word.words_of_string e.file_name;
      ]
  in
  Array.concat ([| Word.of_int_exn (List.length state) |] :: List.map encode_entry state)

let decode words =
  if Array.length words < 1 then Error (State_malformed "empty")
  else
    let count = Word.to_int words.(0) in
    let rec each acc pos k =
      if k = 0 then Ok (List.rev acc)
      else if pos + 7 > Array.length words then Error (State_malformed "truncated entry")
      else
        match File_id.of_words words.(pos) words.(pos + 1) words.(pos + 2) with
        | Error msg -> Error (State_malformed msg)
        | Ok fid ->
            let name_len = Word.to_int words.(pos + 6) in
            let name_words = (name_len + 1) / 2 in
            if pos + 7 + name_words > Array.length words then
              Error (State_malformed "truncated name")
            else
              let e =
                {
                  file_name =
                    Word.string_of_words
                      (Array.sub words (pos + 7) name_words)
                      ~len:name_len;
                  leader =
                    Page.full_name fid ~page:0
                      ~addr:(Disk_address.of_word words.(pos + 3));
                  last_page = Word.to_int words.(pos + 4);
                  last_addr = Disk_address.of_word words.(pos + 5);
                }
              in
              each (e :: acc) (pos + 7 + name_words) (k - 1)
    in
    each [] 1 count

let state_file fs ~directory ~state_name ~create =
  let* existing = dir_err (Directory.lookup directory state_name) in
  match existing with
  | Some e ->
      let* f = file_err (File.open_leader fs e.Directory.entry_file) in
      Ok (Some f)
  | None ->
      if not create then Ok None
      else
        let* file = file_err (File.create fs ~name:state_name) in
        let* () = dir_err (Directory.add directory ~name:state_name (File.leader_name file)) in
        Ok (Some file)

let save fs ~directory ~state_name state =
  let* file = state_file fs ~directory ~state_name ~create:true in
  match file with
  | None -> assert false
  | Some file ->
      let* () = file_err (File.truncate file ~len:0) in
      let* () = file_err (File.write_words file ~pos:0 (encode state)) in
      file_err (File.flush_leader file)

let load_from file =
  let total = File.byte_length file / 2 in
  let* words = file_err (File.read_words file ~pos:0 ~len:total) in
  decode words

let load fs ~directory ~state_name =
  let* file = state_file fs ~directory ~state_name ~create:false in
  match file with
  | None -> Ok None
  | Some file ->
      let* state = load_from file in
      Ok (Some state)

let fast_open fs state =
  let rec each acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match File.open_leader fs e.leader with
        | Ok file -> each (file :: acc) rest
        | Error _ ->
            Error
              (`Reinstall_required
                (Printf.sprintf "hint for %S failed" e.file_name)))
  in
  each [] state
