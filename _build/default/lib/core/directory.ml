module Word = Alto_machine.Word
module Disk_address = Alto_disk.Disk_address

type entry = { entry_name : string; entry_file : Page.full_name }

type error =
  | File_error of File.error
  | Malformed of string
  | Name_too_long of string

let pp_error fmt = function
  | File_error e -> File.pp_error fmt e
  | Malformed msg -> Format.fprintf fmt "directory malformed: %s" msg
  | Name_too_long name -> Format.fprintf fmt "name too long: %S" name

let max_name_length = Leader.max_name_length

let header_words = 6
let live_flag = 0x100

let entry_words name = header_words + ((String.length name + 1) / 2)

let wrap r = Result.map_error (fun e -> File_error e) r

let check_name name =
  if String.length name = 0 then Error (Malformed "empty name")
  else if String.length name > max_name_length || String.contains name '\000' then
    Error (Name_too_long name)
  else Ok ()

let create fs ~name = wrap (File.create_directory_file fs ~name)

let open_root fs =
  match Fs.root_dir fs with
  | None -> Error (Malformed "this volume has no root directory")
  | Some fn -> wrap (File.open_leader fs fn)

let encode_entry name (fn : Page.full_name) =
  let n = entry_words name in
  let words = Array.make n Word.zero in
  words.(0) <- Word.of_int_exn ((live_flag lor n) land 0xffff);
  let w0, w1, v = File_id.to_words fn.Page.abs.Page.fid in
  words.(1) <- w0;
  words.(2) <- w1;
  words.(3) <- v;
  words.(4) <- Disk_address.to_word fn.Page.addr;
  words.(5) <- Word.of_int_exn (String.length name);
  Array.blit (Word.words_of_string name) 0 words header_words
    ((String.length name + 1) / 2);
  words

let decode_entry words pos len =
  if len < header_words then Error (Malformed "entry shorter than its header")
  else
    match File_id.of_words words.(pos + 1) words.(pos + 2) words.(pos + 3) with
    | Error msg -> Error (Malformed msg)
    | Ok fid ->
        let name_len = Word.to_int words.(pos + 5) in
        if name_len > max_name_length || header_words + ((name_len + 1) / 2) > len then
          Error (Malformed "entry name length inconsistent")
        else
          let name_words = Array.sub words (pos + header_words) ((name_len + 1) / 2) in
          Ok
            {
              entry_name = Word.string_of_words name_words ~len:name_len;
              entry_file =
                Page.full_name fid ~page:0 ~addr:(Disk_address.of_word words.(pos + 4));
            }

let read_all dir =
  let total = File.byte_length dir / 2 in
  wrap (File.read_words dir ~pos:0 ~len:total)

(* Fold over slots: [f acc ~pos ~len ~live entry_option]. *)
let fold_slots dir f init =
  let ( let* ) = Result.bind in
  let* words = read_all dir in
  let total = Array.length words in
  let rec scan acc pos =
    if pos >= total then Ok acc
    else
      let w0 = Word.to_int words.(pos) in
      let live = w0 land live_flag <> 0 in
      let len = w0 land 0xff in
      if len = 0 then Error (Malformed "zero-length entry")
      else if pos + len > total then Error (Malformed "entry overruns directory")
      else
        let* entry =
          if live then Result.map Option.some (decode_entry words pos len) else Ok None
        in
        let* acc = f acc ~pos ~len ~live entry in
        scan acc (pos + len)
  in
  scan init 0

let entries dir =
  Result.map List.rev
    (fold_slots dir
       (fun acc ~pos:_ ~len:_ ~live:_ entry ->
         match entry with Some e -> Ok (e :: acc) | None -> Ok acc)
       [])

let lookup dir name =
  let ( let* ) = Result.bind in
  let* found =
    fold_slots dir
      (fun acc ~pos:_ ~len:_ ~live:_ entry ->
        match (acc, entry) with
        | Some _, _ -> Ok acc
        | None, Some e when String.equal e.entry_name name -> Ok (Some e)
        | None, (Some _ | None) -> Ok acc)
      None
  in
  Ok found

(* Find the first free slot of at least [need] words; also report the
   directory's total size and whether [name] is already present. *)
let plan_add dir name need =
  fold_slots dir
    (fun (slot, total, dup) ~pos ~len ~live entry ->
      let dup =
        dup
        ||
        match entry with Some e -> String.equal e.entry_name name | None -> false
      in
      let slot =
        match slot with
        | Some _ -> slot
        | None -> if (not live) && len >= need then Some (pos, len) else None
      in
      Ok (slot, max total (pos + len), dup))
    (None, 0, false)

let add dir ~name fn =
  let ( let* ) = Result.bind in
  let* () = check_name name in
  let need = entry_words name in
  let* slot, total, dup = plan_add dir name need in
  if dup then Error (Malformed (Printf.sprintf "duplicate entry %S" name))
  else
    let words = encode_entry name fn in
    match slot with
    | Some (pos, len) ->
        if len > need then begin
          (* Split: the remainder stays a free slot. *)
          let* () =
            wrap
              (File.write_words dir ~pos:(pos + need)
                 [| Word.of_int_exn (len - need) |])
          in
          wrap (File.write_words dir ~pos words)
        end
        else wrap (File.write_words dir ~pos words)
    | None -> wrap (File.write_words dir ~pos:total words)

let find_slot dir name =
  fold_slots dir
    (fun acc ~pos ~len:_ ~live:_ entry ->
      match (acc, entry) with
      | Some _, _ -> Ok acc
      | None, Some e when String.equal e.entry_name name -> Ok (Some pos)
      | None, (Some _ | None) -> Ok acc)
    None

let remove dir name =
  let ( let* ) = Result.bind in
  let* slot = find_slot dir name in
  match slot with
  | None -> Ok false
  | Some pos ->
      let* words = wrap (File.read_words dir ~pos ~len:1) in
      let len = Word.to_int words.(0) land 0xff in
      let* () = wrap (File.write_words dir ~pos [| Word.of_int_exn len |]) in
      Ok true

let update_address dir name addr =
  let ( let* ) = Result.bind in
  let* slot = find_slot dir name in
  match slot with
  | None -> Ok false
  | Some pos ->
      let* () = wrap (File.write_words dir ~pos:(pos + 4) [| Disk_address.to_word addr |]) in
      Ok true

let salvage dir =
  match read_all dir with
  | Error _ -> ([], true)
  | Ok words ->
      let total = Array.length words in
      let rec scan acc pos =
        if pos >= total then (List.rev acc, false)
        else
          let w0 = Word.to_int words.(pos) in
          let live = w0 land live_flag <> 0 in
          let len = w0 land 0xff in
          if len = 0 || pos + len > total then (List.rev acc, true)
          else if not live then scan acc (pos + len)
          else
            match decode_entry words pos len with
            | Ok e -> scan (e :: acc) (pos + len)
            | Error _ -> (List.rev acc, true)
      in
      scan [] 0

let rewrite dir entries =
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc e ->
        let* () = acc in
        check_name e.entry_name)
      (Ok ()) entries
  in
  let chunks = List.map (fun e -> encode_entry e.entry_name e.entry_file) entries in
  let words = Array.concat chunks in
  let* () = wrap (File.truncate dir ~len:0) in
  if Array.length words = 0 then Ok () else wrap (File.write_words dir ~pos:0 words)
