(** The scavenger's first pass: "reading all the labels on the disk"
    (§3.5).

    One label read per sector, in address order — consecutive sectors on
    a track stream past in a single revolution, which is what makes a
    full sweep of a 2.5 MB pack take seconds rather than minutes. The
    result classifies every sector; interpreting the classes (chains,
    files, repairs) is {!Scavenger}'s job, and the compacting scavenger
    ({!Compactor}) reuses the same pass. *)

module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address

type sector_class =
  | Live of Label.t  (** A valid label: part of some file. *)
  | Free_sector  (** The all-ones free pattern. *)
  | Marked_bad  (** Carries the bad-page marker; never reuse. *)
  | Bad_media  (** The drive cannot read it at all. *)
  | Garbage of string  (** An unparseable label. *)

type t = {
  classes : sector_class array;  (** Indexed by sector number. *)
  headers_ok : bool array;
      (** Whether the sector's header named the right pack and address. *)
  duration_us : int;
}

val run : Drive.t -> t

val live_count : t -> int
val pp_class : Format.formatter -> sector_class -> unit
