(** The file system's interpretation of a sector's 7-word label (§3.1).

    A label holds the page's absolute name — file id (2 words), version
    (1 word), page number (1 word) — plus the byte count of live data and
    the two link hints:

    {v word 0-1  file identifier F
       word 2    version number V
       word 3    page number PN
       word 4    length L (bytes of data in this page, 0..512)
       word 5    next link NL (disk address hint, 0xffff = NIL)
       word 6    previous link PL v}

    Two further patterns share the label space: a {e free} page has all
    seven words set to ones ("ones are written into label and value, to
    ensure that any attempt to treat the page as part of a file will fail
    with a label check error", §3.3), and a {e bad} page carries a marker
    "so that it will never be used again" (§3.5). Both are unreachable by
    valid labels because a valid file id never has the reserved bit set.

    This module also builds the memory patterns handed to the disk's
    check action. Word 0 of a check pattern for the zero-wildcard scheme:
    any label word that is legitimately 0 (for instance the page number
    of a leader page) silently becomes a wildcard — a genuine property of
    the Alto's pattern-match check that the tests document. *)

module Word = Alto_machine.Word
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address

type t = {
  fid : File_id.t;
  page : int;  (** Page number PN. *)
  length : int;  (** Data bytes in this page, 0..512 (absolute). *)
  next : Disk_address.t;  (** Address of (FV, PN+1), a hint. *)
  prev : Disk_address.t;  (** Address of (FV, PN-1), a hint. *)
}

val make :
  fid:File_id.t ->
  page:int ->
  length:int ->
  next:Disk_address.t ->
  prev:Disk_address.t ->
  t
(** Raises [Invalid_argument] if [page] is outside [0, 0xffff] or
    [length] outside [0, 512]. *)

val to_words : t -> Word.t array

type classified =
  | Valid of t
  | Free  (** The all-ones free pattern. *)
  | Bad  (** The permanently-bad marker. *)
  | Garbage of string  (** Anything else — a scrambled or virgin label. *)

val classify : Word.t array -> classified
(** Raises [Invalid_argument] on a wrong-sized array. *)

val of_words : Word.t array -> (t, string) result
(** [Valid] labels only; everything else is an [Error]. *)

val free_words : unit -> Word.t array
(** A fresh all-ones label image, for writing when a page is freed. *)

val bad_words : unit -> Word.t array
(** A fresh bad-page marker image. *)

val free_value : unit -> Word.t array
(** The all-ones 256-word value image written alongside {!free_words}. *)

val check_name : File_id.t -> page:int -> Word.t array
(** The check pattern asserting the page's absolute name, with wildcards
    for length and both links. After a successful check action the
    wildcard positions have been replaced by the disk's words, so the
    buffer decodes (via {!of_words}) to the page's complete label — the
    standard way a reader learns the links for free. *)

val check_free : unit -> Word.t array
(** The check pattern asserting that the page is free. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
