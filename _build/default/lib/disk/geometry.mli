(** Disk shapes.

    §3.3 of the paper: the disk descriptor records "the disk shape, i.e.,
    number of tracks, surfaces, and other information needed to
    parameterize the disk routines for a particular model of disk", and
    this shape is {e absolute} information. This module is that
    parameterization, including the timing constants the experiments
    depend on, plus its on-disk word encoding. *)

type t = {
  model : string;  (** Human-readable model name; not stored on disk. *)
  cylinders : int;
  heads : int;  (** Number of surfaces. *)
  sectors_per_track : int;
  rotation_us : int;  (** Time for one full revolution, in µs. *)
  seek_settle_us : int;  (** Fixed cost of any head movement (settle). *)
  seek_per_cylinder_us : int;  (** Additional cost per cylinder crossed. *)
}

val diablo_31 : t
(** The Alto's standard drive: a Diablo Model 31 — 203 cylinders, 2
    surfaces, 12 sectors per track, 256 data words per sector, for 2.496
    megabytes per removable pack; one revolution every 40 ms, giving the
    paper's "64k words in about one second" effective transfer rate. *)

val diablo_44 : t
(** The "another disk with about twice the size and performance" of §2:
    twice the cylinders and half the rotation time of the Model 31. *)

val sector_count : t -> int
(** Total sectors on one pack. *)

val capacity_words : t -> int
(** Data capacity in 16-bit words (256 data words per sector). *)

val capacity_bytes : t -> int

val sector_time_us : t -> int
(** Time for one sector to pass under the head. *)

val seek_time_us : t -> from_cylinder:int -> to_cylinder:int -> int
(** Head-movement time; zero when the cylinders are equal. *)

val validate : t -> (unit, string) result
(** Check that all dimensions are positive and the sector count fits the
    16-bit disk-address encoding. *)

val encoded_words : int
(** Length of the {!to_words} encoding. *)

val to_words : t -> Alto_machine.Word.t array
(** Encode the shape for storage in the disk descriptor. The model name
    is not stored; decoded shapes carry a generic name. *)

val of_words : Alto_machine.Word.t array -> (t, string) result

val equal : t -> t -> bool
(** Equality of every field except [model]. *)

val pp : Format.formatter -> t -> unit
