(** Fault injection.

    §3.5's scavenger exists because packs decay, programs crash mid-write
    and directories get scrambled. This module manufactures those
    misfortunes deterministically (all randomness comes from a caller-
    supplied [Random.State.t]) so the robustness experiments (E9) and the
    scavenger tests are reproducible. *)

val corrupt_part :
  Random.State.t -> Drive.t -> Disk_address.t -> Sector.part -> unit
(** Replace every word of the part with random junk. *)

val zero_part : Drive.t -> Disk_address.t -> Sector.part -> unit

val flip_word :
  Random.State.t -> Drive.t -> Disk_address.t -> Sector.part -> unit
(** Flip one random bit in one random word — a single soft error. *)

val make_bad : Drive.t -> Disk_address.t -> unit
(** The sector becomes permanently unreadable. *)

val make_value_unreadable : Drive.t -> Disk_address.t -> unit
(** The sector's data surface fails: value reads error, label operations
    and writes still work. The scavenger's value-verification pass finds
    such sectors and marks them bad in the label. *)

val decay :
  Random.State.t -> Drive.t -> fraction:float -> Disk_address.t list
(** [decay rng drive ~fraction] corrupts the labels of roughly [fraction]
    of all sectors (each sector independently with that probability) and
    returns the victims. Raises [Invalid_argument] unless
    [0 <= fraction <= 1]. *)
