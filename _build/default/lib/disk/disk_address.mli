(** Disk addresses.

    An address "uniquely specifies a physical disk location" (§3.1) and is
    always a {e hint} when stored inside pages or directories. We use a
    flat sector index in [0, sector_count - 1]; the distinguished value
    {!nil} represents the absent link ("NIL if no such pages exist"). The
    16-bit on-disk encoding reserves 0xffff for nil. *)

type t = private int

val nil : t
val is_nil : t -> bool

val of_index : int -> t
(** [of_index i] for [i >= 0]. Raises [Invalid_argument] on negatives;
    validity against a particular geometry is the drive's concern. *)

val to_index : t -> int
(** Raises [Invalid_argument] on {!nil}: callers must test {!is_nil}
    first, which is exactly the discipline the paper's hint rules force. *)

val offset : t -> int -> t
(** [offset a k] is the address [k] sectors beyond [a] — the arithmetic a
    program uses when it "is free to assume that a file is consecutive"
    (§3.6). Raises [Invalid_argument] if [a] is nil or the result would be
    negative. *)

val to_word : t -> Alto_machine.Word.t
(** 16-bit encoding; nil encodes as 0xffff. *)

val of_word : Alto_machine.Word.t -> t

val chs : Geometry.t -> t -> int * int * int
(** [(cylinder, head, sector)] of an address under a geometry. Raises
    [Invalid_argument] if the address is nil or beyond the disk. *)

val of_chs : Geometry.t -> cylinder:int -> head:int -> sector:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
