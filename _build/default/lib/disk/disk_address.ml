module Word = Alto_machine.Word

type t = int

let nil = -1
let is_nil a = a = nil

let of_index i =
  if i < 0 then invalid_arg "Disk_address.of_index: negative" else i

let to_index a =
  if a = nil then invalid_arg "Disk_address.to_index: nil address" else a

let offset a k =
  if a = nil then invalid_arg "Disk_address.offset: nil address"
  else if a + k < 0 then invalid_arg "Disk_address.offset: negative result"
  else a + k

let nil_word = Word.of_int 0xffff

let to_word a = if a = nil then nil_word else Word.of_int_exn a

let of_word w = if Word.equal w nil_word then nil else Word.to_int w

let chs g a =
  let i = to_index a in
  if i >= Geometry.sector_count g then
    invalid_arg "Disk_address.chs: address beyond disk"
  else
    let sectors = g.Geometry.sectors_per_track in
    let per_cylinder = g.Geometry.heads * sectors in
    (i / per_cylinder, i mod per_cylinder / sectors, i mod sectors)

let of_chs g ~cylinder ~head ~sector =
  if
    cylinder < 0
    || cylinder >= g.Geometry.cylinders
    || head < 0
    || head >= g.Geometry.heads
    || sector < 0
    || sector >= g.Geometry.sectors_per_track
  then invalid_arg "Disk_address.of_chs: out of range"
  else
    (cylinder * g.Geometry.heads * g.Geometry.sectors_per_track)
    + (head * g.Geometry.sectors_per_track)
    + sector

let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b

let pp fmt a =
  if a = nil then Format.pp_print_string fmt "NIL"
  else Format.fprintf fmt "DA%d" a
