(** The physical representation of a page (§3.3).

    A sector has three independently accessible parts:
    - a {e header} (2 words): the disk pack number and the disk address;
    - a {e label} (7 words): the file id (2), version, page number, length,
      next link, previous link — interpreted by the file system layer;
    - a {e value}: the 256 data words.

    This module fixes those sizes and provides raw sector storage. The
    disk layer treats all three parts as opaque word arrays; giving the
    words meaning is the file system's business, which is how the paper
    gets a disk format "standardized at a level below any of the
    software". *)

val header_words : int
(** 2 *)

val label_words : int
(** 7 *)

val value_words : int
(** 256 *)

val bytes_per_page : int
(** 512: the data capacity of one page's value part. *)

type part = Header | Label | Value

val part_size : part -> int
val pp_part : Format.formatter -> part -> unit

type t = {
  header : Alto_machine.Word.t array;
  label : Alto_machine.Word.t array;
  value : Alto_machine.Word.t array;
}
(** Live storage for one sector; the arrays are mutated in place by disk
    transfers. *)

val create : unit -> t
(** A factory-fresh sector, all parts zeroed. *)

val copy : t -> t

val part_of : t -> part -> Alto_machine.Word.t array
(** The live array backing a part. *)
