module Word = Alto_machine.Word

type t = {
  model : string;
  cylinders : int;
  heads : int;
  sectors_per_track : int;
  rotation_us : int;
  seek_settle_us : int;
  seek_per_cylinder_us : int;
}

let diablo_31 =
  {
    model = "Diablo Model 31";
    cylinders = 203;
    heads = 2;
    sectors_per_track = 12;
    rotation_us = 40_000;
    seek_settle_us = 8_000;
    seek_per_cylinder_us = 260;
  }

let diablo_44 =
  {
    model = "Diablo Model 44";
    cylinders = 406;
    heads = 2;
    sectors_per_track = 12;
    rotation_us = 20_000;
    seek_settle_us = 8_000;
    seek_per_cylinder_us = 130;
  }

let sector_count g = g.cylinders * g.heads * g.sectors_per_track
let capacity_words g = sector_count g * 256
let capacity_bytes g = capacity_words g * 2
let sector_time_us g = g.rotation_us / g.sectors_per_track

let seek_time_us g ~from_cylinder ~to_cylinder =
  let distance = abs (to_cylinder - from_cylinder) in
  if distance = 0 then 0 else g.seek_settle_us + (distance * g.seek_per_cylinder_us)

let validate g =
  if g.cylinders <= 0 || g.heads <= 0 || g.sectors_per_track <= 0 then
    Error "geometry: dimensions must be positive"
  else if g.rotation_us <= 0 then Error "geometry: rotation time must be positive"
  else if g.seek_settle_us < 0 || g.seek_per_cylinder_us < 0 then
    Error "geometry: seek times must be non-negative"
  else if sector_count g > 0xfffe then
    (* 0xffff is reserved for the nil disk address. *)
    Error "geometry: too many sectors for 16-bit disk addresses"
  else Ok ()

(* Three dimension words, then each timing field split into two words
   (high, low) so that times above 65535 µs survive the 16-bit encoding. *)
let encoded_words = 9

let split32 n = (Word.of_int (n lsr 16), Word.of_int n)
let join32 hi lo = (Word.to_int hi lsl 16) lor Word.to_int lo

let to_words g =
  let rot_hi, rot_lo = split32 g.rotation_us in
  let settle_hi, settle_lo = split32 g.seek_settle_us in
  let per_cyl_hi, per_cyl_lo = split32 g.seek_per_cylinder_us in
  [|
    Word.of_int_exn g.cylinders;
    Word.of_int_exn g.heads;
    Word.of_int_exn g.sectors_per_track;
    rot_hi;
    rot_lo;
    settle_hi;
    settle_lo;
    per_cyl_hi;
    per_cyl_lo;
  |]

let of_words ws =
  if Array.length ws <> encoded_words then Error "geometry: wrong encoding length"
  else
    let g =
      {
        model = "(decoded from disk descriptor)";
        cylinders = Word.to_int ws.(0);
        heads = Word.to_int ws.(1);
        sectors_per_track = Word.to_int ws.(2);
        rotation_us = join32 ws.(3) ws.(4);
        seek_settle_us = join32 ws.(5) ws.(6);
        seek_per_cylinder_us = join32 ws.(7) ws.(8);
      }
    in
    match validate g with Ok () -> Ok g | Error e -> Error e

let equal a b =
  a.cylinders = b.cylinders && a.heads = b.heads
  && a.sectors_per_track = b.sectors_per_track
  && a.rotation_us = b.rotation_us
  && a.seek_settle_us = b.seek_settle_us
  && a.seek_per_cylinder_us = b.seek_per_cylinder_us

let pp fmt g =
  Format.fprintf fmt "%s: %d cyl x %d heads x %d sectors (%d KB, %d ms/rev)"
    g.model g.cylinders g.heads g.sectors_per_track
    (capacity_bytes g / 1024)
    (g.rotation_us / 1000)
