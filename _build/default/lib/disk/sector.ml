let header_words = 2
let label_words = 7
let value_words = 256
let bytes_per_page = value_words * 2

type part = Header | Label | Value

let part_size = function
  | Header -> header_words
  | Label -> label_words
  | Value -> value_words

let pp_part fmt part =
  Format.pp_print_string fmt
    (match part with Header -> "header" | Label -> "label" | Value -> "value")

type t = {
  header : Alto_machine.Word.t array;
  label : Alto_machine.Word.t array;
  value : Alto_machine.Word.t array;
}

let create () =
  {
    header = Array.make header_words Alto_machine.Word.zero;
    label = Array.make label_words Alto_machine.Word.zero;
    value = Array.make value_words Alto_machine.Word.zero;
  }

let copy s =
  { header = Array.copy s.header; label = Array.copy s.label; value = Array.copy s.value }

let part_of s = function
  | Header -> s.header
  | Label -> s.label
  | Value -> s.value
