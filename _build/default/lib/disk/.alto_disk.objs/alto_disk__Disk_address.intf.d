lib/disk/disk_address.mli: Alto_machine Format Geometry
