lib/disk/drive.ml: Alto_machine Array Disk_address Format Geometry Option Printf Sector
