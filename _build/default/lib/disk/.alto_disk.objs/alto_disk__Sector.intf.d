lib/disk/sector.mli: Alto_machine Format
