lib/disk/disk_address.ml: Alto_machine Format Geometry Stdlib
