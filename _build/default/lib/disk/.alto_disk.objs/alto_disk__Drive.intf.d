lib/disk/drive.mli: Alto_machine Disk_address Format Geometry Sector
