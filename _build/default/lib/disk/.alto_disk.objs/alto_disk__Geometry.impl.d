lib/disk/geometry.ml: Alto_machine Array Format
