lib/disk/fault.mli: Disk_address Drive Random Sector
