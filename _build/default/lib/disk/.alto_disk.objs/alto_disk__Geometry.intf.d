lib/disk/geometry.mli: Alto_machine Format
