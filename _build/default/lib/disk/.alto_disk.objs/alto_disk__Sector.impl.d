lib/disk/sector.ml: Alto_machine Array Format
