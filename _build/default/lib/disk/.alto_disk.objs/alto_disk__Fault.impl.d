lib/disk/fault.ml: Alto_machine Array Disk_address Drive Random Sector
