module Word = Alto_machine.Word
module Memory = Alto_machine.Memory

let of_string s =
  let pos = ref 0 in
  Stream.make "string input"
    ~get:(fun () ->
      if !pos >= String.length s then None
      else begin
        let c = Char.code s.[!pos] in
        incr pos;
        Some c
      end)
    ~reset:(fun () -> pos := 0)
    ~at_end:(fun () -> !pos >= String.length s)

let buffer () =
  let b = Buffer.create 64 in
  let stream =
    Stream.make "buffer output"
      ~put:(fun item -> Buffer.add_char b (Char.chr (item land 0xff)))
      ~reset:(fun () -> Buffer.clear b)
  in
  (stream, fun () -> Buffer.contents b)

let on_region memory ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Memory.size then
    invalid_arg "Memory_stream.on_region: region outside memory";
  let position = ref 0 in
  let name = "memory region" in
  Stream.make name
    ~get:(fun () ->
      if !position >= len then None
      else begin
        let w = Word.to_int (Memory.read memory (pos + !position)) in
        incr position;
        Some w
      end)
    ~put:(fun item ->
      if !position >= len then raise (Stream.Closed name)
      else begin
        Memory.write memory (pos + !position) (Word.of_int item);
        incr position
      end)
    ~reset:(fun () -> position := 0)
    ~at_end:(fun () -> !position >= len)
    ~control:(fun op arg ->
      match op with
      | "position" -> !position
      | "set-position" ->
          if arg < 0 || arg > len then invalid_arg "set-position out of region"
          else begin
            position := arg;
            arg
          end
      | "length" -> len
      | _ -> raise (Stream.Not_supported { stream = name; operation = op }))
