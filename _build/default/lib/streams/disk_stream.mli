(** Disk file streams: buffered byte streams over {!Alto_fs.File}.

    The stream keeps one page of the file buffered (working storage that
    can be placed in a caller-supplied zone, mirroring the paper's "a
    zone object which is used to acquire and release working storage for
    the stream"), reads and writes through the label-checked page
    operations, and extends the file transparently when written past the
    end.

    Standard operations: [get]/[put] move one byte at the shared
    position, [reset] rewinds to byte 0, [at_end] tests the position
    against the file length, [close] flushes the buffer and the leader
    page. Non-standard operations (via [control]): ["position"],
    ["set-position"], ["length"], ["flush"], ["truncate"]. *)

module Memory = Alto_machine.Memory
module Zone = Alto_zones.Zone
module File = Alto_fs.File

exception Io of string
(** A disk operation failed underneath the stream (e.g. every hint for
    the file went stale); the message carries the file error. *)

type mode = Read_only | Write_only | Read_write

val open_file :
  ?workspace:Memory.t * Zone.obj -> mode:mode -> File.t -> Stream.t
(** When [workspace] is supplied, the page buffer is allocated from that
    zone inside the simulated memory (and released on [close]);
    otherwise host storage is used. A mode that excludes reading leaves
    [get] unsupported, and symmetrically for [put]. *)
