(** Streams over in-core data: strings, growable buffers, and regions of
    the machine's memory. The memory-region stream is how programs in
    different environments hand data structures to each other through
    the shared 64K image. *)

module Memory = Alto_machine.Memory

val of_string : string -> Stream.t
(** A byte-item input stream over a string; [reset] rewinds. *)

val buffer : unit -> Stream.t * (unit -> string)
(** A byte-item output stream collecting into a buffer, plus a function
    reading what has been put so far; [reset] empties it. *)

val on_region : Memory.t -> pos:int -> len:int -> Stream.t
(** A word-item stream over [len] words of memory at [pos], readable and
    writable with a shared position. Controls: ["position"],
    ["set-position"] (argument = new position, word-relative),
    ["length"]. [get] returns [None] past the region; [put] past the
    region raises [Closed]. *)
