(** The display: an output stream onto a simulated character screen.

    The real Alto display was a bitmap driven by microcode; the system's
    display streams "simulate a teletype terminal" (§6), and that
    teletype view is all the OS layer needs, so that is what we build:
    put appends characters, newline starts a new line, form-feed clears
    the screen. *)

type t

val create : ?columns:int -> unit -> t
(** [columns] (default 80) wraps long lines, teletype-style. *)

val stream : t -> Stream.t
(** [put] writes a character; [reset] clears the screen;
    [control "lines"] reports the line count. *)

val contents : t -> string
(** Everything currently on the screen, lines separated by ['\n']. *)

val lines : t -> string list
val clear : t -> unit
