(** The keyboard: a type-ahead buffer and a stream over it.

    §2: the system's only other process "puts keyboard input characters
    into a buffer"; §5.2: "The keyboard input buffer is present nearly
    always, so that any characters typed ahead by the user when running
    one program are saved for interpretation by the next." {!feed} plays
    the interrupt-driven producer (a test script or an example's canned
    user); the buffer object outlives any one consumer stream, which is
    exactly the type-ahead property. *)

type t

val create : unit -> t

val feed : t -> string -> unit
(** Characters arriving from the (simulated) interrupt process. *)

val pending : t -> int

val stream : t -> Stream.t
(** A fresh input stream over the shared buffer. [get] consumes the next
    type-ahead character ([None] when the buffer is dry); [reset]
    discards pending input (the moral equivalent of flushing type-ahead);
    [control "pending"] reports the buffer depth. *)
