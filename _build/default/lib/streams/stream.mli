(** Streams, copied "wholesale from Stoy and Strachey's OS6 system" (§2).

    "A stream is an object that can produce or consume items. … There is
    a standard set of operations defined on every stream: Get, Put
    (normally only one of these is defined), Reset, Test for end of
    input, and a few others." A stream is represented by a record whose
    first components are the procedures implementing the standard
    operations — here, literally a record of closures, so any program can
    substitute its own implementation of any operation, which is the
    open-system point.

    Items are typeless machine quantities (bytes on disk streams, words
    on memory streams), exactly as in BCPL. Non-standard operations go
    through {!control}, named by string; a stream that does not implement
    an operation raises {!Not_supported} — "a program that uses a
    non-standard operation sacrifices compatibility". *)

type item = int
(** A typeless item: a byte or a 16-bit word, by stream convention. *)

exception Not_supported of { stream : string; operation : string }
exception Closed of string

type t = {
  stream_name : string;
  get : unit -> item option;  (** [None] at end of input. *)
  put : item -> unit;
  reset : unit -> unit;  (** Back to the stream's standard initial state. *)
  at_end : unit -> bool;
  close : unit -> unit;
  control : string -> int -> int;
      (** Non-standard operations, e.g. ["position"], ["set-position"],
          ["length"]. The int argument and result are operation-defined
          (pass 0 when meaningless). *)
}

val make :
  ?get:(unit -> item option) ->
  ?put:(item -> unit) ->
  ?reset:(unit -> unit) ->
  ?at_end:(unit -> bool) ->
  ?close:(unit -> unit) ->
  ?control:(string -> int -> int) ->
  string ->
  t
(** Build a stream from whichever operations it supports; the missing
    ones raise {!Not_supported}. [reset] and [close] default to no-ops,
    [at_end] to [false]. *)

(** {2 Helpers over the standard operations}

    These are ordinary procedures written against the abstract object —
    the "macro-operations … built up from the primitives" of §6. They
    work on any stream. *)

val put_string : t -> string -> unit
val put_line : t -> string -> unit

val get_string : t -> int -> string
(** Up to [n] items, as characters; shorter at end of input. *)

val get_line : t -> string option
(** Items up to (consuming, not including) a newline; [None] at end. *)

val get_all : t -> string
(** Everything until end of input. *)

val iter : t -> (item -> unit) -> unit

val copy : src:t -> dst:t -> int
(** Pump items from [src] to [dst] until [src] ends; returns the count. *)
