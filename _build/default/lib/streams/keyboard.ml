type t = { buffer : char Queue.t }

let create () = { buffer = Queue.create () }

let feed t s = String.iter (fun c -> Queue.push c t.buffer) s

let pending t = Queue.length t.buffer

let stream t =
  let name = "keyboard" in
  Stream.make name
    ~get:(fun () ->
      match Queue.take_opt t.buffer with
      | Some c -> Some (Char.code c)
      | None -> None)
    ~reset:(fun () -> Queue.clear t.buffer)
    ~at_end:(fun () -> Queue.is_empty t.buffer)
    ~control:(fun op _ ->
      match op with
      | "pending" -> Queue.length t.buffer
      | _ -> raise (Stream.Not_supported { stream = name; operation = op }))
