module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Sector = Alto_disk.Sector
module Zone = Alto_zones.Zone
module File = Alto_fs.File

exception Io of string

type mode = Read_only | Write_only | Read_write

let page_bytes = Sector.bytes_per_page

type buffer = {
  get_byte : int -> int;
  set_byte : int -> int -> unit;
  release : unit -> unit;
}

let host_buffer () =
  let bytes = Bytes.make page_bytes '\000' in
  {
    get_byte = (fun off -> Char.code (Bytes.get bytes off));
    set_byte = (fun off b -> Bytes.set bytes off (Char.chr b));
    release = ignore;
  }

(* A page buffer living in the simulated memory, acquired from a zone —
   the stream's working storage in the paper's sense. Two bytes live in
   each word, high byte first. *)
let zone_buffer memory (zone : Zone.obj) =
  let base = zone.Zone.obj_allocate Sector.value_words in
  {
    get_byte =
      (fun off ->
        let w = Word.to_int (Memory.read memory (base + (off / 2))) in
        if off mod 2 = 0 then (w lsr 8) land 0xff else w land 0xff);
    set_byte =
      (fun off b ->
        let a = base + (off / 2) in
        let w = Word.to_int (Memory.read memory a) in
        let w' = if off mod 2 = 0 then (w land 0x00ff) lor (b lsl 8) else (w land 0xff00) lor b in
        Memory.write memory a (Word.of_int w'));
    release = (fun () -> zone.Zone.obj_release base);
  }

type state = {
  file : File.t;
  buffer : buffer;
  mutable pos : int;
  mutable buf_page : int;  (* 0 = nothing buffered *)
  mutable buf_len : int;
  mutable dirty : bool;
  mutable closed : bool;
}

let io_fail e = raise (Io (Format.asprintf "%a" File.pp_error e))

let check_open s = if s.closed then raise (Stream.Closed "disk stream")

let logical_length s =
  let on_disk = File.byte_length s.file in
  if s.dirty && s.buf_page > 0 then
    max on_disk (((s.buf_page - 1) * page_bytes) + s.buf_len)
  else on_disk

let flush s =
  if s.dirty then begin
    let start = (s.buf_page - 1) * page_bytes in
    let data = String.init s.buf_len (fun off -> Char.chr (s.buffer.get_byte off)) in
    (match File.write_bytes s.file ~pos:start data with
    | Ok () -> ()
    | Error e -> io_fail e);
    s.dirty <- false
  end

let load s pn =
  flush s;
  if pn <= File.last_page s.file then begin
    match File.read_page s.file pn with
    | Error e -> io_fail e
    | Ok (value, len) ->
        for off = 0 to page_bytes - 1 do
          let w = Word.to_int value.(off / 2) in
          s.buffer.set_byte off (if off mod 2 = 0 then (w lsr 8) land 0xff else w land 0xff)
        done;
        s.buf_page <- pn;
        s.buf_len <- len
  end
  else begin
    (* A fresh page, reachable only by appending at the boundary. *)
    for off = 0 to page_bytes - 1 do
      s.buffer.set_byte off 0
    done;
    s.buf_page <- pn;
    s.buf_len <- 0
  end

let ensure s pn = if s.buf_page <> pn then load s pn

let get s () =
  check_open s;
  if s.pos >= logical_length s then None
  else begin
    ensure s (1 + (s.pos / page_bytes));
    let b = s.buffer.get_byte (s.pos mod page_bytes) in
    s.pos <- s.pos + 1;
    Some b
  end

let put s item =
  check_open s;
  if s.pos > logical_length s then
    invalid_arg "Disk_stream.put: position beyond end of file"
  else begin
    ensure s (1 + (s.pos / page_bytes));
    let off = s.pos mod page_bytes in
    s.buffer.set_byte off (item land 0xff);
    s.buf_len <- max s.buf_len (off + 1);
    s.dirty <- true;
    s.pos <- s.pos + 1
  end

let close s () =
  if not s.closed then begin
    flush s;
    (match File.flush_leader s.file with Ok () -> () | Error e -> io_fail e);
    s.buffer.release ();
    s.closed <- true
  end

let control s op arg =
  check_open s;
  match op with
  | "position" -> s.pos
  | "set-position" ->
      if arg < 0 || arg > logical_length s then
        invalid_arg "Disk_stream: set-position beyond end of file"
      else begin
        s.pos <- arg;
        arg
      end
  | "length" -> logical_length s
  | "flush" ->
      flush s;
      0
  | "truncate" ->
      flush s;
      if arg < 0 || arg > File.byte_length s.file then
        invalid_arg "Disk_stream: truncate length out of range"
      else begin
        (match File.truncate s.file ~len:arg with Ok () -> () | Error e -> io_fail e);
        s.buf_page <- 0;
        s.buf_len <- 0;
        s.pos <- min s.pos arg;
        arg
      end
  | _ -> raise (Stream.Not_supported { stream = "disk stream"; operation = op })

let open_file ?workspace ~mode file =
  let buffer =
    match workspace with
    | None -> host_buffer ()
    | Some (memory, zone) -> zone_buffer memory zone
  in
  let s = { file; buffer; pos = 0; buf_page = 0; buf_len = 0; dirty = false; closed = false } in
  let name = Printf.sprintf "disk stream on %S" (File.leader file).Alto_fs.Leader.name in
  let readable = match mode with Read_only | Read_write -> true | Write_only -> false in
  let writable = match mode with Write_only | Read_write -> true | Read_only -> false in
  Stream.make name
    ?get:(if readable then Some (get s) else None)
    ?put:(if writable then Some (put s) else None)
    ~reset:(fun () ->
      check_open s;
      flush s;
      s.pos <- 0)
    ~at_end:(fun () ->
      check_open s;
      s.pos >= logical_length s)
    ~close:(close s)
    ~control:(control s)
