type item = int

exception Not_supported of { stream : string; operation : string }
exception Closed of string

type t = {
  stream_name : string;
  get : unit -> item option;
  put : item -> unit;
  reset : unit -> unit;
  at_end : unit -> bool;
  close : unit -> unit;
  control : string -> item -> item;
}

let unsupported name operation _ = raise (Not_supported { stream = name; operation })

let make ?get ?put ?reset ?at_end ?close ?control stream_name =
  {
    stream_name;
    get =
      (match get with Some f -> f | None -> fun () -> unsupported stream_name "get" ());
    put =
      (match put with Some f -> f | None -> fun _ -> unsupported stream_name "put" ());
    reset = Option.value reset ~default:(fun () -> ());
    at_end = Option.value at_end ~default:(fun () -> false);
    close = Option.value close ~default:(fun () -> ());
    control =
      (match control with
      | Some f -> f
      | None -> fun op _ -> unsupported stream_name op ());
  }

let put_string t s = String.iter (fun c -> t.put (Char.code c)) s

let put_line t s =
  put_string t s;
  t.put (Char.code '\n')

let get_string t n =
  let buffer = Buffer.create n in
  let rec go k =
    if k = 0 then ()
    else
      match t.get () with
      | None -> ()
      | Some item ->
          Buffer.add_char buffer (Char.chr (item land 0xff));
          go (k - 1)
  in
  go n;
  Buffer.contents buffer

let get_line t =
  let buffer = Buffer.create 80 in
  let rec go started =
    match t.get () with
    | None -> if started then Some (Buffer.contents buffer) else None
    | Some item ->
        if item land 0xff = Char.code '\n' then Some (Buffer.contents buffer)
        else begin
          Buffer.add_char buffer (Char.chr (item land 0xff));
          go true
        end
  in
  go false

let get_all t =
  let buffer = Buffer.create 256 in
  let rec go () =
    match t.get () with
    | None -> Buffer.contents buffer
    | Some item ->
        Buffer.add_char buffer (Char.chr (item land 0xff));
        go ()
  in
  go ()

let iter t f =
  let rec go () =
    match t.get () with
    | None -> ()
    | Some item ->
        f item;
        go ()
  in
  go ()

let copy ~src ~dst =
  let n = ref 0 in
  iter src (fun item ->
      dst.put item;
      incr n);
  !n
