type t = { columns : int; mutable done_lines : string list; current : Buffer.t }

let create ?(columns = 80) () =
  { columns; done_lines = []; current = Buffer.create 80 }

let newline t =
  t.done_lines <- Buffer.contents t.current :: t.done_lines;
  Buffer.clear t.current

let clear t =
  t.done_lines <- [];
  Buffer.clear t.current

let put_char t c =
  match c with
  | '\n' -> newline t
  | '\012' -> clear t
  | c ->
      if Buffer.length t.current >= t.columns then newline t;
      Buffer.add_char t.current c

let lines t =
  let all = List.rev t.done_lines in
  if Buffer.length t.current = 0 then all else all @ [ Buffer.contents t.current ]

let contents t = String.concat "\n" (lines t)

let stream t =
  let name = "display" in
  Stream.make name
    ~put:(fun item -> put_char t (Char.chr (item land 0xff)))
    ~reset:(fun () -> clear t)
    ~control:(fun op _ ->
      match op with
      | "lines" -> List.length (lines t)
      | "columns" -> t.columns
      | _ -> raise (Stream.Not_supported { stream = name; operation = op }))
