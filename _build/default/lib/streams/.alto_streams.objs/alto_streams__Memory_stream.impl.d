lib/streams/memory_stream.ml: Alto_machine Buffer Char Stream String
