lib/streams/memory_stream.mli: Alto_machine Stream
