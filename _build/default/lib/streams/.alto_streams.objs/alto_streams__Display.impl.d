lib/streams/display.ml: Buffer Char List Stream String
