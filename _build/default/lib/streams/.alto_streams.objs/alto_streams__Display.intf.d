lib/streams/display.mli: Stream
