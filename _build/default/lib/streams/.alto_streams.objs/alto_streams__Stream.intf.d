lib/streams/stream.mli:
