lib/streams/disk_stream.mli: Alto_fs Alto_machine Alto_zones Stream
