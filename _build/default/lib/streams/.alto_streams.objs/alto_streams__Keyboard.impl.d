lib/streams/keyboard.ml: Char Queue Stream String
