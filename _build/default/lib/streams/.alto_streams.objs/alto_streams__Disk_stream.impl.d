lib/streams/disk_stream.ml: Alto_disk Alto_fs Alto_machine Alto_zones Array Bytes Char Format Printf Stream String
