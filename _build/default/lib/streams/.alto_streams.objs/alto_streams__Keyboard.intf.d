lib/streams/keyboard.mli: Stream
