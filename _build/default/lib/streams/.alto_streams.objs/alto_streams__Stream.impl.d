lib/streams/stream.ml: Buffer Char Option String
