(** 16-bit machine words.

    The Alto is a 16-bit word-addressed machine and BCPL is typeless: every
    value — integer, pointer, character pair, procedure — is one word. All
    on-disk and in-memory representations in this system are defined in
    terms of these words, so the module enforces the 16-bit invariant at
    every construction. *)

type t = private int
(** A word. The representation invariant is [0 <= w <= 0xffff]. *)

val bits : int
(** Number of bits in a word (16). *)

val max_value : int
(** Largest representable word value, [0xffff]. *)

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] truncates [n] to its low 16 bits (two's-complement wrap),
    matching Alto arithmetic. *)

val of_int_exn : int -> t
(** [of_int_exn n] is [of_int n] but raises [Invalid_argument] if [n] is
    not already in [0, 0xffff]. Use it where truncation would hide a bug. *)

val to_int : t -> int
(** [to_int w] is the unsigned value of [w], in [0, 0xffff]. *)

val to_signed : t -> int
(** [to_signed w] interprets [w] as a two's-complement 16-bit integer,
    in [-32768, 32767]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val succ : t -> t
val pred : t -> t

val low_byte : t -> int
(** Low-order 8 bits, in [0, 255]. *)

val high_byte : t -> int
(** High-order 8 bits, in [0, 255]. *)

val of_bytes : high:int -> low:int -> t
(** [of_bytes ~high ~low] packs two bytes into a word; raises
    [Invalid_argument] if either is outside [0, 255]. *)

val of_char_pair : char -> char -> t
(** Pack two characters, first in the high byte, following the Alto/BCPL
    packed-string convention. *)

val words_of_string : string -> t array
(** [words_of_string s] packs [s] two characters per word, high byte
    first, padding the final word's low byte with 0 when the length is
    odd. The length is not stored; see {!string_of_words}. *)

val string_of_words : t array -> len:int -> string
(** [string_of_words ws ~len] unpacks the first [len] characters.
    Raises [Invalid_argument] if [len] exceeds [2 * Array.length ws] or is
    negative. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Prints as unsigned decimal. *)

val pp_octal : Format.formatter -> t -> unit
(** Prints as octal with a [#] prefix, the Alto convention. *)
