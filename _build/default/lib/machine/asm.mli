(** A small two-pass assembler.

    Test programs, example applications and the executive's utilities are
    written in this assembly and turned into code images for the loader.
    Beyond labels, the assembler supports {e external references} to
    named operating-system procedures: each leaves a hole in the emitted
    code and an entry in the fixup table, exactly the arrangement §5.1
    describes ("all references to operating system procedures are bound,
    using a fixup table contained in the code file"). *)

type operand =
  | Reg of int  (** AC0–AC3. *)
  | Imm of int  (** A literal word. *)
  | Lab of string  (** A label defined in the same program. *)
  | Ext of string  (** An OS procedure, bound by the loader at load time. *)

type item =
  | Op of string * operand list  (** Mnemonic as printed by {!Instr.pp}. *)
  | Label of string
  | Word_data of int  (** One literal data word. *)
  | String_data of string
      (** A length word followed by the string packed two bytes/word. *)
  | Block of int  (** [n] zeroed words. *)

type program = {
  origin : int;  (** Address the code was assembled for. *)
  code : Word.t array;
  entry : int;  (** Absolute address of the [start] label, else [origin]. *)
  fixups : (int * string) list;
      (** [(offset, name)]: the word at [code.(offset)] must be patched
          with the address of OS procedure [name] before running. *)
  symbols : (string * int) list;  (** Every label, at its absolute address. *)
}

val assemble : ?origin:int -> item list -> (program, string) result
(** Errors mention the offending mnemonic, label or operand. *)

val assemble_exn : ?origin:int -> item list -> program
(** Raises [Failure] — for tests and examples whose programs are
    constants. *)
