type t = {
  memory : Memory.t;
  mutable pc : Word.t;
  mutable frame_pointer : Word.t;
  ac : Word.t array;
}

let accumulator_count = 4
let register_count = 2 + accumulator_count

let create memory =
  {
    memory;
    pc = Word.zero;
    frame_pointer = Word.zero;
    ac = Array.make accumulator_count Word.zero;
  }

let memory cpu = cpu.memory
let pc cpu = cpu.pc
let set_pc cpu w = cpu.pc <- w

let check_ac i =
  if i < 0 || i >= accumulator_count then
    invalid_arg (Printf.sprintf "Cpu.ac: no accumulator %d" i)

let ac cpu i =
  check_ac i;
  cpu.ac.(i)

let set_ac cpu i w =
  check_ac i;
  cpu.ac.(i) <- w

let frame_pointer cpu = cpu.frame_pointer
let set_frame_pointer cpu w = cpu.frame_pointer <- w

let registers cpu = Array.append [| cpu.pc; cpu.frame_pointer |] (Array.copy cpu.ac)

let load_registers cpu ws =
  if Array.length ws <> register_count then
    invalid_arg "Cpu.load_registers: wrong register count"
  else begin
    cpu.pc <- ws.(0);
    cpu.frame_pointer <- ws.(1);
    Array.blit ws 2 cpu.ac 0 accumulator_count
  end

let equal_registers a b = registers a = registers b
