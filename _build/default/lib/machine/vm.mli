(** The instruction interpreter.

    Runs a {!Cpu} over its memory until the program halts, faults, traps
    to the system, or exhausts its fuel. System calls are delegated to a
    caller-supplied handler — the machine knows nothing about the
    operating system, which is how the paper's system gets to be optional:
    the handler is whatever set of packages is currently resident. *)

type sys_outcome =
  | Sys_continue  (** Resume execution after the trap. *)
  | Sys_stop of int  (** Stop the run, reporting this code. *)

type handler = Cpu.t -> int -> sys_outcome
(** Called on [SYS n] with the processor state (registers already
    updated past the trap instruction) and [n]. The handler may mutate
    registers and memory freely — including the PC, which is how the
    world-swapper arranges its double return. *)

type stop =
  | Halted  (** The program executed [HALT]. *)
  | Stopped of int  (** The handler requested a stop. *)
  | Out_of_fuel
  | Fault of string
      (** Undecodable instruction, bad register, or memory fault. On the
          real machine an errant program would simply careen onward; the
          simulator stops so that tests can observe the wreck. *)

val pp_stop : Format.formatter -> stop -> unit

val step : Cpu.t -> handler:handler -> (unit, stop) result
(** Execute one instruction. *)

val run : ?fuel:int -> Cpu.t -> handler:handler -> stop
(** Execute until something stops the machine; [fuel] (default 1_000_000)
    bounds the number of instructions. *)

val instructions_executed : Cpu.t -> int
(** Count of instructions this module has executed on this processor
    since it first saw it. Used by benchmarks. *)
