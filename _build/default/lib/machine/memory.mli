(** The Alto's main memory: 64K 16-bit words, word-addressed.

    There is no virtual-memory hardware and no protection; any address in
    [0, 0xffff] is readable and writable by anyone. The operating system's
    only defence is convention (the level structure of {!Alto_os}), exactly
    as in the paper. *)

exception Invalid_address of int
(** Raised on any access outside [0, size - 1]. *)

type t

val size : int
(** Number of words, 65536. *)

val create : unit -> t
(** A fresh memory, zero-filled. *)

val read : t -> int -> Word.t
val write : t -> int -> Word.t -> unit

val read_block : t -> pos:int -> len:int -> Word.t array
(** [read_block m ~pos ~len] copies [len] consecutive words out. *)

val write_block : t -> pos:int -> Word.t array -> unit
(** [write_block m ~pos ws] copies [ws] into memory starting at [pos]. *)

val fill : t -> pos:int -> len:int -> Word.t -> unit

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Word-by-word copy between memories (or within one; overlapping regions
    behave like [Array.blit]). *)

val copy : t -> t
(** A deep copy: a snapshot of the whole 64K image. *)

val restore : t -> from:t -> unit
(** Overwrite every word of [t] with the contents of [from]. *)

val equal : t -> t -> bool
(** Word-for-word equality of the full image. *)

val words_differing : t -> t -> int
(** Number of addresses whose contents differ — used by tests and by the
    world-swap experiments to report image deltas. *)

val write_string : t -> pos:int -> string -> unit
(** Pack a string two characters per word at [pos] (BCPL convention:
    word 0 holds the length in its high byte is {e not} used here; this is
    the raw packed form used for leader names and directory entries). *)

val read_string : t -> pos:int -> len:int -> string
