type t = int

let bits = 16
let max_value = 0xffff
let zero = 0
let one = 1

let of_int n = n land max_value

let of_int_exn n =
  if n < 0 || n > max_value then
    invalid_arg (Printf.sprintf "Word.of_int_exn: %d out of range" n)
  else n

let to_int w = w

let to_signed w = if w land 0x8000 <> 0 then w - 0x10000 else w

let add a b = (a + b) land max_value
let sub a b = (a - b) land max_value
let mul a b = a * b land max_value
let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = lnot a land max_value
let shift_left a n = (a lsl n) land max_value
let shift_right a n = a lsr n

let succ a = add a 1
let pred a = sub a 1

let low_byte w = w land 0xff
let high_byte w = (w lsr 8) land 0xff

let of_bytes ~high ~low =
  if high < 0 || high > 0xff || low < 0 || low > 0xff then
    invalid_arg "Word.of_bytes: byte out of range"
  else (high lsl 8) lor low

let of_char_pair c1 c2 = of_bytes ~high:(Char.code c1) ~low:(Char.code c2)

let words_of_string s =
  let n = String.length s in
  let nwords = (n + 1) / 2 in
  Array.init nwords (fun i ->
      let high = Char.code s.[2 * i] in
      let low = if (2 * i) + 1 < n then Char.code s.[(2 * i) + 1] else 0 in
      of_bytes ~high ~low)

let string_of_words ws ~len =
  if len < 0 || len > 2 * Array.length ws then
    invalid_arg "Word.string_of_words: bad length"
  else
    String.init len (fun i ->
        let w = ws.(i / 2) in
        Char.chr (if i mod 2 = 0 then high_byte w else low_byte w))

let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let hash (w : int) = Hashtbl.hash w
let pp fmt w = Format.pp_print_int fmt w
let pp_octal fmt w = Format.fprintf fmt "#%o" w
