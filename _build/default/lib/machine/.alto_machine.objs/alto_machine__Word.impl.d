lib/machine/word.ml: Array Char Format Hashtbl Printf Stdlib String
