lib/machine/vm.ml: Cpu Format Instr List Memory Printf Word
