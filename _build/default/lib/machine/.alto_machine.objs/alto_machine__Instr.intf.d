lib/machine/instr.mli: Format Word
