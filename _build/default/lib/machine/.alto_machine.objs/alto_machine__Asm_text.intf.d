lib/machine/asm_text.mli: Asm
