lib/machine/instr.ml: Format Printf Word
