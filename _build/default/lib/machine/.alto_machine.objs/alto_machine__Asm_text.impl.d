lib/machine/asm_text.ml: Asm Buffer Char List Printf String
