lib/machine/vm.mli: Cpu Format
