lib/machine/sim_clock.ml: Format
