lib/machine/sim_clock.mli: Format
