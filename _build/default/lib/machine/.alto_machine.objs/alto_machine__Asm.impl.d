lib/machine/asm.ml: Array Instr List Printf Result String Word
