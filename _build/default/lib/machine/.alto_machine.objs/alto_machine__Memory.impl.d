lib/machine/memory.ml: Array Word
