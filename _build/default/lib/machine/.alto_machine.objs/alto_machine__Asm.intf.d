lib/machine/asm.mli: Word
