lib/machine/cpu.ml: Array Memory Printf Word
