lib/machine/cpu.mli: Memory Word
