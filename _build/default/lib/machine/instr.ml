type t =
  | Halt
  | Ldi of int * int
  | Lda of int * int
  | Sta of int * int
  | Ldx of int * int
  | Stx of int * int
  | Mov of int * int
  | Add of int * int
  | Sub of int * int
  | And_ of int * int
  | Or_ of int * int
  | Xor_ of int * int
  | Shl of int * int
  | Shr of int * int
  | Addi of int * int
  | Jmp of int
  | Jz of int * int
  | Jnz of int * int
  | Jlt of int * int
  | Jsr of int
  | Jsri of int
  | Ret
  | Mfp of int
  | Mtf of int
  | Mul of int * int
  | Div of int * int
  | Rem of int * int
  | Push of int
  | Pop of int
  | Sys of int

let size = function
  | Ldi _ | Lda _ | Sta _ | Addi _ | Jmp _ | Jz _ | Jnz _ | Jlt _ | Jsr _ -> 2
  | Halt | Ldx _ | Stx _ | Mov _ | Add _ | Sub _ | And_ _ | Or_ _ | Xor_ _
  | Shl _ | Shr _ | Jsri _ | Ret | Mfp _ | Mtf _ | Mul _ | Div _ | Rem _
  | Push _ | Pop _ | Sys _ ->
      1

let check_reg r = if r < 0 || r > 3 then invalid_arg "Instr: register must be 0-3"

let check_count n =
  if n < 0 || n > 15 then invalid_arg "Instr: shift count must be 0-15"

let check_imm v =
  if v < 0 || v > 0xffff then invalid_arg "Instr: immediate out of 16-bit range"

let check_byte v = if v < 0 || v > 0xff then invalid_arg "Instr: code out of byte range"

let word op operand = Word.of_int_exn ((op lsl 8) lor operand)

let rr r r2 =
  check_reg r;
  check_reg r2;
  r lor (r2 lsl 2)

let r_imm op r imm =
  check_reg r;
  check_imm imm;
  [ word op r; Word.of_int_exn imm ]

let encode = function
  | Halt -> [ word 0x00 0 ]
  | Ldi (r, imm) -> r_imm 0x01 r imm
  | Lda (r, imm) -> r_imm 0x02 r imm
  | Sta (r, imm) -> r_imm 0x03 r imm
  | Ldx (r, r2) -> [ word 0x04 (rr r r2) ]
  | Stx (r, r2) -> [ word 0x05 (rr r r2) ]
  | Mov (r, r2) -> [ word 0x06 (rr r r2) ]
  | Add (r, r2) -> [ word 0x07 (rr r r2) ]
  | Sub (r, r2) -> [ word 0x08 (rr r r2) ]
  | And_ (r, r2) -> [ word 0x09 (rr r r2) ]
  | Or_ (r, r2) -> [ word 0x0a (rr r r2) ]
  | Xor_ (r, r2) -> [ word 0x0b (rr r r2) ]
  | Shl (r, n) ->
      check_reg r;
      check_count n;
      [ word 0x0c (r lor (n lsl 4)) ]
  | Shr (r, n) ->
      check_reg r;
      check_count n;
      [ word 0x0d (r lor (n lsl 4)) ]
  | Addi (r, imm) -> r_imm 0x0e r imm
  | Jmp imm ->
      check_imm imm;
      [ word 0x10 0; Word.of_int_exn imm ]
  | Jz (r, imm) -> r_imm 0x11 r imm
  | Jnz (r, imm) -> r_imm 0x12 r imm
  | Jlt (r, imm) -> r_imm 0x13 r imm
  | Jsr imm ->
      check_imm imm;
      [ word 0x14 0; Word.of_int_exn imm ]
  | Jsri r ->
      check_reg r;
      [ word 0x15 r ]
  | Ret -> [ word 0x16 0 ]
  | Mfp r ->
      check_reg r;
      [ word 0x1a r ]
  | Mtf r ->
      check_reg r;
      [ word 0x1b r ]
  | Mul (r, r2) -> [ word 0x1c (rr r r2) ]
  | Div (r, r2) -> [ word 0x1d (rr r r2) ]
  | Rem (r, r2) -> [ word 0x1e (rr r r2) ]
  | Push r ->
      check_reg r;
      [ word 0x17 r ]
  | Pop r ->
      check_reg r;
      [ word 0x18 r ]
  | Sys code ->
      check_byte code;
      [ word 0x19 code ]

let decode ~fetch ~pc =
  let w = Word.to_int (fetch pc) in
  let op = w lsr 8 and operand = w land 0xff in
  let r = operand land 3 and r2 = (operand lsr 2) land 3 in
  let count = (operand lsr 4) land 0xf in
  let imm () = Word.to_int (fetch (pc + 1)) in
  let one i = Ok (i, pc + 1) in
  let two i = Ok (i, pc + 2) in
  match op with
  | 0x00 -> one Halt
  | 0x01 -> two (Ldi (r, imm ()))
  | 0x02 -> two (Lda (r, imm ()))
  | 0x03 -> two (Sta (r, imm ()))
  | 0x04 -> one (Ldx (r, r2))
  | 0x05 -> one (Stx (r, r2))
  | 0x06 -> one (Mov (r, r2))
  | 0x07 -> one (Add (r, r2))
  | 0x08 -> one (Sub (r, r2))
  | 0x09 -> one (And_ (r, r2))
  | 0x0a -> one (Or_ (r, r2))
  | 0x0b -> one (Xor_ (r, r2))
  | 0x0c -> one (Shl (r, count))
  | 0x0d -> one (Shr (r, count))
  | 0x0e -> two (Addi (r, imm ()))
  | 0x10 -> two (Jmp (imm ()))
  | 0x11 -> two (Jz (r, imm ()))
  | 0x12 -> two (Jnz (r, imm ()))
  | 0x13 -> two (Jlt (r, imm ()))
  | 0x14 -> two (Jsr (imm ()))
  | 0x15 -> one (Jsri r)
  | 0x16 -> one Ret
  | 0x17 -> one (Push r)
  | 0x18 -> one (Pop r)
  | 0x19 -> one (Sys operand)
  | 0x1a -> one (Mfp r)
  | 0x1b -> one (Mtf r)
  | 0x1c -> one (Mul (r, r2))
  | 0x1d -> one (Div (r, r2))
  | 0x1e -> one (Rem (r, r2))
  | _ -> Error (Printf.sprintf "invalid opcode %#x at address %d" op pc)

let pp fmt i =
  let p f = Format.fprintf fmt f in
  match i with
  | Halt -> p "HALT"
  | Ldi (r, v) -> p "LDI AC%d, %d" r v
  | Lda (r, a) -> p "LDA AC%d, [%d]" r a
  | Sta (r, a) -> p "STA AC%d, [%d]" r a
  | Ldx (r, r2) -> p "LDX AC%d, [AC%d]" r r2
  | Stx (r, r2) -> p "STX AC%d, [AC%d]" r r2
  | Mov (r, r2) -> p "MOV AC%d, AC%d" r r2
  | Add (r, r2) -> p "ADD AC%d, AC%d" r r2
  | Sub (r, r2) -> p "SUB AC%d, AC%d" r r2
  | And_ (r, r2) -> p "AND AC%d, AC%d" r r2
  | Or_ (r, r2) -> p "OR AC%d, AC%d" r r2
  | Xor_ (r, r2) -> p "XOR AC%d, AC%d" r r2
  | Shl (r, n) -> p "SHL AC%d, %d" r n
  | Shr (r, n) -> p "SHR AC%d, %d" r n
  | Addi (r, v) -> p "ADDI AC%d, %d" r v
  | Jmp a -> p "JMP %d" a
  | Jz (r, a) -> p "JZ AC%d, %d" r a
  | Jnz (r, a) -> p "JNZ AC%d, %d" r a
  | Jlt (r, a) -> p "JLT AC%d, %d" r a
  | Jsr a -> p "JSR %d" a
  | Jsri r -> p "JSRI AC%d" r
  | Ret -> p "RET"
  | Mfp r -> p "MFP AC%d" r
  | Mtf r -> p "MTF AC%d" r
  | Mul (r, r2) -> p "MUL AC%d, AC%d" r r2
  | Div (r, r2) -> p "DIV AC%d, AC%d" r r2
  | Rem (r, r2) -> p "REM AC%d, AC%d" r r2
  | Push r -> p "PUSH AC%d" r
  | Pop r -> p "POP AC%d" r
  | Sys c -> p "SYS %d" c
