(** A textual syntax for the assembler, so programs can be written,
    stored and assembled {e on the pack} (the executive's [assemble]
    command) rather than only constructed in the host.

    Line-oriented:
    {v ; a comment runs to end of line
       start:              ; a label (alone, or before an instruction)
           LDI AC0, msg    ; operands: AC0-AC3, literals (42, 0x2a,
           JSR @WriteString;   0o52, 'c'), labels, and @Extern names
           LDI AC0, 0      ;   bound by the loader's fixup table
           JSR @Exit
       msg: .string "hello"; directives: .word N  .string "…"  .block N v} *)

val parse : string -> (Asm.item list, string) result
(** Errors name the offending line. *)

val assemble : ?origin:int -> string -> (Asm.program, string) result
(** {!parse} then {!Asm.assemble}. *)
