type sys_outcome = Sys_continue | Sys_stop of int

type handler = Cpu.t -> int -> sys_outcome

type stop = Halted | Stopped of int | Out_of_fuel | Fault of string

let pp_stop fmt = function
  | Halted -> Format.pp_print_string fmt "halted"
  | Stopped code -> Format.fprintf fmt "stopped by system (code %d)" code
  | Out_of_fuel -> Format.pp_print_string fmt "out of fuel"
  | Fault msg -> Format.fprintf fmt "fault: %s" msg

(* Instruction counters, per processor. A weak-ish side table keyed by
   physical identity; processors are few and long-lived. *)
let counters : (Cpu.t * int ref) list ref = ref []

let counter cpu =
  match List.find_opt (fun (c, _) -> c == cpu) !counters with
  | Some (_, r) -> r
  | None ->
      let r = ref 0 in
      counters := (cpu, r) :: !counters;
      r

let instructions_executed cpu = !(counter cpu)

let push cpu w =
  let fp = Word.to_int (Cpu.frame_pointer cpu) in
  let fp' = (fp - 1) land 0xffff in
  Memory.write (Cpu.memory cpu) fp' w;
  Cpu.set_frame_pointer cpu (Word.of_int fp')

let pop cpu =
  let fp = Word.to_int (Cpu.frame_pointer cpu) in
  let w = Memory.read (Cpu.memory cpu) fp in
  Cpu.set_frame_pointer cpu (Word.of_int (fp + 1));
  w

let step cpu ~handler =
  let memory = Cpu.memory cpu in
  let pc = Word.to_int (Cpu.pc cpu) in
  match Instr.decode ~fetch:(Memory.read memory) ~pc with
  | Error msg -> Error (Fault msg)
  | Ok (instr, next_pc) -> (
      incr (counter cpu);
      Cpu.set_pc cpu (Word.of_int next_pc);
      let ac = Cpu.ac cpu and set = Cpu.set_ac cpu in
      let jump target = Cpu.set_pc cpu (Word.of_int target) in
      try
        match instr with
        | Instr.Halt -> Error Halted
        | Instr.Ldi (r, v) ->
            set r (Word.of_int v);
            Ok ()
        | Instr.Lda (r, a) ->
            set r (Memory.read memory a);
            Ok ()
        | Instr.Sta (r, a) ->
            Memory.write memory a (ac r);
            Ok ()
        | Instr.Ldx (r, r2) ->
            set r (Memory.read memory (Word.to_int (ac r2)));
            Ok ()
        | Instr.Stx (r, r2) ->
            Memory.write memory (Word.to_int (ac r2)) (ac r);
            Ok ()
        | Instr.Mov (r, r2) ->
            set r (ac r2);
            Ok ()
        | Instr.Add (r, r2) ->
            set r (Word.add (ac r) (ac r2));
            Ok ()
        | Instr.Sub (r, r2) ->
            set r (Word.sub (ac r) (ac r2));
            Ok ()
        | Instr.And_ (r, r2) ->
            set r (Word.logand (ac r) (ac r2));
            Ok ()
        | Instr.Or_ (r, r2) ->
            set r (Word.logor (ac r) (ac r2));
            Ok ()
        | Instr.Xor_ (r, r2) ->
            set r (Word.logxor (ac r) (ac r2));
            Ok ()
        | Instr.Shl (r, n) ->
            set r (Word.shift_left (ac r) n);
            Ok ()
        | Instr.Shr (r, n) ->
            set r (Word.shift_right (ac r) n);
            Ok ()
        | Instr.Addi (r, v) ->
            set r (Word.add (ac r) (Word.of_int v));
            Ok ()
        | Instr.Jmp a ->
            jump a;
            Ok ()
        | Instr.Jz (r, a) ->
            if Word.equal (ac r) Word.zero then jump a;
            Ok ()
        | Instr.Jnz (r, a) ->
            if not (Word.equal (ac r) Word.zero) then jump a;
            Ok ()
        | Instr.Jlt (r, a) ->
            if Word.to_signed (ac r) < 0 then jump a;
            Ok ()
        | Instr.Jsr a ->
            push cpu (Cpu.pc cpu);
            jump a;
            Ok ()
        | Instr.Jsri r ->
            let target = Word.to_int (ac r) in
            push cpu (Cpu.pc cpu);
            jump target;
            Ok ()
        | Instr.Ret ->
            jump (Word.to_int (pop cpu));
            Ok ()
        | Instr.Mfp r ->
            set r (Cpu.frame_pointer cpu);
            Ok ()
        | Instr.Mtf r ->
            Cpu.set_frame_pointer cpu (ac r);
            Ok ()
        | Instr.Mul (r, r2) ->
            set r (Word.mul (ac r) (ac r2));
            Ok ()
        | Instr.Div (r, r2) ->
            if Word.equal (ac r2) Word.zero then
              Error (Fault (Printf.sprintf "division by zero at pc %d" pc))
            else begin
              set r (Word.of_int (Word.to_int (ac r) / Word.to_int (ac r2)));
              Ok ()
            end
        | Instr.Rem (r, r2) ->
            if Word.equal (ac r2) Word.zero then
              Error (Fault (Printf.sprintf "division by zero at pc %d" pc))
            else begin
              set r (Word.of_int (Word.to_int (ac r) mod Word.to_int (ac r2)));
              Ok ()
            end
        | Instr.Push r ->
            push cpu (ac r);
            Ok ()
        | Instr.Pop r ->
            set r (pop cpu);
            Ok ()
        | Instr.Sys code -> (
            match handler cpu code with
            | Sys_continue -> Ok ()
            | Sys_stop stop_code -> Error (Stopped stop_code))
      with Memory.Invalid_address a ->
        Error (Fault (Printf.sprintf "memory fault at address %d (pc %d)" a pc)))

let run ?(fuel = 1_000_000) cpu ~handler =
  let rec go fuel =
    if fuel <= 0 then Out_of_fuel
    else
      match step cpu ~handler with Ok () -> go (fuel - 1) | Error stop -> stop
  in
  go fuel
