exception Invalid_address of int

type t = { words : int array }

let size = 65536

let check_addr addr =
  if addr < 0 || addr >= size then raise (Invalid_address addr)

let check_range pos len =
  if len < 0 || pos < 0 || pos + len > size then
    raise (Invalid_address (if pos < 0 then pos else pos + len - 1))

let create () = { words = Array.make size 0 }

let read m addr =
  check_addr addr;
  Word.of_int m.words.(addr)

let write m addr w =
  check_addr addr;
  m.words.(addr) <- Word.to_int w

let read_block m ~pos ~len =
  check_range pos len;
  Array.init len (fun i -> Word.of_int m.words.(pos + i))

let write_block m ~pos ws =
  let len = Array.length ws in
  check_range pos len;
  for i = 0 to len - 1 do
    m.words.(pos + i) <- Word.to_int ws.(i)
  done

let fill m ~pos ~len w =
  check_range pos len;
  Array.fill m.words pos len (Word.to_int w)

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  check_range src_pos len;
  check_range dst_pos len;
  Array.blit src.words src_pos dst.words dst_pos len

let copy m = { words = Array.copy m.words }

let restore m ~from = Array.blit from.words 0 m.words 0 size

let equal a b = a.words = b.words

let words_differing a b =
  let n = ref 0 in
  for i = 0 to size - 1 do
    if a.words.(i) <> b.words.(i) then incr n
  done;
  !n

let write_string m ~pos s = write_block m ~pos (Word.words_of_string s)

let read_string m ~pos ~len =
  let nwords = (len + 1) / 2 in
  Word.string_of_words (read_block m ~pos ~len:nwords) ~len
