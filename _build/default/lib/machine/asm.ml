type operand = Reg of int | Imm of int | Lab of string | Ext of string

type item =
  | Op of string * operand list
  | Label of string
  | Word_data of int
  | String_data of string
  | Block of int

type program = {
  origin : int;
  code : Word.t array;
  entry : int;
  fixups : (int * string) list;
  symbols : (string * int) list;
}

(* Mnemonic shapes: how many operands, which kinds, and the constructor. *)
type kind =
  | K0 of Instr.t
  | Kr of (int -> Instr.t)
  | Krr of (int -> int -> Instr.t)
  | Krc of (int -> int -> Instr.t)  (* register + small literal count *)
  | Kri of (int -> int -> Instr.t)  (* register + immediate/label/extern *)
  | Ki of (int -> Instr.t)  (* immediate/label/extern *)
  | Kc of (int -> Instr.t)  (* small literal code *)

let kinds =
  [
    ("HALT", K0 Instr.Halt);
    ("RET", K0 Instr.Ret);
    ("PUSH", Kr (fun r -> Instr.Push r));
    ("POP", Kr (fun r -> Instr.Pop r));
    ("JSRI", Kr (fun r -> Instr.Jsri r));
    ("MFP", Kr (fun r -> Instr.Mfp r));
    ("MTF", Kr (fun r -> Instr.Mtf r));
    ("MUL", Krr (fun r r2 -> Instr.Mul (r, r2)));
    ("DIV", Krr (fun r r2 -> Instr.Div (r, r2)));
    ("REM", Krr (fun r r2 -> Instr.Rem (r, r2)));
    ("LDX", Krr (fun r r2 -> Instr.Ldx (r, r2)));
    ("STX", Krr (fun r r2 -> Instr.Stx (r, r2)));
    ("MOV", Krr (fun r r2 -> Instr.Mov (r, r2)));
    ("ADD", Krr (fun r r2 -> Instr.Add (r, r2)));
    ("SUB", Krr (fun r r2 -> Instr.Sub (r, r2)));
    ("AND", Krr (fun r r2 -> Instr.And_ (r, r2)));
    ("OR", Krr (fun r r2 -> Instr.Or_ (r, r2)));
    ("XOR", Krr (fun r r2 -> Instr.Xor_ (r, r2)));
    ("SHL", Krc (fun r n -> Instr.Shl (r, n)));
    ("SHR", Krc (fun r n -> Instr.Shr (r, n)));
    ("LDI", Kri (fun r v -> Instr.Ldi (r, v)));
    ("LDA", Kri (fun r v -> Instr.Lda (r, v)));
    ("STA", Kri (fun r v -> Instr.Sta (r, v)));
    ("ADDI", Kri (fun r v -> Instr.Addi (r, v)));
    ("JZ", Kri (fun r v -> Instr.Jz (r, v)));
    ("JNZ", Kri (fun r v -> Instr.Jnz (r, v)));
    ("JLT", Kri (fun r v -> Instr.Jlt (r, v)));
    ("JMP", Ki (fun v -> Instr.Jmp v));
    ("JSR", Ki (fun v -> Instr.Jsr v));
    ("SYS", Kc (fun c -> Instr.Sys c));
  ]

let kind_of mnemonic = List.assoc_opt mnemonic kinds

let item_size = function
  | Op (m, _) -> (
      match kind_of m with
      | Some (K0 _ | Kr _ | Krr _ | Krc _ | Kc _) -> Ok 1
      | Some (Kri _ | Ki _) -> Ok 2
      | None -> Error (Printf.sprintf "unknown mnemonic %S" m))
  | Label _ -> Ok 0
  | Word_data _ -> Ok 1
  | String_data s -> Ok (1 + ((String.length s + 1) / 2))
  | Block n -> if n < 0 then Error "negative block size" else Ok n

let assemble ?(origin = 0) items =
  let ( let* ) = Result.bind in
  (* Pass 1: addresses of every item and label. *)
  let* symbols, _total =
    List.fold_left
      (fun acc item ->
        let* symbols, addr = acc in
        let* size = item_size item in
        match item with
        | Label name ->
            if List.mem_assoc name symbols then
              Error (Printf.sprintf "label %S defined twice" name)
            else Ok ((name, addr) :: symbols, addr)
        | Op _ | Word_data _ | String_data _ | Block _ -> Ok (symbols, addr + size))
      (Ok ([], origin))
      items
  in
  let lookup name =
    match List.assoc_opt name symbols with
    | Some a -> Ok a
    | None -> Error (Printf.sprintf "undefined label %S" name)
  in
  (* Pass 2: emit. [emit] returns words in reverse plus fixups. *)
  let reg = function
    | Reg r when r >= 0 && r <= 3 -> Ok r
    | Reg r -> Error (Printf.sprintf "no register AC%d" r)
    | Imm _ | Lab _ | Ext _ -> Error "expected a register operand"
  in
  let literal = function
    | Imm v -> Ok v
    | Reg _ | Lab _ | Ext _ -> Error "expected a literal operand"
  in
  (* An immediate position may hold a literal, a label, or an extern; an
     extern assembles as 0 and records a fixup at [imm_offset]. *)
  let immediate imm_offset fixups = function
    | Imm v -> Ok (v, fixups)
    | Lab name ->
        let* a = lookup name in
        Ok (a, fixups)
    | Ext name -> Ok (0, (imm_offset, name) :: fixups)
    | Reg _ -> Error "expected an immediate, label or external operand"
  in
  let bad_arity m = Error (Printf.sprintf "wrong operand count for %s" m) in
  let emit_instr offset fixups m operands =
    let* kind =
      match kind_of m with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown mnemonic %S" m)
    in
    let* instr, fixups =
      match (kind, operands) with
      | K0 i, [] -> Ok (i, fixups)
      | Kr f, [ o ] ->
          let* r = reg o in
          Ok (f r, fixups)
      | Krr f, [ o1; o2 ] ->
          let* r = reg o1 in
          let* r2 = reg o2 in
          Ok (f r r2, fixups)
      | Krc f, [ o1; o2 ] ->
          let* r = reg o1 in
          let* n = literal o2 in
          Ok (f r n, fixups)
      | Kri f, [ o1; o2 ] ->
          let* r = reg o1 in
          let* v, fixups = immediate (offset + 1) fixups o2 in
          Ok (f r v, fixups)
      | Ki f, [ o ] ->
          let* v, fixups = immediate (offset + 1) fixups o in
          Ok (f v, fixups)
      | Kc f, [ o ] ->
          let* c = literal o in
          Ok (f c, fixups)
      | (K0 _ | Kr _ | Krr _ | Krc _ | Kri _ | Ki _ | Kc _), _ -> bad_arity m
    in
    match Instr.encode instr with
    | words -> Ok (words, fixups)
    | exception Invalid_argument msg -> Error (m ^ ": " ^ msg)
  in
  let* rev_words, fixups =
    List.fold_left
      (fun acc item ->
        let* rev_words, fixups = acc in
        let offset = List.length rev_words in
        match item with
        | Label _ -> Ok (rev_words, fixups)
        | Word_data v ->
            if v < 0 || v > 0xffff then Error "data word out of range"
            else Ok (Word.of_int_exn v :: rev_words, fixups)
        | String_data s ->
            let packed = Word.words_of_string s in
            let with_len =
              Word.of_int_exn (String.length s) :: Array.to_list packed
            in
            Ok (List.rev_append with_len rev_words, fixups)
        | Block n -> Ok (List.rev_append (List.init n (fun _ -> Word.zero)) rev_words, fixups)
        | Op (m, operands) ->
            let* words, fixups = emit_instr offset fixups m operands in
            Ok (List.rev_append words rev_words, fixups))
      (Ok ([], []))
      items
  in
  let code = Array.of_list (List.rev rev_words) in
  let entry =
    match List.assoc_opt "start" symbols with Some a -> a | None -> origin
  in
  Ok { origin; code; entry; fixups = List.rev fixups; symbols = List.rev symbols }

let assemble_exn ?origin items =
  match assemble ?origin items with
  | Ok p -> p
  | Error msg -> failwith ("Asm.assemble: " ^ msg)
