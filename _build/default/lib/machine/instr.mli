(** The simulated processor's instruction set.

    The real Alto executed BCPL-oriented instruction sets implemented in
    writable microcode; the paper's operating system only depends on the
    machine being a 16-bit word machine with procedure calls and a way to
    trap to resident system code. This instruction set is our stand-in:
    a minimal accumulator machine with a downward-growing stack (through
    the frame-pointer register) and a [SYS] trap by which loaded programs
    invoke operating-system services. Programs written in it are what the
    loader loads, the world-swapper suspends, and the Junta survives.

    Encoding: one word per instruction, [opcode * 256 + operand], with an
    optional immediate word following. The operand byte packs up to two
    register numbers ([r] in bits 0–1, [r2] in bits 2–3) or, for [SYS]
    and the shifts, a small literal. *)

type t =
  | Halt
  | Ldi of int * int  (** [Ldi (r, imm)]: AC[r] ← imm. *)
  | Lda of int * int  (** AC[r] ← memory[imm]. *)
  | Sta of int * int  (** memory[imm] ← AC[r]. *)
  | Ldx of int * int  (** [Ldx (r, r2)]: AC[r] ← memory[AC[r2]]. *)
  | Stx of int * int  (** memory[AC[r2]] ← AC[r]. *)
  | Mov of int * int  (** AC[r] ← AC[r2]. *)
  | Add of int * int
  | Sub of int * int
  | And_ of int * int
  | Or_ of int * int
  | Xor_ of int * int
  | Shl of int * int  (** [Shl (r, count)], count in 0–15. *)
  | Shr of int * int
  | Addi of int * int  (** AC[r] ← AC[r] + imm. *)
  | Jmp of int
  | Jz of int * int  (** [Jz (r, imm)]: jump to imm when AC[r] = 0. *)
  | Jnz of int * int
  | Jlt of int * int  (** Jump when AC[r] is negative as a signed word. *)
  | Jsr of int  (** Push return address, jump to imm. *)
  | Jsri of int  (** Push return address, jump to AC[r]. *)
  | Ret
  | Mfp of int  (** AC[r] ← frame pointer. *)
  | Mtf of int  (** frame pointer ← AC[r]. *)
  | Mul of int * int  (** AC[r] ← AC[r] × AC[r2], low 16 bits. *)
  | Div of int * int
      (** AC[r] ← AC[r] ÷ AC[r2], unsigned; division by zero faults.
          Multiply and divide were microcode routines on the real
          machine; here the "microcode" is the interpreter. *)
  | Rem of int * int  (** AC[r] ← AC[r] mod AC[r2], unsigned. *)
  | Push of int
  | Pop of int
  | Sys of int  (** Trap to the system-call handler with code 0–255. *)

val size : t -> int
(** Words occupied: 1, or 2 when an immediate follows. *)

val encode : t -> Word.t list
(** The instruction's words, in memory order. Raises [Invalid_argument]
    on an out-of-range register, count, immediate or trap code. *)

val decode : fetch:(int -> Word.t) -> pc:int -> (t * int, string) result
(** [decode ~fetch ~pc] decodes the instruction at [pc] and returns it
    with the address of the following instruction. *)

val pp : Format.formatter -> t -> unit
