type t = { mutable now : int }

let create () = { now = 0 }
let now_us c = c.now

let advance_us c dt =
  if dt < 0 then invalid_arg "Sim_clock.advance_us: negative duration"
  else c.now <- c.now + dt

let reset c = c.now <- 0
let now_seconds c = float_of_int c.now /. 1e6

let pp_duration fmt us =
  if us < 1_000 then Format.fprintf fmt "%d µs" us
  else if us < 1_000_000 then Format.fprintf fmt "%.2f ms" (float_of_int us /. 1e3)
  else if us < 60_000_000 then Format.fprintf fmt "%.2f s" (float_of_int us /. 1e6)
  else Format.fprintf fmt "%.2f min" (float_of_int us /. 60e6)
