(** Simulated time.

    The paper's performance claims (a one-minute scavenge, a one-second
    world swap) are about Alto hardware, not about the host running this
    simulation. Every device in the system therefore charges its costs to
    a shared simulated clock, measured in microseconds, and the experiment
    harness reports simulated time. *)

type t

val create : unit -> t
(** A fresh clock reading zero. *)

val now_us : t -> int
(** Current simulated time in microseconds since creation/reset. *)

val advance_us : t -> int -> unit
(** [advance_us c dt] moves time forward by [dt] microseconds. Raises
    [Invalid_argument] if [dt] is negative. *)

val reset : t -> unit
(** Rewind to zero. Accumulated time is discarded. *)

val now_seconds : t -> float
(** {!now_us} converted to seconds. *)

val pp_duration : Format.formatter -> int -> unit
(** Pretty-print a duration in microseconds with a human-readable unit
    (µs, ms, s or min as appropriate). *)
