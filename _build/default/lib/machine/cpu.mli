(** The Alto processor's programmer-visible state.

    The world-swap mechanism of the paper (§4) is defined by "a convention
    for restoring the entire state of the machine from a disk file"; the
    entire state is main memory plus this register file. We model the four
    BCPL-visible accumulators, the program counter, and the stack-frame
    pointer that the BCPL runtime keeps in a fixed register. *)

type t

val accumulator_count : int
(** Four accumulators, AC0–AC3. *)

val create : Memory.t -> t
(** A processor attached to the given memory, registers zeroed. *)

val memory : t -> Memory.t

val pc : t -> Word.t
val set_pc : t -> Word.t -> unit

val ac : t -> int -> Word.t
(** [ac cpu i] reads accumulator [i]; raises [Invalid_argument] unless
    [0 <= i < accumulator_count]. *)

val set_ac : t -> int -> Word.t -> unit

val frame_pointer : t -> Word.t
(** The BCPL stack-frame pointer. *)

val set_frame_pointer : t -> Word.t -> unit

val registers : t -> Word.t array
(** All registers in serialization order: PC, frame pointer, AC0–AC3.
    The array is fresh; mutating it does not affect the processor. *)

val register_count : int
(** Length of the {!registers} array (6). *)

val load_registers : t -> Word.t array -> unit
(** Inverse of {!registers}. Raises [Invalid_argument] on a wrong-length
    array. *)

val equal_registers : t -> t -> bool
