exception Syntax of string

let fail_line n msg = raise (Syntax (Printf.sprintf "line %d: %s" n msg))

(* Strip a trailing comment, respecting string literals. *)
let strip_comment line =
  let n = String.length line in
  let rec scan i in_string =
    if i >= n then line
    else
      match line.[i] with
      | '"' -> scan (i + 1) (not in_string)
      | '\\' when in_string -> scan (i + 2) in_string
      | ';' when not in_string -> String.sub line 0 i
      | _ -> scan (i + 1) in_string
  in
  scan 0 false

let parse_literal token =
  let char_literal () =
    if String.length token = 3 && token.[2] = '\'' then Some (Char.code token.[1])
    else if String.length token = 4 && token.[1] = '\\' && token.[3] = '\'' then
      match token.[2] with
      | 'n' -> Some (Char.code '\n')
      | 't' -> Some (Char.code '\t')
      | '\\' -> Some (Char.code '\\')
      | '\'' -> Some (Char.code '\'')
      | '0' -> Some 0
      | _ -> None
    else None
  in
  if String.length token = 0 then None
  else if token.[0] = '\'' then char_literal ()
  else int_of_string_opt token (* handles 0x…, 0o…, decimal *)

let parse_operand lineno token =
  let token = String.trim token in
  if String.length token = 0 then fail_line lineno "empty operand"
  else if String.length token = 3 && String.sub token 0 2 = "AC" then
    match token.[2] with
    | '0' .. '3' -> Asm.Reg (Char.code token.[2] - Char.code '0')
    | _ -> fail_line lineno (Printf.sprintf "no register %s" token)
  else if token.[0] = '@' then Asm.Ext (String.sub token 1 (String.length token - 1))
  else
    match parse_literal token with
    | Some v -> Asm.Imm v
    | None -> Asm.Lab token

let split_operands s =
  if String.trim s = "" then []
  else List.map String.trim (String.split_on_char ',' s)

let parse_string_literal s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then None
  else begin
    let buffer = Buffer.create (n - 2) in
    let rec go i =
      if i >= n - 1 then Some (Buffer.contents buffer)
      else if s.[i] = '\\' && i + 1 < n - 1 then begin
        (match s.[i + 1] with
        | 'n' -> Buffer.add_char buffer '\n'
        | 't' -> Buffer.add_char buffer '\t'
        | '\\' -> Buffer.add_char buffer '\\'
        | '"' -> Buffer.add_char buffer '"'
        | c -> Buffer.add_char buffer c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buffer s.[i];
        go (i + 1)
      end
    in
    go 1
  end

let is_label_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '$'

let parse_directive lineno rest =
  let directive, argument =
    match String.index_opt rest ' ' with
    | Some k -> (String.sub rest 0 k, String.trim (String.sub rest k (String.length rest - k)))
    | None -> (rest, "")
  in
  match directive with
  | ".word" -> (
      match parse_literal argument with
      | Some v when v >= 0 && v <= 0xffff -> Asm.Word_data v
      | Some _ | None -> fail_line lineno ".word needs a 16-bit literal")
  | ".block" -> (
      match parse_literal argument with
      | Some v when v >= 0 -> Asm.Block v
      | Some _ | None -> fail_line lineno ".block needs a size")
  | ".string" -> (
      match parse_string_literal argument with
      | Some s -> Asm.String_data s
      | None -> fail_line lineno ".string needs a quoted string")
  | other -> fail_line lineno (Printf.sprintf "unknown directive %s" other)

let parse source =
  try
    let items = ref [] in
    let emit item = items := item :: !items in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let line = String.trim (strip_comment raw) in
        if line <> "" then begin
          (* Peel a leading "name:" label. *)
          let rest =
            match String.index_opt line ':' with
            | Some k when k > 0 && String.for_all is_label_char (String.sub line 0 k) ->
                emit (Asm.Label (String.sub line 0 k));
                String.trim (String.sub line (k + 1) (String.length line - k - 1))
            | Some _ | None -> line
          in
          if rest = "" then ()
          else if rest.[0] = '.' then emit (parse_directive lineno rest)
          else begin
            let mnemonic, operand_text =
              match String.index_opt rest ' ' with
              | Some k -> (String.sub rest 0 k, String.sub rest k (String.length rest - k))
              | None -> (rest, "")
            in
            emit
              (Asm.Op
                 ( String.uppercase_ascii mnemonic,
                   List.map (parse_operand lineno) (split_operands operand_text) ))
          end
        end)
      (String.split_on_char '\n' source);
    Ok (List.rev !items)
  with Syntax msg -> Error msg

let assemble ?origin source =
  match parse source with
  | Error _ as e -> e
  | Ok items -> Asm.assemble ?origin items
