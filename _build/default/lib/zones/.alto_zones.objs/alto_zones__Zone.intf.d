lib/zones/zone.mli: Alto_machine
