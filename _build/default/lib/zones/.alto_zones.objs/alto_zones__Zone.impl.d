lib/zones/zone.ml: Alto_machine Printf
