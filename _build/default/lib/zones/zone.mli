(** Storage zones: the system's free-storage objects (§2, §5.2).

    "The storage allocator … will build zone objects to allocate any part
    of memory, whether in the system free storage region or not." A zone
    is created over an arbitrary region of the simulated 64K memory and
    hands out blocks from it. All allocator state (free list, block
    headers) lives {e inside} the region itself, so a zone survives a
    world swap: after [InLoad] the program re-attaches to the same base
    address and finds its heap intact — the paper's point that saved
    state usually remains valid.

    Like every abstract object in the system, a zone can also be passed
    around as a record of its operations ({!obj}), so a client such as the
    disk-stream package works with any allocator the user substitutes. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory

exception Out_of_space of { zone : string; requested : int }
(** Allocation failed: no free block is big enough. *)

exception Corrupt of string
(** The in-memory zone structure fails a sanity check — typically the
    result of a wild store by an errant program. *)

type t

val overhead_words : int
(** Words of the region consumed by the zone descriptor. *)

val block_overhead_words : int
(** Words of bookkeeping consumed per allocated block. *)

val min_region_words : int
(** Smallest region over which a zone can be created. *)

val format : ?name:string -> Memory.t -> pos:int -> len:int -> t
(** [format memory ~pos ~len] initializes a fresh zone over
    [\[pos, pos + len)]. Raises [Invalid_argument] if the region does not
    lie inside memory or is smaller than {!min_region_words}. *)

val attach : ?name:string -> Memory.t -> pos:int -> t
(** Re-attach to a zone previously created by {!format} at [pos] — e.g.
    after a world swap restored the memory image. Raises {!Corrupt} if no
    valid zone descriptor is found there. *)

val base : t -> int
(** The region's starting address (what you pass back to {!attach}). *)

val name : t -> string

val allocate : t -> int -> int
(** [allocate z n] returns the address of a fresh block of [n >= 1] words.
    The block's contents are unspecified. Raises {!Out_of_space} or
    [Invalid_argument] on [n < 1]. *)

val release : t -> int -> unit
(** Return a block obtained from {!allocate}. Freed space is coalesced
    with adjacent free blocks. Raises {!Corrupt} if [addr] is not a live
    block of this zone. *)

val block_size : t -> int -> int
(** Size in words of the live block at [addr]. *)

type stats = {
  region_words : int;  (** Total words in the region, including overhead. *)
  free_words : int;  (** Words available to future allocations. *)
  live_blocks : int;
  free_blocks : int;
  largest_free : int;  (** Largest single allocation that would succeed. *)
}

val stats : t -> stats

val check : t -> unit
(** Walk the whole zone structure and raise {!Corrupt} on any
    inconsistency. Used by tests and by the robustness experiments. *)

type obj = {
  obj_allocate : int -> int;
  obj_release : int -> unit;
}
(** A zone as an abstract object: just its two operations, the shape in
    which packages accept user-substituted allocators. *)

val obj : t -> obj
