module Word = Alto_machine.Word
module Net = Alto_net.Net
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory

(* Request opcodes (packet word 0). *)
let op_get = 10
let op_put = 11
let op_list = 12

(* Reply opcodes. File contents travel as file transfers, not packets. *)
let op_ack = 20
let op_error = 21

let listing_name = ";listing"

type stats = { gets : int; puts : int; lists : int; errors : int }

type t = {
  fs : Fs.t;
  station : Net.station;
  mutable gets : int;
  mutable puts : int;
  mutable lists : int;
  mutable errors : int;
}

let create fs station = { fs; station; gets = 0; puts = 0; lists = 0; errors = 0 }

let stats t = { gets = t.gets; puts = t.puts; lists = t.lists; errors = t.errors }

let packet_string payload ~at =
  if Array.length payload <= at then None
  else
    let len = Word.to_int payload.(at) in
    let nwords = (len + 1) / 2 in
    if Array.length payload < at + 1 + nwords then None
    else Some (Word.string_of_words (Array.sub payload (at + 1) nwords) ~len)

let string_packet op s =
  Array.concat
    [ [| Word.of_int_exn op; Word.of_int_exn (String.length s) |]; Word.words_of_string s ]

let send_error t ~to_ msg =
  t.errors <- t.errors + 1;
  match Net.send t.station ~to_ (string_packet op_error msg) with
  | Ok () | Error _ -> ()

let with_root t ~to_ f =
  match Directory.open_root t.fs with
  | Error e -> send_error t ~to_ (Format.asprintf "server volume sick: %a" Directory.pp_error e)
  | Ok root -> f root

let read_whole fs entry =
  let ( let* ) = Result.bind in
  let* file = File.open_leader fs entry.Directory.entry_file in
  let* bytes = File.read_bytes file ~pos:0 ~len:(File.byte_length file) in
  Ok (Bytes.to_string bytes)

let serve_get t ~to_ name =
  with_root t ~to_ (fun root ->
      match Directory.lookup root name with
      | Ok (Some entry) -> (
          match read_whole t.fs entry with
          | Ok contents -> (
              t.gets <- t.gets + 1;
              match Net.send_file t.station ~to_ ~name contents with
              | Ok () -> ()
              | Error e -> send_error t ~to_ (Format.asprintf "%a" Net.pp_error e))
          | Error e -> send_error t ~to_ (Format.asprintf "%s: %a" name File.pp_error e))
      | Ok None -> send_error t ~to_ (Printf.sprintf "no file %S" name)
      | Error e -> send_error t ~to_ (Format.asprintf "%a" Directory.pp_error e))

let serve_put t ~to_ name =
  (* The file body follows the request on the wire. *)
  match Net.receive_file t.station with
  | None -> send_error t ~to_ "PUT without a following file transfer"
  | Some (sent_name, contents) ->
      if not (String.equal sent_name name) then
        send_error t ~to_ "PUT name does not match the transferred file"
      else
        with_root t ~to_ (fun root ->
            let ( let* ) = Result.bind in
            let stored =
              let* file =
                match Directory.lookup root name with
                | Ok (Some e) ->
                    Result.map_error
                      (fun e -> Format.asprintf "%a" File.pp_error e)
                      (File.open_leader t.fs e.Directory.entry_file)
                | Ok None ->
                    let* file =
                      Result.map_error
                        (fun e -> Format.asprintf "%a" File.pp_error e)
                        (File.create t.fs ~name)
                    in
                    let* () =
                      Result.map_error
                        (fun e -> Format.asprintf "%a" Directory.pp_error e)
                        (Directory.add root ~name (File.leader_name file))
                    in
                    Ok file
                | Error e -> Error (Format.asprintf "%a" Directory.pp_error e)
              in
              let file_err r =
                Result.map_error (fun e -> Format.asprintf "%a" File.pp_error e) r
              in
              let* () = file_err (File.truncate file ~len:0) in
              let* () =
                if String.length contents = 0 then Ok ()
                else file_err (File.write_bytes file ~pos:0 contents)
              in
              file_err (File.flush_leader file)
            in
            match stored with
            | Ok () -> (
                t.puts <- t.puts + 1;
                match Net.send t.station ~to_ [| Word.of_int op_ack |] with
                | Ok () | Error _ -> ())
            | Error msg -> send_error t ~to_ msg)

let serve_list t ~to_ =
  with_root t ~to_ (fun root ->
      match Directory.entries root with
      | Error e -> send_error t ~to_ (Format.asprintf "%a" Directory.pp_error e)
      | Ok entries -> (
          t.lists <- t.lists + 1;
          let text =
            String.concat "\n"
              (List.map (fun (e : Directory.entry) -> e.Directory.entry_name) entries)
          in
          match Net.send_file t.station ~to_ ~name:listing_name text with
          | Ok () -> ()
          | Error e -> send_error t ~to_ (Format.asprintf "%a" Net.pp_error e)))

let step t =
  match Net.receive t.station with
  | None -> false
  | Some { Net.src; payload } ->
      (if Array.length payload = 0 then send_error t ~to_:src "empty request"
       else
         let op = Word.to_int payload.(0) in
         if op = op_get then
           match packet_string payload ~at:1 with
           | Some name -> serve_get t ~to_:src name
           | None -> send_error t ~to_:src "malformed GET"
         else if op = op_put then
           match packet_string payload ~at:1 with
           | Some name -> serve_put t ~to_:src name
           | None -> send_error t ~to_:src "malformed PUT"
         else if op = op_list then serve_list t ~to_:src
         else send_error t ~to_:src (Printf.sprintf "unknown request %d" op));
      true

let serve_pending t =
  let rec go n = if step t then go (n + 1) else n in
  go 0

module Client = struct
  type error = Remote of string | Protocol of string | Net_error of Net.error

  let pp_error fmt = function
    | Remote msg -> Format.fprintf fmt "server says: %s" msg
    | Protocol msg -> Format.fprintf fmt "protocol trouble: %s" msg
    | Net_error e -> Net.pp_error fmt e

  let net r = Result.map_error (fun e -> Net_error e) r

  (* After pumping the server, the reply is either a file transfer or a
     single status packet. *)
  let reply station =
    match Net.receive_file station with
    | Some (name, contents) -> Ok (`File (name, contents))
    | None -> (
        match Net.receive station with
        | None -> Error (Protocol "no reply")
        | Some { Net.payload; _ } ->
            if Array.length payload = 0 then Error (Protocol "empty reply")
            else
              let op = Word.to_int payload.(0) in
              if op = op_ack then Ok `Ack
              else if op = op_error then
                match packet_string payload ~at:1 with
                | Some msg -> Error (Remote msg)
                | None -> Error (Protocol "malformed error packet")
              else Error (Protocol (Printf.sprintf "unexpected reply %d" op)))

  let fetch station ~server ~name ~pump =
    let ( let* ) = Result.bind in
    let* () = net (Net.send station ~to_:server (string_packet op_get name)) in
    pump ();
    match reply station with
    | Ok (`File (got, contents)) ->
        if String.equal got name then Ok contents
        else Error (Protocol (Printf.sprintf "asked for %S, got %S" name got))
    | Ok `Ack -> Error (Protocol "bare acknowledgement to a GET")
    | Error e -> Error e

  let store station ~server ~name contents ~pump =
    let ( let* ) = Result.bind in
    let* () = net (Net.send station ~to_:server (string_packet op_put name)) in
    let* () = net (Net.send_file station ~to_:server ~name contents) in
    pump ();
    match reply station with
    | Ok `Ack -> Ok ()
    | Ok (`File _) -> Error (Protocol "unexpected file in reply to PUT")
    | Error e -> Error e

  let listing station ~server ~pump =
    let ( let* ) = Result.bind in
    let* () = net (Net.send station ~to_:server [| Word.of_int op_list |]) in
    pump ();
    match reply station with
    | Ok (`File (name, contents)) when String.equal name listing_name ->
        Ok (List.filter (fun l -> l <> "") (String.split_on_char '\n' contents))
    | Ok (`File _) -> Error (Protocol "unexpected file in reply to LIST")
    | Ok `Ack -> Error (Protocol "bare acknowledgement to a LIST")
    | Error e -> Error e
end
