(** A network file server and its client.

    §5.2 mentions both halves: a file server built from the standard
    packages over a non-standard disk, and a diskless configuration of
    the operating system that depends "on network communications rather
    than on local disk storage". This package supplies the protocol
    between them: named files fetched from, stored to, and listed on a
    machine that has a pack, by machines that may have none.

    The protocol rides the network's packet and file-transfer framing.
    Requests are single packets ([GET name], [PUT name] followed by the
    file body, [LIST]); replies are file transfers (the content, or a
    listing under the reserved name [";listing"]) or error packets. The
    simulation is single-threaded, so client calls take a [pump]
    callback that gives the server its turn — the moral equivalent of
    waiting for the wire. *)

module Net = Alto_net.Net
module Fs = Alto_fs.Fs

type t

type stats = { gets : int; puts : int; lists : int; errors : int }

val create : Fs.t -> Net.station -> t
(** Serve the given volume's root directory on the given station. *)

val step : t -> bool
(** Handle one pending request; [false] when the queue is empty. *)

val serve_pending : t -> int
(** Handle everything pending; returns the number of requests served. *)

val stats : t -> stats

(** {2 The client side} *)

module Client : sig
  type error =
    | Remote of string  (** The server refused, with its message. *)
    | Protocol of string
    | Net_error of Net.error

  val pp_error : Format.formatter -> error -> unit

  val fetch :
    Net.station -> server:string -> name:string -> pump:(unit -> unit) ->
    (string, error) result
  (** Fetch a named file's contents. *)

  val store :
    Net.station -> server:string -> name:string -> string -> pump:(unit -> unit) ->
    (unit, error) result
  (** Create or overwrite a named file on the server. *)

  val listing :
    Net.station -> server:string -> pump:(unit -> unit) -> (string list, error) result
end
