lib/server/file_server.mli: Alto_fs Alto_net Format
