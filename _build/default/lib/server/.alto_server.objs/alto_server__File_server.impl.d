lib/server/file_server.ml: Alto_fs Alto_machine Alto_net Array Bytes Format List Printf Result String
