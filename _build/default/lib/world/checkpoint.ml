module Word = Alto_machine.Word
module Cpu = Alto_machine.Cpu
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Install = Alto_fs.Install
module Directory = Alto_fs.Directory

type error = World_error of World.error | Catalogue of Install.error

let pp_error fmt = function
  | World_error e -> World.pp_error fmt e
  | Catalogue e -> Install.pp_error fmt e

let ( let* ) = Result.bind
let world r = Result.map_error (fun e -> World_error e) r
let catalogue r = Result.map_error (fun e -> Catalogue e) r

let state_file fs ~directory ~name =
  let* existing = catalogue (Result.map_error (fun e -> Install.Dir_error e) (Directory.lookup directory name)) in
  let* file =
    match existing with
    | Some e ->
        catalogue
          (Result.map_error (fun e -> Install.File_error e)
             (File.open_leader fs e.Directory.entry_file))
    | None ->
        let* file =
          catalogue
            (Result.map_error (fun e -> Install.File_error e) (File.create fs ~name))
        in
        let* () =
          catalogue
            (Result.map_error (fun e -> Install.Dir_error e)
               (Directory.add directory ~name (File.leader_name file)))
        in
        Ok file
  in
  (* Pre-size so swaps never pay the per-page extension cost. *)
  let wanted = 2 * World.state_file_words in
  if File.byte_length file >= wanted then Ok file
  else
    let pad = String.make (wanted - File.byte_length file) '\000' in
    let* () =
      catalogue
        (Result.map_error (fun e -> Install.File_error e)
           (File.write_bytes file ~pos:(File.byte_length file) pad))
    in
    Ok file

let save cpu file = world (World.out_load cpu file)

let resume cpu file ~message = world (World.in_load cpu file ~message)

let transfer cpu ~save_to ~restore_from ~message =
  let* () = world (World.out_load cpu save_to) in
  world (World.in_load cpu restore_from ~message)
