(** World swapping: [OutLoad] and [InLoad] (§4, §4.1).

    "These transfers of control are achieved by defining a convention for
    restoring the entire state of the machine from a disk file." The
    entire state is the register file and the 64K-word memory image;
    {!out_load} writes it to an ordinary file (about a second of
    simulated time on a pre-sized file, matching the paper), {!in_load}
    replaces the running world with a saved one and delivers a message of
    up to 20 words.

    The paper's [OutLoad] returns {e twice}: once with [written] true in
    the world that called it, and once with [written] false in every
    world later revived from the file. At this layer the calling
    convention is explicit: the processor state saved is exactly the
    state at the moment of the call, so whoever invokes {!out_load}
    arranges the registers first (set the "written" flag register to
    false, save, then set it true). The operating system's trap handlers
    do precisely that dance, giving loaded programs the paper's exact
    double-return semantics; see {!Alto_os.System}. *)

module Word = Alto_machine.Word
module Cpu = Alto_machine.Cpu
module File = Alto_fs.File

type error =
  | File_error of File.error
  | Bad_state of string  (** The file does not hold a machine state. *)
  | Message_too_long

val pp_error : Format.formatter -> error -> unit

val max_message_words : int
(** 20 — "a message (about 20 words)". *)

val message_area : int
(** The fixed memory address (16) where {!in_load} deposits the message
    in the restored image; AC1 also points here afterwards. *)

val state_file_words : int
(** Size of a machine-state image in words; pre-size state files to
    [2 * state_file_words] bytes to get the one-second steady-state
    swap. *)

val out_load : Cpu.t -> File.t -> (unit, error) result
(** Write the processor's registers and whole memory to the file
    (extending or truncating it to exactly one state image). The running
    world continues unchanged. *)

val in_load : Cpu.t -> File.t -> message:Word.t array -> (unit, error) result
(** Replace registers and memory with the file's saved world, then
    deposit [message] at {!message_area} (length in the word before it)
    and point AC1 there. Execution, if resumed through the VM, continues
    wherever the saved world stood. *)

val emergency_out_load : Alto_machine.Memory.t -> File.t -> (unit, error) result
(** The paper's "special emergency bootstrap program, containing only the
    OutLoad procedure": saves the memory image but cannot preserve the
    processor registers, which are stored as zeros. A world restored from
    such a file must be entered through its debugger, not resumed. *)

val peek_registers : File.t -> (Word.t array, error) result
(** Read just the saved register file — the debugger's window into a
    suspended world, without loading it. *)

val read_saved_memory : File.t -> pos:int -> len:int -> (Word.t array, error) result
(** Read [len] words of the saved image's memory starting at address
    [pos] — "the debugging program may examine … the state of the faulty
    program by reading … portions of the file". *)

val write_saved_memory : File.t -> pos:int -> Word.t array -> (unit, error) result
(** Patch the saved image's memory — the other half of debugging. *)
