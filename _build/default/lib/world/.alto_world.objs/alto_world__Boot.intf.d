lib/world/boot.mli: Alto_fs Alto_machine Format World
