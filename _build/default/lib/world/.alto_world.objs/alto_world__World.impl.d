lib/world/world.ml: Alto_fs Alto_machine Array Bytes Format Result String
