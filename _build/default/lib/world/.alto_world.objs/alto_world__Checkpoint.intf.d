lib/world/checkpoint.mli: Alto_fs Alto_machine Format World
