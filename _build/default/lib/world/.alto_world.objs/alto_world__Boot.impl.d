lib/world/boot.ml: Alto_disk Alto_fs Alto_machine Array Format World
