lib/world/checkpoint.ml: Alto_fs Alto_machine Result String World
