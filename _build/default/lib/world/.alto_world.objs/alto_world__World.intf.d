lib/world/world.mli: Alto_fs Alto_machine Format
