(** Control disciplines built on world files (§4): checkpointing and the
    coroutine linkage.

    "A coroutine structure is commonly used: a program first records its
    state on one disk file, and then restores the machine state from a
    second file. The original program resumes execution when the machine
    state is restored from the first file." *)

module Word = Alto_machine.Word
module Cpu = Alto_machine.Cpu
module Fs = Alto_fs.Fs
module File = Alto_fs.File

type error = World_error of World.error | Catalogue of Alto_fs.Install.error

val pp_error : Format.formatter -> error -> unit

val state_file : Fs.t -> directory:File.t -> name:string -> (File.t, error) result
(** Open, or create and catalogue, a state file of the right size. A
    pre-sized file makes every subsequent swap run at full track speed. *)

val save : Cpu.t -> File.t -> (unit, error) result
(** Checkpoint: record the world. "The computation may be resumed later
    by restoring the machine state from the checkpoint file." *)

val resume : Cpu.t -> File.t -> message:Word.t array -> (unit, error) result

val transfer :
  Cpu.t -> save_to:File.t -> restore_from:File.t -> message:Word.t array ->
  (unit, error) result
(** The coroutine switch: OutLoad to [save_to], then InLoad from
    [restore_from] passing [message]. After the call the processor holds
    the partner's world; the saved world will continue from {e its} last
    [transfer] when somebody restores it. *)
