(** Bootstrapping (§4): "A hardware bootstrap button causes the state of
    the machine to be restored from a disk file whose first page is kept
    at a fixed location on the disk."

    The fixed location is sector 0, which the allocator never hands out.
    {!install} writes a boot record there naming the boot state file (its
    full name — absolute name plus address hint); {!boot} plays the
    bootstrap button: it follows the record, label-checks the hint like
    any other, and InLoads the named world. A stale hint after the boot
    file moved is recovered through the usual ladder by the caller — the
    record's absolute name survives a compaction. *)

module Word = Alto_machine.Word
module Cpu = Alto_machine.Cpu
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Page = Alto_fs.Page

type error =
  | No_boot_record
  | Boot_file_missing of Page.full_name
      (** The record is intact but its hint is stale; the full name is
          returned so the caller can climb the ladder. *)
  | World_error of World.error

val pp_error : Format.formatter -> error -> unit

val install : Fs.t -> File.t -> (unit, error) result
(** Make the given state file the boot world. *)

val boot_file : Fs.t -> (Page.full_name, error) result
(** Read the boot record: the boot world's leader full name. *)

val boot : Fs.t -> Cpu.t -> (unit, error) result
(** Press the button: restore the machine from the boot world with an
    empty message. *)
