lib/net/net.mli: Alto_machine Format
