lib/net/net.ml: Alto_machine Array Buffer Format Hashtbl List Printf Queue Result String
