module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock

type packet = { src : string; payload : Word.t array }

type station = { name : string; queue : packet Queue.t; net : t }

and t = {
  stations : (string, station) Hashtbl.t;
  clock : Sim_clock.t option;
  latency_us : int;
}

type error = Unknown_station of string | Payload_too_long

let pp_error fmt = function
  | Unknown_station name -> Format.fprintf fmt "no station named %S" name
  | Payload_too_long -> Format.pp_print_string fmt "payload exceeds one page"

let max_payload_words = 256

let create ?clock ?(latency_us = 500) () =
  { stations = Hashtbl.create 8; clock; latency_us }

let attach net ~name =
  if Hashtbl.mem net.stations name then
    invalid_arg (Printf.sprintf "Net.attach: station %S already attached" name);
  let station = { name; queue = Queue.create (); net } in
  Hashtbl.replace net.stations name station;
  station

let station_name s = s.name

let send s ~to_ payload =
  if Array.length payload > max_payload_words then Error Payload_too_long
  else
    match Hashtbl.find_opt s.net.stations to_ with
    | None -> Error (Unknown_station to_)
    | Some dst ->
        (match s.net.clock with
        | Some clock -> Sim_clock.advance_us clock s.net.latency_us
        | None -> ());
        Queue.push { src = s.name; payload = Array.copy payload } dst.queue;
        Ok ()

let receive s = Queue.take_opt s.queue
let pending s = Queue.length s.queue

(* File transfer framing: word 0 is the kind — 1 header (name follows:
   length word + packed string), 2 data (chunk), 3 trailer. *)
let kind_header = 1
let kind_data = 2
let kind_trailer = 3

let chunk_bytes = (max_payload_words - 2) * 2

let send_file s ~to_ ~name data =
  let ( let* ) = Result.bind in
  let header =
    Array.concat
      [
        [| Word.of_int kind_header; Word.of_int_exn (String.length name) |];
        Word.words_of_string name;
      ]
  in
  let* () = send s ~to_ header in
  let total = String.length data in
  let rec chunks pos =
    if pos >= total then Ok ()
    else begin
      let len = min chunk_bytes (total - pos) in
      let words = Word.words_of_string (String.sub data pos len) in
      let* () =
        send s ~to_
          (Array.concat [ [| Word.of_int kind_data; Word.of_int_exn len |]; words ])
      in
      chunks (pos + len)
    end
  in
  (* Data packets carry a byte count so odd-length chunks survive. *)
  let* () =
    match chunks 0 with
    | Ok () -> Ok ()
    | Error e -> Error e
  in
  send s ~to_ [| Word.of_int kind_trailer |]

let receive_file s =
  (* Peek: only consume if a complete file heads the queue. *)
  let items = List.of_seq (Queue.to_seq s.queue) in
  let parse = function
    | { payload; _ } :: rest when Array.length payload >= 2 && Word.to_int payload.(0) = kind_header ->
        let name_len = Word.to_int payload.(1) in
        let name =
          Word.string_of_words (Array.sub payload 2 (Array.length payload - 2)) ~len:name_len
        in
        let buffer = Buffer.create 512 in
        let rec data consumed = function
          | { payload; _ } :: rest
            when Array.length payload >= 2 && Word.to_int payload.(0) = kind_data ->
              let len = Word.to_int payload.(1) in
              let words = Array.sub payload 2 (Array.length payload - 2) in
              Buffer.add_string buffer (Word.string_of_words words ~len);
              data (consumed + 1) rest
          | { payload; _ } :: _
            when Array.length payload >= 1 && Word.to_int payload.(0) = kind_trailer ->
              Some (name, Buffer.contents buffer, consumed + 2)
          | _ -> None
        in
        data 0 rest
    | _ -> None
  in
  match parse items with
  | None -> None
  | Some (name, contents, packets) ->
      for _ = 1 to packets do
        ignore (Queue.pop s.queue)
      done;
      Some (name, contents)
