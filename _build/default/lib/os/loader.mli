(** The program loader (§5.1).

    "Code for the program is read from a disk stream and loaded into low
    memory addresses. All references to operating system procedures are
    bound, using a fixup table contained in the code file. Finally, the
    program is invoked by calling a single entry routine."

    A code file is an ordinary file whose data is: a header (magic,
    version, code length, entry offset, fixup count), the fixup table —
    each entry an offset into the code plus the {e name} of the system
    procedure to bind there — and the code words, assembled for
    {!System.user_base}. Names, not addresses, keep code files valid
    across system releases; the stub addresses are resolved at load
    time from {!Level}. *)

module Vm = Alto_machine.Vm
module Asm = Alto_machine.Asm
module File = Alto_fs.File
module Directory = Alto_fs.Directory

type error =
  | File_error of File.error
  | Dir_error of Directory.error
  | Bad_format of string  (** Not a code file, or a truncated one. *)
  | Unknown_service of string  (** A fixup names no known system procedure. *)
  | Too_big of int  (** Code won't fit below the resident system. *)

val pp_error : Format.formatter -> error -> unit

type parsed = {
  code : Alto_machine.Word.t array;
  entry_offset : int;  (** Relative to the load address. *)
  origin : int;  (** The address the code was assembled for. *)
  fixups : (int * string) list;
}

val parse_code : Alto_machine.Word.t array -> (parsed, error) result
(** Decode a code file's words. Public so that other environments — a
    diskless system booting over the network, say — can consume the same
    code files without this loader. *)

val save_program : System.t -> name:string -> Asm.program -> (File.t, error) result
(** Serialize an assembled program into a catalogued code file — the
    linker's half of §4's bootstrapping story. Whole programs are
    assembled for {!System.user_base}; overlay segments for wherever in
    the user area they will live (§5.2: programs short of memory are
    "organized in overlays"). *)

val load : System.t -> File.t -> (int, error) result
(** Read a code file into memory at its recorded origin, bind its
    fixups, and return the entry address. *)

val load_by_name : System.t -> string -> (int, error) result
(** {!load} through a root-directory lookup — the overlay service. *)

val run : ?fuel:int -> System.t -> File.t -> (Vm.stop, error) result
(** {!load}, point the processor at the entry with a fresh stack just
    below the resident system, and interpret under {!System.handler}. *)

val run_by_name : ?fuel:int -> System.t -> string -> (Vm.stop, error) result
(** Look the code file up in the root directory first. *)

val disassemble : parsed -> string list
(** One line per instruction ("address: mnemonic"), data words shown as
    such — the executive's [dump] command, and a debugging aid for
    anyone writing a new environment against the code-file format. *)
