lib/os/executive.mli: System
