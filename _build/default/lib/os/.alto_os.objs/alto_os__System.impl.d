lib/os/system.ml: Alto_disk Alto_fs Alto_machine Alto_streams Alto_world Alto_zones Array Format Hashtbl Level List Printf String
