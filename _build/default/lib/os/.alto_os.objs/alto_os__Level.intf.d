lib/os/level.mli: Alto_machine
