lib/os/loader.mli: Alto_fs Alto_machine Format System
