lib/os/level.ml: Alto_machine List Printf String
