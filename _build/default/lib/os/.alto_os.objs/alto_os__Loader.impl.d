lib/os/loader.ml: Alto_fs Alto_machine Array Format Level List Printf Result String System
