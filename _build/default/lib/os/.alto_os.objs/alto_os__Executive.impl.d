lib/os/executive.ml: Alto_bcpl Alto_fs Alto_machine Alto_streams Bytes Format Level List Loader Result String System
