lib/os/system.mli: Alto_disk Alto_fs Alto_machine Alto_streams Alto_zones
