(** The operating system's level structure (§5.2).

    "The system is organized into several levels of services … the lowest
    level, which contains the most commonly used services, is at the very
    top of memory. Less ubiquitous services are in levels with higher
    numbers, located lower in memory."

    Each level owns a fixed region of the 64K address space and exports
    named service procedures. A service occupies two words of its level's
    region — a [SYS] trap to the host-implemented body (our stand-in for
    resident BCPL code; the "microcode" is OCaml) followed by [RET] — and
    the loader binds program references to these fixed addresses. Junta
    reclaims the regions of the levels above a cut; what remains is
    guaranteed resident, which is the point: "unlike more elaborate
    mechanisms such as swapping code segments, this scheme guarantees the
    performance of the resident system." *)

type service = {
  service_name : string;  (** The name loader fixups refer to. *)
  code : int;  (** The trap code the stub executes. *)
}

type t = {
  index : int;  (** 1–13. *)
  level_name : string;
  size_words : int;
  services : service list;
}

val all : t list
(** The thirteen levels of §5.2, in index order. *)

val count : int

val find : int -> t
(** Raises [Invalid_argument] outside 1..13. *)

val base : int -> int
(** First address of level [i]'s region. Level 1 ends at the top of
    memory; level [i+1] lies directly below level [i]. *)

val limit : int -> int
(** One past the last address of level [i]'s region ([base i + size]). *)

val boundary : keep:int -> int
(** The lowest address owned by levels 1..[keep] — equivalently, one past
    the memory a program owns after [Junta keep]. [boundary ~keep:0] is
    the top of memory. *)

val resident_words : keep:int -> int
(** Memory held by the resident system when levels 1..[keep] remain. *)

val service_address : string -> int
(** The fixed address of a service's stub. Raises [Not_found] for an
    unknown name. *)

val service_by_code : int -> (t * service) option
(** Which level owns a trap code. *)

val service_level : string -> int
(** The level index exporting the named service. Raises [Not_found]. *)

val stub_words : service -> Alto_machine.Word.t list
(** The two instruction words of a service stub. *)

val removed_trap_code : int
(** The trap code (255) that fills reclaimed regions, so that calling
    into a removed level produces a clean "service not resident" stop
    instead of garbage execution. *)
