type token =
  | Name of string
  | Number of int
  | String_lit of string
  | Kw_global
  | Kw_vec
  | Kw_let
  | Kw_be
  | Kw_if
  | Kw_then
  | Kw_else
  | Kw_while
  | Kw_do
  | Kw_resultis
  | Kw_return
  | Kw_rem
  | Kw_for
  | Kw_to
  | Kw_switchon
  | Kw_into
  | Kw_case
  | Kw_default
  | Kw_true
  | Kw_false
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Semi
  | Comma
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Bang
  | Amp
  | Bar
  | At
  | Eq
  | Ne
  | Lt
  | Gt
  | Le
  | Ge
  | Colon

type error = { line : int; message : string }

let pp_token fmt t =
  Format.pp_print_string fmt
    (match t with
    | Name s -> Printf.sprintf "name %S" s
    | Number n -> string_of_int n
    | String_lit s -> Printf.sprintf "%S" s
    | Kw_global -> "global"
    | Kw_vec -> "vec"
    | Kw_let -> "let"
    | Kw_be -> "be"
    | Kw_if -> "if"
    | Kw_then -> "then"
    | Kw_else -> "else"
    | Kw_while -> "while"
    | Kw_do -> "do"
    | Kw_resultis -> "resultis"
    | Kw_return -> "return"
    | Kw_rem -> "rem"
    | Kw_for -> "for"
    | Kw_to -> "to"
    | Kw_switchon -> "switchon"
    | Kw_into -> "into"
    | Kw_case -> "case"
    | Kw_default -> "default"
    | Kw_true -> "true"
    | Kw_false -> "false"
    | Lparen -> "("
    | Rparen -> ")"
    | Lbrace -> "{"
    | Rbrace -> "}"
    | Semi -> ";"
    | Comma -> ","
    | Assign -> ":="
    | Plus -> "+"
    | Minus -> "-"
    | Star -> "*"
    | Slash -> "/"
    | Bang -> "!"
    | Amp -> "&"
    | Bar -> "|"
    | At -> "@"
    | Eq -> "="
    | Ne -> "#"
    | Lt -> "<"
    | Gt -> ">"
    | Le -> "<="
    | Ge -> ">="
    | Colon -> ":")

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

let keywords =
  [
    ("global", Kw_global);
    ("vec", Kw_vec);
    ("let", Kw_let);
    ("be", Kw_be);
    ("if", Kw_if);
    ("then", Kw_then);
    ("else", Kw_else);
    ("while", Kw_while);
    ("do", Kw_do);
    ("resultis", Kw_resultis);
    ("return", Kw_return);
    ("rem", Kw_rem);
    ("for", Kw_for);
    ("to", Kw_to);
    ("switchon", Kw_switchon);
    ("into", Kw_into);
    ("case", Kw_case);
    ("default", Kw_default);
    ("true", Kw_true);
    ("false", Kw_false);
  ]

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let error message = Error { line = !line; message } in
  let emit t = tokens := (t, !line) :: !tokens in
  let rec escape i =
    (* [i] points after the backslash; returns (char, next). *)
    if i >= n then None
    else
      match source.[i] with
      | 'n' -> Some ('\n', i + 1)
      | 't' -> Some ('\t', i + 1)
      | '\\' -> Some ('\\', i + 1)
      | '\'' -> Some ('\'', i + 1)
      | '"' -> Some ('"', i + 1)
      | '0' -> Some ('\000', i + 1)
      | _ -> None
  and go i =
    if i >= n then Ok (List.rev !tokens)
    else
      match source.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
          incr line;
          go (i + 1)
      | '/' when i + 1 < n && source.[i + 1] = '/' ->
          let rec skip j = if j < n && source.[j] <> '\n' then skip (j + 1) else j in
          go (skip (i + 2))
      | '/' ->
          emit Slash;
          go (i + 1)
      | '(' ->
          emit Lparen;
          go (i + 1)
      | ')' ->
          emit Rparen;
          go (i + 1)
      | '{' ->
          emit Lbrace;
          go (i + 1)
      | '}' ->
          emit Rbrace;
          go (i + 1)
      | ';' ->
          emit Semi;
          go (i + 1)
      | ',' ->
          emit Comma;
          go (i + 1)
      | '+' ->
          emit Plus;
          go (i + 1)
      | '-' ->
          emit Minus;
          go (i + 1)
      | '*' ->
          emit Star;
          go (i + 1)
      | '!' ->
          emit Bang;
          go (i + 1)
      | '&' ->
          emit Amp;
          go (i + 1)
      | '|' ->
          emit Bar;
          go (i + 1)
      | '@' ->
          emit At;
          go (i + 1)
      | '=' ->
          emit Eq;
          go (i + 1)
      | '#' ->
          emit Ne;
          go (i + 1)
      | '<' when i + 1 < n && source.[i + 1] = '=' ->
          emit Le;
          go (i + 2)
      | '<' ->
          emit Lt;
          go (i + 1)
      | '>' when i + 1 < n && source.[i + 1] = '=' ->
          emit Ge;
          go (i + 2)
      | '>' ->
          emit Gt;
          go (i + 1)
      | ':' when i + 1 < n && source.[i + 1] = '=' ->
          emit Assign;
          go (i + 2)
      | ':' ->
          emit Colon;
          go (i + 1)
      | '\'' ->
          (* character literal *)
          let char_done c j =
            if j < n && source.[j] = '\'' then begin
              emit (Number (Char.code c));
              go (j + 1)
            end
            else error "unterminated character literal"
          in
          if i + 1 >= n then error "unterminated character literal"
          else if source.[i + 1] = '\\' then (
            match escape (i + 2) with
            | Some (c, j) -> char_done c j
            | None -> error "bad escape in character literal")
          else char_done source.[i + 1] (i + 2)
      | '"' ->
          let buffer = Buffer.create 16 in
          let rec str j =
            if j >= n then error "unterminated string"
            else if source.[j] = '"' then begin
              emit (String_lit (Buffer.contents buffer));
              go (j + 1)
            end
            else if source.[j] = '\\' then (
              match escape (j + 1) with
              | Some (c, k) ->
                  Buffer.add_char buffer c;
                  str k
              | None -> error "bad escape in string")
            else if source.[j] = '\n' then error "newline inside string"
            else begin
              Buffer.add_char buffer source.[j];
              str (j + 1)
            end
          in
          str (i + 1)
      | '0' when i + 1 < n && (source.[i + 1] = 'x' || source.[i + 1] = 'o') ->
          let base = if source.[i + 1] = 'x' then 16 else 8 in
          let digit c =
            if is_digit c then Some (Char.code c - Char.code '0')
            else if base = 16 && c >= 'a' && c <= 'f' then
              Some (10 + Char.code c - Char.code 'a')
            else if base = 16 && c >= 'A' && c <= 'F' then
              Some (10 + Char.code c - Char.code 'A')
            else None
          in
          let rec num acc j seen =
            match if j < n then digit source.[j] else None with
            | Some d -> num ((acc * base) + d) (j + 1) true
            | None ->
                if not seen then error "empty numeric literal"
                else if acc > 0xffff then error "numeric literal exceeds 16 bits"
                else begin
                  emit (Number acc);
                  go j
                end
          in
          num 0 (i + 2) false
      | c when is_digit c ->
          let rec num acc j =
            if j < n && is_digit source.[j] then
              num ((acc * 10) + (Char.code source.[j] - Char.code '0')) (j + 1)
            else if acc > 0xffff then error "numeric literal exceeds 16 bits"
            else begin
              emit (Number acc);
              go j
            end
          in
          num 0 i
      | c when is_name_start c ->
          let rec name j = if j < n && is_name_char source.[j] then name (j + 1) else j in
          let j = name i in
          let word = String.sub source i (j - i) in
          (match List.assoc_opt word keywords with
          | Some kw -> emit kw
          | None -> emit (Name word));
          go j
      | c -> error (Printf.sprintf "unexpected character %C" c)
  in
  go 0
