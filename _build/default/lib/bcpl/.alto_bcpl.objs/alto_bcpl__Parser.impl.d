lib/bcpl/parser.ml: Ast Format Lexer List Option
