lib/bcpl/bcpl.mli: Alto_machine Format Lexer
