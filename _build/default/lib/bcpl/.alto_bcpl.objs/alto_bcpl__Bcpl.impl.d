lib/bcpl/bcpl.ml: Alto_machine Ast Codegen Format Hashtbl Lexer List Option Parser Result String
