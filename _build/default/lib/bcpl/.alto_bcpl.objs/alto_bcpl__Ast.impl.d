lib/bcpl/ast.ml:
