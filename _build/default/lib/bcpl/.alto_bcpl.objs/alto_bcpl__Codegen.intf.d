lib/bcpl/codegen.mli: Alto_machine Ast
