lib/bcpl/lexer.ml: Buffer Char Format List Printf String
