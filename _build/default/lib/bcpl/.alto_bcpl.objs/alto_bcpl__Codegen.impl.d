lib/bcpl/codegen.ml: Alto_machine Ast Format Hashtbl List Printf String
