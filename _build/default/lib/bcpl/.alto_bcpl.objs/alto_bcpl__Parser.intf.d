lib/bcpl/parser.mli: Ast Lexer
