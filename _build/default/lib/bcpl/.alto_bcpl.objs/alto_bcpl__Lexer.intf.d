lib/bcpl/lexer.mli: Format
