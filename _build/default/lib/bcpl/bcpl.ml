module Asm = Alto_machine.Asm

type error =
  | Lex_error of Lexer.error
  | Parse_error of Lexer.error
  | Codegen_error of string
  | Asm_error of string

let pp_error fmt = function
  | Lex_error e -> Format.fprintf fmt "lexical error: %a" Lexer.pp_error e
  | Parse_error e -> Format.fprintf fmt "syntax error: %a" Lexer.pp_error e
  | Codegen_error msg -> Format.fprintf fmt "compile error: %s" msg
  | Asm_error msg -> Format.fprintf fmt "assembly error: %s" msg

let ( let* ) = Result.bind

(* A small standard library, in the language itself. Each function is
   linked in only when called and only when the program has not defined
   its own — the user is always free to replace the system's version. *)
let library =
  [
    ( "writenum",
      "let writenum(n) be { if n >= 10 then writenum(n / 10); writechar('0' + n rem 10); }"
    );
    ("newline", "let newline() be { writechar(10); }");
    ( "writeln",
      "let writeln(s) be { writestring(s); writechar(10); }" );
  ]

let calls_in_program ast =
  let called = Hashtbl.create 16 in
  let rec expr = function
    | Ast.Call (f, args) ->
        Hashtbl.replace called f ();
        List.iter expr args
    | Ast.Bin (_, a, b) | Ast.Index (a, b) ->
        expr a;
        expr b
    | Ast.Neg e | Ast.Deref e -> expr e
    | Ast.Num _ | Ast.Str _ | Ast.Var _ | Ast.Addr_of _ -> ()
  and stmt = function
    | Ast.Assign (_, e) | Ast.Let (_, e) | Ast.Expr_stmt e | Ast.Resultis e -> expr e
    | Ast.Store (a, e) ->
        expr a;
        expr e
    | Ast.If (c, t, f) ->
        expr c;
        stmt t;
        Option.iter stmt f
    | Ast.While (c, b) ->
        expr c;
        stmt b
    | Ast.Block stmts -> List.iter stmt stmts
    | Ast.Return -> ()
  in
  List.iter (function Ast.Func (_, _, b) -> stmt b | Ast.Global _ | Ast.Vector _ -> ()) ast;
  called

let defined_in_program ast name =
  List.exists
    (function
      | Ast.Func (n, _, _) | Ast.Global (n, _) | Ast.Vector (n, _) -> String.equal n name)
    ast

let parse_library_function source =
  match Lexer.tokenize source with
  | Error _ -> assert false (* the library is a constant *)
  | Ok tokens -> (
      match Parser.parse tokens with Error _ -> assert false | Ok defns -> defns)

(* Append needed library functions, repeatedly (writeln uses nothing,
   but a library function may call another). *)
let link_library ast =
  let rec grow ast =
    let called = calls_in_program ast in
    let missing =
      List.filter
        (fun (name, _) -> Hashtbl.mem called name && not (defined_in_program ast name))
        library
    in
    match missing with
    | [] -> ast
    | additions -> grow (ast @ List.concat_map (fun (_, src) -> parse_library_function src) additions)
  in
  grow ast

let items source =
  let* tokens = Result.map_error (fun e -> Lex_error e) (Lexer.tokenize source) in
  let* ast = Result.map_error (fun e -> Parse_error e) (Parser.parse tokens) in
  let ast = link_library ast in
  Result.map_error (fun e -> Codegen_error e) (Codegen.compile ast)

let compile ?origin source =
  let* items = items source in
  Result.map_error (fun e -> Asm_error e) (Asm.assemble ?origin items)
