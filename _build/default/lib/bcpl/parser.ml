open Ast

exception Parse_error of Lexer.error

type state = { mutable tokens : (Lexer.token * int) list; mutable line : int }

let fail st message = raise (Parse_error { Lexer.line = st.line; message })

let peek st = match st.tokens with [] -> None | (t, _) :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail st "unexpected end of input"
  | (t, line) :: rest ->
      st.tokens <- rest;
      st.line <- line;
      t

let expect st token what =
  let got = advance st in
  if got <> token then
    fail st (Format.asprintf "expected %a %s, found %a" Lexer.pp_token token what Lexer.pp_token got)

let expect_name st what =
  match advance st with
  | Lexer.Name n -> n
  | t -> fail st (Format.asprintf "expected a name %s, found %a" what Lexer.pp_token t)

let accept st token =
  match peek st with
  | Some t when t = token ->
      let (_ : Lexer.token) = advance st in
      true
  | Some _ | None -> false

(* {2 expressions} *)

let rec parse_expr st = parse_or st

and parse_or st =
  let rec loop left =
    if accept st Lexer.Bar then loop (Bin (Or, left, parse_and st)) else left
  in
  loop (parse_and st)

and parse_and st =
  let rec loop left =
    if accept st Lexer.Amp then loop (Bin (And, left, parse_cmp st)) else left
  in
  loop (parse_cmp st)

and parse_cmp st =
  let left = parse_add st in
  let op =
    match peek st with
    | Some Lexer.Eq -> Some Eq
    | Some Lexer.Ne -> Some Ne
    | Some Lexer.Lt -> Some Lt
    | Some Lexer.Gt -> Some Gt
    | Some Lexer.Le -> Some Le
    | Some Lexer.Ge -> Some Ge
    | Some _ | None -> None
  in
  match op with
  | None -> left
  | Some op ->
      let (_ : Lexer.token) = advance st in
      Bin (op, left, parse_add st)

and parse_add st =
  let rec loop left =
    match peek st with
    | Some Lexer.Plus ->
        let (_ : Lexer.token) = advance st in
        loop (Bin (Add, left, parse_mul st))
    | Some Lexer.Minus ->
        let (_ : Lexer.token) = advance st in
        loop (Bin (Sub, left, parse_mul st))
    | Some _ | None -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | Some Lexer.Star ->
        let (_ : Lexer.token) = advance st in
        loop (Bin (Mul, left, parse_unary st))
    | Some Lexer.Slash ->
        let (_ : Lexer.token) = advance st in
        loop (Bin (Div, left, parse_unary st))
    | Some Lexer.Kw_rem ->
        let (_ : Lexer.token) = advance st in
        loop (Bin (Rem, left, parse_unary st))
    | Some _ | None -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Some Lexer.Minus ->
      let (_ : Lexer.token) = advance st in
      Neg (parse_unary st)
  | Some Lexer.Bang ->
      let (_ : Lexer.token) = advance st in
      Deref (parse_unary st)
  | Some _ | None -> parse_postfix st

and parse_postfix st =
  let rec loop left =
    if accept st Lexer.Bang then loop (Index (left, parse_primary st)) else left
  in
  loop (parse_primary st)

and parse_primary st =
  match advance st with
  | Lexer.Number n -> Num n
  | Lexer.Kw_true -> Num 1
  | Lexer.Kw_false -> Num 0
  | Lexer.String_lit s -> Str s
  | Lexer.At -> Addr_of (expect_name st "after '@'")
  | Lexer.Lparen ->
      let e = parse_expr st in
      expect st Lexer.Rparen "to close the parenthesis";
      e
  | Lexer.Name name ->
      if accept st Lexer.Lparen then begin
        let rec args acc =
          if accept st Lexer.Rparen then List.rev acc
          else begin
            let e = parse_expr st in
            if accept st Lexer.Comma then args (e :: acc)
            else begin
              expect st Lexer.Rparen "after the arguments";
              List.rev (e :: acc)
            end
          end
        in
        Call (name, args [])
      end
      else Var name
  | t -> fail st (Format.asprintf "expected an expression, found %a" Lexer.pp_token t)

(* {2 statements} *)

let rec parse_stmt st =
  match peek st with
  | Some Lexer.Lbrace -> parse_block st
  | Some Lexer.Kw_let ->
      let (_ : Lexer.token) = advance st in
      let name = expect_name st "after 'let'" in
      expect st Lexer.Eq "in the local declaration";
      let e = parse_expr st in
      expect st Lexer.Semi "after the declaration";
      Let (name, e)
  | Some Lexer.Kw_if ->
      let (_ : Lexer.token) = advance st in
      let cond = parse_expr st in
      expect st Lexer.Kw_then "after the condition";
      let then_branch = parse_stmt st in
      let else_branch = if accept st Lexer.Kw_else then Some (parse_stmt st) else None in
      If (cond, then_branch, else_branch)
  | Some Lexer.Kw_while ->
      let (_ : Lexer.token) = advance st in
      let cond = parse_expr st in
      expect st Lexer.Kw_do "after the condition";
      While (cond, parse_stmt st)
  | Some Lexer.Kw_for ->
      (* BCPL's counted loop, desugared: the limit is evaluated once,
         into a hidden local the program cannot name. *)
      let (_ : Lexer.token) = advance st in
      let name = expect_name st "after 'for'" in
      expect st Lexer.Eq "in the for loop";
      let start = parse_expr st in
      expect st Lexer.Kw_to "after the start value";
      let limit = parse_expr st in
      expect st Lexer.Kw_do "after the limit";
      let body = parse_stmt st in
      Block
        [
          Let (name, start);
          Let ("for$limit", limit);
          While
            ( Bin (Le, Var name, Var "for$limit"),
              Block [ body; Assign (name, Bin (Add, Var name, Num 1)) ] );
        ]
  | Some Lexer.Kw_switchon ->
      (* switchon e into { case k: … case k1: case k2: … default: … }
         Desugared to an if-chain over a hidden local; no fall-through
         (each arm is its own block). *)
      let (_ : Lexer.token) = advance st in
      let scrutinee = parse_expr st in
      expect st Lexer.Kw_into "after the switched expression";
      expect st Lexer.Lbrace "to open the cases";
      let case_constant () =
        match advance st with
        | Lexer.Number n -> n
        | Lexer.Minus -> (
            match advance st with
            | Lexer.Number n -> (-n) land 0xffff
            | t -> fail st (Format.asprintf "expected a constant, found %a" Lexer.pp_token t))
        | Lexer.Kw_true -> 1
        | Lexer.Kw_false -> 0
        | t -> fail st (Format.asprintf "expected a case constant, found %a" Lexer.pp_token t)
      in
      let rec labels acc =
        (* one or more consecutive "case k:" labels *)
        let k = case_constant () in
        expect st Lexer.Colon "after the case constant";
        if accept st Lexer.Kw_case then labels (k :: acc) else List.rev (k :: acc)
      in
      let rec body acc =
        match peek st with
        | Some (Lexer.Kw_case | Lexer.Kw_default | Lexer.Rbrace) -> Block (List.rev acc)
        | Some _ | None -> body (parse_stmt st :: acc)
      in
      let rec arms cases default =
        if accept st Lexer.Rbrace then (List.rev cases, default)
        else if accept st Lexer.Kw_case then begin
          let ks = labels [] in
          let b = body [] in
          arms ((ks, b) :: cases) default
        end
        else if accept st Lexer.Kw_default then begin
          expect st Lexer.Colon "after 'default'";
          if default <> None then fail st "two default arms";
          arms cases (Some (body []))
        end
        else fail st "expected 'case', 'default' or '}'"
      in
      let cases, default = arms [] None in
      let hidden = "switch$value" in
      let test ks =
        match
          List.map (fun k -> Bin (Eq, Var hidden, Num k)) ks
        with
        | [] -> Num 0
        | first :: rest -> List.fold_left (fun acc e -> Bin (Or, acc, e)) first rest
      in
      let chain =
        List.fold_right
          (fun (ks, b) els -> If (test ks, b, Some els))
          cases
          (Option.value default ~default:(Block []))
      in
      Block [ Let (hidden, scrutinee); chain ]
  | Some Lexer.Kw_resultis ->
      let (_ : Lexer.token) = advance st in
      let e = parse_expr st in
      expect st Lexer.Semi "after 'resultis'";
      Resultis e
  | Some Lexer.Kw_return ->
      let (_ : Lexer.token) = advance st in
      expect st Lexer.Semi "after 'return'";
      Return
  | Some _ | None ->
      (* An expression; if ':=' follows, it must be an lvalue. *)
      let e = parse_expr st in
      if accept st Lexer.Assign then begin
        let rhs = parse_expr st in
        expect st Lexer.Semi "after the assignment";
        match e with
        | Var name -> Assign (name, rhs)
        | Deref addr -> Store (addr, rhs)
        | Index (base, index) -> Store (Bin (Add, base, index), rhs)
        | Num _ | Str _ | Addr_of _ | Call _ | Bin _ | Neg _ ->
            fail st "left side of ':=' is not assignable"
      end
      else begin
        expect st Lexer.Semi "after the expression";
        Expr_stmt e
      end

and parse_block st =
  expect st Lexer.Lbrace "to open a block";
  let rec stmts acc =
    if accept st Lexer.Rbrace then Block (List.rev acc) else stmts (parse_stmt st :: acc)
  in
  stmts []

(* {2 declarations} *)

let parse_defn st =
  match advance st with
  | Lexer.Kw_global ->
      let name = expect_name st "after 'global'" in
      let value =
        if accept st Lexer.Eq then
          match advance st with
          | Lexer.Number n -> n
          | Lexer.Minus -> (
              match advance st with
              | Lexer.Number n -> (-n) land 0xffff
              | t -> fail st (Format.asprintf "expected a number, found %a" Lexer.pp_token t))
          | t -> fail st (Format.asprintf "expected a number, found %a" Lexer.pp_token t)
        else 0
      in
      expect st Lexer.Semi "after the global declaration";
      Global (name, value)
  | Lexer.Kw_vec ->
      let name = expect_name st "after 'vec'" in
      let size =
        match advance st with
        | Lexer.Number n when n > 0 -> n
        | Lexer.Number _ -> fail st "vector size must be positive"
        | t -> fail st (Format.asprintf "expected a size, found %a" Lexer.pp_token t)
      in
      expect st Lexer.Semi "after the vector declaration";
      Vector (name, size)
  | Lexer.Kw_let ->
      let name = expect_name st "after 'let'" in
      expect st Lexer.Lparen "to open the parameter list";
      let rec params acc =
        if accept st Lexer.Rparen then List.rev acc
        else begin
          let p = expect_name st "in the parameter list" in
          if accept st Lexer.Comma then params (p :: acc)
          else begin
            expect st Lexer.Rparen "after the parameters";
            List.rev (p :: acc)
          end
        end
      in
      let ps = params [] in
      if accept st Lexer.Kw_be then Func (name, ps, parse_block st)
      else begin
        expect st Lexer.Eq "or 'be' after the parameter list";
        let e = parse_expr st in
        expect st Lexer.Semi "after the function body";
        Func (name, ps, Block [ Resultis e ])
      end
  | t -> fail st (Format.asprintf "expected a declaration, found %a" Lexer.pp_token t)

let parse tokens =
  let st = { tokens; line = 1 } in
  let rec defns acc =
    match peek st with None -> List.rev acc | Some _ -> defns (parse_defn st :: acc)
  in
  match defns [] with
  | program -> Ok program
  | exception Parse_error e -> Error e
