(* The abstract syntax of the BCPL-flavoured language. Pure types; the
   grammar is documented in bcpl.mli. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And  (* & : bitwise, doubling as logical over 0/1 *)
  | Or
  | Eq
  | Ne  (* # in BCPL *)
  | Lt
  | Gt
  | Le
  | Ge

type expr =
  | Num of int
  | Str of string  (** Value = address of a static length-prefixed string. *)
  | Var of string
  | Addr_of of string  (** [@g]: address of a global cell. *)
  | Call of string * expr list
  | Bin of binop * expr * expr
  | Neg of expr
  | Deref of expr  (** [!e]: the word at address [e]. *)
  | Index of expr * expr  (** [v!i]: the word at address [v + i]. *)

type stmt =
  | Assign of string * expr
  | Store of expr * expr  (** [lhs-address := e]; lhs already reduced. *)
  | Let of string * expr  (** A local, live to the end of its block. *)
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Block of stmt list
  | Expr_stmt of expr  (** A call for effect. *)
  | Resultis of expr
  | Return

type defn =
  | Global of string * int  (** [global x = 5;] — a static cell. *)
  | Vector of string * int  (** [vec buf 128;] — name = address of 128 words. *)
  | Func of string * string list * stmt
      (** [let f(a,b) be { … }]; value functions desugar to
          [be { resultis e }]. *)

type program = defn list
