(** Code generation: AST → assembler items for the loader.

    Conventions (documented for programs that mix languages):
    - AC0 carries expression results and function return values; AC1 is
      the second operand; AC3 is the address scratch register.
    - The stack grows downward through the frame-pointer register.
      A caller pushes arguments left to right, calls with [JSR], and
      pops the arguments afterwards; locals live on the stack below the
      return address. Recursion therefore just works.
    - Operating-system services are reached through named fixups — the
      same binding convention as assembler programs, resolved by the
      same loader.

    Built-in procedures map onto the system services: [writechar],
    [writestring], [readchar] (yields 0xFFFF when no input),
    [charspending], [allocate], [free], [createfile], [deletefile],
    [lookupfile], [openfile], [closestream], [streamget] (0xFFFF at end),
    [streamput], [streamreset], [getposition], [setposition],
    [filelength], [outload], [inload], [junta], [counterjunta], [exit] —
    plus [getbyte]/[putbyte] for the characters of packed strings,
    compiled inline. *)

val compile : Ast.program -> (Alto_machine.Asm.item list, string) result
(** The item list starts with a [start] stub that calls [main] and exits
    with its result; a program without [main()] is an error. *)
