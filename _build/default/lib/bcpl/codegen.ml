open Ast
module Asm = Alto_machine.Asm

exception Error_ of string

let failf fmt = Format.kasprintf (fun s -> raise (Error_ s)) fmt

(* {2 environments} *)

type env = {
  globals : (string, string) Hashtbl.t;  (* name -> data label *)
  vectors : (string, string) Hashtbl.t;  (* name -> data label (value = address) *)
  functions : (string, string * int) Hashtbl.t;  (* name -> code label, arity *)
  mutable strings : (string * string) list;  (* data label, contents *)
  mutable fresh : int;
}

type fctx = {
  params : string list;
  mutable locals : (string * int) list;  (* name -> stack slot, 1-based *)
  mutable depth : int;  (* words pushed since function entry *)
  mutable code : Asm.item list;  (* reversed *)
}

let fresh_label env prefix =
  env.fresh <- env.fresh + 1;
  Printf.sprintf "$%s%d" prefix env.fresh

let intern_string env s =
  match List.find_opt (fun (_, c) -> String.equal c s) env.strings with
  | Some (label, _) -> label
  | None ->
      let label = fresh_label env "str" in
      env.strings <- (label, s) :: env.strings;
      label

let emit ctx item = ctx.code <- item :: ctx.code
let op ctx name operands = emit ctx (Asm.Op (name, operands))
let reg r = Asm.Reg r
let imm n = Asm.Imm (n land 0xffff)
let lab l = Asm.Lab l

(* {2 variable addressing}

   Frame layout, addresses increasing upward from the frame pointer:
   [FP + 0 .. depth-1] are pushed words (locals and temporaries, most
   recent lowest), [FP + depth] is the return address, and above it the
   arguments, last argument lowest. A local in slot s (s = depth at the
   moment it was pushed) therefore lives at FP + depth - s. *)

type place =
  | On_stack of int  (* offset from FP at current depth *)
  | Global_cell of string
  | Vector_addr of string

let resolve env ctx name =
  match List.assoc_opt name ctx.locals with
  | Some slot -> On_stack (ctx.depth - slot)
  | None -> (
      match List.find_index (String.equal name) ctx.params with
      | Some i ->
          let arity = List.length ctx.params in
          On_stack (ctx.depth + 1 + (arity - 1 - i))
      | None -> (
          match Hashtbl.find_opt env.globals name with
          | Some label -> Global_cell label
          | None -> (
              match Hashtbl.find_opt env.vectors name with
              | Some label -> Vector_addr label
              | None ->
                  if Hashtbl.mem env.functions name then
                    failf "function %S used as a value" name
                  else failf "unknown name %S" name)))

(* Leave the address of a stack slot in AC3. *)
let stack_address ctx offset =
  op ctx "MFP" [ reg 3 ];
  if offset <> 0 then op ctx "ADDI" [ reg 3; imm offset ]

let push0 ctx =
  op ctx "PUSH" [ reg 0 ];
  ctx.depth <- ctx.depth + 1

let pop_into ctx r =
  op ctx "POP" [ reg r ];
  ctx.depth <- ctx.depth - 1

(* Adjust the frame pointer by [k] words (popping), no register results. *)
let drop_words ctx k =
  if k > 0 then begin
    op ctx "MFP" [ reg 3 ];
    op ctx "ADDI" [ reg 3; imm k ];
    op ctx "MTF" [ reg 3 ]
  end

(* {2 built-in procedures} *)

(* name, arity, returns-a-value (informational), emitter. Arguments are
   in AC0 (first) and AC1 (second) when the emitter runs. *)
let builtins env ctx =
  let jsr_ext s = op ctx "JSR" [ Asm.Ext s ] in
  let none_means_ffff service =
    (* AC1 non-zero means "nothing": turn the result into 0xFFFF. *)
    jsr_ext service;
    let done_ = fresh_label env "bi" in
    op ctx "JZ" [ reg 1; lab done_ ];
    op ctx "LDI" [ reg 0; imm 0xffff ];
    emit ctx (Asm.Label done_)
  in
  [
    ("writechar", 1, fun () -> jsr_ext "WriteChar");
    ("writestring", 1, fun () -> jsr_ext "WriteString");
    ("readchar", 0, fun () -> none_means_ffff "ReadChar");
    ("charspending", 0, fun () -> jsr_ext "CharsPending");
    ("allocate", 1, fun () -> jsr_ext "Allocate");
    ("free", 1, fun () -> jsr_ext "Free");
    ("createfile", 1, fun () -> jsr_ext "CreateFile");
    ("deletefile", 1, fun () -> jsr_ext "DeleteFile");
    ("lookupfile", 1, fun () -> jsr_ext "LookupFile");
    ("openfile", 2, fun () -> jsr_ext "OpenFile");
    ("closestream", 1, fun () -> jsr_ext "CloseStream");
    ("streamget", 1, fun () -> none_means_ffff "StreamGet");
    ("streamput", 2, fun () -> jsr_ext "StreamPut");
    ("streamreset", 1, fun () -> jsr_ext "StreamReset");
    ("getposition", 1, fun () -> jsr_ext "GetPosition");
    ("setposition", 2, fun () -> jsr_ext "SetPosition");
    ("filelength", 1, fun () -> jsr_ext "FileLength");
    ("outload", 1, fun () -> jsr_ext "OutLoad");
    ("inload", 1, fun () -> jsr_ext "InLoad");
    ("junta", 1, fun () -> jsr_ext "Junta");
    ("counterjunta", 0, fun () -> jsr_ext "CounterJunta");
    ("exit", 1, fun () -> jsr_ext "Exit");
    (* Packed-string bytes: getbyte(s, i) / putbyte(s, i, b) address the
       i-th character of the length-prefixed string at s (two characters
       per word, high byte first — the layout of every string literal and
       of what the system services exchange). *)
    ( "getbyte",
      2,
      fun () ->
        (* AC0 = s, AC1 = i.  word = s + 1 + i/2 *)
        op ctx "MOV" [ reg 3; reg 1 ];
        op ctx "SHR" [ reg 3; imm 1 ];
        op ctx "ADD" [ reg 3; reg 0 ];
        op ctx "ADDI" [ reg 3; imm 1 ];
        op ctx "LDX" [ reg 0; reg 3 ];
        (* odd index -> low byte, even -> high byte *)
        op ctx "MOV" [ reg 3; reg 1 ];
        op ctx "SHL" [ reg 3; imm 15 ];
        let odd = fresh_label env "gb" and done_ = fresh_label env "gb" in
        op ctx "JLT" [ reg 3; lab odd ];
        op ctx "SHR" [ reg 0; imm 8 ];
        op ctx "JMP" [ lab done_ ];
        emit ctx (Asm.Label odd);
        op ctx "LDI" [ reg 1; imm 0xff ];
        op ctx "AND" [ reg 0; reg 1 ];
        emit ctx (Asm.Label done_) );
    ( "putbyte",
      3,
      fun () ->
        (* AC0 = s, AC1 = i, AC2 = b *)
        op ctx "MOV" [ reg 3; reg 1 ];
        op ctx "SHR" [ reg 3; imm 1 ];
        op ctx "ADD" [ reg 3; reg 0 ];
        op ctx "ADDI" [ reg 3; imm 1 ];
        op ctx "PUSH" [ reg 3 ];
        ctx.depth <- ctx.depth + 1;
        op ctx "LDX" [ reg 0; reg 3 ];
        op ctx "MOV" [ reg 3; reg 1 ];
        op ctx "SHL" [ reg 3; imm 15 ];
        let odd = fresh_label env "pb" and done_ = fresh_label env "pb" in
        op ctx "JLT" [ reg 3; lab odd ];
        (* even: keep low byte, install b as high *)
        op ctx "LDI" [ reg 1; imm 0xff ];
        op ctx "AND" [ reg 0; reg 1 ];
        op ctx "MOV" [ reg 3; reg 2 ];
        op ctx "SHL" [ reg 3; imm 8 ];
        op ctx "OR" [ reg 0; reg 3 ];
        op ctx "JMP" [ lab done_ ];
        emit ctx (Asm.Label odd);
        (* odd: keep high byte, install b as low *)
        op ctx "LDI" [ reg 1; imm 0xff00 ];
        op ctx "AND" [ reg 0; reg 1 ];
        op ctx "OR" [ reg 0; reg 2 ];
        emit ctx (Asm.Label done_);
        op ctx "POP" [ reg 3 ];
        ctx.depth <- ctx.depth - 1;
        op ctx "STX" [ reg 0; reg 3 ] );
  ]

(* {2 expressions} *)

let rec gen_expr env ctx e =
  match e with
  | Num n -> op ctx "LDI" [ reg 0; imm n ]
  | Str s -> op ctx "LDI" [ reg 0; lab (intern_string env s) ]
  | Var name -> (
      match resolve env ctx name with
      | On_stack offset ->
          stack_address ctx offset;
          op ctx "LDX" [ reg 0; reg 3 ]
      | Global_cell label -> op ctx "LDA" [ reg 0; lab label ]
      | Vector_addr label -> op ctx "LDI" [ reg 0; lab label ])
  | Addr_of name -> (
      match resolve env ctx name with
      | On_stack offset ->
          stack_address ctx offset;
          op ctx "MOV" [ reg 0; reg 3 ]
      | Global_cell label | Vector_addr label -> op ctx "LDI" [ reg 0; lab label ])
  | Neg e ->
      gen_expr env ctx e;
      op ctx "MOV" [ reg 1; reg 0 ];
      op ctx "LDI" [ reg 0; imm 0 ];
      op ctx "SUB" [ reg 0; reg 1 ]
  | Deref e ->
      gen_expr env ctx e;
      op ctx "MOV" [ reg 3; reg 0 ];
      op ctx "LDX" [ reg 0; reg 3 ]
  | Index (base, index) -> gen_expr env ctx (Deref (Bin (Add, base, index)))
  | Bin (bop, a, b) ->
      gen_expr env ctx a;
      push0 ctx;
      gen_expr env ctx b;
      op ctx "MOV" [ reg 1; reg 0 ];
      pop_into ctx 0;
      gen_binop env ctx bop
  | Call (name, args) -> gen_call env ctx name args

and gen_binop env ctx bop =
  (* Operands: AC0 (left), AC1 (right). Result in AC0. *)
  let branch_bool mnemonic r =
    (* [mnemonic r, true-target] decides; emit 0/1. *)
    let yes = fresh_label env "T" and done_ = fresh_label env "E" in
    op ctx mnemonic [ reg r; lab yes ];
    op ctx "LDI" [ reg 0; imm 0 ];
    op ctx "JMP" [ lab done_ ];
    emit ctx (Asm.Label yes);
    op ctx "LDI" [ reg 0; imm 1 ];
    emit ctx (Asm.Label done_)
  in
  match bop with
  | Add -> op ctx "ADD" [ reg 0; reg 1 ]
  | Sub -> op ctx "SUB" [ reg 0; reg 1 ]
  | Mul -> op ctx "MUL" [ reg 0; reg 1 ]
  | Div -> op ctx "DIV" [ reg 0; reg 1 ]
  | Rem -> op ctx "REM" [ reg 0; reg 1 ]
  | And -> op ctx "AND" [ reg 0; reg 1 ]
  | Or -> op ctx "OR" [ reg 0; reg 1 ]
  | Eq ->
      op ctx "SUB" [ reg 0; reg 1 ];
      branch_bool "JZ" 0
  | Ne ->
      op ctx "SUB" [ reg 0; reg 1 ];
      branch_bool "JNZ" 0
  | Lt ->
      (* a - b negative (16-bit signed view). *)
      op ctx "SUB" [ reg 0; reg 1 ];
      branch_bool "JLT" 0
  | Gt ->
      op ctx "MOV" [ reg 3; reg 1 ];
      op ctx "SUB" [ reg 3; reg 0 ];
      branch_bool "JLT" 3
  | Le ->
      (* not (a > b): b - a not negative. *)
      op ctx "MOV" [ reg 3; reg 1 ];
      op ctx "SUB" [ reg 3; reg 0 ];
      let no = fresh_label env "T" and done_ = fresh_label env "E" in
      op ctx "JLT" [ reg 3; lab no ];
      op ctx "LDI" [ reg 0; imm 1 ];
      op ctx "JMP" [ lab done_ ];
      emit ctx (Asm.Label no);
      op ctx "LDI" [ reg 0; imm 0 ];
      emit ctx (Asm.Label done_)
  | Ge ->
      op ctx "SUB" [ reg 0; reg 1 ];
      let no = fresh_label env "T" and done_ = fresh_label env "E" in
      op ctx "JLT" [ reg 0; lab no ];
      op ctx "LDI" [ reg 0; imm 1 ];
      op ctx "JMP" [ lab done_ ];
      emit ctx (Asm.Label no);
      op ctx "LDI" [ reg 0; imm 0 ];
      emit ctx (Asm.Label done_)

and gen_call env ctx name args =
  match Hashtbl.find_opt env.functions name with
  | Some (label, arity) ->
      if List.length args <> arity then
        failf "%s expects %d argument(s), got %d" name arity (List.length args);
      List.iter
        (fun a ->
          gen_expr env ctx a;
          push0 ctx)
        args;
      op ctx "JSR" [ lab label ];
      drop_words ctx arity;
      ctx.depth <- ctx.depth - arity
  | None -> (
      match List.find_opt (fun (n, _, _) -> String.equal n name) (builtins env ctx) with
      | None -> failf "unknown procedure %S" name
      | Some (_, arity, emitter) ->
          if List.length args <> arity then
            failf "%s expects %d argument(s), got %d" name arity (List.length args);
          (match args with
          | [] -> ()
          | [ a ] -> gen_expr env ctx a
          | [ a; b ] ->
              gen_expr env ctx a;
              push0 ctx;
              gen_expr env ctx b;
              op ctx "MOV" [ reg 1; reg 0 ];
              pop_into ctx 0
          | [ a; b; c ] ->
              gen_expr env ctx a;
              push0 ctx;
              gen_expr env ctx b;
              push0 ctx;
              gen_expr env ctx c;
              op ctx "MOV" [ reg 2; reg 0 ];
              pop_into ctx 1;
              pop_into ctx 0
          | _ -> failf "built-ins take at most three arguments");
          emitter ())

(* {2 statements} *)

let rec gen_stmt env ctx stmt =
  match stmt with
  | Let (name, e) ->
      gen_expr env ctx e;
      push0 ctx;
      ctx.locals <- (name, ctx.depth) :: ctx.locals
  | Assign (name, e) -> (
      gen_expr env ctx e;
      match resolve env ctx name with
      | On_stack offset ->
          stack_address ctx offset;
          op ctx "STX" [ reg 0; reg 3 ]
      | Global_cell label -> op ctx "STA" [ reg 0; lab label ]
      | Vector_addr _ -> failf "cannot assign to vector %S" name)
  | Store (addr, e) ->
      gen_expr env ctx addr;
      push0 ctx;
      gen_expr env ctx e;
      pop_into ctx 3;
      op ctx "STX" [ reg 0; reg 3 ]
  | If (cond, then_branch, else_branch) -> (
      gen_expr env ctx cond;
      match else_branch with
      | None ->
          let done_ = fresh_label env "fi" in
          op ctx "JZ" [ reg 0; lab done_ ];
          gen_scoped env ctx then_branch;
          emit ctx (Asm.Label done_)
      | Some else_branch ->
          let no = fresh_label env "el" and done_ = fresh_label env "fi" in
          op ctx "JZ" [ reg 0; lab no ];
          gen_scoped env ctx then_branch;
          op ctx "JMP" [ lab done_ ];
          emit ctx (Asm.Label no);
          gen_scoped env ctx else_branch;
          emit ctx (Asm.Label done_))
  | While (cond, body) ->
      let top = fresh_label env "wh" and done_ = fresh_label env "od" in
      emit ctx (Asm.Label top);
      gen_expr env ctx cond;
      op ctx "JZ" [ reg 0; lab done_ ];
      gen_scoped env ctx body;
      op ctx "JMP" [ lab top ];
      emit ctx (Asm.Label done_)
  | Block stmts ->
      let saved_locals = ctx.locals and saved_depth = ctx.depth in
      List.iter (gen_stmt env ctx) stmts;
      drop_words ctx (ctx.depth - saved_depth);
      ctx.locals <- saved_locals;
      ctx.depth <- saved_depth
  | Expr_stmt e -> gen_expr env ctx e
  | Resultis e ->
      gen_expr env ctx e;
      (* Unwind whatever is on the stack at this point, then return;
         other paths continue with the depth they had. *)
      if ctx.depth > 0 then begin
        op ctx "MFP" [ reg 3 ];
        op ctx "ADDI" [ reg 3; imm ctx.depth ];
        op ctx "MTF" [ reg 3 ]
      end;
      op ctx "RET" []
  | Return ->
      op ctx "LDI" [ reg 0; imm 0 ];
      if ctx.depth > 0 then begin
        op ctx "MFP" [ reg 3 ];
        op ctx "ADDI" [ reg 3; imm ctx.depth ];
        op ctx "MTF" [ reg 3 ]
      end;
      op ctx "RET" []

(* If/While branches get block scoping even when they are bare
   statements, so a stray [let] cannot unbalance the stack. *)
and gen_scoped env ctx stmt =
  match stmt with
  | Block _ -> gen_stmt env ctx stmt
  | Let _ | Assign _ | Store _ | If _ | While _ | Expr_stmt _ | Resultis _ | Return ->
      gen_stmt env ctx (Block [ stmt ])

(* {2 whole programs} *)

let function_label name = "$fn_" ^ name

let compile program =
  try
    let env =
      {
        globals = Hashtbl.create 16;
        vectors = Hashtbl.create 16;
        functions = Hashtbl.create 16;
        strings = [];
        fresh = 0;
      }
    in
    (* Declarations first, so forward references work. *)
    let declare name =
      if
        Hashtbl.mem env.globals name || Hashtbl.mem env.vectors name
        || Hashtbl.mem env.functions name
      then failf "%S declared twice" name
    in
    List.iter
      (function
        | Global (name, _) ->
            declare name;
            Hashtbl.replace env.globals name (fresh_label env ("g_" ^ name))
        | Vector (name, _) ->
            declare name;
            Hashtbl.replace env.vectors name (fresh_label env ("v_" ^ name))
        | Func (name, params, _) ->
            declare name;
            Hashtbl.replace env.functions name (function_label name, List.length params))
      program;
    if not (Hashtbl.mem env.functions "main") then failf "no main() function";
    (match Hashtbl.find env.functions "main" with
    | _, 0 -> ()
    | _, n -> failf "main() must take no arguments, takes %d" n);
    (* Entry stub. *)
    let items = ref [] in
    let add item = items := item :: !items in
    add (Asm.Label "start");
    add (Asm.Op ("JSR", [ lab (function_label "main") ]));
    add (Asm.Op ("JSR", [ Asm.Ext "Exit" ]));
    (* Function bodies. *)
    List.iter
      (function
        | Global _ | Vector _ -> ()
        | Func (name, params, body) ->
            let ctx = { params; locals = []; depth = 0; code = [] } in
            add (Asm.Label (function_label name));
            gen_stmt env ctx body;
            (* Implicit return 0 for bodies that fall off the end. *)
            gen_stmt env ctx Return;
            List.iter add (List.rev ctx.code))
      program;
    (* Data: globals, vectors, interned strings. *)
    List.iter
      (function
        | Global (name, value) ->
            add (Asm.Label (Hashtbl.find env.globals name));
            add (Asm.Word_data (value land 0xffff))
        | Vector (name, size) ->
            add (Asm.Label (Hashtbl.find env.vectors name));
            add (Asm.Block size)
        | Func _ -> ())
      program;
    List.iter
      (fun (label, contents) ->
        add (Asm.Label label);
        add (Asm.String_data contents))
      (List.rev env.strings);
    Ok (List.rev !items)
  with Error_ msg -> Error msg
