(** Recursive-descent parser; the grammar is documented in {!Bcpl}. *)

val parse : (Lexer.token * int) list -> (Ast.program, Lexer.error) result
