(** Tokenizer for the BCPL-flavoured language. *)

type token =
  | Name of string
  | Number of int
  | String_lit of string
  | Kw_global
  | Kw_vec
  | Kw_let
  | Kw_be
  | Kw_if
  | Kw_then
  | Kw_else
  | Kw_while
  | Kw_do
  | Kw_resultis
  | Kw_return
  | Kw_rem
  | Kw_for
  | Kw_to
  | Kw_switchon
  | Kw_into
  | Kw_case
  | Kw_default
  | Kw_true
  | Kw_false
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Semi
  | Comma
  | Assign  (** [:=] *)
  | Plus
  | Minus
  | Star
  | Slash
  | Bang  (** [!] *)
  | Amp
  | Bar
  | At
  | Eq  (** [=] *)
  | Ne  (** [#] *)
  | Lt
  | Gt
  | Le
  | Ge
  | Colon

type error = { line : int; message : string }

val pp_token : Format.formatter -> token -> unit
val pp_error : Format.formatter -> error -> unit

val tokenize : string -> ((token * int) list, error) result
(** Tokens paired with their source line, for error reporting. Comments
    run from [//] to end of line. Character literals ['c'] (with [\n],
    [\t], [\\], [\'] escapes) are numbers. Numbers are decimal, or octal
    with a [#] prefix… no — [#] is "not equal"; octal uses [0o], hex
    [0x]. *)
