(** A small BCPL-flavoured systems language for the simulated Alto.

    §2 of the paper: the operating system "is written almost entirely in
    BCPL, and in fact this language is considered to be one of the
    standard ways of programming the machine", while other environments
    (Mesa, Lisp, Smalltalk) with entirely different compilers share the
    same disk format and the same loader conventions. This compiler is
    our second programming environment: a typeless word language in
    BCPL's image, compiled to the machine's instruction set through the
    ordinary assembler, emitting ordinary code files whose operating-
    system references are fixups bound by the ordinary loader. An
    assembler program and a BCPL program are indistinguishable on disk —
    which is the point.

    The language (every value is one 16-bit word):

    {v program     := { declaration }
       declaration := "global" NAME [ "=" NUM ] ";"
                    | "vec" NAME SIZE ";"
                    | "let" NAME "(" [ names ] ")" "=" expr ";"
                    | "let" NAME "(" [ names ] ")" "be" block
       block       := "{" { statement } "}"
       statement   := block
                    | "let" NAME "=" expr ";"            local
                    | lvalue ":=" expr ";"               assignment
                    | "if" expr "then" stmt ["else" stmt]
                    | "while" expr "do" stmt
                    | "for" NAME "=" expr "to" expr "do" stmt
                    | "switchon" expr "into" "{" cases "}"   (no fall-through)
                    | "resultis" expr ";" | "return" ";"
                    | expr ";"                           call for effect
       lvalue      := NAME | "!" expr | expr "!" expr
       expr        := usual precedence: | & comparisons + - * / rem
                      unary - !   postfix v!i   calls f(…)
                      literals: 123 0x7b 0o173 'c' "string" true false
                      @g takes a cell's address v}

    [v!i] is the word at address [v+i]; [!e] the word at [e]; a string
    literal's value is the address of a static length-prefixed string
    (exactly what the display service wants); [vec buf 64;] makes [buf]
    the address of 64 static words. Comparisons yield 1 or 0 and use the
    16-bit signed view. Built-in procedures bind to the system services
    (see {!Codegen}). Execution starts at [main()]; its result becomes
    the program's exit status.

    A tiny standard library — [writenum], [newline], [writeln], written
    in the language itself — links in automatically when called, unless
    the program defines its own version (the user may always replace the
    system's facilities). *)

module Asm = Alto_machine.Asm

type error =
  | Lex_error of Lexer.error
  | Parse_error of Lexer.error
  | Codegen_error of string
  | Asm_error of string

val pp_error : Format.formatter -> error -> unit

val compile : ?origin:int -> string -> (Asm.program, error) result
(** Source text to an assembled program, ready for
    {!Alto_os.Loader.save_program} (use [origin = Alto_os.System.user_base]). *)

val items : string -> (Asm.item list, error) result
(** Stop after code generation — the assembler input, for inspection. *)
