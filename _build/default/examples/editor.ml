(* An interactive editor, written in the BCPL-flavoured language and run
   in the simulated machine. §3.6's motivating program is "the editor";
   this one is considerably humbler, but it is a real interactive
   program: it keeps its text in a static vector, reads single-character
   commands from the keyboard (type-ahead, naturally), and writes the
   buffer to a catalogued file through a disk stream.

   Commands:  a<text>~  append text (up to '~')
              p         print the buffer
              w         write the buffer to Edited.txt
              x         erase the buffer
              q         quit

   Run with: dune exec examples/editor.exe *)

module Vm = Alto_machine.Vm
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module Directory = Alto_fs.Directory
module File = Alto_fs.File
module System = Alto_os.System
module Loader = Alto_os.Loader
module Bcpl = Alto_bcpl.Bcpl

let editor_source =
  {|// a one-vector line editor
vec buffer 4000;
global used = 0;

let append() be {
  let c = readchar();
  while c # '~' do {
    if c # 0xffff then { buffer!used := c; used := used + 1; }
    c := readchar();
  }
}

let show() be {
  for i = 0 to used - 1 do writechar(buffer!i);
  newline();
}

let save() be {
  createfile("Edited.txt");
  let h = openfile("Edited.txt", 1);
  for i = 0 to used - 1 do streamput(h, buffer!i);
  closestream(h);
  writestring("(saved ");
  writenum(used);
  writeln(" chars)");
}

let main() be {
  let going = true;
  while going do {
    switchon readchar() into {
      case 'a':      append();
      case 'p':      show();
      case 'w':      save();
      case 'x':      used := 0;
      case 'q':
      case 0xffff:   going := false;
    }
  }
  resultis 0;
}
|}

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

let () =
  let system = System.boot () in
  let program = ok Bcpl.pp_error (Bcpl.compile ~origin:System.user_base editor_source) in
  Printf.printf "editor compiled: %d words of code\n" (Array.length program.Alto_machine.Asm.code);
  let file = ok Loader.pp_error (Loader.save_program system ~name:"Edit.run" program) in

  (* The user's whole session arrives as type-ahead. *)
  Keyboard.feed (System.keyboard system)
    "aTo the user, the system is a collection of facilities,~p\
     a any of which may be rejected, accepted, or replaced.~p\
     wq";
  (match ok Loader.pp_error (Loader.run ~fuel:10_000_000 system file) with
  | Vm.Stopped 0 -> ()
  | stop -> Format.kasprintf failwith "editor stopped oddly: %a" Vm.pp_stop stop);

  print_endline "-- the editor's display --";
  print_endline (Display.contents (System.display system));

  (* And the saved file is an ordinary file on the pack. *)
  let root = ok Directory.pp_error (Directory.open_root (System.fs system)) in
  match ok Directory.pp_error (Directory.lookup root "Edited.txt") with
  | Some e ->
      let f = ok File.pp_error (File.open_leader (System.fs system) e.Directory.entry_file) in
      let text =
        Bytes.to_string
          (ok File.pp_error (File.read_bytes f ~pos:0 ~len:(File.byte_length f)))
      in
      Printf.printf "-- Edited.txt on disk (%d bytes) --\n%s\n" (File.byte_length f) text
  | None -> failwith "Edited.txt was not saved"
