(* Debugging by world swap (§4): "When a breakpoint is encountered …
   the state of the machine is written on a disk file, and the machine
   state is restored from a file that contains the debugger. The
   debugging program may examine or alter the state of the faulty
   program by reading or writing portions of the file that was written
   as a result of the breakpoint. The debugger can later resume
   execution of the original program by restoring the machine state from
   the file."

   A loaded program with a wrong data word hits its breakpoint (an
   OutLoad); the debugger — living comfortably in the host, as a
   debugger in another world would — inspects the saved image through
   the file, patches the bad word, and revives the program, which then
   runs to a correct finish.

   Run with: dune exec examples/debugger.exe *)

module Word = Alto_machine.Word
module Vm = Alto_machine.Vm
module Asm = Alto_machine.Asm
module Geometry = Alto_disk.Geometry
module Directory = Alto_fs.Directory
module Display = Alto_streams.Display
module World = Alto_world.World
module Checkpoint = Alto_world.Checkpoint
module System = Alto_os.System
module Loader = Alto_os.Loader

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

let () =
  let geometry = { Geometry.diablo_31 with Geometry.model = "dev pack"; cylinders = 80 } in
  let system = System.boot ~geometry () in
  let root = ok Directory.pp_error (Directory.open_root (System.fs system)) in
  let break_file =
    ok Checkpoint.pp_error
      (Checkpoint.state_file (System.fs system) ~directory:root ~name:"Broken.state")
  in
  let handle = System.register_file system break_file in

  (* The buggy program: it means to print "A" but its datum says "?". It
     breakpoints (OutLoad) before printing. *)
  let program =
    Asm.assemble_exn ~origin:System.user_base
      [
        Asm.Label "start";
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm handle ]);
        Asm.Op ("JSR", [ Asm.Ext "OutLoad" ]);
        Asm.Op ("JZ", [ Asm.Reg 0; Asm.Lab "resume" ]);
        (* First return: the world is saved; control would now pass to
           the debugger. Exit with a recognizable code. *)
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 42 ]);
        Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
        Asm.Label "resume";
        Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "datum" ]);
        Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
        Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
        Asm.Label "datum";
        Asm.Word_data (Char.code '?');
      ]
  in
  let datum_address = List.assoc "datum" program.Asm.symbols in
  let file = ok Loader.pp_error (Loader.save_program system ~name:"Buggy.run" program) in

  Format.printf "== running the buggy program ==@.";
  let stop = ok Loader.pp_error (Loader.run system file) in
  assert (stop = Vm.Stopped 42);
  Format.printf "breakpoint hit: the program's world is on Broken.state@.@.";

  (* The debugger's session, working only through the saved file. *)
  Format.printf "== debugger ==@.";
  let regs = ok World.pp_error (World.peek_registers break_file) in
  Format.printf "saved PC = %d, frame pointer = %d@." (Word.to_int regs.(0))
    (Word.to_int regs.(1));
  let bad =
    (ok World.pp_error (World.read_saved_memory break_file ~pos:datum_address ~len:1)).(0)
  in
  Format.printf "datum at %d holds %C — there's the bug; patching to 'A'@."
    datum_address
    (Char.chr (Word.to_int bad));
  ok World.pp_error
    (World.write_saved_memory break_file ~pos:datum_address
       [| Word.of_int (Char.code 'A') |]);

  (* Resume the patched world: OutLoad returns a second time. *)
  Format.printf "@.== resuming the patched world ==@.";
  ok World.pp_error (World.in_load (System.cpu system) break_file ~message:[||]);
  let stop = Vm.run ~fuel:100_000 (System.cpu system) ~handler:(System.handler system) in
  assert (stop = Vm.Stopped 0);
  Format.printf "program printed: %S@." (Display.contents (System.display system));
  Format.printf "fixed without ever reloading it.@."
