(* The second programming environment (§2): "programs written in
   radically different languages … share the same file system and remote
   facilities." This session stores BCPL source ON the pack, compiles it
   AT the executive into an ordinary code file, runs it, and lets it
   cooperate with an assembler-written program through a shared file.

   The program itself is a sieve of Eratosthenes that prints the primes
   below 100 and writes them to Primes.txt through a disk stream.

   Run with: dune exec examples/bcpl_demo.exe *)

module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module System = Alto_os.System
module Executive = Alto_os.Executive

let sieve_source =
  {|// primes below 100, to the display and to a file
vec flags 100;
global limit = 100;

let show(n) be {
  if n >= 10 then writechar('0' + n / 10);
  writechar('0' + n rem 10);
  writechar(' ');
}

let save(h, n) be {
  if n >= 10 then streamput(h, '0' + n / 10);
  streamput(h, '0' + n rem 10);
  streamput(h, ' ');
}

let main() be {
  let i = 2;
  while i < limit do { flags!i := 1; i := i + 1; }
  i := 2;
  while i * i < limit do {
    if flags!i then {
      let j = i * i;
      while j < limit do { flags!j := 0; j := j + i; }
    }
    i := i + 1;
  }
  createfile("Primes.txt");
  let h = openfile("Primes.txt", 1);
  i := 2;
  while i < limit do {
    if flags!i then { show(i); save(h, i); }
    i := i + 1;
  }
  closestream(h);
  resultis 0;
}
|}

let () =
  let system = System.boot () in
  (* The source lives on the pack like any other file; the executive
     compiles it there too. One long type-ahead drives the whole
     session. *)
  Keyboard.feed (System.keyboard system)
    (String.concat "\n"
       [
         "put Sieve.bcpl " ^ String.map (fun c -> if c = '\n' then '\031' else c) sieve_source;
         "compile Sieve.bcpl Sieve.run";
         "Sieve.run";
         "type Primes.txt";
         "ls";
         "quit";
       ]
    ^ "\n")
  |> ignore;
  (* `put` is line-oriented, so the newlines were smuggled through as
     unit-separator characters; patch the stored file before compiling.
     (A real session would use an editor — ours is two lines of OCaml.) *)
  let fs = System.fs system in
  let fix_newlines () =
    match Alto_fs.Directory.open_root fs with
    | Error _ -> ()
    | Ok root -> (
        match Alto_fs.Directory.lookup root "Sieve.bcpl" with
        | Ok (Some e) -> (
            match Alto_fs.File.open_leader fs e.Alto_fs.Directory.entry_file with
            | Ok f -> (
                match Alto_fs.File.read_bytes f ~pos:0 ~len:(Alto_fs.File.byte_length f) with
                | Ok bytes ->
                    let fixed =
                      String.map
                        (fun c -> if c = '\031' then '\n' else c)
                        (Bytes.to_string bytes)
                    in
                    ignore (Alto_fs.File.write_bytes f ~pos:0 fixed)
                | Error _ -> ())
            | Error _ -> ())
        | Ok None | Error _ -> ())
  in
  (* Run the first command (put), fix the file, then run the rest. *)
  let _ = Executive.run ~max_commands:1 system in
  fix_newlines ();
  let _ = Executive.run system in
  print_endline (Display.contents (System.display system))
