(* Diskless operation (§5.2): "The display, keyboard, and
   storage-allocation packages have been assembled to form an operating
   system for use without a disk, used to support diagnostics or other
   programs that depend on network communications rather than on local
   disk storage."

   One machine has the pack and runs a file server. The other has no
   disk at all: it assembles its own tiny resident system from the
   standard packages (display, keyboard, zones — plus the Level table
   for the stub addresses), fetches files over the network, and runs a
   program that was linked on the server — same code-file format, same
   fixup convention, no disk anywhere near it.

   Run with: dune exec examples/diskless.exe *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Asm = Alto_machine.Asm
module Geometry = Alto_disk.Geometry
module Zone = Alto_zones.Zone
module Stream = Alto_streams.Stream
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module Net = Alto_net.Net
module File_server = Alto_server.File_server
module Level = Alto_os.Level
module System = Alto_os.System
module Loader = Alto_os.Loader

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

(* The program the diskless machine will run, linked on the server. *)
let greeting_program =
  [
    Asm.Label "start";
    Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "msg" ]);
    Asm.Op ("JSR", [ Asm.Ext "WriteString" ]);
    (* Prove the zone package works too: allocate, use, free. *)
    Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 8 ]);
    Asm.Op ("JSR", [ Asm.Ext "Allocate" ]);
    Asm.Op ("MOV", [ Asm.Reg 2; Asm.Reg 0 ]);
    Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 33 ]) (* '!' *);
    Asm.Op ("STX", [ Asm.Reg 1; Asm.Reg 2 ]);
    Asm.Op ("LDX", [ Asm.Reg 0; Asm.Reg 2 ]);
    Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
    Asm.Op ("MOV", [ Asm.Reg 0; Asm.Reg 2 ]);
    Asm.Op ("JSR", [ Asm.Ext "Free" ]);
    Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
    Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
    Asm.Label "msg";
    Asm.String_data "running with no disk at all";
  ]

let () =
  (* {2 The server machine: a pack, a volume, a file server} *)
  let server_system = System.boot ~geometry:Geometry.diablo_31 () in
  ignore
    (ok Loader.pp_error
       (Loader.save_program server_system ~name:"Greet.run"
          (Asm.assemble_exn ~origin:System.user_base greeting_program)));
  (* A message of the day, stored the ordinary way. *)
  let () =
    let fs = System.fs server_system in
    let root = ok Alto_fs.Directory.pp_error (Alto_fs.Directory.open_root fs) in
    let motd = ok Alto_fs.File.pp_error (Alto_fs.File.create fs ~name:"Motd.txt") in
    ok Alto_fs.Directory.pp_error
      (Alto_fs.Directory.add root ~name:"Motd.txt" (Alto_fs.File.leader_name motd));
    ok Alto_fs.File.pp_error
      (Alto_fs.File.write_bytes motd ~pos:0 "welcome to the machine room\n")
  in
  let net = Net.create () in
  let server_station = Net.attach net ~name:"fileserver" in
  let server = File_server.create (System.fs server_system) server_station in
  let pump () = ignore (File_server.serve_pending server) in

  (* {2 The diskless machine: memory, processor, display, keyboard, zone} *)
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  let display = Display.create () in
  let keyboard = Keyboard.create () in
  let zone =
    (* The standard free-storage package over the level-13 region, just
       as the full system would have it. *)
    Zone.format ~name:"diskless free storage" memory ~pos:(Level.base 13)
      ~len:(Level.find 13).Level.size_words
  in
  (* Install only the stubs this configuration supports. *)
  let supported = [ "WriteChar"; "WriteString"; "ReadChar"; "Allocate"; "Free"; "Exit" ] in
  List.iter
    (fun (level : Level.t) ->
      List.iter
        (fun (service : Level.service) ->
          if List.mem service.Level.service_name supported then
            Memory.write_block memory
              ~pos:(Level.service_address service.Level.service_name)
              (Array.of_list (Level.stub_words service)))
        level.Level.services)
    Level.all;
  (* The resident "system" is this handler: display, keyboard, zone. *)
  let handler cpu code =
    match code with
    | 30 -> (
        match Zone.allocate zone (Word.to_int (Cpu.ac cpu 0)) with
        | addr ->
            Cpu.set_ac cpu 0 (Word.of_int addr);
            Cpu.set_ac cpu 3 Word.zero;
            Vm.Sys_continue
        | exception Zone.Out_of_space _ ->
            Cpu.set_ac cpu 3 Word.one;
            Vm.Sys_continue)
    | 31 ->
        Zone.release zone (Word.to_int (Cpu.ac cpu 0));
        Cpu.set_ac cpu 3 Word.zero;
        Vm.Sys_continue
    | 60 -> (
        match (Keyboard.stream keyboard).Stream.get () with
        | Some c ->
            Cpu.set_ac cpu 0 (Word.of_int c);
            Cpu.set_ac cpu 1 Word.zero;
            Vm.Sys_continue
        | None ->
            Cpu.set_ac cpu 1 Word.one;
            Vm.Sys_continue)
    | 70 ->
        (Display.stream display).Stream.put (Word.to_int (Cpu.ac cpu 0));
        Vm.Sys_continue
    | 71 ->
        let addr = Word.to_int (Cpu.ac cpu 0) in
        let len = Word.to_int (Memory.read memory addr) in
        Stream.put_string (Display.stream display)
          (Memory.read_string memory ~pos:(addr + 1) ~len);
        Vm.Sys_continue
    | 81 -> Vm.Sys_stop (Word.to_int (Cpu.ac cpu 0))
    | other -> Vm.Sys_stop other
  in

  (* {2 Fetch and run, over the wire} *)
  let client = Net.attach net ~name:"diskless" in
  Format.printf "diskless machine asks for the listing:@.";
  let names =
    ok File_server.Client.pp_error
      (File_server.Client.listing client ~server:"fileserver" ~pump)
  in
  List.iter (fun n -> Format.printf "  %s@." n) names;

  let motd =
    ok File_server.Client.pp_error
      (File_server.Client.fetch client ~server:"fileserver" ~name:"Motd.txt" ~pump)
  in
  Format.printf "@.Motd.txt over the network: %s@." (String.trim motd);

  let code_bytes =
    ok File_server.Client.pp_error
      (File_server.Client.fetch client ~server:"fileserver" ~name:"Greet.run" ~pump)
  in
  let words =
    Array.init
      (String.length code_bytes / 2)
      (fun i -> Word.of_char_pair code_bytes.[2 * i] code_bytes.[(2 * i) + 1])
  in
  let parsed = ok Loader.pp_error (Loader.parse_code words) in
  Memory.write_block memory ~pos:parsed.Loader.origin parsed.Loader.code;
  List.iter
    (fun (offset, name) ->
      Memory.write memory
        (parsed.Loader.origin + offset)
        (Word.of_int_exn (Level.service_address name)))
    parsed.Loader.fixups;
  Cpu.set_pc cpu (Word.of_int (parsed.Loader.origin + parsed.Loader.entry_offset));
  Cpu.set_frame_pointer cpu (Word.of_int (Level.base 13));
  (match Vm.run ~fuel:100_000 cpu ~handler with
  | Vm.Stopped 0 -> ()
  | stop -> Format.kasprintf failwith "program did not finish: %a" Vm.pp_stop stop);
  Format.printf "@.the fetched program printed: %S@." (Display.contents display);
  Format.printf "zone balance after it exited: %d live blocks@."
    (Zone.stats zone).Zone.live_blocks
