examples/print_server_vm.mli:
