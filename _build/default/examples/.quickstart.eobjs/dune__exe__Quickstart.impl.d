examples/quickstart.ml: Alto_disk Alto_fs Alto_machine Alto_streams Array Format List
