examples/quickstart.mli:
