examples/print_server.mli:
