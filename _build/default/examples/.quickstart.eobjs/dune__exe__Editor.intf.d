examples/editor.mli:
