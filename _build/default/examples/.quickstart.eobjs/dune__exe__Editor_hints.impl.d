examples/editor_hints.ml: Alto_disk Alto_fs Alto_machine Format List Printf
