examples/print_server_vm.ml: Alto_bcpl Alto_disk Alto_fs Alto_machine Alto_os Alto_streams Alto_world Format Option Printf String
