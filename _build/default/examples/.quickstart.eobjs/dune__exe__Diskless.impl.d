examples/diskless.ml: Alto_disk Alto_fs Alto_machine Alto_net Alto_os Alto_server Alto_streams Alto_zones Array Format List String
