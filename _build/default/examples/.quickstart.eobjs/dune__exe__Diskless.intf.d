examples/diskless.mli:
