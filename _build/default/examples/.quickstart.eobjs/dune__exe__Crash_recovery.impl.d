examples/crash_recovery.ml: Alto_disk Alto_fs Alto_machine Bytes Char Format List Printf Random String
