examples/editor_hints.mli:
