examples/bcpl_demo.ml: Alto_fs Alto_os Alto_streams Bytes String
