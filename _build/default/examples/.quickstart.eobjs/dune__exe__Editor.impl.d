examples/editor.ml: Alto_bcpl Alto_fs Alto_machine Alto_os Alto_streams Array Bytes Format Printf
