examples/print_server.ml: Alto_disk Alto_fs Alto_machine Alto_net Alto_world Array Bytes Format List Printf String
