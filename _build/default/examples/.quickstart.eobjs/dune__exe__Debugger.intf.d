examples/debugger.mli:
