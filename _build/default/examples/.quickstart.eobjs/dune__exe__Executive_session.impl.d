examples/executive_session.ml: Alto_machine Alto_os Alto_streams Format Printf String
