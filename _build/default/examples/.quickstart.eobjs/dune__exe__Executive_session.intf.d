examples/executive_session.mli:
