examples/bcpl_demo.mli:
