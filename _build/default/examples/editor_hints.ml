(* Installed hint files (§3.6): "The editor, for example, uses two
   scratch files, a journal file, a file of messages etc. When these
   programs are 'installed', they create the necessary files and store
   hints for them in a data structure that is then written onto a state
   file. Subsequently the program can start up, read the state file, and
   access all its auxiliary files at maximum disk speed."

   This example installs an editor's file suite, compares cold startup
   (directory lookups) with hinted startup (state file only) in
   simulated disk time, then deletes a scratch file behind the editor's
   back and shows the failed hint forcing — and surviving — a
   reinstallation.

   Run with: dune exec examples/editor_hints.exe *)

module Sim_clock = Alto_machine.Sim_clock
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Install = Alto_fs.Install

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

let editor_files = [ "Edit.scratch1"; "Edit.scratch2"; "Edit.journal"; "Edit.messages" ]
let state_name = "Editor.state"

let () =
  let drive = Drive.create ~pack_id:4 Geometry.diablo_31 in
  let fs = Fs.format drive in
  let clock = Drive.clock drive in
  let root = ok Directory.pp_error (Directory.open_root fs) in

  (* Clutter the directory so lookups cost something honest. *)
  for i = 1 to 120 do
    let name = Printf.sprintf "Clutter%03d.tmp" i in
    let f = ok File.pp_error (File.create fs ~name) in
    ok Directory.pp_error (Directory.add root ~name (File.leader_name f))
  done;

  Format.printf "== installation ==@.";
  let t0 = Sim_clock.now_us clock in
  let state = ok Install.pp_error (Install.install fs ~directory:root ~names:editor_files) in
  ok Install.pp_error (Install.save fs ~directory:root ~state_name state);
  Format.printf "installed %d auxiliary files and wrote %s (%a)@.@."
    (List.length state) state_name Sim_clock.pp_duration
    (Sim_clock.now_us clock - t0);

  (* Cold startup: find every file through the directory. *)
  let cold_start () =
    List.map
      (fun name ->
        match ok Directory.pp_error (Directory.lookup root name) with
        | Some e -> ok File.pp_error (File.open_leader fs e.Directory.entry_file)
        | None -> failwith ("missing " ^ name))
      editor_files
  in
  let t0 = Sim_clock.now_us clock in
  let _ = cold_start () in
  let cold_us = Sim_clock.now_us clock - t0 in

  (* Hinted startup: read the state file, open everything by hints. *)
  let fast_start () =
    let state =
      match ok Install.pp_error (Install.load fs ~directory:root ~state_name) with
      | Some s -> s
      | None -> failwith "no state file"
    in
    match Install.fast_open fs state with
    | Ok files -> files
    | Error (`Reinstall_required msg) -> failwith msg
  in
  let t0 = Sim_clock.now_us clock in
  let _ = fast_start () in
  let fast_us = Sim_clock.now_us clock - t0 in

  Format.printf "== startup times (simulated) ==@.";
  Format.printf "cold (directory lookups): %a@." Sim_clock.pp_duration cold_us;
  Format.printf "hinted (state file only): %a@." Sim_clock.pp_duration fast_us;
  Format.printf "speedup: %.1fx@.@." (float_of_int cold_us /. float_of_int fast_us);

  (* Somebody deletes a scratch file. The stale hint does no damage —
     the label check refutes it — and the editor reinstalls. *)
  Format.printf "== a scratch file is deleted behind the editor's back ==@.";
  (match ok Directory.pp_error (Directory.lookup root "Edit.scratch1") with
  | Some e ->
      let f = ok File.pp_error (File.open_leader fs e.Directory.entry_file) in
      ok File.pp_error (File.delete f);
      ignore (ok Directory.pp_error (Directory.remove root "Edit.scratch1"))
  | None -> failwith "scratch file missing");
  let state =
    match ok Install.pp_error (Install.load fs ~directory:root ~state_name) with
    | Some s -> s
    | None -> failwith "no state file"
  in
  (match Install.fast_open fs state with
  | Ok _ -> failwith "stale hints should not have opened"
  | Error (`Reinstall_required msg) ->
      Format.printf "hinted startup refused cleanly: %s@." msg);
  Format.printf "repeating the installation phase…@.";
  let state = ok Install.pp_error (Install.install fs ~directory:root ~names:editor_files) in
  ok Install.pp_error (Install.save fs ~directory:root ~state_name state);
  (match Install.fast_open fs state with
  | Ok files -> Format.printf "all %d files open at full speed again.@." (List.length files)
  | Error (`Reinstall_required msg) -> failwith msg)
