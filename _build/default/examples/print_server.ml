(* The printing server of §4: a spooler task and a printer task sharing
   one machine by activity switching — each saves its world to a disk
   file and InLoads the other's. "Whenever the spooler is idle but the
   queue is not empty, it saves its state and calls the printer.
   Whenever the printer is finished or detects incoming network traffic,
   it stops the printer hardware, saves its state, and invokes the
   spooler."

   Each task keeps private state in the machine's memory (a job counter
   at a fixed address). Because a transfer swaps the whole 64K image,
   each counter exists only in its own world — the example ends by
   reading both counters back out of the two world files.

   Run with: dune exec examples/print_server.exe *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Net = Alto_net.Net
module World = Alto_world.World
module Checkpoint = Alto_world.Checkpoint

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

(* {2 The print queue: a disk file of job-file names, one per line} *)

let read_lines file =
  let bytes = ok File.pp_error (File.read_bytes file ~pos:0 ~len:(File.byte_length file)) in
  List.filter (fun l -> l <> "") (String.split_on_char '\n' (Bytes.to_string bytes))

let write_lines file lines =
  ok File.pp_error (File.truncate file ~len:0);
  let text = String.concat "\n" lines ^ if lines = [] then "" else "\n" in
  if text <> "" then ok File.pp_error (File.write_bytes file ~pos:0 text)

(* {2 Task state in machine memory} *)

let spooled_counter = 100
let printed_counter = 200

let bump memory addr =
  Memory.write memory addr (Word.succ (Memory.read memory addr))

let () =
  let geometry = { Geometry.diablo_31 with Geometry.model = "server pack"; cylinders = 100 } in
  let drive = Drive.create ~pack_id:2 geometry in
  let fs = Fs.format drive in
  let root = ok Directory.pp_error (Directory.open_root fs) in

  let catalogued name =
    let file = ok File.pp_error (File.create fs ~name) in
    ok Directory.pp_error (Directory.add root ~name (File.leader_name file));
    file
  in
  let queue = catalogued "PrintQueue." in
  let printed_log = catalogued "Printed.log" in
  let spooler_world = ok Checkpoint.pp_error (Checkpoint.state_file fs ~directory:root ~name:"Spooler.state") in
  let printer_world = ok Checkpoint.pp_error (Checkpoint.state_file fs ~directory:root ~name:"Printer.state") in

  (* The network: a workstation and this server. *)
  let net = Net.create ~clock:(Drive.clock drive) () in
  let workstation = Net.attach net ~name:"workstation" in
  let server = Net.attach net ~name:"server" in
  let submit name body =
    ok Net.pp_error (Net.send_file workstation ~to_:"server" ~name body);
    Format.printf "workstation: submitted %s (%d bytes)@." name (String.length body)
  in

  (* One machine. *)
  let memory = Memory.create () in
  let cpu = Cpu.create memory in

  (* Seed the printer's world: its counter starts at zero. *)
  ok Checkpoint.pp_error (Checkpoint.save cpu printer_world);

  (* First jobs arrive before the server wakes up. *)
  submit "Report.press" (String.make 1800 'r');
  submit "Memo.press" (String.make 700 'm');

  (* {2 The two tasks} *)
  let spool_arrivals () =
    let n = ref 0 in
    let rec drain () =
      match Net.receive_file server with
      | None -> ()
      | Some (name, body) ->
          let job = catalogued name in
          ok File.pp_error (File.write_bytes job ~pos:0 body);
          write_lines queue (read_lines queue @ [ name ]);
          bump memory spooled_counter;
          incr n;
          Format.printf "spooler: queued %s@." name;
          drain ()
    in
    drain ();
    !n
  in

  let print_one () =
    match read_lines queue with
    | [] -> false
    | name :: rest ->
        let entry =
          match ok Directory.pp_error (Directory.lookup root name) with
          | Some e -> e
          | None -> failwith ("job file missing: " ^ name)
        in
        let job = ok File.pp_error (File.open_leader fs entry.Directory.entry_file) in
        let body =
          Bytes.to_string
            (ok File.pp_error (File.read_bytes job ~pos:0 ~len:(File.byte_length job)))
        in
        ok File.pp_error
          (File.append_bytes printed_log
             (Printf.sprintf "%s: %d bytes\n" name (String.length body)));
        write_lines queue rest;
        bump memory printed_counter;
        Format.printf "printer: printed %s@." name;
        true
  in

  (* {2 Activity switching} *)
  let to_printer () =
    Format.printf "  -- spooler saves its world and calls the printer --@.";
    ok Checkpoint.pp_error
      (Checkpoint.transfer cpu ~save_to:spooler_world ~restore_from:printer_world
         ~message:[||])
  in
  let to_spooler () =
    Format.printf "  -- printer saves its world and invokes the spooler --@.";
    ok Checkpoint.pp_error
      (Checkpoint.transfer cpu ~save_to:printer_world ~restore_from:spooler_world
         ~message:[||])
  in

  let rec spooler_turn rounds =
    if rounds > 10 then failwith "did not converge";
    let _ = spool_arrivals () in
    if read_lines queue <> [] then begin
      to_printer ();
      printer_turn rounds
    end
    else Format.printf "spooler: nothing to do; all quiet@."

  and printer_turn rounds =
    (* A late job arrives mid-print: the printer must notice the traffic,
       stop, and hand the machine back — "printing to be interrupted in
       order to respond quickly to incoming files". *)
    if rounds = 0 then submit "Urgent.press" (String.make 300 'u');
    if Net.pending server > 0 then begin
      to_spooler ();
      spooler_turn (rounds + 1)
    end
    else if print_one () then printer_turn rounds
    else begin
      to_spooler ();
      spooler_turn (rounds + 1)
    end
  in
  spooler_turn 0;

  (* Each world kept its own private counter. *)
  let counter_of world addr =
    Word.to_int (ok World.pp_error (World.read_saved_memory world ~pos:addr ~len:1)).(0)
  in
  Format.printf "@.spooler's world says it spooled %d jobs@."
    (counter_of spooler_world spooled_counter);
  Format.printf "printer's world says it printed %d jobs@."
    (counter_of printer_world printed_counter);
  Format.printf "@.printed log:@.%s@."
    (Bytes.to_string
       (ok File.pp_error
          (File.read_bytes printed_log ~pos:0 ~len:(File.byte_length printed_log))))
