(* Quickstart: format a pack, make files, use streams and directories,
   and watch the label machinery refuse a bad write.

   Run with: dune exec examples/quickstart.exe *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Leader = Alto_fs.Leader
module Stream = Alto_streams.Stream
module Disk_stream = Alto_streams.Disk_stream

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

let () =
  Format.printf "== AltOS quickstart ==@.@.";

  (* A factory-fresh Diablo Model 31 pack, formatted. *)
  let drive = Drive.create ~pack_id:1 Geometry.diablo_31 in
  Format.printf "drive: %a@." Geometry.pp (Drive.geometry drive);
  let fs = Fs.format drive in
  Format.printf "formatted: %d free pages, root directory in place@.@."
    (Fs.free_count fs);

  (* Create a file and write to it through a disk stream. *)
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let memo = ok File.pp_error (File.create fs ~name:"Memo.txt") in
  ok Directory.pp_error (Directory.add root ~name:"Memo.txt" (File.leader_name memo));
  let out = Disk_stream.open_file ~mode:Disk_stream.Write_only memo in
  Stream.put_line out "Things the open system lets you do:";
  Stream.put_line out "  reject, accept, modify or extend every facility.";
  out.Stream.close ();

  (* Read it back. *)
  let input = Disk_stream.open_file ~mode:Disk_stream.Read_only memo in
  Format.printf "Memo.txt (%d bytes):@.%s@.@." (File.byte_length memo)
    (Stream.get_all input);
  input.Stream.close ();

  (* List the directory. *)
  Format.printf "root directory:@.";
  List.iter
    (fun (e : Directory.entry) ->
      let f = ok File.pp_error (File.open_leader fs e.Directory.entry_file) in
      Format.printf "  %-20s %5d bytes, leader name %S@." e.Directory.entry_name
        (File.byte_length f) (File.leader f).Leader.name)
    (ok Directory.pp_error (Directory.entries root));
  Format.printf "@.";

  (* The label check at work: try to overwrite one of Memo.txt's pages
     under the wrong name. Nothing is damaged; the writer is told. *)
  let page1 = ok File.pp_error (File.page_name memo 1) in
  let wrong =
    Page.full_name (Fs.fresh_fid fs) ~page:1 ~addr:page1.Page.addr
  in
  (match Page.write drive wrong (Array.make Sector.value_words Word.zero) with
  | Error e ->
      Format.printf "bogus write refused, as §3.3 promises: %a@." Page.pp_error e
  | Ok _ -> failwith "the label check failed to protect the page");
  let again = Disk_stream.open_file ~mode:Disk_stream.Read_only memo in
  Format.printf "and Memo.txt still reads fine: %S...@.@."
    (Stream.get_string again 19);
  again.Stream.close ();

  (* All of that cost simulated disk time: *)
  Format.printf "simulated disk time used: %a@." Sim_clock.pp_duration
    (Sim_clock.now_us (Drive.clock drive))
