(* A scripted session at the Executive: the command scanner, a loaded
   program bound to system services by the loader's fixup table, Junta,
   and type-ahead surviving program switches.

   Run with: dune exec examples/executive_session.exe *)

module Asm = Alto_machine.Asm
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module System = Alto_os.System
module Loader = Alto_os.Loader
module Executive = Alto_os.Executive

(* A small program: shouts a greeting, then exits back to the Executive. *)
let greeter =
  [
    Asm.Label "start";
    Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "msg" ]);
    Asm.Op ("JSR", [ Asm.Ext "WriteString" ]);
    Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 10 ]) (* newline *);
    Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
    Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
    Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
    Asm.Label "msg";
    Asm.String_data "GREETINGS FROM A LOADED PROGRAM";
  ]

let () =
  let system = System.boot () in
  (match
     Loader.save_program system ~name:"Greet.run"
       (Asm.assemble_exn ~origin:System.user_base greeter)
   with
  | Ok _ -> ()
  | Error e -> Format.kasprintf failwith "%a" Loader.pp_error e);

  (* The user types everything up front — including the commands to run
     after the program: type-ahead, §5.2. *)
  Keyboard.feed (System.keyboard system)
    (String.concat "\n"
       [
         "put Todo.txt buy fanfold paper";
         "type Todo.txt";
         "Greet.run";
         "ls";
         "levels";
         "junta 7";
         "counterjunta";
         "scavenge";
         "quit";
       ]
    ^ "\n");

  let outcome = Executive.run system in
  print_endline (Display.contents (System.display system));
  Printf.printf "\n(session over: %d commands%s)\n"
    outcome.Executive.commands_executed
    (if outcome.Executive.quit then ", quit" else "")
