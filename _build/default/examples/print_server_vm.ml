(* The printing server of §4 — this time as two real programs running in
   the simulated machine, switching activities by genuine world swap.
   "Because each of these tasks has considerable internal state and
   operates in a different environment, they communicate using the state
   save/restore mechanism."

   Both tasks are written in the BCPL-flavoured language. Each transfer
   follows the paper's coroutine idiom to the letter:

       (written, message) := OutLoad(myStateFN);
       if written then InLoad(partnerStateFN, messageToPartner);

   The spooler consumes jobs from Incoming. and appends them to Queue.;
   the printer consumes Queue. and "prints" to the display. Each task's
   progress lives in its own locals — on its own stack, in its own 64K
   world — and survives every swap. Status flows back through the 20-word
   message area at address 16, which the tasks read and write directly
   (!15, !16 — it's all just memory). The whole dance happens inside ONE
   interpreter run: every InLoad lands the processor in the other world
   and execution simply continues there.

   Run with: dune exec examples/print_server_vm.exe *)

module Vm = Alto_machine.Vm
module Geometry = Alto_disk.Geometry
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Checkpoint = Alto_world.Checkpoint
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module System = Alto_os.System
module Loader = Alto_os.Loader
module Bcpl = Alto_bcpl.Bcpl

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

(* The printer: parks its startup world, then serves queue entries each
   time the spooler transfers in. Its queue position [pos] is a local —
   world-private state. *)
let printer_source ~my_handle ~partner_handle =
  Printf.sprintf
    {|let main() be {
  // park a resumable world for the spooler to call, then report back
  let w = outload(%d);
  if w then { exit(7); }
  // from here on we only run when the spooler transfers in
  let pos = 0;
  while true do {
    let q = openfile("Queue.", 0);
    let qlen = filelength(q);
    let empty = 1;
    if pos < qlen then {
      setposition(q, pos);
      let c = streamget(q);
      pos := pos + 1;
      empty := 0;
      // "print" the job: its digit is its length in stars
      writestring("printer: [");
      let n = c - '0';
      while n > 0 do { writechar('*'); n := n - 1; }
      writestring("]");
      writechar(10);
      if pos >= qlen then empty := 1;
    }
    closestream(q);
    // tell the spooler whether the queue is drained, then hand back
    !15 := 1;
    !16 := empty;
    let w2 = outload(%d);
    if w2 then inload(%d);
  }
}
|}
    my_handle my_handle partner_handle

(* The spooler: moves one job per activation from Incoming. to Queue.,
   then calls the printer. When the input is exhausted and the printer
   reports the queue drained, the whole machine stops. *)
let spooler_source ~my_handle ~partner_handle =
  Printf.sprintf
    {|let main() be {
  let inc = openfile("Incoming.", 0);
  let exhausted = 0;
  let queue_empty = 0;
  while true do {
    if exhausted = 0 then {
      let c = streamget(inc);
      if c = 0xffff then {
        exhausted := 1;
        writestring("spooler: no more arrivals");
        writechar(10);
      }
      else {
        let q = openfile("Queue.", 2);
        setposition(q, filelength(q));
        streamput(q, c);
        closestream(q);
        writestring("spooler: queued job ");
        writechar(c);
        writechar(10);
      }
    }
    if exhausted & queue_empty then {
      writestring("spooler: all printed, shutting down");
      writechar(10);
      exit(0);
    }
    // the paper's coroutine linkage, verbatim
    let w = outload(%d);
    if w then inload(%d);
    // resumed by the printer: read its message
    queue_empty := !16;
  }
}
|}
    my_handle partner_handle

let () =
  let geometry = { Geometry.diablo_31 with Geometry.model = "server"; cylinders = 120 } in
  let system = System.boot ~geometry () in
  let fs = System.fs system in
  let root = ok Directory.pp_error (Directory.open_root fs) in

  (* Jobs arrive before the server starts (the host plays workstation):
     five jobs of sizes 3, 5, 2, 7, 4. *)
  let incoming = ok File.pp_error (File.create fs ~name:"Incoming.") in
  ok Directory.pp_error (Directory.add root ~name:"Incoming." (File.leader_name incoming));
  ok File.pp_error (File.write_bytes incoming ~pos:0 "35274");
  let queue = ok File.pp_error (File.create fs ~name:"Queue.") in
  ok Directory.pp_error (Directory.add root ~name:"Queue." (File.leader_name queue));

  (* World files for the two tasks, with word-sized handles the programs
     embed as constants. *)
  let spooler_world =
    ok Checkpoint.pp_error (Checkpoint.state_file fs ~directory:root ~name:"Spooler.state")
  in
  let printer_world =
    ok Checkpoint.pp_error (Checkpoint.state_file fs ~directory:root ~name:"Printer.state")
  in
  let h_spooler = System.register_file system spooler_world in
  let h_printer = System.register_file system printer_world in

  (* Compile both environments. *)
  let compile name source =
    let program = ok Bcpl.pp_error (Bcpl.compile ~origin:System.user_base source) in
    ok Loader.pp_error (Loader.save_program system ~name program)
  in
  let printer_file =
    compile "Printer.run" (printer_source ~my_handle:h_printer ~partner_handle:h_spooler)
  in
  let spooler_file =
    compile "Spooler.run" (spooler_source ~my_handle:h_spooler ~partner_handle:h_printer)
  in

  (* Start the printer once so a resumable printer world exists. *)
  (match ok Loader.pp_error (Loader.run system printer_file) with
  | Vm.Stopped 7 -> print_endline "printer world parked on Printer.state"
  | stop -> Format.kasprintf failwith "printer park: %a" Vm.pp_stop stop);

  (* Now the spooler takes the machine; everything after this line —
     including every activity switch — happens inside one Vm.run. *)
  print_endline "-- the machine is the spooler's; watch it share --";
  (match ok Loader.pp_error (Loader.run ~fuel:50_000_000 system spooler_file) with
  | Vm.Stopped 0 -> ()
  | stop ->
      Format.kasprintf failwith "server run: %a (last error %s)" Vm.pp_stop stop
        (Option.value (System.last_error system) ~default:"none"));

  print_endline (Display.contents (System.display system));
  let world_swaps =
    (* Each activation is one OutLoad + one InLoad, about a second each
       of simulated time; the clock tells the story. *)
    Alto_machine.Sim_clock.now_seconds (Alto_disk.Drive.clock (System.drive system))
  in
  Printf.printf "(total simulated time, dominated by the world swaps: %.1f s)\n" world_swaps;

  (* Verify: exactly the five jobs, in order, with the right sizes. *)
  let text = Display.contents (System.display system) in
  let expected = [ "[***]"; "[*****]"; "[**]"; "[*******]"; "[****]" ] in
  let rec in_order pos = function
    | [] -> true
    | needle :: rest -> (
        let n = String.length needle in
        let rec find i =
          if i + n > String.length text then None
          else if String.equal (String.sub text i n) needle then Some (i + n)
          else find (i + 1)
        in
        match find pos with Some p -> in_order p rest | None -> false)
  in
  if not (in_order 0 expected) then failwith "jobs did not print in order";
  print_endline "verified: all five jobs printed, in arrival order."
