(* The scavenger earning its keep (§3.5): a pack accumulates real files,
   then suffers a miserable afternoon — decayed labels, a scrambled
   directory, a destroyed disk descriptor. The volume no longer mounts.
   One scavenge later everything reachable is back, orphans have been
   re-catalogued under their leader names, and the data that survived is
   verified byte for byte.

   Run with: dune exec examples/crash_recovery.exe *)

module Sim_clock = Alto_machine.Sim_clock
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

let body name size = String.init size (fun i -> Char.chr (32 + ((i * 7) + String.length name) mod 95))

let () =
  let drive = Drive.create ~pack_id:5 Geometry.diablo_31 in
  let fs = Fs.format drive in
  let root = ok Directory.pp_error (Directory.open_root fs) in

  (* A working disk: 24 files of assorted sizes, some in a subdirectory. *)
  let sub = ok Directory.pp_error (Directory.create fs ~name:"Projects.") in
  ok Directory.pp_error (Directory.add root ~name:"Projects." (File.leader_name sub));
  let manifest = ref [] in
  for i = 1 to 24 do
    let name = Printf.sprintf "Doc%02d.txt" i in
    let contents = body name (200 * i) in
    let file = ok File.pp_error (File.create fs ~name) in
    ok File.pp_error (File.write_bytes file ~pos:0 contents);
    ok File.pp_error (File.flush_leader file);
    let dir = if i mod 3 = 0 then sub else root in
    ok Directory.pp_error (Directory.add dir ~name (File.leader_name file));
    manifest := (name, contents) :: !manifest
  done;
  Format.printf "built %d files (%d pages in use)@.@." 24
    (Drive.sector_count drive - Fs.free_count fs);

  (* The miserable afternoon. *)
  let rng = Random.State.make [| 20260706 |] in
  let victims = Fault.decay rng drive ~fraction:0.01 in
  Format.printf "media decay corrupted %d sector labels@." (List.length victims);
  let sub_page = ok File.pp_error (File.page_name sub 1) in
  Fault.corrupt_part rng drive sub_page.Page.addr Sector.Value;
  Format.printf "the Projects. directory's entries are scrambled@.";
  for i = 1 to 1 + Fs.descriptor_page_count fs do
    Fault.corrupt_part rng drive (Alto_disk.Disk_address.of_index i) Sector.Label
  done;
  Format.printf "the disk descriptor is gone@.@.";

  (match Fs.mount drive with
  | Ok _ -> failwith "that pack should not mount"
  | Error msg -> Format.printf "mount fails, as expected: %s@.@." msg);

  (* The cure. *)
  Format.printf "== scavenging ==@.";
  let fs, report =
    match Scavenger.scavenge drive with
    | Ok x -> x
    | Error msg -> failwith ("scavenge failed: " ^ msg)
  in
  Format.printf "%a@.@." Scavenger.pp_report report;

  (* Verify every surviving file byte for byte against the manifest.
     Files whose pages were hit by the decay may be truncated or lost;
     everything else must be intact. *)
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let find name =
    (* After scavenging, an orphan may live in the root even if it used
       to live in Projects. — search both. *)
    let in_dir dir =
      match Directory.lookup dir name with Ok (Some e) -> Some e | _ -> None
    in
    match in_dir root with
    | Some e -> Some e
    | None -> (
        match Directory.lookup root "Projects." with
        | Ok (Some p) -> (
            match File.open_leader fs p.Directory.entry_file with
            | Ok sub -> in_dir sub
            | Error _ -> None)
        | _ -> None)
  in
  let intact = ref 0 and truncated = ref 0 and missing = ref 0 in
  List.iter
    (fun (name, contents) ->
      match find name with
      | None -> incr missing
      | Some e -> (
          match File.open_leader fs e.Directory.entry_file with
          | Error _ -> incr missing
          | Ok f -> (
              let len = File.byte_length f in
              match File.read_bytes f ~pos:0 ~len with
              | Error _ -> incr missing
              | Ok bytes ->
                  let got = Bytes.to_string bytes in
                  if String.equal got contents then incr intact
                  else if
                    len < String.length contents
                    && String.equal got (String.sub contents 0 len)
                  then incr truncated
                  else failwith (name ^ " survived but with WRONG bytes"))))
    !manifest;
  Format.printf "verification: %d intact, %d truncated at the damage, %d lost@."
    !intact !truncated !missing;
  Format.printf "no file came back with wrong contents — damaged pages are lost,@.";
  Format.printf "never silently corrupted, which is the §3 design holding up.@.@.";
  (match Fs.mount drive with
  | Ok _ -> Format.printf "and the pack mounts normally again.@."
  | Error msg -> failwith ("remount failed: " ^ msg));
  Format.printf "total simulated time including the scavenge: %a@."
    Sim_clock.pp_duration
    (Sim_clock.now_us (Drive.clock drive))
