bench/experiments.ml: Alto_disk Alto_fs Alto_machine Alto_os Alto_streams Alto_world Array Bytes Format List Printf Random String Workloads
