bench/main.mli:
