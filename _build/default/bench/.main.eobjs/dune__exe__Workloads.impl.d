bench/workloads.ml: Alto_disk Alto_fs Alto_machine Char Format List Printf String
