bench/main.ml: Alto_bcpl Alto_disk Alto_fs Alto_machine Alto_os Alto_zones Analyze Array Bechamel Benchmark Experiments Hashtbl List Measure Printf Staged String Sys Test Time Toolkit Workloads
