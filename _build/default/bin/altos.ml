(* The AltOS command-line driver.

     altos shell            an interactive session at the Executive:
                            stdin is the keyboard, stdout the display
     altos shell -c "..."   run semicolon-separated commands and exit
     altos levels           print the resident-system level table

   Each run boots a fresh, formatted pack (the simulation lives in
   memory; nothing persists between runs — bring type-ahead). *)

module Geometry = Alto_disk.Geometry
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module System = Alto_os.System
module Level = Alto_os.Level
module Executive = Alto_os.Executive

let boot_banner system =
  Printf.printf "AltOS — %s, %d free pages. Type 'quit' to leave.\n%!"
    (Format.asprintf "%a" Geometry.pp (Alto_disk.Drive.geometry (System.drive system)))
    (Alto_fs.Fs.free_count (System.fs system))

(* Run the executive over one batch of type-ahead and print what the
   display accumulated since last time. *)
let drain_display display shown =
  let text = Display.contents display in
  let fresh = String.sub text !shown (String.length text - !shown) in
  shown := String.length text;
  print_string fresh;
  if String.length fresh > 0 then print_newline ();
  flush stdout

let shell commands =
  let system = System.boot () in
  let display = System.display system in
  let shown = ref 0 in
  (match commands with
  | Some script ->
      String.split_on_char ';' script
      |> List.iter (fun command ->
             Keyboard.feed (System.keyboard system) (String.trim command ^ "\n"));
      ignore (Executive.run system);
      drain_display display shown
  | None ->
      boot_banner system;
      let rec interact () =
        print_string "> ";
        flush stdout;
        match In_channel.input_line stdin with
        | None -> ()
        | Some line ->
            Keyboard.feed (System.keyboard system) (line ^ "\n");
            let outcome = Executive.run system in
            drain_display display shown;
            if not outcome.Executive.quit then interact ()
      in
      interact ());
  0

let levels () =
  Printf.printf "%-3s %-36s %8s %8s\n" "lvl" "contents" "words" "base";
  List.iter
    (fun (l : Level.t) ->
      Printf.printf "%-3d %-36s %8d %8d\n" l.Level.index l.Level.level_name
        l.Level.size_words (Level.base l.Level.index))
    Level.all;
  Printf.printf "resident total: %d words; user space %d..%d\n"
    (Level.resident_words ~keep:13) System.user_base
    (Level.boundary ~keep:13 - 1);
  0

open Cmdliner

let shell_cmd =
  let commands =
    Arg.(
      value
      & opt (some string) None
      & info [ "c"; "commands" ] ~docv:"SCRIPT"
          ~doc:"Semicolon-separated commands to run non-interactively.")
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"A session at the Executive on a fresh pack.")
    Term.(const shell $ commands)

let levels_cmd =
  Cmd.v
    (Cmd.info "levels" ~doc:"Print the resident system's level table (§5.2).")
    Term.(const levels $ const ())

let main =
  Cmd.group
    ~default:Term.(const shell $ const None)
    (Cmd.info "altos" ~version:"1.0"
       ~doc:"The Alto operating system, simulated (Lampson & Sproull, SOSP 1979).")
    [ shell_cmd; levels_cmd ]

let () = exit (Cmd.eval' main)
