(* World swapping: OutLoad/InLoad, checkpoints, coroutine transfer,
   booting, and the debugger's view of a saved world. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Sim_clock = Alto_machine.Sim_clock
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module World = Alto_world.World
module Boot = Alto_world.Boot
module Checkpoint = Alto_world.Checkpoint

(* Big enough for a couple of 258-page state files. *)
let world_geometry = { Geometry.diablo_31 with Geometry.model = "test"; cylinders = 80 }

let fresh () =
  let drive = Drive.create ~pack_id:9 world_geometry in
  let fs = Fs.format drive in
  let root =
    match Directory.open_root fs with
    | Ok r -> r
    | Error e -> Alcotest.failf "root: %a" Directory.pp_error e
  in
  (drive, fs, root)

let state_file fs root name =
  match Checkpoint.state_file fs ~directory:root ~name with
  | Ok f -> f
  | Error e -> Alcotest.failf "state_file: %a" Checkpoint.pp_error e

let world_ok what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %a" what World.pp_error e

let test_out_in_roundtrip () =
  let _drive, fs, root = fresh () in
  let file = state_file fs root "World.state" in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  (* A distinctive world. *)
  for i = 0 to 999 do
    Memory.write memory (i * 64) (Word.of_int (i land 0xffff))
  done;
  Cpu.set_pc cpu (Word.of_int 4242);
  Cpu.set_ac cpu 2 (Word.of_int 777);
  world_ok "out_load" (World.out_load cpu file);
  (* Wreck the live world completely. *)
  Memory.fill memory ~pos:0 ~len:Memory.size (Word.of_int 0xDEAD);
  Cpu.set_pc cpu Word.zero;
  let message = [| Word.of_int 5; Word.of_int 6 |] in
  world_ok "in_load" (World.in_load cpu file ~message);
  Alcotest.(check int) "pc restored" 4242 (Word.to_int (Cpu.pc cpu));
  Alcotest.(check int) "ac2 restored" 777 (Word.to_int (Cpu.ac cpu 2));
  Alcotest.(check int) "memory restored" 999 (Word.to_int (Memory.read memory (999 * 64)));
  (* The message is in the revived image, with AC1 pointing at it. *)
  Alcotest.(check int) "ac1 points at message" World.message_area
    (Word.to_int (Cpu.ac cpu 1));
  Alcotest.(check int) "message length" 2
    (Word.to_int (Memory.read memory (World.message_area - 1)));
  Alcotest.(check int) "message word" 6
    (Word.to_int (Memory.read memory (World.message_area + 1)))

let test_swap_takes_about_a_second () =
  (* §4.1: each routine "requires about a second". Steady state on a
     pre-sized file, simulated time. *)
  let drive, fs, root = fresh () in
  let file = state_file fs root "Timed.state" in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  world_ok "warm-up" (World.out_load cpu file);
  let clock = Drive.clock drive in
  let t0 = Sim_clock.now_us clock in
  world_ok "out_load" (World.out_load cpu file);
  let out_us = Sim_clock.now_us clock - t0 in
  let t1 = Sim_clock.now_us clock in
  world_ok "in_load" (World.in_load cpu file ~message:[||]);
  let in_us = Sim_clock.now_us clock - t1 in
  Alcotest.(check bool)
    (Printf.sprintf "OutLoad ~1s (got %d ms)" (out_us / 1000))
    true
    (out_us > 500_000 && out_us < 2_500_000);
  Alcotest.(check bool)
    (Printf.sprintf "InLoad ~1s (got %d ms)" (in_us / 1000))
    true
    (in_us > 500_000 && in_us < 2_500_000)

let test_message_too_long () =
  let _drive, fs, root = fresh () in
  let file = state_file fs root "W.state" in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  world_ok "save" (World.out_load cpu file);
  match World.in_load cpu file ~message:(Array.make 21 Word.zero) with
  | Error World.Message_too_long -> ()
  | Ok () | Error _ -> Alcotest.fail "21-word message accepted"

let test_in_load_rejects_non_state () =
  let _drive, fs, root = fresh () in
  let file = state_file fs root "Junk.state" in
  (match File.write_bytes file ~pos:0 (String.make 100 'j') with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" File.pp_error e);
  let cpu = Cpu.create (Memory.create ()) in
  match World.in_load cpu file ~message:[||] with
  | Error (World.Bad_state _) -> ()
  | Ok () | Error _ -> Alcotest.fail "garbage accepted as a world"

let test_debugger_view () =
  (* §4: the debugger examines and alters the faulty program's state by
     reading and writing the saved file. *)
  let _drive, fs, root = fresh () in
  let file = state_file fs root "Broke.state" in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  Memory.write memory 5000 (Word.of_int 111);
  Cpu.set_pc cpu (Word.of_int 1234);
  world_ok "save at breakpoint" (World.out_load cpu file);
  (* Examine. *)
  let regs = world_ok "peek" (World.peek_registers file) in
  Alcotest.(check int) "saved pc" 1234 (Word.to_int regs.(0));
  let words = world_ok "read" (World.read_saved_memory file ~pos:5000 ~len:1) in
  Alcotest.(check int) "saved memory" 111 (Word.to_int words.(0));
  (* Patch, then resume and observe the patch. *)
  world_ok "patch" (World.write_saved_memory file ~pos:5000 [| Word.of_int 222 |]);
  world_ok "resume" (World.in_load cpu file ~message:[||]);
  Alcotest.(check int) "patched world" 222 (Word.to_int (Memory.read memory 5000))

let test_emergency_out_load () =
  let _drive, fs, root = fresh () in
  let file = state_file fs root "Emergency.state" in
  let memory = Memory.create () in
  Memory.write memory 123 (Word.of_int 45);
  (match World.emergency_out_load memory file with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emergency: %a" World.pp_error e);
  let regs = world_ok "peek" (World.peek_registers file) in
  (* "this method could not preserve some of the most vital state". *)
  Alcotest.(check bool) "registers lost" true (Array.for_all (Word.equal Word.zero) regs);
  let words = world_ok "read" (World.read_saved_memory file ~pos:123 ~len:1) in
  Alcotest.(check int) "memory preserved" 45 (Word.to_int words.(0))

let test_coroutine_transfer () =
  let _drive, fs, root = fresh () in
  let file_a = state_file fs root "TaskA.state" in
  let file_b = state_file fs root "TaskB.state" in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  (* World A. *)
  Memory.write memory 100 (Word.of_int 0xAAAA);
  Cpu.set_pc cpu (Word.of_int 111);
  (match Checkpoint.save cpu file_a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save A: %a" Checkpoint.pp_error e);
  (* Become world B, then transfer back to A. *)
  Memory.write memory 100 (Word.of_int 0xBBBB);
  Cpu.set_pc cpu (Word.of_int 222);
  (match
     Checkpoint.transfer cpu ~save_to:file_b ~restore_from:file_a
       ~message:[| Word.of_int 9 |]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "transfer: %a" Checkpoint.pp_error e);
  Alcotest.(check int) "now in world A" 0xAAAA (Word.to_int (Memory.read memory 100));
  Alcotest.(check int) "A's pc" 111 (Word.to_int (Cpu.pc cpu));
  (* And back to B, whose state was saved by the transfer. *)
  (match
     Checkpoint.transfer cpu ~save_to:file_a ~restore_from:file_b ~message:[||]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "transfer back: %a" Checkpoint.pp_error e);
  Alcotest.(check int) "now in world B" 0xBBBB (Word.to_int (Memory.read memory 100));
  Alcotest.(check int) "B's pc" 222 (Word.to_int (Cpu.pc cpu))

let test_boot () =
  let _drive, fs, root = fresh () in
  let file = state_file fs root "Boot.state" in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  Memory.write memory 2048 (Word.of_int 0xB001);
  Cpu.set_pc cpu (Word.of_int 3333);
  world_ok "write boot world" (World.out_load cpu file);
  (match Boot.install fs file with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install: %a" Boot.pp_error e);
  (* Press the button on a cold machine. *)
  let cold_memory = Memory.create () in
  let cold_cpu = Cpu.create cold_memory in
  (match Boot.boot fs cold_cpu with
  | Ok () -> ()
  | Error e -> Alcotest.failf "boot: %a" Boot.pp_error e);
  Alcotest.(check int) "booted world" 0xB001 (Word.to_int (Memory.read cold_memory 2048));
  Alcotest.(check int) "booted pc" 3333 (Word.to_int (Cpu.pc cold_cpu))

let test_boot_without_record () =
  let _drive, fs, _root = fresh () in
  let cpu = Cpu.create (Memory.create ()) in
  match Boot.boot fs cpu with
  | Error Boot.No_boot_record -> ()
  | Ok () | Error _ -> Alcotest.fail "boot without a record must fail cleanly"

let test_truncated_image_rejected () =
  (* A world file that lost its tail (crash mid-save, then scavenged)
     must be refused coherently, not half-restored. *)
  let _drive, fs, root = fresh () in
  let file = state_file fs root "Cut.state" in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  world_ok "save" (World.out_load cpu file);
  (match File.truncate file ~len:(World.state_file_words / 3 * 2) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "truncate: %a" File.pp_error e);
  Memory.write memory 7 (Word.of_int 7);
  (match World.in_load cpu file ~message:[||] with
  | Error (World.Bad_state _) -> ()
  | Ok () -> Alcotest.fail "restored from a truncated image"
  | Error e -> Alcotest.failf "wrong error: %a" World.pp_error e);
  (* The live world was not clobbered by the refused restore. *)
  Alcotest.(check int) "live memory intact" 7 (Word.to_int (Memory.read memory 7))

let test_oversized_state_file_trimmed () =
  (* OutLoad onto a file that used to be bigger trims it to one image. *)
  let _drive, fs, root = fresh () in
  let file = state_file fs root "Big.state" in
  let extra = String.make 5000 'z' in
  (match File.write_bytes file ~pos:(2 * World.state_file_words) extra with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pad: %a" File.pp_error e);
  let cpu = Cpu.create (Memory.create ()) in
  world_ok "save" (World.out_load cpu file);
  Alcotest.(check int) "exactly one image" (2 * World.state_file_words)
    (File.byte_length file)

let test_peek_registers_on_garbage () =
  let _drive, fs, root = fresh () in
  let file = state_file fs root "G.state" in
  (match File.write_bytes file ~pos:0 (String.make 64 '!') with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" File.pp_error e);
  match World.peek_registers file with
  | Error (World.Bad_state _) -> ()
  | Ok _ -> Alcotest.fail "peeked registers out of garbage"
  | Error e -> Alcotest.failf "wrong error: %a" World.pp_error e

let test_hints_survive_swap () =
  (* §4: "hints that are saved and restored are usually still valid". A
     zone heap (hints and all) placed in memory survives the round trip
     byte for byte. *)
  let _drive, fs, root = fresh () in
  let file = state_file fs root "Zoned.state" in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  let zone = Alto_zones.Zone.format memory ~pos:3000 ~len:400 in
  let block = Alto_zones.Zone.allocate zone 10 in
  Memory.write memory block (Word.of_int 31337);
  world_ok "save" (World.out_load cpu file);
  Memory.fill memory ~pos:0 ~len:Memory.size Word.zero;
  world_ok "restore" (World.in_load cpu file ~message:[||]);
  let zone' = Alto_zones.Zone.attach memory ~pos:3000 in
  Alcotest.(check int) "heap word survives" 31337 (Word.to_int (Memory.read memory block));
  Alcotest.(check int) "zone structure survives" 1
    (Alto_zones.Zone.stats zone').Alto_zones.Zone.live_blocks

let () =
  Alcotest.run "alto_world"
    [
      ( "world",
        [
          ("out/in roundtrip", `Quick, test_out_in_roundtrip);
          ("swap takes about a second", `Quick, test_swap_takes_about_a_second);
          ("message too long", `Quick, test_message_too_long);
          ("rejects non-state", `Quick, test_in_load_rejects_non_state);
          ("debugger view", `Quick, test_debugger_view);
          ("emergency outload", `Quick, test_emergency_out_load);
          ("hints survive a swap", `Quick, test_hints_survive_swap);
          ("truncated image rejected", `Quick, test_truncated_image_rejected);
          ("oversized state trimmed", `Quick, test_oversized_state_file_trimmed);
          ("garbage registers refused", `Quick, test_peek_registers_on_garbage);
        ] );
      ( "control",
        [
          ("coroutine transfer", `Quick, test_coroutine_transfer);
          ("boot", `Quick, test_boot);
          ("boot without record", `Quick, test_boot_without_record);
        ] );
    ]
