(* Machine substrate: words, memory, CPU, VM, assembler. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Instr = Alto_machine.Instr
module Asm = Alto_machine.Asm
module Sim_clock = Alto_machine.Sim_clock

(* {2 words} *)

let test_word_wrap () =
  Alcotest.(check int) "add wraps" 0 (Word.to_int (Word.add (Word.of_int 0xffff) Word.one));
  Alcotest.(check int) "sub wraps" 0xffff (Word.to_int (Word.sub Word.zero Word.one));
  Alcotest.(check int) "of_int truncates" 0x2345 (Word.to_int (Word.of_int 0x12345))

let test_word_signed () =
  Alcotest.(check int) "negative" (-1) (Word.to_signed (Word.of_int 0xffff));
  Alcotest.(check int) "min" (-32768) (Word.to_signed (Word.of_int 0x8000));
  Alcotest.(check int) "positive" 32767 (Word.to_signed (Word.of_int 0x7fff))

let test_word_bytes () =
  let w = Word.of_bytes ~high:0xAB ~low:0xCD in
  Alcotest.(check int) "high" 0xAB (Word.high_byte w);
  Alcotest.(check int) "low" 0xCD (Word.low_byte w);
  Alcotest.check_raises "range" (Invalid_argument "Word.of_bytes: byte out of range")
    (fun () -> ignore (Word.of_bytes ~high:256 ~low:0))

let test_string_roundtrip () =
  let check s =
    let ws = Word.words_of_string s in
    Alcotest.(check string) ("roundtrip " ^ s) s
      (Word.string_of_words ws ~len:(String.length s))
  in
  check "";
  check "a";
  check "ab";
  check "hello, alto!"

let prop_string_roundtrip =
  QCheck.Test.make ~name:"words_of_string roundtrips" ~count:200
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun s ->
      String.equal s
        (Word.string_of_words (Word.words_of_string s) ~len:(String.length s)))

let prop_word_add_commutes =
  QCheck.Test.make ~name:"word add commutes" ~count:500
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (a, b) ->
      Word.equal (Word.add (Word.of_int a) (Word.of_int b))
        (Word.add (Word.of_int b) (Word.of_int a)))

(* {2 memory} *)

let test_memory_bounds () =
  let m = Memory.create () in
  Memory.write m 0 (Word.of_int 42);
  Memory.write m (Memory.size - 1) (Word.of_int 43);
  Alcotest.(check int) "first" 42 (Word.to_int (Memory.read m 0));
  Alcotest.(check int) "last" 43 (Word.to_int (Memory.read m (Memory.size - 1)));
  Alcotest.check_raises "past end" (Memory.Invalid_address Memory.size) (fun () ->
      ignore (Memory.read m Memory.size));
  Alcotest.check_raises "negative" (Memory.Invalid_address (-1)) (fun () ->
      ignore (Memory.read m (-1)))

let test_memory_blocks () =
  let m = Memory.create () in
  let block = Array.init 10 (fun i -> Word.of_int (i * i)) in
  Memory.write_block m ~pos:100 block;
  Alcotest.(check bool) "read back" true (Memory.read_block m ~pos:100 ~len:10 = block);
  Memory.fill m ~pos:100 ~len:5 (Word.of_int 7);
  Alcotest.(check int) "filled" 7 (Word.to_int (Memory.read m 102));
  Alcotest.(check int) "not filled" 25 (Word.to_int (Memory.read m 105))

let test_memory_snapshot () =
  let m = Memory.create () in
  Memory.write m 500 (Word.of_int 1);
  let snap = Memory.copy m in
  Memory.write m 500 (Word.of_int 2);
  Memory.write m 501 (Word.of_int 3);
  Alcotest.(check int) "diff count" 2 (Memory.words_differing m snap);
  Memory.restore m ~from:snap;
  Alcotest.(check bool) "restored" true (Memory.equal m snap)

let test_memory_strings () =
  let m = Memory.create () in
  Memory.write_string m ~pos:10 "alto os";
  Alcotest.(check string) "read_string" "alto os" (Memory.read_string m ~pos:10 ~len:7)

(* {2 sim clock} *)

let test_clock () =
  let c = Sim_clock.create () in
  Sim_clock.advance_us c 1500;
  Sim_clock.advance_us c 500;
  Alcotest.(check int) "now" 2000 (Sim_clock.now_us c);
  Alcotest.(check (float 1e-9)) "seconds" 0.002 (Sim_clock.now_seconds c);
  Alcotest.check_raises "negative" (Invalid_argument "Sim_clock.advance_us: negative duration")
    (fun () -> Sim_clock.advance_us c (-1));
  Sim_clock.reset c;
  Alcotest.(check int) "reset" 0 (Sim_clock.now_us c)

(* {2 instruction encode/decode} *)

let all_instrs =
  [
    Instr.Halt;
    Instr.Ldi (0, 1234);
    Instr.Lda (1, 4096);
    Instr.Sta (2, 65535);
    Instr.Ldx (3, 0);
    Instr.Stx (1, 2);
    Instr.Mov (0, 3);
    Instr.Add (1, 1);
    Instr.Sub (2, 0);
    Instr.And_ (3, 1);
    Instr.Or_ (0, 2);
    Instr.Xor_ (1, 3);
    Instr.Shl (2, 15);
    Instr.Shr (3, 1);
    Instr.Addi (0, 0xffff);
    Instr.Jmp 77;
    Instr.Jz (1, 0);
    Instr.Jnz (2, 500);
    Instr.Jlt (3, 600);
    Instr.Jsr 700;
    Instr.Jsri 2;
    Instr.Ret;
    Instr.Push 0;
    Instr.Pop 3;
    Instr.Sys 255;
  ]

let test_instr_roundtrip () =
  List.iter
    (fun instr ->
      let words = Array.of_list (Instr.encode instr) in
      match Instr.decode ~fetch:(fun i -> words.(i)) ~pc:0 with
      | Ok (decoded, next) ->
          Alcotest.(check bool)
            (Format.asprintf "roundtrip %a" Instr.pp instr)
            true (decoded = instr);
          Alcotest.(check int) "size" (Instr.size instr) next
      | Error msg -> Alcotest.fail msg)
    all_instrs

let test_instr_rejects_bad () =
  Alcotest.check_raises "bad register" (Invalid_argument "Instr: register must be 0-3")
    (fun () -> ignore (Instr.encode (Instr.Push 4)));
  (match Instr.decode ~fetch:(fun _ -> Word.of_int 0xFF00) ~pc:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoded an invalid opcode")

(* {2 VM} *)

let no_sys _ _ = Vm.Sys_continue

let run_program ?(fuel = 10_000) ?(handler = no_sys) items =
  let program = Asm.assemble_exn ~origin:100 items in
  let memory = Memory.create () in
  Memory.write_block memory ~pos:100 program.Asm.code;
  let cpu = Cpu.create memory in
  Cpu.set_pc cpu (Word.of_int program.Asm.entry);
  Cpu.set_frame_pointer cpu (Word.of_int 0xF000);
  let stop = Vm.run ~fuel cpu ~handler in
  (cpu, stop)

let test_vm_arithmetic () =
  let cpu, stop =
    run_program
      [
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 40 ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 2 ]);
        Asm.Op ("ADD", [ Asm.Reg 0; Asm.Reg 1 ]);
        Asm.Op ("HALT", []);
      ]
  in
  Alcotest.(check bool) "halted" true (stop = Vm.Halted);
  Alcotest.(check int) "sum" 42 (Word.to_int (Cpu.ac cpu 0))

let test_vm_loop () =
  (* Sum 1..10 with a countdown loop. *)
  let cpu, stop =
    run_program
      [
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 10 ]);
        Asm.Label "loop";
        Asm.Op ("JZ", [ Asm.Reg 1; Asm.Lab "done" ]);
        Asm.Op ("ADD", [ Asm.Reg 0; Asm.Reg 1 ]);
        Asm.Op ("ADDI", [ Asm.Reg 1; Asm.Imm 0xffff ]);
        Asm.Op ("JMP", [ Asm.Lab "loop" ]);
        Asm.Label "done";
        Asm.Op ("HALT", []);
      ]
  in
  Alcotest.(check bool) "halted" true (stop = Vm.Halted);
  Alcotest.(check int) "sum 1..10" 55 (Word.to_int (Cpu.ac cpu 0))

let test_vm_subroutine () =
  (* Call a doubling subroutine through JSR/RET. *)
  let cpu, stop =
    run_program
      [
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 21 ]);
        Asm.Op ("JSR", [ Asm.Lab "double" ]);
        Asm.Op ("HALT", []);
        Asm.Label "double";
        Asm.Op ("ADD", [ Asm.Reg 0; Asm.Reg 0 ]);
        Asm.Op ("RET", []);
      ]
  in
  Alcotest.(check bool) "halted" true (stop = Vm.Halted);
  Alcotest.(check int) "doubled" 42 (Word.to_int (Cpu.ac cpu 0))

let test_vm_memory_and_stack () =
  let cpu, stop =
    run_program
      [
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 7 ]);
        Asm.Op ("STA", [ Asm.Reg 0; Asm.Imm 2000 ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 2000 ]);
        Asm.Op ("LDX", [ Asm.Reg 2; Asm.Reg 1 ]);
        Asm.Op ("PUSH", [ Asm.Reg 2 ]);
        Asm.Op ("LDI", [ Asm.Reg 2; Asm.Imm 0 ]);
        Asm.Op ("POP", [ Asm.Reg 3 ]);
        Asm.Op ("HALT", []);
      ]
  in
  Alcotest.(check bool) "halted" true (stop = Vm.Halted);
  Alcotest.(check int) "through memory and stack" 7 (Word.to_int (Cpu.ac cpu 3))

let test_vm_sys_trap () =
  let seen = ref [] in
  let handler cpu code =
    seen := code :: !seen;
    if code = 9 then Vm.Sys_stop 99
    else begin
      Cpu.set_ac cpu 0 (Word.of_int (code * 2));
      Vm.Sys_continue
    end
  in
  let cpu, stop =
    run_program ~handler
      [ Asm.Op ("SYS", [ Asm.Imm 5 ]); Asm.Op ("SYS", [ Asm.Imm 9 ]); Asm.Op ("HALT", []) ]
  in
  Alcotest.(check bool) "stopped by handler" true (stop = Vm.Stopped 99);
  Alcotest.(check (list int)) "traps seen" [ 9; 5 ] !seen;
  Alcotest.(check int) "handler wrote register" 10 (Word.to_int (Cpu.ac cpu 0))

let test_vm_fault_and_fuel () =
  let _, stop = run_program [ Asm.Word_data 0xFF00 ] in
  (match stop with Vm.Fault _ -> () | _ -> Alcotest.fail "expected a fault");
  let _, stop =
    run_program ~fuel:10 [ Asm.Label "spin"; Asm.Op ("JMP", [ Asm.Lab "spin" ]) ]
  in
  Alcotest.(check bool) "out of fuel" true (stop = Vm.Out_of_fuel)

(* {2 assembler} *)

let test_asm_labels_and_data () =
  let program =
    Asm.assemble_exn ~origin:10
      [
        Asm.Op ("JMP", [ Asm.Lab "start" ]);
        Asm.Label "datum";
        Asm.Word_data 1234;
        Asm.Label "start";
        Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "datum" ]);
        Asm.Op ("HALT", []);
      ]
  in
  Alcotest.(check int) "entry at start label" 13 program.Asm.entry;
  Alcotest.(check int) "datum address" 12 (List.assoc "datum" program.Asm.symbols)

let test_asm_extern_fixups () =
  let program =
    Asm.assemble_exn
      [ Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]); Asm.Op ("HALT", []) ]
  in
  Alcotest.(check (list (pair int string))) "fixup recorded"
    [ (1, "WriteChar") ]
    program.Asm.fixups;
  Alcotest.(check int) "hole is zero" 0 (Word.to_int program.Asm.code.(1))

let test_asm_errors () =
  let expect_error items =
    match Asm.assemble items with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "assembled a bad program"
  in
  expect_error [ Asm.Op ("FROB", []) ];
  expect_error [ Asm.Op ("JMP", [ Asm.Lab "nowhere" ]) ];
  expect_error [ Asm.Label "x"; Asm.Label "x" ];
  expect_error [ Asm.Op ("MOV", [ Asm.Reg 0 ]) ];
  expect_error [ Asm.Op ("MOV", [ Asm.Reg 0; Asm.Imm 3 ]) ]

let test_asm_string_data () =
  let program = Asm.assemble_exn [ Asm.String_data "hi!" ] in
  Alcotest.(check int) "length word" 3 (Word.to_int program.Asm.code.(0));
  Alcotest.(check int) "packed" (Word.to_int (Word.of_char_pair 'h' 'i'))
    (Word.to_int program.Asm.code.(1))

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "alto_machine"
    [
      ( "word",
        [
          ("wraparound", `Quick, test_word_wrap);
          ("signed view", `Quick, test_word_signed);
          ("byte packing", `Quick, test_word_bytes);
          ("string packing", `Quick, test_string_roundtrip);
        ]
        @ qcheck [ prop_string_roundtrip; prop_word_add_commutes ] );
      ( "memory",
        [
          ("bounds", `Quick, test_memory_bounds);
          ("blocks", `Quick, test_memory_blocks);
          ("snapshot/restore", `Quick, test_memory_snapshot);
          ("strings", `Quick, test_memory_strings);
        ] );
      ("clock", [ ("advance/reset", `Quick, test_clock) ]);
      ( "instr",
        [
          ("roundtrip", `Quick, test_instr_roundtrip);
          ("rejects bad", `Quick, test_instr_rejects_bad);
        ] );
      ( "vm",
        [
          ("arithmetic", `Quick, test_vm_arithmetic);
          ("loop", `Quick, test_vm_loop);
          ("subroutine", `Quick, test_vm_subroutine);
          ("memory and stack", `Quick, test_vm_memory_and_stack);
          ("sys trap", `Quick, test_vm_sys_trap);
          ("fault and fuel", `Quick, test_vm_fault_and_fuel);
        ] );
      ( "asm",
        [
          ("labels and data", `Quick, test_asm_labels_and_data);
          ("extern fixups", `Quick, test_asm_extern_fixups);
          ("errors", `Quick, test_asm_errors);
          ("string data", `Quick, test_asm_string_data);
        ] );
    ]
