(* Deeper machine-level coverage: the frame-pointer and arithmetic
   instructions added for the compiler, instruction-set properties, and
   the level table's structural invariants. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Instr = Alto_machine.Instr
module Asm = Alto_machine.Asm
module Level = Alto_os.Level

let no_sys _ _ = Vm.Sys_continue

let run_items ?(fuel = 100_000) items =
  let program = Asm.assemble_exn ~origin:100 items in
  let memory = Memory.create () in
  Memory.write_block memory ~pos:100 program.Asm.code;
  let cpu = Cpu.create memory in
  Cpu.set_pc cpu (Word.of_int program.Asm.entry);
  Cpu.set_frame_pointer cpu (Word.of_int 0xF000);
  (cpu, Vm.run ~fuel cpu ~handler:no_sys)

(* {2 the newer instructions} *)

let test_mfp_mtf () =
  let cpu, stop =
    run_items
      [
        Asm.Op ("MFP", [ Asm.Reg 0 ]);
        Asm.Op ("ADDI", [ Asm.Reg 0; Asm.Imm 0xfffe ]) (* FP - 2 *);
        Asm.Op ("MTF", [ Asm.Reg 0 ]);
        Asm.Op ("MFP", [ Asm.Reg 2 ]);
        Asm.Op ("HALT", []);
      ]
  in
  Alcotest.(check bool) "halted" true (stop = Vm.Halted);
  Alcotest.(check int) "frame moved" (0xF000 - 2) (Word.to_int (Cpu.ac cpu 2));
  Alcotest.(check int) "register agrees" (0xF000 - 2)
    (Word.to_int (Cpu.frame_pointer cpu))

let test_mul_div_rem () =
  let compute items = Word.to_int (Cpu.ac (fst (run_items items)) 0) in
  Alcotest.(check int) "7*6" 42
    (compute
       [
         Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 7 ]);
         Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 6 ]);
         Asm.Op ("MUL", [ Asm.Reg 0; Asm.Reg 1 ]);
         Asm.Op ("HALT", []);
       ]);
  Alcotest.(check int) "mul wraps" ((300 * 300) land 0xffff)
    (compute
       [
         Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 300 ]);
         Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 300 ]);
         Asm.Op ("MUL", [ Asm.Reg 0; Asm.Reg 1 ]);
         Asm.Op ("HALT", []);
       ]);
  Alcotest.(check int) "div" 6
    (compute
       [
         Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 45 ]);
         Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 7 ]);
         Asm.Op ("DIV", [ Asm.Reg 0; Asm.Reg 1 ]);
         Asm.Op ("HALT", []);
       ]);
  Alcotest.(check int) "rem" 3
    (compute
       [
         Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 45 ]);
         Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 7 ]);
         Asm.Op ("REM", [ Asm.Reg 0; Asm.Reg 1 ]);
         Asm.Op ("HALT", []);
       ])

let test_division_by_zero_faults () =
  let _, stop =
    run_items
      [
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 1 ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 0 ]);
        Asm.Op ("DIV", [ Asm.Reg 0; Asm.Reg 1 ]);
        Asm.Op ("HALT", []);
      ]
  in
  match stop with
  | Vm.Fault _ -> ()
  | stop -> Alcotest.failf "expected a fault, got %a" Vm.pp_stop stop

let test_jsri_through_a_table () =
  (* Dispatch through a jump table in memory — what overlay calls do. *)
  let cpu, stop =
    run_items
      [
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "target" ]);
        Asm.Op ("STA", [ Asm.Reg 0; Asm.Imm 3000 ]);
        Asm.Op ("LDA", [ Asm.Reg 1; Asm.Imm 3000 ]);
        Asm.Op ("JSRI", [ Asm.Reg 1 ]);
        Asm.Op ("HALT", []);
        Asm.Label "target";
        Asm.Op ("LDI", [ Asm.Reg 3; Asm.Imm 77 ]);
        Asm.Op ("RET", []);
      ]
  in
  Alcotest.(check bool) "halted" true (stop = Vm.Halted);
  Alcotest.(check int) "subroutine ran" 77 (Word.to_int (Cpu.ac cpu 3))

(* {2 instruction-set properties} *)

let gen_instr =
  QCheck.Gen.(
    let reg = int_bound 3 in
    let imm16 = int_bound 0xffff in
    let count = int_bound 15 in
    let byte = int_bound 255 in
    oneof
      [
        return Instr.Halt;
        map2 (fun r v -> Instr.Ldi (r, v)) reg imm16;
        map2 (fun r v -> Instr.Lda (r, v)) reg imm16;
        map2 (fun r v -> Instr.Sta (r, v)) reg imm16;
        map2 (fun r r2 -> Instr.Ldx (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.Stx (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.Mov (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.Add (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.Sub (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.And_ (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.Or_ (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.Xor_ (r, r2)) reg reg;
        map2 (fun r n -> Instr.Shl (r, n)) reg count;
        map2 (fun r n -> Instr.Shr (r, n)) reg count;
        map2 (fun r v -> Instr.Addi (r, v)) reg imm16;
        map (fun v -> Instr.Jmp v) imm16;
        map2 (fun r v -> Instr.Jz (r, v)) reg imm16;
        map2 (fun r v -> Instr.Jnz (r, v)) reg imm16;
        map2 (fun r v -> Instr.Jlt (r, v)) reg imm16;
        map (fun v -> Instr.Jsr v) imm16;
        map (fun r -> Instr.Jsri r) reg;
        return Instr.Ret;
        map (fun r -> Instr.Mfp r) reg;
        map (fun r -> Instr.Mtf r) reg;
        map2 (fun r r2 -> Instr.Mul (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.Div (r, r2)) reg reg;
        map2 (fun r r2 -> Instr.Rem (r, r2)) reg reg;
        map (fun r -> Instr.Push r) reg;
        map (fun r -> Instr.Pop r) reg;
        map (fun c -> Instr.Sys c) byte;
      ])

let prop_instr_roundtrip =
  QCheck.Test.make ~name:"every instruction encodes and decodes to itself" ~count:1000
    (QCheck.make ~print:(Format.asprintf "%a" Instr.pp) gen_instr)
    (fun instr ->
      let words = Array.of_list (Instr.encode instr) in
      match Instr.decode ~fetch:(fun i -> words.(i)) ~pc:0 with
      | Ok (decoded, next) -> decoded = instr && next = Instr.size instr
      | Error _ -> false)

let prop_memory_blit_is_sub =
  QCheck.Test.make ~name:"memory blit equals array copy" ~count:100
    QCheck.(triple (int_bound 200) (int_bound 200) (int_bound 100))
    (fun (src_pos, dst_pos, len) ->
      let m = Memory.create () in
      for i = 0 to 511 do
        Memory.write m i (Word.of_int ((i * 7) land 0xffff))
      done;
      let before = Memory.read_block m ~pos:src_pos ~len in
      Memory.blit ~src:m ~src_pos ~dst:m ~dst_pos ~len;
      Memory.read_block m ~pos:dst_pos ~len = before
      || (* overlapping regions: compare against the semantics of
            Array.blit on a copy *)
      src_pos + len > dst_pos
      && dst_pos + len > src_pos)

(* {2 the text assembler} *)

module Asm_text = Alto_machine.Asm_text

let test_asm_text_roundtrip () =
  (* The textual form assembles to the same words as the OCaml form. *)
  let text =
    "; a greeting\n\
     start:  LDI AC0, msg\n\
     \t JSR @WriteString\n\
     loop: LDI AC0, 0x0\n\
     \t JZ AC0, done   ; always\n\
     done: JSR @Exit\n\
     msg: .string \"hi; there\"\n\
     buf: .block 3\n\
     k:   .word 0o17\n"
  in
  let from_text =
    match Asm_text.assemble ~origin:200 text with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let from_items =
    Asm.assemble_exn ~origin:200
      [
        Asm.Label "start";
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "msg" ]);
        Asm.Op ("JSR", [ Asm.Ext "WriteString" ]);
        Asm.Label "loop";
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
        Asm.Op ("JZ", [ Asm.Reg 0; Asm.Lab "done" ]);
        Asm.Label "done";
        Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
        Asm.Label "msg";
        Asm.String_data "hi; there";
        Asm.Label "buf";
        Asm.Block 3;
        Asm.Label "k";
        Asm.Word_data 0o17;
      ]
  in
  Alcotest.(check bool) "same code" true (from_text.Asm.code = from_items.Asm.code);
  Alcotest.(check bool) "same fixups" true (from_text.Asm.fixups = from_items.Asm.fixups);
  Alcotest.(check int) "same entry" from_items.Asm.entry from_text.Asm.entry

let test_asm_text_literals () =
  let program src =
    match Asm_text.assemble ~origin:0 src with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  let p = program "LDI AC1, 'A'\nLDI AC2, '\\n'\nLDI AC3, 0xff\n" in
  Alcotest.(check int) "char literal" 65 (Word.to_int p.Asm.code.(1));
  Alcotest.(check int) "escaped char" 10 (Word.to_int p.Asm.code.(3));
  Alcotest.(check int) "hex" 255 (Word.to_int p.Asm.code.(5))

let test_asm_text_errors () =
  let rejects src =
    match Asm_text.assemble src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "assembled: %s" src
  in
  rejects "FROB AC0";
  rejects "LDI AC9, 1";
  rejects ".word 99999";
  rejects ".string unquoted";
  rejects ".frobnicate 3";
  rejects "JMP nowhere"

(* {2 level-table invariants} *)

let test_levels_cover_top_of_memory_disjointly () =
  let regions =
    List.map (fun (l : Level.t) -> (Level.base l.Level.index, Level.limit l.Level.index)) Level.all
  in
  (* Contiguous, descending, disjoint, ending at the top. *)
  let sorted = List.sort compare regions in
  let rec contiguous = function
    | (_, a_limit) :: ((b_base, _) :: _ as rest) ->
        a_limit = b_base && contiguous rest
    | [ (_, last_limit) ] -> last_limit = Memory.size
    | [] -> false
  in
  Alcotest.(check bool) "contiguous to the top" true (contiguous sorted)

let test_service_stubs_fit_and_are_unique () =
  let all_services =
    List.concat_map (fun (l : Level.t) -> l.Level.services) Level.all
  in
  (* Codes unique. *)
  let codes = List.map (fun s -> s.Level.code) all_services in
  Alcotest.(check int) "codes unique" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  (* Names unique, addresses unique and inside their level. *)
  let names = List.map (fun s -> s.Level.service_name) all_services in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  let addresses = List.map Level.service_address names in
  Alcotest.(check int) "addresses unique" (List.length addresses)
    (List.length (List.sort_uniq compare addresses));
  List.iter
    (fun (l : Level.t) ->
      List.iter
        (fun s ->
          let a = Level.service_address s.Level.service_name in
          Alcotest.(check bool)
            (s.Level.service_name ^ " stub inside its level")
            true
            (a >= Level.base l.Level.index && a + 1 < Level.limit l.Level.index))
        l.Level.services)
    Level.all

let test_stub_words_trap_correctly () =
  List.iter
    (fun (l : Level.t) ->
      List.iter
        (fun s ->
          match Level.stub_words s with
          | [ w1; w2 ] -> (
              let fetch = function 0 -> w1 | _ -> w2 in
              match Instr.decode ~fetch ~pc:0 with
              | Ok (Instr.Sys code, 1) ->
                  Alcotest.(check int) "stub traps its own code" s.Level.code code;
                  (match Instr.decode ~fetch ~pc:1 with
                  | Ok (Instr.Ret, _) -> ()
                  | _ -> Alcotest.fail "stub must end in RET")
              | _ -> Alcotest.fail "stub must start with SYS")
          | _ -> Alcotest.fail "stub must be two words")
        l.Level.services)
    Level.all

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "alto_machine deeper"
    [
      ( "new instructions",
        [
          ("MFP/MTF", `Quick, test_mfp_mtf);
          ("MUL/DIV/REM", `Quick, test_mul_div_rem);
          ("division by zero faults", `Quick, test_division_by_zero_faults);
          ("JSRI through a table", `Quick, test_jsri_through_a_table);
        ] );
      ("properties", qcheck [ prop_instr_roundtrip; prop_memory_blit_is_sub ]);
      ( "text assembler",
        [
          ("roundtrip vs items", `Quick, test_asm_text_roundtrip);
          ("literals", `Quick, test_asm_text_literals);
          ("errors", `Quick, test_asm_text_errors);
        ] );
      ( "levels",
        [
          ("regions tile the top of memory", `Quick, test_levels_cover_top_of_memory_disjointly);
          ("stubs fit and are unique", `Quick, test_service_stubs_fit_and_are_unique);
          ("stub words trap correctly", `Quick, test_stub_words_trap_correctly);
        ] );
    ]
