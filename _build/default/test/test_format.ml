(* The on-disk representations: file ids, labels, leader pages,
   directory entries — the formats that are "standardized at a level
   below any of the software" and therefore must hold under property
   testing, not just the happy path. *)

module Word = Alto_machine.Word
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address
module File_id = Alto_fs.File_id
module Label = Alto_fs.Label
module Leader = Alto_fs.Leader

(* {2 generators} *)

let gen_fid =
  QCheck.Gen.(
    map3
      (fun serial version directory ->
        File_id.make ~directory ~serial:(1 + serial) ~version:(1 + version) ())
      (int_bound (File_id.max_serial - 1))
      (int_bound 0xfffd) bool)

let arb_fid = QCheck.make ~print:(Format.asprintf "%a" File_id.pp) gen_fid

let gen_address =
  QCheck.Gen.(
    frequency [ (9, map Disk_address.of_index (int_bound 0xfffe)); (1, return Disk_address.nil) ])

let gen_label =
  QCheck.Gen.(
    gen_fid >>= fun fid ->
    int_bound 0xffff >>= fun page ->
    int_bound Sector.bytes_per_page >>= fun length ->
    gen_address >>= fun next ->
    map (fun prev -> Label.make ~fid ~page ~length ~next ~prev) gen_address)

let arb_label = QCheck.make ~print:(Format.asprintf "%a" Label.pp) gen_label

(* {2 file ids} *)

let prop_fid_roundtrip =
  QCheck.Test.make ~name:"file id word encoding roundtrips" ~count:500 arb_fid
    (fun fid ->
      let w0, w1, v = File_id.to_words fid in
      match File_id.of_words w0 w1 v with
      | Ok fid' -> File_id.equal fid fid'
      | Error _ -> false)

let prop_fid_order_consistent =
  QCheck.Test.make ~name:"file id compare is a total order" ~count:200
    QCheck.(pair arb_fid arb_fid)
    (fun (a, b) ->
      let c = File_id.compare a b in
      (c = 0) = File_id.equal a b && compare (File_id.compare b a) 0 = compare 0 c)

let test_fid_rejects_garbage () =
  (* Reserved bit set. *)
  (match File_id.of_words (Word.of_int 0x4000) Word.one Word.one with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reserved bit accepted");
  (* Serial zero. *)
  (match File_id.of_words Word.zero Word.zero Word.one with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "serial 0 accepted");
  (* Version extremes. *)
  (match File_id.of_words Word.zero Word.one Word.zero with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "version 0 accepted");
  match File_id.of_words Word.zero Word.one (Word.of_int 0xffff) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "version 0xffff accepted"

let test_fid_make_validates () =
  Alcotest.check_raises "serial too big"
    (Invalid_argument
       (Printf.sprintf "File_id.make: serial %d out of range" (File_id.max_serial + 1)))
    (fun () -> ignore (File_id.make ~serial:(File_id.max_serial + 1) ~version:1 ()));
  let fid = File_id.make ~serial:File_id.max_serial ~version:0xfffe () in
  Alcotest.check_raises "version ceiling"
    (Invalid_argument "File_id.make: version 65535 out of range") (fun () ->
      ignore (File_id.next_version fid))

let test_directory_flag_reserved_subset () =
  (* §3.4: "we reserve a subset of the file identifiers for directory
     files" — the flag must survive the encoding and partition the id
     space. *)
  let plain = File_id.make ~serial:500 ~version:2 () in
  let dir = File_id.make ~directory:true ~serial:500 ~version:2 () in
  Alcotest.(check bool) "flag read back" true (File_id.is_directory dir);
  Alcotest.(check bool) "not on plain" false (File_id.is_directory plain);
  Alcotest.(check bool) "distinct ids" false (File_id.equal plain dir)

(* {2 labels} *)

let prop_label_roundtrip =
  QCheck.Test.make ~name:"label word encoding roundtrips" ~count:500 arb_label
    (fun label ->
      match Label.classify (Label.to_words label) with
      | Label.Valid label' -> Label.equal label label'
      | Label.Free | Label.Bad | Label.Garbage _ -> false)

let prop_label_never_classifies_as_free_or_bad =
  QCheck.Test.make ~name:"no valid label collides with free/bad patterns" ~count:500
    arb_label (fun label ->
      let words = Label.to_words label in
      (not (words = Label.free_words ())) && not (words = Label.bad_words ()))

let test_label_special_patterns () =
  (match Label.classify (Label.free_words ()) with
  | Label.Free -> ()
  | _ -> Alcotest.fail "free pattern not classified Free");
  (match Label.classify (Label.bad_words ()) with
  | Label.Bad -> ()
  | _ -> Alcotest.fail "bad pattern not classified Bad");
  match Label.classify (Array.make Sector.label_words Word.zero) with
  | Label.Garbage _ -> ()
  | _ -> Alcotest.fail "zeroed label not classified Garbage"

let prop_check_name_matches_own_label =
  QCheck.Test.make ~name:"check_name pattern matches the page's own label" ~count:300
    arb_label (fun label ->
      (* Simulate the controller's check action in miniature. *)
      let disk = Label.to_words label in
      let pattern = Label.check_name label.Label.fid ~page:label.Label.page in
      let matches = ref true in
      Array.iteri
        (fun i p ->
          if (not (Word.equal p Word.zero)) && not (Word.equal p disk.(i)) then
            matches := false)
        pattern;
      !matches)

let prop_check_name_refutes_other_files =
  QCheck.Test.make ~name:"check_name refutes a different file's label" ~count:300
    QCheck.(pair arb_label arb_fid)
    (fun (label, other_fid) ->
      QCheck.assume (not (File_id.equal label.Label.fid other_fid));
      let disk = Label.to_words label in
      let pattern = Label.check_name other_fid ~page:label.Label.page in
      let refuted = ref false in
      Array.iteri
        (fun i p ->
          if (not (Word.equal p Word.zero)) && not (Word.equal p disk.(i)) then
            refuted := true)
        pattern;
      !refuted)

let test_label_length_validated () =
  let fid = File_id.make ~serial:1 ~version:1 () in
  Alcotest.check_raises "length > 512" (Invalid_argument "Label.make: length out of [0, 512]")
    (fun () ->
      ignore
        (Label.make ~fid ~page:0 ~length:513 ~next:Disk_address.nil ~prev:Disk_address.nil))

(* {2 leader pages} *)

let gen_leader =
  QCheck.Gen.(
    string_size ~gen:(char_range 'a' 'z') (0 -- Leader.max_name_length) >>= fun name ->
    int_bound 0xffff >>= fun last_page ->
    gen_address >>= fun last_addr ->
    triple (int_bound 1_000_000) (int_bound 1_000_000) bool >>= fun (created, written, flag) ->
    return
      (Leader.make ~created_s:created ~written_s:written ~read_s:0 ~name ~last_page
         ~last_addr ~maybe_consecutive:flag ()))

let arb_leader = QCheck.make ~print:(Format.asprintf "%a" Leader.pp) gen_leader

let prop_leader_roundtrip =
  QCheck.Test.make ~name:"leader page encoding roundtrips" ~count:300 arb_leader
    (fun leader ->
      match Leader.of_value (Leader.to_value leader) with
      | Ok leader' -> Leader.equal leader leader'
      | Error _ -> false)

let test_leader_rejects_garbage () =
  (match Leader.of_value (Array.make Sector.value_words Word.zero) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zeroed value accepted as a leader");
  match Leader.of_value (Array.make 10 Word.zero) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short value accepted"

let test_leader_name_limits () =
  Alcotest.check_raises "overlong name" (Invalid_argument "Leader: name longer than 63 bytes")
    (fun () ->
      ignore
        (Leader.make ~name:(String.make 64 'x') ~last_page:0 ~last_addr:Disk_address.nil
           ~maybe_consecutive:false ()));
  Alcotest.check_raises "NUL in name" (Invalid_argument "Leader: name contains NUL")
    (fun () ->
      ignore
        (Leader.make ~name:"bad\000name" ~last_page:0 ~last_addr:Disk_address.nil
           ~maybe_consecutive:false ()))

(* {2 reading a pack with nothing but the documented layout}

   The openness claim: the disk format is the interface. Write a file
   through the system, then reconstruct its contents using only Drive
   reads and the documented word layouts — no Fs, File or Directory. *)

let test_foreign_environment_reads_the_pack () =
  let geometry = { Alto_disk.Geometry.diablo_31 with Alto_disk.Geometry.model = "t"; cylinders = 20 } in
  let drive = Alto_disk.Drive.create ~pack_id:3 geometry in
  let fs = Alto_fs.Fs.format drive in
  let file =
    match Alto_fs.File.create fs ~name:"Shared.txt" with
    | Ok f -> f
    | Error _ -> Alcotest.fail "create"
  in
  let text = String.init 1200 (fun i -> Char.chr (33 + (i mod 90))) in
  (match Alto_fs.File.write_bytes file ~pos:0 text with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write");
  let leader_addr = (Alto_fs.File.leader_name file).Alto_fs.Page.addr in
  (* The "foreign environment": raw sector reads + layout knowledge. *)
  let read_sector addr =
    let label = Array.make Sector.label_words Word.zero in
    let value = Array.make Sector.value_words Word.zero in
    match
      Alto_disk.Drive.run drive addr
        { Alto_disk.Drive.op_none with
          Alto_disk.Drive.label = Some Alto_disk.Drive.Read;
          value = Some Alto_disk.Drive.Read
        }
        ~label ~value ()
    with
    | Ok () -> (label, value)
    | Error _ -> Alcotest.fail "raw read"
  in
  let buffer = Buffer.create 1200 in
  (* Label layout: word 5 = next link; word 4 = byte count. *)
  let rec walk addr first =
    let label, value = read_sector addr in
    if not first then begin
      let len = Word.to_int label.(4) in
      Buffer.add_string buffer (Word.string_of_words value ~len)
    end;
    let next = Disk_address.of_word label.(5) in
    if not (Disk_address.is_nil next) then walk next false
  in
  walk leader_addr true;
  Alcotest.(check string) "reconstructed from raw sectors" text (Buffer.contents buffer)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "alto_fs formats"
    [
      ( "file ids",
        [
          ("rejects garbage", `Quick, test_fid_rejects_garbage);
          ("make validates", `Quick, test_fid_make_validates);
          ("directory subset", `Quick, test_directory_flag_reserved_subset);
        ]
        @ qcheck [ prop_fid_roundtrip; prop_fid_order_consistent ] );
      ( "labels",
        [
          ("special patterns", `Quick, test_label_special_patterns);
          ("length validated", `Quick, test_label_length_validated);
        ]
        @ qcheck
            [
              prop_label_roundtrip;
              prop_label_never_classifies_as_free_or_bad;
              prop_check_name_matches_own_label;
              prop_check_name_refutes_other_files;
            ] );
      ( "leaders",
        [
          ("rejects garbage", `Quick, test_leader_rejects_garbage);
          ("name limits", `Quick, test_leader_name_limits);
        ]
        @ qcheck [ prop_leader_roundtrip ] );
      ( "the format is the interface",
        [ ("foreign environment reads the pack", `Quick, test_foreign_environment_reads_the_pack) ] );
    ]
