test/test_integration.ml: Alcotest Alto_disk Alto_fs Alto_machine Alto_os Alto_streams Alto_world Bytes Char Gen List QCheck QCheck_alcotest Random String
