test/test_zones.ml: Alcotest Alto_machine Alto_zones Gen List QCheck QCheck_alcotest
