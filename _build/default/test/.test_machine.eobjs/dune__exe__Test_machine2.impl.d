test/test_machine2.ml: Alcotest Alto_machine Alto_os Array Format List QCheck QCheck_alcotest
