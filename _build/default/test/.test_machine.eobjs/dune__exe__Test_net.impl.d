test/test_net.ml: Alcotest Alto_machine Alto_net Array Char String
