test/test_world.ml: Alcotest Alto_disk Alto_fs Alto_machine Alto_world Alto_zones Array Printf String
