test/test_machine.ml: Alcotest Alto_machine Array Format Gen List QCheck QCheck_alcotest String
