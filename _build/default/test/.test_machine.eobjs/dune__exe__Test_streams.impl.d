test/test_streams.ml: Alcotest Alto_disk Alto_fs Alto_machine Alto_streams Alto_zones Buffer Char Gen List QCheck QCheck_alcotest String
