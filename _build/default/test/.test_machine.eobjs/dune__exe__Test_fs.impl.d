test/test_fs.ml: Alcotest Alto_disk Alto_fs Alto_machine Array Bytes Char Gen List Printf QCheck QCheck_alcotest String
