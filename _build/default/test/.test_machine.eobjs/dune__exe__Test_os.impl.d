test/test_os.ml: Alcotest Alto_disk Alto_fs Alto_machine Alto_os Alto_streams Alto_world Alto_zones Bytes Char List Printf String
