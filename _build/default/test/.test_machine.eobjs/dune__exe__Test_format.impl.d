test/test_format.ml: Alcotest Alto_disk Alto_fs Alto_machine Array Buffer Char Format List Printf QCheck QCheck_alcotest String
