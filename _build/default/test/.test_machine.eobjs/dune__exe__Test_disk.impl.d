test/test_disk.ml: Alcotest Alto_disk Alto_machine Array Format Hashtbl List QCheck QCheck_alcotest Random
