test/test_bcpl.mli:
