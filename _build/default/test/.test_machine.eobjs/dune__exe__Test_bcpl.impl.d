test/test_bcpl.ml: Alcotest Alto_bcpl Alto_disk Alto_fs Alto_machine Alto_os Alto_streams Alto_world Option Printf QCheck QCheck_alcotest
