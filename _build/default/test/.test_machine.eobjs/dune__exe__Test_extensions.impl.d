test/test_extensions.ml: Alcotest Alto_disk Alto_fs Alto_machine Alto_net Alto_server Bytes Char List Random String
