test/test_recovery.ml: Alcotest Alto_disk Alto_fs Alto_machine Array Bytes Char List Option Printf QCheck QCheck_alcotest Random Result String
