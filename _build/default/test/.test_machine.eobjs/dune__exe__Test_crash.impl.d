test/test_crash.ml: Alcotest Alto_disk Alto_fs Alto_machine Alto_world Bytes Char List Printf QCheck QCheck_alcotest String
