test/test_machine2.mli:
