(* The paper's sketched-but-unbuilt extensions, built: journaled
   directories (§3.5) and the network file server / diskless client
   (§5.2), plus the k-th-page hint density knob (§3.6). *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module File_id = Alto_fs.File_id
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Journal = Alto_fs.Journal
module Scavenger = Alto_fs.Scavenger
module Net = Alto_net.Net
module File_server = Alto_server.File_server

let small_geometry = { Geometry.diablo_31 with Geometry.model = "test"; cylinders = 25 }

let fresh_fs () =
  let drive = Drive.create ~pack_id:7 small_geometry in
  (drive, Fs.format drive)

let check_ok pp what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %a" what pp e

let file_ok what r = check_ok File.pp_error what r
let dir_ok what r = check_ok Directory.pp_error what r
let jr_ok what r = check_ok Journal.pp_error what r

let make_file fs name contents =
  let file = file_ok "create" (File.create fs ~name) in
  if String.length contents > 0 then
    file_ok "write" (File.write_bytes file ~pos:0 contents);
  file_ok "flush" (File.flush_leader file);
  file

(* {2 journaled directories} *)

let journaled () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let jd = jr_ok "create" (Journal.create fs ~parent:root ~name:"Vault.") in
  (drive, fs, root, jd)

let test_journal_basic_ops () =
  let _drive, fs, _root, jd = journaled () in
  let a = make_file fs "A.txt" "alpha" in
  let b = make_file fs "B.txt" "beta" in
  jr_ok "add A" (Journal.add jd ~name:"A.txt" (File.leader_name a));
  jr_ok "add B under alias" (Journal.add jd ~name:"Alias.B" (File.leader_name b));
  (match jr_ok "lookup" (Journal.lookup jd "Alias.B") with
  | Some e ->
      Alcotest.(check bool) "alias points at B" true
        (File_id.equal e.Directory.entry_file.Page.abs.Page.fid (File.fid b))
  | None -> Alcotest.fail "alias missing");
  Alcotest.(check int) "two records journaled" 2
    (jr_ok "records" (Journal.journal_records jd));
  Alcotest.(check bool) "removed" true (jr_ok "remove" (Journal.remove jd "A.txt"));
  Alcotest.(check int) "three records" 3 (jr_ok "records" (Journal.journal_records jd))

let test_snapshot_truncates_journal () =
  let _drive, fs, _root, jd = journaled () in
  let a = make_file fs "A.txt" "alpha" in
  jr_ok "add" (Journal.add jd ~name:"A.txt" (File.leader_name a));
  jr_ok "snapshot" (Journal.take_snapshot jd);
  Alcotest.(check int) "journal empty" 0 (jr_ok "records" (Journal.journal_records jd));
  (* And the state is all in the snapshot: recover from it alone. *)
  let recovery = jr_ok "recover" (Journal.recover jd) in
  Alcotest.(check int) "restored from snapshot" 1 recovery.Journal.entries_restored;
  Alcotest.(check int) "nothing replayed" 0 recovery.Journal.records_replayed

let test_recovery_restores_lost_names () =
  (* The decisive scenario: a file catalogued under an alias that is NOT
     its leader name. Plain scavenging adopts orphans under leader names,
     so the alias is unrecoverable without the journal. *)
  let drive, fs, _root, jd = journaled () in
  let doc = make_file fs "LeaderName.txt" "the contents" in
  jr_ok "add under alias" (Journal.add jd ~name:"TotallyDifferent." (File.leader_name doc));
  jr_ok "snapshot" (Journal.take_snapshot jd);
  let extra = make_file fs "Extra.txt" "more" in
  jr_ok "post-snapshot add" (Journal.add jd ~name:"Extra.txt" (File.leader_name extra));
  Alcotest.(check bool) "post-snapshot remove" true
    (jr_ok "rm" (Journal.remove jd "Extra.txt"));
  jr_ok "re-add" (Journal.add jd ~name:"Extra2." (File.leader_name extra));
  (* Destroy the directory's data page contents. *)
  let rng = Random.State.make [| 11 |] in
  let dir_file = Journal.directory jd in
  let p1 = file_ok "p1" (File.page_name dir_file 1) in
  Fault.corrupt_part rng drive p1.Page.addr Sector.Value;
  (* The scavenger makes the volume sound again — but the alias is gone
     (the file reappears under its leader name in the root). *)
  let fs', _report =
    match Scavenger.scavenge drive with Ok x -> x | Error m -> Alcotest.failf "%s" m
  in
  let root' = dir_ok "root" (Directory.open_root fs') in
  Alcotest.(check bool) "scavenger could not restore the alias" true
    (dir_ok "lookup" (Directory.lookup root' "TotallyDifferent.") = None);
  (* The journaled package can. *)
  let jd' = jr_ok "reopen" (Journal.open_existing fs' ~parent:root' ~name:"Vault.") in
  let recovery = jr_ok "recover" (Journal.recover jd') in
  Alcotest.(check int) "both names back" 2 recovery.Journal.entries_restored;
  Alcotest.(check int) "replayed the tail" 3 recovery.Journal.records_replayed;
  (match jr_ok "lookup" (Journal.lookup jd' "TotallyDifferent.") with
  | Some e -> (
      (* And the entry leads to the right bytes. *)
      match File.open_leader fs' e.Directory.entry_file with
      | Ok f ->
          let got =
            Bytes.to_string (file_ok "read" (File.read_bytes f ~pos:0 ~len:(File.byte_length f)))
          in
          Alcotest.(check string) "contents" "the contents" got
      | Error e -> Alcotest.failf "open: %a" File.pp_error e)
  | None -> Alcotest.fail "alias not recovered");
  match jr_ok "lookup2" (Journal.lookup jd' "Extra2.") with
  | Some _ -> ()
  | None -> Alcotest.fail "post-snapshot rename lost"

let test_recovery_is_idempotent () =
  let _drive, fs, _root, jd = journaled () in
  let a = make_file fs "A.txt" "alpha" in
  jr_ok "add" (Journal.add jd ~name:"A.txt" (File.leader_name a));
  let r1 = jr_ok "recover" (Journal.recover jd) in
  let r2 = jr_ok "recover again" (Journal.recover jd) in
  Alcotest.(check int) "same entries" r1.Journal.entries_restored r2.Journal.entries_restored;
  match jr_ok "lookup" (Journal.lookup jd "A.txt") with
  | Some _ -> ()
  | None -> Alcotest.fail "entry lost by recovery"

let test_journal_survives_ordinary_use () =
  (* The wrapped directory is still a plain directory: the standard
     package reads it. *)
  let _drive, fs, _root, jd = journaled () in
  let a = make_file fs "A.txt" "alpha" in
  jr_ok "add" (Journal.add jd ~name:"A.txt" (File.leader_name a));
  let plain = dir_ok "entries via Directory" (Directory.entries (Journal.directory jd)) in
  Alcotest.(check int) "visible to the standard package" 1 (List.length plain)

(* {2 file server and diskless client} *)

let server_setup () =
  let drive, fs = fresh_fs () in
  ignore drive;
  let root = dir_ok "root" (Directory.open_root fs) in
  ignore root;
  let net = Net.create () in
  let station = Net.attach net ~name:"server" in
  let server = File_server.create fs station in
  let client = Net.attach net ~name:"client" in
  let pump () = ignore (File_server.serve_pending server) in
  (fs, server, client, pump)

let client_ok what r = check_ok File_server.Client.pp_error what r

let test_server_get () =
  let fs, _server, client, pump = server_setup () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let doc = make_file fs "Doc.txt" "over the wire" in
  dir_ok "add" (Directory.add root ~name:"Doc.txt" (File.leader_name doc));
  let got = client_ok "fetch" (File_server.Client.fetch client ~server:"server" ~name:"Doc.txt" ~pump) in
  Alcotest.(check string) "contents" "over the wire" got

let test_server_get_missing () =
  let _fs, _server, client, pump = server_setup () in
  match File_server.Client.fetch client ~server:"server" ~name:"Nope." ~pump with
  | Error (File_server.Client.Remote _) -> ()
  | Ok _ -> Alcotest.fail "fetched a phantom"
  | Error e -> Alcotest.failf "wrong error: %a" File_server.Client.pp_error e

let test_server_put_then_get () =
  let _fs, server, client, pump = server_setup () in
  let body = String.init 3000 (fun i -> Char.chr (32 + (i mod 90))) in
  client_ok "store" (File_server.Client.store client ~server:"server" ~name:"Up.dat" body ~pump);
  let got = client_ok "fetch" (File_server.Client.fetch client ~server:"server" ~name:"Up.dat" ~pump) in
  Alcotest.(check string) "round trip" body got;
  (* Overwrite. *)
  client_ok "overwrite" (File_server.Client.store client ~server:"server" ~name:"Up.dat" "short" ~pump);
  let got = client_ok "fetch" (File_server.Client.fetch client ~server:"server" ~name:"Up.dat" ~pump) in
  Alcotest.(check string) "overwritten" "short" got;
  let s = File_server.stats server in
  Alcotest.(check int) "2 puts" 2 s.File_server.puts;
  Alcotest.(check int) "2 gets" 2 s.File_server.gets

let test_server_listing () =
  let _fs, _server, client, pump = server_setup () in
  client_ok "store" (File_server.Client.store client ~server:"server" ~name:"One." "1" ~pump);
  client_ok "store" (File_server.Client.store client ~server:"server" ~name:"Two." "2" ~pump);
  let names = client_ok "listing" (File_server.Client.listing client ~server:"server" ~pump) in
  Alcotest.(check bool) "One listed" true (List.mem "One." names);
  Alcotest.(check bool) "Two listed" true (List.mem "Two." names)

let test_server_persists () =
  (* Files stored over the network are ordinary files: they survive a
     remount of the server's pack. *)
  let drive, fs = fresh_fs () in
  let net = Net.create () in
  let station = Net.attach net ~name:"server" in
  let server = File_server.create fs station in
  let client = Net.attach net ~name:"client" in
  let pump () = ignore (File_server.serve_pending server) in
  client_ok "store" (File_server.Client.store client ~server:"server" ~name:"Keep." "kept" ~pump);
  let fs' = match Fs.mount drive with Ok f -> f | Error m -> Alcotest.failf "%s" m in
  let root = dir_ok "root" (Directory.open_root fs') in
  match dir_ok "lookup" (Directory.lookup root "Keep.") with
  | Some e ->
      let f = file_ok "open" (File.open_leader fs' e.Directory.entry_file) in
      Alcotest.(check string) "content survived" "kept"
        (Bytes.to_string (file_ok "read" (File.read_bytes f ~pos:0 ~len:4)))
  | None -> Alcotest.fail "stored file not catalogued"

(* {2 k-th page hints} *)

let test_retain_every_kth_hint () =
  let _drive, fs = fresh_fs () in
  let file = make_file fs "Paged.dat" (String.make 6000 'p') in
  (* Warm every hint. *)
  for pn = 1 to File.last_page file do
    ignore (file_ok "read" (File.read_page file pn))
  done;
  Alcotest.(check int) "all hinted" (File.last_page file) (File.hinted_pages file);
  File.retain_hints file ~every:4;
  Alcotest.(check bool) "thinned" true (File.hinted_pages file <= File.last_page file / 4 + 1);
  (* Access still works — links fill the gaps from the retained hints. *)
  let got = file_ok "read" (File.read_bytes file ~pos:5000 ~len:10) in
  Alcotest.(check int) "read through sparse hints" 10 (Bytes.length got);
  Alcotest.check_raises "every must be positive"
    (Invalid_argument "File.retain_hints: every must be >= 1") (fun () ->
      File.retain_hints file ~every:0)

let () =
  Alcotest.run "alto extensions"
    [
      ( "journal",
        [
          ("basic ops", `Quick, test_journal_basic_ops);
          ("snapshot truncates journal", `Quick, test_snapshot_truncates_journal);
          ("recovery restores lost names", `Quick, test_recovery_restores_lost_names);
          ("recovery idempotent", `Quick, test_recovery_is_idempotent);
          ("plain directory compatible", `Quick, test_journal_survives_ordinary_use);
        ] );
      ( "file server",
        [
          ("get", `Quick, test_server_get);
          ("get missing", `Quick, test_server_get_missing);
          ("put then get", `Quick, test_server_put_then_get);
          ("listing", `Quick, test_server_listing);
          ("stored files persist", `Quick, test_server_persists);
        ] );
      ("hints", [ ("retain every k-th", `Quick, test_retain_every_kth_hint) ]);
    ]
