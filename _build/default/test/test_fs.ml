(* File-system core: format/mount, allocation protocol, files, directories. *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module File_id = Alto_fs.File_id
module Label = Alto_fs.Label
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Leader = Alto_fs.Leader

let small_geometry =
  (* A small disk keeps tests fast while exercising every code path. *)
  {
    Geometry.diablo_31 with
    Geometry.model = "test disk";
    cylinders = 20;
  }

let fresh_fs ?(geometry = small_geometry) () =
  let drive = Drive.create ~pack_id:7 geometry in
  (drive, Fs.format drive)

let check_ok pp what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %a" what pp e

let fs_ok what r = check_ok Fs.pp_error what r
let file_ok what r = check_ok File.pp_error what r
let dir_ok what r = check_ok Directory.pp_error what r

(* {2 format / mount} *)

let test_format_then_mount () =
  let drive, fs = fresh_fs () in
  Alcotest.(check bool) "root directory exists" true (Fs.root_dir fs <> None);
  let fs' =
    match Fs.mount drive with Ok fs -> fs | Error e -> Alcotest.failf "mount: %s" e
  in
  Alcotest.(check int) "free count survives mount" (Fs.free_count fs) (Fs.free_count fs');
  Alcotest.(check bool) "root survives mount" true (Fs.root_dir fs' <> None)

let test_mount_rejects_unformatted () =
  let drive = Drive.create ~pack_id:1 small_geometry in
  match Fs.mount drive with
  | Ok _ -> Alcotest.fail "mounted an unformatted pack"
  | Error _ -> ()

let test_mount_rejects_corrupt_descriptor () =
  let drive, _fs = fresh_fs () in
  let junk = Array.make Sector.value_words (Word.of_int 0xDEAD) in
  Drive.poke drive Fs.descriptor_leader_address Sector.Value junk;
  match Fs.mount drive with
  | Ok _ -> Alcotest.fail "mounted despite a destroyed descriptor leader"
  | Error _ -> ()

let test_boot_page_never_allocated () =
  let _drive, fs = fresh_fs () in
  Alcotest.(check bool) "DA0 busy" false (Fs.is_free_in_map fs Fs.boot_address)

(* {2 allocation protocol} *)

let test_allocate_writes_label_and_value () =
  let drive, fs = fresh_fs () in
  let fid = Fs.fresh_fid fs in
  let value = Array.make Sector.value_words (Word.of_int 0xBEEF) in
  let label addr =
    ignore addr;
    Label.make ~fid ~page:1 ~length:512 ~next:Disk_address.nil ~prev:Disk_address.nil
  in
  let addr = fs_ok "allocate" (Fs.allocate_page fs ~label ~value) in
  let sector = Drive.peek drive addr in
  Alcotest.(check int) "value written" 0xBEEF (Word.to_int sector.Sector.value.(0));
  match Label.classify sector.Sector.label with
  | Label.Valid l ->
      Alcotest.(check bool) "fid matches" true (File_id.equal l.Label.fid fid)
  | Label.Free | Label.Bad | Label.Garbage _ -> Alcotest.fail "label not valid"

let test_stale_map_hint_is_survived () =
  let drive, fs = fresh_fs () in
  (* Lie in the map: mark a busy page (the descriptor leader) free. *)
  Fs.mark_free fs Fs.descriptor_leader_address;
  let before = (Fs.counters fs).Fs.stale_map_hits in
  (* Force allocation to try the liar first. *)
  let free_before = Fs.free_count fs in
  let rec exhaust n =
    if n = 0 then ()
    else
      let fid = Fs.fresh_fid fs in
      let label _ =
        Label.make ~fid ~page:1 ~length:0 ~next:Disk_address.nil ~prev:Disk_address.nil
      in
      match Fs.allocate_page fs ~label ~value:(Array.make Sector.value_words Word.zero) with
      | Ok _ -> exhaust (n - 1)
      | Error Fs.Disk_full -> ()
      | Error e -> Alcotest.failf "allocate: %a" Fs.pp_error e
  in
  exhaust free_before;
  let after = (Fs.counters fs).Fs.stale_map_hits in
  Alcotest.(check bool) "the lie was caught by the label check" true (after > before);
  (* The descriptor leader was never overwritten. *)
  match Label.classify (Drive.peek drive Fs.descriptor_leader_address).Sector.label with
  | Label.Valid l ->
      Alcotest.(check bool) "still the descriptor's page" true
        (File_id.equal l.Label.fid File_id.descriptor)
  | Label.Free | Label.Bad | Label.Garbage _ ->
      Alcotest.fail "descriptor page damaged by a stale map hint"

let test_free_page_writes_ones () =
  let drive, fs = fresh_fs () in
  let fid = Fs.fresh_fid fs in
  let label _ =
    Label.make ~fid ~page:1 ~length:512 ~next:Disk_address.nil ~prev:Disk_address.nil
  in
  let addr =
    fs_ok "allocate"
      (Fs.allocate_page fs ~label ~value:(Array.make Sector.value_words Word.one))
  in
  fs_ok "free" (Fs.free_page fs (Page.full_name fid ~page:1 ~addr));
  let sector = Drive.peek drive addr in
  (match Label.classify sector.Sector.label with
  | Label.Free -> ()
  | Label.Valid _ | Label.Bad | Label.Garbage _ -> Alcotest.fail "label not freed");
  Alcotest.(check int) "value is ones" 0xffff (Word.to_int sector.Sector.value.(100));
  Alcotest.(check bool) "map bit cleared" true (Fs.is_free_in_map fs addr)

let test_free_page_refuses_wrong_name () =
  let _drive, fs = fresh_fs () in
  let fid = Fs.fresh_fid fs in
  let other = Fs.fresh_fid fs in
  let label _ =
    Label.make ~fid ~page:1 ~length:512 ~next:Disk_address.nil ~prev:Disk_address.nil
  in
  let addr =
    fs_ok "allocate"
      (Fs.allocate_page fs ~label ~value:(Array.make Sector.value_words Word.one))
  in
  match Fs.free_page fs (Page.full_name other ~page:1 ~addr) with
  | Ok () -> Alcotest.fail "freed a page under the wrong name"
  | Error (Fs.Page_error _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Fs.pp_error e

let test_disk_full () =
  let _drive, fs = fresh_fs () in
  let rec fill () =
    let fid = Fs.fresh_fid fs in
    let label _ =
      Label.make ~fid ~page:1 ~length:0 ~next:Disk_address.nil ~prev:Disk_address.nil
    in
    match Fs.allocate_page fs ~label ~value:(Array.make Sector.value_words Word.zero) with
    | Ok _ -> fill ()
    | Error Fs.Disk_full -> ()
    | Error e -> Alcotest.failf "allocate: %a" Fs.pp_error e
  in
  fill ();
  Alcotest.(check int) "no free pages left" 0 (Fs.free_count fs)

(* {2 files} *)

let test_create_and_reopen () =
  let _drive, fs = fresh_fs () in
  let file = file_ok "create" (File.create fs ~name:"Quux.txt") in
  Alcotest.(check int) "empty" 0 (File.byte_length file);
  Alcotest.(check int) "one data page" 1 (File.last_page file);
  let reopened = file_ok "open" (File.open_leader fs (File.leader_name file)) in
  Alcotest.(check string) "leader name" "Quux.txt" (File.leader reopened).Leader.name;
  Alcotest.(check int) "length" 0 (File.byte_length reopened)

let lorem n =
  String.init n (fun i -> Char.chr (32 + ((i * 7) mod 95)))

let test_write_read_roundtrip () =
  let _drive, fs = fresh_fs () in
  let file = file_ok "create" (File.create fs ~name:"Data.") in
  let payload = lorem 2000 in
  file_ok "write" (File.write_bytes file ~pos:0 payload);
  Alcotest.(check int) "length" 2000 (File.byte_length file);
  let got = file_ok "read" (File.read_bytes file ~pos:0 ~len:2000) in
  Alcotest.(check string) "roundtrip" payload (Bytes.to_string got);
  (* Partial read across a page boundary. *)
  let got = file_ok "read" (File.read_bytes file ~pos:500 ~len:100) in
  Alcotest.(check string) "mid read" (String.sub payload 500 100) (Bytes.to_string got)

let test_overwrite_middle () =
  let _drive, fs = fresh_fs () in
  let file = file_ok "create" (File.create fs ~name:"Data.") in
  file_ok "write" (File.write_bytes file ~pos:0 (String.make 1500 'a'));
  file_ok "patch" (File.write_bytes file ~pos:700 "HELLO");
  let got = Bytes.to_string (file_ok "read" (File.read_bytes file ~pos:0 ~len:1500)) in
  Alcotest.(check string) "patched" "HELLO" (String.sub got 700 5);
  Alcotest.(check char) "before intact" 'a' got.[699];
  Alcotest.(check char) "after intact" 'a' got.[705];
  Alcotest.(check int) "length unchanged" 1500 (File.byte_length file)

let test_append_grows () =
  let _drive, fs = fresh_fs () in
  let file = file_ok "create" (File.create fs ~name:"Grow.") in
  for i = 1 to 5 do
    file_ok "append" (File.append_bytes file (String.make 300 (Char.chr (64 + i))))
  done;
  Alcotest.(check int) "length" 1500 (File.byte_length file);
  Alcotest.(check int) "pages" 3 (File.last_page file);
  let got = Bytes.to_string (file_ok "read" (File.read_bytes file ~pos:0 ~len:1500)) in
  Alcotest.(check char) "first chunk" 'A' got.[0];
  Alcotest.(check char) "last chunk" 'E' got.[1499]

let test_exactly_full_page_then_append () =
  let _drive, fs = fresh_fs () in
  let file = file_ok "create" (File.create fs ~name:"Full.") in
  file_ok "write" (File.write_bytes file ~pos:0 (String.make 512 'x'));
  Alcotest.(check int) "one full page" 1 (File.last_page file);
  file_ok "append" (File.append_bytes file "y");
  Alcotest.(check int) "second page" 2 (File.last_page file);
  Alcotest.(check int) "513 bytes" 513 (File.byte_length file);
  let got = Bytes.to_string (file_ok "read" (File.read_bytes file ~pos:510 ~len:3)) in
  Alcotest.(check string) "boundary" "xxy" got

let test_truncate () =
  let _drive, fs = fresh_fs () in
  let file = file_ok "create" (File.create fs ~name:"Trunc.") in
  file_ok "write" (File.write_bytes file ~pos:0 (lorem 2000));
  let free_before = Fs.free_count fs in
  file_ok "truncate" (File.truncate file ~len:600);
  Alcotest.(check int) "length" 600 (File.byte_length file);
  Alcotest.(check int) "pages" 2 (File.last_page file);
  Alcotest.(check bool) "pages reclaimed" true (Fs.free_count fs > free_before);
  let got = Bytes.to_string (file_ok "read" (File.read_bytes file ~pos:0 ~len:600)) in
  Alcotest.(check string) "content preserved" (String.sub (lorem 2000) 0 600) got;
  file_ok "truncate to zero" (File.truncate file ~len:0);
  Alcotest.(check int) "empty" 0 (File.byte_length file);
  Alcotest.(check int) "still one data page" 1 (File.last_page file)

let test_delete_reclaims_everything () =
  let _drive, fs = fresh_fs () in
  let before = Fs.free_count fs in
  let file = file_ok "create" (File.create fs ~name:"Doomed.") in
  file_ok "write" (File.write_bytes file ~pos:0 (lorem 3000));
  file_ok "delete" (File.delete file);
  Alcotest.(check int) "all pages back" before (Fs.free_count fs)

let test_stale_hint_recovery () =
  let _drive, fs = fresh_fs () in
  let file = file_ok "create" (File.create fs ~name:"Hints.") in
  file_ok "write" (File.write_bytes file ~pos:0 (lorem 2500));
  (* Forget everything, then read: the handle must re-derive addresses
     by chasing links from the leader. *)
  File.invalidate_hints file;
  Alcotest.(check int) "no hints" 0 (File.hinted_pages file);
  let got = Bytes.to_string (file_ok "read" (File.read_bytes file ~pos:2000 ~len:100)) in
  Alcotest.(check string) "read after invalidation"
    (String.sub (lorem 2500) 2000 100)
    got;
  Alcotest.(check bool) "hints relearned" true (File.hinted_pages file > 0)

let test_leader_dates_advance () =
  let drive, fs = fresh_fs () in
  let file = file_ok "create" (File.create fs ~name:"Dated.") in
  let created = (File.leader file).Leader.created_s in
  Alto_machine.Sim_clock.advance_us (Drive.clock drive) 5_000_000;
  file_ok "write" (File.write_bytes file ~pos:0 "data");
  file_ok "flush" (File.flush_leader file);
  let reopened = file_ok "open" (File.open_leader fs (File.leader_name file)) in
  let l = File.leader reopened in
  Alcotest.(check int) "created preserved" created l.Leader.created_s;
  Alcotest.(check bool) "written advanced" true (l.Leader.written_s > created);
  (* Reading updates the in-core read date; the next leader flush
     persists it — the paper's "dates of … last read" (§3.2). *)
  Alto_machine.Sim_clock.advance_us (Drive.clock drive) 5_000_000;
  let (_ : Bytes.t) = file_ok "read" (File.read_bytes reopened ~pos:0 ~len:4) in
  file_ok "flush" (File.flush_leader reopened);
  let again = file_ok "open" (File.open_leader fs (File.leader_name file)) in
  Alcotest.(check bool) "read date advanced" true
    ((File.leader again).Leader.read_s > l.Leader.written_s)

(* {2 directories} *)

let test_directory_add_lookup_remove () =
  let _drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = file_ok "create" (File.create fs ~name:"Memo.txt") in
  dir_ok "add" (Directory.add root ~name:"Memo.txt" (File.leader_name file));
  (match dir_ok "lookup" (Directory.lookup root "Memo.txt") with
  | Some e ->
      Alcotest.(check bool) "fid matches" true
        (File_id.equal e.Directory.entry_file.Page.abs.Page.fid (File.fid file))
  | None -> Alcotest.fail "entry not found");
  Alcotest.(check bool) "absent name" true
    (dir_ok "lookup" (Directory.lookup root "Nothing.") = None);
  Alcotest.(check bool) "removed" true (dir_ok "remove" (Directory.remove root "Memo.txt"));
  Alcotest.(check bool) "gone" true (dir_ok "lookup" (Directory.lookup root "Memo.txt") = None);
  Alcotest.(check bool) "remove again" false
    (dir_ok "remove" (Directory.remove root "Memo.txt"))

let test_directory_slot_reuse () =
  let _drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let add name =
    let file = file_ok "create" (File.create fs ~name) in
    dir_ok "add" (Directory.add root ~name (File.leader_name file))
  in
  add "Aaaa.";
  add "Bbbb.";
  add "Cccc.";
  let size_before = File.byte_length root in
  ignore (dir_ok "remove" (Directory.remove root "Bbbb."));
  add "Dddd.";
  (* Same-sized entry reuses the freed slot: the directory didn't grow. *)
  Alcotest.(check int) "slot reused" size_before (File.byte_length root);
  let names =
    List.map (fun e -> e.Directory.entry_name) (dir_ok "entries" (Directory.entries root))
  in
  Alcotest.(check (list string)) "live entries" [ "Aaaa."; "Dddd."; "Cccc." ] names

let test_directory_duplicate_rejected () =
  let _drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = file_ok "create" (File.create fs ~name:"Once.") in
  dir_ok "add" (Directory.add root ~name:"Once." (File.leader_name file));
  match Directory.add root ~name:"Once." (File.leader_name file) with
  | Ok () -> Alcotest.fail "duplicate entry accepted"
  | Error (Directory.Malformed _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Directory.pp_error e

let test_directory_graph () =
  (* Directories can form an arbitrary graph: a file in two directories,
     a subdirectory containing its parent. *)
  let _drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let sub = dir_ok "create sub" (Directory.create fs ~name:"Subdir.") in
  dir_ok "enter sub" (Directory.add root ~name:"Subdir." (File.leader_name sub));
  dir_ok "parent link" (Directory.add sub ~name:"Parent." (File.leader_name root));
  let file = file_ok "create" (File.create fs ~name:"Shared.") in
  dir_ok "in root" (Directory.add root ~name:"Shared." (File.leader_name file));
  dir_ok "in sub" (Directory.add sub ~name:"SharedToo." (File.leader_name file));
  let from_sub =
    match dir_ok "lookup" (Directory.lookup sub "SharedToo.") with
    | Some e -> e.Directory.entry_file
    | None -> Alcotest.fail "missing"
  in
  let via = file_ok "open via sub" (File.open_leader fs from_sub) in
  Alcotest.(check bool) "same file" true (File_id.equal (File.fid via) (File.fid file))

let test_update_address () =
  let _drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = file_ok "create" (File.create fs ~name:"Mov.") in
  dir_ok "add" (Directory.add root ~name:"Mov." (File.leader_name file));
  let fake = Disk_address.of_index 17 in
  Alcotest.(check bool) "updated" true
    (dir_ok "update" (Directory.update_address root "Mov." fake));
  match dir_ok "lookup" (Directory.lookup root "Mov.") with
  | Some e ->
      Alcotest.(check bool) "address changed" true
        (Disk_address.equal e.Directory.entry_file.Page.addr fake)
  | None -> Alcotest.fail "entry vanished"

let test_serial_counter_persists () =
  (* File ids must never repeat across a remount: the serial counter is
     part of the descriptor. *)
  let drive, fs = fresh_fs () in
  let f1 = file_ok "create" (File.create fs ~name:"A.") in
  (match Fs.flush fs with Ok () -> () | Error e -> Alcotest.failf "flush: %a" Fs.pp_error e);
  let fs' = match Fs.mount drive with Ok f -> f | Error m -> Alcotest.failf "%s" m in
  let f2 = file_ok "create after remount" (File.create fs' ~name:"B.") in
  Alcotest.(check bool) "ids distinct across remount" false
    (File_id.equal (File.fid f1) (File.fid f2));
  Alcotest.(check bool) "serial advanced" true
    ((File.fid f2).File_id.serial > (File.fid f1).File_id.serial)

let test_nonstandard_disk_geometry () =
  (* §5.2: "a program using a large non-standard disk … include[s] a
     package that implements only the disk object" and reuses every
     standard package. Here the non-standard disk is just a different
     shape; streams, directories and the scavenger neither know nor
     care. *)
  let geometry =
    {
      Geometry.diablo_31 with
      Geometry.model = "non-standard video disk";
      cylinders = 330;
      heads = 4;
      sectors_per_track = 10;
      rotation_us = 24_000;
    }
  in
  (match Geometry.validate geometry with
  | Ok () -> ()
  | Error e -> Alcotest.failf "geometry: %s" e);
  let drive = Drive.create ~pack_id:9 geometry in
  let fs = Fs.format drive in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = file_ok "create" (File.create fs ~name:"Big.dat") in
  file_ok "write" (File.write_bytes file ~pos:0 (lorem 4000));
  dir_ok "add" (Directory.add root ~name:"Big.dat" (File.leader_name file));
  let got = file_ok "read" (File.read_bytes file ~pos:0 ~len:4000) in
  Alcotest.(check string) "standard packages over a non-standard disk" (lorem 4000)
    (Bytes.to_string got);
  (* The shape is absolute data in the descriptor; a remount recovers it. *)
  (match Fs.mount drive with
  | Ok fs' -> Alcotest.(check bool) "shape round-trips" true (Geometry.equal (Fs.geometry fs') geometry)
  | Error m -> Alcotest.failf "mount: %s" m);
  match Alto_fs.Scavenger.scavenge drive with
  | Ok (_, report) ->
      Alcotest.(check int) "scavenger too" 0 report.Alto_fs.Scavenger.pages_lost
  | Error m -> Alcotest.failf "scavenge: %s" m

(* Property: random directory traffic matches an association-list
   model (names unique, order preserved for the survivors). *)
let prop_directory_matches_model =
  QCheck.Test.make ~name:"random directory ops match an assoc model" ~count:25
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 2) (int_bound 11)))
    (fun ops ->
      let drive = Drive.create ~pack_id:5 small_geometry in
      let fs = Fs.format drive in
      let root =
        match Directory.open_root fs with Ok r -> r | Error _ -> QCheck.assume_fail ()
      in
      (* A small pool of files to point entries at. *)
      let pool =
        Array.init 4 (fun i ->
            match File.create fs ~name:(Printf.sprintf "Pool%d." i) with
            | Ok f -> File.leader_name f
            | Error _ -> QCheck.assume_fail ())
      in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, k) ->
          if !ok then
            let name = Printf.sprintf "N%d." k in
            match op with
            | 0 -> (
                let fn = pool.(k mod Array.length pool) in
                match Directory.add root ~name fn with
                | Ok () ->
                    if List.mem_assoc name !model then ok := false
                    else model := !model @ [ (name, fn) ]
                | Error (Directory.Malformed _) ->
                    if not (List.mem_assoc name !model) then ok := false
                | Error _ -> ok := false)
            | 1 -> (
                match Directory.remove root name with
                | Ok removed ->
                    if removed <> List.mem_assoc name !model then ok := false
                    else model := List.remove_assoc name !model
                | Error _ -> ok := false)
            | _ -> (
                match Directory.lookup root name with
                | Ok (Some e) -> (
                    match List.assoc_opt name !model with
                    | Some fn ->
                        if
                          not
                            (File_id.equal e.Directory.entry_file.Page.abs.Page.fid
                               fn.Page.abs.Page.fid)
                        then ok := false
                    | None -> ok := false)
                | Ok None -> if List.mem_assoc name !model then ok := false
                | Error _ -> ok := false))
        ops;
      (* Final sweep: the live entries equal the model as a set (slot
         reuse reorders the file, so order is not insertion order). *)
      !ok
      &&
      match Directory.entries root with
      | Error _ -> false
      | Ok entries ->
          List.sort compare
            (List.map (fun (e : Directory.entry) -> e.Directory.entry_name) entries)
          = List.sort compare (List.map fst !model))

let suite =
  [
    ("format then mount", `Quick, test_format_then_mount);
    ("mount rejects unformatted", `Quick, test_mount_rejects_unformatted);
    ("mount rejects corrupt descriptor", `Quick, test_mount_rejects_corrupt_descriptor);
    ("boot page never allocated", `Quick, test_boot_page_never_allocated);
    ("allocate writes label+value", `Quick, test_allocate_writes_label_and_value);
    ("stale map hint survived", `Quick, test_stale_map_hint_is_survived);
    ("free writes ones", `Quick, test_free_page_writes_ones);
    ("free refuses wrong name", `Quick, test_free_page_refuses_wrong_name);
    ("disk full", `Quick, test_disk_full);
    ("create and reopen", `Quick, test_create_and_reopen);
    ("write/read roundtrip", `Quick, test_write_read_roundtrip);
    ("overwrite middle", `Quick, test_overwrite_middle);
    ("append grows", `Quick, test_append_grows);
    ("full page then append", `Quick, test_exactly_full_page_then_append);
    ("truncate", `Quick, test_truncate);
    ("delete reclaims", `Quick, test_delete_reclaims_everything);
    ("stale hint recovery", `Quick, test_stale_hint_recovery);
    ("leader dates", `Quick, test_leader_dates_advance);
    ("directory add/lookup/remove", `Quick, test_directory_add_lookup_remove);
    ("directory slot reuse", `Quick, test_directory_slot_reuse);
    ("directory duplicate rejected", `Quick, test_directory_duplicate_rejected);
    ("directory graph", `Quick, test_directory_graph);
    ("directory update address", `Quick, test_update_address);
    ("serial counter persists", `Quick, test_serial_counter_persists);
    ("non-standard disk geometry", `Quick, test_nonstandard_disk_geometry);
    QCheck_alcotest.to_alcotest ~verbose:false prop_directory_matches_model;
  ]

let () = Alcotest.run "alto_fs" [ ("fs", suite) ]
