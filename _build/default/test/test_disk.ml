(* Disk substrate: geometry, addresses, the controller's check/write
   semantics, and the rotational timing model the experiments rest on. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Fault = Alto_disk.Fault

let tiny = { Geometry.diablo_31 with Geometry.model = "tiny"; cylinders = 3 }

let make_drive ?(geometry = tiny) () = Drive.create ~pack_id:3 geometry

(* {2 geometry} *)

let test_capacity () =
  (* §2: each pack "can store 2.5 megabytes". *)
  let bytes = Geometry.capacity_bytes Geometry.diablo_31 in
  Alcotest.(check bool) "diablo 31 is ~2.5 MB" true
    (bytes > 2_400_000 && bytes < 2_600_000);
  Alcotest.(check int) "diablo 44 doubles it" (2 * bytes)
    (Geometry.capacity_bytes Geometry.diablo_44)

let test_transfer_rate () =
  (* §2: the drive "can transfer 64k words in about one second". One
     track of 12 sectors moves 3072 words per 40 ms revolution. *)
  let g = Geometry.diablo_31 in
  let words_per_rev = g.Geometry.sectors_per_track * Sector.value_words in
  let seconds_for_64k = 65536.0 /. float_of_int words_per_rev *. (float_of_int g.Geometry.rotation_us /. 1e6) in
  Alcotest.(check bool) "64k words in about a second" true
    (seconds_for_64k > 0.7 && seconds_for_64k < 1.3)

let test_geometry_words_roundtrip () =
  List.iter
    (fun g ->
      match Geometry.of_words (Geometry.to_words g) with
      | Ok g' -> Alcotest.(check bool) "roundtrip" true (Geometry.equal g g')
      | Error e -> Alcotest.fail e)
    [ Geometry.diablo_31; Geometry.diablo_44; tiny ]

let test_geometry_validate () =
  let bad = { Geometry.diablo_31 with Geometry.cylinders = 0 } in
  (match Geometry.validate bad with Error _ -> () | Ok () -> Alcotest.fail "accepted 0 cylinders");
  let too_big = { Geometry.diablo_31 with Geometry.cylinders = 10_000 } in
  match Geometry.validate too_big with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted a disk too big for 16-bit addresses"

let gen_geometry =
  QCheck.Gen.(
    map3
      (fun cylinders heads sectors ->
        {
          Geometry.diablo_31 with
          Geometry.model = "random";
          cylinders = 1 + cylinders;
          heads = 1 + heads;
          sectors_per_track = 1 + sectors;
        })
      (int_bound 100) (int_bound 7) (int_bound 23))

let prop_geometry_words_roundtrip =
  QCheck.Test.make ~name:"geometry word encoding roundtrips" ~count:200
    (QCheck.make ~print:(Format.asprintf "%a" Geometry.pp) gen_geometry)
    (fun g ->
      match Geometry.of_words (Geometry.to_words g) with
      | Ok g' -> Geometry.equal g g'
      | Error _ -> false)

let prop_chs_bijective =
  QCheck.Test.make ~name:"address<->chs is a bijection" ~count:100
    (QCheck.make ~print:(Format.asprintf "%a" Geometry.pp) gen_geometry)
    (fun g ->
      let n = Geometry.sector_count g in
      let seen = Hashtbl.create n in
      let ok = ref true in
      for i = 0 to min (n - 1) 499 do
        let a = Disk_address.of_index i in
        let cylinder, head, sector = Disk_address.chs g a in
        if Hashtbl.mem seen (cylinder, head, sector) then ok := false;
        Hashtbl.replace seen (cylinder, head, sector) ();
        if
          not
            (Disk_address.equal a (Disk_address.of_chs g ~cylinder ~head ~sector))
        then ok := false;
        if cylinder >= g.Geometry.cylinders || head >= g.Geometry.heads
           || sector >= g.Geometry.sectors_per_track
        then ok := false
      done;
      !ok)

(* {2 disk addresses} *)

let test_address_chs_roundtrip () =
  let g = tiny in
  for i = 0 to Geometry.sector_count g - 1 do
    let a = Disk_address.of_index i in
    let cylinder, head, sector = Disk_address.chs g a in
    let back = Disk_address.of_chs g ~cylinder ~head ~sector in
    Alcotest.(check bool) "chs roundtrip" true (Disk_address.equal a back)
  done

let test_address_nil () =
  Alcotest.(check bool) "nil is nil" true (Disk_address.is_nil Disk_address.nil);
  let w = Disk_address.to_word Disk_address.nil in
  Alcotest.(check bool) "nil word roundtrip" true
    (Disk_address.is_nil (Disk_address.of_word w));
  Alcotest.check_raises "to_index nil" (Invalid_argument "Disk_address.to_index: nil address")
    (fun () -> ignore (Disk_address.to_index Disk_address.nil))

let test_address_offset () =
  let a = Disk_address.of_index 10 in
  Alcotest.(check int) "offset" 15 (Disk_address.to_index (Disk_address.offset a 5));
  Alcotest.(check int) "negative offset" 5 (Disk_address.to_index (Disk_address.offset a (-5)))

(* {2 transfer semantics} *)

let addr i = Disk_address.of_index i

let label_buf () = Array.make Sector.label_words Word.zero
let value_buf () = Array.make Sector.value_words Word.zero

let write_sector drive a ~label ~value =
  match
    Drive.run drive a
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label ~value ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" Drive.pp_error e

let test_header_formatted () =
  let drive = make_drive () in
  let header = Array.make Sector.header_words Word.zero in
  (match
     Drive.run drive (addr 5)
       { Drive.op_none with header = Some Drive.Read }
       ~header ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "read: %a" Drive.pp_error e);
  Alcotest.(check int) "pack id" 3 (Word.to_int header.(0));
  Alcotest.(check int) "own address" 5 (Word.to_int header.(1))

let test_write_then_read () =
  let drive = make_drive () in
  let label = Array.init Sector.label_words (fun i -> Word.of_int (i + 1)) in
  let value = Array.init Sector.value_words (fun i -> Word.of_int (i * 3)) in
  write_sector drive (addr 2) ~label ~value;
  let lb = label_buf () and vb = value_buf () in
  (match
     Drive.run drive (addr 2)
       { Drive.op_none with label = Some Drive.Read; value = Some Drive.Read }
       ~label:lb ~value:vb ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "read: %a" Drive.pp_error e);
  Alcotest.(check bool) "label back" true (lb = label);
  Alcotest.(check bool) "value back" true (vb = value)

let test_check_wildcard_pattern_match () =
  let drive = make_drive () in
  let label = Array.init Sector.label_words (fun i -> Word.of_int (10 + i)) in
  write_sector drive (addr 1) ~label ~value:(value_buf ());
  (* Pattern: assert words 0 and 2, wildcard the rest. *)
  let pattern = label_buf () in
  pattern.(0) <- Word.of_int 10;
  pattern.(2) <- Word.of_int 12;
  (match
     Drive.run drive (addr 1)
       { Drive.op_none with label = Some Drive.Check }
       ~label:pattern ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "check: %a" Drive.pp_error e);
  (* §3.3: "If a memory word is 0, however, it is replaced by the
     corresponding disk word" — the wildcards now hold the label. *)
  Alcotest.(check bool) "wildcards filled" true (pattern = label)

let test_check_mismatch_aborts () =
  let drive = make_drive () in
  let label = Array.init Sector.label_words (fun i -> Word.of_int (10 + i)) in
  write_sector drive (addr 1) ~label ~value:(value_buf ());
  let pattern = label_buf () in
  pattern.(3) <- Word.of_int 999;
  let vb = Array.make Sector.value_words (Word.of_int 0xAAAA) in
  (match
     Drive.run drive (addr 1)
       { Drive.op_none with label = Some Drive.Check; value = Some Drive.Write }
       ~label:pattern ~value:vb ()
   with
  | Error (Drive.Check_mismatch { part = Sector.Label; offset = 3; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Drive.pp_error e
  | Ok () -> Alcotest.fail "check should have failed");
  (* The aborted write never touched the value. *)
  let back = value_buf () in
  (match
     Drive.run drive (addr 1)
       { Drive.op_none with value = Some Drive.Read }
       ~value:back ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "read: %a" Drive.pp_error e);
  Alcotest.(check int) "value untouched" 0 (Word.to_int back.(0))

let test_write_continuation_rule () =
  let drive = make_drive () in
  let expect_invalid op ~header ~label ~value =
    match Drive.run drive (addr 0) op ?header ?label ?value () with
    | exception Invalid_argument _ -> ()
    | Ok () | Error _ -> Alcotest.fail "op violating write continuation accepted"
  in
  (* label write without value write *)
  expect_invalid
    { Drive.op_none with label = Some Drive.Write }
    ~header:None ~label:(Some (label_buf ())) ~value:None;
  (* header write without the rest *)
  expect_invalid
    { Drive.op_none with header = Some Drive.Write; value = Some Drive.Write }
    ~header:(Some (Array.make Sector.header_words Word.zero))
    ~label:None ~value:(Some (value_buf ()))

let test_buffer_validation () =
  let drive = make_drive () in
  (match
     Drive.run drive (addr 0) { Drive.op_none with label = Some Drive.Read } ()
   with
  | exception Invalid_argument _ -> ()
  | Ok () | Error _ -> Alcotest.fail "missing buffer accepted");
  match
    Drive.run drive (addr 0)
      { Drive.op_none with label = Some Drive.Read }
      ~label:(Array.make 3 Word.zero) ()
  with
  | exception Invalid_argument _ -> ()
  | Ok () | Error _ -> Alcotest.fail "short buffer accepted"

let test_bad_sector () =
  let drive = make_drive () in
  Drive.set_bad drive (addr 4) true;
  match
    Drive.run drive (addr 4)
      { Drive.op_none with label = Some Drive.Read }
      ~label:(label_buf ()) ()
  with
  | Error Drive.Bad_sector -> ()
  | Ok () | Error _ -> Alcotest.fail "bad sector readable"

let test_stats_accumulate () =
  let drive = make_drive () in
  Drive.reset_stats drive;
  write_sector drive (addr 0) ~label:(label_buf ()) ~value:(value_buf ());
  let lb = label_buf () in
  ignore (Drive.run drive (addr 0) { Drive.op_none with label = Some Drive.Read } ~label:lb ());
  let s = Drive.stats drive in
  Alcotest.(check int) "operations" 2 s.Drive.operations;
  Alcotest.(check int) "words written" (Sector.label_words + Sector.value_words)
    s.Drive.words_written;
  Alcotest.(check int) "words read" Sector.label_words s.Drive.words_read

(* {2 timing model} *)

let elapsed drive f =
  let t0 = Sim_clock.now_us (Drive.clock drive) in
  f ();
  Sim_clock.now_us (Drive.clock drive) - t0

let read_value drive a =
  match
    Drive.run drive a { Drive.op_none with value = Some Drive.Read } ~value:(value_buf ()) ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "read: %a" Drive.pp_error e

let test_consecutive_sectors_stream () =
  (* Reading the 12 sectors of one track in order must take about one
     revolution: no rotational wait between consecutive sectors. *)
  let drive = make_drive () in
  read_value drive (addr 0);
  let t =
    elapsed drive (fun () ->
        for i = 1 to 11 do
          read_value drive (addr i)
        done)
  in
  Alcotest.(check int) "11 sectors, zero wait"
    (11 * Geometry.sector_time_us tiny)
    t

let test_same_sector_costs_a_revolution () =
  (* §3.3: re-touching the sector just passed costs a full turn — the
     price of allocate/free. *)
  let drive = make_drive () in
  read_value drive (addr 0);
  let t = elapsed drive (fun () -> read_value drive (addr 0)) in
  Alcotest.(check int) "one revolution" tiny.Geometry.rotation_us t

let test_seek_charged_once () =
  let drive = make_drive () in
  read_value drive (addr 0);
  Drive.reset_stats drive;
  (* Sector on the last cylinder: exactly one seek. *)
  let far = Geometry.sector_count tiny - 1 in
  read_value drive (addr far);
  let s = Drive.stats drive in
  Alcotest.(check int) "one seek" 1 s.Drive.seeks;
  let expected =
    Geometry.seek_time_us tiny ~from_cylinder:0 ~to_cylinder:(tiny.Geometry.cylinders - 1)
  in
  Alcotest.(check int) "seek time" expected s.Drive.seek_us;
  (* Same cylinder again: no more seeks. *)
  read_value drive (addr (far - 1));
  Alcotest.(check int) "still one seek" 1 (Drive.stats drive).Drive.seeks

(* {2 fault injection} *)

let test_fault_corrupt_and_decay () =
  let rng = Random.State.make [| 42 |] in
  let drive = make_drive () in
  let good = Array.init Sector.label_words (fun i -> Word.of_int (i + 1)) in
  write_sector drive (addr 1) ~label:good ~value:(value_buf ());
  Fault.corrupt_part rng drive (addr 1) Sector.Label;
  let now = (Drive.peek drive (addr 1)).Sector.label in
  Alcotest.(check bool) "label changed" false (now = good);
  let victims = Fault.decay rng drive ~fraction:0.5 in
  let n = List.length victims in
  let total = Drive.sector_count drive in
  Alcotest.(check bool) "roughly half decayed" true (n > total / 4 && n < 3 * total / 4)

let test_fault_flip_word () =
  let rng = Random.State.make [| 7 |] in
  let drive = make_drive () in
  let value = Array.make Sector.value_words (Word.of_int 0x5555) in
  write_sector drive (addr 2) ~label:(label_buf ()) ~value;
  Fault.flip_word rng drive (addr 2) Sector.Value;
  let after = (Drive.peek drive (addr 2)).Sector.value in
  let diffs = ref 0 in
  Array.iteri (fun i w -> if not (Word.equal w value.(i)) then incr diffs) after;
  Alcotest.(check int) "exactly one word differs" 1 !diffs

let () =
  Alcotest.run "alto_disk"
    [
      ( "geometry",
        [
          ("capacity", `Quick, test_capacity);
          ("transfer rate", `Quick, test_transfer_rate);
          ("word encoding roundtrip", `Quick, test_geometry_words_roundtrip);
          ("validation", `Quick, test_geometry_validate);
        ] );
      ( "address",
        [
          ("chs roundtrip", `Quick, test_address_chs_roundtrip);
          ("nil", `Quick, test_address_nil);
          ("offset arithmetic", `Quick, test_address_offset);
          QCheck_alcotest.to_alcotest ~verbose:false prop_geometry_words_roundtrip;
          QCheck_alcotest.to_alcotest ~verbose:false prop_chs_bijective;
        ] );
      ( "transfer",
        [
          ("header formatted", `Quick, test_header_formatted);
          ("write then read", `Quick, test_write_then_read);
          ("check is a pattern match", `Quick, test_check_wildcard_pattern_match);
          ("check mismatch aborts", `Quick, test_check_mismatch_aborts);
          ("write continuation rule", `Quick, test_write_continuation_rule);
          ("buffer validation", `Quick, test_buffer_validation);
          ("bad sector", `Quick, test_bad_sector);
          ("stats", `Quick, test_stats_accumulate);
        ] );
      ( "timing",
        [
          ("consecutive sectors stream", `Quick, test_consecutive_sectors_stream);
          ("same sector costs a revolution", `Quick, test_same_sector_costs_a_revolution);
          ("seek charged once", `Quick, test_seek_charged_once);
        ] );
      ( "faults",
        [
          ("corrupt and decay", `Quick, test_fault_corrupt_and_decay);
          ("flip word", `Quick, test_fault_flip_word);
        ] );
    ]
