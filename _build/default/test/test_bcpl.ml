(* The BCPL-flavoured compiler: programs compiled to code files and run
   through the loader under the full system — the "second programming
   environment" sharing the disk format and loader conventions. *)

module Vm = Alto_machine.Vm
module Asm = Alto_machine.Asm
module Geometry = Alto_disk.Geometry
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module System = Alto_os.System
module Loader = Alto_os.Loader
module Bcpl = Alto_bcpl.Bcpl

let small_geometry = { Geometry.diablo_31 with Geometry.model = "test"; cylinders = 40 }

let compile source =
  match Bcpl.compile ~origin:System.user_base source with
  | Ok program -> program
  | Error e -> Alcotest.failf "compile: %a" Bcpl.pp_error e

let run ?keyboard source =
  let system = System.boot ~geometry:small_geometry () in
  (match keyboard with
  | Some text -> Keyboard.feed (System.keyboard system) text
  | None -> ());
  let program = compile source in
  let file =
    match Loader.save_program system ~name:"Prog.run" program with
    | Ok f -> f
    | Error e -> Alcotest.failf "save: %a" Loader.pp_error e
  in
  match Loader.run ~fuel:5_000_000 system file with
  | Ok stop -> (stop, Display.contents (System.display system), system)
  | Error e -> Alcotest.failf "run: %a" Loader.pp_error e

let exits code source =
  let stop, _, system = run source in
  match stop with
  | Vm.Stopped c when c = code -> ()
  | Vm.Stopped c ->
      Alcotest.failf "exited %d, wanted %d (last error: %s)" c code
        (Option.value (System.last_error system) ~default:"none")
  | stop -> Alcotest.failf "did not exit cleanly: %a" Vm.pp_stop stop

let prints expected source =
  let stop, text, _ = run source in
  (match stop with
  | Vm.Stopped 0 -> ()
  | stop -> Alcotest.failf "did not exit 0: %a" Vm.pp_stop stop);
  Alcotest.(check string) "display" expected text

let rejects source =
  match Bcpl.compile ~origin:System.user_base source with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "compiled a bad program: %s" source

(* {2 expressions} *)

let test_arith () =
  exits 14 "let main() = 2 + 3 * 4;";
  exits 5 "let main() = (2 + 3 * 4) - 9;";
  exits 7 "let main() = 22 / 3;";
  exits 1 "let main() = 22 rem 3;";
  exits 12 "let main() = 0x0c;";
  exits 10 "let main() = 0o12;";
  exits 65 "let main() = 'A';";
  (* 16-bit wraparound. *)
  exits 0xffff "let main() = 0 - 1;";
  exits 0 "let main() = 0xffff + 1;"

let test_comparisons () =
  exits 1 "let main() = 3 < 4;";
  exits 0 "let main() = 4 < 3;";
  exits 1 "let main() = 4 > 3;";
  exits 1 "let main() = 3 <= 3;";
  exits 1 "let main() = 3 >= 3;";
  exits 0 "let main() = 3 # 3;";
  exits 1 "let main() = 3 = 3;";
  (* signed view *)
  exits 1 "let main() = (0 - 5) < 3;";
  exits 1 "let main() = true & (2 < 3);";
  exits 1 "let main() = false | (1 = 1);";
  exits 0 "let main() = false & (1 = 1);"

let test_unary () =
  exits 0xfffb "let main() = -5;";
  exits 3 "let main() = - - 3;"

(* {2 statements} *)

let test_globals_and_locals () =
  exits 42 "global counter = 40;\nlet main() be { counter := counter + 2; resultis counter; }";
  exits 9 "let main() be { let a = 4; let b = 5; resultis a + b; }";
  (* shadowing in an inner block *)
  exits 7 "let main() be { let a = 7; { let a = 100; a := 1; } resultis a; }";
  (* block locals vanish on exit, stack stays balanced *)
  exits 30
    "let main() be { let total = 0; let i = 0;\n\
     while i < 10 do { let twice = i * 2; total := total + twice; i := i + 1; }\n\
     resultis total - 60; }"

let test_while_sum () =
  exits 55
    "let main() be { let sum = 0; let i = 1;\n\
     while i <= 10 do { sum := sum + i; i := i + 1; }\n\
     resultis sum; }"

let test_if_else () =
  exits 1 "let main() be { if 3 < 4 then resultis 1; resultis 2; }";
  exits 2 "let main() be { if 4 < 3 then resultis 1; else resultis 2; }";
  exits 3
    "let main() be { let x = 10;\n\
     if x < 5 then resultis 1;\n\
     else if x < 8 then resultis 2;\n\
     else resultis 3; }"

let test_functions_and_recursion () =
  exits 55 "let fib(n) be { if n < 2 then resultis n; resultis fib(n-1) + fib(n-2); }\nlet main() = fib(10);";
  exits 120
    "let fact(n) be { if n <= 1 then resultis 1; resultis n * fact(n - 1); }\n\
     let main() = fact(5);";
  (* several arguments, order matters *)
  exits 2 "let sub(a, b) = a - b;\nlet main() = sub(5, 3);";
  (* nested calls *)
  exits 17 "let add(a, b) = a + b;\nlet main() = add(add(2, 5), add(4, 6));";
  (* forward reference *)
  exits 9 "let main() = later(3);\nlet later(x) = x * 3;";
  (* mutual recursion *)
  exits 1
    "let even(n) be { if n = 0 then resultis 1; resultis odd(n - 1); }\n\
     let odd(n) be { if n = 0 then resultis 0; resultis even(n - 1); }\n\
     let main() = even(10);"

let test_vectors_and_memory () =
  exits 30
    "vec v 10;\n\
     let main() be { let i = 0;\n\
     while i < 10 do { v!i := i; i := i + 1; }\n\
     resultis v!4 + v!5 + v!6 + v!7 + v!8; }";
  (* !p and @g *)
  exits 99 "global g = 0;\nlet main() be { let p = @g; !p := 99; resultis g; }";
  (* pointer arithmetic into a vector *)
  exits 5 "vec v 4;\nlet main() be { let p = v + 2; !p := 5; resultis v!2; }"

let test_for_loops () =
  exits 55
    "let main() be { let sum = 0; for i = 1 to 10 do sum := sum + i; resultis sum; }";
  (* the limit is evaluated once *)
  exits 6
    "global limit = 3;\n\
     let main() be { let n = 0;\n\
     for i = 1 to limit do { n := n + i; limit := 100; }\n\
     resultis n; }";
  (* nested, with locals in the body *)
  exits 18
    "let main() be { let acc = 0;\n\
     for i = 1 to 3 do for j = 1 to 3 do { let p = i + j; acc := acc + p - 2; }\n\
     resultis acc; }";
  (* an empty range runs zero times *)
  exits 0 "let main() be { let n = 0; for i = 5 to 4 do n := n + 1; resultis n; }"

let test_getbyte_putbyte () =
  (* read characters out of a packed string *)
  exits 104 "let main() = getbyte(\"hi\", 0) + getbyte(\"hi\", 1) - 'i';";
  (* modify a string in place: uppercase by clearing bit 5 *)
  prints "HELLO"
    "let main() be {\n\
     let s = \"hello\";\n\
     for i = 0 to !s - 1 do putbyte(s, i, getbyte(s, i) - 32);\n\
     writestring(s);\n\
     resultis 0; }";
  (* odd and even positions both survive a write to the other *)
  exits 1
    "let main() be {\n\
     let s = \"abcd\";\n\
     putbyte(s, 1, 'X');\n\
     resultis (getbyte(s, 0) = 'a') & (getbyte(s, 1) = 'X') & (getbyte(s, 2) = 'c');\n\
     }"

let test_switchon () =
  exits 32
    "let classify(c) be {\n\
     switchon c into {\n\
       case 'a': case 'e': case 'i': case 'o': case 'u': resultis 1;\n\
       case ' ': resultis 2;\n\
       default: resultis 0;\n\
     }\n\
     }\n\
     let main() be {\n\
     let s = \"it is so\";\n\
     let vowels = 0; let spaces = 0;\n\
     for i = 0 to !s - 1 do {\n\
       switchon classify(getbyte(s, i)) into {\n\
         case 1: vowels := vowels + 1;\n\
         case 2: spaces := spaces + 1;\n\
       }\n\
     }\n\
     resultis vowels * 10 + spaces - 2 + 2;\n\
     }";
  (* no fall-through; empty default *)
  exits 5
    "let main() be {\n\
     let r = 0;\n\
     switchon 2 into { case 1: r := 1; case 2: r := 5; case 3: r := 9; }\n\
     resultis r; }";
  (* unmatched value, no default: nothing happens *)
  exits 7 "let main() be { let r = 7; switchon 99 into { case 1: r := 0; } resultis r; }"

let test_standard_library () =
  (* writenum/newline/writeln link in on demand. *)
  prints "1984" "let main() be { writenum(1984); resultis 0; }";
  prints "0" "let main() be { writenum(0); resultis 0; }";
  prints "a\nb" "let main() be { writeln(\"a\"); writestring(\"b\"); resultis 0; }";
  (* ...and a user definition replaces the system's (openness). *)
  prints "mine"
    "let writenum(n) be { writestring(\"mine\"); }\n\
     let main() be { writenum(42); resultis 0; }"

let test_return_defaults () =
  exits 0 "let main() be { let x = 3; x := x + 1; }";
  exits 0 "let helper() be { return; }\nlet main() be { helper(); }"

(* {2 talking to the system} *)

let test_writes_to_display () =
  prints "hello" "let main() be { writestring(\"hello\"); resultis 0; }";
  prints "AB"
    "let main() be { writechar('A'); writechar('B'); resultis 0; }";
  prints "xyxy"
    "let twice(s) be { writestring(s); writestring(s); }\n\
     let main() be { twice(\"xy\"); resultis 0; }"

let test_reads_keyboard () =
  let stop, text, _ =
    run ~keyboard:"ok"
      "let main() be {\n\
       let c = readchar();\n\
       while c # 0xffff do { writechar(c); c := readchar(); }\n\
       resultis 0; }"
  in
  (match stop with Vm.Stopped 0 -> () | s -> Alcotest.failf "%a" Vm.pp_stop s);
  Alcotest.(check string) "echoed" "ok" text

let test_allocates_from_zone () =
  exits 11
    "let main() be {\n\
     let p = allocate(3);\n\
     p!0 := 5; p!1 := 6;\n\
     let sum = p!0 + p!1;\n\
     free(p);\n\
     resultis sum; }"

let test_file_io_in_bcpl () =
  (* The midday program from the integration test, in the high-level
     language this time. *)
  let stop, text, system =
    run
      "let main() be {\n\
       createfile(\"Out.txt\");\n\
       let h = openfile(\"Out.txt\", 1);\n\
       streamput(h, 'H'); streamput(h, 'I');\n\
       closestream(h);\n\
       let r = openfile(\"Out.txt\", 0);\n\
       let c = streamget(r);\n\
       while c # 0xffff do { writechar(c); c := streamget(r); }\n\
       closestream(r);\n\
       resultis 0; }"
  in
  (match stop with
  | Vm.Stopped 0 -> ()
  | s ->
      Alcotest.failf "%a (last error %s)" Vm.pp_stop s
        (Option.value (System.last_error system) ~default:"none"));
  Alcotest.(check string) "echoed through the file system" "HI" text

let test_string_layout_matches_services () =
  (* A string's length-prefixed layout can be walked by hand: words of
     two packed bytes after the length word. *)
  prints "7"
    "let main() be {\n\
     let s = \"sevench\";\n\
     writechar('0' + !s);\n\
     resultis 0; }"

let test_world_swap_from_bcpl () =
  (* The OutLoad double return, §4.1's coroutine linkage — written in
     the high-level language. The first run takes the "written" branch;
     the host revives the saved world and the same call returns again
     with false. *)
  let system = System.boot ~geometry:{ Geometry.diablo_31 with Geometry.model = "w"; cylinders = 80 } () in
  let root =
    match Alto_fs.Directory.open_root (System.fs system) with
    | Ok r -> r
    | Error _ -> Alcotest.fail "root"
  in
  let state =
    match
      Alto_world.Checkpoint.state_file (System.fs system) ~directory:root
        ~name:"B.state"
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "state: %a" Alto_world.Checkpoint.pp_error e
  in
  let handle = System.register_file system state in
  let source =
    Printf.sprintf
      "let main() be {\n\
       let written = outload(%d);\n\
       if written then { writechar('W'); resultis 0; }\n\
       writechar('R');\n\
       resultis 0; }"
      handle
  in
  let program = compile source in
  let file =
    match Loader.save_program system ~name:"Swap.run" program with
    | Ok f -> f
    | Error e -> Alcotest.failf "save: %a" Loader.pp_error e
  in
  (match Loader.run system file with
  | Ok (Vm.Stopped 0) -> ()
  | Ok stop -> Alcotest.failf "first run: %a" Vm.pp_stop stop
  | Error e -> Alcotest.failf "first run: %a" Loader.pp_error e);
  Alcotest.(check string) "written branch" "W" (Display.contents (System.display system));
  (Display.stream (System.display system)).Alto_streams.Stream.reset ();
  (match Alto_world.World.in_load (System.cpu system) state ~message:[||] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in_load: %a" Alto_world.World.pp_error e);
  (match Alto_machine.Vm.run ~fuel:1_000_000 (System.cpu system) ~handler:(System.handler system) with
  | Vm.Stopped 0 -> ()
  | stop -> Alcotest.failf "revived run: %a" Vm.pp_stop stop);
  Alcotest.(check string) "revived branch" "R" (Display.contents (System.display system))

let test_junta_from_bcpl () =
  (* A program evicts the display level out from under itself; the next
     writechar lands in a reclaimed region and stops the machine with
     the removed-service code. CounterJunta (level 1, always resident)
     would have brought it back — but this program wanted the memory. *)
  let stop, text, _ =
    run
      "let main() be {\n\
       writestring(\"before\");\n\
       junta(7);\n\
       writechar('X');\n\
       resultis 0; }"
  in
  Alcotest.(check string) "output up to the junta" "before" text;
  match stop with
  | Vm.Stopped code ->
      Alcotest.(check int) "stopped by the removed-service trap"
        Alto_os.Level.removed_trap_code code
  | stop -> Alcotest.failf "unexpected stop: %a" Vm.pp_stop stop

let test_return_address_in_message () =
  (* §4.1: "Often the message contains a return address, that is, the
     full name of a file to restore upon return. In the example above, a
     return address can be provided by copying myStateFN into
     messageToPartner before the InLoad call." Here program A passes its
     own world handle to B through the message area; B returns control
     by InLoading whatever it was handed — it never knew A's name. *)
  let system = System.boot ~geometry:{ Geometry.diablo_31 with Geometry.model = "m"; cylinders = 100 } () in
  let root =
    match Alto_fs.Directory.open_root (System.fs system) with
    | Ok r -> r
    | Error _ -> Alcotest.fail "root"
  in
  let state name =
    match Alto_world.Checkpoint.state_file (System.fs system) ~directory:root ~name with
    | Ok f -> f
    | Error e -> Alcotest.failf "state: %a" Alto_world.Checkpoint.pp_error e
  in
  let h_a = System.register_file system (state "A.state") in
  let h_b = System.register_file system (state "B.state") in
  let prog_b =
    (* Parks, then returns control to whoever is named in the message. *)
    Printf.sprintf
      "let main() be {\n\
       let w = outload(%d);\n\
       if w then exit(7);\n\
       let return_address = !16;\n\
       writestring(\"B:got-caller \");\n\
       inload(return_address);\n\
       }"
      h_b
  in
  let prog_a =
    Printf.sprintf
      "let main() be {\n\
       let w = outload(%d);\n\
       if w = 0 then { writestring(\"A:resumed\"); exit(0); }\n\
       !15 := 1;\n\
       !16 := %d;\n\
       writestring(\"A:calling \");\n\
       inload(%d);\n\
       }"
      h_a h_a h_b
  in
  let save name source =
    match Loader.save_program system ~name (compile source) with
    | Ok f -> f
    | Error e -> Alcotest.failf "save: %a" Loader.pp_error e
  in
  let file_b = save "B.run" prog_b in
  let file_a = save "A.run" prog_a in
  (match Loader.run system file_b with
  | Ok (Vm.Stopped 7) -> ()
  | Ok stop -> Alcotest.failf "park: %a" Vm.pp_stop stop
  | Error e -> Alcotest.failf "park: %a" Loader.pp_error e);
  (match Loader.run ~fuel:20_000_000 system file_a with
  | Ok (Vm.Stopped 0) -> ()
  | Ok stop ->
      Alcotest.failf "run: %a (last error %s)" Vm.pp_stop stop
        (Option.value (System.last_error system) ~default:"none")
  | Error e -> Alcotest.failf "run: %a" Loader.pp_error e);
  Alcotest.(check string) "control went A -> B -> A via the message"
    "A:calling B:got-caller A:resumed"
    (Display.contents (System.display system))

(* {2 the two environments share one disk} *)

let test_bcpl_and_asm_interoperate () =
  let system = System.boot ~geometry:small_geometry () in
  (* An assembler program writes a file... *)
  let asm_program =
    Asm.assemble_exn ~origin:System.user_base
      [
        Asm.Label "start";
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "fname" ]);
        Asm.Op ("JSR", [ Asm.Ext "CreateFile" ]);
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "fname" ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 1 ]);
        Asm.Op ("JSR", [ Asm.Ext "OpenFile" ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 33 ]);
        Asm.Op ("JSR", [ Asm.Ext "StreamPut" ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 0 ]) (* close needs the handle back *);
        (* handle still in AC0 after StreamPut? StreamPut preserves AC0. *)
        Asm.Op ("JSR", [ Asm.Ext "CloseStream" ]);
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
        Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
        Asm.Label "fname";
        Asm.String_data "Mail.txt";
      ]
  in
  (match Loader.save_program system ~name:"Writer.run" asm_program with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save asm: %a" Loader.pp_error e);
  (* ...and a BCPL program reads it back. Two compilers, one format. *)
  let bcpl_program =
    compile
      "let main() be {\n\
       let h = openfile(\"Mail.txt\", 0);\n\
       let c = streamget(h);\n\
       while c # 0xffff do { writechar(c); c := streamget(h); }\n\
       resultis 0; }"
  in
  (match Loader.save_program system ~name:"Reader.run" bcpl_program with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save bcpl: %a" Loader.pp_error e);
  (match Loader.run_by_name system "Writer.run" with
  | Ok (Vm.Stopped 0) -> ()
  | Ok stop -> Alcotest.failf "writer: %a" Vm.pp_stop stop
  | Error e -> Alcotest.failf "writer: %a" Loader.pp_error e);
  (match Loader.run_by_name system "Reader.run" with
  | Ok (Vm.Stopped 0) -> ()
  | Ok stop -> Alcotest.failf "reader: %a" Vm.pp_stop stop
  | Error e -> Alcotest.failf "reader: %a" Loader.pp_error e);
  Alcotest.(check string) "cross-language file" "!" (Display.contents (System.display system))

(* {2 differential property: random expressions vs a host evaluator} *)

type pexpr =
  | P_num of int
  | P_x
  | P_y
  | P_bin of string * pexpr * pexpr
  | P_neg of pexpr

let rec render = function
  | P_num n -> string_of_int n
  | P_x -> "x"
  | P_y -> "y"
  | P_bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (render a) op (render b)
  | P_neg a -> Printf.sprintf "(- %s)" (render a)

(* The reference semantics: everything mod 2^16; comparisons look at the
   sign bit of the 16-bit difference, exactly as the compiled code does. *)
let rec eval ~x ~y e =
  let m v = v land 0xffff in
  let negative v = v land 0x8000 <> 0 in
  match e with
  | P_num n -> m n
  | P_x -> m x
  | P_y -> m y
  | P_neg a -> m (-eval ~x ~y a)
  | P_bin (op, a, b) -> (
      let va = eval ~x ~y a and vb = eval ~x ~y b in
      match op with
      | "+" -> m (va + vb)
      | "-" -> m (va - vb)
      | "*" -> m (va * vb)
      | "/" -> if vb = 0 then 0 else va / vb
      | "rem" -> if vb = 0 then 0 else va mod vb
      | "&" -> va land vb
      | "|" -> va lor vb
      | "=" -> if va = vb then 1 else 0
      | "#" -> if va <> vb then 1 else 0
      | "<" -> if negative (m (va - vb)) then 1 else 0
      | ">" -> if negative (m (vb - va)) then 1 else 0
      | "<=" -> if negative (m (vb - va)) then 0 else 1
      | ">=" -> if negative (m (va - vb)) then 0 else 1
      | _ -> assert false)

(* Division by zero faults in the machine (correctly), so generated
   divisors are nonzero constants. *)
let gen_pexpr =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self size ->
            let leaf =
              oneof [ map (fun n -> P_num n) (int_bound 0xffff); return P_x; return P_y ]
            in
            if size <= 1 then leaf
            else
              frequency
                [
                  (1, leaf);
                  ( 6,
                    oneofl [ "+"; "-"; "*"; "&"; "|"; "="; "#"; "<"; ">"; "<="; ">=" ]
                    >>= fun op ->
                    map2 (fun a b -> P_bin (op, a, b)) (self (size / 2)) (self (size / 2)) );
                  ( 2,
                    oneofl [ "/"; "rem" ] >>= fun op ->
                    map2
                      (fun a d -> P_bin (op, a, P_num (1 + d)))
                      (self (size / 2))
                      (int_bound 0xfffe) );
                  (1, map (fun a -> P_neg a) (self (size - 1)));
                ])
          (min size 12)))

let prop_compiled_expressions_agree =
  QCheck.Test.make ~name:"compiled expressions match the reference semantics" ~count:60
    (QCheck.make
       ~print:(fun (e, x, y) -> Printf.sprintf "x=%d y=%d %s" x y (render e))
       QCheck.Gen.(triple gen_pexpr (int_bound 0xffff) (int_bound 0xffff)))
    (fun (e, x, y) ->
      let source =
        Printf.sprintf "let main() be { let x = %d; let y = %d; resultis %s; }" x y
          (render e)
      in
      let stop, _, _ = run source in
      match stop with
      | Vm.Stopped got -> got = eval ~x ~y e
      | _ -> false)

(* {2 rejected programs} *)

let test_rejections () =
  rejects "let main() = x;" (* unknown name *);
  rejects "let main() = f(1);" (* unknown function *);
  rejects "let f(a) = a;\nlet main() = f(1, 2);" (* arity *);
  rejects "let f() = 1;" (* no main *);
  rejects "global g = 1;\nglobal g = 2;\nlet main() = 0;" (* duplicate *);
  rejects "let main(x) = x;" (* main with arguments *);
  rejects "let main() = 1 +;" (* syntax *);
  rejects "let main() = 'unterminated;" (* lexical *);
  rejects "let main() be { 3 := 4; }" (* not an lvalue *);
  rejects "vec v 3;\nlet main() be { v := 1; }" (* vector not assignable *);
  rejects "let main() = 99999;" (* literal too wide *);
  rejects "let f() = f;\nlet main() = 0;" (* function as value *)

let test_deep_recursion_is_fine () =
  (* 200 frames: the stack discipline holds up. *)
  exits 200
    "let count(n) be { if n = 0 then resultis 0; resultis 1 + count(n - 1); }\n\
     let main() = count(200);"

let () =
  Alcotest.run "alto_bcpl"
    [
      ( "expressions",
        [
          ("arithmetic", `Quick, test_arith);
          ("comparisons", `Quick, test_comparisons);
          ("unary", `Quick, test_unary);
        ] );
      ( "statements",
        [
          ("globals and locals", `Quick, test_globals_and_locals);
          ("while", `Quick, test_while_sum);
          ("if/else", `Quick, test_if_else);
          ("functions and recursion", `Quick, test_functions_and_recursion);
          ("vectors and memory", `Quick, test_vectors_and_memory);
          ("for loops", `Quick, test_for_loops);
          ("getbyte/putbyte", `Quick, test_getbyte_putbyte);
          ("switchon", `Quick, test_switchon);
          ("standard library", `Quick, test_standard_library);
          ("return defaults", `Quick, test_return_defaults);
          ("deep recursion", `Quick, test_deep_recursion_is_fine);
        ] );
      ( "system services",
        [
          ("display", `Quick, test_writes_to_display);
          ("keyboard", `Quick, test_reads_keyboard);
          ("zone allocation", `Quick, test_allocates_from_zone);
          ("file IO", `Quick, test_file_io_in_bcpl);
          ("string layout", `Quick, test_string_layout_matches_services);
        ] );
      ( "environments",
        [
          ("asm and BCPL share the disk", `Quick, test_bcpl_and_asm_interoperate);
          ("world swap from BCPL", `Quick, test_world_swap_from_bcpl);
          ("return address in the message", `Quick, test_return_address_in_message);
          ("junta from a program", `Quick, test_junta_from_bcpl);
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest ~verbose:false prop_compiled_expressions_agree ] );
      ("rejections", [ ("bad programs rejected", `Quick, test_rejections) ]);
    ]
