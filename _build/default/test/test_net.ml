(* The simulated network: packets, queues, latency, file transfer. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Net = Alto_net.Net

let words s = Word.words_of_string s

let test_send_receive () =
  let net = Net.create () in
  let a = Net.attach net ~name:"alice" in
  let b = Net.attach net ~name:"bob" in
  (match Net.send a ~to_:"bob" (words "hi") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %a" Net.pp_error e);
  Alcotest.(check int) "queued" 1 (Net.pending b);
  (match Net.receive b with
  | Some p ->
      Alcotest.(check string) "source" "alice" p.Net.src;
      Alcotest.(check string) "payload" "hi"
        (Word.string_of_words p.Net.payload ~len:2)
  | None -> Alcotest.fail "nothing received");
  Alcotest.(check bool) "empty" true (Net.receive b = None)

let test_unknown_station () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  match Net.send a ~to_:"nobody" [||] with
  | Error (Net.Unknown_station "nobody") -> ()
  | Ok () | Error _ -> Alcotest.fail "send to nobody must fail"

let test_duplicate_station () =
  let net = Net.create () in
  let _ = Net.attach net ~name:"x" in
  match Net.attach net ~name:"x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate name accepted"

let test_payload_limit () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let _ = Net.attach net ~name:"b" in
  match Net.send a ~to_:"b" (Array.make 257 Word.zero) with
  | Error Net.Payload_too_long -> ()
  | Ok () | Error _ -> Alcotest.fail "oversized payload accepted"

let test_latency_charged () =
  let clock = Sim_clock.create () in
  let net = Net.create ~clock ~latency_us:1000 () in
  let a = Net.attach net ~name:"a" in
  let _ = Net.attach net ~name:"b" in
  for _ = 1 to 5 do
    ignore (Net.send a ~to_:"b" [| Word.one |])
  done;
  Alcotest.(check int) "5 packets x 1ms" 5000 (Sim_clock.now_us clock)

let test_file_transfer () =
  let net = Net.create () in
  let a = Net.attach net ~name:"client" in
  let b = Net.attach net ~name:"printer" in
  let body = String.init 2000 (fun i -> Char.chr (32 + (i mod 90))) in
  (match Net.send_file a ~to_:"printer" ~name:"Report.press" body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send_file: %a" Net.pp_error e);
  (match Net.receive_file b with
  | Some (name, contents) ->
      Alcotest.(check string) "name" "Report.press" name;
      Alcotest.(check string) "contents" body contents
  | None -> Alcotest.fail "file not reassembled");
  Alcotest.(check bool) "queue drained" true (Net.receive_file b = None)

let test_file_transfer_odd_length () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  ignore (Net.send_file a ~to_:"b" ~name:"Odd." "xyz");
  match Net.receive_file b with
  | Some (_, contents) -> Alcotest.(check string) "odd bytes survive" "xyz" contents
  | None -> Alcotest.fail "file lost"

let test_interleaved_files () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  ignore (Net.send_file a ~to_:"b" ~name:"One." "first");
  ignore (Net.send_file a ~to_:"b" ~name:"Two." "second");
  (match Net.receive_file b with
  | Some (name, c) ->
      Alcotest.(check string) "first file" "One." name;
      Alcotest.(check string) "first body" "first" c
  | None -> Alcotest.fail "first file lost");
  match Net.receive_file b with
  | Some (name, _) -> Alcotest.(check string) "second file" "Two." name
  | None -> Alcotest.fail "second file lost"

let test_incomplete_file_waits () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  (* Header but no trailer yet. *)
  ignore (Net.send a ~to_:"b" (Array.append [| Word.of_int 1; Word.of_int 2 |] (words "F.")));
  Alcotest.(check bool) "not ready" true (Net.receive_file b = None);
  ignore (Net.send a ~to_:"b" [| Word.of_int 3 |]);
  match Net.receive_file b with
  | Some (name, "") -> Alcotest.(check string) "complete now" "F." name
  | Some _ | None -> Alcotest.fail "completion not detected"

let () =
  Alcotest.run "alto_net"
    [
      ( "packets",
        [
          ("send/receive", `Quick, test_send_receive);
          ("unknown station", `Quick, test_unknown_station);
          ("duplicate station", `Quick, test_duplicate_station);
          ("payload limit", `Quick, test_payload_limit);
          ("latency charged", `Quick, test_latency_charged);
        ] );
      ( "files",
        [
          ("transfer", `Quick, test_file_transfer);
          ("odd length", `Quick, test_file_transfer_odd_length);
          ("interleaved", `Quick, test_interleaved_files);
          ("incomplete waits", `Quick, test_incomplete_file_waits);
        ] );
    ]
