(* Zones: the free-storage objects, including survival across a memory
   image snapshot/restore (the world-swap property). *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Zone = Alto_zones.Zone

let make_zone ?(pos = 1000) ?(len = 500) () =
  let memory = Memory.create () in
  (memory, Zone.format ~name:"test" memory ~pos ~len)

let test_allocate_release () =
  let _m, z = make_zone () in
  let a = Zone.allocate z 10 in
  let b = Zone.allocate z 20 in
  Alcotest.(check bool) "disjoint" true (b >= a + 10 || a >= b + 20);
  Alcotest.(check int) "block size" 10 (Zone.block_size z a);
  Zone.release z a;
  Zone.release z b;
  let s = Zone.stats z in
  Alcotest.(check int) "no live blocks" 0 s.Zone.live_blocks;
  Alcotest.(check int) "coalesced back to one block" 1 s.Zone.free_blocks

let test_contents_are_usable_memory () =
  let m, z = make_zone () in
  let a = Zone.allocate z 4 in
  Memory.write m a (Word.of_int 111);
  Memory.write m (a + 3) (Word.of_int 222);
  Alcotest.(check int) "word 0" 111 (Word.to_int (Memory.read m a));
  Alcotest.(check int) "word 3" 222 (Word.to_int (Memory.read m (a + 3)))

let test_out_of_space () =
  let _m, z = make_zone ~len:50 () in
  match Zone.allocate z 100 with
  | exception Zone.Out_of_space _ -> ()
  | _ -> Alcotest.fail "allocated beyond the region"

let test_exhaust_then_recover () =
  let _m, z = make_zone ~len:100 () in
  let rec grab acc =
    match Zone.allocate z 8 with
    | a -> grab (a :: acc)
    | exception Zone.Out_of_space _ -> acc
  in
  let blocks = grab [] in
  Alcotest.(check bool) "several blocks" true (List.length blocks >= 8);
  List.iter (Zone.release z) blocks;
  let s = Zone.stats z in
  Alcotest.(check int) "all free again" 1 s.Zone.free_blocks;
  (* The whole region minus descriptor minus one block header is again
     allocatable. *)
  let big = Zone.allocate z s.Zone.largest_free in
  Alcotest.(check bool) "largest_free honest" true (big > 0)

let test_coalescing_order_independent () =
  let _m, z = make_zone () in
  let a = Zone.allocate z 10 in
  let b = Zone.allocate z 10 in
  let c = Zone.allocate z 10 in
  (* Release middle, then ends: must coalesce into one block. *)
  Zone.release z b;
  Zone.release z a;
  Zone.release z c;
  Alcotest.(check int) "one free block" 1 (Zone.stats z).Zone.free_blocks

let test_double_free_detected () =
  let _m, z = make_zone () in
  let a = Zone.allocate z 10 in
  Zone.release z a;
  match Zone.release z a with
  | exception Zone.Corrupt _ -> ()
  | () -> Alcotest.fail "double free accepted"

let test_attach_after_restore () =
  (* A zone lives entirely inside the memory image, so it survives a
     snapshot/restore — the InLoad/OutLoad property. *)
  let m, z = make_zone () in
  let a = Zone.allocate z 12 in
  Memory.write m a (Word.of_int 77);
  let snapshot = Memory.copy m in
  (* Wreck the live memory, then restore the snapshot. *)
  Memory.fill m ~pos:1000 ~len:500 (Word.of_int 0xDEAD);
  Memory.restore m ~from:snapshot;
  let z' = Zone.attach m ~pos:1000 in
  Alcotest.(check int) "heap intact" 77 (Word.to_int (Memory.read m a));
  Alcotest.(check int) "live blocks remembered" 1 (Zone.stats z').Zone.live_blocks;
  Zone.release z' a;
  Alcotest.(check int) "release works after re-attach" 0 (Zone.stats z').Zone.live_blocks

let test_attach_rejects_garbage () =
  let m = Memory.create () in
  match Zone.attach m ~pos:3000 with
  | exception Zone.Corrupt _ -> ()
  | _ -> Alcotest.fail "attached to garbage"

let test_corruption_detected_by_check () =
  let m, z = make_zone () in
  let _a = Zone.allocate z 10 in
  (* An errant program tramples the descriptor. *)
  Memory.write m 1000 (Word.of_int 0);
  match Zone.check z with
  | exception Zone.Corrupt _ -> ()
  | () -> Alcotest.fail "trampled descriptor passed check"

let test_obj_interface () =
  let _m, z = make_zone () in
  let obj = Zone.obj z in
  let a = obj.Zone.obj_allocate 5 in
  obj.Zone.obj_release a;
  Alcotest.(check int) "through the object" 0 (Zone.stats z).Zone.live_blocks

let test_invalid_sizes () =
  let _m, z = make_zone () in
  Alcotest.check_raises "zero words" (Invalid_argument "Zone.allocate: size must be >= 1")
    (fun () -> ignore (Zone.allocate z 0))

(* Property: random allocate/release sequences never corrupt the zone,
   and free space is conserved. *)
let prop_random_traffic =
  QCheck.Test.make ~name:"random allocate/release traffic" ~count:50
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 1 30))
    (fun sizes ->
      let memory = Memory.create () in
      let z = Zone.format memory ~pos:100 ~len:2000 in
      let initial_free = (Zone.stats z).Zone.free_words in
      let live = ref [] in
      List.iteri
        (fun i size ->
          if i mod 3 = 2 then (
            match !live with
            | a :: rest ->
                Zone.release z a;
                live := rest
            | [] -> ())
          else
            match Zone.allocate z size with
            | a -> live := !live @ [ a ]
            | exception Zone.Out_of_space _ -> ())
        sizes;
      Zone.check z;
      List.iter (Zone.release z) !live;
      Zone.check z;
      (Zone.stats z).Zone.free_words = initial_free
      && (Zone.stats z).Zone.live_blocks = 0)

let () =
  Alcotest.run "alto_zones"
    [
      ( "zone",
        [
          ("allocate/release", `Quick, test_allocate_release);
          ("usable memory", `Quick, test_contents_are_usable_memory);
          ("out of space", `Quick, test_out_of_space);
          ("exhaust then recover", `Quick, test_exhaust_then_recover);
          ("coalescing", `Quick, test_coalescing_order_independent);
          ("double free detected", `Quick, test_double_free_detected);
          ("attach after restore", `Quick, test_attach_after_restore);
          ("attach rejects garbage", `Quick, test_attach_rejects_garbage);
          ("check finds corruption", `Quick, test_corruption_detected_by_check);
          ("object interface", `Quick, test_obj_interface);
          ("invalid sizes", `Quick, test_invalid_sizes);
          QCheck_alcotest.to_alcotest ~verbose:false prop_random_traffic;
        ] );
    ]
