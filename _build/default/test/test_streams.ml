(* Streams: the abstract object, memory streams, buffered disk streams,
   keyboard type-ahead and the display. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Zone = Alto_zones.Zone
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Stream = Alto_streams.Stream
module Memory_stream = Alto_streams.Memory_stream
module Disk_stream = Alto_streams.Disk_stream
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display

let small_geometry = { Geometry.diablo_31 with Geometry.model = "test"; cylinders = 20 }

let fresh_file () =
  let drive = Drive.create ~pack_id:7 small_geometry in
  let fs = Fs.format drive in
  match File.create fs ~name:"Stream.test" with
  | Ok f -> (fs, f)
  | Error e -> Alcotest.failf "create: %a" File.pp_error e

(* {2 the abstract object} *)

let test_missing_operations_raise () =
  let s = Stream.make "hollow" in
  (match s.Stream.get () with
  | exception Stream.Not_supported { operation = "get"; _ } -> ()
  | _ -> Alcotest.fail "get should be unsupported");
  (match s.Stream.put 0 with
  | exception Stream.Not_supported { operation = "put"; _ } -> ()
  | _ -> Alcotest.fail "put should be unsupported");
  (* reset/close default to harmless no-ops. *)
  s.Stream.reset ();
  s.Stream.close ();
  Alcotest.(check bool) "at_end defaults false" false (s.Stream.at_end ())

let test_user_replaces_operations () =
  (* The open-system move: take a standard stream and substitute one
     operation — here an upper-casing put on a buffer stream. *)
  let base, contents = Memory_stream.buffer () in
  let shouting =
    { base with Stream.put = (fun c -> base.Stream.put (Char.code (Char.uppercase_ascii (Char.chr c)))) }
  in
  Stream.put_string shouting "quietly";
  Alcotest.(check string) "operation substituted" "QUIETLY" (contents ())

let test_helpers () =
  let s = Memory_stream.of_string "one\ntwo\nthree" in
  Alcotest.(check (option string)) "line 1" (Some "one") (Stream.get_line s);
  Alcotest.(check (option string)) "line 2" (Some "two") (Stream.get_line s);
  Alcotest.(check (option string)) "line 3" (Some "three") (Stream.get_line s);
  Alcotest.(check (option string)) "eof" None (Stream.get_line s);
  s.Stream.reset ();
  Alcotest.(check string) "get_all" "one\ntwo\nthree" (Stream.get_all s);
  s.Stream.reset ();
  Alcotest.(check string) "get_string" "one\nt" (Stream.get_string s 5)

let test_copy () =
  let src = Memory_stream.of_string "pump me" in
  let dst, contents = Memory_stream.buffer () in
  let n = Stream.copy ~src ~dst in
  Alcotest.(check int) "count" 7 n;
  Alcotest.(check string) "copied" "pump me" (contents ())

(* {2 memory region streams} *)

let test_region_stream () =
  let memory = Memory.create () in
  let s = Memory_stream.on_region memory ~pos:100 ~len:4 in
  s.Stream.put 11;
  s.Stream.put 22;
  Alcotest.(check int) "written through" 22 (Word.to_int (Memory.read memory 101));
  ignore (s.Stream.control "set-position" 0);
  Alcotest.(check (option int)) "read back" (Some 11) (s.Stream.get ());
  ignore (s.Stream.control "set-position" 4);
  Alcotest.(check bool) "at end" true (s.Stream.at_end ());
  Alcotest.(check (option int)) "get past end" None (s.Stream.get ());
  match s.Stream.put 1 with
  | exception Stream.Closed _ -> ()
  | () -> Alcotest.fail "put past end must fail"

(* {2 disk streams} *)

let test_disk_stream_write_read () =
  let _fs, file = fresh_file () in
  let s = Disk_stream.open_file ~mode:Disk_stream.Read_write file in
  Stream.put_string s "alpha beta gamma";
  ignore (s.Stream.control "flush" 0);
  Alcotest.(check int) "length" 16 (s.Stream.control "length" 0);
  ignore (s.Stream.control "set-position" 6);
  Alcotest.(check string) "mid read" "beta" (Stream.get_string s 4);
  s.Stream.close ();
  Alcotest.(check int) "persisted" 16 (File.byte_length file)

let test_disk_stream_spans_pages () =
  let _fs, file = fresh_file () in
  let s = Disk_stream.open_file ~mode:Disk_stream.Read_write file in
  let text = String.init 1500 (fun i -> Char.chr (65 + (i mod 26))) in
  Stream.put_string s text;
  s.Stream.reset ();
  Alcotest.(check string) "round trip across pages" text (Stream.get_all s);
  s.Stream.close ();
  Alcotest.(check int) "three pages" 3 (File.last_page file)

let test_disk_stream_overwrite () =
  let _fs, file = fresh_file () in
  let s = Disk_stream.open_file ~mode:Disk_stream.Read_write file in
  Stream.put_string s (String.make 600 'x');
  ignore (s.Stream.control "set-position" 510);
  Stream.put_string s "BRIDGE";
  s.Stream.reset ();
  let all = Stream.get_all s in
  Alcotest.(check string) "straddles the page boundary" "BRIDGE" (String.sub all 510 6);
  Alcotest.(check int) "length unchanged" 600 (String.length all);
  s.Stream.close ()

let test_disk_stream_truncate_control () =
  let _fs, file = fresh_file () in
  let s = Disk_stream.open_file ~mode:Disk_stream.Read_write file in
  Stream.put_string s (String.make 1000 'y');
  ignore (s.Stream.control "flush" 0);
  ignore (s.Stream.control "truncate" 100);
  Alcotest.(check int) "shorter" 100 (s.Stream.control "length" 0);
  s.Stream.close ();
  Alcotest.(check int) "on disk too" 100 (File.byte_length file)

let test_disk_stream_modes () =
  let _fs, file = fresh_file () in
  let w = Disk_stream.open_file ~mode:Disk_stream.Write_only file in
  (match w.Stream.get () with
  | exception Stream.Not_supported _ -> ()
  | _ -> Alcotest.fail "write-only stream must not read");
  Stream.put_string w "data";
  w.Stream.close ();
  let r = Disk_stream.open_file ~mode:Disk_stream.Read_only file in
  (match r.Stream.put 0 with
  | exception Stream.Not_supported _ -> ()
  | _ -> Alcotest.fail "read-only stream must not write");
  Alcotest.(check string) "reads" "data" (Stream.get_all r);
  r.Stream.close ()

let test_disk_stream_closed () =
  let _fs, file = fresh_file () in
  let s = Disk_stream.open_file ~mode:Disk_stream.Read_write file in
  s.Stream.close ();
  s.Stream.close () (* idempotent *);
  match s.Stream.get () with
  | exception Stream.Closed _ -> ()
  | _ -> Alcotest.fail "closed stream must not read"

let test_disk_stream_zone_workspace () =
  (* The page buffer lives in a zone in the simulated memory; closing
     releases it. *)
  let _fs, file = fresh_file () in
  let memory = Memory.create () in
  let zone = Zone.format memory ~pos:2000 ~len:600 in
  let s =
    Disk_stream.open_file ~workspace:(memory, Zone.obj zone)
      ~mode:Disk_stream.Read_write file
  in
  Alcotest.(check int) "buffer allocated" 1 (Zone.stats zone).Zone.live_blocks;
  Stream.put_string s "through simulated memory";
  s.Stream.reset ();
  Alcotest.(check string) "works" "through simulated memory" (Stream.get_all s);
  s.Stream.close ();
  Alcotest.(check int) "buffer released" 0 (Zone.stats zone).Zone.live_blocks

(* Property: random stream traffic against a byte-buffer model. *)
let prop_disk_stream_matches_model =
  QCheck.Test.make ~name:"random disk-stream ops match a buffer model" ~count:25
    QCheck.(list_of_size Gen.(1 -- 80) (pair (int_bound 3) (int_bound 1500)))
    (fun ops ->
      let _fs, file = fresh_file () in
      let s = Disk_stream.open_file ~mode:Disk_stream.Read_write file in
      let model = Buffer.create 256 in
      let pos = ref 0 in
      let ok = ref true in
      List.iteri
        (fun step (op, arg) ->
          if !ok then
            match op with
            | 0 ->
                (* put one byte at the shared position *)
                let b = 32 + (step mod 90) in
                if !pos <= Buffer.length model then begin
                  s.Stream.put b;
                  let text = Buffer.contents model in
                  let text =
                    if !pos < String.length text then
                      String.mapi (fun i c -> if i = !pos then Char.chr b else c) text
                    else text ^ String.make 1 (Char.chr b)
                  in
                  Buffer.clear model;
                  Buffer.add_string model text;
                  incr pos
                end
            | 1 -> (
                (* get one byte *)
                match s.Stream.get () with
                | Some b ->
                    if
                      !pos >= Buffer.length model
                      || Char.code (Buffer.nth model !pos) <> b
                    then ok := false
                    else incr pos
                | None -> if !pos < Buffer.length model then ok := false)
            | 2 ->
                (* seek somewhere valid *)
                let target = if Buffer.length model = 0 then 0 else arg mod (Buffer.length model + 1) in
                ignore (s.Stream.control "set-position" target);
                pos := target
            | _ ->
                (* length must agree *)
                if s.Stream.control "length" 0 <> Buffer.length model then ok := false)
        ops;
      (* Close, reopen read-only, compare everything. *)
      s.Stream.close ();
      let r = Disk_stream.open_file ~mode:Disk_stream.Read_only file in
      let everything = Stream.get_all r in
      r.Stream.close ();
      !ok && String.equal everything (Buffer.contents model))

(* {2 keyboard and display} *)

let test_keyboard_type_ahead () =
  let kb = Keyboard.create () in
  Keyboard.feed kb "first";
  let s1 = Keyboard.stream kb in
  Alcotest.(check string) "consume some" "fir" (Stream.get_string s1 3);
  (* A different consumer (the next program) sees the rest: the buffer
     outlives any one stream. *)
  let s2 = Keyboard.stream kb in
  Alcotest.(check string) "type-ahead survives" "st" (Stream.get_string s2 5);
  Alcotest.(check bool) "dry" true (s2.Stream.at_end ());
  Keyboard.feed kb "more";
  Alcotest.(check int) "pending" 4 (s2.Stream.control "pending" 0)

let test_display () =
  let d = Display.create ~columns:10 () in
  let s = Display.stream d in
  Stream.put_line s "hello";
  Stream.put_string s "a very long line wraps";
  Alcotest.(check int) "wrapped" 4 (List.length (Display.lines d));
  Alcotest.(check string) "first line" "hello" (List.hd (Display.lines d));
  s.Stream.put (Char.code '\012');
  Alcotest.(check string) "form feed clears" "" (Display.contents d)

let () =
  Alcotest.run "alto_streams"
    [
      ( "object",
        [
          ("missing operations raise", `Quick, test_missing_operations_raise);
          ("user replaces operations", `Quick, test_user_replaces_operations);
          ("helpers", `Quick, test_helpers);
          ("copy", `Quick, test_copy);
        ] );
      ("memory", [ ("region stream", `Quick, test_region_stream) ]);
      ( "disk",
        [
          ("write/read", `Quick, test_disk_stream_write_read);
          ("spans pages", `Quick, test_disk_stream_spans_pages);
          ("overwrite", `Quick, test_disk_stream_overwrite);
          ("truncate control", `Quick, test_disk_stream_truncate_control);
          ("modes", `Quick, test_disk_stream_modes);
          ("closed", `Quick, test_disk_stream_closed);
          ("zone workspace", `Quick, test_disk_stream_zone_workspace);
          QCheck_alcotest.to_alcotest ~verbose:false prop_disk_stream_matches_model;
        ] );
      ( "devices",
        [
          ("keyboard type-ahead", `Quick, test_keyboard_type_ahead);
          ("display", `Quick, test_display);
        ] );
    ]
