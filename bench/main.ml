(* The benchmark harness.

   Usage:
     dune exec bench/main.exe                 -- all experiments + micro-benchmarks
     dune exec bench/main.exe -- e1 e5        -- selected experiments
     dune exec bench/main.exe -- micro        -- host-time micro-benchmarks only
     dune exec bench/main.exe -- --json F     -- additionally dump results and
                                                the metric registry to F
     dune exec bench/main.exe -- --trace F    -- additionally dump the run's
                                                request traces as Chrome
                                                trace_event JSON to F

   E1..E13 print simulated Alto time (the claims are about the paper's
   hardware); "micro" reports wall-clock cost of this implementation's
   primitives via Bechamel. With --json the same tables, plus a snapshot
   of every alto_obs metric the run touched, land in one JSON file —
   the artifact CI archives to track the performance trajectory. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Asm = Alto_machine.Asm
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Label = Alto_fs.Label
module Scavenger = Alto_fs.Scavenger
module Directory = Alto_fs.Directory
module Zone = Alto_zones.Zone

(* {2 Micro-benchmarks: host wall time of the primitives} *)

let micro_tests () =
  let open Bechamel in
  (* Disk transfer. *)
  let bench_transfer =
    let drive = Drive.create ~pack_id:1 Geometry.diablo_31 in
    let value = Array.make Sector.value_words Word.zero in
    let i = ref 0 in
    Test.make ~name:"drive: read one sector"
      (Staged.stage (fun () ->
           i := (!i + 1) mod 4000;
           match
             Drive.run drive (Disk_address.of_index !i)
               { Drive.op_none with Drive.value = Some Drive.Read }
               ~value ()
           with
           | Ok () -> ()
           | Error _ -> assert false))
  in
  (* Allocation. *)
  let bench_alloc =
    let drive = Drive.create ~pack_id:1 Geometry.diablo_31 in
    let fs = Fs.format drive in
    let fid = Fs.fresh_fid fs in
    let value = Array.make Sector.value_words Word.zero in
    Test.make ~name:"fs: allocate + free one page"
      (Staged.stage (fun () ->
           let label _ =
             Label.make ~fid ~page:1 ~length:0 ~next:Disk_address.nil
               ~prev:Disk_address.nil
           in
           match Fs.allocate_page fs ~label ~value with
           | Ok addr -> (
               match
                 Fs.free_page fs (Alto_fs.Page.full_name fid ~page:1 ~addr)
               with
               | Ok () -> ()
               | Error _ -> assert false)
           | Error _ -> assert false))
  in
  (* File byte IO. *)
  let bench_file_io =
    let drive = Drive.create ~pack_id:1 Geometry.diablo_31 in
    let fs = Fs.format drive in
    let file =
      match File.create fs ~name:"Bench.dat" with Ok f -> f | Error _ -> assert false
    in
    (match File.write_bytes file ~pos:0 (String.make 4096 'x') with
    | Ok () -> ()
    | Error _ -> assert false);
    Test.make ~name:"file: read 4KB"
      (Staged.stage (fun () ->
           match File.read_bytes file ~pos:0 ~len:4096 with
           | Ok _ -> ()
           | Error _ -> assert false))
  in
  (* Zone allocator. *)
  let bench_zone =
    let memory = Memory.create () in
    let zone = Zone.format memory ~pos:1000 ~len:4000 in
    Test.make ~name:"zone: allocate + release 32 words"
      (Staged.stage (fun () ->
           let a = Zone.allocate zone 32 in
           Zone.release zone a))
  in
  (* VM interpretation. *)
  let bench_vm =
    let program =
      Asm.assemble_exn ~origin:100
        [
          Asm.Label "start";
          Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
          Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 100 ]);
          Asm.Label "loop";
          Asm.Op ("ADD", [ Asm.Reg 0; Asm.Reg 1 ]);
          Asm.Op ("ADDI", [ Asm.Reg 1; Asm.Imm 0xffff ]);
          Asm.Op ("JNZ", [ Asm.Reg 1; Asm.Lab "loop" ]);
          Asm.Op ("HALT", []);
        ]
    in
    let memory = Memory.create () in
    Memory.write_block memory ~pos:100 program.Asm.code;
    let cpu = Cpu.create memory in
    Test.make ~name:"vm: 300-instruction loop"
      (Staged.stage (fun () ->
           Cpu.set_pc cpu (Word.of_int program.Asm.entry);
           Cpu.set_frame_pointer cpu (Word.of_int 0xF000);
           match Vm.run ~fuel:10_000 cpu ~handler:(fun _ _ -> Vm.Sys_continue) with
           | Vm.Halted -> ()
           | _ -> assert false))
  in
  (* A whole scavenge of a small pack. *)
  let bench_scavenge =
    let geometry = { Geometry.diablo_31 with Geometry.model = "small"; cylinders = 10 } in
    Test.make ~name:"scavenger: 240-sector pack"
      (Staged.stage (fun () ->
           let drive = Drive.create ~pack_id:1 geometry in
           let fs = Fs.format drive in
           let root =
             match Directory.open_root fs with Ok r -> r | Error _ -> assert false
           in
           (match File.create fs ~name:"A." with
           | Ok f -> (
               ignore (File.write_bytes f ~pos:0 (String.make 2000 'a'));
               match Directory.add root ~name:"A." (File.leader_name f) with
               | Ok () -> ()
               | Error _ -> assert false)
           | Error _ -> assert false);
           match Scavenger.scavenge drive with
           | Ok _ -> ()
           | Error _ -> assert false))
  in
  (* The compiler, source to code image. *)
  let bench_compile =
    let source =
      "let fib(n) be { if n < 2 then resultis n; resultis fib(n-1) + fib(n-2); }\n\
       let main() = fib(10);"
    in
    Test.make ~name:"bcpl: compile fib"
      (Staged.stage (fun () ->
           match Alto_bcpl.Bcpl.compile ~origin:1024 source with
           | Ok _ -> ()
           | Error _ -> assert false))
  in
  (* A compiled program through the whole system. *)
  let bench_compiled_run =
    let system = Alto_os.System.boot ~geometry:{ Geometry.diablo_31 with Geometry.model = "b"; cylinders = 20 } () in
    let program =
      match
        Alto_bcpl.Bcpl.compile ~origin:Alto_os.System.user_base
          "let main() be { let s = 0; for i = 1 to 100 do s := s + i; resultis 0; }"
      with
      | Ok p -> p
      | Error _ -> assert false
    in
    let file =
      match Alto_os.Loader.save_program system ~name:"B.run" program with
      | Ok f -> f
      | Error _ -> assert false
    in
    Test.make ~name:"os: load + run a compiled program"
      (Staged.stage (fun () ->
           match Alto_os.Loader.run system file with
           | Ok (Vm.Stopped 0) -> ()
           | Ok _ | Error _ -> assert false))
  in
  [
    bench_transfer; bench_alloc; bench_file_io; bench_zone; bench_vm;
    bench_scavenge; bench_compile; bench_compiled_run;
  ]

let run_micro () =
  let open Bechamel in
  Workloads.heading "micro  host-time cost of the primitives (Bechamel)";
  let tests = Test.make_grouped ~name:"altos" (micro_tests ()) in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.sprintf "%12.1f ns/run" est
          | Some _ | None -> "            n/a"
        in
        (name, ns) :: acc)
      results []
  in
  Workloads.print_table [ 40; 18 ]
    [ "primitive"; "host cost" ]
    (List.map (fun (name, ns) -> [ name; ns ]) (List.sort compare rows))

(* {2 Dispatch} *)

module Json = Alto_obs.Json
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof

(* Percentiles of every histogram the run touched, keyed by name — the
   compact view the regression gate reads without digging into
   "metrics". *)
let latency_json () =
  Json.Obj
    (List.filter_map
       (fun (name, m) ->
         match m with
         | Obs.Histogram s when s.Obs.count > 0 ->
             Some
               ( name,
                 Json.Obj
                   [
                     ("p50", Json.Int s.Obs.p50);
                     ("p90", Json.Int s.Obs.p90);
                     ("p99", Json.Int s.Obs.p99);
                   ] )
         | Obs.Histogram _ | Obs.Counter _ -> None)
       (Obs.snapshot ()))

let write_json file selected =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "altos.bench/1");
        ("selection", Json.List (List.map (fun s -> Json.String s) selected));
        ("experiments", Workloads.experiments_json ());
        ("metrics", Obs.metrics_json ());
        ("latency", latency_json ());
        ("span_tree", Prof.to_json ());
      ]
  in
  match open_out file with
  | exception Sys_error reason ->
      Printf.eprintf "cannot write %s: %s\n" file reason;
      exit 1
  | oc ->
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Json.to_channel oc doc);
      Printf.printf "\nwrote %s (%d metrics)\n" file (List.length (Obs.snapshot ()))

(* The causal view of the run: every retained request trace as Chrome
   trace_event JSON, loadable in about://tracing or Perfetto. Traces
   are minted from deterministic counters against the simulated clock,
   so a fixed selection produces this file byte-identically — CI diffs
   it like any other artifact. *)
let write_trace file =
  let doc = Alto_obs.Trace.chrome_json () in
  match open_out file with
  | exception Sys_error reason ->
      Printf.eprintf "cannot write %s: %s\n" file reason;
      exit 1
  | oc ->
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Json.to_channel oc doc);
      Printf.printf "wrote %s\n" file

let rec parse_args (selected, json, trace) = function
  | [] -> (List.rev selected, json, trace)
  | "--json" :: file :: rest -> parse_args (selected, Some file, trace) rest
  | [ "--json" ] ->
      prerr_endline "--json requires a file name";
      exit 1
  | "--trace" :: file :: rest -> parse_args (selected, json, Some file) rest
  | [ "--trace" ] ->
      prerr_endline "--trace requires a file name";
      exit 1
  | name :: rest -> parse_args (name :: selected, json, trace) rest

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let named, json_file, trace_file = parse_args ([], None, None) args in
  let known = List.map fst Experiments.all in
  let selected = if named = [] then known @ [ "micro" ] else named in
  List.iter
    (fun name ->
      match List.assoc_opt name Experiments.all with
      | Some f ->
          Workloads.begin_experiment name;
          f ();
          Workloads.finish_experiment ()
      | None ->
          if String.equal name "micro" then begin
            Workloads.begin_experiment name;
            run_micro ();
            Workloads.finish_experiment ()
          end
          else begin
            Printf.eprintf "unknown experiment %S (have: %s, micro)\n" name
              (String.concat " " known);
            exit 1
          end)
    selected;
  (match json_file with None -> () | Some file -> write_json file selected);
  match trace_file with None -> () | Some file -> write_trace file
