#!/usr/bin/env python3
"""Bench regression gate.

Compares a freshly generated bench.json against the committed baseline
and fails (exit 1) when a watched metric moved more than THRESHOLD in
the bad direction. The simulator is deterministic — same seed, same
workload, same simulated microseconds — so on an unchanged tree every
watched metric matches the baseline exactly; the 15% allowance is
headroom for intentional code changes, not for noise.

Usage: check_regression.py BASELINE.json FRESH.json

When a change legitimately moves a metric past the threshold, regenerate
the baseline (dune exec bench/main.exe -- e1 e4 e14 e15 e16 e17 --json BENCH_PR5.json)
and commit it alongside the change, with the movement called out in the
PR description.
"""

import json
import sys

THRESHOLD = 0.15  # relative movement allowed in the bad direction
NOISE_FLOOR = 10  # baselines smaller than this are too grainy to gate on

# Counters where growth means we got slower or chattier.
UP_IS_BAD = [
    "disk.operations",
    "disk.seeks",
    "disk.seek_us",
    "disk.rotational_wait_us",
    "disk.transfer_us",
    "disk.retries",
]

# Counters where shrinkage means an optimisation stopped working.
# fs.label_cache.hits is 1:1 with disk operations saved (the cache is
# only consulted where a hit saves a whole operation), so a drop here is
# the fast path quietly dying.
DOWN_IS_BAD = [
    "fs.hints.direct.hits",
    "fs.label_cache.hits",
    # The patrol going quiet is the self-healing loop dying: a drop in
    # slices means the idle sweep stopped running.
    "fs.patrol.slices",
]

# Histograms gated on their mean.
MEAN_UP_IS_BAD = [
    "scavenger.duration_us",
    "fs.hints.resolution_us",
    "disk.retry_latency_us",
]

# Histograms gated on their p99: the tail is where a scheduling or
# retry-path regression shows first, long before the mean moves.
P99_UP_IS_BAD = [
    "disk.op_us",
]

# Metrics that must not move at all: a retry ladder running dry is data
# loss, not a performance question, and E16 plants a fixed number of
# marginal sectors that the patrol must drain exactly — fewer relocations
# means a marginal sector was left to die in place.  (The count is far
# below NOISE_FLOOR, so the percentage gate would skip it; determinism
# makes the exact gate the honest one.)
EXACT = [
    "disk.retry_exhausted",
    "fs.patrol.relocations",
]


def counter(metrics, name):
    m = metrics.get(name)
    if m is None or m.get("type") != "counter":
        return None
    return m["value"]


def mean(metrics, name):
    m = metrics.get(name)
    if m is None or m.get("type") != "histogram":
        return None
    return m["mean"]


def p99(metrics, name):
    m = metrics.get(name)
    if m is None or m.get("type") != "histogram":
        return None
    return m.get("p99")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    if base.get("selection") != fresh.get("selection"):
        sys.exit(
            "selection mismatch: baseline ran %s, fresh ran %s"
            % (base.get("selection"), fresh.get("selection"))
        )

    bm, fm = base["metrics"], fresh["metrics"]
    failures, notes = [], []

    def compare(name, b, f, up_is_bad):
        if b is None or f is None:
            notes.append("%-28s skipped (missing on one side)" % name)
            return
        if b < NOISE_FLOOR:
            notes.append("%-28s skipped (baseline %s below noise floor)" % (name, b))
            return
        rel = (f - b) / b
        bad = rel > THRESHOLD if up_is_bad else rel < -THRESHOLD
        verdict = "REGRESSION" if bad else "ok"
        notes.append("%-28s %14s -> %14s  %+7.2f%%  %s" % (name, b, f, 100 * rel, verdict))
        if bad:
            failures.append(name)

    for name in UP_IS_BAD:
        compare(name, counter(bm, name), counter(fm, name), up_is_bad=True)
    for name in DOWN_IS_BAD:
        compare(name, counter(bm, name), counter(fm, name), up_is_bad=False)
    for name in MEAN_UP_IS_BAD:
        compare(name, mean(bm, name), mean(fm, name), up_is_bad=True)
    for name in P99_UP_IS_BAD:
        compare(name + ".p99", p99(bm, name), p99(fm, name), up_is_bad=True)

    for name in EXACT:
        b, f = counter(bm, name), counter(fm, name)
        verdict = "ok" if b == f else "REGRESSION"
        notes.append("%-28s %14s -> %14s  (exact)   %s" % (name, b, f, verdict))
        if b != f:
            failures.append(name)

    # Sanity: the soak experiment must actually have exercised the ladder,
    # otherwise every retry metric above is gating on silence.
    if not counter(fm, "disk.retries"):
        failures.append("disk.retries")
        notes.append("disk.retries is zero — the fault model never fired")

    print("bench regression gate: %s vs %s" % (sys.argv[1], sys.argv[2]))
    for n in notes:
        print("  " + n)
    if failures:
        print("FAIL: %d watched metric(s) regressed: %s" % (len(failures), ", ".join(failures)))
        sys.exit(1)
    print("PASS: no watched metric moved more than %d%% in the bad direction" % int(THRESHOLD * 100))


if __name__ == "__main__":
    main()
