#!/usr/bin/env python3
"""Bench regression gate.

Compares a freshly generated bench.json against the committed baseline
and fails (exit 1) when a watched metric moved past its gate in the bad
direction. The simulator is deterministic — same seed, same workload,
same simulated microseconds — so on an unchanged tree every watched
metric matches the baseline exactly; the relative allowance is headroom
for intentional code changes, not for noise.

Every watched metric is printed as one row of a table — baseline,
current, delta, threshold, verdict — whether it passed or not, so a
failing run shows the whole picture instead of the first casualty.

Usage: check_regression.py BASELINE.json FRESH.json

When a change legitimately moves a metric past its gate, regenerate the
baseline (dune exec bench/main.exe -- e1 e4 e6 e14 e15 e16 e17 e18 e19 e20 e21 e22 --json BENCH_PR10.json)
and commit it alongside the change, with the movement called out in the
PR description.
"""

import json
import sys

THRESHOLD = 0.15  # relative movement allowed in the bad direction
NOISE_FLOOR = 10  # baselines smaller than this are too grainy to gate on

# Counters where growth means we got slower or chattier.
UP_IS_BAD = [
    "disk.operations",
    "disk.seeks",
    "disk.seek_us",
    "disk.rotational_wait_us",
    "disk.transfer_us",
    "disk.retries",
    # E19's whole-pack rebuild getting slower means the repair stream or
    # its retry ladder degraded (simulated seconds from rejoin to the
    # remounted, fully repaired volume).
    "e19.rebuild_s",
]

# Counters where shrinkage means an optimisation stopped working.
# fs.label_cache.hits is 1:1 with disk operations saved (the cache is
# only consulted where a hit saves a whole operation), so a drop here is
# the fast path quietly dying. e18.throughput_mrps falling is the file
# server serving fewer requests per simulated second under the same
# 200-client overload.
DOWN_IS_BAD = [
    "fs.hints.direct.hits",
    "fs.label_cache.hits",
    # The patrol going quiet is the self-healing loop dying: a drop in
    # slices means the idle sweep stopped running.
    "fs.patrol.slices",
    "e18.throughput_mrps",
    # E6's sequential-read rate through the track buffer cache: the
    # headline number of the write-back cache PR. A drop means track
    # fills stopped amortizing the rotational wait.
    "e6.words_per_s",
]

# Histograms gated on their mean.
MEAN_UP_IS_BAD = [
    "scavenger.duration_us",
    "fs.hints.resolution_us",
    "disk.retry_latency_us",
]

# Histograms gated on their p99: the tail is where a scheduling or
# retry-path regression shows first, long before the mean moves.
P99_UP_IS_BAD = [
    "disk.op_us",
]

# Metrics that must not move at all: a retry ladder running dry is data
# loss, not a performance question; E16 plants a fixed number of
# marginal sectors that the patrol must drain exactly; and E18's client
# script is deterministic, so the server must complete exactly the same
# number of requests every run — one request more or fewer means the
# admission or scheduling discipline changed behind our back.  (Some of
# these counts are far below NOISE_FLOOR, so the percentage gate would
# skip them; determinism makes the exact gate the honest one.)
EXACT = [
    "disk.retry_exhausted",
    "fs.patrol.relocations",
    "server.reqs",
    # The simulator is deterministic, so the track buffer cache must
    # serve exactly the same hits every run — one hit more or fewer
    # means a coherence or fill decision changed behind our back.
    "fs.bio.hits",
    # E21 enumerates a fixed grid of crash points (5 workloads x 15
    # points x 3 tear variants); the number that actually fire is a
    # property of the build, so any drift means the workloads or the
    # crash countdown changed behind our back.
    "e21.crash_points",
    # The tracer mints spans from deterministic sequence counters, so
    # the whole run opens exactly the same spans every time — one span
    # more or fewer means a request's causal path changed behind our
    # back (a lost propagation, a double-billed duplicate, a trace
    # minted where none was before).
    "trace.spans",
]

# Absolute ceilings, gated on the fresh value alone: E18 computes its
# max/min completed-requests ratio as fairness*100, and no baseline
# drift may excuse a client falling more than 2x behind another.
ABS_MAX = {
    "e18.fairness_x100": 200,
    # A repair page E19 could not install is data loss, not a perf
    # question: no baseline drift may excuse a single one.
    "e19.pages_lost": 0,
    # E21's verdict proper: a crash point after which the offline
    # checker still sees a broken promise, or a committed file fails to
    # read back old-or-new, is a recovery bug — never headroom.
    "e21.invariant_violations": 0,
    # E22's accounting identity: per-request disk attribution plus the
    # untraced bucket must balance the drive's own motion counters.
    # The implementation targets exactly 0%; 1% is the most drift any
    # future rounding could justify.
    "e22.attribution_drift_pct": 1,
    # No workload in the smoke run times a client out, so an abandoned
    # trace means a reply path quietly stopped closing conversations.
    "server.traces_abandoned": 0,
}


def counter(metrics, name):
    m = metrics.get(name)
    if m is None or m.get("type") != "counter":
        return None
    return m["value"]


def mean(metrics, name):
    m = metrics.get(name)
    if m is None or m.get("type") != "histogram":
        return None
    return m["mean"]


def p99(metrics, name):
    m = metrics.get(name)
    if m is None or m.get("type") != "histogram":
        return None
    return m.get("p99")


def fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        return "%.1f" % v
    return str(v)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    if base.get("selection") != fresh.get("selection"):
        sys.exit(
            "selection mismatch: baseline ran %s, fresh ran %s"
            % (base.get("selection"), fresh.get("selection"))
        )

    bm, fm = base["metrics"], fresh["metrics"]
    failures = []
    rows = []  # (name, baseline, current, delta, threshold, verdict)

    def row(name, b, f, delta, threshold, verdict):
        rows.append((name, fmt(b), fmt(f), delta, threshold, verdict))

    def compare(name, b, f, up_is_bad):
        threshold = "%s%d%%" % ("+" if up_is_bad else "-", 100 * THRESHOLD)
        if b is None or f is None:
            row(name, b, f, "-", threshold, "skip (missing)")
            return
        if b < NOISE_FLOOR:
            row(name, b, f, "-", threshold, "skip (noise floor)")
            return
        rel = (f - b) / b
        bad = rel > THRESHOLD if up_is_bad else rel < -THRESHOLD
        row(name, b, f, "%+.2f%%" % (100 * rel), threshold, "REGRESSION" if bad else "ok")
        if bad:
            failures.append(name)

    for name in UP_IS_BAD:
        compare(name, counter(bm, name), counter(fm, name), up_is_bad=True)
    for name in DOWN_IS_BAD:
        compare(name, counter(bm, name), counter(fm, name), up_is_bad=False)
    for name in MEAN_UP_IS_BAD:
        compare(name + ".mean", mean(bm, name), mean(fm, name), up_is_bad=True)
    for name in P99_UP_IS_BAD:
        compare(name + ".p99", p99(bm, name), p99(fm, name), up_is_bad=True)

    for name in EXACT:
        b, f = counter(bm, name), counter(fm, name)
        bad = b != f
        row(name, b, f, "-" if not bad else "moved", "exact", "REGRESSION" if bad else "ok")
        if bad:
            failures.append(name)

    for name, ceiling in ABS_MAX.items():
        f = counter(fm, name)
        if f is None:
            failures.append(name)
            row(name, counter(bm, name), f, "-", "<=%d" % ceiling, "REGRESSION (missing)")
            continue
        bad = f > ceiling
        row(name, counter(bm, name), f, "-", "<=%d" % ceiling, "REGRESSION" if bad else "ok")
        if bad:
            failures.append(name)

    # Sanity: the soak experiment must actually have exercised the retry
    # ladder, and the server experiment must actually have tripped
    # admission control — otherwise the gates above watch silence.
    for name, why in [
        ("disk.retries", "the fault model never fired"),
        ("server.naks", "admission control never refused a request"),
        ("repl.repairs", "the replica audit never repaired a slice"),
        ("e21.torn_points", "no torn-sector crash variant ever fired"),
        ("trace.completed", "no request trace ever completed"),
    ]:
        if not counter(fm, name):
            failures.append(name)
            row(name, counter(bm, name), counter(fm, name), "-", ">0", "REGRESSION (%s)" % why)

    print("bench regression gate: %s vs %s" % (sys.argv[1], sys.argv[2]))
    header = ("metric", "baseline", "current", "delta", "threshold", "verdict")
    widths = [
        max(len(header[i]), max(len(str(r[i])) for r in rows)) for i in range(6)
    ]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    print("  " + line)
    print("  " + "  ".join("-" * w for w in widths))
    for r in rows:
        print("  " + "  ".join(str(c).ljust(widths[i]) for i, c in enumerate(r)))
    if failures:
        print("FAIL: %d watched metric(s) regressed: %s" % (len(failures), ", ".join(failures)))
        sys.exit(1)
    print("PASS: every watched metric is within its gate")


if __name__ == "__main__":
    main()
