(* Shared machinery for the experiment harness: workload builders,
   measurement helpers and table printing. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Json = Alto_obs.Json

let ok pp = function
  | Ok x -> x
  | Error e -> Format.kasprintf failwith "%a" pp e

let fresh ?(geometry = Geometry.diablo_31) ?(pack_id = 1) () =
  let drive = Drive.create ~pack_id geometry in
  let fs = Fs.format drive in
  (drive, fs)

let body seed n = String.init n (fun i -> Char.chr (32 + (((i * 11) + seed) mod 95)))

(* Quiesce: push delayed track-buffer writes to the platter, the way
   the Executive does before raw-pack work (scavenge, audits). *)
let settle fs = ignore (Alto_fs.Bio.flush (Fs.bio fs))

(* Create and catalogue one file with [n] bytes of content, settled to
   the platter so raw readers (scavenger, sweeps) see it whole. *)
let make_file fs root name n seed =
  let file = ok File.pp_error (File.create fs ~name) in
  if n > 0 then ok File.pp_error (File.write_bytes file ~pos:0 (body seed n));
  ok File.pp_error (File.flush_leader file);
  ok Directory.pp_error (Directory.add root ~name (File.leader_name file));
  settle fs;
  file

(* Fill the volume until roughly [fraction] of all pages are busy.
   Returns the created file names. *)
let fill_to fs root ~fraction ~file_bytes =
  let total = Drive.sector_count (Fs.drive fs) in
  let target_busy = int_of_float (fraction *. float_of_int total) in
  let rec go names i =
    if total - Fs.free_count fs >= target_busy then List.rev names
    else begin
      let name = Printf.sprintf "Fill%04d.dat" i in
      let (_ : File.t) = make_file fs root name file_bytes i in
      go (name :: names) (i + 1)
    end
  in
  go [] 0

let reopen fs name =
  let root = ok Directory.pp_error (Directory.open_root fs) in
  match ok Directory.pp_error (Directory.lookup root name) with
  | Some e -> ok File.pp_error (File.open_leader fs e.Directory.entry_file)
  | None -> failwith (name ^ " not catalogued")

(* Simulated time of running [f]. *)
let timed clock f =
  let t0 = Sim_clock.now_us clock in
  let x = f () in
  (x, Sim_clock.now_us clock - t0)

let pp_us fmt us = Sim_clock.pp_duration fmt us

(* {2 Structured result recording}

   Every experiment already narrates itself through {!heading}, {!claim}
   and {!print_table}; the same calls feed a machine-readable record so
   that `--json` can dump exactly what was printed. The dispatcher
   brackets each experiment with {!begin_experiment} /
   {!finish_experiment}; outside a bracket the recorder is inert. *)

type recorded_table = { table_header : string list; table_rows : string list list }

type experiment_record = {
  exp_name : string;
  exp_baseline : (string * Alto_obs.Obs.metric) list;
      (* The registry at [begin_experiment] — subtracted at the end so
         each experiment reports only the metric movement it caused. *)
  mutable exp_headings : string list;
  mutable exp_claims : string list;
  mutable exp_tables : recorded_table list;  (* Newest first. *)
  mutable exp_deltas : (string * Alto_obs.Obs.metric) list;
}

let records : experiment_record list ref = ref []
let current : experiment_record option ref = ref None

let begin_experiment name =
  current :=
    Some
      {
        exp_name = name;
        exp_baseline = Alto_obs.Obs.snapshot ();
        exp_headings = [];
        exp_claims = [];
        exp_tables = [];
        exp_deltas = [];
      }

(* What each metric did during the experiment. Counters subtract;
   histograms subtract count and sum and recompute the window's mean
   (min/max stay cumulative — the registry doesn't keep per-window
   extremes, so we conservatively report the lifetime ones). *)
let metric_deltas baseline now =
  let module Obs = Alto_obs.Obs in
  List.filter_map
    (fun (name, metric) ->
      let before = List.assoc_opt name baseline in
      match (metric, before) with
      | Obs.Counter v, None -> if v > 0 then Some (name, Obs.Counter v) else None
      | Obs.Counter v, Some (Obs.Counter b) ->
          if v > b then Some (name, Obs.Counter (v - b)) else None
      | Obs.Histogram s, None ->
          if s.Obs.count > 0 then Some (name, Obs.Histogram s) else None
      | Obs.Histogram s, Some (Obs.Histogram b) ->
          let count = s.Obs.count - b.Obs.count in
          if count <= 0 then None
          else
            let sum = s.Obs.sum - b.Obs.sum in
            Some
              ( name,
                Obs.Histogram
                  {
                    Obs.count;
                    sum;
                    min = s.Obs.min;
                    max = s.Obs.max;
                    mean = float_of_int sum /. float_of_int count;
                    (* Percentiles, like min/max, stay cumulative: the
                       buckets are not windowed. *)
                    p50 = s.Obs.p50;
                    p90 = s.Obs.p90;
                    p99 = s.Obs.p99;
                  } )
      | Obs.Counter _, Some (Obs.Histogram _)
      | Obs.Histogram _, Some (Obs.Counter _) ->
          None)
    now

let finish_experiment () =
  match !current with
  | None -> ()
  | Some r ->
      r.exp_deltas <- metric_deltas r.exp_baseline (Alto_obs.Obs.snapshot ());
      records := r :: !records;
      current := None

let record_heading title =
  match !current with
  | None -> ()
  | Some r -> r.exp_headings <- title :: r.exp_headings

let record_claim text =
  match !current with
  | None -> ()
  | Some r -> r.exp_claims <- text :: r.exp_claims

let record_table header rows =
  match !current with
  | None -> ()
  | Some r ->
      r.exp_tables <- { table_header = header; table_rows = rows } :: r.exp_tables

let experiments_json () =
  let table_json t =
    Json.Obj
      [
        ("header", Json.List (List.map (fun c -> Json.String c) t.table_header));
        ( "rows",
          Json.List
            (List.map
               (fun row -> Json.List (List.map (fun c -> Json.String c) row))
               t.table_rows) );
      ]
  in
  let delta_json (name, metric) =
    let module Obs = Alto_obs.Obs in
    match metric with
    | Obs.Counter v -> (name, Json.Int v)
    | Obs.Histogram s ->
        ( name,
          Json.Obj
            [
              ("count", Json.Int s.Obs.count);
              ("sum", Json.Int s.Obs.sum);
              ("mean", Json.Float s.Obs.mean);
            ] )
  in
  Json.List
    (List.rev_map
       (fun r ->
         Json.Obj
           [
             ("name", Json.String r.exp_name);
             ("headings", Json.List (List.rev_map (fun h -> Json.String h) r.exp_headings));
             ("claims", Json.List (List.rev_map (fun c -> Json.String c) r.exp_claims));
             ("tables", Json.List (List.rev_map table_json r.exp_tables));
             ("metrics_delta", Json.Obj (List.map delta_json r.exp_deltas));
           ])
       !records)

(* {2 Table printing} *)

let heading title =
  record_heading title;
  Format.printf "@.== %s ==@." title

let print_row widths cells =
  let line =
    String.concat "  "
      (List.map2
         (fun w c -> (if String.length c >= w then c else c ^ String.make (w - String.length c) ' '))
         widths cells)
  in
  print_endline line

let print_table widths header rows =
  record_table header rows;
  print_row widths header;
  print_row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (print_row widths) rows

let us_to_string us = Format.asprintf "%a" pp_us us

let claim text =
  record_claim text;
  Format.printf "paper: %s@." text
