(* The experiment harness: one experiment per quantitative claim in the
   paper's text. Absolute numbers are simulated Alto time; the shapes —
   who wins, by what factor, where the knees are — are what reproduce. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Sim_clock = Alto_machine.Sim_clock
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address
module Fault = Alto_disk.Fault
module Reliable = Alto_disk.Reliable
module Sched = Alto_disk.Sched
module Fs = Alto_fs.Fs
module Bio = Alto_fs.Bio
module Label_cache = Alto_fs.Label_cache
module File = Alto_fs.File
module File_id = Alto_fs.File_id
module Label = Alto_fs.Label
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger
module Compactor = Alto_fs.Compactor
module Patrol = Alto_fs.Patrol
module Hints = Alto_fs.Hints
module Install = Alto_fs.Install
module Stream = Alto_streams.Stream
module Disk_stream = Alto_streams.Disk_stream
module World = Alto_world.World
module Checkpoint = Alto_world.Checkpoint
module Level = Alto_os.Level
module System = Alto_os.System
module Crash_harness = Alto_os.Crash_harness
module Net = Alto_net.Net
module File_server = Alto_server.File_server
module Replica = Alto_server.Replica
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof
open Workloads

(* E1 — §3.5: "This entire process is called scavenging, and it takes
   about a minute for a 2.5 megabyte disk." *)
let e1 () =
  heading "E1  scavenging time (§3.5)";
  claim "scavenging takes about a minute for a 2.5 megabyte disk";
  let run geometry fraction =
    let drive, fs = fresh ~geometry () in
    let root = ok Directory.pp_error (Directory.open_root fs) in
    let (_ : string list) = fill_to fs root ~fraction ~file_bytes:4000 in
    let used = Drive.sector_count drive - Fs.free_count fs in
    let _, report =
      match Scavenger.scavenge drive with
      | Ok (fs', r) -> (fs', r)
      | Error msg -> failwith msg
    in
    let _, verified =
      match Scavenger.scavenge ~verify_values:true drive with
      | Ok (fs', r) -> (fs', r)
      | Error msg -> failwith msg
    in
    (used, report.Scavenger.duration_us, verified.Scavenger.duration_us)
  in
  let rows =
    List.concat_map
      (fun geometry ->
        List.map
          (fun fraction ->
            let used, us, verified_us = run geometry fraction in
            [
              geometry.Geometry.model;
              Printf.sprintf "%.0f%%" (fraction *. 100.);
              string_of_int used;
              us_to_string us;
              us_to_string verified_us;
            ])
          [ 0.25; 0.50; 0.75; 0.98 ])
      [ Geometry.diablo_31; Geometry.diablo_44 ]
  in
  print_table [ 16; 6; 12; 12; 14 ]
    [ "disk"; "fill"; "busy pages"; "scavenge"; "+verify values" ]
    rows;
  print_endline
    "shape: about a minute for a well-filled Model 31 pack; the bigger,\n\
     faster Model 44 pays for twice the sectors at half the rotation.\n\
     Value verification (reading every live page to stamp bad surfaces)\n\
     costs roughly the fill fraction again."

(* E2 — §3.5: the compacting scavenger "typically increases the speed
   with which the files can be read sequentially by an order of
   magnitude over what is possible if the pages have become scattered." *)
let e2 () =
  heading "E2  compaction vs sequential reads (§3.5)";
  claim "consecutive layout reads ~an order of magnitude faster than scattered";
  let files = 12 and file_bytes = 40_000 in
  let drive, fs = fresh () in
  Fs.set_policy fs (Fs.Scattered (Random.State.make [| 7 |]));
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let names =
    List.init files (fun i ->
        let name = Printf.sprintf "Big%02d.dat" i in
        let (_ : File.t) = make_file fs root name file_bytes i in
        name)
  in
  let clock = Drive.clock drive in
  let read_all () =
    List.iter
      (fun name ->
        let file = reopen fs name in
        let s = Disk_stream.open_file ~mode:Disk_stream.Read_only file in
        let (_ : string) = Stream.get_all s in
        s.Stream.close ())
      names
  in
  let fragmentation name =
    ok File.pp_error (Compactor.consecutive_fraction fs (reopen fs name))
  in
  let frag_before = fragmentation (List.hd names) in
  let (), scattered_us = timed clock read_all in
  let report, compact_us =
    timed clock (fun () ->
        match Compactor.compact fs with Ok r -> r | Error msg -> failwith msg)
  in
  let (), consecutive_us = timed clock read_all in
  print_table [ 34; 14 ]
    [ "configuration"; "read time" ]
    [
      [
        Printf.sprintf "scattered (%.0f%% adjacent)" (frag_before *. 100.);
        us_to_string scattered_us;
      ];
      [ "consecutive (after compaction)"; us_to_string consecutive_us ];
    ];
  Printf.printf "speedup: %.1fx  (compaction itself: %s, %d moves, %d/%d files consecutive)\n"
    (float_of_int scattered_us /. float_of_int consecutive_us)
    (us_to_string compact_us) report.Compactor.moves
    report.Compactor.files_consecutive report.Compactor.files_total

(* E3 — §3.3: "This scheme costs a disk revolution each time a page is
   allocated or freed … On any other write the label is checked, at no
   cost in time." *)
let e3 () =
  heading "E3  what label checking costs (§3.3)";
  claim "one revolution per allocate/free; ordinary writes pay nothing";
  let pages = 120 in
  let run ~checking =
    let drive, fs = fresh () in
    Fs.set_label_checking fs checking;
    let clock = Drive.clock drive in
    let root = ok Directory.pp_error (Directory.open_root fs) in
    let file = make_file fs root "Victim.dat" (pages * Sector.bytes_per_page) 1 in
    (* (a) ordinary full-page overwrites of existing pages *)
    let (), overwrite_us =
      timed clock (fun () ->
          ok File.pp_error
            (File.write_bytes file ~pos:0 (body 2 (pages * Sector.bytes_per_page))))
    in
    (* (b) allocating fresh pages (append a second file) *)
    let file2 = ok File.pp_error (File.create fs ~name:"Fresh.dat") in
    let (), allocate_us =
      timed clock (fun () ->
          ok File.pp_error
            (File.write_bytes file2 ~pos:0 (body 3 (pages * Sector.bytes_per_page))))
    in
    (* (c) freeing them again *)
    let (), free_us = timed clock (fun () -> ok File.pp_error (File.delete file2)) in
    (overwrite_us / pages, allocate_us / pages, free_us / pages)
  in
  let ow_on, al_on, fr_on = run ~checking:true in
  let ow_off, al_off, fr_off = run ~checking:false in
  let rev = Geometry.diablo_31.Geometry.rotation_us in
  let line name on off =
    [
      name;
      us_to_string on;
      us_to_string off;
      Printf.sprintf "%+.2f rev" (float_of_int (on - off) /. float_of_int rev);
    ]
  in
  print_table [ 26; 12; 12; 12 ]
    [ "per page"; "with checks"; "without"; "check cost" ]
    [
      line "ordinary overwrite" ow_on ow_off;
      line "allocate + first write" al_on al_off;
      line "free" fr_on fr_off;
    ];
  print_endline
    "shape: ordinary writes identical with checks on or off; allocation and\n\
     freeing each pay about one extra revolution for the check pass."

(* E4 — §3.6: the recovery ladder, each rung slower than the last. *)
let e4 () =
  heading "E4  the hint recovery ladder (§3.6)";
  claim "direct hint << links from leader << directory lookups << scavenge";
  let drive, fs = fresh () in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  (* Clutter makes directory scans honest. *)
  for i = 0 to 199 do
    let (_ : File.t) = make_file fs root (Printf.sprintf "Noise%03d." i) 300 i in
    ()
  done;
  let file = make_file fs root "Wanted.dat" 3000 7 in
  let fid = File.fid file in
  let page2 = ok File.pp_error (File.page_name file 2) in
  let leader_addr = (File.leader_name file).Page.addr in
  let bogus = Disk_address.of_index 4000 in
  let request ~page_hint ~leader_hint ~fid =
    {
      Hints.req_name = "Wanted.dat";
      req_fid = fid;
      req_page = 2;
      req_page_hint = page_hint;
      req_leader_hint = leader_hint;
    }
  in
  let scenario name req expect =
    (* Each rung's cost is measured cold: the track buffers are settled
       and dropped so a scenario pays its true disk cost instead of
       inheriting whatever the previous one left warm. *)
    ignore (Bio.flush (Fs.bio fs) : Bio.flush_report);
    Bio.clear (Fs.bio fs);
    match Hints.read_page fs ~directory:root req with
    | Error f -> failwith ("ladder failed in scenario " ^ name ^ ": " ^ f.Hints.reason)
    | Ok s ->
        let final = List.nth s.Hints.attempts (List.length s.Hints.attempts - 1) in
        if final.Hints.rung <> expect then
          Format.kasprintf failwith "E4 %s: won at rung %a, expected %a" name
            Hints.pp_rung final.Hints.rung Hints.pp_rung expect;
        [
          name;
          Format.asprintf "%a" Hints.pp_rung final.Hints.rung;
          us_to_string final.Hints.elapsed_us;
        ]
  in
  (* The scenarios run strictly top to bottom: the first four need the
     directory intact, the last removes the entry so only the scavenge
     rung can win. *)
  let s1 =
    scenario "hint valid"
      (request ~page_hint:(Some page2.Page.addr) ~leader_hint:(Some leader_addr)
         ~fid:(Some fid))
      Hints.Direct
  in
  let s2 =
    scenario "page hint stale"
      (request ~page_hint:(Some bogus) ~leader_hint:(Some leader_addr) ~fid:(Some fid))
      Hints.Leader_chain
  in
  let s3 =
    scenario "all hints stale"
      (request ~page_hint:(Some bogus) ~leader_hint:(Some bogus) ~fid:(Some fid))
      Hints.Directory_fid
  in
  let s4 =
    scenario "FV stale too"
      (request ~page_hint:None ~leader_hint:None
         ~fid:(Some (File_id.next_version fid)))
      Hints.Directory_name
  in
  let (_ : bool) = ok Directory.pp_error (Directory.remove root "Wanted.dat") in
  let s5 =
    scenario "entry lost as well"
      (request ~page_hint:(Some bogus) ~leader_hint:(Some bogus) ~fid:(Some fid))
      Hints.Scavenge
  in
  let rows = [ s1; s2; s3; s4; s5 ] in
  ignore drive;
  print_table [ 22; 28; 12 ] [ "scenario"; "winning rung"; "rung cost" ] rows;
  print_endline
    "shape: measured cold, each rung costs more than the one before;\n\
     the one exception is honest — a by-name retry right after a failed\n\
     by-FV scan rides that scan's track fills. Programs that keep hints\n\
     fresh live at the top line, and nothing below it loses data."

(* E5 — §4.1: OutLoad/InLoad "requires about a second". *)
let e5 () =
  heading "E5  world swap times (§4.1)";
  claim "OutLoad and InLoad each take about a second";
  let drive, fs = fresh () in
  let clock = Drive.clock drive in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let state = ok Checkpoint.pp_error (Checkpoint.state_file fs ~directory:root ~name:"W.state") in
  let memory = Memory.create () in
  let cpu = Cpu.create memory in
  (* First save pays for laying the file down; steady state streams. *)
  let (), first_us = timed clock (fun () -> ok World.pp_error (World.out_load cpu state)) in
  let (), out_us = timed clock (fun () -> ok World.pp_error (World.out_load cpu state)) in
  let (), in_us =
    timed clock (fun () -> ok World.pp_error (World.in_load cpu state ~message:[||]))
  in
  let (), roundtrip_us =
    timed clock (fun () ->
        ok Checkpoint.pp_error
          (Checkpoint.transfer cpu ~save_to:state ~restore_from:state ~message:[||]))
  in
  print_table [ 34; 14 ]
    [ "operation"; "simulated time" ]
    [
      [ "first OutLoad (file laid down)"; us_to_string first_us ];
      [ "OutLoad, steady state"; us_to_string out_us ];
      [ "InLoad"; us_to_string in_us ];
      [ "coroutine transfer (both)"; us_to_string roundtrip_us ];
    ];
  print_endline "shape: about a second each way once the state file exists."

(* E6 — §2: the drive "can store 2.5 megabytes … and can transfer 64k
   words in about one second". One sector at a time the claim is out of
   reach: every read pays its own rotational wait. Reading through the
   track buffer cache, a miss fills the whole track in one elevator
   batch (one revolution, now that the sweep is rotation-aware) and the
   other eleven sectors are answered from memory — that is the
   configuration the paper's rate describes. *)
let e6 () =
  heading "E6  raw disk rate and capacity (§2)";
  claim "2.5 MB per pack; 64K words transferred in about a second";
  let sectors = 65536 / Sector.value_words in
  let rate us = 65536.0 /. (float_of_int us /. 1e6) in
  let one_at_a_time geometry =
    let drive = Drive.create ~pack_id:1 geometry in
    let clock = Drive.clock drive in
    let value = Array.make Sector.value_words Word.zero in
    let (), us =
      timed clock (fun () ->
          for i = 0 to sectors - 1 do
            match
              Drive.run drive (Disk_address.of_index i)
                { Drive.op_none with Drive.value = Some Drive.Read }
                ~value ()
            with
            | Ok () -> ()
            | Error e -> Format.kasprintf failwith "%a" Drive.pp_error e
          done)
    in
    us
  in
  let through_track_cache geometry =
    let drive = Drive.create ~pack_id:1 geometry in
    let clock = Drive.clock drive in
    let bio = Bio.create ~label_cache:(Label_cache.create drive) drive in
    let (), us =
      timed clock (fun () ->
          for i = 0 to sectors - 1 do
            let addr = Disk_address.of_index i in
            match Bio.lookup bio addr with
            | Some _ -> ()
            | None -> (
                Bio.fill bio addr;
                match Bio.peek bio addr with
                | Some _ -> ()
                | None -> failwith "e6: track fill left the sector unbuffered")
          done)
    in
    us
  in
  let rows =
    List.mapi
      (fun i geometry ->
        let direct_us = one_at_a_time geometry in
        let cached_us = through_track_cache geometry in
        (* The headline number — the gated metric is the Model 31, the
           pack the paper's "about one second" describes. *)
        if i = 0 then
          Obs.add (Obs.counter "e6.words_per_s") (int_of_float (rate cached_us));
        [
          geometry.Geometry.model;
          Printf.sprintf "%.2f MB" (float_of_int (Geometry.capacity_bytes geometry) /. 1_048_576.);
          us_to_string direct_us;
          Printf.sprintf "%.0fk w/s" (rate direct_us /. 1000.);
          us_to_string cached_us;
          Printf.sprintf "%.0fk w/s" (rate cached_us /. 1000.);
        ])
      [ Geometry.diablo_31; Geometry.diablo_44 ]
  in
  print_table [ 16; 10; 13; 9; 13; 9 ]
    [ "disk"; "capacity"; "sector reads"; "rate"; "track fills"; "rate" ]
    rows;
  print_endline
    "shape: sector-at-a-time reads pay a rotational wait per sector and\n\
     miss the claim by about half; whole-track fills amortize the wait\n\
     over twelve sectors and reach the paper's about-a-second rate."

(* E7 — §5.2: Junta gives precise control over resident memory. *)
let e7 () =
  heading "E7  resident memory per retained level (§5.2)";
  claim "a program selects exactly the levels it retains; the rest is its memory";
  let rows =
    List.map
      (fun (level : Level.t) ->
        let keep = level.Level.index in
        let resident = Level.resident_words ~keep in
        [
          Printf.sprintf "junta %2d" keep;
          level.Level.level_name;
          string_of_int resident;
          Printf.sprintf "%d" (Level.boundary ~keep - System.user_base);
        ])
      Level.all
  in
  print_table [ 9; 36; 10; 12 ]
    [ "keep"; "highest retained level"; "resident"; "user words" ]
    rows;
  (* And the machinery actually works: remove, fail, restore, succeed. *)
  let system = System.boot () in
  System.junta system ~keep:7;
  let boundary_7 = System.user_boundary system in
  System.counter_junta system;
  let boundary_13 = System.user_boundary system in
  Printf.printf
    "verified live: junta 7 raises the user boundary from %d to %d words\n\
     and CounterJunta restores every level (resident level %d).\n"
    boundary_13 boundary_7 (System.resident_level system)

(* E8 — §3.6: consecutive-file address arithmetic. *)
let e8 () =
  heading "E8  arithmetic addressing of consecutive files (§3.6)";
  claim "a program may compute a(j) = a(i) + j - i; the label check makes misses harmless";
  let trial name ~prepare =
    let drive, fs = fresh () in
    let root = ok Directory.pp_error (Directory.open_root fs) in
    prepare fs;
    let (_ : File.t) = make_file fs root "Target.dat" 20_000 5 in
    let file = reopen fs "Target.dat" in
    let clock = Drive.clock drive in
    let base = ok File.pp_error (File.page_name file 1) in
    let last = File.last_page file in
    let hits = ref 0 and misses = ref 0 in
    let (), us =
      timed clock (fun () ->
          for pn = 1 to last do
            let guess = Disk_address.offset base.Page.addr (pn - 1) in
            match Page.read drive (Page.full_name (File.fid file) ~page:pn ~addr:guess) with
            | Ok _ -> incr hits
            | Error _ -> (
                incr misses;
                (* Fall back to the file machinery. *)
                match File.read_page file pn with
                | Ok _ -> ()
                | Error e -> Format.kasprintf failwith "%a" File.pp_error e)
          done)
    in
    [
      name;
      Printf.sprintf "%d/%d" !hits (!hits + !misses);
      us_to_string us;
      us_to_string (us / last);
    ]
  in
  (* The compacted case needs its own flow: the file must exist before
     the compactor runs. *)
  let compacted_row =
    let drive, fs = fresh () in
    Fs.set_policy fs (Fs.Scattered (Random.State.make [| 3 |]));
    let root = ok Directory.pp_error (Directory.open_root fs) in
    let (_ : File.t) = make_file fs root "Target.dat" 20_000 5 in
    (match Compactor.compact fs with Ok _ -> () | Error msg -> failwith msg);
    let file = reopen fs "Target.dat" in
    let clock = Drive.clock drive in
    let base = ok File.pp_error (File.page_name file 1) in
    let last = File.last_page file in
    let hits = ref 0 in
    let (), us =
      timed clock (fun () ->
          for pn = 1 to last do
            let guess = Disk_address.offset base.Page.addr (pn - 1) in
            match Page.read drive (Page.full_name (File.fid file) ~page:pn ~addr:guess) with
            | Ok _ -> incr hits
            | Error _ -> (
                match File.read_page file pn with
                | Ok _ -> ()
                | Error e -> Format.kasprintf failwith "%a" File.pp_error e)
          done)
    in
    [ "after compaction"; Printf.sprintf "%d/%d" !hits last; us_to_string us; us_to_string (us / last) ]
  in
  let rows =
    [
      trial "fresh quiet disk" ~prepare:(fun _ -> ());
      trial "scattered allocation" ~prepare:(fun fs ->
          Fs.set_policy fs (Fs.Scattered (Random.State.make [| 3 |])));
      compacted_row;
    ]
  in
  print_table [ 24; 10; 12; 12 ]
    [ "layout"; "hits"; "whole file"; "per page" ]
    rows;
  print_endline
    "shape: arithmetic addressing hits everything on consecutive layouts,\n\
     collapses on scattered ones — and every miss is caught by the label\n\
     check and recovered, never silently wrong."

(* E9 — §3.3/§6: robustness. "The incidence of complaints about lost
   information is negligible." Plus the ablation: what the label check
   buys when the allocation map lies. *)
let e9 () =
  heading "E9  robustness under faults, and the no-check ablation (§3.3, §6)";
  claim "label checking confines damage; a stale map never overwrites data";
  (* (a) decay campaign: corrupt labels at random, scavenge, audit. *)
  let campaign fraction =
    let trials = 3 in
    let recovered = ref 0 and intact_total = ref 0 and files_total = ref 0 in
    for seed = 1 to trials do
      let drive, fs = fresh () in
      let root = ok Directory.pp_error (Directory.open_root fs) in
      let names =
        List.init 20 (fun i ->
            let name = Printf.sprintf "D%02d.dat" i in
            let (_ : File.t) = make_file fs root name (1000 + (300 * i)) (seed + i) in
            name)
      in
      let rng = Random.State.make [| seed * 97 |] in
      let (_ : Disk_address.t list) = Fault.decay rng drive ~fraction in
      match Scavenger.scavenge drive with
      | Error _ -> ()
      | Ok (fs', _) ->
          incr recovered;
          let root' = ok Directory.pp_error (Directory.open_root fs') in
          List.iter
            (fun name ->
              incr files_total;
              match Directory.lookup root' name with
              | Ok (Some e) -> (
                  match File.open_leader fs' e.Directory.entry_file with
                  | Ok f -> (
                      match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
                      | Ok _ -> incr intact_total
                      | Error _ -> ())
                  | Error _ -> ())
              | Ok None | Error _ -> ())
            names
    done;
    [
      Printf.sprintf "%.1f%%" (fraction *. 100.);
      Printf.sprintf "%d/%d" !recovered trials;
      Printf.sprintf "%d/%d" !intact_total !files_total;
    ]
  in
  print_table [ 10; 12; 14 ]
    [ "decay"; "recovered"; "files readable" ]
    (List.map campaign [ 0.002; 0.01; 0.03; 0.08 ]);
  (* (b) the ablation: a stale allocation map plus fresh allocations. The
     disk is filled first, so the lying map entries are the only pages
     the allocator can propose. *)
  let stale_map_damage ~checking =
    let geometry = { Geometry.diablo_31 with Geometry.model = "small"; cylinders = 20 } in
    let drive, fs = fresh ~geometry () in
    Fs.set_label_checking fs checking;
    let root = ok Directory.pp_error (Directory.open_root fs) in
    let precious = make_file fs root "Precious.dat" 8000 9 in
    let before =
      Bytes.to_string
        (ok File.pp_error (File.read_bytes precious ~pos:0 ~len:(File.byte_length precious)))
    in
    (* Fill everything else. *)
    let rec stuff i =
      match File.create fs ~name:(Printf.sprintf "Stuffing%04d." i) with
      | Ok f -> (
          match File.write_bytes f ~pos:0 (body i 1500) with
          | Ok () -> stuff (i + 1)
          | Error _ -> ())
      | Error _ -> ()
    in
    stuff 0;
    (* The crash: an allocation map from a stale checkpoint says the
       precious pages are free. *)
    for pn = 1 to File.last_page precious do
      let fn = ok File.pp_error (File.page_name precious pn) in
      Fs.mark_free fs fn.Page.addr
    done;
    (* An innocent program allocates new pages; with checks on it is told
       the disk is full, with checks off it tramples. *)
    (match File.create fs ~name:"Innocent.dat" with
    | Ok f -> ( match File.write_bytes f ~pos:0 (body 10 8000) with Ok () | Error _ -> ())
    | Error _ -> ());
    ignore drive;
    let after =
      match File.read_bytes precious ~pos:0 ~len:(String.length before) with
      | Ok b -> Bytes.to_string b
      | Error _ -> ""
    in
    let damaged_pages =
      let per_page = Sector.bytes_per_page in
      let n = (String.length before + per_page - 1) / per_page in
      let count = ref 0 in
      for p = 0 to n - 1 do
        let lo = p * per_page in
        let len = min per_page (String.length before - lo) in
        if
          String.length after < lo + len
          || not (String.equal (String.sub before lo len) (String.sub after lo len))
        then incr count
      done;
      !count
    in
    damaged_pages
  in
  let with_checks = stale_map_damage ~checking:true in
  let without = stale_map_damage ~checking:false in
  print_newline ();
  print_table [ 30; 18 ]
    [ "stale-map ablation"; "data pages destroyed" ]
    [
      [ "label checking on"; string_of_int with_checks ];
      [ "label checking off"; string_of_int without ];
    ];
  print_endline
    "shape: with checks the lying map costs only retries; without them the\n\
     allocator writes straight through live files."

(* E10 — §3.6: installed hint files give maximum-speed startup. *)
let e10 () =
  heading "E10  installed hint files (§3.6)";
  claim "installed programs start at maximum disk speed; a failed hint forces reinstall";
  let names = [ "Ed.scratch1"; "Ed.scratch2"; "Ed.journal"; "Ed.messages" ] in
  let run clutter =
    let drive, fs = fresh () in
    let clock = Drive.clock drive in
    let root = ok Directory.pp_error (Directory.open_root fs) in
    for i = 0 to clutter - 1 do
      let (_ : File.t) = make_file fs root (Printf.sprintf "Jumble%04d." i) 120 i in
      ()
    done;
    let state = ok Install.pp_error (Install.install fs ~directory:root ~names) in
    ok Install.pp_error (Install.save fs ~directory:root ~state_name:"Ed.state" state);
    (* The installed program remembers its state file's full name (it
       travels in the program's world image), so the fast path never
       consults a directory. *)
    let state_file = reopen fs "Ed.state" in
    let (), cold_us =
      timed clock (fun () ->
          List.iter
            (fun name ->
              match ok Directory.pp_error (Directory.lookup root name) with
              | Some e ->
                  let (_ : File.t) =
                    ok File.pp_error (File.open_leader fs e.Directory.entry_file)
                  in
                  ()
              | None -> failwith name)
            names)
    in
    let (), fast_us =
      timed clock (fun () ->
          let state = ok Install.pp_error (Install.load_from state_file) in
          match Install.fast_open fs state with
          | Ok _ -> ()
          | Error (`Reinstall_required msg) -> failwith msg)
    in
    [
      string_of_int clutter;
      us_to_string cold_us;
      us_to_string fast_us;
      Printf.sprintf "%.1fx" (float_of_int cold_us /. float_of_int fast_us);
    ]
  in
  print_table [ 18; 14; 14; 8 ]
    [ "directory entries"; "cold start"; "hinted start"; "speedup" ]
    (List.map run [ 50; 200; 800 ]);
  print_endline
    "shape: cold startup degrades with directory size; hinted startup is\n\
     flat — the hints bypass the directory entirely."

(* E11 — ablation of the design decision §3.5 declines: "scavenging
   cannot fully reconstruct lost directories. This could be accomplished
   by writing a journal of all changes … we do not consider our
   directories important enough." How many names does the journal buy
   back when a directory is destroyed? *)
let e11 () =
  heading "E11  journaled directories vs the scavenger alone (§3.5 ablation)";
  claim "scavenging recovers files but not names; a journal + snapshot recovers both";
  let run ~aliases =
    let geometry = { Geometry.diablo_31 with Geometry.model = "small"; cylinders = 30 } in
    let drive, fs = fresh ~geometry () in
    let root = ok Directory.pp_error (Directory.open_root fs) in
    let jd = ok Alto_fs.Journal.pp_error (Alto_fs.Journal.create fs ~parent:root ~name:"Vault.") in
    let files = 16 in
    for i = 0 to files - 1 do
      let file =
        ok File.pp_error (File.create fs ~name:(Printf.sprintf "Inner%02d." i))
      in
      ok File.pp_error (File.write_bytes file ~pos:0 (body i 600));
      let entry_name =
        if aliases && i mod 2 = 0 then Printf.sprintf "Alias%02d." i
        else Printf.sprintf "Inner%02d." i
      in
      ok Alto_fs.Journal.pp_error
        (Alto_fs.Journal.add jd ~name:entry_name (File.leader_name file))
    done;
    ok Alto_fs.Journal.pp_error (Alto_fs.Journal.take_snapshot jd);
    let wanted =
      List.init files (fun i ->
          if aliases && i mod 2 = 0 then Printf.sprintf "Alias%02d." i
          else Printf.sprintf "Inner%02d." i)
    in
    (* Destroy the directory's data page. *)
    let rng = Random.State.make [| 13 |] in
    let p1 = ok File.pp_error (File.page_name (Alto_fs.Journal.directory jd) 1) in
    Alto_disk.Fault.corrupt_part rng drive p1.Page.addr Sector.Value;
    let fs', _ = match Scavenger.scavenge drive with Ok x -> x | Error m -> failwith m in
    let root' = ok Directory.pp_error (Directory.open_root fs') in
    let count_recovered lookup =
      List.length (List.filter (fun name -> lookup name) wanted)
    in
    let scavenger_only =
      count_recovered (fun name ->
          match Directory.lookup root' name with Ok (Some _) -> true | Ok None | Error _ -> false)
    in
    let jd' =
      ok Alto_fs.Journal.pp_error
        (Alto_fs.Journal.open_existing fs' ~parent:root' ~name:"Vault.")
    in
    let (_ : Alto_fs.Journal.recovery) =
      ok Alto_fs.Journal.pp_error (Alto_fs.Journal.recover jd')
    in
    let with_journal =
      count_recovered (fun name ->
          match Alto_fs.Journal.lookup jd' name with
          | Ok (Some _) -> true
          | Ok None | Error _ -> false)
    in
    (files, scavenger_only, with_journal)
  in
  let rows =
    List.map
      (fun aliases ->
        let files, scav, journal = run ~aliases in
        [
          (if aliases then "half the entries are aliases" else "entry names = leader names");
          Printf.sprintf "%d/%d" scav files;
          Printf.sprintf "%d/%d" journal files;
        ])
      [ false; true ]
  in
  print_table [ 30; 18; 18 ]
    [ "workload"; "scavenger alone*"; "journal+snapshot" ]
    rows;
  print_endline
    "*names findable in the root after scavenging (orphans adopted under\n\
     leader names land there; aliases are simply gone). The journal\n\
     restores the directory itself, aliases included.";
  print_endline
    "shape: the paper is right that nothing is LOST without the journal —\n\
     and right that the names are; the journal is what buys them back."

(* E12 — §3.6: "Hint addresses can also be kept for every k-th page of
   the file to reduce the number of links that must be followed." *)
let e12 () =
  heading "E12  hint density: keeping every k-th page hint (§3.6)";
  claim "sparser hints trade memory for link-chasing on access";
  let drive, fs = fresh () in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let pages = 64 in
  let file = make_file fs root "Sparse.dat" (pages * Sector.bytes_per_page - 100) 3 in
  let clock = Drive.clock drive in
  (* A fixed pseudo-random access pattern. *)
  let accesses =
    let rng = Random.State.make [| 42 |] in
    Array.init 48 (fun _ -> 1 + Random.State.int rng pages)
  in
  let trial density =
    (* Warm all hints, then thin. *)
    for pn = 1 to pages do
      ignore (ok File.pp_error (File.read_page file pn))
    done;
    (match density with
    | None -> File.invalidate_hints file
    | Some k -> File.retain_hints file ~every:k);
    let kept = File.hinted_pages file in
    let (), us =
      timed clock (fun () ->
          Array.iter
            (fun pn ->
              ignore (ok File.pp_error (File.read_page file pn));
              (* Re-thin so later accesses cannot ride hints cached by
                 earlier ones: we are measuring the steady density. *)
              match density with
              | None -> File.invalidate_hints file
              | Some k -> File.retain_hints file ~every:k)
            accesses)
    in
    [
      (match density with None -> "no page hints" | Some 1 -> "every page" | Some k -> Printf.sprintf "every %d pages" k);
      string_of_int kept;
      us_to_string (us / Array.length accesses);
    ]
  in
  print_table [ 18; 14; 14 ]
    [ "hints kept"; "hint words"; "per access" ]
    [ trial (Some 1); trial (Some 4); trial (Some 8); trial (Some 16); trial None ];
  print_endline
    "shape: the knee is early — a few retained hints already bound the\n\
     chase; programs keep full hints for files they read hot."

(* E13 — the aging series behind §3.5's compacting scavenger: packs
   fragment under ordinary traffic; sequential reads decay; a periodic
   compaction holds the line. This is the "figure" the paper implies
   when it says scattered pages cost an order of magnitude. *)
let e13 () =
  heading "E13  how a pack ages, with and without periodic compaction (§3.5)";
  claim "fragmentation accumulates under create/delete traffic; compaction resets it";
  let rounds = 8 and files_per_round = 12 in
  let run ~compact_every =
    (* A small pack under pressure: the allocator must thread freed holes. *)
    let geometry = { Geometry.diablo_31 with Geometry.model = "aging"; cylinders = 26 } in
    let drive, fs = fresh ~geometry () in
    let clock = Drive.clock drive in
    let root = ok Directory.pp_error (Directory.open_root fs) in
    let rng = Random.State.make [| 77 |] in
    let live = ref [] in
    let counter = ref 0 in
    let round r =
      (* Churn: delete a few files, create a few, append to some. *)
      let victims, keep =
        List.partition (fun _ -> Random.State.int rng 3 = 0) !live
      in
      List.iter
        (fun name ->
          match Directory.lookup root name with
          | Ok (Some e) -> (
              match File.open_leader fs e.Directory.entry_file with
              | Ok f ->
                  (match File.delete f with Ok () | Error _ -> ());
                  (match Directory.remove root name with Ok _ | Error _ -> ())
              | Error _ -> ())
          | Ok None | Error _ -> ())
        victims;
      live := keep;
      for _ = 1 to files_per_round do
        incr counter;
        let name = Printf.sprintf "Age%04d." !counter in
        let (_ : File.t) =
          make_file fs root name (1000 + Random.State.int rng 6000) !counter
        in
        live := name :: !live
      done;
      List.iteri
        (fun i name ->
          if i mod 4 = 0 then
            match Directory.lookup root name with
            | Ok (Some e) -> (
                match File.open_leader fs e.Directory.entry_file with
                | Ok f -> (
                    match File.append_bytes f (body r 700) with Ok () | Error _ -> ())
                | Error _ -> ())
            | Ok None | Error _ -> ())
        !live;
      if compact_every > 0 && r mod compact_every = 0 then
        match Compactor.compact fs with Ok _ -> () | Error _ -> ()
    in
    (* After each round: average adjacency and a sequential read probe. *)
    List.map
      (fun r ->
        round r;
        let fractions =
          List.filter_map
            (fun name ->
              match Directory.lookup root name with
              | Ok (Some e) -> (
                  match File.open_leader fs e.Directory.entry_file with
                  | Ok f -> (
                      match Compactor.consecutive_fraction fs f with
                      | Ok x -> Some x
                      | Error _ -> None)
                  | Error _ -> None)
              | Ok None | Error _ -> None)
            !live
        in
        let avg =
          if fractions = [] then 1.0
          else List.fold_left ( +. ) 0.0 fractions /. float_of_int (List.length fractions)
        in
        (* Sequential-read probe over every live file. *)
        let read_us =
          let total_us = ref 0 and total_bytes = ref 0 in
          List.iter
            (fun name ->
              match Directory.lookup root name with
              | Ok (Some e) -> (
                  match File.open_leader fs e.Directory.entry_file with
                  | Ok f ->
                      let (), us =
                        timed clock (fun () ->
                            match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
                            | Ok _ | Error _ -> ())
                      in
                      total_us := !total_us + us;
                      total_bytes := !total_bytes + File.byte_length f
                  | Error _ -> ())
              | Ok None | Error _ -> ())
            !live;
          !total_us * 1000 / max 1 !total_bytes
        in
        (r, avg, read_us))
      (List.init rounds (fun r -> r + 1))
  in
  let without = run ~compact_every:0 in
  let with_compaction = run ~compact_every:3 in
  print_table [ 6; 22; 26 ]
    [ "round"; "adjacency (no compact)"; "adjacency (compact every 3)" ]
    (List.map2
       (fun (r, a, _) (_, a', _) ->
         [ string_of_int r; Printf.sprintf "%.0f%%" (a *. 100.); Printf.sprintf "%.0f%%" (a' *. 100.) ])
       without with_compaction);
  let last3 rows = List.filteri (fun i _ -> i >= rounds - 3) rows in
  let avg_cost rows =
    let costs = List.map (fun (_, _, c) -> c) (last3 rows) in
    List.fold_left ( + ) 0 costs / List.length costs
  in
  Printf.printf
    "steady-state sequential read cost: %d µs/KB untreated vs %d µs/KB compacted\n"
    (avg_cost without) (avg_cost with_compaction);
  print_endline
    "shape: adjacency decays steadily under churn (a real pack had months\n\
     of this — E2 shows where it ends up) and read costs climb with it; a\n\
     compacting scavenge every few rounds resets files to consecutive."

(* E14 — soft-error soak (the transient-fault model; ISSUE calls this
   the "E7 soft-error soak", renumbered because E7 was taken by the
   junta experiment). Below the marginal threshold every transient is
   absorbed by the bounded-retry ladder: zero data loss, zero
   exhaustion, just retries costing revolutions. *)
let e14 () =
  heading "E14  soft-error soak: bounded retry absorbs transients";
  claim "transient read errors are retried and recovered; no data is lost";
  let counter name =
    match Alto_obs.Obs.find name with
    | Some (Alto_obs.Obs.Counter v) -> v
    | Some (Alto_obs.Obs.Histogram _) | None -> 0
  in
  (* (a) Sweep the soft-error rate. Each round: fresh volume, transient
     mode on, 20 files written and read back twice, every byte compared
     against what was written. *)
  let soak rate =
    let drive, fs = fresh () in
    let clock = Fs.clock fs in
    Fault.set_soft_errors drive ~seed:1234 ~rate;
    let soft0 = counter "disk.soft_errors"
    and retries0 = counter "disk.retries"
    and exhausted0 = counter "disk.retry_exhausted" in
    let root = ok Directory.pp_error (Directory.open_root fs) in
    let files = 20 in
    let expected =
      List.init files (fun i ->
          let name = Printf.sprintf "Soak%02d.dat" i in
          let bytes = 1000 + (250 * i) in
          let (_ : File.t) = make_file fs root name bytes (100 + i) in
          (name, body (100 + i) bytes))
    in
    let intact = ref 0 in
    let (), us =
      timed clock (fun () ->
          for _pass = 1 to 2 do
            List.iter
              (fun (name, want) ->
                let f = reopen fs name in
                match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
                | Ok got when Bytes.to_string got = want -> incr intact
                | Ok _ | Error _ -> ())
              expected
          done)
    in
    let soft = counter "disk.soft_errors" - soft0
    and retries = counter "disk.retries" - retries0
    and exhausted = counter "disk.retry_exhausted" - exhausted0 in
    if !intact <> 2 * files then
      Format.kasprintf failwith
        "E14: data loss at rate %g: only %d/%d reads intact" rate !intact
        (2 * files);
    if exhausted <> 0 then
      Format.kasprintf failwith "E14: %d retry ladders ran dry at rate %g"
        exhausted rate;
    [
      Printf.sprintf "%g" rate;
      Printf.sprintf "%d/%d" !intact (2 * files);
      string_of_int soft;
      string_of_int retries;
      string_of_int exhausted;
      us_to_string us;
    ]
  in
  print_table [ 8; 10; 12; 9; 11; 12 ]
    [ "rate"; "intact"; "soft errors"; "retries"; "exhausted"; "read time" ]
    (List.map soak [ 0.; 0.0001; 0.001; 0.005; 0.02 ]);
  (* (b) Marginal sectors: a few sectors fail most reads and get worse
     each time. The scavenger's verify pass notices the retry effort,
     copies the pages to healthy sectors and quarantines the old ones in
     the volume's persistent bad-sector table. *)
  let drive, fs = fresh () in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let files = 12 in
  let expected =
    List.init files (fun i ->
        let name = Printf.sprintf "Marg%02d.dat" i in
        let bytes = 2000 + (300 * i) in
        let (_ : File.t) = make_file fs root name bytes (200 + i) in
        (name, body (200 + i) bytes))
  in
  let reserved_top = 1 + Fs.descriptor_page_count fs in
  let victims =
    let acc = ref [] in
    let i = ref (Drive.sector_count drive - 1) in
    while List.length !acc < 3 && !i > reserved_top do
      let addr = Disk_address.of_index !i in
      if not (Fs.is_free_in_map fs addr) then acc := addr :: !acc;
      decr i
    done;
    !acc
  in
  List.iter
    (fun addr -> Fault.make_marginal ~rate:0.7 ~growth:1.0 ~degrade_after:1000 drive addr)
    victims;
  let fs', report =
    ok Format.pp_print_string
      (Scavenger.scavenge ~verify_values:true ~suspect_retries:1 drive)
  in
  (* A marginal sector the single verify probe happened to catch on a
     good revolution stays in service, so a read can still need the
     ladder — and can still exhaust it. A patient user retries the whole
     operation, as the real one would. *)
  let intact =
    List.length
      (List.filter
         (fun (name, want) ->
           let rec attempt k =
             k > 0
             &&
             match
               try
                 let f = reopen fs' name in
                 match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
                 | Ok got -> Some (Bytes.to_string got = want)
                 | Error _ -> None
               with Failure _ -> None
             with
             | Some verdict -> verdict
             | None -> attempt (k - 1)
           in
           attempt 5)
         expected)
  in
  (* The quarantine verdicts survive a remount: the table rides in the
     rebuilt descriptor. *)
  let table_after_remount =
    match Fs.mount drive with
    | Ok fs'' -> List.length (Fs.bad_sector_table fs'')
    | Error _ -> -1
  in
  print_table [ 26; 10 ]
    [ "after scavenge"; "" ]
    [
      [ "marginal planted"; string_of_int (List.length victims) ];
      [ "pages rescued"; string_of_int report.Scavenger.marginal_relocated ];
      [ "sectors quarantined"; string_of_int (List.length (Fs.bad_sector_table fs')) ];
      [ "table after remount"; string_of_int table_after_remount ];
      [ "files intact"; Printf.sprintf "%d/%d" intact files ];
    ];
  if intact <> files then failwith "E14: data lost rescuing marginal sectors";
  if report.Scavenger.marginal_relocated < 2 then
    failwith "E14: the verify pass rescued fewer marginal pages than expected";
  if table_after_remount <> List.length (Fs.bad_sector_table fs') then
    failwith "E14: the bad-sector table did not survive the remount";
  print_endline
    "shape: below the marginal threshold the retry ladder hides every\n\
     transient (zero exhausted, zero loss); sectors that need visible\n\
     retry effort get their data moved and the sector retired for good."

(* E15 — PR 3's disk fast path: the same scattered request set issued
   naively, file by file in chain order, vs through the elevator. Both
   passes perform identical operations (label check + value read per
   page); only the order differs, so the whole gap is motion. *)
let e15 () =
  heading "E15  batched vs naive transfers (elevator scheduling)";
  claim "cylinder batching at least halves the seeks on a scattered pack";
  let drive, fs = fresh () in
  Fs.set_policy fs (Fs.Scattered (Random.State.make [| 42 |]));
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let names = fill_to fs root ~fraction:0.5 ~file_bytes:8000 in
  (* The request set a whole-pack reader (a backup pass, say) wants:
     every page of every file, its label verified on the way past.
     Collected up front so both passes issue exactly the same work. *)
  let wanted =
    List.concat_map
      (fun name ->
        let file = reopen fs name in
        let fid = File.fid file in
        List.init (File.last_page file + 1) (fun pn ->
            (fid, pn, (ok File.pp_error (File.page_name file pn)).Page.addr)))
      names
  in
  let clock = Drive.clock drive in
  let probe = Array.make Sector.value_words Word.zero in
  let op =
    { Drive.op_none with Drive.label = Some Drive.Check; value = Some Drive.Read }
  in
  let measure f =
    Drive.reset_stats drive;
    let (), us = timed clock f in
    ((Drive.stats drive).Drive.seeks, us)
  in
  let naive_seeks, naive_us =
    measure (fun () ->
        List.iter
          (fun (fid, pn, addr) ->
            match
              Reliable.run drive addr op
                ~label:(Label.check_name fid ~page:pn)
                ~value:probe ()
            with
            | Ok () -> ()
            | Error e ->
                Format.kasprintf failwith "E15 naive read: %a" Drive.pp_error e)
          wanted)
  in
  let requests =
    Array.of_list
      (List.map
         (fun (fid, pn, addr) ->
           Sched.request ~label:(Label.check_name fid ~page:pn) ~value:probe
             addr op)
         wanted)
  in
  let batched_seeks, batched_us =
    measure (fun () ->
        Array.iter
          (fun o ->
            match o.Sched.result with
            | Ok () -> ()
            | Error e ->
                Format.kasprintf failwith "E15 batched read: %a" Drive.pp_error e)
          (Sched.run_batch drive requests))
  in
  print_table [ 26; 8; 14 ]
    [ "pass over the same pages"; "seeks"; "time" ]
    [
      [ "naive (file order)"; string_of_int naive_seeks; us_to_string naive_us ];
      [ "elevator batch"; string_of_int batched_seeks; us_to_string batched_us ];
    ];
  Printf.printf "seek reduction: %.1fx  (%d pages over %d files)\n"
    (float_of_int naive_seeks /. float_of_int batched_seeks)
    (List.length wanted) (List.length names);
  if naive_seeks < 2 * batched_seeks then
    failwith "E15: batching saved fewer than half the seeks";
  print_endline
    "shape: the naive pass pays a seek per page on a scattered pack; the\n\
     elevator pays at most one pass over the cylinders, so the same reads\n\
     cost a fraction of the motion."

(* E16 — PR 4's online patrol. A live workload runs while the patrol
   sweeps during the idle moments between steps, exactly the executive's
   shape. Marginal sectors planted under live data pages must be found
   by retry evidence and their pages moved to safety before the sectors
   fail — zero loss, measured time-to-drain. Then the recovery half: an
   unsafe shutdown answered by the bounded patrol scan vs a full
   scavenge, both in simulated Alto time. *)
let e16 () =
  heading "E16  online patrol under load: relocation and bounded recovery";
  claim
    "marginal sectors are drained before they fail; crash recovery is \
     bounded by the sweep's unfinished tail, not by the pack";
  let drive, fs = fresh () in
  Fault.set_soft_errors drive ~seed:4242 ~rate:0.0;
  let clock = Fs.clock fs in
  let n = Drive.sector_count drive in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let files = 16 in
  let expected =
    List.init files (fun i ->
        let name = Printf.sprintf "Live%02d.dat" i in
        let bytes = 2200 + (270 * i) in
        let (_ : File.t) = make_file fs root name bytes (300 + i) in
        (name, body (300 + i) bytes))
  in
  (* Four live data pages get wearing-out sectors: a steady 0.7 failure
     rate (no compounding), far from the degradation cliff so the race
     is patrol-vs-decay, not a foregone loss. *)
  let victims =
    List.map
      (fun i ->
        let file = reopen fs (Printf.sprintf "Live%02d.dat" i) in
        (ok File.pp_error (File.page_name file 2)).Page.addr)
      [ 0; 5; 10; 15 ]
  in
  List.iter
    (fun a -> Fault.make_marginal ~rate:0.7 ~growth:1.0 ~degrade_after:250 drive a)
    victims;
  let patrol = Patrol.create ~suspect_retries:1 fs in
  let drained () =
    List.for_all (fun a -> Fs.quarantined fs a || Fs.spilled fs a) victims
  in
  (* The soak: one workload step (read a file; every sixth step write a
     scratch file), then one idle-moment patrol tick. *)
  let step = ref 0 in
  let soak_budget = 6 * ((n / 24) + 1) in
  let (), drain_us =
    timed clock (fun () ->
        while (not (drained ())) && !step < soak_budget do
          let name, want = List.nth expected (!step mod files) in
          let f = reopen fs name in
          (match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
          | Ok got when Bytes.to_string got = want -> ()
          | Ok _ -> failwith ("E16: " ^ name ^ " corrupted under load")
          | Error e -> Format.kasprintf failwith "E16: %s: %a" name File.pp_error e);
          if !step mod 6 = 5 then
            ignore
              (make_file fs root (Printf.sprintf "Scratch%03d.dat" !step) 600 !step);
          ignore (Patrol.tick patrol : Patrol.report);
          incr step
        done)
  in
  if not (drained ()) then failwith "E16: the patrol never drained a victim";
  List.iter
    (fun a ->
      if Drive.is_bad drive a then
        failwith "E16: a marginal sector went hard-bad before relocation")
    victims;
  if Patrol.pages_lost patrol > 0 then failwith "E16: the patrol lost pages";
  (* Every byte of every threatened file, via fresh handles. *)
  let intact =
    List.length
      (List.filter
         (fun (name, want) ->
           let f = reopen fs name in
           match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
           | Ok got -> Bytes.to_string got = want
           | Error _ -> false)
         expected)
  in
  if intact <> files then failwith "E16: data lost under the patrol's watch";
  print_table [ 30; 14 ]
    [ "patrol under load"; "" ]
    [
      [ "marginal sectors planted"; string_of_int (List.length victims) ];
      [ "workload steps to drain"; string_of_int !step ];
      [ "time to drain"; us_to_string drain_us ];
      [ "pages relocated"; string_of_int (Patrol.relocated patrol) ];
      [ "pages lost"; string_of_int (Patrol.pages_lost patrol) ];
      [ "files intact"; Printf.sprintf "%d/%d" intact files ];
    ];
  (* The recovery half. Walk the cursor into the second half of a lap,
     dirty the volume (a mutation with no clean shutdown), and compare
     the bounded scan a dirty boot runs against the full scavenge it
     replaces. *)
  while
    let c = Fs.patrol_cursor fs in
    c < n / 2 || c > n - 200
  do
    ignore (Patrol.tick patrol : Patrol.report)
  done;
  let (_ : File.t) = make_file fs root "Unsaved.dat" 900 999 in
  if not (Fs.dirty fs) then failwith "E16: the mutation left the volume clean";
  let resumed_at = Fs.patrol_cursor fs in
  let recovery = Patrol.recover fs in
  if Fs.dirty fs then failwith "E16: recovery left the volume dirty";
  let _, scavenge_us =
    timed clock (fun () ->
        ignore (ok Format.pp_print_string (Scavenger.scavenge drive)))
  in
  print_table [ 30; 14 ]
    [ "unsafe-shutdown recovery"; "" ]
    [
      [ "cursor at crash"; Printf.sprintf "%d/%d" resumed_at n ];
      [ "sectors scanned"; string_of_int recovery.Patrol.sectors_scanned ];
      [ "bounded recovery"; us_to_string recovery.Patrol.duration_us ];
      [ "full scavenge"; us_to_string scavenge_us ];
      [
        "advantage";
        Printf.sprintf "%.1fx"
          (float_of_int scavenge_us /. float_of_int recovery.Patrol.duration_us);
      ];
    ];
  if 2 * recovery.Patrol.duration_us > scavenge_us then
    failwith "E16: bounded recovery was not measurably cheaper than a scavenge";
  print_endline
    "shape: the patrol turns media decay from a scavenger-sized event\n\
     into a per-slice tax nobody notices: every wearing-out sector is\n\
     drained within a lap or two, and a crash costs the unswept tail of\n\
     the current lap instead of a whole-pack rebuild."

(* E17 — the span profiler's books balance: a scavenge's wall time
   decomposes into named passes, and the drive's motion counters
   reappear, microsecond for microsecond, split across the span tree. *)
let e17 () =
  heading "E17  span profiler attribution (alto_prof)";
  claim
    "the span tree attributes >=95% of a scavenge to named passes, and its \
     disk components sum to the disk.* motion counters within 1%";
  let drive, fs = fresh () in
  let clock = Fs.clock fs in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let (_ : string list) = fill_to fs root ~fraction:0.5 ~file_bytes:4000 in
  let report =
    Obs.time clock "e17.scavenge_us" (fun () ->
        match Scavenger.scavenge ~verify_values:true drive with
        | Ok (_, r) -> r
        | Error msg -> failwith msg)
  in
  let tree = Prof.tree () in
  let span =
    match Prof.find tree "e17.scavenge_us" with
    | Some s -> s
    | None -> failwith "E17: the scavenge span is missing from the tree"
  in
  if span.Prof.total_us = 0 then failwith "E17: the scavenge span cost nothing";
  let child_us = span.Prof.total_us - span.Prof.self_us in
  let coverage = float_of_int child_us /. float_of_int span.Prof.total_us in
  (* The whole-tree disk components against the drive's own counters.
     Both are cumulative over the process, so the comparison holds no
     matter which experiments ran before this one. *)
  let counter name =
    match Obs.find name with
    | Some (Obs.Counter n) -> n
    | Some (Obs.Histogram _) | None -> 0
  in
  let t = Prof.disk_totals () in
  let prof_disk_us =
    t.Prof.t_seek_us + t.Prof.t_rotation_us + t.Prof.t_transfer_us
    + t.Prof.t_retry_us
  in
  let drive_disk_us =
    counter "disk.seek_us" + counter "disk.rotational_wait_us"
    + counter "disk.transfer_us"
  in
  let drift =
    if drive_disk_us = 0 then 1.0
    else
      abs_float (float_of_int (prof_disk_us - drive_disk_us))
      /. float_of_int drive_disk_us
  in
  let passes =
    List.filter
      (fun (s : Prof.snapshot) -> s.Prof.total_us > 0)
      span.Prof.children
  in
  print_table [ 26; 14; 10 ]
    [ "scavenge pass"; "total"; "share" ]
    (List.map
       (fun (s : Prof.snapshot) ->
         [
           s.Prof.name;
           us_to_string s.Prof.total_us;
           Printf.sprintf "%5.1f%%"
             (100. *. float_of_int s.Prof.total_us
             /. float_of_int span.Prof.total_us);
         ])
       passes);
  print_table [ 26; 14 ]
    [ "attribution"; "" ]
    [
      [ "scavenge wall time"; us_to_string span.Prof.total_us ];
      [ "named child spans"; us_to_string child_us ];
      [ "coverage"; Printf.sprintf "%.2f%%" (100. *. coverage) ];
      [ "tree disk components"; us_to_string prof_disk_us ];
      [ "drive disk counters"; us_to_string drive_disk_us ];
      [ "drift"; Printf.sprintf "%.4f%%" (100. *. drift) ];
      [ "sectors scavenged"; string_of_int report.Scavenger.sectors_scanned ];
    ];
  if coverage < 0.95 then
    failwith "E17: less than 95% of the scavenge is attributed to passes";
  if drift > 0.01 then
    failwith "E17: span-tree disk time drifted from the disk.* counters";
  print_endline
    "shape: attribution is conservation of time: every microsecond the\n\
     drive charges lands in exactly one span, so the profile's books\n\
     balance against the aggregate counters instead of sampling them."

(* E18 — §4: a server is "a set of cooperating activities" multiplexing
   many conversations; §4's cooperative switching plus the elevator disk
   scheduler serve hundreds of clients from one machine. The workload is
   an overload test: 200 scripted clients all offering work every round
   against a 16-slot activity table, so admission control NAKs the
   excess and the standing queue merges the admitted conversations'
   pages into shared C-SCAN sweeps. *)
let e18 () =
  heading "E18  concurrent file service under overload (§4)";
  claim
    "a bounded activity table plus a standing elevator queue serves \
     hundreds of clients fairly: refused requests are NAKed and retried, \
     admitted ones share disk sweeps, and no client starves";
  let n_clients = 200 in
  let slots = 16 in
  let n_files = 40 in
  let file_bytes = 2000 in
  let _drive, fs = fresh () in
  let clock = Fs.clock fs in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  (* The served corpus: [n_files] catalogued files whose contents every
     client can recompute for verification. *)
  let fill_names = Array.init n_files (fun k -> Printf.sprintf "Srv%02d.dat" k) in
  let fill_bodies = Array.init n_files (fun k -> body k file_bytes) in
  Array.iteri
    (fun k name -> ignore (make_file fs root name file_bytes k : File.t))
    fill_names;
  let net = Net.create ~clock () in
  let server_name = "fs" in
  let server_station = Net.attach net ~name:server_name in
  let srv = File_server.create ~max_active:slots fs server_station in
  let stations =
    Array.init n_clients (fun i -> Net.attach net ~name:(Printf.sprintf "c%03d" i))
  in
  let put_body i = body (1000 + i) 400 in
  (* Client [i]'s [c]-th op: 6 GETs, 3 PUTs, 1 LIST per 10, phase-shifted
     per client so every round offers a mixed load. *)
  let op_of i c =
    match (i + c) mod 10 with
    | 0 | 1 | 2 | 3 | 4 | 5 -> `Get (((i * 7) + (c * 3)) mod n_files)
    | 6 | 7 | 8 -> `Put
    | _ -> `List
  in
  let okc r = ok File_server.Client.pp_error r in
  let completed = Array.make n_clients 0 in
  let naks = Array.make n_clients 0 in
  let inflight = Array.make n_clients false in
  let sent_at = Array.make n_clients 0 in
  let h_wait = Obs.histogram "e18.client_wait_us" in
  let send_op i =
    let st = stations.(i) in
    (match op_of i completed.(i) with
    | `Get k -> okc (File_server.Client.send_get st ~server:server_name ~name:fill_names.(k))
    | `Put ->
        okc
          (File_server.Client.send_put st ~server:server_name
             ~name:(Printf.sprintf "Cl%03d.out" i)
             (put_body i))
    | `List -> okc (File_server.Client.send_list st ~server:server_name));
    sent_at.(i) <- Sim_clock.now_us clock;
    inflight.(i) <- true
  in
  let poll i =
    match File_server.Client.poll_reply stations.(i) with
    | None -> failwith "E18: a client is owed a reply the server never sent"
    | Some (Error File_server.Client.Busy) ->
        (* NAKed at admission: the op stays pending ([completed] did not
           move, so the same op is regenerated) and is resent next round. *)
        naks.(i) <- naks.(i) + 1;
        inflight.(i) <- false
    | Some (Error e) ->
        Format.kasprintf failwith "E18: client %d: %a" i File_server.Client.pp_error e
    | Some (Ok reply) ->
        (match (op_of i completed.(i), reply) with
        | `Get k, File_server.Client.File (name, contents) ->
            if not (String.equal name fill_names.(k)) then
              failwith "E18: GET returned the wrong file";
            if not (String.equal contents fill_bodies.(k)) then
              failwith "E18: GET returned corrupted contents"
        | `Put, File_server.Client.Ack -> ()
        | `List, File_server.Client.File (name, contents) ->
            if not (String.equal name ";listing") then
              failwith "E18: LIST reply under the wrong name";
            if
              not
                (List.mem fill_names.(0)
                   (String.split_on_char '\n' contents))
            then failwith "E18: listing is missing a served file"
        | _ -> failwith "E18: reply kind does not match the request");
        Obs.observe h_wait (Sim_clock.now_us clock - sent_at.(i));
        completed.(i) <- completed.(i) + 1;
        inflight.(i) <- false
  in
  let t0 = Sim_clock.now_us clock in
  (* One full rotation of the send order: every client leads the queue
     an equal number of rounds, so fairness is a property the admission
     discipline must deliver, not one the script smuggles in. *)
  let iterations = n_clients in
  for iter = 0 to iterations - 1 do
    for k = 0 to n_clients - 1 do
      let i = (iter + k) mod n_clients in
      if not inflight.(i) then send_op i
    done;
    while File_server.tick srv > 0 do
      ()
    done;
    Array.iteri (fun i f -> if f then poll i) inflight
  done;
  let elapsed = Sim_clock.now_us clock - t0 in
  let reqs = Array.fold_left ( + ) 0 completed in
  let total_naks = Array.fold_left ( + ) 0 naks in
  let c_min = Array.fold_left min max_int completed in
  let c_max = Array.fold_left max 0 completed in
  if c_min = 0 then failwith "E18: a client starved (zero completed requests)";
  let fairness = float_of_int c_max /. float_of_int c_min in
  (* Milli-requests per second: integer, but fine-grained enough that
     the regression gate's 15% band means something. *)
  let throughput_mrps =
    if elapsed = 0 then 0 else reqs * 1_000_000_000 / elapsed
  in
  (* The CI gate's handles: throughput (15% band) and fairness (absolute
     ceiling), recorded as counters so the JSON carries them. *)
  Obs.add (Obs.counter "e18.throughput_mrps") throughput_mrps;
  Obs.add (Obs.counter "e18.fairness_x100")
    (int_of_float (ceil (fairness *. 100.)));
  let s = File_server.stats srv in
  if s.File_server.gets + s.File_server.puts + s.File_server.lists <> reqs then
    failwith "E18: the server's books disagree with the clients'";
  if s.File_server.naks <> total_naks then
    failwith "E18: NAK counts disagree between server and clients";
  let counter name =
    match Obs.find name with Some (Obs.Counter n) -> n | _ -> 0
  in
  let hist_p name p =
    match Obs.find name with
    | Some (Obs.Histogram s) ->
        if p = 50 then s.Obs.p50 else if p = 90 then s.Obs.p90 else s.Obs.p99
    | _ -> 0
  in
  print_table [ 30; 16 ]
    [ "measure"; "value" ]
    [
      [ "clients"; string_of_int n_clients ];
      [ "activity slots"; string_of_int slots ];
      [ "requests completed"; string_of_int reqs ];
      [ "  gets / puts / lists";
        Printf.sprintf "%d / %d / %d" s.File_server.gets s.File_server.puts
          s.File_server.lists ];
      [ "admission NAKs"; string_of_int total_naks ];
      [ "reply send errors"; string_of_int s.File_server.send_errors ];
      [ "elapsed (sim)"; us_to_string elapsed ];
      [ "throughput"; Printf.sprintf "%.2f reqs/s" (float_of_int throughput_mrps /. 1000.) ];
      [ "per-client completed"; Printf.sprintf "min %d  max %d" c_min c_max ];
      [ "fairness (max/min)"; Printf.sprintf "%.2f" fairness ];
      [ "client wait p50"; us_to_string (hist_p "e18.client_wait_us" 50) ];
      [ "client wait p99"; us_to_string (hist_p "e18.client_wait_us" 99) ];
      [ "server req p99"; us_to_string (hist_p "server.req_us" 99) ];
      [ "disk.op_us p99 under load"; us_to_string (hist_p "disk.op_us" 99) ];
      [ "shared sweeps"; string_of_int (counter "server.activities.shared_sweeps") ];
      [ "merged batches"; string_of_int (counter "disk.sched.merged_batches") ];
    ];
  if n_clients < 200 then failwith "E18: the acceptance floor is 200 clients";
  if total_naks = 0 then
    failwith "E18: overload never tripped admission control (no NAKs)";
  if fairness > 2.0 then
    Format.kasprintf failwith
      "E18: fairness %.2f exceeds the 2.0 ceiling (min %d, max %d)" fairness
      c_min c_max;
  if counter "disk.sched.merged_batches" = 0 then
    failwith "E18: concurrent conversations never shared an elevator sweep";
  print_endline
    "shape: overload is refused at the door, not absorbed: the table\n\
     admits a bounded crew whose page requests merge into shared C-SCAN\n\
     sweeps, the rest hear NAK and retry, and one full rotation of the\n\
     send order completes every client within 2x of every other."

(* E19 — beyond the paper's single machine: M Altos, each a full volume
   on its own fallible drive, hold byte-identical replicas and audit
   each other over a lossy network (lib/server/replica.ml). The scenario
   is the worst day §3.5's recovery discipline can imagine: soft errors
   on every pack, a net that drops/duplicates/delays, and one node whose
   pack dies wholesale mid-audit — it must be rebuilt byte-identical
   from the crowd while a survivor keeps serving files. *)
let e19 () =
  heading "E19  replicated Altos survive whole-pack loss";
  claim
    "three replicas auditing each other over a lossy net rebuild a \
     wholly lost pack byte-identically while a survivor keeps serving, \
     with zero pages lost";
  let m = 3 in
  let geometry =
    { Geometry.diablo_31 with Geometry.model = "mid"; cylinders = 50 }
  in
  let clock = Sim_clock.create () in
  (* The audit rides this net, and this net lies. *)
  let net = Net.create ~clock () in
  let drives = Array.init m (fun _ -> Drive.create ~clock ~pack_id:1 geometry) in
  let sector_count = Drive.sector_count drives.(0) in
  let fs0 = Fs.format drives.(0) in
  let root = ok Directory.pp_error (Directory.open_root fs0) in
  let n_files = 64 in
  let file_bytes = 4000 in
  let fill_names = Array.init n_files (fun k -> Printf.sprintf "Repl%02d.dat" k) in
  let fill_bodies = Array.init n_files (fun k -> body k file_bytes) in
  Array.iteri
    (fun k name -> ignore (make_file fs0 root name file_bytes k : File.t))
    fill_names;
  (match Fs.flush fs0 with Ok () -> () | Error _ -> failwith "E19: flush");
  (* Provision the replicas the way real ones would be: clone the built
     pack sector-for-sector (replaying the ops would not be
     byte-identical — leader pages carry creation timestamps). *)
  for i = 1 to m - 1 do
    for s = 0 to sector_count - 1 do
      let sec = Drive.peek drives.(0) (Disk_address.of_index s) in
      Drive.poke drives.(i) (Disk_address.of_index s) Sector.Header
        (Sector.part_of sec Sector.Header);
      Drive.poke drives.(i) (Disk_address.of_index s) Sector.Label
        (Sector.part_of sec Sector.Label);
      Drive.poke drives.(i) (Disk_address.of_index s) Sector.Value
        (Sector.part_of sec Sector.Value)
    done
  done;
  (* Every pack is fallible: a base soft-error rate plus a few marginal
     sectors per drive (degrade_after is huge — wear, not death; whole-
     pack death is node C's job today). *)
  Array.iteri
    (fun i d ->
      Drive.set_soft_errors d ~seed:(101 + i) ~rate:0.002;
      List.iter
        (fun s ->
          Drive.set_marginal d (Disk_address.of_index s) ~rate:0.05
            ~growth:1.1 ~degrade_after:1_000_000)
        [ 37 + (i * 11); 205 + (i * 17); 611 + (i * 23) ])
    drives;
  (* And the net lies: seeded drop, duplication and delay. *)
  Net.set_faults net ~drop:0.05 ~dup:0.03 ~delay:0.10 ~delay_us:2_000
    ~seed:19 ();
  let fleet = Replica.create ~clock net in
  let node_names = [| "alto-a"; "alto-b"; "alto-c" |] in
  let nodes =
    Array.init m (fun i ->
        let fs =
          if i = 0 then fs0
          else
            match Fs.mount drives.(i) with
            | Ok fs -> fs
            | Error msg -> failwith ("E19: mount replica: " ^ msg)
        in
        Replica.join fleet ~name:node_names.(i) fs)
  in
  let a = nodes.(0) and c = nodes.(2) in
  (* Survivor A also runs the file service. The service LAN is a second,
     clean net on the same clock — the audit's lossy internet is between
     machines; the probe client sits next to the server. *)
  let service_net = Net.create ~clock () in
  let server_station = Net.attach service_net ~name:"fs" in
  let srv = File_server.create fs0 server_station in
  let probe = Net.attach service_net ~name:"probe" in
  let fetches = ref 0 in
  let probe_k = ref 0 in
  let fetch_one () =
    let k = !probe_k mod n_files in
    incr probe_k;
    match
      File_server.Client.fetch probe ~server:"fs" ~name:fill_names.(k)
        ~pump:(fun () ->
          ignore (File_server.tick srv : int);
          ignore (Replica.tick_fleet fleet : int))
    with
    | Ok contents ->
        if not (String.equal contents fill_bodies.(k)) then
          failwith "E19: GET during rebuild returned corrupted contents";
        incr fetches
    | Error e ->
        Format.kasprintf failwith "E19: GET during rebuild: %a"
          File_server.Client.pp_error e
  in
  (* One clean lap so every node has audited the whole pack once. *)
  let all_reached target =
    Array.for_all (fun n -> Replica.laps n >= target) nodes
  in
  if not (Replica.run_until fleet (fun () -> all_reached 1)) then
    failwith "E19: fleet stalled during the clean lap";
  (* Mid-audit, node C's pack dies wholesale. *)
  if not (Replica.run_until fleet (fun () -> Replica.cursor c >= sector_count / 2))
  then failwith "E19: fleet stalled approaching the kill point";
  let junk_label = Array.make Sector.label_words (Word.of_int 0xDEAD) in
  let junk_value = Array.make Sector.value_words (Word.of_int 0xDEAD) in
  for s = 0 to sector_count - 1 do
    Drive.poke drives.(2) (Disk_address.of_index s) Sector.Label junk_label;
    Drive.poke drives.(2) (Disk_address.of_index s) Sector.Value junk_value
  done;
  Replica.rejoin c;
  let t_rejoin = Sim_clock.now_us clock in
  let rebuilt_target = Replica.laps c + 1 in
  (* Drive the rebuild to completion, fetching files from A throughout:
     the fleet ticks between fetches and inside each fetch's pump, so
     serving and rebuilding interleave on the shared clock. *)
  let rebuild_us = ref 0 in
  let steps = ref 0 in
  let max_steps = 80_000_000 in
  while
    (!rebuild_us = 0 || not (all_reached (rebuilt_target + 1)))
    && !steps < max_steps
  do
    incr steps;
    ignore (Replica.tick_fleet fleet : int);
    if !steps mod 128 = 0 then fetch_one ();
    if
      !rebuild_us = 0
      && Replica.laps c >= rebuilt_target
      && not (Replica.rebuilding c)
    then rebuild_us := Sim_clock.now_us clock - t_rejoin
  done;
  if !rebuild_us = 0 then failwith "E19: the rebuild never completed";
  (* The verdicts. *)
  let reference =
    List.init sector_count (fun s ->
        let sec = Drive.peek drives.(0) (Disk_address.of_index s) in
        ( Array.to_list (Sector.part_of sec Sector.Header),
          Array.to_list (Sector.part_of sec Sector.Label),
          Array.to_list (Sector.part_of sec Sector.Value) ))
  in
  Array.iteri
    (fun i d ->
      if i > 0 then
        let image =
          List.init sector_count (fun s ->
              let sec = Drive.peek d (Disk_address.of_index s) in
              ( Array.to_list (Sector.part_of sec Sector.Header),
                Array.to_list (Sector.part_of sec Sector.Label),
                Array.to_list (Sector.part_of sec Sector.Value) ))
        in
        if image <> reference then
          Format.kasprintf failwith
            "E19: pack %d is not byte-identical to pack 0 after the rebuild" i)
    drives;
  let lost = Array.fold_left (fun acc n -> acc + Replica.pages_lost n) 0 nodes in
  let counter name =
    match Obs.find name with Some (Obs.Counter n) -> n | _ -> 0
  in
  let hist_p name p =
    match Obs.find name with
    | Some (Obs.Histogram s) ->
        if p = 50 then s.Obs.p50 else if p = 90 then s.Obs.p90 else s.Obs.p99
    | _ -> 0
  in
  let dropped, duped, delayed = Net.fault_census net in
  (* The CI gate's handles: rebuild time (15% band) and pages lost
     (absolute zero), recorded as counters so the JSON carries them. *)
  let rebuild_s = !rebuild_us / 1_000_000 in
  Obs.add (Obs.counter "e19.rebuild_s") rebuild_s;
  Obs.add (Obs.counter "e19.pages_lost") lost;
  Obs.add (Obs.counter "e19.fetches_during_rebuild") !fetches;
  print_table [ 30; 18 ]
    [ "measure"; "value" ]
    [
      [ "replicas"; string_of_int m ];
      [ "pack"; Printf.sprintf "%d sectors" sector_count ];
      [ "corpus"; Printf.sprintf "%d files x %d B" n_files file_bytes ];
      [ "net faults (drop/dup/delay)"; "5% / 3% / 10%" ];
      [ "  census";
        Printf.sprintf "%d / %d / %d" dropped duped delayed ];
      [ "slices audited"; string_of_int (counter "repl.audits") ];
      [ "divergent votes"; string_of_int (counter "repl.divergent") ];
      [ "slices repaired"; string_of_int (counter "repl.repairs") ];
      [ "pages repaired"; string_of_int (counter "repl.pages_repaired") ];
      [ "bytes repaired"; string_of_int (counter "repl.bytes_repaired") ];
      [ "request timeouts / resends";
        Printf.sprintf "%d / %d"
          (counter "repl.timeouts") (counter "repl.resends") ];
      [ "digest rtt p50 / p99";
        Printf.sprintf "%s / %s"
          (us_to_string (hist_p "repl.rtt_us" 50))
          (us_to_string (hist_p "repl.rtt_us" 99)) ];
      [ "slice repair p99"; us_to_string (hist_p "repl.repair_us" 99) ];
      [ "whole-pack rebuild"; us_to_string !rebuild_us ];
      [ "GETs served during rebuild"; string_of_int !fetches ];
      [ "pages lost"; string_of_int lost ];
    ];
  if counter "repl.repairs" = 0 then
    failwith "E19: the audit never repaired anything (gates watch silence)";
  if counter "repl.timeouts" = 0 then
    failwith "E19: the lossy net never tripped the request timeout";
  if !fetches = 0 then
    failwith "E19: the survivor served nothing during the rebuild";
  if Replica.pages_served a = 0 then
    failwith "E19: survivor A never served a repair page";
  if lost <> 0 then
    Format.kasprintf failwith "E19: %d pages lost (the gate holds this at 0)"
      lost;
  print_endline
    "shape: whole-pack death is one more fault class: the crowd votes\n\
     the reformatted node divergent slice by slice and streams it back\n\
     byte-identical through a lying net, the survivor keeps serving\n\
     files the whole time, and nothing is lost."

(* E20 — the write-back track cache at work, before/after on the two
   workloads it was built for. (a) Record rewrites: a program updates a
   small record in the middle of every page of a database file — each
   update is a read-modify-write, the worst case for a write-through
   disk (two rotational waits per page). With the cache, the read side
   hits after one track fill and the write side is absorbed and
   delayed; the final flush coalesces a hundred page writes into a
   handful of contiguous track sweeps. (b) Allocation on a fragmented
   pack: when the free sectors are scattered holes, Near_previous takes
   the linearly-next hole and waits most of a revolution for it;
   Rotation_aware takes the hole that lands next under the head. *)
let e20 () =
  heading "E20  write coalescing and rotation-aware allocation";
  claim
    "delayed track write-back coalesces read-modify-write traffic; \
     rotation-aware allocation dodges the rotational wait on a fragmented pack";
  let page_bytes = 2 * Sector.value_words in
  (* (a) rewrite a 16-byte record in the middle of every page. *)
  let rewrite_records ~cached =
    let _drive, fs = fresh () in
    if not cached then Bio.set_tracks (Fs.bio fs) 0;
    let root = ok Directory.pp_error (Directory.open_root fs) in
    let pages = 100 in
    let file = make_file fs root "Records.dat" (pages * page_bytes) 3 in
    let clock = Drive.clock (Fs.drive fs) in
    let (), us =
      timed clock (fun () ->
          for k = 0 to pages - 1 do
            ok File.pp_error
              (File.write_bytes file ~pos:((k * page_bytes) + 200) (body (k + 7) 16))
          done;
          (* The delayed writes are part of the work: time the flush. *)
          settle fs)
    in
    (pages, us)
  in
  let pages, uncached_us = rewrite_records ~cached:false in
  let _, cached_us = rewrite_records ~cached:true in
  Obs.add (Obs.counter "e20.rmw_uncached_us") uncached_us;
  Obs.add (Obs.counter "e20.rmw_cached_us") cached_us;
  (* (b) allocate 100 fresh pages onto a pack whose free list is
     scattered holes, under each allocation policy. Each allocation is
     the paper's check-free-then-write revolution; what the policy
     controls is the arrival wait before the check. Back-to-back
     allocations hide the difference (the linearly-next hole is just
     ahead of the head anyway), so each allocation is interleaved with
     a metadata read at another cylinder — the directory and leader
     traffic every real allocation stream carries. *)
  let alloc policy =
    let drive, fs = fresh () in
    let root = ok Directory.pp_error (Directory.open_root fs) in
    Fs.set_policy fs (Fs.Scattered (Random.State.make [| 20 |]));
    let (_ : string list) = fill_to fs root ~fraction:0.6 ~file_bytes:4000 in
    Fs.set_policy fs policy;
    let fid = Fs.fresh_fid fs in
    let value = Array.make Sector.value_words (Word.of_int 0x2020) in
    let shape = Drive.geometry drive in
    let metadata_addr =
      (* Track 0 of a middling cylinder, sector 0 — stand-in for the
         descriptor / directory neighbourhood. *)
      Disk_address.of_index (50 * 2 * shape.Geometry.sectors_per_track)
    in
    let scratch = Array.make Sector.value_words Word.zero in
    let clock = Drive.clock drive in
    (* Sum the allocations' own time: the metadata read sits between
       them to move the head, but a fixed sector re-synchronizes the
       rotational phase, so including it would hide exactly the wait
       being measured. *)
    let alloc_us = ref 0 in
    for page = 0 to 99 do
      let (_ : Disk_address.t), us =
        timed clock (fun () ->
            ok Fs.pp_error
              (Fs.allocate_page fs
                 ~label:(fun _ ->
                   Label.make ~fid ~page ~length:512
                     ~next:Disk_address.nil ~prev:Disk_address.nil)
                 ~value))
      in
      alloc_us := !alloc_us + us;
      ok Drive.pp_error
        (Drive.run drive metadata_addr
           { Drive.op_none with Drive.value = Some Drive.Read }
           ~value:scratch ())
    done;
    !alloc_us
  in
  let near_us = alloc Fs.Near_previous in
  let rps_us = alloc Fs.Rotation_aware in
  Obs.add (Obs.counter "e20.alloc_near_us") near_us;
  Obs.add (Obs.counter "e20.alloc_rps_us") rps_us;
  let speedup a b = Printf.sprintf "%.1fx" (float_of_int a /. float_of_int b) in
  print_table [ 34; 14; 14; 9 ]
    [ "workload"; "before"; "after"; "speedup" ]
    [
      [ Printf.sprintf "record rewrite, %d pages" pages;
        us_to_string uncached_us; us_to_string cached_us;
        speedup uncached_us cached_us ];
      [ "100 allocations, fragmented pack";
        us_to_string near_us; us_to_string rps_us;
        speedup near_us rps_us ];
    ];
  if cached_us >= uncached_us then
    failwith "E20: the track cache did not speed up record rewrites";
  if rps_us >= near_us then
    failwith "E20: rotation-aware allocation did not beat near-previous";
  print_endline
    "shape: read-modify-write traffic collapses once reads hit filled\n\
     tracks and writes leave coalesced; on a fragmented pack the\n\
     allocator stops parking through most of a revolution per page."

(* E21 — §3.3/§3.5: every crash point survivable. The harness kills the
   machine at every Nth writing operation of five metadata-mutating
   workloads — cleanly, or tearing the fatal sector's label or value —
   then boots recovery and interrogates the pack with the offline
   checker plus a byte-level read-back of every committed file. *)
let e21 () =
  heading "E21  crash-point injection: recovery from every torn write";
  claim
    "recovery (bounded scan, escalating to one scavenge) survives every \
     enumerated crash point with zero invariant violations";
  let t = Crash_harness.run () in
  Obs.add (Obs.counter "e21.trials") t.Crash_harness.trials;
  Obs.add (Obs.counter "e21.crash_points") t.Crash_harness.crash_points;
  Obs.add (Obs.counter "e21.torn_points") t.Crash_harness.torn_points;
  Obs.add (Obs.counter "e21.dirty_boots") t.Crash_harness.dirty_boots;
  Obs.add (Obs.counter "e21.flight_adoptions") t.Crash_harness.flight_adoptions;
  Obs.add (Obs.counter "e21.bounded_recoveries") t.Crash_harness.bounded_recoveries;
  Obs.add (Obs.counter "e21.scavenges") t.Crash_harness.scavenges;
  Obs.add (Obs.counter "e21.fsck_findings") t.Crash_harness.findings;
  Obs.add (Obs.counter "e21.invariant_violations") t.Crash_harness.violations;
  print_table [ 34; 10 ]
    [ "crash-point sweep"; "count" ]
    [
      [ "trials (5 workloads x 15 x 3)"; string_of_int t.Crash_harness.trials ];
      [ "crash points fired"; string_of_int t.Crash_harness.crash_points ];
      [ "  of which torn"; string_of_int t.Crash_harness.torn_points ];
      [ "dirty boots"; string_of_int t.Crash_harness.dirty_boots ];
      [ "flight records adopted"; string_of_int t.Crash_harness.flight_adoptions ];
      [ "bounded recoveries"; string_of_int t.Crash_harness.bounded_recoveries ];
      [ "escalations to scavenge"; string_of_int t.Crash_harness.scavenges ];
      [ "advisory fsck findings"; string_of_int t.Crash_harness.findings ];
      [ "invariant violations"; string_of_int t.Crash_harness.violations ];
    ];
  List.iter
    (fun v -> print_endline ("  VIOLATION " ^ v))
    t.Crash_harness.violation_log;
  if t.Crash_harness.crash_points < 200 then
    failwith "E21: fewer than 200 crash points fired";
  if t.Crash_harness.torn_points = 0 then
    failwith "E21: no torn-sector variants fired";
  if t.Crash_harness.violations <> 0 then
    failwith "E21: a crash point broke a recovery invariant";
  print_endline
    "shape: most crash points boot straight through the bounded scan;\n\
     the mid-move tears (compaction, relocation) escalate to one\n\
     scavenge, and every committed page still reads back old-or-new."

(* E22 — observability for everything E18 and E19 exercise: every
   request minted as a causal trace at the client, carried through
   admission, activity switches and shared elevator sweeps, and over the
   replica fleet's lying wire. The experiment's claim is an accounting
   identity: after an overloaded file service run and a fleet
   divergence repair, the sum of per-request disk attribution plus the
   untraced bucket equals the drive's own motion counters — shared
   sweeps pro-rated, duplicated packets billed once, abandoned requests
   still charged for the work done on their behalf. *)
let e22 () =
  heading "E22  request-scoped causal tracing under load and repair";
  claim
    "per-request disk attribution balances the drive's motion counters \
     within 1% (target 0%) across an overloaded file service and a \
     replica repair over a faulty net, and the traces decompose each \
     request's life into queue wait vs service";
  let module Trace = Alto_obs.Trace in
  let counter name =
    match Obs.find name with Some (Obs.Counter n) -> n | _ -> 0
  in
  let hist_p name p =
    match Obs.find name with
    | Some (Obs.Histogram s) ->
        if p = 50 then s.Obs.p50 else if p = 90 then s.Obs.p90 else s.Obs.p99
    | _ -> 0
  in
  let started0 = counter "trace.started" in
  let completed0 = counter "trace.completed" in
  let dups0 = counter "trace.remote_dups" in
  let prorated0 = counter "disk.sched.prorated_seek_us" in
  let repairs0 = counter "repl.repairs" in
  (* {3 Part A: E18's shape at reduced scale, traced end to end} *)
  let n_clients = 64 in
  let slots = 8 in
  let n_files = 16 in
  let file_bytes = 2000 in
  let _drive, fs = fresh () in
  let clock = Fs.clock fs in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let fill_names = Array.init n_files (fun k -> Printf.sprintf "Tr%02d.dat" k) in
  let fill_bodies = Array.init n_files (fun k -> body k file_bytes) in
  Array.iteri
    (fun k name -> ignore (make_file fs root name file_bytes k : File.t))
    fill_names;
  let net = Net.create ~clock () in
  let server_station = Net.attach net ~name:"fs" in
  let srv = File_server.create ~max_active:slots fs server_station in
  let stations =
    Array.init n_clients (fun i -> Net.attach net ~name:(Printf.sprintf "t%03d" i))
  in
  let op_of i c =
    match (i + c) mod 10 with
    | 0 | 1 | 2 | 3 | 4 | 5 -> `Get (((i * 7) + (c * 3)) mod n_files)
    | 6 | 7 | 8 -> `Put
    | _ -> `List
  in
  let okc r = ok File_server.Client.pp_error r in
  let completed = Array.make n_clients 0 in
  let inflight = Array.make n_clients false in
  let send_op i =
    let st = stations.(i) in
    (match op_of i completed.(i) with
    | `Get k ->
        okc (File_server.Client.send_get st ~server:"fs" ~name:fill_names.(k))
    | `Put ->
        okc
          (File_server.Client.send_put st ~server:"fs"
             ~name:(Printf.sprintf "Tc%03d.out" i)
             (body (1000 + i) 400))
    | `List -> okc (File_server.Client.send_list st ~server:"fs"));
    inflight.(i) <- true
  in
  let poll i =
    match File_server.Client.poll_reply stations.(i) with
    | None -> failwith "E22: a client is owed a reply the server never sent"
    | Some (Error File_server.Client.Busy) -> inflight.(i) <- false
    | Some (Error e) ->
        Format.kasprintf failwith "E22: client %d: %a" i
          File_server.Client.pp_error e
    | Some (Ok reply) ->
        (match (op_of i completed.(i), reply) with
        | `Get k, File_server.Client.File (_, contents) ->
            if not (String.equal contents fill_bodies.(k)) then
              failwith "E22: GET returned corrupted contents"
        | `Put, File_server.Client.Ack -> ()
        | `List, File_server.Client.File (name, _) ->
            if not (String.equal name ";listing") then
              failwith "E22: LIST reply under the wrong name"
        | _ -> failwith "E22: reply kind does not match the request");
        completed.(i) <- completed.(i) + 1;
        inflight.(i) <- false
  in
  for iter = 0 to 47 do
    for k = 0 to n_clients - 1 do
      let i = (iter + k) mod n_clients in
      if not inflight.(i) then send_op i
    done;
    while File_server.tick srv > 0 do
      ()
    done;
    Array.iteri (fun i f -> if f then poll i) inflight
  done;
  let service_reqs = Array.fold_left ( + ) 0 completed in
  (* {3 Part B: a fleet divergence repair over a lying wire, traced} *)
  let m = 3 in
  let geometry =
    { Geometry.diablo_31 with Geometry.model = "tiny"; cylinders = 10 }
  in
  let rclock = Sim_clock.create () in
  let rnet = Net.create ~clock:rclock () in
  let drives = Array.init m (fun _ -> Drive.create ~clock:rclock ~pack_id:1 geometry) in
  let sector_count = Drive.sector_count drives.(0) in
  let rfs0 = Fs.format drives.(0) in
  let rroot = ok Directory.pp_error (Directory.open_root rfs0) in
  for k = 0 to 7 do
    ignore
      (make_file rfs0 rroot (Printf.sprintf "Rp%02d.dat" k) 1500 k : File.t)
  done;
  (match Fs.flush rfs0 with Ok () -> () | Error _ -> failwith "E22: flush");
  for i = 1 to m - 1 do
    for s = 0 to sector_count - 1 do
      let sec = Drive.peek drives.(0) (Disk_address.of_index s) in
      Drive.poke drives.(i) (Disk_address.of_index s) Sector.Header
        (Sector.part_of sec Sector.Header);
      Drive.poke drives.(i) (Disk_address.of_index s) Sector.Label
        (Sector.part_of sec Sector.Label);
      Drive.poke drives.(i) (Disk_address.of_index s) Sector.Value
        (Sector.part_of sec Sector.Value)
    done
  done;
  (* Dup-heavy faults: resends and duplicated requests must be billed to
     their trace exactly once — the balance check below would expose a
     double charge as drift. *)
  Net.set_faults rnet ~drop:0.02 ~dup:0.05 ~delay:0.08 ~delay_us:2_000
    ~seed:22 ();
  let fleet = Replica.create ~clock:rclock rnet in
  let node_names = [| "tr-a"; "tr-b"; "tr-c" |] in
  let nodes =
    Array.init m (fun i ->
        let nfs =
          if i = 0 then rfs0
          else
            match Fs.mount drives.(i) with
            | Ok nfs -> nfs
            | Error msg -> failwith ("E22: mount replica: " ^ msg)
        in
        Replica.join fleet ~name:node_names.(i) nfs)
  in
  (* Diverge node C over a band of sectors, then let the audit vote it
     back: each repaired slice rides the auditing node's trace. *)
  let junk_value = Array.make Sector.value_words (Word.of_int 0xBEEF) in
  for s = sector_count / 4 to sector_count / 2 do
    Drive.poke drives.(2) (Disk_address.of_index s) Sector.Value junk_value
  done;
  let all_reached target =
    Array.for_all (fun n -> Replica.laps n >= target) nodes
  in
  if not (Replica.run_until fleet (fun () -> all_reached 2)) then
    failwith "E22: fleet stalled during the traced audit";
  (* {3 The balance sheet} *)
  let a_seek, a_rot, a_xfer = Trace.attributed () in
  let u_seek, u_rot, u_xfer = Trace.untraced () in
  let accounted = a_seek + a_rot + a_xfer + u_seek + u_rot + u_xfer in
  let drive_total =
    counter "disk.seek_us" + counter "disk.rotational_wait_us"
    + counter "disk.transfer_us"
  in
  let drift_pct =
    if drive_total = 0 then 0
    else
      int_of_float
        (ceil
           (float_of_int (abs (accounted - drive_total))
           *. 100.
           /. float_of_int drive_total))
  in
  let traced_started = counter "trace.started" - started0 in
  let traced_completed = counter "trace.completed" - completed0 in
  let remote_dups = counter "trace.remote_dups" - dups0 in
  let prorated_us = counter "disk.sched.prorated_seek_us" - prorated0 in
  let repairs = counter "repl.repairs" - repairs0 in
  Obs.add (Obs.counter "e22.attribution_drift_pct") drift_pct;
  Obs.add (Obs.counter "e22.traced_requests") traced_completed;
  Obs.add (Obs.counter "e22.queue_wait_p99_us") (hist_p "trace.wait_us" 99);
  Obs.add (Obs.counter "e22.service_p99_us") (hist_p "trace.service_us" 99);
  print_table [ 34; 18 ]
    [ "measure"; "value" ]
    [
      [ "service clients / slots"; Printf.sprintf "%d / %d" n_clients slots ];
      [ "service requests completed"; string_of_int service_reqs ];
      [ "fleet repairs (traced)"; string_of_int repairs ];
      [ "traces started / completed";
        Printf.sprintf "%d / %d" traced_started traced_completed ];
      [ "remote dups suppressed"; string_of_int remote_dups ];
      [ "attributed seek/rot/xfer";
        Printf.sprintf "%d / %d / %d us" a_seek a_rot a_xfer ];
      [ "untraced seek/rot/xfer";
        Printf.sprintf "%d / %d / %d us" u_seek u_rot u_xfer ];
      [ "pro-rated entry seeks"; Printf.sprintf "%d us" prorated_us ];
      [ "accounted vs drive";
        Printf.sprintf "%d vs %d us" accounted drive_total ];
      [ "attribution drift"; Printf.sprintf "%d%%" drift_pct ];
      [ "queue wait p50 / p99";
        Printf.sprintf "%s / %s"
          (us_to_string (hist_p "trace.wait_us" 50))
          (us_to_string (hist_p "trace.wait_us" 99)) ];
      [ "service p50 / p99";
        Printf.sprintf "%s / %s"
          (us_to_string (hist_p "trace.service_us" 50))
          (us_to_string (hist_p "trace.service_us" 99)) ];
    ];
  if traced_completed = 0 then
    failwith "E22: no request trace ever completed";
  if repairs = 0 then
    failwith "E22: the traced audit never repaired the divergence";
  if prorated_us = 0 then
    failwith "E22: no shared sweep entry seek was ever pro-rated";
  if counter "server.traces_abandoned" <> 0 then
    failwith "E22: a request trace was abandoned in a run with no timeouts";
  if drift_pct > 1 then
    Format.kasprintf failwith
      "E22: attribution drift %d%% exceeds the 1%% ceiling (%d vs %d us)"
      drift_pct accounted drive_total;
  print_endline
    "shape: causality survives multiplexing: every microsecond of head\n\
     motion lands on the request that caused it or in the untraced\n\
     bucket, shared sweeps split their entry seek pro-rata, a lying\n\
     wire's duplicates bill once, and the books balance to the\n\
     microsecond against the drive's own counters."

let all = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
            ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
            ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14);
            ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18);
            ("e19", e19); ("e20", e20); ("e21", e21); ("e22", e22) ]
