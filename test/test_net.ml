(* The simulated network: packets, queues, latency, file transfer. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Net = Alto_net.Net

let words s = Word.words_of_string s

let test_send_receive () =
  let net = Net.create () in
  let a = Net.attach net ~name:"alice" in
  let b = Net.attach net ~name:"bob" in
  (match Net.send a ~to_:"bob" (words "hi") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %a" Net.pp_error e);
  Alcotest.(check int) "queued" 1 (Net.pending b);
  (match Net.receive b with
  | Some p ->
      Alcotest.(check string) "source" "alice" p.Net.src;
      Alcotest.(check string) "payload" "hi"
        (Word.string_of_words p.Net.payload ~len:2)
  | None -> Alcotest.fail "nothing received");
  Alcotest.(check bool) "empty" true (Net.receive b = None)

let test_unknown_station () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  match Net.send a ~to_:"nobody" [||] with
  | Error (Net.Unknown_station "nobody") -> ()
  | Ok () | Error _ -> Alcotest.fail "send to nobody must fail"

let test_duplicate_station () =
  let net = Net.create () in
  let _ = Net.attach net ~name:"x" in
  match Net.attach net ~name:"x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate name accepted"

let test_payload_limit () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let _ = Net.attach net ~name:"b" in
  match Net.send a ~to_:"b" (Array.make 257 Word.zero) with
  | Error Net.Payload_too_long -> ()
  | Ok () | Error _ -> Alcotest.fail "oversized payload accepted"

let test_latency_charged () =
  let clock = Sim_clock.create () in
  let net = Net.create ~clock ~latency_us:1000 () in
  let a = Net.attach net ~name:"a" in
  let _ = Net.attach net ~name:"b" in
  for _ = 1 to 5 do
    ignore (Net.send a ~to_:"b" [| Word.one |])
  done;
  Alcotest.(check int) "5 packets x 1ms" 5000 (Sim_clock.now_us clock)

let test_file_transfer () =
  let net = Net.create () in
  let a = Net.attach net ~name:"client" in
  let b = Net.attach net ~name:"printer" in
  let body = String.init 2000 (fun i -> Char.chr (32 + (i mod 90))) in
  (match Net.send_file a ~to_:"printer" ~name:"Report.press" body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send_file: %a" Net.pp_error e);
  (match Net.receive_file b with
  | Some (name, contents) ->
      Alcotest.(check string) "name" "Report.press" name;
      Alcotest.(check string) "contents" body contents
  | None -> Alcotest.fail "file not reassembled");
  Alcotest.(check bool) "queue drained" true (Net.receive_file b = None)

let test_file_transfer_odd_length () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  ignore (Net.send_file a ~to_:"b" ~name:"Odd." "xyz");
  match Net.receive_file b with
  | Some (_, contents) -> Alcotest.(check string) "odd bytes survive" "xyz" contents
  | None -> Alcotest.fail "file lost"

let test_interleaved_files () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  ignore (Net.send_file a ~to_:"b" ~name:"One." "first");
  ignore (Net.send_file a ~to_:"b" ~name:"Two." "second");
  (match Net.receive_file b with
  | Some (name, c) ->
      Alcotest.(check string) "first file" "One." name;
      Alcotest.(check string) "first body" "first" c
  | None -> Alcotest.fail "first file lost");
  match Net.receive_file b with
  | Some (name, _) -> Alcotest.(check string) "second file" "Two." name
  | None -> Alcotest.fail "second file lost"

let test_incomplete_file_waits () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  (* Header but no trailer yet. *)
  ignore (Net.send a ~to_:"b" (Array.append [| Word.of_int 1; Word.of_int 2 |] (words "F.")));
  Alcotest.(check bool) "not ready" true (Net.receive_file b = None);
  ignore (Net.send a ~to_:"b" [| Word.of_int 3 |]);
  match Net.receive_file b with
  | Some (name, "") -> Alcotest.(check string) "complete now" "F." name
  | Some _ | None -> Alcotest.fail "completion not detected"

(* {2 The seeded message-fault mode} *)

let flood a ~to_ n =
  for i = 1 to n do
    ignore (Net.send a ~to_ [| Word.of_int i |])
  done

let drain b =
  let rec go acc =
    match Net.receive b with
    | None -> List.rev acc
    | Some p -> go (Word.to_int p.Net.payload.(0) :: acc)
  in
  go []

let test_faults_off_by_default () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  Alcotest.(check bool) "clean" false (Net.faults_on net);
  flood a ~to_:"b" 50;
  Alcotest.(check int) "all arrive" 50 (List.length (drain b));
  Alcotest.(check (triple int int int)) "census" (0, 0, 0) (Net.fault_census net)

let test_drop_and_dup_counted () =
  let net = Net.create () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  Net.set_faults net ~drop:0.2 ~dup:0.2 ~seed:7 ();
  Alcotest.(check bool) "faulty" true (Net.faults_on net);
  flood a ~to_:"b" 500;
  let got = List.length (drain b) in
  let dropped, duped, delayed = Net.fault_census net in
  Alcotest.(check bool) "some dropped" true (dropped > 0);
  Alcotest.(check bool) "some duplicated" true (duped > 0);
  Alcotest.(check int) "no clock, no delay" 0 delayed;
  Alcotest.(check int) "conservation" (500 - dropped + duped) got

let test_delay_reorders () =
  let clock = Sim_clock.create () in
  let net = Net.create ~clock () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  Net.set_faults net ~delay:0.5 ~delay_us:50_000 ~seed:3 ();
  flood a ~to_:"b" 100;
  let _, _, delayed = Net.fault_census net in
  Alcotest.(check bool) "some delayed" true (delayed > 0);
  (* Held packets are invisible until the clock reaches their due time
     (the sends themselves advanced the clock, so a prefix of them may
     already be due)... *)
  let early = drain b in
  Alcotest.(check bool) "some still held" true (List.length early < 100);
  Alcotest.(check bool) "out of order" true (early <> List.init 100 (fun i -> i + 1));
  (* ...and all of them surface once it does: nothing is ever lost to
     the hold-down, only late. *)
  Sim_clock.advance_us clock 60_000;
  Alcotest.(check int) "conservation" 100 (List.length early + List.length (drain b))

let test_fault_determinism () =
  let run () =
    let clock = Sim_clock.create () in
    let net = Net.create ~clock () in
    let a = Net.attach net ~name:"a" in
    let b = Net.attach net ~name:"b" in
    Net.set_faults net ~drop:0.1 ~dup:0.1 ~delay:0.3 ~delay_us:10_000 ~seed:42 ();
    flood a ~to_:"b" 200;
    Sim_clock.advance_us clock 20_000;
    (drain b, Net.fault_census net)
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "identical replay" true (r1 = r2)

(* {2 The trace envelope}

   Every packet carries the sender's request-trace context; drops, dups
   and delays may lose or repeat a packet but never re-stamp it — a
   delayed reply must land in the span that asked for it. *)

module Trace = Alto_obs.Trace
module Obs = Alto_obs.Obs

let test_trace_stamped () =
  Obs.reset ();
  let clock = Sim_clock.create () in
  let net = Net.create ~clock () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  ignore (Net.send a ~to_:"b" (words "bare"));
  (match Net.receive b with
  | Some p -> Alcotest.(check bool) "no context, null pair" true (p.Net.trace = (0, 0))
  | None -> Alcotest.fail "packet lost");
  let ctx = Trace.start ~clock ~origin:"a" ~name:"op" in
  Trace.with_current (Some ctx) (fun () -> ignore (Net.send a ~to_:"b" (words "traced")));
  (match Net.receive b with
  | Some p ->
      Alcotest.(check bool) "stamped with the sender's context" true
        (Trace.of_wire p.Net.trace = Some ctx)
  | None -> Alcotest.fail "packet lost");
  Alcotest.(check bool) "clock exposed for trace minting" true
    (Net.station_clock a = Some clock)

(* 100 packets, each sent under its own trace, through a net that drops,
   duplicates and delays: every packet that arrives — early, late or
   twice — still carries exactly the context it was sent under. *)
let test_faults_never_restamp () =
  Obs.reset ();
  let clock = Sim_clock.create () in
  let net = Net.create ~clock () in
  let a = Net.attach net ~name:"a" in
  let b = Net.attach net ~name:"b" in
  Net.set_faults net ~drop:0.1 ~dup:0.15 ~delay:0.3 ~delay_us:20_000 ~seed:17 ();
  let expected = Hashtbl.create 64 in
  for i = 1 to 100 do
    let ctx = Trace.start ~clock ~origin:"a" ~name:(Printf.sprintf "op %d" i) in
    Hashtbl.replace expected i ctx;
    Trace.with_current (Some ctx) (fun () ->
        ignore (Net.send a ~to_:"b" [| Word.of_int i |]))
  done;
  let check_packet (p : Net.packet) =
    let i = Word.to_int p.Net.payload.(0) in
    match (Trace.of_wire p.Net.trace, Hashtbl.find_opt expected i) with
    | Some got, Some want ->
        Alcotest.(check bool)
          (Printf.sprintf "packet %d kept its birth context" i)
          true (got = want)
    | _ -> Alcotest.failf "packet %d lost its trace envelope" i
  in
  let rec drain n =
    match Net.receive b with
    | Some p ->
        check_packet p;
        drain (n + 1)
    | None -> n
  in
  let early = drain 0 in
  (* Release the held packets: the late arrivals land in their original
     spans too. *)
  Sim_clock.advance_us clock 30_000;
  let late = drain 0 in
  Alcotest.(check bool) "some arrived late" true (late > 0);
  let dropped, duped, _ = Net.fault_census net in
  Alcotest.(check bool) "some duplicated" true (duped > 0);
  Alcotest.(check int) "conservation with envelopes intact"
    (100 - dropped + duped) (early + late)

let test_file_transfer_traced () =
  Obs.reset ();
  let clock = Sim_clock.create () in
  let net = Net.create ~clock () in
  let a = Net.attach net ~name:"srv" in
  let b = Net.attach net ~name:"cli" in
  let ctx = Trace.start ~clock ~origin:"cli" ~name:"get R." in
  Trace.with_current (Some ctx) (fun () ->
      ignore (Net.send_file a ~to_:"cli" ~name:"R." "reply body"));
  match Net.receive_file_traced b with
  | Some (name, contents, wire) ->
      Alcotest.(check string) "name" "R." name;
      Alcotest.(check string) "contents" "reply body" contents;
      Alcotest.(check bool) "the reply names the asking request" true
        (Trace.of_wire wire = Some ctx)
  | None -> Alcotest.fail "file not reassembled"

let () =
  Alcotest.run "alto_net"
    [
      ( "packets",
        [
          ("send/receive", `Quick, test_send_receive);
          ("unknown station", `Quick, test_unknown_station);
          ("duplicate station", `Quick, test_duplicate_station);
          ("payload limit", `Quick, test_payload_limit);
          ("latency charged", `Quick, test_latency_charged);
        ] );
      ( "files",
        [
          ("transfer", `Quick, test_file_transfer);
          ("odd length", `Quick, test_file_transfer_odd_length);
          ("interleaved", `Quick, test_interleaved_files);
          ("incomplete waits", `Quick, test_incomplete_file_waits);
        ] );
      ( "faults",
        [
          ("off by default", `Quick, test_faults_off_by_default);
          ("drop and dup counted", `Quick, test_drop_and_dup_counted);
          ("delay reorders", `Quick, test_delay_reorders);
          ("seeded determinism", `Quick, test_fault_determinism);
        ] );
      ( "trace envelope",
        [
          ("stamped from the current context", `Quick, test_trace_stamped);
          ("faults never re-stamp", `Quick, test_faults_never_restamp);
          ("file replies carry the asking trace", `Quick, test_file_transfer_traced);
        ] );
    ]
