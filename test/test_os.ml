(* The assembled system: levels, Junta/CounterJunta, the loader's fixup
   binding, system calls from loaded programs, the world-swap double
   return, and an executive session. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Asm = Alto_machine.Asm
module Geometry = Alto_disk.Geometry
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module World = Alto_world.World
module Checkpoint = Alto_world.Checkpoint
module Level = Alto_os.Level
module System = Alto_os.System
module Loader = Alto_os.Loader
module Executive = Alto_os.Executive

let small_geometry = { Geometry.diablo_31 with Geometry.model = "test"; cylinders = 40 }
let world_geometry = { Geometry.diablo_31 with Geometry.model = "test"; cylinders = 80 }

let boot ?(geometry = small_geometry) () = System.boot ~geometry ()

let loader_ok what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %a" what Loader.pp_error e

let assemble items = Asm.assemble_exn ~origin:System.user_base items

let install system name items =
  loader_ok "save_program" (Loader.save_program system ~name (assemble items))

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.equal (String.sub haystack i n) needle || go (i + 1)) in
  go 0

let screen system = Display.contents (System.display system)

(* {2 levels} *)

let test_level_layout () =
  (* Level 1 at the very top; levels contiguous going down; the boundary
     arithmetic consistent. *)
  Alcotest.(check int) "level 1 ends at top of memory" Memory.size (Level.limit 1);
  for i = 2 to Level.count do
    Alcotest.(check int)
      (Printf.sprintf "level %d sits directly below level %d" i (i - 1))
      (Level.base (i - 1))
      (Level.limit i)
  done;
  Alcotest.(check int) "boundary 13 = base of level 13" (Level.base 13)
    (Level.boundary ~keep:13);
  Alcotest.(check int) "keeping nothing owns nothing" 0 (Level.resident_words ~keep:0);
  Alcotest.(check bool) "resident words grow with keep" true
    (Level.resident_words ~keep:13 > Level.resident_words ~keep:1)

let test_service_addresses_fixed () =
  (* Services live at published, fixed addresses inside their levels. *)
  let addr = Level.service_address "OutLoad" in
  Alcotest.(check bool) "inside level 1" true (addr >= Level.base 1 && addr < Level.limit 1);
  let rc = Level.service_address "ReadChar" in
  Alcotest.(check bool) "inside level 10" true (rc >= Level.base 10 && rc < Level.limit 10);
  Alcotest.(check int) "ReadChar exports from level 10" 10 (Level.service_level "ReadChar");
  (match Level.service_by_code 60 with
  | Some (level, s) ->
      Alcotest.(check int) "code 60 is level 10" 10 level.Level.index;
      Alcotest.(check string) "name" "ReadChar" s.Level.service_name
  | None -> Alcotest.fail "code 60 unknown");
  match Level.service_address "NoSuchThing" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown service resolved"

(* {2 loader + system calls} *)

let hello_program =
  [
    Asm.Label "start";
    Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "msg" ]);
    Asm.Op ("JSR", [ Asm.Ext "WriteString" ]);
    Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
    Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
    Asm.Label "msg";
    Asm.String_data "hello from a loaded program";
  ]

let test_loader_runs_hello () =
  let system = boot () in
  let file = install system "Hello.run" hello_program in
  let stop = loader_ok "run" (Loader.run system file) in
  Alcotest.(check bool) "clean exit" true (stop = Vm.Stopped 0);
  Alcotest.(check string) "output" "hello from a loaded program" (screen system)

let test_loader_run_by_name () =
  let system = boot () in
  ignore (install system "Hello.run" hello_program);
  let stop = loader_ok "run_by_name" (Loader.run_by_name system "Hello.run") in
  Alcotest.(check bool) "clean exit" true (stop = Vm.Stopped 0)

let test_loader_rejects_garbage () =
  let system = boot () in
  let fs = System.fs system in
  let root =
    match Directory.open_root fs with Ok r -> r | Error _ -> Alcotest.fail "root"
  in
  let file =
    match File.create fs ~name:"NotCode." with Ok f -> f | Error _ -> Alcotest.fail "create"
  in
  (match Directory.add root ~name:"NotCode." (File.leader_name file) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "add");
  (match File.write_bytes file ~pos:0 "this is prose, not code" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write");
  match Loader.run system file with
  | Error (Loader.Bad_format _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "prose loaded as code"

let test_loader_unknown_fixup () =
  let system = boot () in
  let file =
    install system "Bad.run"
      [ Asm.Label "start"; Asm.Op ("JSR", [ Asm.Ext "FrobArcana" ]); Asm.Op ("HALT", []) ]
  in
  match Loader.run system file with
  | Error (Loader.Unknown_service "FrobArcana") -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown fixup accepted"

let test_program_writes_and_reads_a_file () =
  (* A loaded program creates a file, writes through a stream, reopens it
     and echoes the contents to the display. *)
  let system = boot () in
  let program =
    [
      Asm.Label "start";
      (* CreateFile "Out.txt" *)
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "fname" ]);
      Asm.Op ("JSR", [ Asm.Ext "CreateFile" ]);
      (* handle := OpenFile "Out.txt" write *)
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "fname" ]);
      Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 1 ]);
      Asm.Op ("JSR", [ Asm.Ext "OpenFile" ]);
      Asm.Op ("STA", [ Asm.Reg 0; Asm.Lab "handle" ]);
      (* put 'H', 'I' *)
      Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 72 ]);
      Asm.Op ("JSR", [ Asm.Ext "StreamPut" ]);
      Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "handle" ]);
      Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 73 ]);
      Asm.Op ("JSR", [ Asm.Ext "StreamPut" ]);
      Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "handle" ]);
      Asm.Op ("JSR", [ Asm.Ext "CloseStream" ]);
      (* reopen for read, echo both bytes *)
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "fname" ]);
      Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 0 ]);
      Asm.Op ("JSR", [ Asm.Ext "OpenFile" ]);
      Asm.Op ("STA", [ Asm.Reg 0; Asm.Lab "handle" ]);
      Asm.Label "loop";
      Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "handle" ]);
      Asm.Op ("JSR", [ Asm.Ext "StreamGet" ]);
      Asm.Op ("JNZ", [ Asm.Reg 1; Asm.Lab "done" ]);
      Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
      Asm.Op ("JMP", [ Asm.Lab "loop" ]);
      Asm.Label "done";
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
      Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
      Asm.Label "handle";
      Asm.Word_data 0;
      Asm.Label "fname";
      Asm.String_data "Out.txt";
    ]
  in
  let file = install system "Writer.run" program in
  let stop = loader_ok "run" (Loader.run system file) in
  (match System.last_error system with
  | Some msg -> Alcotest.failf "service error: %s (stop %a)" msg Vm.pp_stop stop
  | None -> ());
  Alcotest.(check bool) "clean exit" true (stop = Vm.Stopped 0);
  Alcotest.(check string) "echoed" "HI" (screen system);
  (* And the file really exists on disk. *)
  let root =
    match Directory.open_root (System.fs system) with
    | Ok r -> r
    | Error _ -> Alcotest.fail "root"
  in
  match Directory.lookup root "Out.txt" with
  | Ok (Some _) -> ()
  | Ok None | Error _ -> Alcotest.fail "Out.txt not catalogued"

let test_program_allocates_from_system_zone () =
  let system = boot () in
  let program =
    [
      Asm.Label "start";
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 16 ]);
      Asm.Op ("JSR", [ Asm.Ext "Allocate" ]);
      (* write into the block, read back, print as a char *)
      Asm.Op ("MOV", [ Asm.Reg 2; Asm.Reg 0 ]);
      Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 65 ]);
      Asm.Op ("STX", [ Asm.Reg 1; Asm.Reg 2 ]);
      Asm.Op ("LDX", [ Asm.Reg 0; Asm.Reg 2 ]);
      Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
      Asm.Op ("MOV", [ Asm.Reg 0; Asm.Reg 2 ]);
      Asm.Op ("JSR", [ Asm.Ext "Free" ]);
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
      Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
    ]
  in
  let file = install system "Alloc.run" program in
  let stop = loader_ok "run" (Loader.run system file) in
  Alcotest.(check bool) "clean exit" true (stop = Vm.Stopped 0);
  Alcotest.(check string) "wrote through the zone" "A" (screen system);
  Alcotest.(check int) "no leak" 0
    Alto_zones.Zone.((stats (System.system_zone system)).live_blocks)

let test_overlays () =
  (* §5.2: programs short of memory are "organized in overlays". The
     main program loads a segment on demand through the LoadOverlay
     service and calls into it. *)
  let system = boot () in
  let overlay_base = System.user_base + 2048 in
  let overlay =
    Asm.assemble_exn ~origin:overlay_base
      [
        Asm.Label "start";
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm (Char.code 'O') ]);
        Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
        Asm.Op ("RET", []);
      ]
  in
  ignore (loader_ok "save overlay" (Loader.save_program system ~name:"Seg.ovl" overlay));
  let main_program =
    [
      Asm.Label "start";
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm (Char.code 'M') ]);
      Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
      (* Pull the overlay in and call it twice. *)
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "ovlname" ]);
      Asm.Op ("JSR", [ Asm.Ext "LoadOverlay" ]);
      Asm.Op ("STA", [ Asm.Reg 0; Asm.Lab "entry" ]);
      Asm.Op ("JSRI", [ Asm.Reg 0 ]);
      Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "entry" ]);
      Asm.Op ("JSRI", [ Asm.Reg 0 ]);
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
      Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
      Asm.Label "entry";
      Asm.Word_data 0;
      Asm.Label "ovlname";
      Asm.String_data "Seg.ovl";
    ]
  in
  let file = install system "Main.run" main_program in
  let stop = loader_ok "run" (Loader.run system file) in
  (match System.last_error system with
  | Some msg -> Alcotest.failf "service error: %s" msg
  | None -> ());
  Alcotest.(check bool) "clean exit" true (stop = Vm.Stopped 0);
  Alcotest.(check string) "overlay ran twice" "MOO" (screen system);
  (* The overlay landed at its recorded origin, above the main code. *)
  Alcotest.(check int) "overlay at its origin"
    (Word.to_int (List.hd (Alto_machine.Instr.encode (Alto_machine.Instr.Ldi (0, 0)))))
    (Word.to_int (Memory.read (System.memory system) overlay_base))

(* {2 junta} *)

let test_junta_reclaims_and_traps () =
  let system = boot () in
  let boundary_before = System.user_boundary system in
  System.junta system ~keep:7;
  Alcotest.(check int) "resident level" 7 (System.resident_level system);
  Alcotest.(check bool) "more memory for the user" true
    (System.user_boundary system > boundary_before);
  (* The reclaimed region is filled with the removed-service trap. *)
  let probe = Level.base 11 in
  Alcotest.(check int) "trap word" 0x19FF
    (Word.to_int (Memory.read (System.memory system) probe));
  (* A program calling a removed service stops cleanly. *)
  let program =
    [ Asm.Label "start"; Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]); Asm.Op ("HALT", []) ]
  in
  let file = install system "Shout.run" program in
  let stop = loader_ok "run" (Loader.run system file) in
  Alcotest.(check bool) "removed-service stop" true
    (stop = Vm.Stopped Level.removed_trap_code);
  (* Zone services above the cut refuse too. *)
  let program2 =
    [
      Asm.Label "start";
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 4 ]);
      Asm.Op ("JSR", [ Asm.Ext "Allocate" ]);
      Asm.Op ("HALT", []);
    ]
  in
  System.counter_junta system;
  System.junta system ~keep:12;
  let file2 = install system "Alloc2.run" program2 in
  let stop2 = loader_ok "run" (Loader.run system file2) in
  Alcotest.(check bool) "halted with error flag" true (stop2 = Vm.Halted);
  Alcotest.(check bool) "allocate refused without level 13" true
    (System.last_error system <> None)

let test_counter_junta_restores () =
  let system = boot () in
  Keyboard.feed (System.keyboard system) "typed ahead";
  System.junta system ~keep:1;
  Alcotest.(check int) "only level 1" 1 (System.resident_level system);
  (* Removing level 2 dropped the type-ahead. *)
  Alcotest.(check int) "type-ahead lost" 0 (Keyboard.pending (System.keyboard system));
  System.counter_junta system;
  Alcotest.(check int) "everything back" 13 (System.resident_level system);
  (* Services work again. *)
  let file = install system "Hello.run" hello_program in
  let stop = loader_ok "run" (Loader.run system file) in
  Alcotest.(check bool) "clean exit after restore" true (stop = Vm.Stopped 0)

let test_junta_keeps_typeahead_above_level_2 () =
  let system = boot () in
  Keyboard.feed (System.keyboard system) "precious";
  System.junta system ~keep:5;
  Alcotest.(check int) "type-ahead survives" 8 (Keyboard.pending (System.keyboard system))

let test_resident_memory_accounting () =
  (* E7's underlying numbers: memory resident after each junta level. *)
  let expected_full = Level.resident_words ~keep:13 in
  Alcotest.(check bool) "full system under 16K words" true (expected_full < 16384);
  let rec strictly_increasing k =
    k > 13
    || (Level.resident_words ~keep:k > Level.resident_words ~keep:(k - 1)
       && strictly_increasing (k + 1))
  in
  Alcotest.(check bool) "each level costs memory" true (strictly_increasing 2)

(* {2 world swap through the system: the double return} *)

let test_outload_double_return () =
  let system = boot ~geometry:world_geometry () in
  let fs = System.fs system in
  let root =
    match Directory.open_root fs with Ok r -> r | Error _ -> Alcotest.fail "root"
  in
  let state =
    match Checkpoint.state_file fs ~directory:root ~name:"Prog.state" with
    | Ok f -> f
    | Error e -> Alcotest.failf "state file: %a" Checkpoint.pp_error e
  in
  let handle = System.register_file system state in
  (* The program OutLoads; on the written return it prints W, on the
     revived return it prints R then the first message word as a char. *)
  let program =
    [
      Asm.Label "start";
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm handle ]);
      Asm.Op ("JSR", [ Asm.Ext "OutLoad" ]);
      Asm.Op ("JZ", [ Asm.Reg 0; Asm.Lab "revived" ]);
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 87 ]) (* 'W' *);
      Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
      Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
      Asm.Label "revived";
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 82 ]) (* 'R' *);
      Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
      (* AC1 points at the delivered message; print its first word. *)
      Asm.Op ("LDX", [ Asm.Reg 0; Asm.Reg 1 ]);
      Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
      Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
      Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
    ]
  in
  let file = install system "Swapper.run" program in
  let stop = loader_ok "first run" (Loader.run system file) in
  Alcotest.(check bool) "clean exit" true (stop = Vm.Stopped 0);
  Alcotest.(check string) "written path" "W" (screen system);
  (* Now revive the saved world with a message, host-side, and continue
     interpreting: OutLoad returns for the second time. *)
  (Display.stream (System.display system)).Alto_streams.Stream.reset ();
  (match World.in_load (System.cpu system) state ~message:[| Word.of_int 33 |] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in_load: %a" World.pp_error e);
  let stop2 =
    Vm.run ~fuel:100_000 (System.cpu system) ~handler:(System.handler system)
  in
  Alcotest.(check bool) "clean exit from revived world" true (stop2 = Vm.Stopped 0);
  Alcotest.(check string) "revived path, message delivered" "R!" (screen system)

(* {2 the executive} *)

let feed_commands system commands =
  Keyboard.feed (System.keyboard system) (String.concat "\n" commands ^ "\n")

let test_executive_session () =
  let system = boot () in
  feed_commands system
    [ "put Note.txt remember the milk"; "type Note.txt"; "ls"; "quit" ];
  let outcome = Executive.run system in
  Alcotest.(check int) "four commands" 4 outcome.Executive.commands_executed;
  Alcotest.(check bool) "quit" true outcome.Executive.quit;
  let text = screen system in
  let contains needle = contains_sub text needle in
  Alcotest.(check bool) "typed back" true (contains "remember the milk");
  Alcotest.(check bool) "listing shows the file" true (contains "Note.txt")

let test_executive_records_command_file () =
  let system = boot () in
  feed_commands system [ "put A.txt alpha"; "quit" ];
  ignore (Executive.run system);
  let fs = System.fs system in
  let root =
    match Directory.open_root fs with Ok r -> r | Error _ -> Alcotest.fail "root"
  in
  match Directory.lookup root Executive.command_file_name with
  | Ok (Some e) -> (
      match File.open_leader fs e.Directory.entry_file with
      | Error _ -> Alcotest.fail "open Com.cm"
      | Ok f -> (
          match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
          | Ok bytes ->
              (* The last command recorded was "quit". *)
              Alcotest.(check string) "command recorded" "quit" (Bytes.to_string bytes)
          | Error _ -> Alcotest.fail "read Com.cm"))
  | Ok None | Error _ -> Alcotest.fail "Com.cm missing"

let test_executive_runs_programs_and_typeahead () =
  let system = boot () in
  ignore (install system "Hello.run" hello_program);
  (* All input arrives before anything runs: the commands after the
     program invocation are type-ahead interpreted later (§5.2). *)
  feed_commands system [ "Hello.run"; "ls"; "quit" ];
  let outcome = Executive.run system in
  Alcotest.(check int) "three commands" 3 outcome.Executive.commands_executed;
  let text = screen system in
  let contains needle = contains_sub text needle in
  Alcotest.(check bool) "program ran" true (contains "hello from a loaded program");
  Alcotest.(check bool) "type-ahead command ran after" true (contains "Hello.run")

let test_executive_junta_command () =
  let system = boot () in
  feed_commands system [ "junta 7"; "levels"; "counterjunta"; "quit" ];
  ignore (Executive.run system);
  Alcotest.(check int) "restored" 13 (System.resident_level system);
  let contains needle = contains_sub (screen system) needle in
  Alcotest.(check bool) "levels listed removal" true (contains "removed");
  Alcotest.(check bool) "restore announced" true (contains "all levels restored")

let test_executive_copy_and_compile () =
  let system = boot () in
  feed_commands system
    [
      "put Src.bcpl let main() be { writestring(\"compiled at the exec\"); resultis 0; }";
      "compile Src.bcpl Out.run";
      "Out.run";
      "copy Src.bcpl Backup.bcpl";
      "type Backup.bcpl";
      "quit";
    ];
  ignore (Executive.run system);
  let text = screen system in
  let contains needle = contains_sub text needle in
  Alcotest.(check bool) "compiled" true (contains "compiled to Out.run");
  Alcotest.(check bool) "program output" true (contains "compiled at the exec");
  Alcotest.(check bool) "copy readable" true (contains "let main() be")

let test_program_reads_its_arguments_from_com_cm () =
  (* §4: "a command scanner may write the command string typed by the
     user on a file with a standard name, and may then invoke a program
     that will execute the command." The program reads its own command
     line back from Com.cm. *)
  let system = boot () in
  let echo_args =
    Asm.assemble_exn ~origin:System.user_base
      [
        Asm.Label "start";
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "cmname" ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 0 ]);
        Asm.Op ("JSR", [ Asm.Ext "OpenFile" ]);
        Asm.Op ("STA", [ Asm.Reg 0; Asm.Lab "handle" ]);
        Asm.Label "loop";
        Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "handle" ]);
        Asm.Op ("JSR", [ Asm.Ext "StreamGet" ]);
        Asm.Op ("JNZ", [ Asm.Reg 1; Asm.Lab "done" ]);
        Asm.Op ("JSR", [ Asm.Ext "WriteChar" ]);
        Asm.Op ("JMP", [ Asm.Lab "loop" ]);
        Asm.Label "done";
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
        Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
        Asm.Label "handle";
        Asm.Word_data 0;
        Asm.Label "cmname";
        Asm.String_data "Com.cm";
      ]
  in
  ignore (loader_ok "save" (Loader.save_program system ~name:"EchoArgs.run" echo_args));
  feed_commands system [ "run EchoArgs.run"; "quit" ];
  ignore (Executive.run system);
  (* The program saw its own invocation line. *)
  Alcotest.(check bool) "saw its command line" true
    (contains_sub (screen system) "run EchoArgs.run")

let test_executive_assemble_command () =
  let system = boot () in
  feed_commands system
    [
      "put Src.asm start: LDI AC0, msg\031 JSR @WriteString\031 LDI AC0, 0\031 JSR @Exit\031msg: .string \"from the assembler\"";
      "quit";
    ];
  ignore (Executive.run system);
  (* put is line-oriented; restore the newlines smuggled as \031. *)
  (let fs = System.fs system in
   match Directory.open_root fs with
   | Error _ -> Alcotest.fail "root"
   | Ok root -> (
       match Directory.lookup root "Src.asm" with
       | Ok (Some e) -> (
           match File.open_leader fs e.Directory.entry_file with
           | Ok f -> (
               match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
               | Ok b ->
                   let fixed =
                     String.map
                       (fun c -> if c = '\031' then '\n' else c)
                       (Bytes.to_string b)
                   in
                   ignore (File.write_bytes f ~pos:0 fixed)
               | Error _ -> Alcotest.fail "read")
           | Error _ -> Alcotest.fail "open")
       | Ok None | Error _ -> Alcotest.fail "missing"));
  feed_commands system [ "assemble Src.asm Out.run"; "Out.run"; "quit" ];
  ignore (Executive.run system);
  Alcotest.(check bool) "assembled and ran" true
    (contains_sub (screen system) "from the assembler")

let test_executive_dump_command () =
  let system = boot () in
  ignore (install system "Hello.run" hello_program);
  feed_commands system [ "dump Hello.run"; "quit" ];
  ignore (Executive.run system);
  let text = screen system in
  Alcotest.(check bool) "shows the entry" true (contains_sub text "<- entry");
  Alcotest.(check bool) "disassembles the call" true (contains_sub text "JSR");
  Alcotest.(check bool) "data words shown" true (contains_sub text ".word")

let test_executive_scavenge_command () =
  let system = boot () in
  feed_commands system [ "put Keep.txt data"; "scavenge"; "type Keep.txt"; "quit" ];
  ignore (Executive.run system);
  let contains needle = contains_sub (screen system) needle in
  Alcotest.(check bool) "scavenge reported" true (contains "scanned");
  Alcotest.(check bool) "file survived and reads" true (contains "data")

let test_executive_trace_command () =
  let system = boot () in
  (* [scavenge] is guaranteed to leave events in the trace ring; [put]
     exercises the disk counters too. The window must be generous: the
     patrol slice that runs between commands may refresh a link hint,
     which stages a twin page and so adds a few disk events of its own. *)
  feed_commands system
    [ "put T.txt traced"; "scavenge"; "trace 12"; "trace zero"; "quit" ];
  ignore (Executive.run system);
  let contains needle = contains_sub (screen system) needle in
  Alcotest.(check bool) "events shown with timestamps" true (contains "us ");
  Alcotest.(check bool) "scavenger report event surfaced" true
    (contains "scavenger.");
  Alcotest.(check bool) "bad count rejected" true
    (contains "trace: expected a positive event count")

let () =
  Alcotest.run "alto_os"
    [
      ( "levels",
        [
          ("layout", `Quick, test_level_layout);
          ("service addresses", `Quick, test_service_addresses_fixed);
          ("resident memory accounting", `Quick, test_resident_memory_accounting);
        ] );
      ( "loader",
        [
          ("runs hello", `Quick, test_loader_runs_hello);
          ("run by name", `Quick, test_loader_run_by_name);
          ("rejects garbage", `Quick, test_loader_rejects_garbage);
          ("unknown fixup", `Quick, test_loader_unknown_fixup);
          ("overlays", `Quick, test_overlays);
        ] );
      ( "services",
        [
          ("file IO from a program", `Quick, test_program_writes_and_reads_a_file);
          ("zone allocation from a program", `Quick, test_program_allocates_from_system_zone);
        ] );
      ( "junta",
        [
          ("reclaims and traps", `Quick, test_junta_reclaims_and_traps);
          ("counter-junta restores", `Quick, test_counter_junta_restores);
          ("type-ahead kept above level 2", `Quick, test_junta_keeps_typeahead_above_level_2);
        ] );
      ("world", [ ("OutLoad double return", `Quick, test_outload_double_return) ]);
      ( "executive",
        [
          ("session", `Quick, test_executive_session);
          ("records Com.cm", `Quick, test_executive_records_command_file);
          ("runs programs, type-ahead", `Quick, test_executive_runs_programs_and_typeahead);
          ("junta command", `Quick, test_executive_junta_command);
          ("copy and compile commands", `Quick, test_executive_copy_and_compile);
          ("program reads Com.cm", `Quick, test_program_reads_its_arguments_from_com_cm);
          ("assemble command", `Quick, test_executive_assemble_command);
          ("dump command", `Quick, test_executive_dump_command);
          ("scavenge command", `Quick, test_executive_scavenge_command);
          ("trace command", `Quick, test_executive_trace_command);
        ] );
    ]
