(* The offline checker: a pure read-only pass over a pack image, run
   against healthy volumes, wrecks, and torn survivors of a crash. It
   needs no live [System] — a raw drive is enough — and its verdict is
   the oracle the crash-injection harness gates on: violations are
   broken recovery promises, findings are damage the self-healing
   machinery absorbs. *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Bio = Alto_fs.Bio
module Directory = Alto_fs.Directory
module Fsck = Alto_fs.Fsck
module Scavenger = Alto_fs.Scavenger

let geometry = { Geometry.diablo_31 with Geometry.model = "fsck"; cylinders = 25 }

let pattern seed n =
  String.init n (fun i -> Char.chr (32 + ((i + (seed * 13)) mod 90)))

(* A committed pack: six catalogued files, every delayed write flushed,
   the descriptor marked clean — a consistency point. *)
let build ?(pack_id = 21) () =
  let drive = Drive.create ~pack_id geometry in
  let fs = Fs.format drive in
  let root =
    match Directory.open_root fs with Ok r -> r | Error _ -> failwith "root"
  in
  let files =
    List.init 6 (fun seed ->
        let name = Printf.sprintf "F%02d.dat" seed in
        let f =
          match File.create fs ~name with Ok f -> f | Error _ -> failwith "create"
        in
        (match File.write_bytes f ~pos:0 (pattern seed (600 + (seed * 300))) with
        | Ok () -> ()
        | Error _ -> failwith "write");
        (match Directory.add root ~name (File.leader_name f) with
        | Ok () -> ()
        | Error _ -> failwith "add");
        (name, f))
  in
  (match Fs.flush fs with Ok () -> () | Error _ -> failwith "flush");
  (match Fs.mark_clean fs with Ok () -> () | Error _ -> failwith "mark_clean");
  (match Fs.flush fs with Ok () -> () | Error _ -> failwith "flush2");
  (drive, fs, root, files)

let has_class cls issues =
  List.exists (fun i -> String.equal i.Fsck.i_class cls) issues

let test_clean_verdict_on_committed_pack () =
  let drive, _, _, _ = build () in
  let r = Fsck.check drive in
  if not (Fsck.clean r) then
    Alcotest.failf "committed pack not clean:@.%a" Fsck.pp_report r;
  Alcotest.(check bool) "descriptor mounts" true r.Fsck.descriptor_ok;
  Alcotest.(check bool) "6 catalogued files" true (r.Fsck.counts.Fsck.catalogued >= 6);
  Alcotest.(check int) "no orphans" 0 r.Fsck.counts.Fsck.orphans

let test_runs_offline_on_a_wreck () =
  (* An unformatted drive: no descriptor, no files, no live [System] —
     the checker must still sweep the labels and report, not raise. *)
  let drive = Drive.create ~pack_id:22 geometry in
  let r = Fsck.check drive in
  Alcotest.(check bool) "descriptor unmountable" false r.Fsck.descriptor_ok;
  Alcotest.(check bool) "reported as a violation" true
    (has_class "descriptor" r.Fsck.violations);
  Alcotest.(check int) "whole pack swept" (Drive.sector_count drive)
    r.Fsck.counts.Fsck.sectors

let test_check_is_read_only () =
  let drive, _, _, _ = build () in
  let before = Drive.write_ops drive in
  ignore (Fsck.check drive : Fsck.report);
  Alcotest.(check int) "no writing operations" before (Drive.write_ops drive)

let test_dangling_entry_is_a_violation () =
  let drive, fs, _, files = build () in
  (* Delete the file's pages but leave the catalogue entry standing:
     a promise [ls] makes and [open] breaks. *)
  let _, f0 = List.hd files in
  (match File.delete f0 with Ok () -> () | Error _ -> failwith "delete");
  (match Fs.flush fs with Ok () -> () | Error _ -> failwith "flush");
  ignore (Bio.flush (Fs.bio fs) : Bio.flush_report);
  let r = Fsck.check drive in
  Alcotest.(check bool) "dangling entry flagged" true
    (has_class "dangling-entry" r.Fsck.violations)

let test_garbled_leader_label_then_scavenge () =
  let drive, fs, root, _ = build () in
  let addr =
    match Directory.lookup root "F01.dat" with
    | Ok (Some e) -> e.Directory.entry_file.Alto_fs.Page.addr
    | Ok None | Error _ -> failwith "lookup"
  in
  ignore fs;
  Fault.corrupt_part (Random.State.make [| 41 |]) drive addr Sector.Label;
  let r = Fsck.check drive in
  Alcotest.(check bool) "headless catalogued file is a violation" true
    (r.Fsck.violations <> []);
  Alcotest.(check bool) "unparseable label is a finding" true
    (has_class "garbage-label" r.Fsck.findings);
  (* The cure the report prescribes: one scavenge, then a second check
     must find every promise restored. *)
  match Scavenger.scavenge ~verify_values:true drive with
  | Error msg -> Alcotest.failf "scavenge: %s" msg
  | Ok (_, _) ->
      let r2 = Fsck.check drive in
      if r2.Fsck.violations <> [] then
        Alcotest.failf "violations survived the scavenge:@.%a" Fsck.pp_report r2

let test_torn_page_detected_then_scavenge () =
  let drive, fs, _, files = build () in
  (* Overwrite one committed file (same length), leave the new value
     delayed in the track buffers, and tear the first write of the
     flush sweep — a committed catalogued page is now torn. *)
  let _, f3 = List.nth files 3 in
  (match File.write_bytes f3 ~pos:0 (pattern 77 (600 + (3 * 300))) with
  | Ok () -> ()
  | Error _ -> failwith "overwrite");
  Fault.crash_after_writes ~tear:Drive.Torn_value drive 0;
  (match Fs.flush fs with
  | Ok () | Error _ -> Alcotest.fail "expected a power failure"
  | exception Drive.Power_failure -> ());
  Fault.cancel_crash drive;
  let torn = ref 0 in
  for i = 0 to Drive.sector_count drive - 1 do
    if Drive.is_torn drive (Disk_address.of_index i) then incr torn
  done;
  Alcotest.(check int) "exactly one sector torn" 1 !torn;
  let r = Fsck.check drive in
  Alcotest.(check bool) "torn catalogued page is a violation" true
    (has_class "torn-page" r.Fsck.violations);
  match Scavenger.scavenge ~verify_values:true drive with
  | Error msg -> Alcotest.failf "scavenge: %s" msg
  | Ok (_, _) ->
      let r2 = Fsck.check drive in
      if r2.Fsck.violations <> [] then
        Alcotest.failf "violations survived the scavenge:@.%a" Fsck.pp_report r2

let () =
  Alcotest.run "alto fsck"
    [
      ( "offline checker",
        [
          ("clean verdict on a committed pack", `Quick, test_clean_verdict_on_committed_pack);
          ("runs offline on a wreck", `Quick, test_runs_offline_on_a_wreck);
          ("the check is read-only", `Quick, test_check_is_read_only);
          ("dangling entry is a violation", `Quick, test_dangling_entry_is_a_violation);
          ("garbled leader label, then scavenge", `Quick, test_garbled_leader_label_then_scavenge);
          ("torn page detected, then scavenge", `Quick, test_torn_page_detected_then_scavenge);
        ] );
    ]
