(* The causal span profiler and the on-pack flight recorder: span trees
   accumulate by code path and survive exceptions, disk charges land in
   the span that caused them and balance the drive's aggregate counters
   exactly, the flight record sealed before a crash is adopted at the
   next boot and readable through the executive, and fixed-seed runs
   produce byte-identical span trees and pack images. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Drive = Alto_disk.Drive
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger
module Flight = Alto_fs.Flight
module System = Alto_os.System
module Executive = Alto_os.Executive
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof

let tiny = { Geometry.diablo_31 with Geometry.model = "tiny"; cylinders = 3 }

let fresh () = Obs.reset ()

let create_file fs name content =
  match File.create fs ~name with
  | Error e -> Alcotest.failf "create %s: %a" name File.pp_error e
  | Ok file -> (
      (match File.write_bytes file ~pos:0 content with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write %s: %a" name File.pp_error e);
      (match File.flush_leader file with
      | Ok () -> ()
      | Error e -> Alcotest.failf "flush %s: %a" name File.pp_error e);
      match Directory.open_root fs with
      | Error e -> Alcotest.failf "root: %a" Directory.pp_error e
      | Ok root -> (
          match Directory.add root ~name (File.leader_name file) with
          | Ok () -> file
          | Error e -> Alcotest.failf "add %s: %a" name Directory.pp_error e))

let find_exn tree name =
  match Prof.find tree name with
  | Some s -> s
  | None -> Alcotest.failf "span %s missing from the tree" name

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* {2 The span tree} *)

let test_nested_spans_accumulate () =
  fresh ();
  let clock = Sim_clock.create () in
  for _ = 1 to 3 do
    Prof.span clock "outer" (fun () ->
        Sim_clock.advance_us clock 10;
        Prof.span clock "inner" (fun () -> Sim_clock.advance_us clock 5))
  done;
  let t = Prof.tree () in
  let outer = find_exn t "outer" in
  Alcotest.(check (list string))
    "root has one child" [ "outer" ]
    (List.map (fun (s : Prof.snapshot) -> s.Prof.name) t.Prof.children);
  Alcotest.(check int) "outer calls" 3 outer.Prof.calls;
  Alcotest.(check int) "outer total" 45 outer.Prof.total_us;
  Alcotest.(check int) "outer self" 30 outer.Prof.self_us;
  (match outer.Prof.children with
  | [ inner ] ->
      Alcotest.(check string) "inner nested" "inner" inner.Prof.name;
      Alcotest.(check int) "inner calls" 3 inner.Prof.calls;
      Alcotest.(check int) "inner total" 15 inner.Prof.total_us;
      Alcotest.(check int) "inner self" 15 inner.Prof.self_us
  | _ -> Alcotest.fail "outer should have exactly the inner child");
  (* Same name under a different parent is a different node. *)
  Prof.span clock "inner" (fun () -> Sim_clock.advance_us clock 2);
  let t = Prof.tree () in
  let top_inner =
    List.find
      (fun (s : Prof.snapshot) -> s.Prof.name = "inner")
      t.Prof.children
  in
  Alcotest.(check int) "top-level inner is its own node" 2 top_inner.Prof.total_us;
  Alcotest.(check int) "root total sums children" 47 t.Prof.total_us

let test_exception_still_closes_the_span () =
  fresh ();
  let clock = Sim_clock.create () in
  (try
     Prof.span clock "boom" (fun () ->
         Sim_clock.advance_us clock 7;
         failwith "bang")
   with Failure _ -> ());
  Prof.span clock "after" (fun () -> Sim_clock.advance_us clock 2);
  let t = Prof.tree () in
  let boom = find_exn t "boom" in
  Alcotest.(check int) "raising span still charged" 7 boom.Prof.total_us;
  Alcotest.(check (list string))
    "the next span is a sibling, not a child" [ "after"; "boom" ]
    (List.map (fun (s : Prof.snapshot) -> s.Prof.name) t.Prof.children);
  Alcotest.(check int) "boom has no children" 0 (List.length boom.Prof.children)

let test_notes_mark_zero_cost_causes () =
  fresh ();
  let clock = Sim_clock.create () in
  Prof.span clock "parent" (fun () ->
      Sim_clock.advance_us clock 4;
      Prof.note "hit";
      Prof.note "hit");
  let parent = find_exn (Prof.tree ()) "parent" in
  match parent.Prof.children with
  | [ hit ] ->
      Alcotest.(check string) "note nests under its cause" "hit" hit.Prof.name;
      Alcotest.(check int) "note counts calls" 2 hit.Prof.calls;
      Alcotest.(check int) "note costs nothing" 0 hit.Prof.total_us;
      Alcotest.(check int) "parent keeps its self time" 4 parent.Prof.self_us
  | _ -> Alcotest.fail "expected exactly the note child"

let test_retry_motion_files_under_retry () =
  fresh ();
  let clock = Sim_clock.create () in
  Prof.span clock "op" (fun () ->
      Prof.charge_seek 5;
      Prof.with_retry (fun () ->
          Prof.charge_seek 3;
          Prof.charge_rotation 2));
  let op = find_exn (Prof.tree ()) "op" in
  Alcotest.(check int) "first-attempt seek" 5 op.Prof.seek_us;
  Alcotest.(check int) "no rotation outside retry" 0 op.Prof.rotation_us;
  Alcotest.(check int) "retry motion pooled" 5 op.Prof.retry_us;
  Alcotest.(check int) "disk_us sums the components" 10 (Prof.disk_us op)

(* {2 Integration: attribution balances the drive's books} *)

let test_disk_charges_balance_the_counters () =
  fresh ();
  let drive = Drive.create ~pack_id:5 tiny in
  let fs = Fs.format drive in
  Obs.reset ();
  let clock = Fs.clock fs in
  let file =
    Obs.time clock "test.op_us" (fun () ->
        create_file fs "Books.dat" (String.make 3000 'b'))
  in
  let (_ : (Bytes.t, File.error) result) =
    Obs.time clock "test.op_us" (fun () -> File.read_bytes file ~pos:0 ~len:3000)
  in
  let t = Prof.tree () in
  let op = find_exn t "test.op_us" in
  Alcotest.(check bool) "the operation cost simulated time" true
    (op.Prof.total_us > 0);
  (* The cost is attributed: some span below the operation carries disk
     charges, and the page layer shows up as the cause. *)
  let charged =
    List.exists (fun s -> Prof.disk_us s > 0) (Prof.flatten op)
  in
  Alcotest.(check bool) "disk time lands inside the operation" true charged;
  let (_ : Prof.snapshot) = find_exn op "page.read" in
  (* Conservation: the four components summed over the whole tree are
     exactly the drive's motion counters — not within a tolerance. *)
  let counter name =
    match Obs.find name with
    | Some (Obs.Counter v) -> v
    | _ -> Alcotest.failf "no counter %s" name
  in
  let totals = Prof.disk_totals () in
  Alcotest.(check int) "seek+retry vs disk counters"
    (counter "disk.seek_us" + counter "disk.rotational_wait_us"
    + counter "disk.transfer_us")
    (totals.Prof.t_seek_us + totals.Prof.t_rotation_us
    + totals.Prof.t_transfer_us + totals.Prof.t_retry_us)

(* {2 The flight recorder} *)

(* Runs before any test adopts a record: a pack that predates the
   recorder mounts and recovers exactly as before. *)
let test_old_pack_without_a_record_boots () =
  fresh ();
  let drive = Drive.create ~pack_id:6 tiny in
  let fs = Fs.format drive in
  let (_ : File.t) = create_file fs "Old.dat" "pre-recorder pack" in
  Alcotest.(check bool) "mutation left the pack dirty" true (Fs.dirty fs);
  let system = System.boot ~drive () in
  Alcotest.(check bool) "recovery ran and cleaned the pack" false
    (Fs.dirty (System.fs system));
  Alcotest.(check bool) "nothing was adopted" true (Flight.adopted () = None);
  Keyboard.feed (System.keyboard system) "blackbox\nquit\n";
  let (_ : Executive.outcome) = Executive.run system in
  Alcotest.(check bool) "blackbox reports the absence" true
    (contains
       (Display.contents (System.display system))
       "no flight record adopted")

let test_flight_record_round_trip () =
  fresh ();
  let drive = Drive.create ~pack_id:7 tiny in
  let system = System.boot ~drive () in
  Keyboard.feed (System.keyboard system) "put Log.txt black box test\nquit\n";
  let outcome = Executive.run system in
  Alcotest.(check bool) "first session quit" true outcome.Executive.quit;
  Alcotest.(check bool) "quit left the pack clean" false
    (Fs.dirty (System.fs system));
  (* The shutdown sealed a record into the catalogue. *)
  (match Directory.open_root (System.fs system) with
  | Error e -> Alcotest.failf "root: %a" Directory.pp_error e
  | Ok root -> (
      match Directory.lookup root Flight.file_name with
      | Ok (Some _) -> ()
      | Ok None -> Alcotest.failf "%s not catalogued" Flight.file_name
      | Error e -> Alcotest.failf "lookup: %a" Directory.pp_error e));
  (* The next incarnation crashes: a mutation with no clean shutdown. *)
  let (_ : File.t) = create_file (System.fs system) "Unsaved.dat" "lost work" in
  Alcotest.(check bool) "crash left the pack dirty" true
    (Fs.dirty (System.fs system));
  (* Reboot. The dirty mount adopts the record sealed at the last quit,
     then recovery cleans the volume. *)
  let reborn = System.boot ~drive () in
  Alcotest.(check bool) "recovery cleaned the pack" false
    (Fs.dirty (System.fs reborn));
  (match Flight.adopted () with
  | None -> Alcotest.fail "no flight record adopted"
  | Some record ->
      Alcotest.(check bool) "record carries the magic" true
        (contains record "altos.flight/1");
      Alcotest.(check bool) "record names its reason" true
        (contains record "\"reason\":\"quit\"");
      Alcotest.(check bool) "record snapshots the metrics" true
        (contains record "\"metrics\""));
  (* And the executive can read the black box aloud. *)
  Keyboard.feed (System.keyboard reborn) "blackbox\nquit\n";
  let (_ : Executive.outcome) = Executive.run reborn in
  Alcotest.(check bool) "blackbox prints the record" true
    (contains (Display.contents (System.display reborn)) "altos.flight/1")

(* {2 Determinism} *)

let test_fixed_seed_runs_are_identical () =
  let run () =
    Obs.reset ();
    (* Drain the recorder's ring so both runs seal from the same state,
       then re-arm it: the flight file's bytes are part of the image. *)
    Flight.disable ();
    Flight.enable ();
    let drive = Drive.create ~pack_id:11 tiny in
    let fs = Fs.format drive in
    Fault.set_soft_errors drive ~seed:77 ~rate:0.0;
    let clock = Fs.clock fs in
    Obs.time clock "run.session_us" (fun () ->
        let a = create_file fs "A.dat" (String.make 700 'a') in
        let (_ : File.t) = create_file fs "B.dat" (String.make 1400 'b') in
        (match File.read_bytes a ~pos:0 ~len:700 with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "read: %a" File.pp_error e);
        match Scavenger.scavenge drive with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "scavenge: %s" msg);
    (Prof.tree (), drive)
  in
  let tree1, drive1 = run () in
  let tree2, drive2 = run () in
  Alcotest.(check bool) "span trees identical" true (tree1 = tree2);
  let n = Drive.sector_count drive1 in
  Alcotest.(check int) "same pack size" n (Drive.sector_count drive2);
  let mismatches = ref 0 in
  for i = 0 to n - 1 do
    let a = Drive.peek drive1 (Disk_address.of_index i) in
    let b = Drive.peek drive2 (Disk_address.of_index i) in
    if a <> b then incr mismatches
  done;
  Alcotest.(check int) "pack images byte-identical" 0 !mismatches

let () =
  Alcotest.run "alto prof"
    [
      ( "spans",
        [
          ("nested spans accumulate", `Quick, test_nested_spans_accumulate);
          ("exception still closes", `Quick, test_exception_still_closes_the_span);
          ("notes mark zero-cost causes", `Quick, test_notes_mark_zero_cost_causes);
          ("retry motion files under retry", `Quick, test_retry_motion_files_under_retry);
          ("charges balance the counters", `Quick, test_disk_charges_balance_the_counters);
        ] );
      ( "flight",
        [
          ("old pack without a record", `Quick, test_old_pack_without_a_record_boots);
          ("round trip across a crash", `Quick, test_flight_record_round_trip);
        ] );
      ( "determinism",
        [ ("fixed-seed runs identical", `Quick, test_fixed_seed_runs_are_identical) ] );
    ]
