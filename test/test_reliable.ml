(* The transient-fault model and the bounded-retry recovery layer:
   seeded soft errors are deterministic, the retry ladder absorbs them
   without data loss, marginal sectors degrade to hard failures, and the
   scavenger copies still-readable pages off failing sectors into a
   persistent quarantine. *)

module Word = Alto_machine.Word
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Label = Alto_fs.Label
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger
module Obs = Alto_obs.Obs

let tiny = { Geometry.diablo_31 with Geometry.model = "tiny"; cylinders = 3 }

let make_drive ?(geometry = tiny) ?(pack_id = 3) () = Drive.create ~pack_id geometry

let addr i = Disk_address.of_index i

let label_buf () = Array.make Sector.label_words Word.zero
let value_buf () = Array.make Sector.value_words Word.zero

let write_sector drive a ~label ~value =
  match
    Drive.run drive a
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label ~value ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" Drive.pp_error e

let counter name =
  match Obs.find name with
  | Some (Obs.Counter v) -> v
  | Some (Obs.Histogram _) | None -> 0

let read_value ?policy drive a =
  let value = value_buf () in
  let r =
    Reliable.run ?policy drive a
      { Drive.op_none with value = Some Drive.Read }
      ~value ()
  in
  (r, value)

(* {2 the retry ladder} *)

let test_transient_recovery () =
  let drive = make_drive () in
  let want = Array.init Sector.value_words (fun i -> Word.of_int (i land 0xFFFF)) in
  write_sector drive (addr 5) ~label:(label_buf ()) ~value:want;
  Fault.set_soft_errors drive ~seed:42 ~rate:0.4;
  let retries0 = counter "disk.retries" in
  let recovered0 = counter "disk.retry_recovered" in
  let exhausted0 = counter "disk.retry_exhausted" in
  for _ = 1 to 50 do
    match read_value ~policy:Reliable.salvage_policy drive (addr 5) with
    | Ok (), got -> Alcotest.(check bool) "data intact" true (got = want)
    | Error e, _ -> Alcotest.failf "read: %a" Drive.pp_error e
  done;
  Alcotest.(check bool) "soft errors tripped" true
    ((Drive.stats drive).Drive.soft_errors > 0);
  Alcotest.(check bool) "retries happened" true (counter "disk.retries" > retries0);
  Alcotest.(check bool) "recoveries recorded" true
    (counter "disk.retry_recovered" > recovered0);
  Alcotest.(check int) "nothing exhausted" exhausted0 (counter "disk.retry_exhausted")

let test_writes_never_transient () =
  let drive = make_drive () in
  Fault.set_soft_errors drive ~seed:7 ~rate:1.0;
  (* Write-only operations draw no soft errors even at rate 1.0. *)
  for i = 0 to 11 do
    write_sector drive (addr i) ~label:(label_buf ()) ~value:(value_buf ())
  done;
  Alcotest.(check int) "no soft errors on writes" 0
    (Drive.stats drive).Drive.soft_errors

let test_hard_errors_not_retried () =
  let drive = make_drive () in
  Fault.make_bad drive (addr 4);
  let result, retries =
    let value = value_buf () in
    Reliable.run_counted drive (addr 4)
      { Drive.op_none with value = Some Drive.Read }
      ~value ()
  in
  (match result with
  | Error Drive.Bad_sector -> ()
  | Ok () -> Alcotest.fail "read a bad sector"
  | Error e -> Alcotest.failf "unexpected: %a" Drive.pp_error e);
  Alcotest.(check int) "deterministic errors are not retried" 0 retries

(* {2 determinism} *)

(* The same seed, rate and operation sequence must produce the same
   retry counts and the same pack image — the property the CI regression
   gate rests on. *)
let test_determinism () =
  let run_once () =
    let drive = make_drive () in
    let value = Array.init Sector.value_words (fun i -> Word.of_int (i * 3)) in
    for i = 0 to Drive.sector_count drive - 1 do
      write_sector drive (addr i) ~label:(label_buf ()) ~value
    done;
    Fault.set_soft_errors drive ~seed:1234 ~rate:0.3;
    let retries =
      List.init (Drive.sector_count drive) (fun i ->
          let r, n =
            Reliable.run_counted ~policy:Reliable.salvage_policy drive (addr i)
              { Drive.op_none with value = Some Drive.Read }
              ~value:(value_buf ()) ()
          in
          (match r with
          | Ok () -> ()
          | Error e -> Alcotest.failf "read: %a" Drive.pp_error e);
          n)
    in
    (retries, (Drive.stats drive).Drive.soft_errors, drive)
  in
  let r1, soft1, d1 = run_once () in
  let r2, soft2, d2 = run_once () in
  Alcotest.(check (list int)) "identical retry counts" r1 r2;
  Alcotest.(check int) "identical soft error totals" soft1 soft2;
  let image d =
    List.init (Drive.sector_count d) (fun i ->
        let s = Drive.peek d (addr i) in
        ( Array.to_list (Sector.part_of s Sector.Header),
          Array.to_list (Sector.part_of s Sector.Label),
          Array.to_list (Sector.part_of s Sector.Value) ))
  in
  Alcotest.(check bool) "identical pack images" true (image d1 = image d2)

(* {2 marginal sectors} *)

let test_marginal_degrades () =
  let drive = make_drive () in
  write_sector drive (addr 9) ~label:(label_buf ()) ~value:(value_buf ());
  Fault.make_marginal ~rate:1.0 ~growth:1.0 ~degrade_after:3 drive (addr 9);
  Alcotest.(check bool) "marginal" true (Drive.is_marginal drive (addr 9));
  (* Every value read fails; after 3 failures the sector is hard-bad. *)
  (match read_value ~policy:Reliable.salvage_policy drive (addr 9) with
  | Error Drive.Bad_sector, _ -> ()
  | Ok (), _ -> Alcotest.fail "a dying sector read clean"
  | Error e, _ -> Alcotest.failf "expected degradation, got %a" Drive.pp_error e);
  Alcotest.(check int) "three failures recorded" 3 (Drive.soft_failures drive (addr 9));
  (* Labels stay readable right up until degradation: the disease is
     value-only, so the sweep can still identify the page. *)
  match
    Drive.run drive (addr 9)
      { Drive.op_none with label = Some Drive.Read }
      ~label:(label_buf ()) ()
  with
  | Error Drive.Bad_sector -> ()
  | Ok () -> Alcotest.fail "degraded sector still serves labels"
  | Error e -> Alcotest.failf "unexpected: %a" Drive.pp_error e

let test_retry_exhaustion () =
  let drive = make_drive () in
  write_sector drive (addr 2) ~label:(label_buf ()) ~value:(value_buf ());
  Fault.make_marginal ~rate:1.0 ~growth:1.0 ~degrade_after:1_000 drive (addr 2);
  let exhausted0 = counter "disk.retry_exhausted" in
  let result, retries =
    Reliable.run_counted drive (addr 2)
      { Drive.op_none with value = Some Drive.Read }
      ~value:(value_buf ()) ()
  in
  (match result with
  | Error (Drive.Transient _) -> ()
  | Ok () -> Alcotest.fail "an always-failing read succeeded"
  | Error e -> Alcotest.failf "unexpected: %a" Drive.pp_error e);
  Alcotest.(check int) "ladder ran its full length"
    Reliable.default_policy.Reliable.max_retries retries;
  Alcotest.(check int) "exhaustion counted" (exhausted0 + 1)
    (counter "disk.retry_exhausted")

(* {2 the persistent bad-sector table} *)

let test_quarantine_blocks_allocation () =
  let drive = make_drive () in
  let fs = Fs.format drive in
  (* Quarantine one free sector, then allocate everything: the
     quarantined address must never be handed out, and freeing it must
     not resurrect it. *)
  let victim =
    let rec find i =
      if Fs.is_free_in_map fs (addr i) then addr i else find (i + 1)
    in
    find 0
  in
  Fs.quarantine fs victim;
  Alcotest.(check bool) "quarantined" true (Fs.quarantined fs victim);
  let fid = Fs.fresh_fid fs in
  let rec drain acc =
    match
      Fs.allocate_page fs
        ~label:(fun _ ->
          Label.make ~fid ~page:0 ~length:0 ~next:Disk_address.nil
            ~prev:Disk_address.nil)
        ~value:(value_buf ())
    with
    | Ok a -> drain (a :: acc)
    | Error Fs.Disk_full -> acc
    | Error e -> Alcotest.failf "allocate: %a" Fs.pp_error e
  in
  let allocated = drain [] in
  Alcotest.(check bool) "filled the rest of the disk" true
    (List.length allocated > 0);
  Alcotest.(check bool) "the quarantined sector was never proposed" false
    (List.exists (Disk_address.equal victim) allocated);
  Fs.mark_free fs victim;
  Alcotest.(check bool) "mark_free cannot resurrect it" false
    (Fs.is_free_in_map fs victim)

let test_bad_table_survives_remount () =
  let drive = make_drive () in
  let fs = Fs.format drive in
  let victims =
    List.filter (fun a -> Fs.is_free_in_map fs a) [ addr 20; addr 31; addr 32 ]
  in
  Alcotest.(check int) "three free victims" 3 (List.length victims);
  List.iter (Fs.quarantine fs) victims;
  (match Fs.flush fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flush: %a" Fs.pp_error e);
  match Fs.mount drive with
  | Error msg -> Alcotest.failf "mount: %s" msg
  | Ok fs' ->
      Alcotest.(check (list int)) "table survives, in order"
        (List.map Disk_address.to_index victims)
        (List.map Disk_address.to_index (Fs.bad_sector_table fs'));
      List.iter
        (fun v ->
          Alcotest.(check bool) "still busy in the map" false
            (Fs.is_free_in_map fs' v))
        victims

(* {2 scavenger copy-out} *)

let test_scavenger_rescues_marginal () =
  let drive = make_drive ~pack_id:1 () in
  let fs = Fs.format drive in
  let root =
    match Directory.open_root fs with
    | Ok r -> r
    | Error e -> Alcotest.failf "root: %a" Directory.pp_error e
  in
  let body = String.init 2600 (fun i -> Char.chr (32 + ((i * 7) mod 95))) in
  let file =
    match File.create fs ~name:"Precious.dat" with
    | Ok f -> f
    | Error e -> Alcotest.failf "create: %a" File.pp_error e
  in
  (match File.write_bytes file ~pos:0 body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" File.pp_error e);
  (match File.flush_leader file with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flush: %a" File.pp_error e);
  (match Directory.add root ~name:"Precious.dat" (File.leader_name file) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add: %a" Directory.pp_error e);
  (* The file's own data pages go marginal (several of them, so at least
     one shows retry effort to the single verify probe). *)
  let victims =
    List.init (File.last_page file) (fun i ->
        match File.page_name file (i + 1) with
        | Ok n -> n.Page.addr
        | Error e -> Alcotest.failf "page_name: %a" File.pp_error e)
  in
  Alcotest.(check bool) "have victims" true (List.length victims >= 3);
  List.iter
    (fun a -> Fault.make_marginal ~rate:0.8 ~growth:1.0 ~degrade_after:1_000 drive a)
    victims;
  match Scavenger.scavenge ~verify_values:true ~suspect_retries:1 drive with
  | Error msg -> Alcotest.failf "scavenge: %s" msg
  | Ok (fs', report) ->
      Alcotest.(check bool) "rescued at least one marginal page" true
        (report.Scavenger.marginal_relocated >= 1);
      Alcotest.(check bool) "quarantined the old sectors" true
        (List.length (Fs.bad_sector_table fs') >= 1);
      List.iter
        (fun a ->
          if Fs.quarantined fs' a then
            Alcotest.(check bool) "quarantined sector is busy" false
              (Fs.is_free_in_map fs' a))
        victims;
      (* The data survived the move. *)
      let root' =
        match Directory.open_root fs' with
        | Ok r -> r
        | Error e -> Alcotest.failf "root': %a" Directory.pp_error e
      in
      let entry =
        match Directory.lookup root' "Precious.dat" with
        | Ok (Some e) -> e
        | Ok None -> Alcotest.fail "Precious.dat vanished"
        | Error e -> Alcotest.failf "lookup: %a" Directory.pp_error e
      in
      let rec patient_read k =
        if k = 0 then Alcotest.fail "file unreadable after rescue"
        else
          match File.open_leader fs' entry.Directory.entry_file with
          | Error _ -> patient_read (k - 1)
          | Ok f -> (
              match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
              | Ok got -> Bytes.to_string got
              | Error _ -> patient_read (k - 1))
      in
      Alcotest.(check string) "content intact" body (patient_read 5)

(* {2 file traffic under a soft-error soak} *)

let test_fs_traffic_under_soak () =
  let drive = make_drive ~geometry:{ tiny with Geometry.cylinders = 8 } () in
  let fs = Fs.format drive in
  Fault.set_soft_errors drive ~seed:99 ~rate:0.05;
  let exhausted0 = counter "disk.retry_exhausted" in
  let root =
    match Directory.open_root fs with
    | Ok r -> r
    | Error e -> Alcotest.failf "root: %a" Directory.pp_error e
  in
  let mk i =
    let name = Printf.sprintf "S%02d.dat" i in
    let body =
      String.init (700 + (137 * i)) (fun j -> Char.chr (32 + (((j * 13) + i) mod 95)))
    in
    let f =
      match File.create fs ~name with
      | Ok f -> f
      | Error e -> Alcotest.failf "create: %a" File.pp_error e
    in
    (match File.write_bytes f ~pos:0 body with
    | Ok () -> ()
    | Error e -> Alcotest.failf "write: %a" File.pp_error e);
    (match Directory.add root ~name (File.leader_name f) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "add: %a" Directory.pp_error e);
    (name, body)
  in
  let expected = List.init 10 mk in
  List.iter
    (fun (name, body) ->
      match Directory.lookup root name with
      | Ok (Some e) -> (
          match File.open_leader fs e.Directory.entry_file with
          | Ok f -> (
              match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
              | Ok got -> Alcotest.(check string) name body (Bytes.to_string got)
              | Error err -> Alcotest.failf "read %s: %a" name File.pp_error err)
          | Error err -> Alcotest.failf "open %s: %a" name File.pp_error err)
      | Ok None -> Alcotest.failf "%s not catalogued" name
      | Error e -> Alcotest.failf "lookup: %a" Directory.pp_error e)
    expected;
  Alcotest.(check bool) "the soak actually exercised the ladder" true
    ((Drive.stats drive).Drive.soft_errors > 0);
  Alcotest.(check int) "no ladder ran dry" exhausted0
    (counter "disk.retry_exhausted")

let () =
  Alcotest.run "alto reliable"
    [
      ( "ladder",
        [
          ("transient recovery", `Quick, test_transient_recovery);
          ("writes never transient", `Quick, test_writes_never_transient);
          ("hard errors not retried", `Quick, test_hard_errors_not_retried);
          ("retry exhaustion", `Quick, test_retry_exhaustion);
        ] );
      ("determinism", [ ("seeded faults replay", `Quick, test_determinism) ]);
      ("marginal", [ ("degrades to bad", `Quick, test_marginal_degrades) ]);
      ( "quarantine",
        [
          ("allocator skips quarantined", `Quick, test_quarantine_blocks_allocation);
          ("table survives remount", `Quick, test_bad_table_survives_remount);
          ("scavenger rescues marginal", `Quick, test_scavenger_rescues_marginal);
        ] );
      ("soak", [ ("fs traffic intact", `Quick, test_fs_traffic_under_soak) ]);
    ]
