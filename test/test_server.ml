(* The concurrent file server and the standing elevator queue: admission
   control NAKs above the bounded activity table, concurrent scripted
   clients interleave deterministically (identical pack images run to
   run), no client starves under a skewed mix, the standing queue is
   byte-for-byte equivalent to the one-shot batch path, and reply send
   failures are counted instead of swallowed. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Sched = Alto_disk.Sched
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Net = Alto_net.Net
module File_server = Alto_server.File_server
module Activity = Alto_server.Activity
module Obs = Alto_obs.Obs

let small = { Geometry.diablo_31 with Geometry.model = "small"; cylinders = 10 }

let addr i = Disk_address.of_index i

let check_ok pp what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %a" what pp e

let client_ok what r = check_ok File_server.Client.pp_error what r

let body seed n = String.init n (fun i -> Char.chr (32 + (((i * 11) + seed) mod 95)))

let make_file fs root name n seed =
  let file = check_ok File.pp_error "create" (File.create fs ~name) in
  if n > 0 then check_ok File.pp_error "write" (File.write_bytes file ~pos:0 (body seed n));
  check_ok File.pp_error "flush" (File.flush_leader file);
  check_ok Directory.pp_error "add" (Directory.add root ~name (File.leader_name file))

let counter name =
  match Obs.find name with
  | Some (Obs.Counter v) -> v
  | Some (Obs.Histogram _) | None -> 0

let pack_image drive =
  List.init (Drive.sector_count drive) (fun i ->
      let s = Drive.peek drive (addr i) in
      ( Array.to_list (Sector.part_of s Sector.Header),
        Array.to_list (Sector.part_of s Sector.Label),
        Array.to_list (Sector.part_of s Sector.Value) ))

(* {2 The standing queue vs the one-shot path}

   The same batches, issued one run_batch at a time on one pack and all
   merged into a single standing-queue sweep on an identical twin, must
   produce byte-identical packs, byte-identical read buffers and
   identical outcomes — interleaving may change only head motion. *)

let value_for i = Array.init Sector.value_words (fun k -> Word.of_int (((i * 131) + k) land 0xFFFF))

let write_direct drive i v =
  match
    Drive.run drive (addr i) { Drive.op_none with Drive.value = Some Drive.Write } ~value:v ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "prep write: %a" Drive.pp_error e

(* Four batches over scattered sectors; sector 17 is written by two
   different batches and read by a third, so arrival order per sector is
   part of what must match. *)
let make_batches () =
  let read_buffers = ref [] in
  let read i =
    let buf = Array.make Sector.value_words Word.zero in
    read_buffers := buf :: !read_buffers;
    Sched.request ~value:buf (addr i) { Drive.op_none with Drive.value = Some Drive.Read }
  in
  let write i seed =
    Sched.request ~value:(value_for seed) (addr i)
      { Drive.op_none with Drive.value = Some Drive.Write }
  in
  let batches =
    [|
      [| read 3; write 40 1040; read 55; write 17 1017 |];
      [| write 17 2017; read 9; write 61 1061 |];
      [| read 40; write 17 3017; read 25 |];
      [| read 17; read 61; write 5 1005 |];
    |]
  in
  (batches, fun () -> List.rev_map Array.to_list !read_buffers)

let prep_drive () =
  let drive = Drive.create ~pack_id:11 small in
  List.iter (fun i -> write_direct drive i (value_for i)) [ 3; 5; 9; 17; 25; 40; 55; 61 ];
  drive

let test_standing_matches_oneshot () =
  (* Path A: each batch is its own one-shot elevator pass. *)
  let drive_a = prep_drive () in
  let batches_a, buffers_a = make_batches () in
  let outcomes_a =
    Array.map (fun batch -> Sched.run_batch drive_a batch) batches_a
  in
  (* Path B: all four batches pend on one standing queue; one sweep. *)
  let drive_b = prep_drive () in
  let batches_b, buffers_b = make_batches () in
  let queue = Sched.create drive_b in
  let outcomes_b =
    Array.map
      (fun batch ->
        let out = Array.make (Array.length batch) { Sched.result = Ok (); retries = 0 } in
        Sched.submit_batch queue batch ~on_done:(fun i o -> out.(i) <- o);
        out)
      batches_b
  in
  Alcotest.(check int) "all requests pend before the sweep" 13 (Sched.queued queue);
  Alcotest.(check int) "one sweep serves everything" 13 (Sched.sweep queue);
  Alcotest.(check int) "queue drained" 0 (Sched.queued queue);
  let flat o = Array.to_list (Array.concat (Array.to_list o)) in
  List.iter2
    (fun (a : Sched.outcome) (b : Sched.outcome) ->
      (match (a.Sched.result, b.Sched.result) with
      | Ok (), Ok () -> ()
      | _ -> Alcotest.fail "an outcome differs between the two paths");
      Alcotest.(check int) "same retries" a.Sched.retries b.Sched.retries)
    (flat outcomes_a) (flat outcomes_b);
  Alcotest.(check bool) "identical read buffers" true (buffers_a () = buffers_b ());
  Alcotest.(check bool) "identical pack images" true
    (pack_image drive_a = pack_image drive_b)

(* {2 A scripted multi-client workload}

   The miniature of bench E18: [clients] scripted stations against a
   [slots]-bounded server, send order rotated one position per round so
   every client leads equally often. Returns everything determinism and
   fairness can be judged on. *)

type script_result = {
  r_completed : int array;
  r_naks : int array;
  r_image : (Word.t list * Word.t list * Word.t list) list;
  r_end_us : int;
}

let corpus = Array.init 6 (fun k -> (Printf.sprintf "Srv%d.dat" k, 1200, k))

let run_script ~clients ~slots ~rounds ~op_of () =
  let drive = Drive.create ~pack_id:5 small in
  let fs = Fs.format drive in
  let clock = Fs.clock fs in
  let root = check_ok Directory.pp_error "root" (Directory.open_root fs) in
  Array.iter (fun (name, n, seed) -> make_file fs root name n seed) corpus;
  let net = Net.create ~clock () in
  let server_station = Net.attach net ~name:"fs" in
  let srv = File_server.create ~max_active:slots fs server_station in
  let stations =
    Array.init clients (fun i -> Net.attach net ~name:(Printf.sprintf "c%02d" i))
  in
  let completed = Array.make clients 0 in
  let naks = Array.make clients 0 in
  let inflight = Array.make clients false in
  let send i =
    (match op_of i completed.(i) with
    | `Get k ->
        let name, _, _ = corpus.(k) in
        client_ok "send_get" (File_server.Client.send_get stations.(i) ~server:"fs" ~name)
    | `Put ->
        client_ok "send_put"
          (File_server.Client.send_put stations.(i) ~server:"fs"
             ~name:(Printf.sprintf "Cl%02d.out" i)
             (body (500 + i) 300))
    | `List -> client_ok "send_list" (File_server.Client.send_list stations.(i) ~server:"fs"));
    inflight.(i) <- true
  in
  let poll i =
    match File_server.Client.poll_reply stations.(i) with
    | None -> Alcotest.fail "a client is owed a reply"
    | Some (Error File_server.Client.Busy) ->
        naks.(i) <- naks.(i) + 1;
        inflight.(i) <- false
    | Some (Error e) -> Alcotest.failf "client %d: %a" i File_server.Client.pp_error e
    | Some (Ok reply) ->
        (match (op_of i completed.(i), reply) with
        | `Get k, File_server.Client.File (name, contents) ->
            let want_name, n, seed = corpus.(k) in
            Alcotest.(check string) "GET name" want_name name;
            Alcotest.(check string) "GET contents" (body seed n) contents
        | `Put, File_server.Client.Ack -> ()
        | `List, File_server.Client.File (name, _) ->
            Alcotest.(check string) "listing name" ";listing" name
        | _ -> Alcotest.fail "reply kind does not match the request");
        completed.(i) <- completed.(i) + 1;
        inflight.(i) <- false
  in
  for round = 0 to rounds - 1 do
    for k = 0 to clients - 1 do
      let i = (round + k) mod clients in
      if not inflight.(i) then send i
    done;
    while File_server.tick srv > 0 do
      ()
    done;
    Array.iteri (fun i f -> if f then poll i) inflight
  done;
  let s = File_server.stats srv in
  Alcotest.(check int) "server and clients agree on completions"
    (Array.fold_left ( + ) 0 completed)
    (s.File_server.gets + s.File_server.puts + s.File_server.lists);
  Alcotest.(check int) "server and clients agree on naks"
    (Array.fold_left ( + ) 0 naks)
    s.File_server.naks;
  {
    r_completed = completed;
    r_naks = naks;
    r_image = pack_image drive;
    r_end_us = Sim_clock.now_us clock;
  }

let mixed_op i c =
  match (i + c) mod 10 with
  | 0 | 1 | 2 | 3 | 4 | 5 -> `Get (((i * 7) + (c * 3)) mod Array.length corpus)
  | 6 | 7 | 8 -> `Put
  | _ -> `List

let test_interleaving_deterministic () =
  let run () = run_script ~clients:24 ~slots:6 ~rounds:12 ~op_of:mixed_op () in
  let r1 = run () in
  let r2 = run () in
  Alcotest.(check bool) "overload actually tripped" true
    (Array.fold_left ( + ) 0 r1.r_naks > 0);
  Alcotest.(check (array int)) "identical completions" r1.r_completed r2.r_completed;
  Alcotest.(check (array int)) "identical nak counts" r1.r_naks r2.r_naks;
  Alcotest.(check int) "identical simulated end time" r1.r_end_us r2.r_end_us;
  Alcotest.(check bool) "identical pack images" true (r1.r_image = r2.r_image)

(* A deliberately skewed mix — a third of the clients hammer GETs of one
   file, the rest mix — must still complete every client within 2x of
   every other over a full rotation of the send order. *)
let test_fairness_skewed () =
  let skewed i c = if i mod 3 = 0 then `Get 0 else mixed_op i c in
  let r = run_script ~clients:40 ~slots:8 ~rounds:40 ~op_of:skewed () in
  let c_min = Array.fold_left min max_int r.r_completed in
  let c_max = Array.fold_left max 0 r.r_completed in
  Alcotest.(check bool) "no client starved" true (c_min > 0);
  Alcotest.(check bool) "admission refused some requests" true
    (Array.fold_left ( + ) 0 r.r_naks > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fairness within 2x (min %d, max %d)" c_min c_max)
    true
    (float_of_int c_max /. float_of_int c_min <= 2.0)

(* {2 Admission control} *)

let nak_setup () =
  let drive = Drive.create ~pack_id:6 small in
  let fs = Fs.format drive in
  let root = check_ok Directory.pp_error "root" (Directory.open_root fs) in
  make_file fs root "A.dat" 800 1;
  let net = Net.create ~clock:(Fs.clock fs) () in
  let station = Net.attach net ~name:"fs" in
  (fs, net, station)

let test_naks_when_table_full () =
  let fs, net, station = nak_setup () in
  let srv = File_server.create ~max_active:2 fs station in
  let clients = Array.init 5 (fun i -> Net.attach net ~name:(Printf.sprintf "c%d" i)) in
  Array.iter
    (fun st -> client_ok "send" (File_server.Client.send_get st ~server:"fs" ~name:"A.dat"))
    clients;
  (* One tick admits everything pending: two spawn, three are refused at
     the door — before any of the admitted conversations completes. *)
  ignore (File_server.tick srv : int);
  let s = File_server.stats srv in
  Alcotest.(check int) "three naks" 3 s.File_server.naks;
  Alcotest.(check int) "nothing completed yet" 0 s.File_server.gets;
  let busy, files =
    Array.fold_left
      (fun (busy, files) st ->
        match File_server.Client.poll_reply st with
        | Some (Error File_server.Client.Busy) -> (busy + 1, files)
        | Some (Ok (File_server.Client.File _)) -> (busy, files + 1)
        | _ -> (busy, files))
      (0, 0) clients
  in
  Alcotest.(check int) "three clients hear busy immediately" 3 busy;
  Alcotest.(check int) "no file has been served yet" 0 files;
  while File_server.tick srv > 0 do
    ()
  done;
  let served =
    Array.fold_left
      (fun n st ->
        match File_server.Client.poll_reply st with
        | Some (Ok (File_server.Client.File (_, contents))) ->
            Alcotest.(check string) "contents" (body 1 800) contents;
            n + 1
        | _ -> n)
      0 clients
  in
  Alcotest.(check int) "the two admitted conversations complete" 2 served;
  Alcotest.(check int) "two gets" 2 (File_server.stats srv).File_server.gets

(* {2 The send-error counter}

   A reply the network refuses to carry must land in [server.send_errors]
   and the stats record, not vanish. A GET for a 500-character name fits
   in a request packet, but the server's "no file" error reply does not —
   the send fails, and the failure is counted. *)

let test_send_failures_counted () =
  let fs, net, station = nak_setup () in
  let srv = File_server.create fs station in
  let client = Net.attach net ~name:"long" in
  let before = counter "server.send_errors" in
  let name = String.make 500 'x' in
  client_ok "send" (File_server.Client.send_get client ~server:"fs" ~name);
  while File_server.tick srv > 0 do
    ()
  done;
  let s = File_server.stats srv in
  Alcotest.(check int) "the error reply failed to send" 1 s.File_server.send_errors;
  Alcotest.(check int) "the failure reached the metric registry" (before + 1)
    (counter "server.send_errors");
  Alcotest.(check int) "the request still counts as an error" 1 s.File_server.errors;
  (match File_server.Client.poll_reply client with
  | None -> ()
  | Some _ -> Alcotest.fail "no reply should have made it onto the wire");
  (* The server is healthy afterwards: a sane request still works. *)
  let got =
    client_ok "fetch"
      (File_server.Client.fetch client ~server:"fs" ~name:"A.dat"
         ~pump:(fun () -> ignore (File_server.serve_pending srv : int)))
  in
  Alcotest.(check string) "subsequent service intact" (body 1 800) got

(* {2 Timeout closes the request trace}

   A client whose bounded poll runs dry must not leak an open trace: the
   await path closes the station's active trace as abandoned and counts
   it, so `requests` and the flight record show a finished conversation
   with a verdict, not a zombie. *)

module Trace = Alto_obs.Trace

let test_timeout_abandons_trace () =
  Alto_obs.Obs.reset ();
  let fs, net, station = nak_setup () in
  (* The server exists but is never pumped: the fetch can only time out. *)
  let srv = File_server.create fs station in
  let client = Net.attach net ~name:"patient" in
  (match
     File_server.Client.fetch ~max_polls:5 client ~server:"fs" ~name:"A.dat"
       ~pump:(fun () -> ())
   with
  | Error File_server.Client.Timeout -> ()
  | Ok _ -> Alcotest.fail "an unpumped server cannot have answered"
  | Error e -> Alcotest.failf "expected Timeout, got %a" File_server.Client.pp_error e);
  Alcotest.(check int) "abandonment counted" 1 (counter "server.traces_abandoned");
  Alcotest.(check int) "timeout counted" 1 (counter "server.client_timeouts");
  Alcotest.(check bool) "no open trace left behind" true
    (Trace.find_active ~origin:"patient" = None);
  (match Trace.infos () with
  | [ i ] ->
      Alcotest.(check string) "closed as abandoned" "abandoned" i.Trace.status;
      Alcotest.(check string) "it was the fetch" "get A.dat" i.Trace.name
  | infos -> Alcotest.failf "expected exactly one trace, got %d" (List.length infos));
  (* The request is still pending on the server; serving it now sends a
     reply stamped with the abandoned trace — consuming it must not
     resurrect or double-count the closed conversation. *)
  while File_server.tick srv > 0 do
    ()
  done;
  (match File_server.Client.poll_reply client with
  | Some (Ok (File_server.Client.File (_, contents))) ->
      Alcotest.(check string) "late reply still correct" (body 1 800) contents
  | _ -> Alcotest.fail "the late reply never surfaced");
  Alcotest.(check int) "late reply resurrects nothing" 0 (Trace.active_count ());
  Alcotest.(check int) "abandoned, not completed" 0 (counter "trace.completed");
  (* A later request on the same station gets a fresh trace and a clean
     completion. *)
  let got =
    client_ok "fetch after timeout"
      (File_server.Client.fetch client ~server:"fs" ~name:"A.dat"
         ~pump:(fun () -> ignore (File_server.tick srv : int)))
  in
  Alcotest.(check string) "service intact" (body 1 800) got;
  Alcotest.(check int) "the fresh conversation completed" 1
    (counter "trace.completed");
  Alcotest.(check int) "still exactly one abandonment" 1
    (counter "server.traces_abandoned")

(* {2 OS wiring: the ServerTick service and the executive's serve command} *)

module System = Alto_os.System
module Executive = Alto_os.Executive
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.equal (String.sub haystack i n) needle || go (i + 1)) in
  go 0

(* A PUT arrives over the wire before the executive runs; `serve` pumps
   the attached server through level-5 service 23, and the stored file
   is then visible to ordinary commands on the same volume. *)

let test_serve_command_pumps_server () =
  let system = System.boot ~geometry:small () in
  let fs = System.fs system in
  let net = Net.create ~clock:(Fs.clock fs) () in
  let srv = File_server.create fs (Net.attach net ~name:"fs") in
  System.set_server_tick system (fun () -> File_server.tick srv);
  let client = Net.attach net ~name:"cli" in
  client_ok "send_put"
    (File_server.Client.send_put client ~server:"fs" ~name:"Remote.txt" "from the wire");
  Keyboard.feed (System.keyboard system) "serve\nls\ntype Remote.txt\nquit\n";
  let outcome = Executive.run system in
  Alcotest.(check bool) "clean quit" true outcome.Executive.quit;
  (match File_server.Client.poll_reply client with
  | Some (Ok File_server.Client.Ack) -> ()
  | Some (Ok _) -> Alcotest.fail "expected an Ack"
  | Some (Error e) -> Alcotest.failf "put failed: %a" File_server.Client.pp_error e
  | None -> Alcotest.fail "serve left the PUT unanswered");
  let text = Display.contents (System.display system) in
  Alcotest.(check bool) "serve reported progress" true (contains_sub text "units of progress");
  Alcotest.(check bool) "ls shows the stored file" true (contains_sub text "Remote.txt");
  Alcotest.(check bool) "type reads it back" true (contains_sub text "from the wire");
  let s = File_server.stats srv in
  Alcotest.(check int) "one put served" 1 s.File_server.puts

let () =
  Alcotest.run "alto server"
    [
      ( "standing queue",
        [ ("matches one-shot run_batch", `Quick, test_standing_matches_oneshot) ] );
      ( "determinism",
        [ ("interleaving replays exactly", `Quick, test_interleaving_deterministic) ] );
      ("fairness", [ ("skewed mix within 2x", `Quick, test_fairness_skewed) ]);
      ("admission", [ ("naks when table full", `Quick, test_naks_when_table_full) ]);
      ( "send errors",
        [ ("undeliverable replies counted", `Quick, test_send_failures_counted) ] );
      ( "timeouts",
        [ ("timeout abandons the trace", `Quick, test_timeout_abandons_trace) ] );
      ( "os wiring",
        [ ("serve command pumps the server", `Quick, test_serve_command_pumps_server) ] );
    ]
