(* Crash consistency: the power fails at an arbitrary disk-operation
   boundary in the middle of real workloads; one scavenge later the
   volume must be sound and no file may ever contain torn or alien
   bytes. This is the property §3.3's label discipline was designed
   for — "recovery from crashes and resistance to misuse" (§1). *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address
module Fault = Alto_disk.Fault
module Reliable = Alto_disk.Reliable
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger
module Flight = Alto_fs.Flight
module Checkpoint = Alto_world.Checkpoint
module World = Alto_world.World
module System = Alto_os.System
module Crash_harness = Alto_os.Crash_harness

let small_geometry = { Geometry.diablo_31 with Geometry.model = "crash"; cylinders = 25 }

(* Deterministic per-version page contents: any readable page of file
   [seed] must match version 1 or version 2 exactly. *)
let pattern ~seed ~version n =
  String.init n (fun i -> Char.chr (32 + (((i / 17) + (seed * 31) + (version * 47)) mod 90)))

let build () =
  let drive = Drive.create ~pack_id:3 small_geometry in
  let fs = Fs.format drive in
  let root =
    match Directory.open_root fs with Ok r -> r | Error _ -> failwith "root"
  in
  (* Ten files with version-1 contents. *)
  let files =
    List.init 10 (fun seed ->
        let name = Printf.sprintf "C%02d.dat" seed in
        let file =
          match File.create fs ~name with Ok f -> f | Error _ -> failwith "create"
        in
        (match File.write_bytes file ~pos:0 (pattern ~seed ~version:1 (800 + (seed * 300))) with
        | Ok () -> ()
        | Error _ -> failwith "write");
        (match Directory.add root ~name (File.leader_name file) with
        | Ok () -> ()
        | Error _ -> failwith "add");
        (name, seed, file))
  in
  (drive, fs, root, files)

(* The workload that gets interrupted: overwrite every file with
   version 2 (some longer, some shorter), delete two files, create two
   new ones. *)
let workload fs root files =
  List.iter
    (fun (name, seed, file) ->
      if seed mod 5 = 3 then begin
        (match File.delete file with Ok () -> () | Error _ -> ());
        match Directory.remove root name with Ok _ -> () | Error _ -> ()
      end
      else begin
        let n = 800 + (seed * 300) + if seed mod 2 = 0 then 600 else -300 in
        (match File.truncate file ~len:0 with Ok () -> () | Error _ -> ());
        (match File.write_bytes file ~pos:0 (pattern ~seed ~version:2 n) with
        | Ok () -> ()
        | Error _ -> ());
        match File.flush_leader file with Ok () -> () | Error _ -> ()
      end)
    files;
  List.iter
    (fun seed ->
      let name = Printf.sprintf "N%02d.dat" seed in
      match File.create fs ~name with
      | Ok f -> (
          (match File.write_bytes f ~pos:0 (pattern ~seed:(seed + 50) ~version:2 1200) with
          | Ok () -> ()
          | Error _ -> ());
          match Directory.add root ~name (File.leader_name f) with
          | Ok () -> ()
          | Error _ -> ())
      | Error _ -> ())
    [ 90; 91 ]

(* After recovery: every page of every catalogued file must match the
   corresponding page of some version of that file's pattern — no torn
   pages, no alien bytes. *)
let verify fs' =
  let root' =
    match Directory.open_root fs' with Ok r -> r | Error _ -> failwith "root after"
  in
  let entries =
    match Directory.entries root' with Ok e -> e | Error _ -> failwith "entries"
  in
  List.iter
    (fun (e : Directory.entry) ->
      let name = e.Directory.entry_name in
      let seed =
        if String.length name >= 3 && (name.[0] = 'C' || name.[0] = 'N') then
          match int_of_string_opt (String.sub name 1 2) with
          | Some s -> Some (if name.[0] = 'N' then s - 40 else s)
          | None -> None
        else None
      in
      match seed with
      | None -> () (* SysDir etc. *)
      | Some seed -> (
          match File.open_leader fs' e.Directory.entry_file with
          | Error err ->
              Alcotest.failf "%s unopenable after recovery: %a" name File.pp_error err
          | Ok f -> (
              let len = File.byte_length f in
              match File.read_bytes f ~pos:0 ~len with
              | Error err -> Alcotest.failf "%s unreadable: %a" name File.pp_error err
              | Ok bytes ->
                  let got = Bytes.to_string bytes in
                  (* Compare page by page against both versions (a crash
                     mid-overwrite legitimately leaves a prefix of v2 and
                     a suffix of v1 at page granularity). *)
                  let v1 = pattern ~seed ~version:1 (len + 4096) in
                  let v2 = pattern ~seed ~version:2 (len + 4096) in
                  let pages = (len + 511) / 512 in
                  for p = 0 to pages - 1 do
                    let lo = p * 512 in
                    let plen = min 512 (len - lo) in
                    let slice = String.sub got lo plen in
                    let matches v = String.equal slice (String.sub v lo plen) in
                    if not (matches v1 || matches v2) then
                      Alcotest.failf "%s page %d holds torn or alien bytes" name p
                  done)))
    entries

let crash_at budget =
  let drive, fs, root, files = build () in
  Drive.set_power_budget drive (Some budget);
  let crashed =
    match workload fs root files with
    | () -> false
    | exception Drive.Power_failure -> true
  in
  Drive.set_power_budget drive None;
  (* The machine is gone; all in-core state (fs handle, file handles,
     the allocation map!) is lost. Recovery starts from the drive. *)
  match Scavenger.scavenge drive with
  | Error msg -> Alcotest.failf "scavenge after crash at %d: %s" budget msg
  | Ok (fs', _report) ->
      verify fs';
      (match Fs.mount drive with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "remount after crash at %d: %s" budget msg);
      crashed

let test_crash_sweep_early () =
  (* Crash inside the first few dozen operations — mid-truncate,
     mid-free, mid-first-write. *)
  List.iter
    (fun budget -> ignore (crash_at budget))
    [ 0; 1; 2; 3; 5; 8; 13; 21; 34; 55 ]

let test_crash_sweep_dense () =
  (* A dense sweep across one region of the workload. *)
  for budget = 60 to 90 do
    ignore (crash_at budget)
  done

let test_no_crash_baseline () =
  (* With a huge budget the workload completes and still verifies. *)
  Alcotest.(check bool) "did not crash" false (crash_at 1_000_000)

let prop_crash_anywhere =
  QCheck.Test.make ~name:"crash at any operation leaves a recoverable pack" ~count:40
    QCheck.(int_bound 400)
    (fun budget ->
      match crash_at budget with _ -> true | exception _ -> false)

let test_crash_during_world_swap () =
  (* OutLoad is hundreds of sequential writes; a crash mid-swap must
     leave both the volume and the previous world file usable. *)
  let geometry = { Geometry.diablo_31 with Geometry.model = "w"; cylinders = 80 } in
  let drive = Drive.create ~pack_id:4 geometry in
  let fs = Fs.format drive in
  let root =
    match Directory.open_root fs with Ok r -> r | Error _ -> failwith "root"
  in
  let state =
    match Checkpoint.state_file fs ~directory:root ~name:"W.state" with
    | Ok f -> f
    | Error _ -> failwith "state"
  in
  let memory = Alto_machine.Memory.create () in
  let cpu = Alto_machine.Cpu.create memory in
  Alto_machine.Memory.write memory 1234 (Word.of_int 0xAAAA);
  (match World.out_load cpu state with Ok () -> () | Error _ -> failwith "first save");
  (* Second save dies halfway through. *)
  Alto_machine.Memory.write memory 1234 (Word.of_int 0xBBBB);
  Drive.set_power_budget drive (Some 150);
  (match World.out_load cpu state with
  | Ok () -> Alcotest.fail "should have crashed"
  | Error _ -> Alcotest.fail "expected a power failure"
  | exception Drive.Power_failure -> ());
  Drive.set_power_budget drive None;
  match Scavenger.scavenge drive with
  | Error msg -> Alcotest.failf "scavenge: %s" msg
  | Ok (fs', _) -> (
      let root' =
        match Directory.open_root fs' with Ok r -> r | Error _ -> failwith "root"
      in
      match Directory.lookup root' "W.state" with
      | Ok (Some e) -> (
          match File.open_leader fs' e.Directory.entry_file with
          | Error err -> Alcotest.failf "state file unopenable: %a" File.pp_error err
          | Ok f -> (
              (* The image is a page-level mix of old and new world; both
                 had 0xAAAA or 0xBBBB at 1234, and everything else equal,
                 so the restored world must be coherent except possibly
                 that word. *)
              match World.read_saved_memory f ~pos:1234 ~len:1 with
              | Ok [| w |] ->
                  let v = Word.to_int w in
                  Alcotest.(check bool) "word is one of the two versions" true
                    (v = 0xAAAA || v = 0xBBBB)
              | Ok _ | Error _ ->
                  (* A crash very early can leave the header mid-write;
                     peek_registers failing cleanly is acceptable — what
                     is not acceptable is a crash of our own machinery. *)
                  ()))
      | Ok None | Error _ -> Alcotest.fail "state file lost entirely")

(* {2 The crash point and the torn sector} *)

(* A small committed volume plus one file with a delayed overwrite
   pending in the track buffers — the flush sweep is the write the
   crash-point tests aim at. *)
let committed_with_pending_overwrite () =
  let drive, fs, _root, files = build () in
  (match Fs.flush fs with Ok () -> () | Error _ -> failwith "flush");
  (match Fs.mark_clean fs with Ok () -> () | Error _ -> failwith "clean");
  (match Fs.flush fs with Ok () -> () | Error _ -> failwith "flush2");
  let _, _, f0 = List.hd files in
  (match File.write_bytes f0 ~pos:0 (pattern ~seed:0 ~version:2 800) with
  | Ok () -> ()
  | Error _ -> failwith "overwrite");
  (drive, fs)

let torn_sectors drive =
  List.filter
    (fun i -> Drive.is_torn drive (Disk_address.of_index i))
    (List.init (Drive.sector_count drive) Fun.id)

let test_clean_crash_point_tears_nothing () =
  let drive, fs = committed_with_pending_overwrite () in
  Fault.crash_after_writes drive 0;
  Alcotest.(check bool) "armed" true (Drive.crash_pending drive);
  (match Fs.flush fs with
  | Ok () | Error _ -> Alcotest.fail "expected a power failure"
  | exception Drive.Power_failure -> ());
  Alcotest.(check bool) "fired" false (Drive.crash_pending drive);
  Alcotest.(check (list int)) "no sector torn" [] (torn_sectors drive)

let test_cancelled_crash_point_never_fires () =
  let drive, fs = committed_with_pending_overwrite () in
  Fault.crash_after_writes ~tear:Drive.Torn_value drive 3;
  Fault.cancel_crash drive;
  (match Fs.flush fs with Ok () -> () | Error _ -> Alcotest.fail "flush");
  Alcotest.(check (list int)) "no sector torn" [] (torn_sectors drive)

let test_torn_sector_fails_until_rewritten () =
  let drive, fs = committed_with_pending_overwrite () in
  Fault.crash_after_writes ~tear:Drive.Torn_value drive 0;
  (match Fs.flush fs with
  | Ok () | Error _ -> Alcotest.fail "expected a power failure"
  | exception Drive.Power_failure -> ());
  Fault.cancel_crash drive;
  let addr =
    match torn_sectors drive with
    | [ i ] -> Disk_address.of_index i
    | l -> Alcotest.failf "expected one torn sector, found %d" (List.length l)
  in
  (* The torn part is detectably unreadable... *)
  let buf = Array.make Sector.value_words Word.zero in
  (match
     Reliable.run ~policy:Reliable.salvage_policy drive addr
       { Drive.op_none with value = Some Drive.Read }
       ~value:buf ()
   with
  | Ok () -> Alcotest.fail "a torn value must not read back"
  | Error _ -> ());
  (* ...and a full rewrite of the part heals it, as production paths do. *)
  (match
     Reliable.run drive addr
       { Drive.op_none with value = Some Drive.Write }
       ~value:(Array.make Sector.value_words (Word.of_int 0x5A5A))
       ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "healing rewrite failed: %a" Drive.pp_error e);
  Alcotest.(check bool) "torn state cleared" false (Drive.is_torn drive addr);
  match
    Reliable.run ~policy:Reliable.salvage_policy drive addr
      { Drive.op_none with value = Some Drive.Read }
      ~value:buf ()
  with
  | Ok () -> Alcotest.(check int) "fresh words" 0x5A5A (Word.to_int buf.(0))
  | Error e -> Alcotest.failf "healed sector unreadable: %a" Drive.pp_error e

(* {2 The flight recorder's own seal} *)

let test_damaged_flight_seal_reads_as_absent () =
  let drive = Drive.create ~pack_id:6 small_geometry in
  let fs = Fs.format drive in
  Flight.enable ();
  Flight.flush ~reason:"test" fs;
  (match Flight.adopt fs with
  | Some _ -> ()
  | None -> Alcotest.fail "an intact seal must adopt");
  let root =
    match Directory.open_root fs with Ok r -> r | Error _ -> failwith "root"
  in
  let log =
    match Directory.lookup root Flight.file_name with
    | Ok (Some e) -> (
        match File.open_leader fs e.Directory.entry_file with
        | Ok f -> f
        | Error _ -> failwith "open log")
    | Ok None | Error _ -> failwith "no flight record file"
  in
  (* One byte garbled mid-payload: the checksum must reject the seal. *)
  let len = File.byte_length log in
  (match File.write_bytes log ~pos:(len - 10) "X" with
  | Ok () -> ()
  | Error _ -> failwith "garble");
  (match Flight.adopt fs with
  | None -> ()
  | Some _ -> Alcotest.fail "a garbled seal must read as absent");
  (* A truncated record — the torn tail a crash mid-seal leaves — must
     fail the header's length check, not hand garbage to a consumer. *)
  (match File.truncate log ~len:(len - 7) with
  | Ok () -> ()
  | Error _ -> failwith "truncate");
  (match Flight.adopt fs with
  | None -> ()
  | Some _ -> Alcotest.fail "a truncated seal must read as absent");
  Flight.disable ()

(* {2 Boot meets an unmountable pack} *)

let test_boot_scavenges_before_formatting () =
  let drive, fs, _root, _files = build () in
  (match Fs.flush fs with Ok () -> () | Error _ -> failwith "flush");
  (* Garble the descriptor's leader label: the pack no longer mounts,
     but every file is still on the platter — boot must reach for the
     scavenger, not the formatter. *)
  Fault.corrupt_part
    (Random.State.make [| 7 |])
    drive Fs.descriptor_leader_address Sector.Label;
  (match Fs.mount drive with
  | Ok _ -> Alcotest.fail "mount should fail on a garbled descriptor"
  | Error _ -> ());
  let sys = System.boot ~drive () in
  let fs' = System.fs sys in
  let root' =
    match Directory.open_root fs' with Ok r -> r | Error _ -> failwith "root"
  in
  (match Directory.lookup root' "C00.dat" with
  | Ok (Some e) -> (
      match File.open_leader fs' e.Directory.entry_file with
      | Ok f -> Alcotest.(check int) "C00.dat intact" 800 (File.byte_length f)
      | Error err -> Alcotest.failf "C00.dat unopenable: %a" File.pp_error err)
  | Ok None -> Alcotest.fail "C00.dat lost: boot formatted instead of scavenging"
  | Error e -> Alcotest.failf "root entries: %a" Directory.pp_error e);
  Flight.disable ()

(* {2 The harness, in miniature} *)

let test_harness_small_sweep () =
  let t = Crash_harness.run ~points_per_workload:3 () in
  List.iter print_endline t.Crash_harness.violation_log;
  Alcotest.(check int) "no invariant violations" 0 t.Crash_harness.violations;
  Alcotest.(check int) "45 trials" 45 t.Crash_harness.trials;
  Alcotest.(check bool) "crash points fired" true (t.Crash_harness.crash_points > 0);
  Alcotest.(check bool) "torn variants fired" true (t.Crash_harness.torn_points > 0)

let () =
  Alcotest.run "alto crash consistency"
    [
      ( "power failure",
        [
          ("early sweep", `Quick, test_crash_sweep_early);
          ("dense sweep", `Quick, test_crash_sweep_dense);
          ("baseline without crash", `Quick, test_no_crash_baseline);
          ("mid world swap", `Quick, test_crash_during_world_swap);
          QCheck_alcotest.to_alcotest ~verbose:false prop_crash_anywhere;
        ] );
      ( "crash points and torn sectors",
        [
          ("a clean crash point tears nothing", `Quick, test_clean_crash_point_tears_nothing);
          ("a cancelled crash point never fires", `Quick, test_cancelled_crash_point_never_fires);
          ("a torn sector fails until rewritten", `Quick, test_torn_sector_fails_until_rewritten);
          ("a damaged flight seal reads as absent", `Quick, test_damaged_flight_seal_reads_as_absent);
          ("boot scavenges before formatting", `Quick, test_boot_scavenges_before_formatting);
          ("the harness in miniature", `Quick, test_harness_small_sweep);
        ] );
    ]
