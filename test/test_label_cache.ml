(* The verified-label cache and the elevator scheduler: cache entries
   die on label writes, quarantine and retry evidence; a world restore
   drops everything; the overflow guard on the bad-sector table refuses
   gracefully; and caching changes which operations run, never what
   lands on the pack. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Sched = Alto_disk.Sched
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module File_id = Alto_fs.File_id
module Label = Alto_fs.Label
module Label_cache = Alto_fs.Label_cache
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module World = Alto_world.World
module Checkpoint = Alto_world.Checkpoint
module Obs = Alto_obs.Obs

let tiny = { Geometry.diablo_31 with Geometry.model = "tiny"; cylinders = 3 }

let make_drive ?(geometry = tiny) ?(pack_id = 3) () = Drive.create ~pack_id geometry

let addr i = Disk_address.of_index i

let label_buf () = Array.make Sector.label_words Word.zero
let value_buf () = Array.make Sector.value_words Word.zero

let counter name =
  match Obs.find name with
  | Some (Obs.Counter v) -> v
  | Some (Obs.Histogram _) | None -> 0

let write_sector drive a ~label ~value =
  match
    Drive.run drive a
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label ~value ()
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" Drive.pp_error e

(* {2 invalidation} *)

let test_label_write_evicts () =
  let drive = make_drive () in
  let cache = Label_cache.create drive in
  let words = Array.init Sector.label_words (fun i -> Word.of_int (i + 1)) in
  write_sector drive (addr 5) ~label:words ~value:(value_buf ());
  Label_cache.note_verified cache (addr 5) words;
  (match Label_cache.lookup cache (addr 5) with
  | Some got -> Alcotest.(check bool) "cached words intact" true (got = words)
  | None -> Alcotest.fail "entry vanished immediately");
  let invalidations0 = counter "fs.label_cache.invalidations" in
  (* Any label write stales the copy, even one writing identical bits. *)
  write_sector drive (addr 5) ~label:words ~value:(value_buf ());
  (match Label_cache.lookup cache (addr 5) with
  | None -> ()
  | Some _ -> Alcotest.fail "a label write left the cached copy alive");
  Alcotest.(check int) "invalidation counted" (invalidations0 + 1)
    (counter "fs.label_cache.invalidations")

let test_retry_evidence_evicts () =
  let drive = make_drive () in
  let cache = Label_cache.create drive in
  let words = label_buf () in
  write_sector drive (addr 7) ~label:words ~value:(value_buf ());
  Label_cache.note_verified cache (addr 7) words;
  (* Make the surface misread, then read through the ladder until a soft
     error actually trips: that retry evidence must kill the entry even
     though no label was written. *)
  Fault.set_soft_errors drive ~seed:21 ~rate:0.9;
  let tripped = ref false in
  for _ = 1 to 20 do
    if not !tripped then begin
      (match
         Reliable.run ~policy:Reliable.salvage_policy drive (addr 7)
           { Drive.op_none with value = Some Drive.Read }
           ~value:(value_buf ()) ()
       with
      | Ok () | Error _ -> ());
      if (Drive.stats drive).Drive.soft_errors > 0 then tripped := true
    end
  done;
  Alcotest.(check bool) "a soft error tripped" true !tripped;
  match Label_cache.lookup cache (addr 7) with
  | None -> ()
  | Some _ -> Alcotest.fail "retry evidence left the cached copy alive"

let test_quarantine_evicts () =
  let drive = make_drive () in
  let fs = Fs.format drive in
  let cache = Fs.label_cache fs in
  let file =
    match File.create fs ~name:"Victim.dat" with
    | Ok f -> f
    | Error e -> Alcotest.failf "create: %a" File.pp_error e
  in
  (match File.write_bytes file ~pos:0 (String.make 600 'x') with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" File.pp_error e);
  let fn =
    match File.page_name file 1 with
    | Ok n -> n
    | Error e -> Alcotest.failf "page_name: %a" File.pp_error e
  in
  (* The write primed the entry; confirm, then quarantine the sector. *)
  (match Label_cache.lookup cache fn.Page.addr with
  | Some _ -> ()
  | None -> Alcotest.fail "the page's label was not primed");
  Fs.quarantine fs fn.Page.addr;
  match Label_cache.lookup cache fn.Page.addr with
  | None -> ()
  | Some _ -> Alcotest.fail "a quarantined sector's label survived in core"

(* A cached label must never mask a sector that has since gone bad: the
   generation bump on [set_bad] forces the miss, and the disk then tells
   the truth. *)
let test_no_stale_masking () =
  let drive = make_drive () in
  let fid = File_id.make ~serial:200 ~version:1 () in
  let label =
    Label.make ~fid ~page:0 ~length:12 ~next:Disk_address.nil
      ~prev:Disk_address.nil
  in
  write_sector drive (addr 11) ~label:(Label.to_words label) ~value:(value_buf ());
  let cache = Label_cache.create drive in
  let fn = Page.full_name fid ~page:0 ~addr:(addr 11) in
  (match Page.read_label ~cache drive fn with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "prime: %a" Page.pp_error e);
  Fault.make_bad drive (addr 11);
  match Page.read_label ~cache drive fn with
  | Error (Page.Hint_failed Drive.Bad_sector) -> ()
  | Ok _ -> Alcotest.fail "a cached label masked a bad sector"
  | Error e -> Alcotest.failf "unexpected: %a" Page.pp_error e

(* The patrol moves a page between sectors with operations a drive-level
   bump does not always cover (the old sector's retirement write may be
   absorbed or fail). The explicit generation bumps on both ends must
   guarantee that no cached label can resurrect the page at its old
   address, nor mask the fresh label at the new one. *)
let test_relocation_bumps_both_generations () =
  let drive = make_drive () in
  let fs = Fs.format drive in
  Fault.set_soft_errors drive ~seed:11 ~rate:0.0;
  let cache = Fs.label_cache fs in
  let file =
    match File.create fs ~name:"Moving.dat" with
    | Ok f -> f
    | Error e -> Alcotest.failf "create: %a" File.pp_error e
  in
  (match File.write_bytes file ~pos:0 (String.make 700 'm') with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %a" File.pp_error e);
  let fn =
    match File.page_name file 1 with
    | Ok n -> n
    | Error e -> Alcotest.failf "page_name: %a" File.pp_error e
  in
  let src = fn.Page.addr in
  (* Prime the cache with the page's label at its old home. *)
  (match Page.read_label ~cache drive fn with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "prime: %a" Page.pp_error e);
  Alcotest.(check bool) "primed" true (Label_cache.lookup cache src <> None);
  let gens_before =
    Array.init (Drive.sector_count drive) (fun i ->
        Drive.label_generation drive (addr i))
  in
  Fault.make_marginal drive src ~rate:0.8 ~growth:1.0 ~degrade_after:50;
  let patrol = Alto_fs.Patrol.create ~suspect_retries:1 fs in
  let budget = ref 60 in
  while Alto_fs.Patrol.relocated patrol < 1 && !budget > 0 do
    ignore (Alto_fs.Patrol.tick patrol : Alto_fs.Patrol.report);
    decr budget
  done;
  Alcotest.(check bool) "the page was relocated" true
    (Alto_fs.Patrol.relocated patrol >= 1);
  File.invalidate_hints file;
  let dst =
    match File.page_name file 1 with
    | Ok n -> n.Page.addr
    | Error e -> Alcotest.failf "page_name after move: %a" File.pp_error e
  in
  Alcotest.(check bool) "the page moved" true (not (Disk_address.equal src dst));
  Alcotest.(check bool) "source generation advanced" true
    (Drive.label_generation drive src
    > gens_before.(Disk_address.to_index src));
  Alcotest.(check bool) "destination generation advanced" true
    (Drive.label_generation drive dst
    > gens_before.(Disk_address.to_index dst));
  Alcotest.(check bool) "no cached label survives at the source" true
    (Label_cache.lookup cache src = None);
  (* The resurrection attempt: the stale full name must be refuted by
     the disk, never answered from a cached copy. *)
  match Page.read_label ~cache drive fn with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a relocated page answered at its old address"

let test_world_restore_evicts () =
  let geometry =
    { Geometry.diablo_31 with Geometry.model = "world"; cylinders = 80 }
  in
  let drive = Drive.create ~pack_id:9 geometry in
  let fs = Fs.format drive in
  let root =
    match Directory.open_root fs with
    | Ok r -> r
    | Error e -> Alcotest.failf "root: %a" Directory.pp_error e
  in
  let file =
    match Checkpoint.state_file fs ~directory:root ~name:"World.state" with
    | Ok f -> f
    | Error e -> Alcotest.failf "state_file: %a" Checkpoint.pp_error e
  in
  let cpu = Cpu.create (Memory.create ()) in
  (match World.out_load cpu file with
  | Ok () -> ()
  | Error e -> Alcotest.failf "out_load: %a" World.pp_error e);
  Alcotest.(check bool) "the save primed entries" true
    (Label_cache.length (Fs.label_cache fs) > 0);
  (match World.in_load cpu file ~message:[||] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in_load: %a" World.pp_error e);
  Alcotest.(check int) "the restore dropped every entry" 0
    (Label_cache.length (Fs.label_cache fs))

(* {2 the overflow guard} *)

let test_quarantine_overflow () =
  let drive = make_drive ~geometry:{ tiny with Geometry.cylinders = 5 } () in
  let fs = Fs.format drive in
  let free =
    List.filter
      (fun i -> Fs.is_free_in_map fs (addr i))
      (List.init (Drive.sector_count drive) Fun.id)
  in
  Alcotest.(check bool) "enough free sectors to overflow" true
    (List.length free > 64);
  let overflow0 = counter "fs.quarantine_overflow" in
  List.iteri (fun k i -> if k < 65 then Fs.quarantine fs (addr i)) free;
  Alcotest.(check int) "the table stops at 64" 64
    (List.length (Fs.bad_sector_table fs));
  Alcotest.(check int) "the 65th was counted as overflow" (overflow0 + 1)
    (counter "fs.quarantine_overflow");
  let spilled = addr (List.nth free 64) in
  Alcotest.(check bool) "not in the table" false (Fs.quarantined fs spilled);
  Alcotest.(check bool) "but still busy for this mount" false
    (Fs.is_free_in_map fs spilled)

(* {2 determinism} *)

(* The same Page-level op sequence, with and without the cache, must
   leave bit-identical packs: a hit saves motion and time, never changes
   what is read or written. *)
let test_cached_run_matches_uncached () =
  let fid = File_id.make ~serial:500 ~version:1 () in
  let pages = 8 in
  let base = 10 in
  let page_addr pn = addr (base + pn) in
  let link pn = if pn < 0 || pn >= pages then Disk_address.nil else page_addr pn in
  let page_label pn =
    Label.make ~fid ~page:pn ~length:Sector.bytes_per_page ~next:(link (pn + 1))
      ~prev:(link (pn - 1))
  in
  let page_value seed pn =
    Array.init Sector.value_words (fun i -> Word.of_int ((seed + (pn * 31) + i) land 0xFFFF))
  in
  let fn pn = Page.full_name fid ~page:pn ~addr:(page_addr pn) in
  let page_ok what = function
    | Ok x -> x
    | Error e -> Alcotest.failf "%s: %a" what Page.pp_error e
  in
  let run ~with_cache () =
    let drive = make_drive () in
    let cache = if with_cache then Some (Label_cache.create drive) else None in
    for pn = 0 to pages - 1 do
      write_sector drive (page_addr pn)
        ~label:(Label.to_words (page_label pn))
        ~value:(page_value 0 pn)
    done;
    Drive.reset_stats drive;
    (* Three chain walks (the read_label path the hint ladder uses)... *)
    for _pass = 1 to 3 do
      for pn = 0 to pages - 1 do
        let got = page_ok "read_label" (Page.read_label ?cache drive (fn pn)) in
        Alcotest.(check int) "linked length" Sector.bytes_per_page
          got.Label.length
      done
    done;
    (* ...then reads, overwrites, and a length change. *)
    for pn = 0 to pages - 1 do
      let _, value = page_ok "read" (Page.read ?cache drive (fn pn)) in
      Alcotest.(check bool) "value intact" true (value = page_value 0 pn)
    done;
    for pn = 0 to pages - 1 do
      let (_ : Label.t) =
        page_ok "write" (Page.write ?cache drive (fn pn) (page_value 7 pn))
      in
      ()
    done;
    page_ok "rewrite_label"
      (Page.rewrite_label ?cache drive
         (fn (pages - 1))
         ~new_label:
           (Label.make ~fid ~page:(pages - 1) ~length:100
              ~next:Disk_address.nil
              ~prev:(link (pages - 2)))
         ~value:(value_buf ()));
    let image =
      List.init (Drive.sector_count drive) (fun i ->
          let s = Drive.peek drive (addr i) in
          ( Array.to_list (Sector.part_of s Sector.Header),
            Array.to_list (Sector.part_of s Sector.Label),
            Array.to_list (Sector.part_of s Sector.Value) ))
    in
    (image, (Drive.stats drive).Drive.operations)
  in
  let uncached_image, uncached_ops = run ~with_cache:false () in
  let hits0 = counter "fs.label_cache.hits" in
  let cached_image, cached_ops = run ~with_cache:true () in
  Alcotest.(check bool) "the cache was actually hit" true
    (counter "fs.label_cache.hits" > hits0);
  Alcotest.(check bool) "hits saved disk operations" true
    (cached_ops < uncached_ops);
  Alcotest.(check bool) "identical pack images" true
    (uncached_image = cached_image)

(* {2 the elevator} *)

(* Outcomes come back in the caller's order however the elevator
   reorders the disk's work. *)
let test_batch_outcome_order () =
  let drive = make_drive () in
  let n = Drive.sector_count drive in
  let marks =
    Array.init n (fun i ->
        let label = label_buf () in
        label.(0) <- Word.of_int (i + 1);
        write_sector drive (addr i) ~label ~value:(value_buf ());
        label.(0))
  in
  (* Request the pack back to front: the elevator will visit it front to
     back, and every outcome must still land in the caller's slot. *)
  let buffers = Array.init n (fun _ -> label_buf ()) in
  let requests =
    Array.init n (fun j ->
        Sched.request ~label:buffers.(j)
          (addr (n - 1 - j))
          { Drive.op_none with label = Some Drive.Read })
  in
  let outcomes = Sched.run_batch drive requests in
  Array.iteri
    (fun j outcome ->
      (match outcome.Sched.result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "batch read %d: %a" j Drive.pp_error e);
      Alcotest.(check int)
        (Printf.sprintf "slot %d" j)
        (Word.to_int marks.(n - 1 - j))
        (Word.to_int buffers.(j).(0)))
    outcomes

let () =
  Alcotest.run "alto label cache"
    [
      ( "invalidation",
        [
          ("label write evicts", `Quick, test_label_write_evicts);
          ("retry evidence evicts", `Quick, test_retry_evidence_evicts);
          ("quarantine evicts", `Quick, test_quarantine_evicts);
          ("no stale masking", `Quick, test_no_stale_masking);
          ( "relocation bumps both generations",
            `Quick,
            test_relocation_bumps_both_generations );
          ("world restore evicts", `Quick, test_world_restore_evicts);
        ] );
      ("overflow", [ ("bad table refuses the 65th", `Quick, test_quarantine_overflow) ]);
      ( "determinism",
        [ ("cached equals uncached", `Quick, test_cached_run_matches_uncached) ] );
      ("elevator", [ ("outcomes in caller order", `Quick, test_batch_outcome_order) ]);
    ]
