(* The distributed audit: identical packs digest identically and keep
   agreeing; a corrupted replica loses its vote 2-vs-1 and is repaired
   back to byte-identity (final pack images compared whole); a node
   whose entire pack is lost re-joins and is rebuilt from the crowd with
   zero pages lost; and the whole drama replays byte-identically for a
   fixed seed even while the net drops, duplicates and delays. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Audit = Alto_fs.Audit
module Net = Alto_net.Net
module Replica = Alto_server.Replica
module File_server = Alto_server.File_server
module System = Alto_os.System
module Executive = Alto_os.Executive
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module Obs = Alto_obs.Obs

let small = { Geometry.diablo_31 with Geometry.model = "small"; cylinders = 6 }
let addr i = Disk_address.of_index i

let check_ok pp what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %a" what pp e

let counter name =
  match Obs.find name with
  | Some (Obs.Counter v) -> v
  | Some (Obs.Histogram _) | None -> 0

let body seed n = String.init n (fun i -> Char.chr (32 + (((i * 11) + seed) mod 95)))

let file_name i = Printf.sprintf "replica-%d.dat" i
(* Sized so the content (leaders + data + descriptor + root) spans more
   than one 24-sector audit slice: a rebuilt virgin pack then provably
   needs repairs in at least two slices, not just the first. *)
let file_sizes = [| 120; 700; 1; 2048; 513; 9000; 4200 |]

let make_file fs root name n seed =
  let file = check_ok File.pp_error "create" (File.create fs ~name) in
  if n > 0 then check_ok File.pp_error "write" (File.write_bytes file ~pos:0 (body seed n));
  check_ok File.pp_error "flush" (File.flush_leader file);
  check_ok Directory.pp_error "add" (Directory.add root ~name (File.leader_name file))

let pack_image drive =
  List.init (Drive.sector_count drive) (fun i ->
      let s = Drive.peek drive (addr i) in
      ( Array.to_list (Sector.part_of s Sector.Header),
        Array.to_list (Sector.part_of s Sector.Label),
        Array.to_list (Sector.part_of s Sector.Value) ))

(* Replicas are provisioned the way real ones would be: one pack is
   built, then cloned sector-for-sector. (Building each by replaying
   the same operations would NOT be byte-identical — leader pages carry
   creation timestamps, and the shared clock moves between nodes.) *)
let clone_pack src dst =
  for i = 0 to Drive.sector_count src - 1 do
    let s = Drive.peek src (addr i) in
    Drive.poke dst (addr i) Sector.Header (Sector.part_of s Sector.Header);
    Drive.poke dst (addr i) Sector.Label (Sector.part_of s Sector.Label);
    Drive.poke dst (addr i) Sector.Value (Sector.part_of s Sector.Value)
  done

let node_names = [| "alto-a"; "alto-b"; "alto-c" |]

let mk_world ?(m = 3) () =
  let clock = Sim_clock.create () in
  let net = Net.create ~clock () in
  let drives = Array.init m (fun _ -> Drive.create ~clock ~pack_id:1 small) in
  let fs0 = Fs.format drives.(0) in
  let root = check_ok Directory.pp_error "root" (Directory.open_root fs0) in
  Array.iteri (fun i n -> make_file fs0 root (file_name i) n i) file_sizes;
  (match Fs.flush fs0 with Ok () -> () | Error _ -> Alcotest.fail "flush");
  for i = 1 to m - 1 do
    clone_pack drives.(0) drives.(i)
  done;
  let fleet = Replica.create ~clock net in
  let nodes =
    Array.init m (fun i ->
        let fs =
          if i = 0 then fs0
          else
            match Fs.mount drives.(i) with
            | Ok fs -> fs
            | Error msg -> Alcotest.failf "mount clone %d: %s" i msg
        in
        Replica.join fleet ~name:node_names.(i) fs)
  in
  (clock, net, drives, fleet, nodes)

let check_images_equal what drives =
  let reference = pack_image drives.(0) in
  Array.iteri
    (fun i d ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%s: pack %d byte-identical to pack 0" what i)
          true
          (pack_image d = reference))
    drives

let run_to_laps fleet nodes ~laps =
  let target = Array.map (fun n -> Replica.laps n + laps) nodes in
  let arrived () =
    Array.for_all2 (fun n t -> Replica.laps n >= t) nodes target
  in
  if not (Replica.run_until fleet arrived) then
    Alcotest.failf "fleet stalled short of %d laps" laps

(* {2 Digest agreement on identical packs} *)

let test_agreement () =
  let _, _, drives, fleet, nodes = mk_world () in
  let divergent0 = counter "repl.divergent" in
  run_to_laps fleet nodes ~laps:2;
  Alcotest.(check int) "no divergence" divergent0 (counter "repl.divergent");
  Array.iter
    (fun n ->
      Alcotest.(check int)
        (Replica.name n ^ " repaired nothing")
        0 (Replica.slices_repaired n);
      Alcotest.(check int) (Replica.name n ^ " lost nothing") 0 (Replica.pages_lost n);
      Alcotest.(check bool)
        (Replica.name n ^ " last vote agrees")
        true
        (String.length (Replica.last_vote n) >= 5
        && String.sub (Replica.last_vote n) 0 5 = "agree"))
    nodes;
  check_images_equal "after agreement laps" drives;
  (* The digest primitive itself: equal on equals, sensitive to a flip. *)
  let d0 = Audit.digest (Replica.fs nodes.(0)) ~start:24 ~k:24 in
  let d1 = Audit.digest (Replica.fs nodes.(1)) ~start:24 ~k:24 in
  Alcotest.(check bool) "slice digests agree" true (Int64.equal d0 d1)

(* {2 Divergence vote, 2-vs-1, and repair byte-identity} *)

let test_divergence_repair () =
  let _, _, drives, fleet, nodes = mk_world () in
  (* Corrupt node C in two different slices: a value flip and a label
     smash — the kinds of damage the patrol alone cannot undo, because
     locally there is nothing to vote against. *)
  let c = nodes.(2) in
  Drive.poke drives.(2) (addr 40) Sector.Value
    (Array.make Sector.value_words (Word.of_int 0xBEEF));
  Drive.poke drives.(2) (addr 70) Sector.Label
    (Array.make Sector.label_words (Word.of_int 0x1234));
  run_to_laps fleet nodes ~laps:2;
  Alcotest.(check bool) "C repaired >= 2 slices" true (Replica.slices_repaired c >= 2);
  Alcotest.(check int) "A repaired nothing" 0 (Replica.slices_repaired nodes.(0));
  Alcotest.(check int) "B repaired nothing" 0 (Replica.slices_repaired nodes.(1));
  Alcotest.(check int) "no pages lost" 0 (Replica.pages_lost c);
  Alcotest.(check bool) "repairs counted globally" true (counter "repl.repairs" >= 2);
  Alcotest.(check bool) "winners served pages" true
    (Replica.pages_served nodes.(0) + Replica.pages_served nodes.(1) > 0);
  check_images_equal "after 2-vs-1 repair" drives

(* {2 Re-join after whole-pack loss} *)

let read_back fs i =
  let root = check_ok Directory.pp_error "root" (Directory.open_root fs) in
  match Directory.lookup root (file_name i) with
  | Error e -> Alcotest.failf "lookup %s: %a" (file_name i) Directory.pp_error e
  | Ok None -> Alcotest.failf "%s missing after rebuild" (file_name i)
  | Ok (Some entry) ->
      let file =
        check_ok File.pp_error "open" (File.open_leader fs entry.Directory.entry_file)
      in
      let n = File.byte_length file in
      Bytes.to_string (check_ok File.pp_error "read" (File.read_bytes file ~pos:0 ~len:n))

let wreck_pack drive =
  let junk_label = Array.make Sector.label_words (Word.of_int 0xDEAD) in
  let junk_value = Array.make Sector.value_words (Word.of_int 0xDEAD) in
  for i = 0 to Drive.sector_count drive - 1 do
    Drive.poke drive (addr i) Sector.Label junk_label;
    Drive.poke drive (addr i) Sector.Value junk_value
  done

let test_rejoin_after_pack_loss () =
  let _, _, drives, fleet, nodes = mk_world () in
  run_to_laps fleet nodes ~laps:1;
  let c = nodes.(2) in
  wreck_pack drives.(2);
  Replica.rejoin c;
  Alcotest.(check int) "rejoins counted" 1 (counter "repl.rejoins" - 0 |> min 1);
  (* Two further laps: the first votes every slice divergent and
     rebuilds it (remounting the repaired descriptor at the boundary),
     the second confirms convergence. *)
  run_to_laps fleet nodes ~laps:2;
  Alcotest.(check bool) "rebuild complete" true (not (Replica.rebuilding c));
  Alcotest.(check int) "zero pages lost" 0 (Replica.pages_lost c);
  (* Slices already agreeing (runs of free sectors — a virgin volume
     matches the reference there) need no repair; every slice holding
     descriptor or file content was voted divergent and streamed back. *)
  Alcotest.(check bool) "divergent slices repaired" true
    (Replica.slices_repaired c >= 2);
  check_images_equal "after whole-pack rebuild" drives;
  (* The rebuilt volume is not just byte-identical, it is alive: every
     file reads back through the remounted Fs. *)
  Array.iteri
    (fun i n ->
      Alcotest.(check string)
        (Printf.sprintf "%s intact on rebuilt C" (file_name i))
        (body i n) (read_back (Replica.fs c) i))
    file_sizes

(* {2 Fixed-seed determinism under net faults} *)

let stats n =
  ( Replica.cursor n,
    Replica.laps n,
    Replica.slices_audited n,
    Replica.slices_repaired n,
    Replica.pages_repaired n,
    Replica.pages_served n,
    Replica.pages_lost n,
    Replica.last_vote n )

let faulty_scenario () =
  let clock, net, drives, fleet, nodes = mk_world () in
  Net.set_faults net ~drop:0.08 ~dup:0.05 ~delay:0.15 ~delay_us:3_000 ~seed:91 ();
  (* Sector faults on every node too: the digests must see through
     transient lies via the retry ladder. *)
  Array.iteri (fun i d -> Drive.set_soft_errors d ~seed:(100 + i) ~rate:0.002) drives;
  run_to_laps fleet nodes ~laps:1;
  wreck_pack drives.(2);
  Replica.rejoin nodes.(2);
  run_to_laps fleet nodes ~laps:2;
  ( Array.map pack_image drives,
    Array.map stats nodes,
    Net.fault_census net,
    Sim_clock.now_us clock )

let test_determinism_under_faults () =
  let images1, stats1, census1, t1 = faulty_scenario () in
  let images2, stats2, census2, t2 = faulty_scenario () in
  Alcotest.(check bool) "pack images replay" true (images1 = images2);
  Alcotest.(check bool) "per-node stats replay" true (stats1 = stats2);
  Alcotest.(check bool) "fault census replays" true (census1 = census2);
  Alcotest.(check int) "simulated time replays" t1 t2;
  (* And the repaired node converged in both runs. *)
  let images, st, _, _ = (images1, stats1, census1, t1) in
  Alcotest.(check bool) "repaired under faults" true (images.(2) = images.(0));
  let _, _, _, _, _, _, lost, _ = st.(2) in
  Alcotest.(check int) "zero lost under faults" 0 lost

(* {2 Tracing over the replica wire: duplicates must not double-bill}

   A dup-heavy net resends digest and page requests; each resend does
   real disk work on the responder, but the asking audit's trace must
   absorb each (kind, seq, responder) exactly once — extra copies run
   unbilled, counted in [trace.remote_dups], and the global attribution
   books still balance against the drive's motion counters. *)

module Trace = Alto_obs.Trace

let test_dups_billed_once () =
  Obs.reset ();
  let _, net, drives, fleet, nodes = mk_world () in
  (* Duplication only: every packet that exists arrives, many twice, so
     remote dedup is exercised without timeout noise. *)
  Net.set_faults net ~dup:0.4 ~seed:23 ();
  Drive.poke drives.(2) (addr 40) Sector.Value
    (Array.make Sector.value_words (Word.of_int 0xBEEF));
  run_to_laps fleet nodes ~laps:2;
  let _, duped, _ = Net.fault_census net in
  Alcotest.(check bool) "the wire duplicated requests" true (duped > 0);
  Alcotest.(check bool) "duplicates ran unbilled" true
    (counter "trace.remote_dups" > 0);
  Alcotest.(check bool) "the divergence was still repaired" true
    (Replica.slices_repaired nodes.(2) > 0);
  check_images_equal "after dup-heavy repair" drives;
  (* No audit heard the same peer's digest twice. *)
  List.iter
    (fun (i : Trace.info) ->
      Array.iter
        (fun peer ->
          let key = "digest:" ^ peer in
          let heard =
            List.length (List.filter (fun (m, _) -> String.equal m key) i.Trace.marks)
          in
          Alcotest.(check bool)
            (Printf.sprintf "trace %d heard %s at most once" i.Trace.id peer)
            true (heard <= 1))
        node_names)
    (Trace.infos ());
  (* And the books balance to the microsecond: a double bill would push
     attributed past what the drives actually moved. *)
  let a_s, a_r, a_x = Trace.attributed () in
  let u_s, u_r, u_x = Trace.untraced () in
  Alcotest.(check int) "attribution balances the motion counters"
    (counter "disk.seek_us" + counter "disk.rotational_wait_us"
    + counter "disk.transfer_us")
    (a_s + a_r + a_x + u_s + u_r + u_x)

(* {2 The executive peers command and OS wiring} *)

let test_peers_command () =
  let clock = Sim_clock.create () in
  let net = Net.create ~clock () in
  let system = System.boot ~geometry:small () in
  let fleet = Replica.create ~clock net in
  let node =
    Replica.join fleet ~name:"alto-solo" ~on_new_fs:(System.set_fs system)
      (System.fs system)
  in
  System.set_replica_tick system (fun () -> Replica.tick node);
  System.set_peer_report system (fun () -> Replica.report fleet);
  Keyboard.feed (System.keyboard system) "peers\nquit\n";
  ignore (Executive.run system);
  let screen = Display.contents (System.display system) in
  let contains needle =
    let nl = String.length needle and sl = String.length screen in
    let rec go i = i + nl <= sl && (String.sub screen i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "cursor line shown" true (contains "alto-solo");
  Alcotest.(check bool) "net census shown" true (contains "net:");
  (* The idle-moment ReplicaTick ran alongside the patrol: a solo node
     audits unopposed, so the executive session advanced its cursor. *)
  Alcotest.(check bool) "audit advanced at idle" true (Replica.slices_audited node > 0)

let () =
  Alcotest.run "alto_replica"
    [
      ( "audit",
        [
          ("agreement", `Quick, test_agreement);
          ("2-vs-1 divergence repair", `Quick, test_divergence_repair);
          ("rejoin after pack loss", `Quick, test_rejoin_after_pack_loss);
          ("determinism under faults", `Quick, test_determinism_under_faults);
          ("duplicates billed once", `Quick, test_dups_billed_once);
          ("peers command", `Quick, test_peers_command);
        ] );
    ]
