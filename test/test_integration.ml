(* Whole-system integration: a life in the day of a pack, a model-based
   property test of file IO, and moving files between two drives. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Asm = Alto_machine.Asm
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger
module Compactor = Alto_fs.Compactor
module Stream = Alto_streams.Stream
module Disk_stream = Alto_streams.Disk_stream
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module World = Alto_world.World
module Checkpoint = Alto_world.Checkpoint
module System = Alto_os.System
module Loader = Alto_os.Loader
module Executive = Alto_os.Executive

let check_ok pp what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %a" what pp e

let file_ok what r = check_ok File.pp_error what r
let dir_ok what r = check_ok Directory.pp_error what r

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.equal (String.sub haystack i n) needle || go (i + 1)) in
  go 0

(* {2 a full day} *)

let test_a_day_in_the_life () =
  (* Boot; work at the executive; run a program; world-swap it; crash the
     machine mid-afternoon; scavenge; compact; verify everything. *)
  let geometry = { Geometry.diablo_31 with Geometry.model = "daily pack"; cylinders = 80 } in
  let system = System.boot ~geometry () in

  (* Morning: make some files at the executive. *)
  Keyboard.feed (System.keyboard system)
    "put Notes.txt the morning plan\nput Draft.txt first sentence\nquit\n";
  let outcome = Executive.run system in
  Alcotest.(check bool) "morning session done" true outcome.Executive.quit;

  (* Midday: a program computes something and leaves it in a file. *)
  let program =
    Asm.assemble_exn ~origin:System.user_base
      [
        Asm.Label "start";
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "fname" ]);
        Asm.Op ("JSR", [ Asm.Ext "CreateFile" ]);
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Lab "fname" ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 1 ]);
        Asm.Op ("JSR", [ Asm.Ext "OpenFile" ]);
        Asm.Op ("STA", [ Asm.Reg 0; Asm.Lab "handle" ]);
        (* write "42" *)
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 52 ]);
        Asm.Op ("JSR", [ Asm.Ext "StreamPut" ]);
        Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "handle" ]);
        Asm.Op ("LDI", [ Asm.Reg 1; Asm.Imm 50 ]);
        Asm.Op ("JSR", [ Asm.Ext "StreamPut" ]);
        Asm.Op ("LDA", [ Asm.Reg 0; Asm.Lab "handle" ]);
        Asm.Op ("JSR", [ Asm.Ext "CloseStream" ]);
        Asm.Op ("LDI", [ Asm.Reg 0; Asm.Imm 0 ]);
        Asm.Op ("JSR", [ Asm.Ext "Exit" ]);
        Asm.Label "handle";
        Asm.Word_data 0;
        Asm.Label "fname";
        Asm.String_data "Answer.txt";
      ]
  in
  let file =
    check_ok Loader.pp_error "save" (Loader.save_program system ~name:"Compute.run" program)
  in
  let stop = check_ok Loader.pp_error "run" (Loader.run system file) in
  Alcotest.(check bool) "program finished" true (stop = Vm.Stopped 0);

  (* Afternoon: checkpoint the world. *)
  let root = dir_ok "root" (Directory.open_root (System.fs system)) in
  let state =
    check_ok Checkpoint.pp_error "state file"
      (Checkpoint.state_file (System.fs system) ~directory:root ~name:"Day.state")
  in
  Memory.write (System.memory system) 9000 (Word.of_int 1234);
  check_ok Checkpoint.pp_error "save" (Checkpoint.save (System.cpu system) state);

  (* Disaster: the machine is yanked, some labels decay, the descriptor
     dies. *)
  let drive = System.drive system in
  let rng = Random.State.make [| 3 |] in
  ignore (Fault.decay rng drive ~fraction:0.002);
  Fault.corrupt_part rng drive Fs.descriptor_leader_address Sector.Label;

  (* Recovery: scavenge, then compact while we're at it. *)
  let fs', report =
    match Scavenger.scavenge drive with Ok x -> x | Error m -> Alcotest.failf "%s" m
  in
  Alcotest.(check bool) "a clean bill or minor losses" true
    (report.Scavenger.pages_lost < 10);
  (match Compactor.compact fs' with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "compact: %s" m);

  (* Evening: everything still there? *)
  let root' = dir_ok "root" (Directory.open_root fs') in
  let read name =
    match dir_ok "lookup" (Directory.lookup root' name) with
    | Some e ->
        let f = file_ok "open" (File.open_leader fs' e.Directory.entry_file) in
        Bytes.to_string (file_ok "read" (File.read_bytes f ~pos:0 ~len:(File.byte_length f)))
    | None -> Alcotest.failf "%s lost" name
  in
  Alcotest.(check string) "notes" "the morning plan" (read "Notes.txt");
  Alcotest.(check string) "answer" "42" (read "Answer.txt");
  (* The checkpoint still restores, even after compaction moved it. *)
  let state' =
    match dir_ok "lookup" (Directory.lookup root' "Day.state") with
    | Some e -> file_ok "open" (File.open_leader fs' e.Directory.entry_file)
    | None -> Alcotest.fail "checkpoint lost"
  in
  let fresh_memory = Memory.create () in
  let fresh_cpu = Cpu.create fresh_memory in
  check_ok World.pp_error "restore" (World.in_load fresh_cpu state' ~message:[||]);
  Alcotest.(check int) "world word" 1234 (Word.to_int (Memory.read fresh_memory 9000))

(* {2 model-based property: random file traffic} *)

let prop_file_matches_model =
  QCheck.Test.make ~name:"random file ops match a byte-string model" ~count:30
    QCheck.(
      list_of_size Gen.(1 -- 40)
        (triple (int_bound 3) (int_bound 2999) (int_bound 700)))
    (fun ops ->
      let geometry = { Geometry.diablo_31 with Geometry.model = "m"; cylinders = 30 } in
      let drive = Drive.create ~pack_id:2 geometry in
      let fs = Fs.format drive in
      let file =
        match File.create fs ~name:"Model." with Ok f -> f | Error _ -> QCheck.assume_fail ()
      in
      let model = ref "" in
      let byte_of i = Char.chr (32 + (i mod 90)) in
      let ok = ref true in
      List.iteri
        (fun step (op, pos, len) ->
          if !ok then
            match op with
            | 0 ->
                (* write at a valid position *)
                let pos = if String.length !model = 0 then 0 else pos mod (String.length !model + 1) in
                let data = String.make (1 + (len mod 600)) (byte_of step) in
                (match File.write_bytes file ~pos data with
                | Ok () ->
                    let before = String.sub !model 0 pos in
                    let after_start = pos + String.length data in
                    let after =
                      if after_start >= String.length !model then ""
                      else String.sub !model after_start (String.length !model - after_start)
                    in
                    model := before ^ data ^ after
                | Error _ -> ok := false)
            | 1 ->
                (* truncate *)
                let len = if String.length !model = 0 then 0 else len mod (String.length !model + 1) in
                (match File.truncate file ~len with
                | Ok () -> model := String.sub !model 0 len
                | Error _ -> ok := false)
            | 2 ->
                (* read and compare a slice *)
                let pos = if String.length !model = 0 then 0 else pos mod String.length !model in
                let want_len = min (len + 1) (String.length !model - pos) in
                (match File.read_bytes file ~pos ~len:want_len with
                | Ok bytes ->
                    if not (String.equal (Bytes.to_string bytes) (String.sub !model pos want_len))
                    then ok := false
                | Error _ -> ok := false)
            | _ ->
                (* forget hints: must be invisible *)
                File.invalidate_hints file)
        ops;
      (* Full-content check, then reopen and check again, then scavenge
         and check a third time. *)
      let matches f =
        match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
        | Ok bytes ->
            String.equal (Bytes.to_string bytes) !model
            && File.byte_length f = String.length !model
        | Error _ -> false
      in
      !ok && matches file
      && (match File.open_leader fs (File.leader_name file) with
         | Ok f -> matches f
         | Error _ -> false)
      &&
      (* Quiesce before the raw rebuild: the scavenger reads the
         platter, so delayed track-buffer writes must go out first —
         the same discipline the Executive's scavenge command follows. *)
      (ignore (Alto_fs.Bio.flush (Fs.bio fs));
       match Scavenger.scavenge drive with
       | Error _ -> false
       | Ok (fs', _) -> (
           match File.open_leader fs' (File.leader_name file) with
           | Ok f -> matches f
           | Error _ -> false)))

(* {2 two drives} *)

let test_copy_between_packs () =
  (* §2: the machine has "one or two moving-head disk drives". Two
     volumes, one machine: copy a file across, byte-identical. *)
  let clock = Alto_machine.Sim_clock.create () in
  let geometry = { Geometry.diablo_31 with Geometry.model = "pack"; cylinders = 30 } in
  let drive_a = Drive.create ~clock ~pack_id:1 geometry in
  let drive_b = Drive.create ~clock ~pack_id:2 { Geometry.diablo_44 with Geometry.cylinders = 40 } in
  let fs_a = Fs.format drive_a in
  let fs_b = Fs.format drive_b in
  let root_a = dir_ok "root a" (Directory.open_root fs_a) in
  let root_b = dir_ok "root b" (Directory.open_root fs_b) in
  let original = file_ok "create" (File.create fs_a ~name:"Travel.txt") in
  let text = String.init 3000 (fun i -> Char.chr (32 + (i mod 90))) in
  file_ok "write" (File.write_bytes original ~pos:0 text);
  dir_ok "add a" (Directory.add root_a ~name:"Travel.txt" (File.leader_name original));
  (* Copy through streams, the way a real utility would. *)
  let copy = file_ok "create b" (File.create fs_b ~name:"Travel.txt") in
  dir_ok "add b" (Directory.add root_b ~name:"Travel.txt" (File.leader_name copy));
  let src = Disk_stream.open_file ~mode:Disk_stream.Read_only original in
  let dst = Disk_stream.open_file ~mode:Disk_stream.Write_only copy in
  let n = Stream.copy ~src ~dst in
  src.Stream.close ();
  dst.Stream.close ();
  Alcotest.(check int) "bytes pumped" 3000 n;
  let back = file_ok "reopen" (File.open_leader fs_b (File.leader_name copy)) in
  Alcotest.(check string) "identical on the other pack" text
    (Bytes.to_string (file_ok "read" (File.read_bytes back ~pos:0 ~len:3000)));
  (* Same pack ids don't collide: each volume scavenges independently. *)
  let _, report_a =
    match Scavenger.scavenge drive_a with Ok x -> x | Error m -> Alcotest.failf "%s" m
  in
  Alcotest.(check int) "pack a sound" 0 report_a.Scavenger.pages_lost

(* {2 executive over a damaged pack} *)

let test_executive_survives_crash_and_scavenges () =
  let system = System.boot ~geometry:{ Geometry.diablo_31 with Geometry.model = "x"; cylinders = 40 } () in
  Keyboard.feed (System.keyboard system) "put Precious.txt do not lose\nquit\n";
  ignore (Executive.run system);
  (* Crash: the in-core map is gone (simulated by remounting), and some
     decay happened. *)
  let rng = Random.State.make [| 8 |] in
  ignore (Fault.decay rng (System.drive system) ~fraction:0.001);
  Keyboard.feed (System.keyboard system) "scavenge\ntype Precious.txt\nquit\n";
  ignore (Executive.run system);
  let text = Display.contents (System.display system) in
  Alcotest.(check bool) "file typed after scavenge" true (contains_sub text "do not lose")

let () =
  Alcotest.run "alto integration"
    [
      ( "lifecycle",
        [
          ("a day in the life", `Quick, test_a_day_in_the_life);
          ("executive survives a crash", `Quick, test_executive_survives_crash_and_scavenges);
        ] );
      ( "model",
        [ QCheck_alcotest.to_alcotest ~verbose:false prop_file_matches_model ] );
      ("two drives", [ ("copy between packs", `Quick, test_copy_between_packs) ]);
    ]
