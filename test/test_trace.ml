(* Request-scoped causal tracing: deterministic ids, context save and
   restore across activity switches, exact disk attribution through
   shared elevator sweeps (per-sector exact, entry seek pro-rated), the
   remote-span dedup that keeps a lying wire from double-billing, and
   the Chrome trace_event export — schema-checked and byte-identical
   across replays of the same seeded workload. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Sched = Alto_disk.Sched
module Activity = Alto_server.Activity
module Obs = Alto_obs.Obs
module Trace = Alto_obs.Trace
module Json = Alto_obs.Json

let small = { Geometry.diablo_31 with Geometry.model = "small"; cylinders = 10 }

let addr i = Disk_address.of_index i

let counter name =
  match Obs.find name with
  | Some (Obs.Counter v) -> v
  | Some (Obs.Histogram _) | None -> 0

let motion_total () =
  counter "disk.seek_us" + counter "disk.rotational_wait_us"
  + counter "disk.transfer_us"

let accounted_total () =
  let a_s, a_r, a_x = Trace.attributed () in
  let u_s, u_r, u_x = Trace.untraced () in
  a_s + a_r + a_x + u_s + u_r + u_x

(* {2 Lifecycle} *)

let test_lifecycle () =
  Obs.reset ();
  let clock = Sim_clock.create () in
  let ctx = Trace.start ~clock ~origin:"cli" ~name:"get A." in
  Trace.mark ctx "admitted";
  Sim_clock.advance_us clock 100;
  Trace.finish ctx ~status:"replied";
  (* A second finish — a duplicate reply, a late timeout — is a no-op. *)
  Sim_clock.advance_us clock 50;
  Trace.finish ctx ~status:"error";
  (match Trace.infos () with
  | [ i ] ->
      Alcotest.(check int) "id minted from the sequence" 1 i.Trace.id;
      Alcotest.(check string) "status" "replied" i.Trace.status;
      Alcotest.(check int) "closed at first finish" 100 i.Trace.end_us;
      Alcotest.(check (list string)) "timeline"
        [ "queued"; "admitted"; "replied" ]
        (List.map fst i.Trace.marks)
  | infos -> Alcotest.failf "expected one trace, got %d" (List.length infos));
  Alcotest.(check int) "started" 1 (counter "trace.started");
  Alcotest.(check int) "completed once" 1 (counter "trace.completed");
  Alcotest.(check int) "one span" 1 (counter "trace.spans");
  Alcotest.(check int) "nothing open" 0 (Trace.active_count ())

let test_ids_replay_after_reset () =
  Obs.reset ();
  let clock = Sim_clock.create () in
  let a = Trace.start ~clock ~origin:"x" ~name:"first" in
  let b = Trace.start ~clock ~origin:"x" ~name:"second" in
  Obs.reset ();
  let a' = Trace.start ~clock ~origin:"x" ~name:"first" in
  let b' = Trace.start ~clock ~origin:"x" ~name:"second" in
  Alcotest.(check bool) "same ids on replay" true (a = a' && b = b')

let test_find_active () =
  Obs.reset ();
  let clock = Sim_clock.create () in
  let old_ = Trace.start ~clock ~origin:"cli" ~name:"old" in
  let young = Trace.start ~clock ~origin:"cli" ~name:"young" in
  let _other = Trace.start ~clock ~origin:"other" ~name:"x" in
  (match Trace.find_active ~origin:"cli" with
  | Some c -> Alcotest.(check int) "newest open wins" young.Trace.trace c.Trace.trace
  | None -> Alcotest.fail "no active trace found");
  Trace.finish young ~status:"replied";
  (match Trace.find_active ~origin:"cli" with
  | Some c -> Alcotest.(check int) "closed ones excluded" old_.Trace.trace c.Trace.trace
  | None -> Alcotest.fail "the older trace is still open");
  Trace.finish old_ ~status:"replied";
  Alcotest.(check bool) "none left" true (Trace.find_active ~origin:"cli" = None)

(* {2 The wire representation and remote spans} *)

let test_wire_roundtrip () =
  Obs.reset ();
  let clock = Sim_clock.create () in
  Alcotest.(check bool) "no context, null pair" true (Trace.wire () = (0, 0));
  Alcotest.(check bool) "null pair, no context" true (Trace.of_wire (0, 0) = None);
  let ctx = Trace.start ~clock ~origin:"a" ~name:"op" in
  Trace.with_current (Some ctx) (fun () ->
      Alcotest.(check bool) "stamped from current" true
        (Trace.wire () = (ctx.Trace.trace, ctx.Trace.span)));
  Alcotest.(check bool) "round trip" true (Trace.of_wire (ctx.Trace.trace, ctx.Trace.span) = Some ctx)

let test_remote_dedup () =
  Obs.reset ();
  let clock = Sim_clock.create () in
  let ctx = Trace.start ~clock ~origin:"a" ~name:"audit" in
  let ran_under = ref None in
  Trace.remote ctx ~key:"digest:1:b" ~name:"digest@b" (fun () ->
      ran_under := Trace.current ());
  (match !ran_under with
  | Some c ->
      Alcotest.(check int) "child span joins the trace" ctx.Trace.trace c.Trace.trace;
      Alcotest.(check bool) "under a fresh span" true (c.Trace.span <> ctx.Trace.span)
  | None -> Alcotest.fail "remote body ran without a context");
  Alcotest.(check int) "two spans now" 2 (counter "trace.spans");
  (* The same key again — a duplicated packet — runs unbilled. *)
  Trace.remote ctx ~key:"digest:1:b" ~name:"digest@b" (fun () ->
      Alcotest.(check bool) "duplicate runs with no context" true
        (Trace.current () = None));
  Alcotest.(check int) "dup counted" 1 (counter "trace.remote_dups");
  Alcotest.(check int) "no third span" 2 (counter "trace.spans");
  (* A different responder answering the same sequence is new work. *)
  Trace.remote ctx ~key:"digest:1:c" ~name:"digest@c" (fun () -> ());
  Alcotest.(check int) "distinct key billed" 3 (counter "trace.spans")

(* {2 Attribution through the scheduler} *)

let read_req i =
  let buf = Array.make Sector.value_words Word.zero in
  Sched.request ~value:buf (addr i) { Drive.op_none with Drive.value = Some Drive.Read }

(* Two requests' batches land on the same far cylinder: the sweep's one
   entry seek is pro-rated across all four sectors' waiters, per-sector
   rotation and transfer stay exact, and the books balance against the
   drive's own motion counters to the microsecond. *)
let test_sweep_apportions_exactly () =
  Obs.reset ();
  let drive = Drive.create ~pack_id:2 small in
  let clock = Drive.clock drive in
  let queue = Sched.create drive in
  let ctx1 = Trace.start ~clock ~origin:"c1" ~name:"read far" in
  let ctx2 = Trace.start ~clock ~origin:"c2" ~name:"read far too" in
  let submit ctx sectors =
    Trace.with_current (Some ctx) (fun () ->
        Sched.submit_batch queue
          (Array.of_list (List.map read_req sectors))
          ~on_done:(fun _ _ -> ()))
  in
  (* Cylinder 5 of a 24-sector cylinder: indices 120..123. *)
  submit ctx1 [ 120; 121 ];
  submit ctx2 [ 122; 123 ];
  Alcotest.(check int) "one sweep serves all four" 4 (Sched.sweep queue);
  Trace.finish ctx1 ~status:"done";
  Trace.finish ctx2 ~status:"done";
  Alcotest.(check bool) "the entry seek was shared" true
    (counter "disk.sched.prorated_seek_us" > 0);
  let infos = Trace.infos () in
  let info id = List.find (fun i -> i.Trace.id = id) infos in
  let i1 = info ctx1.Trace.trace and i2 = info ctx2.Trace.trace in
  Alcotest.(check bool) "both billed for seek" true
    (i1.Trace.seek_us > 0 && i2.Trace.seek_us > 0);
  Alcotest.(check bool) "both billed for transfer" true
    (i1.Trace.transfer_us > 0 && i2.Trace.transfer_us > 0);
  Alcotest.(check int) "books balance to the microsecond" (motion_total ())
    (accounted_total ());
  Alcotest.(check int) "attributed is per-trace exactly"
    (let a_s, a_r, a_x = Trace.attributed () in
     a_s + a_r + a_x)
    (i1.Trace.seek_us + i1.Trace.rotation_us + i1.Trace.transfer_us
    + i2.Trace.seek_us + i2.Trace.rotation_us + i2.Trace.transfer_us)

(* Motion with no current context must land in the untraced bucket, not
   vanish: the balance holds whether or not anyone is tracing. *)
let test_untraced_motion_balances () =
  Obs.reset ();
  let drive = Drive.create ~pack_id:4 small in
  let value = Array.make Sector.value_words Word.zero in
  (match
     Drive.run drive (addr 200)
       { Drive.op_none with Drive.value = Some Drive.Read }
       ~value ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "read: %a" Drive.pp_error e);
  let u_s, u_r, u_x = Trace.untraced () in
  Alcotest.(check bool) "motion happened" true (motion_total () > 0);
  Alcotest.(check int) "all of it untraced" (motion_total ()) (u_s + u_r + u_x);
  Alcotest.(check bool) "nothing attributed" true (Trace.attributed () = (0, 0, 0))

(* {2 Context flows through activity switches} *)

let run_two_activities () =
  let drive = Drive.create ~pack_id:3 small in
  let clock = Drive.clock drive in
  let queue = Sched.create drive in
  let acts = Activity.create ~queue clock in
  let ctx_a = Trace.start ~clock ~origin:"a" ~name:"conv a" in
  let ctx_b = Trace.start ~clock ~origin:"b" ~name:"conv b" in
  let spawn ctx name sectors =
    if
      not
        (Activity.spawn ~ctx acts ~name (fun () ->
             Activity.Yield
               (fun () ->
                 Activity.Await_disk
                   {
                     requests = Array.of_list (List.map read_req sectors);
                     resume = (fun _ -> Activity.Finished);
                   })))
    then Alcotest.fail "spawn refused"
  in
  spawn ctx_a "a" [ 120; 121 ];
  spawn ctx_b "b" [ 122; 50 ];
  Activity.run_until_idle acts;
  Trace.finish ctx_a ~status:"done";
  Trace.finish ctx_b ~status:"done";
  (ctx_a, ctx_b)

let test_activity_context_isolation () =
  Obs.reset ();
  let ctx_a, ctx_b = run_two_activities () in
  Alcotest.(check bool) "no context leaks out of the scheduler" true
    (Trace.current () = None);
  let infos = Trace.infos () in
  let info id = List.find (fun i -> i.Trace.id = id) infos in
  List.iter
    (fun ctx ->
      let i = info ctx.Trace.trace in
      Alcotest.(check bool)
        (i.Trace.name ^ " parked on the standing queue")
        true
        (List.mem_assoc "disk-parked" i.Trace.marks);
      Alcotest.(check bool)
        (i.Trace.name ^ " served by the shared sweep")
        true
        (List.mem_assoc "sweep-served" i.Trace.marks);
      Alcotest.(check bool) (i.Trace.name ^ " billed for its pages") true
        (i.Trace.transfer_us > 0))
    [ ctx_a; ctx_b ];
  (* The C-SCAN sweep reaches b's cylinder-2 sector first; a's cylinder-5
     pages are served only after that service time, so a demonstrably
     waited in the queue. (b's wait may be zero: the sweep starts the
     instant it parks.) *)
  Alcotest.(check bool) "the later-served conversation waited" true
    ((info ctx_a.Trace.trace).Trace.wait_us > 0);
  Alcotest.(check int) "books balance across the interleaving"
    (motion_total ()) (accounted_total ())

(* {2 The Chrome export} *)

let member name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let test_chrome_schema () =
  Obs.reset ();
  let _ = run_two_activities () in
  let doc = Trace.chrome_json () in
  (match member "displayTimeUnit" doc with
  | Some (Json.String "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit must be \"ms\"");
  let events =
    match member "traceEvents" doc with
    | Some (Json.List es) -> es
    | _ -> Alcotest.fail "traceEvents must be a list"
  in
  Alcotest.(check bool) "events present" true (events <> []);
  let phases = ref [] in
  List.iter
    (fun e ->
      (match member "pid" e with
      | Some (Json.Int 1) -> ()
      | _ -> Alcotest.fail "every event carries pid 1");
      (match member "tid" e with
      | Some (Json.Int tid) when tid > 0 -> ()
      | _ -> Alcotest.fail "every event carries a positive tid");
      match member "ph" e with
      | Some (Json.String "M") -> (
          phases := "M" :: !phases;
          match member "args" e with
          | Some (Json.Obj [ ("name", Json.String _) ]) -> ()
          | _ -> Alcotest.fail "metadata events name their thread")
      | Some (Json.String "X") -> (
          phases := "X" :: !phases;
          (match (member "ts" e, member "dur" e) with
          | Some (Json.Int ts), Some (Json.Int dur) when ts >= 0 && dur >= 0 -> ()
          | _ -> Alcotest.fail "complete events carry non-negative ts and dur");
          match member "name" e with
          | Some (Json.String _) -> ()
          | _ -> Alcotest.fail "complete events are named")
      | Some (Json.String "i") -> (
          phases := "i" :: !phases;
          match member "ts" e with
          | Some (Json.Int ts) when ts >= 0 -> ()
          | _ -> Alcotest.fail "instants carry a non-negative ts")
      | _ -> Alcotest.fail "unknown phase")
    events;
  List.iter
    (fun ph ->
      Alcotest.(check bool) ("a " ^ ph ^ " event exists") true
        (List.mem ph !phases))
    [ "M"; "X"; "i" ];
  (* The root span of some trace must expose the decomposition. *)
  let has_decomposition =
    List.exists
      (fun e ->
        match member "args" e with
        | Some args ->
            member "wait_us" args <> None
            && member "service_us" args <> None
            && member "seek_us" args <> None
        | None -> false)
      events
  in
  Alcotest.(check bool) "a root span carries wait/service/disk args" true
    has_decomposition

let test_export_byte_identical () =
  let run () =
    Obs.reset ();
    let _ = run_two_activities () in
    Json.to_string (Trace.chrome_json ())
  in
  let r1 = run () in
  let r2 = run () in
  Alcotest.(check string) "replay exports the same bytes" r1 r2

let () =
  Alcotest.run "alto trace"
    [
      ( "lifecycle",
        [
          ("start, mark, finish, idempotent", `Quick, test_lifecycle);
          ("ids replay after reset", `Quick, test_ids_replay_after_reset);
          ("find_active picks the newest open", `Quick, test_find_active);
        ] );
      ( "wire",
        [
          ("wire round trip", `Quick, test_wire_roundtrip);
          ("remote spans dedup by key", `Quick, test_remote_dedup);
        ] );
      ( "attribution",
        [
          ("shared sweep apportions exactly", `Quick, test_sweep_apportions_exactly);
          ("untraced motion balances", `Quick, test_untraced_motion_balances);
        ] );
      ( "activities",
        [ ("context isolated per activity", `Quick, test_activity_context_isolation) ] );
      ( "export",
        [
          ("chrome trace_event schema", `Quick, test_chrome_schema);
          ("byte-identical replay", `Quick, test_export_byte_identical);
        ] );
    ]
