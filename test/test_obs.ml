(* The observability layer: registry semantics, histogram summaries,
   trace ring wraparound, sinks, JSON emission — and an integration
   check that the disk layer really charges its motion to the global
   metrics. *)

module Obs = Alto_obs.Obs
module Json = Alto_obs.Json
module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address

(* Every test starts from a clean slate; the registry is process-wide. *)
let fresh () =
  Obs.reset ();
  Obs.set_trace_capacity 1024

(* {2 Counters} *)

let test_counter_basics () =
  fresh ();
  let c = Obs.counter "test.birds" in
  Alcotest.(check int) "starts at zero" 0 (Obs.counter_value c);
  Obs.incr c;
  Obs.add c 4;
  Alcotest.(check int) "accumulates" 5 (Obs.counter_value c);
  Alcotest.(check string) "name" "test.birds" (Obs.counter_name c)

let test_counter_registry_is_shared () =
  fresh ();
  let a = Obs.counter "test.shared" in
  Obs.add a 3;
  let b = Obs.counter "test.shared" in
  Obs.incr b;
  Alcotest.(check int) "same underlying cell" 4 (Obs.counter_value a)

let test_counter_monotonic () =
  fresh ();
  let c = Obs.counter "test.mono" in
  match Obs.add c (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative add accepted"

let test_kind_mismatch_rejected () =
  fresh ();
  let (_ : Obs.counter) = Obs.counter "test.kind" in
  (match Obs.histogram "test.kind" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "histogram registered over a counter");
  let (_ : Obs.histogram) = Obs.histogram "test.kind2" in
  match Obs.counter "test.kind2" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "counter registered over a histogram"

(* {2 Histograms} *)

let test_histogram_summary () =
  fresh ();
  let h = Obs.histogram "test.sizes" in
  let empty = Obs.summary h in
  Alcotest.(check int) "empty count" 0 empty.Obs.count;
  Alcotest.(check int) "empty min" 0 empty.Obs.min;
  List.iter (Obs.observe h) [ 10; -2; 7; 10; 0 ];
  let s = Obs.summary h in
  Alcotest.(check int) "count" 5 s.Obs.count;
  Alcotest.(check int) "sum" 25 s.Obs.sum;
  Alcotest.(check int) "min" (-2) s.Obs.min;
  Alcotest.(check int) "max" 10 s.Obs.max;
  Alcotest.(check (float 0.001)) "mean" 5.0 s.Obs.mean

let test_percentiles_exact_below_bucket_resolution () =
  fresh ();
  let h = Obs.histogram "test.small" in
  (* Every value below 16 has a bucket of its own, so percentiles are
     exact order statistics on this stream. *)
  List.iter (Obs.observe h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check int) "p50 exact" 5 (Obs.percentile h 0.50);
  Alcotest.(check int) "p90 exact" 9 (Obs.percentile h 0.90);
  Alcotest.(check int) "p99 exact" 10 (Obs.percentile h 0.99);
  Alcotest.(check int) "p0 is the min" 1 (Obs.percentile h 0.0);
  Alcotest.(check int) "p100 is the max" 10 (Obs.percentile h 1.0)

let test_percentiles_within_one_bucket () =
  fresh ();
  let h = Obs.histogram "test.big" in
  for v = 1 to 1000 do
    Obs.observe h v
  done;
  (* Above 16 a bucket spans 12.5% of its value: the reported percentile
     is the floor of the right bucket, never more than one bucket off. *)
  List.iter
    (fun (p, exact) ->
      let got = Obs.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within a bucket (exact %d, got %d)" (100. *. p)
           exact got)
        true
        (got <= exact && float_of_int got >= 0.875 *. float_of_int exact))
    [ (0.50, 500); (0.90, 900); (0.99, 990) ];
  Alcotest.(check int) "empty histogram reports 0" 0
    (Obs.percentile (Obs.histogram "test.empty") 0.5)

let test_percentiles_tolerate_negative_values () =
  fresh ();
  let h = Obs.histogram "test.neg" in
  List.iter (Obs.observe h) [ -5; -1; 2; 3 ];
  (* Negative observations land in the zero bucket: low percentiles read
     as 0, and the exact [min]/[max] bounds keep the clamp honest. *)
  Alcotest.(check int) "negatives read as the zero bucket" 0 (Obs.percentile h 0.0);
  Alcotest.(check int) "p100 is the max" 3 (Obs.percentile h 1.0);
  let s = Obs.summary h in
  Alcotest.(check int) "summary p50 populated" (Obs.percentile h 0.5) s.Obs.p50;
  let all_neg = Obs.histogram "test.allneg" in
  List.iter (Obs.observe all_neg) [ -5; -3 ];
  Alcotest.(check int) "all-negative stream clamps to max" (-3)
    (Obs.percentile all_neg 0.5)

(* {2 Snapshot and reset} *)

let test_snapshot_and_reset () =
  fresh ();
  Obs.add (Obs.counter "test.a") 7;
  Obs.observe (Obs.histogram "test.b") 3;
  (match Obs.find "test.a" with
  | Some (Obs.Counter 7) -> ()
  | _ -> Alcotest.fail "find test.a");
  let names = List.map fst (Obs.snapshot ()) in
  Alcotest.(check bool) "snapshot sorted" true (List.sort compare names = names);
  Obs.reset ();
  (match Obs.find "test.a" with
  | Some (Obs.Counter 0) -> ()
  | _ -> Alcotest.fail "reset keeps registration, zeroes value");
  match Obs.find "test.b" with
  | Some (Obs.Histogram s) -> Alcotest.(check int) "histogram emptied" 0 s.Obs.count
  | _ -> Alcotest.fail "reset keeps histogram"

(* Pin the documented contract: reset rewinds values, the trace and the
   event sequence, but a registered sink keeps its tap — the flight
   recorder relies on surviving the resets tests and benches issue. *)
let test_reset_preserves_sinks () =
  fresh ();
  let seen = ref [] in
  let id = Obs.add_sink (fun e -> seen := e.Obs.name :: !seen) in
  Obs.event "test.before";
  Obs.reset ();
  Obs.event "test.after";
  Alcotest.(check (list string))
    "sink fires across reset" [ "test.after"; "test.before" ] !seen;
  (match Obs.trace () with
  | [ e ] ->
      Alcotest.(check string) "ring holds only the new event" "test.after" e.Obs.name;
      Alcotest.(check int) "sequence restarts at 0" 0 e.Obs.seq
  | events -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length events)));
  Obs.remove_sink id;
  Obs.event "test.ignored";
  Alcotest.(check int) "removal still works after reset" 2 (List.length !seen)

(* {2 Trace ring} *)

let test_trace_wraparound () =
  fresh ();
  Obs.set_trace_capacity 4;
  for i = 0 to 9 do
    Obs.event ~fields:[ ("i", Obs.I i) ] "test.tick"
  done;
  let events = Obs.trace () in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length events);
  let is = List.map (fun e -> match e.Obs.fields with [ (_, Obs.I i) ] -> i | _ -> -1) events in
  Alcotest.(check (list int)) "newest four, oldest first" [ 6; 7; 8; 9 ] is;
  let seqs = List.map (fun e -> e.Obs.seq) events in
  Alcotest.(check (list int)) "sequence numbers survive eviction" [ 6; 7; 8; 9 ] seqs

let test_trace_resize_keeps_newest () =
  fresh ();
  Obs.set_trace_capacity 8;
  for i = 0 to 5 do
    Obs.event ~fields:[ ("i", Obs.I i) ] "test.tick"
  done;
  Obs.set_trace_capacity 3;
  let is =
    List.map
      (fun e -> match e.Obs.fields with [ (_, Obs.I i) ] -> i | _ -> -1)
      (Obs.trace ())
  in
  Alcotest.(check (list int)) "shrink keeps newest" [ 3; 4; 5 ] is;
  (* And the ring still accepts events after the resize. *)
  Obs.event ~fields:[ ("i", Obs.I 6) ] "test.tick";
  Alcotest.(check int) "still bounded" 3 (List.length (Obs.trace ()))

let test_sinks () =
  fresh ();
  let seen = ref [] in
  let id = Obs.add_sink (fun e -> seen := e.Obs.name :: !seen) in
  Obs.event "test.one";
  Obs.event "test.two";
  Obs.remove_sink id;
  Obs.event "test.three";
  Alcotest.(check (list string)) "sink saw its window" [ "test.two"; "test.one" ] !seen

(* {2 Spans} *)

let test_span_times_sim_clock () =
  fresh ();
  let clock = Alto_machine.Sim_clock.create () in
  let x =
    Obs.time clock "test.span_us" (fun () ->
        Alto_machine.Sim_clock.advance_us clock 123;
        "done")
  in
  Alcotest.(check string) "result passes through" "done" x;
  (match Obs.find "test.span_us" with
  | Some (Obs.Histogram s) ->
      Alcotest.(check int) "one observation" 1 s.Obs.count;
      Alcotest.(check int) "elapsed simulated time" 123 s.Obs.sum
  | _ -> Alcotest.fail "span histogram missing");
  let names = List.map (fun e -> e.Obs.name) (Obs.trace ()) in
  Alcotest.(check (list string))
    "begin/end events" [ "test.span_us.begin"; "test.span_us.end" ] names

(* {2 JSON} *)

let test_json_rendering () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.String "say \"hi\"\n");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Float 1.5 ]);
      ]
  in
  Alcotest.(check string)
    "compact form" "{\"a\":1,\"b\":\"say \\\"hi\\\"\\n\",\"c\":[true,null,1.5]}"
    (Json.to_string doc);
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "whole floats keep a point" "2.0"
    (Json.to_string (Json.Float 2.0))

let test_metrics_json () =
  fresh ();
  Obs.add (Obs.counter "test.j") 2;
  let s = Json.to_string (Obs.metrics_json ()) in
  Alcotest.(check bool) "counter serialized" true
    (let sub = "\"test.j\":{\"type\":\"counter\",\"value\":2}" in
     let rec find i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || find (i + 1))
     in
     find 0)

(* {2 Integration: the disk layer feeds the registry} *)

let test_drive_run_charges_motion () =
  fresh ();
  let drive = Drive.create ~pack_id:1 Geometry.diablo_31 in
  let value = Array.make Sector.value_words Word.zero in
  let read index =
    match
      Drive.run drive (Disk_address.of_index index)
        { Drive.op_none with Drive.value = Some Drive.Read }
        ~value ()
    with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "read failed"
  in
  let counter_of name =
    match Obs.find name with
    | Some (Obs.Counter v) -> v
    | _ -> Alcotest.fail ("no counter " ^ name)
  in
  (* Sector 0, cylinder 0: no seek. *)
  read 0;
  Alcotest.(check int) "no seek on cylinder 0" 0 (counter_of "disk.seeks");
  (* A distant cylinder: exactly one seek, with simulated time charged. *)
  let sectors_per_cylinder = Drive.sector_count drive / Geometry.diablo_31.Geometry.cylinders in
  read (100 * sectors_per_cylinder);
  Alcotest.(check int) "one seek to cylinder 100" 1 (counter_of "disk.seeks");
  Alcotest.(check bool) "seek time charged" true (counter_of "disk.seek_us" > 0);
  (* Re-reading sector 0 must wait for the platter to come round again. *)
  read 0;
  Alcotest.(check bool) "rotational wait charged" true
    (counter_of "disk.rotational_wait_us" > 0);
  Alcotest.(check int) "three operations" 3 (counter_of "disk.operations");
  Alcotest.(check int) "words read" (3 * Sector.value_words)
    (counter_of "disk.words_read");
  (* The seek left its trace events behind. *)
  let seeks =
    List.filter (fun e -> String.equal e.Obs.name "disk.seek") (Obs.trace ())
  in
  Alcotest.(check int) "seek events traced" 2 (List.length seeks)

let () =
  Alcotest.run "alto obs"
    [
      ( "registry",
        [
          ("counter basics", `Quick, test_counter_basics);
          ("counter registry shared", `Quick, test_counter_registry_is_shared);
          ("counter monotonic", `Quick, test_counter_monotonic);
          ("kind mismatch rejected", `Quick, test_kind_mismatch_rejected);
          ("histogram summary", `Quick, test_histogram_summary);
          ("percentiles exact when small", `Quick, test_percentiles_exact_below_bucket_resolution);
          ("percentiles within one bucket", `Quick, test_percentiles_within_one_bucket);
          ("percentiles with negatives", `Quick, test_percentiles_tolerate_negative_values);
          ("snapshot and reset", `Quick, test_snapshot_and_reset);
          ("reset preserves sinks", `Quick, test_reset_preserves_sinks);
        ] );
      ( "trace",
        [
          ("ring wraparound", `Quick, test_trace_wraparound);
          ("resize keeps newest", `Quick, test_trace_resize_keeps_newest);
          ("sinks", `Quick, test_sinks);
          ("span times the sim clock", `Quick, test_span_times_sim_clock);
        ] );
      ( "json",
        [
          ("rendering", `Quick, test_json_rendering);
          ("metrics json", `Quick, test_metrics_json);
        ] );
      ( "integration",
        [ ("drive charges motion", `Quick, test_drive_run_charges_motion) ] );
    ]
