(* The track buffer cache (bio): whole-track fills, absorbed delayed
   writes, generation-policed coherence, and the two properties the
   design hangs on — a crash with dirty buffers loses at most recent
   page contents (never structure, never a settled page), and a
   workload replayed with the cache disabled leaves a byte-identical
   pack. *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Sector = Alto_disk.Sector
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs
module Fs = Alto_fs.Fs
module Bio = Alto_fs.Bio
module Label_cache = Alto_fs.Label_cache
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger

let small_geometry = { Geometry.diablo_31 with Geometry.model = "bio"; cylinders = 25 }

let counter name =
  match Obs.find name with Some (Obs.Counter n) -> n | _ -> 0

let ok pp = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %a" pp e

(* A raw drive with a standalone bio on top — no file system, so the
   tests can watch single sectors. *)
let raw_bio ?tracks () =
  let drive = Drive.create ~pack_id:9 small_geometry in
  let bio = Bio.create ?tracks ~label_cache:(Label_cache.create drive) drive in
  (drive, bio)

let addr i = Disk_address.of_index i

let distinct_label tag =
  Array.init Sector.label_words (fun k -> Word.of_int (tag + k))

let distinct_value tag = Array.make Sector.value_words (Word.of_int tag)

(* {2 Fills and hits} *)

let test_fill_serves_whole_track () =
  let drive, bio = raw_bio () in
  let spt = (Drive.geometry drive).Geometry.sectors_per_track in
  (* Stamp the track so served values are recognizable. *)
  for s = 0 to spt - 1 do
    Drive.poke drive (addr s) Sector.Value (distinct_value (100 + s))
  done;
  let hits0 = counter "fs.bio.hits" and misses0 = counter "fs.bio.misses" in
  (match Bio.lookup bio (addr 0) with
  | Some _ -> Alcotest.fail "cold cache should miss"
  | None -> Bio.fill bio (addr 0));
  (* Every sector of the track is now a memory hit with the true bytes. *)
  for s = 0 to spt - 1 do
    match Bio.lookup bio (addr s) with
    | None -> Alcotest.failf "sector %d not served after the track fill" s
    | Some (_, value) ->
        Alcotest.(check int)
          (Printf.sprintf "sector %d value" s)
          (100 + s) (Word.to_int value.(0))
  done;
  Alcotest.(check int) "one miss for the whole track" 1
    (counter "fs.bio.misses" - misses0);
  Alcotest.(check int) "twelve hits after one fill" spt
    (counter "fs.bio.hits" - hits0);
  Alcotest.(check int) "one resident track" 1 (Bio.cached_tracks bio)

let test_disabled_cache_is_inert () =
  let _drive, bio = raw_bio ~tracks:0 () in
  Alcotest.(check bool) "disabled" false (Bio.enabled bio);
  Bio.fill bio (addr 0);
  Alcotest.(check (option reject)) "nothing buffered"
    None
    (Option.map (fun _ -> ()) (Bio.peek bio (addr 0)));
  Alcotest.(check bool) "absorb refuses" false
    (Bio.absorb bio (addr 0) (distinct_value 7))

(* {2 Delayed writes} *)

let test_absorb_and_coalesced_flush () =
  let drive, bio = raw_bio () in
  let spt = (Drive.geometry drive).Geometry.sectors_per_track in
  for s = 0 to (2 * spt) - 1 do
    Drive.poke drive (addr s) Sector.Label (distinct_label 0x1000);
    Drive.poke drive (addr s) Sector.Value (distinct_value 1)
  done;
  Bio.fill bio (addr 0);
  Bio.fill bio (addr spt);
  (* Absorb three writes on the first track, one on the second. *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "absorb %d" s)
        true
        (Bio.absorb bio (addr s) (distinct_value (200 + s))))
    [ 0; 3; 7; spt ];
  Alcotest.(check int) "four dirty sectors" 4 (Bio.dirty_sectors bio);
  (* Nothing has reached the platter yet — the writes are delayed. *)
  let before = Drive.peek drive (addr 3) in
  Alcotest.(check int) "platter still v1" 1
    (Word.to_int (Sector.part_of before Sector.Value).(0));
  let report = Bio.flush bio in
  Alcotest.(check int) "flush wrote four sectors" 4 report.Bio.sectors;
  Alcotest.(check int) "coalesced into two track sweeps" 2 report.Bio.tracks;
  Alcotest.(check int) "no conflicts" 0 report.Bio.conflicts;
  Alcotest.(check int) "clean after flush" 0 (Bio.dirty_sectors bio);
  List.iter
    (fun s ->
      let sec = Drive.peek drive (addr s) in
      Alcotest.(check int)
        (Printf.sprintf "platter sector %d updated" s)
        (200 + s)
        (Word.to_int (Sector.part_of sec Sector.Value).(0)))
    [ 0; 3; 7; spt ]

let test_generation_kills_buffered_sector () =
  let drive, bio = raw_bio () in
  Drive.poke drive (addr 5) Sector.Value (distinct_value 42);
  Bio.fill bio (addr 0);
  (match Bio.peek bio (addr 5) with
  | Some _ -> ()
  | None -> Alcotest.fail "sector 5 should be buffered");
  (* Out-of-band mutation bumps the label generation; the buffered copy
     must die rather than mask it. *)
  Drive.poke drive (addr 5) Sector.Value (distinct_value 43);
  (match Bio.lookup bio (addr 5) with
  | Some _ -> Alcotest.fail "stale sector served after an out-of-band poke"
  | None -> ());
  (* Unpoked neighbours on the same track stay served. *)
  match Bio.lookup bio (addr 4) with
  | Some _ -> ()
  | None -> Alcotest.fail "neighbour sector wrongly invalidated"

let test_conflicted_delayed_write_is_dropped () =
  let drive, bio = raw_bio () in
  Drive.poke drive (addr 2) Sector.Label (distinct_label 0x2000);
  Bio.fill bio (addr 0);
  Alcotest.(check bool) "absorbed" true (Bio.absorb bio (addr 2) (distinct_value 9));
  (* Someone re-labels the sector underneath the delayed write. *)
  Drive.poke drive (addr 2) Sector.Label (distinct_label 0x3000);
  Drive.poke drive (addr 2) Sector.Value (distinct_value 77);
  let report = Bio.flush bio in
  Alcotest.(check int) "the stale write was dropped" 1 report.Bio.conflicts;
  let sec = Drive.peek drive (addr 2) in
  Alcotest.(check int) "the platter won" 77
    (Word.to_int (Sector.part_of sec Sector.Value).(0))

let test_eviction_flushes_dirty_track () =
  let drive, bio = raw_bio ~tracks:2 () in
  let spt = (Drive.geometry drive).Geometry.sectors_per_track in
  Bio.fill bio (addr 0);
  Alcotest.(check bool) "dirty on track 0" true
    (Bio.absorb bio (addr 1) (distinct_value 55));
  (* Touch two more tracks; the LRU (dirty) track must be flushed, not
     dropped. *)
  Bio.fill bio (addr spt);
  Bio.fill bio (addr (2 * spt));
  Alcotest.(check int) "capacity respected" 2 (Bio.cached_tracks bio);
  let sec = Drive.peek drive (addr 1) in
  Alcotest.(check int) "evicted dirty sector reached the platter" 55
    (Word.to_int (Sector.part_of sec Sector.Value).(0))

(* {2 Crash with dirty buffers}

   Settled pages are committed: a crash that loses every delayed write
   must still present them intact, and the pack must scavenge and
   remount cleanly. *)

let page_string tag len = String.make len (Char.chr (65 + tag))

let test_crash_loses_at_most_delayed_values () =
  let drive = Drive.create ~pack_id:9 small_geometry in
  let fs = Fs.format drive in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let file = ok File.pp_error (File.create fs ~name:"Settled.dat") in
  let len = 4 * Sector.bytes_per_page in
  ok File.pp_error (File.write_bytes file ~pos:0 (page_string 0 len));
  ok File.pp_error (File.flush_leader file);
  ok Directory.pp_error (Directory.add root ~name:"Settled.dat" (File.leader_name file));
  (* Commit version 1: everything on the platter. *)
  (match Fs.flush fs with Ok () -> () | Error _ -> Alcotest.fail "fs flush");
  (* Version 2 is absorbed into the track buffers and never flushed —
     the machine dies with the buffers dirty. The overwrite goes in
     misaligned chunks: read-modify-write traffic, the path the cache
     absorbs (aligned full pages write through the batcher). *)
  let v2 = page_string 1 len in
  let chunk = 500 in
  let rec overwrite pos =
    if pos < len then begin
      let n = min chunk (len - pos) in
      ok File.pp_error (File.write_bytes file ~pos (String.sub v2 pos n));
      overwrite (pos + n)
    end
  in
  overwrite 0;
  Alcotest.(check bool) "the crash really has dirty buffers" true
    (Bio.dirty_sectors (Fs.bio fs) > 0);
  (* All in-core state is lost; recovery starts from the drive. *)
  let fs' =
    match Scavenger.scavenge drive with
    | Ok (fs', _) -> fs'
    | Error msg -> Alcotest.failf "scavenge after crash: %s" msg
  in
  let root' = ok Directory.pp_error (Directory.open_root fs') in
  (match Directory.lookup root' "Settled.dat" with
  | Ok (Some e) ->
      let f = ok File.pp_error (File.open_leader fs' e.Directory.entry_file) in
      let got =
        Bytes.to_string (ok File.pp_error (File.read_bytes f ~pos:0 ~len))
      in
      let v1 = page_string 0 len and v2 = page_string 1 len in
      let pages = len / Sector.bytes_per_page in
      for p = 0 to pages - 1 do
        let slice = String.sub got (p * Sector.bytes_per_page) Sector.bytes_per_page in
        let matches v =
          String.equal slice (String.sub v (p * Sector.bytes_per_page) Sector.bytes_per_page)
        in
        if not (matches v1 || matches v2) then
          Alcotest.failf "page %d holds torn or alien bytes after the crash" p
      done
  | Ok None -> Alcotest.fail "committed file lost by the crash"
  | Error e -> Alcotest.failf "directory unreadable: %a" Directory.pp_error e);
  match Fs.mount drive with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "remount after crash: %s" msg

(* {2 Cache transparency}

   The same deterministic workload, cached and uncached, must leave the
   two packs byte-identical — the cache may reorder and coalesce disk
   traffic but never change what ends up on the platter. (File creation
   happens inside the first simulated second on both packs, so leader
   timestamps agree; after that the runs' clocks diverge freely.) *)

let transparency_workload ~cached =
  let drive = Drive.create ~pack_id:9 small_geometry in
  let fs = Fs.format drive in
  if not cached then Bio.set_tracks (Fs.bio fs) 0;
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let files =
    List.init 2 (fun i ->
        let name = Printf.sprintf "T%d.dat" i in
        let f = ok File.pp_error (File.create fs ~name) in
        ok Directory.pp_error (Directory.add root ~name (File.leader_name f));
        f)
  in
  (* Grow, overwrite misaligned, truncate — plenty of read-modify-write
     traffic for the cache to absorb. *)
  List.iteri
    (fun i f ->
      let len = (6 + i) * Sector.bytes_per_page in
      ok File.pp_error (File.write_bytes f ~pos:0 (page_string i len));
      ok File.pp_error
        (File.write_bytes f ~pos:300 (page_string (i + 3) (2 * Sector.bytes_per_page)));
      ok File.pp_error (File.truncate f ~len:(len - 700)))
    files;
  (match Fs.flush fs with Ok () -> () | Error _ -> Alcotest.fail "fs flush");
  ignore (Bio.flush (Fs.bio fs) : Bio.flush_report);
  drive

(* The crash-ordering promise: the descriptor's dirty flag reaches the
   platter {e before} the first delayed write is acknowledged, so a
   crash with dirty buffers always boots into the bounded recovery
   scan — never into a volume that claims to be clean while delayed
   writes rot in lost core. *)
let test_dirty_flag_on_platter_before_delayed_ack () =
  let drive = Drive.create ~pack_id:9 small_geometry in
  let fs = Fs.format drive in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let file = ok File.pp_error (File.create fs ~name:"Flag.dat") in
  ok File.pp_error (File.write_bytes file ~pos:0 (page_string 0 Sector.bytes_per_page));
  ok Directory.pp_error (Directory.add root ~name:"Flag.dat" (File.leader_name file));
  (match Fs.flush fs with Ok () -> () | Error _ -> Alcotest.fail "flush");
  (match Fs.mark_clean fs with Ok () -> () | Error _ -> Alcotest.fail "mark_clean");
  (match Fs.flush fs with Ok () -> () | Error _ -> Alcotest.fail "flush2");
  (* One overwrite, acknowledged but delayed — nothing else. The machine
     now dies: the buffers are gone, only the platter answers. *)
  ok File.pp_error (File.write_bytes file ~pos:0 (page_string 1 Sector.bytes_per_page));
  Alcotest.(check bool) "the write really is delayed" true
    (Bio.dirty_sectors (Fs.bio fs) > 0);
  let fs' =
    match Fs.mount drive with
    | Ok fs' -> fs'
    | Error msg -> Alcotest.failf "platter unmountable: %s" msg
  in
  Alcotest.(check bool) "platter already announces the dirty volume" true
    (Fs.dirty fs')

(* The same promise must survive a remount: each mount wires its own
   [on_dirty] hook to its own track buffers (a world swap or recovery
   boot swaps the whole [Fs] handle underneath the machine). *)
let test_dirty_flag_rearms_after_remount () =
  let drive = Drive.create ~pack_id:9 small_geometry in
  let fs = Fs.format drive in
  let root = ok Directory.pp_error (Directory.open_root fs) in
  let file = ok File.pp_error (File.create fs ~name:"Flag.dat") in
  ok File.pp_error (File.write_bytes file ~pos:0 (page_string 0 Sector.bytes_per_page));
  ok Directory.pp_error (Directory.add root ~name:"Flag.dat" (File.leader_name file));
  (match Fs.flush fs with Ok () -> () | Error _ -> Alcotest.fail "flush");
  (match Fs.mark_clean fs with Ok () -> () | Error _ -> Alcotest.fail "mark_clean");
  (match Fs.flush fs with Ok () -> () | Error _ -> Alcotest.fail "flush2");
  (* The first incarnation is abandoned wholesale; a second mounts. *)
  let fs2 =
    match Fs.mount drive with
    | Ok fs2 -> fs2
    | Error msg -> Alcotest.failf "remount: %s" msg
  in
  Alcotest.(check bool) "clean at the consistency point" false (Fs.dirty fs2);
  let root2 = ok Directory.pp_error (Directory.open_root fs2) in
  let file2 =
    match Directory.lookup root2 "Flag.dat" with
    | Ok (Some e) -> ok File.pp_error (File.open_leader fs2 e.Directory.entry_file)
    | Ok None | Error _ -> Alcotest.fail "Flag.dat lost across remount"
  in
  ok File.pp_error (File.write_bytes file2 ~pos:0 (page_string 2 Sector.bytes_per_page));
  Alcotest.(check bool) "the write really is delayed" true
    (Bio.dirty_sectors (Fs.bio fs2) > 0);
  let fs3 =
    match Fs.mount drive with
    | Ok fs3 -> fs3
    | Error msg -> Alcotest.failf "third mount: %s" msg
  in
  Alcotest.(check bool) "remounted handle still announces first" true (Fs.dirty fs3)

let image drive =
  List.init (Drive.sector_count drive) (fun s ->
      let sec = Drive.peek drive (addr s) in
      ( Array.to_list (Sector.part_of sec Sector.Header),
        Array.to_list (Sector.part_of sec Sector.Label),
        Array.to_list (Sector.part_of sec Sector.Value) ))

let test_cached_and_uncached_packs_identical () =
  let cached = image (transparency_workload ~cached:true) in
  let uncached = image (transparency_workload ~cached:false) in
  List.iteri
    (fun s (c, u) ->
      if c <> u then Alcotest.failf "sector %d differs between the two packs" s)
    (List.combine cached uncached)

let () =
  Alcotest.run "alto bio"
    [
      ( "track buffers",
        [
          ("a fill serves the whole track", `Quick, test_fill_serves_whole_track);
          ("a disabled cache is inert", `Quick, test_disabled_cache_is_inert);
          ("absorbed writes flush coalesced", `Quick, test_absorb_and_coalesced_flush);
          ("generation bump kills the buffer", `Quick, test_generation_kills_buffered_sector);
          ("conflicted delayed write dropped", `Quick, test_conflicted_delayed_write_is_dropped);
          ("eviction flushes a dirty track", `Quick, test_eviction_flushes_dirty_track);
        ] );
      ( "crash and transparency",
        [
          ("crash loses at most delayed values", `Quick, test_crash_loses_at_most_delayed_values);
          ("dirty flag beats the delayed ack", `Quick, test_dirty_flag_on_platter_before_delayed_ack);
          ("dirty flag re-arms after remount", `Quick, test_dirty_flag_rearms_after_remount);
          ("cached and uncached packs identical", `Quick, test_cached_and_uncached_packs_identical);
        ] );
    ]
