(* The online patrol: the incremental verify sweep finds marginal
   sectors by retry evidence and moves their pages to safety before the
   sector dies; the dirty flag and the persisted cursor turn an unsafe
   shutdown into a bounded recovery scan instead of a full scavenge; and
   quarantine verdicts that overflow the descriptor table survive
   remount through the spill file. *)

module Word = Alto_machine.Word
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Patrol = Alto_fs.Patrol
module Bad_sectors = Alto_fs.Bad_sectors
module Scavenger = Alto_fs.Scavenger
module Page = Alto_fs.Page
module System = Alto_os.System
module Executive = Alto_os.Executive
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display

let tiny = { Geometry.diablo_31 with Geometry.model = "tiny"; cylinders = 3 }

let addr i = Disk_address.of_index i

let make_volume ?(geometry = tiny) ?(seed = 42) () =
  let drive = Drive.create ~pack_id:3 geometry in
  let fs = Fs.format drive in
  (* Seed the drive's fault PRNG without enabling base soft errors, so
     marginal-sector draws are reproducible. *)
  Fault.set_soft_errors drive ~seed ~rate:0.0;
  (drive, fs)

let create_file fs name content =
  match File.create fs ~name with
  | Error e -> Alcotest.failf "create %s: %a" name File.pp_error e
  | Ok file -> (
      (match File.write_bytes file ~pos:0 content with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write %s: %a" name File.pp_error e);
      (match File.flush_leader file with
      | Ok () -> ()
      | Error e -> Alcotest.failf "flush %s: %a" name File.pp_error e);
      match Directory.open_root fs with
      | Error e -> Alcotest.failf "root: %a" Directory.pp_error e
      | Ok root -> (
          match Directory.add root ~name (File.leader_name file) with
          | Ok () -> file
          | Error e -> Alcotest.failf "add %s: %a" name Directory.pp_error e))

let open_by_name fs name =
  match Directory.open_root fs with
  | Error e -> Alcotest.failf "root: %a" Directory.pp_error e
  | Ok root -> (
      match Directory.lookup root name with
      | Error e -> Alcotest.failf "lookup %s: %a" name Directory.pp_error e
      | Ok None -> Alcotest.failf "%s: vanished from the catalogue" name
      | Ok (Some e) -> (
          match File.open_leader fs e.Directory.entry_file with
          | Error err -> Alcotest.failf "open %s: %a" name File.pp_error err
          | Ok f -> (f, e.Directory.entry_file.Page.addr)))

let read_all file =
  match File.read_bytes file ~pos:0 ~len:(File.byte_length file) with
  | Ok bytes -> Bytes.to_string bytes
  | Error e -> Alcotest.failf "read: %a" File.pp_error e

let page_addr file pn =
  match File.page_name file pn with
  | Ok fn -> fn.Page.addr
  | Error e -> Alcotest.failf "page_name %d: %a" pn File.pp_error e

(* Sweep full laps until the patrol has moved [relocations] pages (or a
   generous lap budget runs out — the marginal rates below make missing
   a sector for ten straight laps practically impossible). *)
let sweep_until patrol ~relocations =
  let n = Drive.sector_count (Fs.drive (Patrol.fs patrol)) in
  let budget = ref (10 * ((n / 24) + 1)) in
  while Patrol.relocated patrol < relocations && !budget > 0 do
    ignore (Patrol.tick patrol : Patrol.report);
    decr budget
  done;
  Alcotest.(check bool) "patrol found and moved the page(s)" true
    (Patrol.relocated patrol >= relocations)

let pack_image drive =
  List.init (Drive.sector_count drive) (fun i ->
      let s = Drive.peek drive (addr i) in
      ( Array.to_list (Sector.part_of s Sector.Header),
        Array.to_list (Sector.part_of s Sector.Label),
        Array.to_list (Sector.part_of s Sector.Value) ))

(* {2 the sweep} *)

(* A wearing-out sector is detected by retry evidence and its page moved
   before the sector degrades to permanently bad: contents intact, old
   sector quarantined, and the pack still sound for a remount and for
   the scavenger. *)
let test_marginal_page_relocated () =
  let drive, fs = make_volume () in
  let content = String.init 900 (fun i -> Char.chr (33 + (i mod 90))) in
  let file = create_file fs "Victim.dat" content in
  let victim = page_addr file 1 in
  Fault.make_marginal drive victim ~rate:0.8 ~growth:1.0 ~degrade_after:50;
  let patrol = Patrol.create ~suspect_retries:1 fs in
  sweep_until patrol ~relocations:1;
  Alcotest.(check bool) "caught before the sector went hard-bad" false
    (Drive.is_bad drive victim);
  Alcotest.(check bool) "old sector quarantined" true
    (Fs.quarantined fs victim || Fs.spilled fs victim);
  Alcotest.(check int) "no page was lost" 0 (Patrol.pages_lost patrol);
  (* A fresh handle (stale hints forgotten) finds the moved page. *)
  let fresh, _ = open_by_name fs "Victim.dat" in
  Alcotest.(check string) "contents byte-identical" content (read_all fresh);
  Alcotest.(check bool) "the page really moved" true
    (not (Disk_address.equal (page_addr fresh 1) victim));
  (* The pack is sound across a remount... *)
  (match Fs.flush fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flush: %a" Fs.pp_error e);
  (match Fs.mount drive with
  | Error msg -> Alcotest.failf "remount: %s" msg
  | Ok fs2 ->
      let again, _ = open_by_name fs2 "Victim.dat" in
      Alcotest.(check string) "contents survive remount" content (read_all again));
  (* ...and for the scavenger: nothing left to lose. *)
  match Scavenger.scavenge drive with
  | Error msg -> Alcotest.failf "scavenge: %s" msg
  | Ok (_, report) ->
      Alcotest.(check int) "scavenger agrees nothing was lost" 0
        report.Scavenger.pages_lost

(* Relocating a leader page must re-point the catalogue: the directory
   entry's address hint follows the move. *)
let test_leader_relocation_fixes_catalogue () =
  let drive, fs = make_volume () in
  let content = "the leader of this file lives on a dying sector" in
  let file = create_file fs "Leader.dat" content in
  let old_leader = (File.leader_name file).Page.addr in
  Fault.make_marginal drive old_leader ~rate:0.8 ~growth:1.0 ~degrade_after:50;
  let patrol = Patrol.create ~suspect_retries:1 fs in
  sweep_until patrol ~relocations:1;
  let fresh, entry_addr = open_by_name fs "Leader.dat" in
  Alcotest.(check bool) "the catalogue entry follows the move" true
    (not (Disk_address.equal entry_addr old_leader));
  Alcotest.(check string) "contents intact through the new leader" content
    (read_all fresh)

(* The same seed must give the same patrol: identical packs, identical
   relocation counts. *)
let test_deterministic_under_seed () =
  let run () =
    let drive, fs = make_volume ~seed:77 () in
    let _ = create_file fs "A.dat" (String.make 1400 'a') in
    let b = create_file fs "B.dat" (String.make 900 'b') in
    Fault.make_marginal drive (page_addr b 1) ~rate:0.7 ~growth:1.0
      ~degrade_after:60;
    let patrol = Patrol.create ~suspect_retries:1 fs in
    for _ = 1 to 12 do
      ignore (Patrol.tick patrol : Patrol.report)
    done;
    (match Fs.flush fs with
    | Ok () -> ()
    | Error e -> Alcotest.failf "flush: %a" Fs.pp_error e);
    (pack_image drive, Patrol.relocated patrol, Patrol.slices patrol)
  in
  let image1, relocated1, slices1 = run () in
  let image2, relocated2, slices2 = run () in
  Alcotest.(check int) "same slice count" slices1 slices2;
  Alcotest.(check int) "same relocation count" relocated1 relocated2;
  Alcotest.(check bool) "identical pack images" true (image1 = image2)

(* {2 unsafe shutdown} *)

(* The dirty flag: set and persisted by the first mutation, cleared by a
   consistency point, and readable across remounts. *)
let test_dirty_flag_lifecycle () =
  let drive, fs = make_volume () in
  Alcotest.(check bool) "a fresh format is clean" false (Fs.dirty fs);
  let _ = create_file fs "Mut.dat" "mutation" in
  Alcotest.(check bool) "mutation set the flag" true (Fs.dirty fs);
  (* The flag was written through at the first mutation: a remount (the
     crash view) sees it without any further flush. *)
  (match Fs.mount drive with
  | Error msg -> Alcotest.failf "remount: %s" msg
  | Ok crashed -> Alcotest.(check bool) "crash view is dirty" true (Fs.dirty crashed));
  (match Fs.mark_clean fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mark_clean: %a" Fs.pp_error e);
  match Fs.mount drive with
  | Error msg -> Alcotest.failf "remount: %s" msg
  | Ok clean -> Alcotest.(check bool) "clean shutdown persisted" false (Fs.dirty clean)

(* Power fails mid-workload; the pack mounts dirty, the bounded recovery
   scan runs, and the volume is sound and clean afterwards. *)
let test_crash_recovery_bounded () =
  let drive, fs = make_volume ~geometry:{ tiny with Geometry.cylinders = 5 } () in
  let keep = String.init 1200 (fun i -> Char.chr (65 + (i mod 26))) in
  let _ = create_file fs "Keep.dat" keep in
  (match Fs.mark_clean fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mark_clean: %a" Fs.pp_error e);
  (* Now a workload that dies mid-flight. *)
  Drive.set_power_budget drive (Some 120);
  (try
     for i = 0 to 30 do
       ignore (create_file fs (Printf.sprintf "Doomed%d.dat" i) (String.make 700 'd'))
     done;
     Alcotest.fail "the power budget never ran out"
   with Drive.Power_failure -> ());
  Drive.set_power_budget drive None;
  match Fs.mount drive with
  | Error msg -> Alcotest.failf "mount after crash: %s" msg
  | Ok crashed ->
      Alcotest.(check bool) "the pack mounts dirty" true (Fs.dirty crashed);
      let recovery = Patrol.recover crashed in
      Alcotest.(check bool) "the scan covered the unfinished lap" true
        (recovery.Patrol.sectors_scanned
        = Drive.sector_count drive - recovery.Patrol.resumed_at);
      Alcotest.(check bool) "recovery declared the consistency point" false
        (Fs.dirty crashed);
      (* The volume is sound: the pre-crash file reads back, and a fresh
         mount starts clean. *)
      let kept, _ = open_by_name crashed "Keep.dat" in
      Alcotest.(check string) "pre-crash data intact" keep (read_all kept);
      (match Fs.mount drive with
      | Error msg -> Alcotest.failf "clean remount: %s" msg
      | Ok clean -> Alcotest.(check bool) "clean after recovery" false (Fs.dirty clean))

(* Recovery restores safety over the unswept tail; the head region the
   crashed lap already covered is owed completeness. A patrol created
   with [~makeup_until] runs double-rate slices until the cursor crosses
   that region, then settles back to one slice per tick. *)
let test_makeup_lap_after_recovery () =
  let drive, fs = make_volume () in
  let _ = create_file fs "Keep.dat" (String.make 900 'k') in
  (match Fs.mark_clean fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mark_clean: %a" Fs.pp_error e);
  (* Walk the sweep into the middle of the pack, then crash. *)
  let walker = Patrol.create fs in
  let n = Drive.sector_count drive in
  while Fs.patrol_cursor fs < n / 2 do
    ignore (Patrol.tick walker : Patrol.report)
  done;
  let _ = create_file fs "Dirty.dat" "unsaved" in
  Alcotest.(check bool) "mutation dirtied the pack" true (Fs.dirty fs);
  let recovery = Patrol.recover fs in
  let owed = recovery.Patrol.resumed_at in
  Alcotest.(check bool) "recovery skipped a head region" true (owed > 0);
  let patrol = Patrol.create ~makeup_until:owed fs in
  Alcotest.(check int) "the head region is owed" owed (Patrol.makeup_pending patrol);
  let slice = 24 in
  let ticks = ref 0 in
  while Patrol.makeup_pending patrol > 0 && !ticks < n do
    ignore (Patrol.tick patrol : Patrol.report);
    incr ticks
  done;
  Alcotest.(check int) "the completeness lap finished" 0
    (Patrol.makeup_pending patrol);
  (* Double rate: two slices per tick while the debt lasts. *)
  let budget = ((owed + (2 * slice) - 1) / (2 * slice)) + 1 in
  Alcotest.(check bool)
    (Printf.sprintf "finished in %d ticks (budget %d)" !ticks budget)
    true (!ticks <= budget);
  (* The debt is paid once: a plain patrol owes nothing. *)
  Alcotest.(check int) "no debt without a crash" 0
    (Patrol.makeup_pending (Patrol.create fs))

(* A crash between reserving a page and writing it leaks the map bit;
   the recovery scan reclaims it (label free, map busy). *)
let test_abandoned_reservation_reclaimed () =
  let drive, fs = make_volume () in
  let reserved =
    match Fs.reserve fs with
    | Ok a -> a
    | Error e -> Alcotest.failf "reserve: %a" Fs.pp_error e
  in
  (match Fs.flush fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flush: %a" Fs.pp_error e);
  (* Crash: the reservation's owner never writes the page. *)
  match Fs.mount drive with
  | Error msg -> Alcotest.failf "remount: %s" msg
  | Ok crashed ->
      Alcotest.(check bool) "the leak survived the crash" false
        (Fs.is_free_in_map crashed reserved);
      let recovery = Patrol.recover crashed in
      Alcotest.(check bool) "the scan repaired the map" true
        (recovery.Patrol.r_map_repairs >= 1);
      Alcotest.(check bool) "the leaked page is free again" true
        (Fs.is_free_in_map crashed reserved)

(* {2 the spill file} *)

(* Quarantine verdicts beyond the descriptor table's 64 entries survive
   a remount through the catalogued spill file, and the allocator still
   refuses them. *)
let test_spill_survives_remount () =
  let drive, fs = make_volume ~geometry:{ tiny with Geometry.cylinders = 5 } () in
  let free =
    List.filter
      (fun i -> Fs.is_free_in_map fs (addr i))
      (List.init (Drive.sector_count drive) Fun.id)
  in
  Alcotest.(check bool) "room to overflow and still allocate" true
    (List.length free > 80);
  (* 64 fill the table; 6 spill. *)
  List.iteri (fun k i -> if k < 70 then Fs.quarantine fs (addr i)) free;
  Alcotest.(check int) "six spilled" 6 (List.length (Fs.spilled_table fs));
  (match Bad_sectors.flush fs with
  | Ok n -> Alcotest.(check int) "six written" 6 n
  | Error e -> Alcotest.failf "spill flush: %a" Bad_sectors.pp_error e);
  (match Fs.flush fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flush: %a" Fs.pp_error e);
  match Fs.mount drive with
  | Error msg -> Alcotest.failf "remount: %s" msg
  | Ok fs2 ->
      let spilled = addr (List.nth free 64) in
      (* Before the spill file is read, only the 64 tabled verdicts hold. *)
      Alcotest.(check bool) "not yet re-entered" false (Fs.spilled fs2 spilled);
      (match Bad_sectors.load fs2 with
      | Ok n -> Alcotest.(check int) "six adopted" 6 n
      | Error e -> Alcotest.failf "spill load: %a" Bad_sectors.pp_error e);
      Alcotest.(check bool) "the verdict survived the remount" true
        (Fs.spilled fs2 spilled);
      Alcotest.(check bool) "busy in the map" false (Fs.is_free_in_map fs2 spilled);
      Fs.mark_free fs2 spilled;
      Alcotest.(check bool) "mark_free refuses a spilled sector" false
        (Fs.is_free_in_map fs2 spilled)

(* {2 the health command} *)

let test_health_command () =
  let system = System.boot ~geometry:tiny () in
  Keyboard.feed (System.keyboard system) "health\nquit\n";
  let outcome = Executive.run system in
  Alcotest.(check bool) "both commands ran" true
    (outcome.Executive.commands_executed = 2 && outcome.Executive.quit);
  let text = Display.contents (System.display system) in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "reports the patrol cursor" true (contains "patrol:");
  Alcotest.(check bool) "reports the bad-sector stores" true (contains "spilled");
  Alcotest.(check bool) "reports the spill file" true (contains "no spill file");
  (* quit declared the consistency point: the pack reboots clean, with
     no recovery scan. *)
  Alcotest.(check bool) "quit left the volume clean" false
    (Fs.dirty (System.fs system))

let () =
  Alcotest.run "alto patrol"
    [
      ( "sweep",
        [
          ("marginal page relocated", `Quick, test_marginal_page_relocated);
          ( "leader relocation fixes catalogue",
            `Quick,
            test_leader_relocation_fixes_catalogue );
          ("deterministic under seed", `Quick, test_deterministic_under_seed);
        ] );
      ( "shutdown",
        [
          ("dirty flag lifecycle", `Quick, test_dirty_flag_lifecycle);
          ("crash recovery bounded", `Quick, test_crash_recovery_bounded);
          ("makeup lap after recovery", `Quick, test_makeup_lap_after_recovery);
          ( "abandoned reservation reclaimed",
            `Quick,
            test_abandoned_reservation_reclaimed );
        ] );
      ("spill", [ ("spill survives remount", `Quick, test_spill_survives_remount) ]);
      ("health", [ ("health command reports", `Quick, test_health_command) ]);
    ]
