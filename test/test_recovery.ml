(* The robustness machinery: scavenger, compacting scavenger, the hint
   recovery ladder, and installed hint files. *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Sector = Alto_disk.Sector
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module File_id = Alto_fs.File_id
module Label = Alto_fs.Label
module Page = Alto_fs.Page
module Leader = Alto_fs.Leader
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger
module Compactor = Alto_fs.Compactor
module Sweep = Alto_fs.Sweep
module Hints = Alto_fs.Hints
module Install = Alto_fs.Install

let small_geometry =
  { Geometry.diablo_31 with Geometry.model = "test disk"; cylinders = 20 }

let fresh_fs ?(geometry = small_geometry) () =
  let drive = Drive.create ~pack_id:7 geometry in
  (drive, Fs.format drive)

let check_ok pp what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %a" what pp e

let file_ok what r = check_ok File.pp_error what r
let dir_ok what r = check_ok Directory.pp_error what r

let scavenge_ok drive =
  match Scavenger.scavenge drive with
  | Ok x -> x
  | Error msg -> Alcotest.failf "scavenge: %s" msg

(* Quiesce a live handle: push its delayed track-buffer writes to the
   platter, the way the Executive does before any raw-pack work. The
   damage these tests inject is to a pack at rest — not to one with
   acknowledged writes still in core (that case is test_bio's). *)
let settle fs = ignore (Alto_fs.Bio.flush (Fs.bio fs))

let payload n seed =
  String.init n (fun i -> Char.chr (32 + ((i * 13) + seed) mod 95))

(* Create a catalogued file with [n] bytes of deterministic content. *)
let make_file fs root name n seed =
  let file = file_ok "create" (File.create fs ~name) in
  file_ok "write" (File.write_bytes file ~pos:0 (payload n seed));
  file_ok "flush" (File.flush_leader file);
  dir_ok "add" (Directory.add root ~name (File.leader_name file));
  settle fs;
  file

let reopen_by_name fs name =
  let root = dir_ok "root" (Directory.open_root fs) in
  match dir_ok "lookup" (Directory.lookup root name) with
  | Some e -> file_ok "open" (File.open_leader fs e.Directory.entry_file)
  | None -> Alcotest.failf "file %S not in the root directory" name

let check_content fs name n seed =
  let file = reopen_by_name fs name in
  let got = Bytes.to_string (file_ok "read" (File.read_bytes file ~pos:0 ~len:n)) in
  Alcotest.(check string) (name ^ " content intact") (payload n seed) got

(* {2 scavenger} *)

let test_scavenge_clean_disk () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  ignore (make_file fs root "One.txt" 1000 1);
  ignore (make_file fs root "Two.txt" 2000 2);
  let free_before = Fs.free_count fs in
  let fs', report = scavenge_ok drive in
  (* Two user files plus the root directory itself. *)
  Alcotest.(check int) "files found" 3 report.Scavenger.files_found;
  Alcotest.(check int) "nothing lost" 0 report.Scavenger.pages_lost;
  Alcotest.(check int) "no orphans" 0 report.Scavenger.orphans_adopted;
  Alcotest.(check bool) "root survived" false report.Scavenger.root_rebuilt;
  Alcotest.(check int) "free count identical" free_before (Fs.free_count fs');
  check_content fs' "One.txt" 1000 1;
  check_content fs' "Two.txt" 2000 2

let test_scavenge_after_descriptor_destroyed () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  ignore (make_file fs root "Data.txt" 1500 3);
  (* Obliterate the descriptor's pages — labels and all. *)
  let rng = Random.State.make [| 1 |] in
  for i = 1 to 1 + Fs.descriptor_page_count fs do
    Fault.corrupt_part rng drive (Disk_address.of_index i) Sector.Label;
    Fault.corrupt_part rng drive (Disk_address.of_index i) Sector.Value
  done;
  (match Fs.mount drive with
  | Ok _ -> Alcotest.fail "mount should fail with a destroyed descriptor"
  | Error _ -> ());
  let fs', report = scavenge_ok drive in
  Alcotest.(check int) "no user pages lost" 0 report.Scavenger.pages_lost;
  check_content fs' "Data.txt" 1500 3;
  (* And the rebuilt descriptor mounts normally. *)
  match Fs.mount drive with
  | Ok fs'' -> Alcotest.(check int) "free counts agree" (Fs.free_count fs') (Fs.free_count fs'')
  | Error msg -> Alcotest.failf "mount after scavenge: %s" msg

let test_orphan_adopted_under_leader_name () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  ignore (make_file fs root "Precious.txt" 800 4);
  (* Lose the directory entry — the only catalogue record. *)
  Alcotest.(check bool) "removed" true (dir_ok "remove" (Directory.remove root "Precious.txt"));
  settle fs;
  let fs', report = scavenge_ok drive in
  Alcotest.(check int) "one orphan adopted" 1 report.Scavenger.orphans_adopted;
  check_content fs' "Precious.txt" 800 4

let test_scrambled_directory_loses_names_not_files () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let sub = dir_ok "create" (Directory.create fs ~name:"Work.") in
  dir_ok "catalogue sub" (Directory.add root ~name:"Work." (File.leader_name sub));
  let file = file_ok "create" (File.create fs ~name:"Doc.txt") in
  file_ok "write" (File.write_bytes file ~pos:0 (payload 900 5));
  dir_ok "add" (Directory.add sub ~name:"Doc.txt" (File.leader_name file));
  settle fs;
  (* Scramble the subdirectory's data page: its entries are garbage now. *)
  let rng = Random.State.make [| 2 |] in
  let page1 = file_ok "page" (File.page_name sub 1) in
  Fault.corrupt_part rng drive page1.Page.addr Sector.Value;
  let fs', report = scavenge_ok drive in
  (* §3.4: "If a directory is destroyed, we don't lose any files, but we
     do lose some information." Doc.txt must survive, adopted into the
     root under its leader name. *)
  Alcotest.(check bool) "doc adopted" true (report.Scavenger.orphans_adopted >= 1);
  check_content fs' "Doc.txt" 900 5

let test_dangling_entry_removed () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = make_file fs root "Brief.txt" 300 6 in
  (* Delete the file but "forget" the directory entry. *)
  file_ok "delete" (File.delete file);
  settle fs;
  let fs', report = scavenge_ok drive in
  Alcotest.(check int) "dangling entry dropped" 1 report.Scavenger.entries_removed;
  let root' = dir_ok "root" (Directory.open_root fs') in
  Alcotest.(check bool) "no entry left" true
    (dir_ok "lookup" (Directory.lookup root' "Brief.txt") = None)

let test_stale_entry_address_fixed () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  ignore (make_file fs root "Move.txt" 600 7);
  (* Point the entry's hint somewhere absurd. *)
  Alcotest.(check bool) "poisoned" true
    (dir_ok "update" (Directory.update_address root "Move.txt" (Disk_address.of_index 400)));
  settle fs;
  let fs', report = scavenge_ok drive in
  Alcotest.(check int) "address fixed" 1 report.Scavenger.entries_fixed;
  check_content fs' "Move.txt" 600 7

let test_gap_truncates_file () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = make_file fs root "Long.txt" 2500 8 in
  (* Corrupt the label of page 3 of 5: pages 3-5 become unreachable. *)
  let victim = file_ok "page" (File.page_name file 3) in
  let rng = Random.State.make [| 3 |] in
  Fault.corrupt_part rng drive victim.Page.addr Sector.Label;
  let fs', report = scavenge_ok drive in
  Alcotest.(check int) "one incomplete file" 1 report.Scavenger.incomplete_files;
  Alcotest.(check bool) "pages lost" true (report.Scavenger.pages_lost >= 2);
  let survivor = reopen_by_name fs' "Long.txt" in
  Alcotest.(check int) "truncated to two pages" 2 (File.last_page survivor);
  let got = Bytes.to_string (file_ok "read" (File.read_bytes survivor ~pos:0 ~len:1024)) in
  Alcotest.(check string) "surviving prefix intact" (String.sub (payload 2500 8) 0 1024) got

let test_wrong_links_repaired () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = make_file fs root "Chain.txt" 1500 9 in
  (* Swap the next-links of pages 1 and 2 so the chain lies. *)
  let p1 = file_ok "p1" (File.page_name file 1) in
  let sector = Drive.peek drive p1.Page.addr in
  let words = sector.Sector.label in
  words.(5) <- Disk_address.to_word p1.Page.addr (* next := itself: nonsense *);
  Drive.poke drive p1.Page.addr Sector.Label words;
  let fs', report = scavenge_ok drive in
  Alcotest.(check bool) "links repaired" true (report.Scavenger.links_repaired >= 1);
  Alcotest.(check int) "nothing lost" 0 report.Scavenger.pages_lost;
  check_content fs' "Chain.txt" 1500 9;
  (* A second scavenge finds nothing left to repair. *)
  let _, report2 = scavenge_ok drive in
  Alcotest.(check int) "stable" 0 report2.Scavenger.links_repaired

let test_bad_sectors_quarantined () =
  let drive, fs = fresh_fs () in
  ignore fs;
  let bad = Disk_address.of_index 100 in
  Fault.make_bad drive bad;
  let fs', report = scavenge_ok drive in
  Alcotest.(check bool) "bad counted" true (report.Scavenger.bad_sectors >= 1);
  Alcotest.(check bool) "never allocatable" false (Fs.is_free_in_map fs' bad)

let test_value_verification_marks_bad_pages () =
  (* §3.5: "During scavenging any permanently bad pages are marked in
     the label with a special value so that they will never be used
     again." A page whose data surface fails (label still fine) is found
     by the value-verification pass, stamped bad, and its file truncated
     at the damage. *)
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = make_file fs root "Surface.dat" 2000 12 in
  let victim = file_ok "page" (File.page_name file 2) in
  Fault.make_value_unreadable drive victim.Page.addr;
  (* Without verification the damage goes unnoticed by the scavenger... *)
  let _, blind = scavenge_ok drive in
  Alcotest.(check int) "blind scavenge sees nothing" 0 blind.Scavenger.pages_marked_bad;
  (* ...and bites the reader instead. *)
  let f = reopen_by_name fs "Surface.dat" in
  (match File.read_bytes f ~pos:0 ~len:2000 with
  | Ok _ -> Alcotest.fail "read through a dead surface"
  | Error _ -> ());
  (* With verification the page is marked and the file truncated. *)
  let fs2, report =
    match Scavenger.scavenge ~verify_values:true drive with
    | Ok x -> x
    | Error m -> Alcotest.failf "%s" m
  in
  Alcotest.(check int) "one page marked bad" 1 report.Scavenger.pages_marked_bad;
  (match Alto_disk.Sector.part_of (Drive.peek drive victim.Page.addr) Alto_disk.Sector.Label
         |> Label.classify with
  | Label.Bad -> ()
  | Label.Valid _ | Label.Free | Label.Garbage _ ->
      Alcotest.fail "label does not carry the bad marker");
  Alcotest.(check bool) "never allocatable" false (Fs.is_free_in_map fs2 victim.Page.addr);
  let survivor = reopen_by_name fs2 "Surface.dat" in
  Alcotest.(check int) "truncated before the damage" 1 (File.last_page survivor);
  (match File.read_bytes survivor ~pos:0 ~len:(File.byte_length survivor) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "survivor unreadable: %a" File.pp_error e);
  (* A later ordinary scavenge keeps the quarantine. *)
  let _, again = scavenge_ok drive in
  Alcotest.(check bool) "marker persists as a bad sector" true
    (again.Scavenger.bad_sectors >= 1)

let test_duplicate_absolute_name () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = make_file fs root "Twin.txt" 400 10 in
  let p1 = file_ok "p1" (File.page_name file 1) in
  let original = Drive.peek drive p1.Page.addr in
  (* Forge a second sector claiming to be the same page. *)
  let forged = Disk_address.of_index 350 in
  Drive.poke drive forged Sector.Label original.Sector.label;
  Drive.poke drive forged Sector.Value original.Sector.value;
  let fs', report = scavenge_ok drive in
  Alcotest.(check int) "duplicate detected" 1 report.Scavenger.duplicate_pages;
  check_content fs' "Twin.txt" 400 10

let test_scavenge_heavy_decay () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  for i = 1 to 8 do
    ignore (make_file fs root (Printf.sprintf "F%d.dat" i) (400 * i) i)
  done;
  let rng = Random.State.make [| 99 |] in
  ignore (Fault.decay rng drive ~fraction:0.05);
  let fs', _report = scavenge_ok drive in
  (* Whatever survived must be structurally sound: every cataloged file
     opens and reads to its full length without error. *)
  let root' = dir_ok "root" (Directory.open_root fs') in
  List.iter
    (fun (e : Directory.entry) ->
      match File.open_leader fs' e.Directory.entry_file with
      | Error err ->
          Alcotest.failf "entry %S does not open: %a" e.Directory.entry_name
            File.pp_error err
      | Ok f -> (
          match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
          | Ok _ -> ()
          | Error err ->
              Alcotest.failf "entry %S does not read: %a" e.Directory.entry_name
                File.pp_error err))
    (dir_ok "entries" (Directory.entries root'));
  (* And a fresh mount agrees with the rebuilt handle. *)
  match Fs.mount drive with
  | Ok fs'' -> Alcotest.(check int) "maps agree" (Fs.free_count fs') (Fs.free_count fs'')
  | Error msg -> Alcotest.failf "mount: %s" msg

let test_scavenge_everything_destroyed () =
  (* Even a root directory loss is survivable: a new root is built and
     files are adopted into it. *)
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  ignore (make_file fs root "Last.txt" 700 11);
  let rng = Random.State.make [| 5 |] in
  (* Destroy the root directory's pages entirely. *)
  let root_fn = File.leader_name root in
  Fault.corrupt_part rng drive root_fn.Page.addr Sector.Label;
  let p1 = file_ok "p1" (File.page_name root 1) in
  Fault.corrupt_part rng drive p1.Page.addr Sector.Label;
  let fs', report = scavenge_ok drive in
  Alcotest.(check bool) "root rebuilt" true report.Scavenger.root_rebuilt;
  check_content fs' "Last.txt" 700 11

(* {2 compacting scavenger} *)

let fragment_fs () =
  (* Build files under a scattering allocator so their pages interleave. *)
  let drive, fs = fresh_fs () in
  Fs.set_policy fs (Fs.Scattered (Random.State.make [| 21 |]));
  let root = dir_ok "root" (Directory.open_root fs) in
  let names = [ ("Alpha.dat", 3000, 31); ("Beta.dat", 2000, 32); ("Gamma.dat", 2500, 33) ] in
  List.iter (fun (name, n, seed) -> ignore (make_file fs root name n seed)) names;
  (drive, fs, names)

let test_compact_makes_consecutive () =
  let _drive, fs, names = fragment_fs () in
  let fragmented =
    let f = reopen_by_name fs "Alpha.dat" in
    check_ok File.pp_error "fraction" (Compactor.consecutive_fraction fs f)
  in
  Alcotest.(check bool) "fragmented before" true (fragmented < 0.9);
  let report =
    match Compactor.compact fs with
    | Ok r -> r
    | Error msg -> Alcotest.failf "compact: %s" msg
  in
  Alcotest.(check bool) "files compacted" true (report.Compactor.files_consecutive >= 3);
  List.iter
    (fun (name, n, seed) ->
      check_content fs name n seed;
      let f = reopen_by_name fs name in
      let fraction =
        check_ok File.pp_error "fraction" (Compactor.consecutive_fraction fs f)
      in
      Alcotest.(check (float 0.001)) (name ^ " fully consecutive") 1.0 fraction;
      Alcotest.(check bool) (name ^ " leader flag") true
        (File.leader f).Leader.maybe_consecutive)
    names

let test_compact_then_mount_and_scavenge_stable () =
  let drive, fs, names = fragment_fs () in
  (match Compactor.compact fs with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "compact: %s" msg);
  (* A fresh mount sees the same world. *)
  let fs' =
    match Fs.mount drive with Ok f -> f | Error msg -> Alcotest.failf "mount: %s" msg
  in
  List.iter (fun (name, n, seed) -> check_content fs' name n seed) names;
  (* The scavenger finds nothing to fix. *)
  let _, report = scavenge_ok drive in
  Alcotest.(check int) "no repairs" 0 report.Scavenger.links_repaired;
  Alcotest.(check int) "no loss" 0 report.Scavenger.pages_lost;
  Alcotest.(check int) "no orphans" 0 report.Scavenger.orphans_adopted

let test_compact_full_disk () =
  (* The swap-with-buffer permutation needs no free sectors. *)
  let _drive, fs = fresh_fs () in
  Fs.set_policy fs (Fs.Scattered (Random.State.make [| 22 |]));
  let root = dir_ok "root" (Directory.open_root fs) in
  let rec fill i =
    match File.create fs ~name:(Printf.sprintf "Fill%d." i) with
    | Ok f -> (
        dir_ok "add" (Directory.add root ~name:(Printf.sprintf "Fill%d." i) (File.leader_name f));
        match File.write_bytes f ~pos:0 (payload 1800 i) with
        | Ok () -> fill (i + 1)
        | Error _ -> i)
    | Error _ -> i
  in
  let made = fill 0 in
  Alcotest.(check bool) "disk is crowded" true (Fs.free_count fs < 40);
  (match Compactor.compact fs with
  | Ok r -> Alcotest.(check bool) "moves happened" true (r.Compactor.moves > 0)
  | Error msg -> Alcotest.failf "compact full disk: %s" msg);
  (* Spot-check some files (later ones may have failed mid-write when
     the disk filled; check the early complete ones). *)
  for i = 0 to min 3 (made - 1) do
    check_content fs (Printf.sprintf "Fill%d." i) 1800 i
  done

(* {2 the hint ladder} *)

let ladder_setup () =
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let file = make_file fs root "Target.txt" 1400 40 in
  (drive, fs, root, file)

let request ?page_hint ?leader_hint ?fid () =
  {
    Hints.req_name = "Target.txt";
    req_fid = fid;
    req_page = 2;
    req_page_hint = page_hint;
    req_leader_hint = leader_hint;
  }

let rungs_of (s : Hints.success) = List.map (fun a -> a.Hints.rung) s.Hints.attempts

let run_ladder fs root req =
  match Hints.read_page fs ~directory:root req with
  | Ok s -> s
  | Error f -> Alcotest.failf "ladder failed: %s" f.Hints.reason

let test_ladder_direct () =
  let _drive, fs, root, file = ladder_setup () in
  let p2 = file_ok "p2" (File.page_name file 2) in
  let s =
    run_ladder fs root
      (request ~fid:(File.fid file) ~page_hint:p2.Page.addr
         ~leader_hint:(File.leader_name file).Page.addr ())
  in
  Alcotest.(check bool) "one attempt" true (rungs_of s = [ Hints.Direct ]);
  Alcotest.(check bool) "right page" true
    (Disk_address.equal s.Hints.resolved.Page.addr p2.Page.addr)

let test_ladder_leader_chain () =
  let _drive, fs, root, file = ladder_setup () in
  (* A wrong page hint, but a good leader hint. *)
  let s =
    run_ladder fs root
      (request ~fid:(File.fid file)
         ~page_hint:(Disk_address.of_index 333)
         ~leader_hint:(File.leader_name file).Page.addr ())
  in
  Alcotest.(check bool) "two rungs" true
    (rungs_of s = [ Hints.Direct; Hints.Leader_chain ])

let test_ladder_directory_fid () =
  let _drive, fs, root, file = ladder_setup () in
  let s =
    run_ladder fs root
      (request ~fid:(File.fid file)
         ~page_hint:(Disk_address.of_index 333)
         ~leader_hint:(Disk_address.of_index 222) ())
  in
  Alcotest.(check bool) "three rungs" true
    (rungs_of s = [ Hints.Direct; Hints.Leader_chain; Hints.Directory_fid ])

let test_ladder_directory_name () =
  let _drive, fs, root, file = ladder_setup () in
  (* Recreate the file under the same name: the old FV is dead. *)
  let old_fid = File.fid file in
  file_ok "delete" (File.delete file);
  Alcotest.(check bool) "deleted from dir" true (dir_ok "rm" (Directory.remove root "Target.txt"));
  let file2 = make_file fs root "Target.txt" 1400 41 in
  Alcotest.(check bool) "new fid" false (File_id.equal old_fid (File.fid file2));
  let s = run_ladder fs root (request ~fid:old_fid ~page_hint:(Disk_address.of_index 333) ()) in
  Alcotest.(check bool) "reaches name rung" true
    (List.mem Hints.Directory_name (rungs_of s));
  Alcotest.(check bool) "found the recreated file" true
    (File_id.equal s.Hints.resolved.Page.abs.Page.fid (File.fid file2))

let test_ladder_scavenge () =
  let _drive, fs, root, file = ladder_setup () in
  (* The entry is lost and every hint is stale: only the scavenger can
     find the file again (it adopts it under its leader name). *)
  let fid = File.fid file in
  Alcotest.(check bool) "entry dropped" true (dir_ok "rm" (Directory.remove root "Target.txt"));
  let s = run_ladder fs root (request ~fid ~page_hint:(Disk_address.of_index 333) ()) in
  Alcotest.(check bool) "scavenged" true (List.mem Hints.Scavenge (rungs_of s));
  Alcotest.(check bool) "right file" true
    (File_id.equal s.Hints.resolved.Page.abs.Page.fid fid);
  (* The rungs get progressively more expensive. *)
  let time rung =
    match List.find_opt (fun a -> a.Hints.rung = rung) s.Hints.attempts with
    | Some a -> a.Hints.elapsed_us
    | None -> Alcotest.failf "rung not attempted"
  in
  Alcotest.(check bool) "scavenge dwarfs direct" true (time Hints.Scavenge > time Hints.Direct)

let test_consecutive_file_arithmetic () =
  (* §3.6: "A program is free to assume that a file is consecutive and,
     knowing the address ai of page i, to compute the address of page j
     as ai + j - i. The label check will prevent any incorrect
     overwriting of data." *)
  let drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let (_ : File.t) = make_file fs root "Consec.dat" 2048 50 in
  (match Compactor.compact fs with Ok _ -> () | Error m -> Alcotest.failf "compact: %s" m);
  let file = reopen_by_name fs "Consec.dat" in
  let p1 = file_ok "p1" (File.page_name file 1) in
  (* Arithmetic for page 4 from page 1. *)
  let guessed = Disk_address.offset p1.Page.addr 3 in
  let fn = Page.full_name (File.fid file) ~page:4 ~addr:guessed in
  (match Page.read drive fn with
  | Ok (label, _) -> Alcotest.(check int) "label confirms page 4" 4 label.Alto_fs.Label.page
  | Error e -> Alcotest.failf "arithmetic hint should hit: %a" Page.pp_error e);
  (* A wrong guess is refuted, not destructive. *)
  let bogus = Page.full_name (File.fid file) ~page:9 ~addr:guessed in
  match Page.write drive bogus (Array.make Sector.value_words Word.zero) with
  | Ok _ -> Alcotest.fail "wrong-page write must be refused"
  | Error (Page.Hint_failed _) -> (
      (* And the data is untouched. *)
      match Page.read drive fn with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "page damaged: %a" Page.pp_error e)
  | Error e -> Alcotest.failf "unexpected: %a" Page.pp_error e

(* {2 installed hint files} *)

let install_ok what r = check_ok Install.pp_error what r

let test_install_save_load_fast_open () =
  let _drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let names = [ "Scratch1."; "Scratch2."; "Journal."; "Messages." ] in
  let state = install_ok "install" (Install.install fs ~directory:root ~names) in
  install_ok "save" (Install.save fs ~directory:root ~state_name:"Editor.state" state);
  (* A fresh program instance: load the state file and open by hints. *)
  let loaded =
    match install_ok "load" (Install.load fs ~directory:root ~state_name:"Editor.state") with
    | Some s -> s
    | None -> Alcotest.fail "state file missing"
  in
  Alcotest.(check int) "four entries" 4 (List.length loaded);
  (match Install.fast_open fs loaded with
  | Ok files -> Alcotest.(check int) "all opened" 4 (List.length files)
  | Error (`Reinstall_required msg) -> Alcotest.failf "fast open: %s" msg);
  (* Installing again is idempotent: same files, same hints. *)
  let again = install_ok "reinstall" (Install.install fs ~directory:root ~names) in
  List.iter2
    (fun (a : Install.entry) (b : Install.entry) ->
      Alcotest.(check bool) "same file id" true
        (File_id.equal a.Install.leader.Page.abs.Page.fid b.Install.leader.Page.abs.Page.fid))
    state again

let test_install_hint_failure_forces_reinstall () =
  let _drive, fs = fresh_fs () in
  let root = dir_ok "root" (Directory.open_root fs) in
  let names = [ "Aux1."; "Aux2." ] in
  let state = install_ok "install" (Install.install fs ~directory:root ~names) in
  install_ok "save" (Install.save fs ~directory:root ~state_name:"Prog.state" state);
  (* The scratch file gets deleted behind the program's back. *)
  let victim = reopen_by_name fs "Aux1." in
  file_ok "delete" (File.delete victim);
  ignore (dir_ok "rm" (Directory.remove root "Aux1."));
  let loaded =
    Option.get (install_ok "load" (Install.load fs ~directory:root ~state_name:"Prog.state"))
  in
  (match Install.fast_open fs loaded with
  | Ok _ -> Alcotest.fail "stale hints must not open"
  | Error (`Reinstall_required _) -> ());
  (* §3.6: "the program must repeat the installation phase." *)
  let state' = install_ok "reinstall" (Install.install fs ~directory:root ~names) in
  install_ok "save" (Install.save fs ~directory:root ~state_name:"Prog.state" state');
  match Install.fast_open fs state' with
  | Ok files -> Alcotest.(check int) "whole suite reopened" 2 (List.length files)
  | Error (`Reinstall_required msg) -> Alcotest.failf "after reinstall: %s" msg

(* {2 property: random damage never makes the volume unrecoverable} *)

let prop_scavenge_always_recovers =
  QCheck.Test.make ~name:"scavenge always yields a mountable volume" ~count:20
    QCheck.(pair (int_bound 1000) (int_bound 80))
    (fun (seed, per_mille) ->
      let fraction = float_of_int per_mille /. 1000.0 in
      let drive, fs = fresh_fs () in
      let root =
        match Directory.open_root fs with Ok r -> r | Error _ -> QCheck.assume_fail ()
      in
      for i = 1 to 5 do
        ignore (make_file fs root (Printf.sprintf "P%d." i) (300 * i) i)
      done;
      let rng = Random.State.make [| seed |] in
      ignore (Fault.decay rng drive ~fraction);
      match Scavenger.scavenge drive with
      | Error _ -> false
      | Ok (fs', _) -> (
          (* Invariants: map matches labels, all catalogued files read. *)
          match Directory.open_root fs' with
          | Error _ -> false
          | Ok root' -> (
              match Directory.entries root' with
              | Error _ -> false
              | Ok entries ->
                  List.for_all
                    (fun (e : Directory.entry) ->
                      match File.open_leader fs' e.Directory.entry_file with
                      | Error _ -> false
                      | Ok f -> (
                          match File.read_bytes f ~pos:0 ~len:(File.byte_length f) with
                          | Ok _ -> true
                          | Error _ -> false))
                    entries
                  && Result.is_ok (Fs.mount drive))))

let () =
  Alcotest.run "alto_fs recovery"
    [
      ( "scavenger",
        [
          ("clean disk", `Quick, test_scavenge_clean_disk);
          ("descriptor destroyed", `Quick, test_scavenge_after_descriptor_destroyed);
          ("orphan adopted", `Quick, test_orphan_adopted_under_leader_name);
          ("scrambled directory", `Quick, test_scrambled_directory_loses_names_not_files);
          ("dangling entry removed", `Quick, test_dangling_entry_removed);
          ("stale entry address fixed", `Quick, test_stale_entry_address_fixed);
          ("gap truncates file", `Quick, test_gap_truncates_file);
          ("wrong links repaired", `Quick, test_wrong_links_repaired);
          ("bad sectors quarantined", `Quick, test_bad_sectors_quarantined);
          ("duplicate absolute name", `Quick, test_duplicate_absolute_name);
          ("value verification marks bad pages", `Quick, test_value_verification_marks_bad_pages);
          ("heavy decay", `Quick, test_scavenge_heavy_decay);
          ("everything destroyed", `Quick, test_scavenge_everything_destroyed);
          QCheck_alcotest.to_alcotest ~verbose:false prop_scavenge_always_recovers;
        ] );
      ( "compactor",
        [
          ("makes files consecutive", `Quick, test_compact_makes_consecutive);
          ("stable under mount+scavenge", `Quick, test_compact_then_mount_and_scavenge_stable);
          ("full disk", `Quick, test_compact_full_disk);
        ] );
      ( "hints",
        [
          ("direct", `Quick, test_ladder_direct);
          ("leader chain", `Quick, test_ladder_leader_chain);
          ("directory by FV", `Quick, test_ladder_directory_fid);
          ("directory by name", `Quick, test_ladder_directory_name);
          ("scavenge rung", `Quick, test_ladder_scavenge);
          ("consecutive arithmetic", `Quick, test_consecutive_file_arithmetic);
        ] );
      ( "install",
        [
          ("save/load/fast open", `Quick, test_install_save_load_fast_open);
          ("hint failure forces reinstall", `Quick, test_install_hint_failure_forces_reinstall);
        ] );
    ]
