(** The Executive (§5.1): "The Executive accepts user commands from the
    keyboard and executes them, often by calling the loader to invoke a
    program the user has requested."

    Commands are read from the system's keyboard stream (so type-ahead
    fed before a program switch is interpreted afterwards, per §5.2) and
    output goes to the display stream. Before invoking anything, the
    whole command line is written to the file [Com.cm] — §4's "most
    conservative solution": programs written in any environment read
    their arguments back from a disk file with a standard name.

    Built-in commands: [ls], [type f], [put f text…], [delete f],
    [rename old new], [copy src dst], [dump codefile], [scavenge], [compact], [levels], [junta n],
    [counterjunta], [cache] (label-cache, track-buffer-cache and
    elevator-scheduler statistics), [sync] (flush delayed track-buffer
    writes and report what was coalesced), [health] (patrol progress,
    bad-sector census and the
    volume dirty flag), [trace [n]], [run prog], [compile src dst] (the BCPL compiler,
    from a source file on the pack to a code file on the pack),
    [assemble src dst] (likewise for assembler source), and
    [quit]. A bare name that matches a catalogued code file is run,
    loader-style.

    Between commands the Executive donates the idle moment to the disk
    patrol (one {!Alto_fs.Patrol.tick} per command, when the disk code
    at level 5 is resident), and [quit] marks the volume clean so the
    next boot skips recovery. *)

type outcome = {
  commands_executed : int;
  quit : bool;  (** [quit] was typed (as opposed to type-ahead running dry). *)
}

val command_file_name : string
(** ["Com.cm"]. *)

val run : ?max_commands:int -> System.t -> outcome
(** Read and execute commands until the keyboard runs dry, [quit], or
    the command budget is exhausted. *)
