module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Instr = Alto_machine.Instr
module Sector = Alto_disk.Sector
module Geometry = Alto_disk.Geometry
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Patrol = Alto_fs.Patrol
module Bad_sectors = Alto_fs.Bad_sectors
module Scavenger = Alto_fs.Scavenger
module Flight = Alto_fs.Flight
module Zone = Alto_zones.Zone
module Stream = Alto_streams.Stream
module Disk_stream = Alto_streams.Disk_stream
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display
module World = Alto_world.World

type handle_target = File_obj of File.t | Stream_obj of Stream.t

type t = {
  memory : Memory.t;
  cpu : Cpu.t;
  drive : Drive.t;
  mutable fs : Fs.t;
  mutable patrol : Patrol.t;
  keyboard : Keyboard.t;
  display : Display.t;
  mutable zone : Zone.t;
  objects : (int, handle_target) Hashtbl.t;
  mutable next_handle : int;
  mutable resident : int;
  mutable last_error : string option;
  mutable overlay_loader : (string -> (int, string) result) option;
  mutable server_tick : (unit -> int) option;
  mutable replica_tick : (unit -> int) option;
  mutable peer_report : (unit -> string list) option;
}

let user_base = 1024

let memory t = t.memory
let cpu t = t.cpu
let drive t = t.drive
let fs t = t.fs

let set_fs t fs =
  t.fs <- fs;
  (* The patrol's cumulative totals belong to the volume, not the
     machine: a new volume gets a fresh patrol resuming at the new
     descriptor's cursor. *)
  t.patrol <- Patrol.create fs

let patrol t = t.patrol
let patrol_tick t = Patrol.tick t.patrol
let keyboard t = t.keyboard
let display t = t.display
let system_zone t = t.zone
let resident_level t = t.resident
let user_boundary t = Level.boundary ~keep:t.resident
let last_error t = t.last_error
let set_overlay_loader t f = t.overlay_loader <- Some f
let set_server_tick t f = t.server_tick <- Some f
let server_tick t = t.server_tick
let set_replica_tick t f = t.replica_tick <- Some f
let replica_tick t = t.replica_tick
let set_peer_report t f = t.peer_report <- Some f
let peer_report t = t.peer_report

(* {2 Level installation} *)

let removed_word =
  match Instr.encode (Instr.Sys Level.removed_trap_code) with
  | [ w ] -> w
  | _ -> assert false

let install_level t (level : Level.t) =
  let base = Level.base level.Level.index in
  Memory.fill t.memory ~pos:base ~len:level.Level.size_words Word.zero;
  List.iteri
    (fun k service ->
      let words = Array.of_list (Level.stub_words service) in
      Memory.write_block t.memory ~pos:(base + (2 * k)) words)
    level.Level.services

let make_system_zone memory =
  let region_base = Level.base 13 in
  Zone.format ~name:"system free storage" memory ~pos:region_base
    ~len:(Level.find 13).Level.size_words

let install_all_levels t =
  List.iter (install_level t) Level.all;
  t.zone <- make_system_zone t.memory

let junta t ~keep =
  if keep < 1 || keep > Level.count then invalid_arg "System.junta: keep out of 1..13";
  if keep < t.resident then begin
    let top = Level.boundary ~keep in
    let bottom = Level.boundary ~keep:t.resident in
    Memory.fill t.memory ~pos:bottom ~len:(top - bottom) removed_word;
    (* Losing level 2 loses the type-ahead buffer. *)
    if keep < 2 then (Keyboard.stream t.keyboard).Alto_streams.Stream.reset ();
    t.resident <- keep
  end

let counter_junta t =
  install_all_levels t;
  t.resident <- Level.count

(* {2 Boot} *)

let boot ?(geometry = Geometry.diablo_31) ?drive ?(finish_recovery_lap = true) () =
  let drive = match drive with Some d -> d | None -> Drive.create ~pack_id:1 geometry in
  (* An unmountable pack is wreckage, not a blank: scavenge rebuilds the
     descriptor from the labels (§3.6's last rung) before boot is allowed
     to reach for the formatter and wipe whatever the labels still say. *)
  let fs =
    match Fs.mount drive with
    | Ok fs -> fs
    | Error _ -> (
        match Scavenger.scavenge drive with
        | Ok (fs, _report) -> fs
        | Error _ -> Fs.format drive)
  in
  (* The full machine arms the black box; raw library users never see
     the file appear on its own. *)
  Flight.enable ();
  (* Re-enter the bad-sector verdicts that overflowed the descriptor
     table, then — if the pack crashed — adopt the flight record the
     previous incarnation sealed (recovery writes over the volume, so
     read the black box first) and finish the patrol lap that was in
     flight before running anything on the volume. *)
  (match Bad_sectors.load fs with Ok _ | Error _ -> ());
  let makeup_until =
    if not (Fs.dirty fs) then 0
    else begin
      ignore (Flight.adopt fs : string option);
      let recovery = Patrol.recover fs in
      if finish_recovery_lap then recovery.Patrol.resumed_at else 0
    end
  in
  let memory = Memory.create () in
  let t =
    {
      memory;
      cpu = Cpu.create memory;
      drive;
      fs;
      patrol = Patrol.create ~makeup_until fs;
      keyboard = Keyboard.create ();
      display = Display.create ();
      zone = make_system_zone memory;
      objects = Hashtbl.create 16;
      next_handle = 1;
      resident = Level.count;
      last_error = None;
      overlay_loader = None;
      server_tick = None;
      replica_tick = None;
      peer_report = None;
    }
  in
  install_all_levels t;
  t

(* {2 Handles and VM strings} *)

let new_handle t target =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Hashtbl.replace t.objects h target;
  h

let register_file t file = new_handle t (File_obj file)

let file_of_handle t h =
  match Hashtbl.find_opt t.objects h with
  | Some (File_obj f) -> Some f
  | Some (Stream_obj _) | None -> None

let stream_of_handle t h =
  match Hashtbl.find_opt t.objects h with
  | Some (Stream_obj s) -> Some s
  | Some (File_obj _) | None -> None

let read_vm_string t addr =
  let len = Word.to_int (Memory.read t.memory addr) in
  Memory.read_string t.memory ~pos:(addr + 1) ~len

let write_vm_string t addr s =
  Memory.write t.memory addr (Word.of_int_exn (String.length s));
  Memory.write_string t.memory ~pos:(addr + 1) s

(* {2 The dispatcher} *)

let ok cpu = Cpu.set_ac cpu 3 Word.zero

let fail t cpu msg =
  t.last_error <- Some msg;
  Cpu.set_ac cpu 3 Word.one

let lookup_in_root t name =
  match Directory.open_root t.fs with
  | Error _ -> None
  | Ok root -> (
      match Directory.lookup root name with
      | Ok (Some e) -> Some (root, e)
      | Ok None | Error _ -> None)

let open_file_by_name t name =
  match lookup_in_root t name with
  | None -> None
  | Some (_, e) -> (
      match File.open_leader t.fs e.Directory.entry_file with
      | Ok f -> Some f
      | Error _ -> None)

let service_out_load t cpu =
  match file_of_handle t (Word.to_int (Cpu.ac cpu 0)) with
  | None -> fail t cpu "OutLoad: bad file handle"
  | Some file -> (
      (* The revived world must see AC0 = 0 ("written" false); the world
         that made the call continues with AC0 = 1. *)
      Cpu.set_ac cpu 0 Word.zero;
      Cpu.set_ac cpu 3 Word.zero;
      match World.out_load cpu file with
      | Ok () -> Cpu.set_ac cpu 0 Word.one
      | Error e -> fail t cpu (Format.asprintf "OutLoad: %a" World.pp_error e))

let service_in_load t cpu =
  match file_of_handle t (Word.to_int (Cpu.ac cpu 0)) with
  | None -> fail t cpu "InLoad: bad file handle"
  | Some file -> (
      let len =
        min World.max_message_words
          (Word.to_int (Memory.read t.memory (World.message_area - 1)))
      in
      let message = Memory.read_block t.memory ~pos:World.message_area ~len in
      match World.in_load cpu file ~message with
      | Ok () -> ()
      | Error e -> fail t cpu (Format.asprintf "InLoad: %a" World.pp_error e))

let service_disk_transfer t cpu ~write =
  let da = Word.to_int (Cpu.ac cpu 0) in
  let buffer = Word.to_int (Cpu.ac cpu 1) in
  if da >= Drive.sector_count t.drive then fail t cpu "Disk: address beyond disk"
  else begin
    let addr = Disk_address.of_index da in
    (* The raw transfer bypasses every cache: a read must see any
       delayed write the track buffers hold for the sector, and a raw
       value write (no label, so no generation bump) leaves a buffered
       copy stale. Flush-through before, shed the sector after. *)
    ignore (Alto_fs.Bio.flush (Fs.bio t.fs));
    (if write then Alto_fs.Bio.invalidate (Fs.bio t.fs) addr);
    let value =
      if write then Memory.read_block t.memory ~pos:buffer ~len:Sector.value_words
      else Array.make Sector.value_words Word.zero
    in
    let op =
      if write then { Drive.op_none with Drive.value = Some Drive.Write }
      else { Drive.op_none with Drive.value = Some Drive.Read }
    in
    match Alto_disk.Reliable.run t.drive addr op ~value () with
    | Ok () ->
        if not write then Memory.write_block t.memory ~pos:buffer value;
        ok cpu
    | Error e -> fail t cpu (Format.asprintf "Disk: %a" Drive.pp_error e)
  end

let service_allocate t cpu =
  if t.resident < 13 then fail t cpu "Allocate: system free storage was removed"
  else
    match Zone.allocate t.zone (Word.to_int (Cpu.ac cpu 0)) with
    | addr ->
        Cpu.set_ac cpu 0 (Word.of_int addr);
        ok cpu
    | exception Zone.Out_of_space _ -> fail t cpu "Allocate: out of space"
    | exception Zone.Corrupt msg -> fail t cpu ("Allocate: " ^ msg)

let service_free t cpu =
  if t.resident < 13 then fail t cpu "Free: system free storage was removed"
  else
    match Zone.release t.zone (Word.to_int (Cpu.ac cpu 0)) with
    | () -> ok cpu
    | exception Zone.Corrupt msg -> fail t cpu ("Free: " ^ msg)

let service_open_file t cpu =
  let name = read_vm_string t (Word.to_int (Cpu.ac cpu 0)) in
  let mode =
    match Word.to_int (Cpu.ac cpu 1) with
    | 0 -> Disk_stream.Read_only
    | 1 -> Disk_stream.Write_only
    | _ -> Disk_stream.Read_write
  in
  match open_file_by_name t name with
  | None -> fail t cpu (Printf.sprintf "OpenFile: no file %S" name)
  | Some file ->
      let stream = Disk_stream.open_file ~mode file in
      Cpu.set_ac cpu 0 (Word.of_int (new_handle t (Stream_obj stream)));
      ok cpu

let with_stream t cpu f =
  match stream_of_handle t (Word.to_int (Cpu.ac cpu 0)) with
  | None -> fail t cpu "bad stream handle"
  | Some stream -> (
      match f stream with
      | () -> ok cpu
      | exception Stream.Not_supported { operation; _ } ->
          fail t cpu ("stream does not support " ^ operation)
      | exception Stream.Closed _ -> fail t cpu "stream is closed"
      | exception Disk_stream.Io msg -> fail t cpu msg
      | exception Invalid_argument msg -> fail t cpu msg)

let service_create_file t cpu =
  let name = read_vm_string t (Word.to_int (Cpu.ac cpu 0)) in
  match Directory.open_root t.fs with
  | Error e -> fail t cpu (Format.asprintf "CreateFile: %a" Directory.pp_error e)
  | Ok root -> (
      match Directory.lookup root name with
      | Ok (Some _) -> ok cpu (* already there: creation is idempotent *)
      | Error e -> fail t cpu (Format.asprintf "CreateFile: %a" Directory.pp_error e)
      | Ok None -> (
          match File.create t.fs ~name with
          | Error e -> fail t cpu (Format.asprintf "CreateFile: %a" File.pp_error e)
          | Ok file -> (
              match Directory.add root ~name (File.leader_name file) with
              | Ok () -> ok cpu
              | Error e -> fail t cpu (Format.asprintf "CreateFile: %a" Directory.pp_error e))))

let service_delete_file t cpu =
  let name = read_vm_string t (Word.to_int (Cpu.ac cpu 0)) in
  match lookup_in_root t name with
  | None -> fail t cpu (Printf.sprintf "DeleteFile: no file %S" name)
  | Some (root, e) -> (
      match File.open_leader t.fs e.Directory.entry_file with
      | Error err -> fail t cpu (Format.asprintf "DeleteFile: %a" File.pp_error err)
      | Ok file -> (
          match File.delete file with
          | Error err -> fail t cpu (Format.asprintf "DeleteFile: %a" File.pp_error err)
          | Ok () -> (
              match Directory.remove root name with
              | Ok _ -> ok cpu
              | Error err ->
                  fail t cpu (Format.asprintf "DeleteFile: %a" Directory.pp_error err))))

let dispatch t cpu code =
  match code with
  | 1 -> service_out_load t cpu
  | 2 -> service_in_load t cpu
  | 3 ->
      counter_junta t;
      ok cpu
  | 10 ->
      (* StackFrame: push AC0 words of frame, return its base. *)
      let fp = Word.to_int (Cpu.frame_pointer cpu) - Word.to_int (Cpu.ac cpu 0) in
      Cpu.set_frame_pointer cpu (Word.of_int fp);
      Cpu.set_ac cpu 0 (Word.of_int fp);
      ok cpu
  | 20 -> service_disk_transfer t cpu ~write:false
  | 21 -> service_disk_transfer t cpu ~write:true
  | 22 ->
      (* DiskPatrol: one verify slice during an idle moment; AC0 reports
         how many pages the tick moved to safety. *)
      let report = Patrol.tick t.patrol in
      Cpu.set_ac cpu 0 (Word.of_int report.Patrol.relocated);
      ok cpu
  | 23 -> (
      (* ServerTick: one turn of whatever request server is attached —
         admissions plus activity steps made, reported in AC0. *)
      match t.server_tick with
      | None -> fail t cpu "ServerTick: no server attached"
      | Some tick ->
          Cpu.set_ac cpu 0 (Word.of_int (tick ()));
          ok cpu)
  | 24 -> (
      (* ReplicaTick: one turn of the distributed audit, when this
         machine is enrolled in a replica fleet; AC0 reports progress
         units (packets handled + state-machine steps). *)
      match t.replica_tick with
      | None -> fail t cpu "ReplicaTick: no replica fleet attached"
      | Some tick ->
          Cpu.set_ac cpu 0 (Word.of_int (tick ()));
          ok cpu)
  | 30 -> service_allocate t cpu
  | 31 -> service_free t cpu
  | 40 -> service_open_file t cpu
  | 41 ->
      with_stream t cpu (fun s ->
          s.Stream.close ();
          Hashtbl.remove t.objects (Word.to_int (Cpu.ac cpu 0)))
  | 42 ->
      with_stream t cpu (fun s ->
          match s.Stream.get () with
          | Some item ->
              Cpu.set_ac cpu 0 (Word.of_int item);
              Cpu.set_ac cpu 1 Word.zero
          | None ->
              Cpu.set_ac cpu 0 Word.zero;
              Cpu.set_ac cpu 1 Word.one)
  | 43 -> with_stream t cpu (fun s -> s.Stream.put (Word.to_int (Cpu.ac cpu 1)))
  | 44 -> with_stream t cpu (fun s -> s.Stream.reset ())
  | 45 ->
      with_stream t cpu (fun s ->
          Cpu.set_ac cpu 0 (Word.of_int (s.Stream.control "position" 0)))
  | 46 ->
      with_stream t cpu (fun s ->
          ignore (s.Stream.control "set-position" (Word.to_int (Cpu.ac cpu 1))))
  | 47 ->
      with_stream t cpu (fun s ->
          Cpu.set_ac cpu 0 (Word.of_int (s.Stream.control "length" 0)))
  | 50 ->
      let name = read_vm_string t (Word.to_int (Cpu.ac cpu 0)) in
      Cpu.set_ac cpu 0 (if lookup_in_root t name <> None then Word.one else Word.zero);
      ok cpu
  | 51 -> service_create_file t cpu
  | 52 -> service_delete_file t cpu
  | 60 -> (
      match (Keyboard.stream t.keyboard).Stream.get () with
      | Some c ->
          Cpu.set_ac cpu 0 (Word.of_int c);
          Cpu.set_ac cpu 1 Word.zero;
          ok cpu
      | None ->
          Cpu.set_ac cpu 0 Word.zero;
          Cpu.set_ac cpu 1 Word.one;
          ok cpu)
  | 61 ->
      Cpu.set_ac cpu 0 (Word.of_int (Keyboard.pending t.keyboard));
      ok cpu
  | 70 ->
      (Display.stream t.display).Stream.put (Word.to_int (Cpu.ac cpu 0));
      ok cpu
  | 71 ->
      let s = read_vm_string t (Word.to_int (Cpu.ac cpu 0)) in
      Stream.put_string (Display.stream t.display) s;
      ok cpu
  | 82 -> (
      match t.overlay_loader with
      | None -> fail t cpu "LoadOverlay: no loader installed"
      | Some load -> (
          let name = read_vm_string t (Word.to_int (Cpu.ac cpu 0)) in
          match load name with
          | Ok entry ->
              Cpu.set_ac cpu 0 (Word.of_int_exn entry);
              ok cpu
          | Error msg -> fail t cpu ("LoadOverlay: " ^ msg)))
  | 80 ->
      let keep = Word.to_int (Cpu.ac cpu 0) in
      if keep < 1 || keep > Level.count then fail t cpu "Junta: keep out of 1..13"
      else begin
        junta t ~keep;
        ok cpu
      end
  | _ -> fail t cpu (Printf.sprintf "unknown service code %d" code)

let handler t : Vm.handler =
 fun cpu code ->
  if code = Level.removed_trap_code then Vm.Sys_stop Level.removed_trap_code
  else
    match Level.service_by_code code with
    | None ->
        t.last_error <- Some (Printf.sprintf "no such service: SYS %d" code);
        Vm.Sys_stop Level.removed_trap_code
    | Some (level, _service) ->
        if level.Level.index > t.resident then Vm.Sys_stop Level.removed_trap_code
        else if code = 81 then Vm.Sys_stop (Word.to_int (Cpu.ac cpu 0))
        else begin
          dispatch t cpu code;
          Vm.Sys_continue
        end
