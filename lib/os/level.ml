module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Instr = Alto_machine.Instr

type service = { service_name : string; code : int }

type t = {
  index : int;
  level_name : string;
  size_words : int;
  services : service list;
}

let s service_name code = { service_name; code }

(* The thirteen levels of §5.2. Sizes are in the spirit of the paper's
   numbers (it gives ~900 words for InLoad/OutLoad); the precise values
   matter only in that they are fixed, published, and add up to a
   resident system comfortably smaller than memory. *)
let all =
  [
    {
      index = 1;
      level_name = "OutLoad/InLoad, CounterJunta";
      size_words = 900;
      services = [ s "OutLoad" 1; s "InLoad" 2; s "CounterJunta" 3 ];
    };
    { index = 2; level_name = "Keyboard input buffer"; size_words = 128; services = [] };
    { index = 3; level_name = "Hints for important files"; size_words = 128; services = [] };
    {
      index = 4;
      level_name = "BCPL runtime";
      size_words = 512;
      services = [ s "StackFrame" 10 ];
    };
    {
      index = 5;
      level_name = "Disk code";
      size_words = 768;
      services =
        [
          s "DiskRead" 20; s "DiskWrite" 21; s "DiskPatrol" 22;
          s "ServerTick" 23; s "ReplicaTick" 24;
        ];
    };
    { index = 6; level_name = "Disk data"; size_words = 256; services = [] };
    {
      index = 7;
      level_name = "Zones";
      size_words = 512;
      services = [ s "Allocate" 30; s "Free" 31 ];
    };
    {
      index = 8;
      level_name = "Disk streams";
      size_words = 1024;
      services =
        [
          s "OpenFile" 40;
          s "CloseStream" 41;
          s "StreamGet" 42;
          s "StreamPut" 43;
          s "StreamReset" 44;
          s "GetPosition" 45;
          s "SetPosition" 46;
          s "FileLength" 47;
        ];
    };
    {
      index = 9;
      level_name = "Disk directories";
      size_words = 768;
      services = [ s "LookupFile" 50; s "CreateFile" 51; s "DeleteFile" 52 ];
    };
    {
      index = 10;
      level_name = "Keyboard streams";
      size_words = 256;
      services = [ s "ReadChar" 60; s "CharsPending" 61 ];
    };
    {
      index = 11;
      level_name = "Display streams";
      size_words = 1024;
      services = [ s "WriteChar" 70; s "WriteString" 71 ];
    };
    {
      index = 12;
      level_name = "Program loader and Junta";
      size_words = 640;
      services = [ s "Junta" 80; s "Exit" 81; s "LoadOverlay" 82 ];
    };
    { index = 13; level_name = "System free storage"; size_words = 4096; services = [] };
  ]

let count = List.length all

let find i =
  match List.find_opt (fun l -> l.index = i) all with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Level.find: no level %d" i)

(* Level 1 is at the very top of memory; each further level sits below
   the previous one. *)
let limit i =
  let rec above acc = function
    | [] -> acc
    | l :: rest -> if l.index < i then above (acc + l.size_words) rest else above acc rest
  in
  Memory.size - above 0 all

let base i = limit i - (find i).size_words

let boundary ~keep =
  if keep < 0 || keep > count then invalid_arg "Level.boundary: keep out of 0..13"
  else if keep = 0 then Memory.size
  else base keep

let resident_words ~keep = Memory.size - boundary ~keep

let stub_slot level k = base level.index + (2 * k)

let service_address name =
  let rec search = function
    | [] -> raise Not_found
    | level :: rest -> (
        match
          List.find_index (fun s -> String.equal s.service_name name) level.services
        with
        | Some k -> stub_slot level k
        | None -> search rest)
  in
  search all

let service_by_code code =
  List.find_map
    (fun level ->
      List.find_map
        (fun s -> if s.code = code then Some (level, s) else None)
        level.services)
    all

let service_level name =
  match
    List.find_opt
      (fun level -> List.exists (fun s -> String.equal s.service_name name) level.services)
      all
  with
  | Some level -> level.index
  | None -> raise Not_found

let stub_words service =
  List.concat_map Instr.encode [ Instr.Sys service.code; Instr.Ret ]

let removed_trap_code = 255
