(* The crash-point injection harness: kill the machine at the Nth disk
   write of a real workload — optionally tearing the fatal sector — and
   prove that boot recovery plus, when needed, one scavenge restores a
   volume the offline checker certifies, with data loss confined to the
   writes that were still in flight. Sweeping N across whole workloads
   turns §3.3's "recovery from crashes" from a claim into an enumerated
   proof. *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Geometry = Alto_disk.Geometry
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address
module Fault = Alto_disk.Fault
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Page = Alto_fs.Page
module Directory = Alto_fs.Directory
module Compactor = Alto_fs.Compactor
module Scavenger = Alto_fs.Scavenger
module Patrol = Alto_fs.Patrol
module Flight = Alto_fs.Flight
module Fsck = Alto_fs.Fsck
module Checkpoint = Alto_world.Checkpoint
module World = Alto_world.World

type totals = {
  mutable trials : int;
  mutable crash_points : int;  (** Trials in which the crash fired. *)
  mutable torn_points : int;  (** Crashes that left a torn sector. *)
  mutable completed : int;  (** The countdown outran the workload. *)
  mutable dirty_boots : int;  (** Recoveries down the dirty path. *)
  mutable flight_adoptions : int;
  mutable bounded_recoveries : int;
      (** Boot recovery alone satisfied both oracles. *)
  mutable scavenges : int;  (** Escalations to the full scavenger. *)
  mutable findings : int;  (** Advisory fsck findings after recovery. *)
  mutable violations : int;  (** Broken invariants — must stay zero. *)
  mutable violation_log : string list;  (** Newest first, for the report. *)
}

let pp_totals fmt t =
  Format.fprintf fmt
    "@[<v>%d trials: %d crashed (%d torn), %d ran to completion@,\
     %d dirty boots, %d flight adoptions@,\
     %d bounded recoveries, %d scavenges; %d findings, %d violations@]"
    t.trials t.crash_points t.torn_points t.completed t.dirty_boots
    t.flight_adoptions t.bounded_recoveries t.scavenges t.findings t.violations

(* {2 Expectations}

   Every workload commits a set of files before the crash window opens.
   An untouched file must come back byte-identical; a touched file may
   be shorter (the write in flight, and with it the contiguity rule's
   casualties), but every page that does read back must match the old or
   the new version of that page exactly — never torn, never alien. *)

type expect = {
  e_name : string;
  e_seed : int;
  e_len1 : int;  (* committed bytes; 0 when the mutation creates it *)
  e_len2 : int;  (* bytes if the mutation completes *)
  e_touched : bool;  (* the mutation writes this file's pages *)
  e_may_vanish : bool;  (* a delete or a create was in flight *)
}

(* Deterministic per-version page contents (the test_crash pattern). *)
let pattern ~seed ~version n =
  String.init n (fun i ->
      Char.chr (32 + (((i / 17) + (seed * 31) + (version * 47)) mod 90)))

let geometry ~cylinders =
  { Geometry.diablo_31 with Geometry.model = "crashpt"; cylinders }

type workload = {
  w_name : string;
  w_pack : int;
  w_build : unit -> Drive.t * expect list;
      (** A committed, clean, sealed volume; all in-core handles are
          discarded before the mutation runs. *)
  w_mutate : Drive.t -> unit;
      (** A fresh incarnation mounts and runs the metadata-mutating
          workload; may die anywhere with {!Drive.Power_failure}. *)
  w_after_crash : Drive.t -> unit;
      (** Mains power restored: undo injected drive faults that would
          otherwise fail recovery's own reads (marginal surfaces). *)
  w_extra : Fs.t -> string option;
      (** Workload-specific invariant on the recovered volume. *)
}

let ok_exn what = function Ok v -> v | Error _ -> failwith ("crash harness: " ^ what)

let mount_exn drive =
  match Fs.mount drive with
  | Ok fs -> fs
  | Error msg -> failwith ("crash harness: mount: " ^ msg)

(* Total: the verify path runs it against packs a crash may have left
   with an unreadable catalogue, and damage there must surface as a
   verdict, not an exception. *)
let open_by_name fs name =
  match Directory.open_root fs with
  | Error _ -> `Damaged
  | Ok root -> (
      match Directory.lookup root name with
      | Error _ -> `Damaged
      | Ok None -> `Absent
      | Ok (Some e) -> (
          match File.open_leader fs e.Directory.entry_file with
          | Ok file -> `File file
          | Error _ -> `Damaged))

(* Build one committed file and catalogue it. *)
let plant fs root ~name ~seed ~len =
  let file = ok_exn "create" (File.create fs ~name) in
  ok_exn "write" (File.write_bytes file ~pos:0 (pattern ~seed ~version:1 len));
  ok_exn "flush leader" (File.flush_leader file);
  ok_exn "catalogue" (Directory.add root ~name (File.leader_name file));
  file

(* Seal a flight record (so a dirty boot has something to adopt), push
   every delayed write to the platter, and declare a consistency point.
   The recorder's ring was cleared at trial start, so the sealed bytes
   depend only on this build. *)
let commit fs =
  Flight.enable ();
  Flight.flush ~reason:"harness" fs;
  (match Fs.flush fs with Ok () | Error _ -> ());
  (match Fs.mark_clean fs with Ok () | Error _ -> ());
  (match Fs.flush fs with Ok () | Error _ -> ());
  Flight.disable ()

(* {2 The workloads} *)

(* 1. Files: overwrite, delete, create — the §3.3 staple. *)
let files_workload =
  let base = List.init 8 (fun seed -> (Printf.sprintf "C%02d.dat" seed, seed)) in
  let len1 seed = 700 + (seed * 260) in
  let len2 seed = len1 seed + (if seed mod 2 = 0 then 600 else -260) in
  {
    w_name = "files";
    w_pack = 31;
    w_build =
      (fun () ->
        let drive = Drive.create ~pack_id:31 (geometry ~cylinders:25) in
        let fs = Fs.format drive in
        let root = ok_exn "root" (Directory.open_root fs) in
        List.iter
          (fun (name, seed) -> ignore (plant fs root ~name ~seed ~len:(len1 seed)))
          base;
        commit fs;
        let expects =
          List.map
            (fun (name, seed) ->
              let deleted = seed mod 4 = 3 in
              {
                e_name = name;
                e_seed = seed;
                e_len1 = len1 seed;
                e_len2 = (if deleted then 0 else len2 seed);
                e_touched = true;
                e_may_vanish = deleted;
              })
            base
          @ List.map
              (fun seed ->
                {
                  e_name = Printf.sprintf "N%02d.dat" seed;
                  e_seed = seed;
                  e_len1 = 0;
                  e_len2 = 1200;
                  e_touched = true;
                  e_may_vanish = true;
                })
              [ 90; 91 ]
        in
        (drive, expects));
    w_mutate =
      (fun drive ->
        let fs = mount_exn drive in
        let root = ok_exn "root" (Directory.open_root fs) in
        List.iter
          (fun (name, seed) ->
            match open_by_name fs name with
            | `Absent | `Damaged -> ()
            | `File file ->
                if seed mod 4 = 3 then begin
                  (match File.delete file with Ok () | Error _ -> ());
                  match Directory.remove root name with Ok _ | Error _ -> ()
                end
                else begin
                  (match File.truncate file ~len:0 with Ok () | Error _ -> ());
                  (match
                     File.write_bytes file ~pos:0
                       (pattern ~seed ~version:2 (len2 seed))
                   with
                  | Ok () | Error _ -> ());
                  match File.flush_leader file with Ok () | Error _ -> ()
                end)
          base;
        List.iter
          (fun seed ->
            let name = Printf.sprintf "N%02d.dat" seed in
            match File.create fs ~name with
            | Error _ -> ()
            | Ok f -> (
                (match
                   File.write_bytes f ~pos:0 (pattern ~seed ~version:2 1200)
                 with
                | Ok () | Error _ -> ());
                match Directory.add root ~name (File.leader_name f) with
                | Ok () | Error _ -> ()))
          [ 90; 91 ];
        ignore (Fs.flush fs));
    w_after_crash = (fun _ -> ());
    w_extra = (fun _ -> None);
  }

(* 2. Bio flush: page-aligned patches absorbed by the track buffers,
   then the coalesced sweep — crash points land inside {!Bio.flush}. *)
let bio_workload =
  let base = List.init 6 (fun j -> (Printf.sprintf "B%02d.dat" (10 + j), 10 + j)) in
  let len1 seed = 2048 + (512 * (seed mod 3)) in
  let patch_pages seed len =
    let last = (len - 1) / 512 in
    List.sort_uniq compare [ 1; last; (seed mod last) ]
  in
  {
    w_name = "bio-flush";
    w_pack = 32;
    w_build =
      (fun () ->
        let drive = Drive.create ~pack_id:32 (geometry ~cylinders:25) in
        let fs = Fs.format drive in
        let root = ok_exn "root" (Directory.open_root fs) in
        List.iter
          (fun (name, seed) -> ignore (plant fs root ~name ~seed ~len:(len1 seed)))
          base;
        commit fs;
        let expects =
          List.map
            (fun (name, seed) ->
              {
                e_name = name;
                e_seed = seed;
                e_len1 = len1 seed;
                e_len2 = len1 seed;
                e_touched = true;
                e_may_vanish = false;
              })
            base
        in
        (drive, expects));
    w_mutate =
      (fun drive ->
        let fs = mount_exn drive in
        List.iter
          (fun (name, seed) ->
            match open_by_name fs name with
            | `Absent | `Damaged -> ()
            | `File file ->
                let len = len1 seed in
                let v2 = pattern ~seed ~version:2 len in
                List.iter
                  (fun p ->
                    let pos = p * 512 in
                    let n = min 512 (len - pos) in
                    if n > 0 then
                      match
                        File.write_bytes file ~pos (String.sub v2 pos n)
                      with
                      | Ok () | Error _ -> ())
                  (patch_pages seed len))
          base;
        (* The delayed writes hit the platter here, as one sweep. *)
        ignore (Fs.flush fs));
    w_after_crash = (fun _ -> ());
    w_extra = (fun _ -> None);
  }

(* 3. Compactor: an in-place permutation of committed pages — crash
   points land between a move's copy and its retire. Content must come
   back byte-identical: compaction never changes a file. *)
let compactor_workload =
  let base = List.init 6 (fun j -> (Printf.sprintf "K%02d.dat" (20 + j), 20 + j)) in
  let rounds seed = 3 + (seed mod 3) in
  let len1 seed = 512 * rounds seed in
  {
    w_name = "compactor";
    w_pack = 33;
    w_build =
      (fun () ->
        let drive = Drive.create ~pack_id:33 (geometry ~cylinders:25) in
        let fs = Fs.format drive in
        let root = ok_exn "root" (Directory.open_root fs) in
        (* Interleave the extensions so every file ends up scattered. *)
        let files =
          List.map
            (fun (name, seed) ->
              let file = ok_exn "create" (File.create fs ~name) in
              ok_exn "catalogue" (Directory.add root ~name (File.leader_name file));
              (file, seed))
            base
        in
        for r = 0 to 5 do
          List.iter
            (fun (file, seed) ->
              if r < rounds seed then
                let v1 = pattern ~seed ~version:1 (len1 seed) in
                ok_exn "extend"
                  (File.write_bytes file ~pos:(r * 512)
                     (String.sub v1 (r * 512) 512)))
            files
        done;
        List.iter (fun (file, _) -> ok_exn "flush leader" (File.flush_leader file)) files;
        commit fs;
        let expects =
          List.map
            (fun (name, seed) ->
              {
                e_name = name;
                e_seed = seed;
                e_len1 = len1 seed;
                e_len2 = len1 seed;
                e_touched = false;
                e_may_vanish = false;
              })
            base
        in
        (drive, expects));
    w_mutate =
      (fun drive ->
        let fs = mount_exn drive in
        match Compactor.compact fs with Ok _ | Error _ -> ());
    w_after_crash = (fun _ -> ());
    w_extra = (fun _ -> None);
  }

(* 4. Patrol relocation: marginal surfaces force the patrol to copy
   pages off mid-lap — crash points land between copy and quarantine.
   After the crash the surfaces read cleanly again (the fault injection
   is cancelled), so what recovery faces is the interrupted move, not
   the decay. *)
let patrol_workload =
  let base = List.init 5 (fun j -> (Printf.sprintf "P%02d.dat" (30 + j), 30 + j)) in
  let len1 seed = 1024 + (512 * (seed mod 2)) in
  let marginals = ref [] in
  {
    w_name = "patrol";
    w_pack = 34;
    w_build =
      (fun () ->
        let drive = Drive.create ~pack_id:34 (geometry ~cylinders:25) in
        let fs = Fs.format drive in
        let root = ok_exn "root" (Directory.open_root fs) in
        let files =
          List.map
            (fun (name, seed) -> (plant fs root ~name ~seed ~len:(len1 seed), seed))
            base
        in
        commit fs;
        marginals := [];
        List.iter
          (fun (file, seed) ->
            if seed mod 2 = 0 then begin
              let addr = (ok_exn "page" (File.page_name file 1)).Page.addr in
              Fault.make_marginal ~rate:0.7 ~growth:1.0 ~degrade_after:1000 drive
                addr;
              marginals := addr :: !marginals
            end)
          files;
        let expects =
          List.map
            (fun (name, seed) ->
              {
                e_name = name;
                e_seed = seed;
                e_len1 = len1 seed;
                e_len2 = len1 seed;
                e_touched = false;
                e_may_vanish = false;
              })
            base
        in
        (drive, expects));
    w_mutate =
      (fun drive ->
        let fs = mount_exn drive in
        let patrol = Patrol.create ~suspect_retries:1 fs in
        let ticks = ref 0 in
        while Patrol.laps patrol < 1 && !ticks < 200 do
          ignore (Patrol.tick patrol);
          incr ticks
        done;
        ignore (Fs.flush fs));
    w_after_crash =
      (fun drive ->
        List.iter
          (fun addr ->
            Drive.set_marginal drive addr ~rate:0.0 ~growth:1.0 ~degrade_after:1000)
          !marginals);
    w_extra = (fun _ -> None);
  }

(* 5. World swap: OutLoad is hundreds of sequential writes into a
   pre-sized state file; a crash mid-swap must leave a page-level mix of
   the two worlds, never a torn word. *)
let outload_workload =
  let base = List.init 3 (fun j -> (Printf.sprintf "W%02d.dat" (40 + j), 40 + j)) in
  let len1 seed = 900 + (128 * (seed mod 3)) in
  let probe_addr = 1234 in
  let swap fs word =
    let root = ok_exn "root" (Directory.open_root fs) in
    let state = ok_exn "state file" (Checkpoint.state_file fs ~directory:root ~name:"W.state") in
    let memory = Memory.create () in
    let cpu = Cpu.create memory in
    Memory.write memory probe_addr (Word.of_int word);
    match World.out_load cpu state with Ok () | Error _ -> ()
  in
  {
    w_name = "outload";
    w_pack = 35;
    w_build =
      (fun () ->
        let drive = Drive.create ~pack_id:35 (geometry ~cylinders:60) in
        let fs = Fs.format drive in
        let root = ok_exn "root" (Directory.open_root fs) in
        List.iter
          (fun (name, seed) -> ignore (plant fs root ~name ~seed ~len:(len1 seed)))
          base;
        swap fs 0xAAAA;
        commit fs;
        let expects =
          List.map
            (fun (name, seed) ->
              {
                e_name = name;
                e_seed = seed;
                e_len1 = len1 seed;
                e_len2 = len1 seed;
                e_touched = false;
                e_may_vanish = false;
              })
            base
        in
        (drive, expects));
    w_mutate =
      (fun drive ->
        let fs = mount_exn drive in
        swap fs 0xBBBB;
        ignore (Fs.flush fs));
    w_after_crash = (fun _ -> ());
    w_extra =
      (fun fs ->
        match open_by_name fs "W.state" with
        | `Absent -> Some "W.state lost entirely"
        | `Damaged -> Some "W.state unopenable"
        | `File f -> (
            match World.read_saved_memory f ~pos:probe_addr ~len:1 with
            | Ok [| w |] ->
                let v = Word.to_int w in
                if v = 0xAAAA || v = 0xBBBB then None
                else Some (Printf.sprintf "W.state probe word torn: %04x" v)
            | Ok _ | Error _ ->
                (* A crash very early, or the scavenger truncating at
                   the torn page, can leave less than a whole image;
                   failing cleanly is the accepted loss. *)
                None));
  }

let workloads =
  [
    files_workload;
    bio_workload;
    compactor_workload;
    patrol_workload;
    outload_workload;
  ]

(* {2 Verification} *)

let verify_expect fs e =
  let big = max e.e_len1 e.e_len2 + 4096 in
  let v1 = pattern ~seed:e.e_seed ~version:1 big in
  let v2 = pattern ~seed:e.e_seed ~version:2 big in
  match open_by_name fs e.e_name with
  | `Absent -> if e.e_may_vanish then [] else [ e.e_name ^ " vanished" ]
  | `Damaged -> [ e.e_name ^ " unopenable after recovery" ]
  | `File file ->
      let len = File.byte_length file in
      if (not e.e_touched) && len <> e.e_len1 then
        [ Printf.sprintf "%s length %d, committed %d" e.e_name len e.e_len1 ]
      else begin
        let bad = ref [] in
        let pages = (len + 511) / 512 in
        (try
           for p = 0 to pages - 1 do
             let pos = p * 512 in
             let n = min 512 (len - pos) in
             match File.read_bytes file ~pos ~len:n with
             | Error _ ->
                 (* A page the crash tore: tolerable on a touched file
                    (the write in flight), an invariant break otherwise. *)
                 if not e.e_touched then
                   bad :=
                     Printf.sprintf "%s page %d unreadable" e.e_name p :: !bad;
                 raise Exit
             | Ok bytes ->
                 let got = Bytes.to_string bytes in
                 let matches v = String.equal got (String.sub v pos n) in
                 if not (matches v1 || (e.e_touched && matches v2)) then begin
                   bad :=
                     Printf.sprintf "%s page %d holds torn or alien bytes"
                       e.e_name p
                     :: !bad;
                   raise Exit
                 end
           done
         with Exit -> ());
        !bad
      end

(* {2 One trial} *)

let run_trial t (w : workload) ~point ~tear =
  t.trials <- t.trials + 1;
  Flight.disable ();
  let drive, expects = w.w_build () in
  Fault.crash_after_writes ?tear drive point;
  let crashed =
    match w.w_mutate drive with
    | () -> false
    | exception Drive.Power_failure -> true
  in
  Fault.cancel_crash drive;
  w.w_after_crash drive;
  if crashed then begin
    t.crash_points <- t.crash_points + 1;
    if tear <> None then t.torn_points <- t.torn_points + 1
  end
  else t.completed <- t.completed + 1;
  (* The machine is gone: every in-core handle, the allocation map, the
     track buffers. Recovery starts from the platter alone. *)
  Flight.disable ();
  let was_dirty =
    match Fs.mount drive with Ok fs -> Fs.dirty fs | Error _ -> true
  in
  if was_dirty then t.dirty_boots <- t.dirty_boots + 1;
  let sys = System.boot ~drive () in
  if Flight.adopted () <> None then t.flight_adoptions <- t.flight_adoptions + 1;
  (* Finish the makeup lap recovery scheduled. *)
  let ticks = ref 0 in
  while Patrol.makeup_pending (System.patrol sys) > 0 && !ticks < 10_000 do
    ignore (System.patrol_tick sys);
    incr ticks
  done;
  (match Fs.mark_clean (System.fs sys) with Ok () | Error _ -> ());
  (match Fs.flush (System.fs sys) with Ok () | Error _ -> ());
  (* The oracle: the checker, then a fresh mount reading every committed
     file against its two legitimate versions. Bounded recovery answers
     for most crash points; when the checker still sees a broken promise
     — a torn catalogued page, a dangling entry — or a file will not
     read back (a hint ladder exhausted by a mid-move crash), the cure
     is §3.5's full scavenge, after which both oracles must be
     satisfied. *)
  let tag =
    match tear with
    | None -> ""
    | Some Drive.Torn_label -> "/torn-label"
    | Some Drive.Torn_value -> "/torn-value"
  in
  let log_violation msg =
    t.violations <- t.violations + 1;
    t.violation_log <-
      Printf.sprintf "%s@%d%s: %s" w.w_name point tag msg :: t.violation_log
  in
  let interrogate () =
    let report = Fsck.check drive in
    let content =
      match Fs.mount drive with
      | Error msg -> [ Printf.sprintf "remount failed: %s" msg ]
      | Ok fs -> (
          let msgs = List.concat_map (fun e -> verify_expect fs e) expects in
          match w.w_extra fs with None -> msgs | Some m -> msgs @ [ m ])
    in
    (report, content)
  in
  let report, content = interrogate () in
  let report, content =
    if report.Fsck.violations = [] && content = [] then begin
      t.bounded_recoveries <- t.bounded_recoveries + 1;
      (report, content)
    end
    else begin
      t.scavenges <- t.scavenges + 1;
      match Scavenger.scavenge ~verify_values:true drive with
      | Error msg ->
          log_violation (Printf.sprintf "scavenge failed: %s" msg);
          (report, content)
      | Ok (_, _) -> interrogate ()
    end
  in
  t.findings <- t.findings + List.length report.Fsck.findings;
  List.iter
    (fun issue -> log_violation (Format.asprintf "fsck: %a" Fsck.pp_issue issue))
    report.Fsck.violations;
  List.iter log_violation content;
  Flight.disable ()

(* {2 The sweep} *)

let tears = [ None; Some Drive.Torn_label; Some Drive.Torn_value ]

(* How many writing operations the uninterrupted mutation performs. *)
let measure (w : workload) =
  Flight.disable ();
  let drive, _ = w.w_build () in
  let before = Drive.write_ops drive in
  w.w_mutate drive;
  w.w_after_crash drive;
  Flight.disable ();
  Drive.write_ops drive - before

let run ?(points_per_workload = 15) ?(only = []) () =
  let t =
    {
      trials = 0;
      crash_points = 0;
      torn_points = 0;
      completed = 0;
      dirty_boots = 0;
      flight_adoptions = 0;
      bounded_recoveries = 0;
      scavenges = 0;
      findings = 0;
      violations = 0;
      violation_log = [];
    }
  in
  let selected =
    match only with
    | [] -> workloads
    | names -> List.filter (fun w -> List.mem w.w_name names) workloads
  in
  List.iter
    (fun w ->
      let writes = measure w in
      let k = min points_per_workload (max 1 writes) in
      (* Evenly spaced over the whole write stream, first and last
         included: the countdown is armed after the build, so point 0
         kills the very first mutating write. *)
      let point j = if k = 1 then 0 else j * (writes - 1) / (k - 1) in
      for j = 0 to k - 1 do
        List.iter (fun tear -> run_trial t w ~point:(point j) ~tear) tears
      done)
    selected;
  t
