(** The assembled operating system (§5).

    "The operating system is a collection of commonly used subroutine
    packages that are normally present in memory for the convenience of
    user programs." Here the packages are the other libraries of this
    repository; what is "present in memory" are their service stubs, laid
    out in the thirteen levels of {!Level} at the top of the 64K image.
    The bodies behind the stubs run in the host — our writable microcode —
    through the VM's [SYS] trap, so a loaded program calls the system
    exactly the way the paper's programs did: an ordinary procedure call
    to a fixed resident address, bound by the loader's fixup table.

    {2 Junta}

    "A program that prefers not to use the standard procedures provided
    by the system, or that needs to use the memory space occupied by them,
    may request that some or all system procedures be deleted from
    memory." {!junta} reclaims every level above the kept one — their
    regions are filled with a trap word so a stale call stops cleanly —
    and {!counter_junta} "restores all levels that were removed, and
    reinitializes any data structures they contain."

    {2 Service conventions}

    Arguments and results travel in AC0–AC2; AC3 is the error register
    (0 on success). Strings in VM memory are a length word followed by
    characters packed two per word. Files and streams are word-sized
    handles — BCPL's "each object can be represented by a 16-bit machine
    word" — issued by the system's object table:

    {v code name          in                          out
        1   OutLoad       AC0 state-file handle       AC0 1 (or 0 when revived)
        2   InLoad        AC0 handle; msg at 16..     (never returns here)
        3   CounterJunta
       10   StackFrame    AC0 words                   AC0 frame address
       20   DiskRead      AC0 DA, AC1 buffer          256 words to buffer
       21   DiskWrite     AC0 DA, AC1 buffer
       22   DiskPatrol    (idle moment)               AC0 pages relocated
       23   ServerTick    (idle moment)               AC0 progress made
       24   ReplicaTick   (idle moment)               AC0 progress made
       30   Allocate      AC0 words                   AC0 address
       31   Free          AC0 address
       40   OpenFile      AC0 name, AC1 mode 0/1/2    AC0 stream handle
       41   CloseStream   AC0 handle
       42   StreamGet     AC0 handle                  AC0 item, AC1 eof flag
       43   StreamPut     AC0 handle, AC1 item
       44   StreamReset   AC0 handle
       45   GetPosition   AC0 handle                  AC0 position
       46   SetPosition   AC0 handle, AC1 position
       47   FileLength    AC0 handle                  AC0 bytes
       50   LookupFile    AC0 name                    AC0 1 if present
       51   CreateFile    AC0 name
       52   DeleteFile    AC0 name
       60   ReadChar                                  AC0 char, AC1 1 if none
       61   CharsPending                              AC0 count
       70   WriteChar     AC0 char
       71   WriteString   AC0 name
       80   Junta         AC0 keep-level
       81   Exit          AC0 status                  stops the run
       82   LoadOverlay   AC0 name of a code file     AC0 entry address v} *)

module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Geometry = Alto_disk.Geometry
module Drive = Alto_disk.Drive
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Zone = Alto_zones.Zone
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display

type t

val user_base : int
(** 1024: where the loader places program code; below it live page zero,
    the message area, and the command-line words. *)

val boot : ?geometry:Geometry.t -> ?drive:Drive.t -> ?finish_recovery_lap:bool -> unit -> t
(** Bring the system up: mount the pack (formatting a virgin one), arm
    the flight recorder ({!Alto_fs.Flight.enable}), re-enter any spilled
    bad-sector verdicts ({!Alto_fs.Bad_sectors}), and — if the pack
    mounted dirty — adopt the previous incarnation's flight record and
    run the bounded crash-recovery scan ({!Alto_fs.Patrol.recover});
    then lay the thirteen levels into the top of memory and initialize
    the system free-storage zone. [finish_recovery_lap] (default [true])
    makes the session's patrol scan the head region the recovery skipped
    at double rate, so the completeness lap finishes within one lap of
    idle ticks instead of lazily. *)

val memory : t -> Memory.t
val cpu : t -> Cpu.t
val drive : t -> Drive.t
val fs : t -> Fs.t

val set_fs : t -> Fs.t -> unit
(** Swap the mounted volume (the scavenger's rescue path). The patrol is
    re-created for the new volume, resuming at its persisted cursor. *)

val patrol : t -> Alto_fs.Patrol.t
(** The volume's online patrol — level 5's DiskPatrol service and the
    executive's idle ticks both drive this instance, so its cumulative
    totals are what the [health] command reports. *)

val patrol_tick : t -> Alto_fs.Patrol.report
(** Run one verify slice now (what service code 22 does). *)

val keyboard : t -> Keyboard.t
val display : t -> Display.t
val system_zone : t -> Zone.t

val resident_level : t -> int
(** 13 when everything is resident. *)

val user_boundary : t -> int
(** One past the memory a program may use: rises as levels are removed. *)

val junta : t -> keep:int -> unit
(** Remove levels [keep+1 .. 13]. Removing the keyboard buffer level
    discards type-ahead, as losing that memory must. Raises
    [Invalid_argument] outside 1..13. *)

val counter_junta : t -> unit

val handler : t -> Vm.handler
(** The system-call dispatcher to run VM programs under. Calls to
    services whose level is not resident stop the run with
    {!Level.removed_trap_code}. *)

val last_error : t -> string option
(** Human-readable detail of the most recent service error (AC3 ≠ 0). *)

val set_overlay_loader : t -> (string -> (int, string) result) -> unit
(** Install the procedure behind the [LoadOverlay] service (the loader
    wires itself in; the indirection only breaks a module cycle). *)

val set_server_tick : t -> (unit -> int) -> unit
(** Install the procedure behind the [ServerTick] service — typically
    [fun () -> File_server.tick server]. The indirection keeps the OS
    level from depending on the server package; the executive's [serve]
    command and idle loops call the service, not the server directly. *)

val server_tick : t -> (unit -> int) option

val set_replica_tick : t -> (unit -> int) -> unit
(** Install the procedure behind the [ReplicaTick] service — typically
    [fun () -> Replica.tick node]. Same indirection discipline as
    {!set_server_tick}: the OS level never depends on the server
    package. *)

val replica_tick : t -> (unit -> int) option

val set_peer_report : t -> (unit -> string list) -> unit
(** Install the report behind the executive's [peers] command —
    typically [fun () -> Replica.report fleet]. *)

val peer_report : t -> (unit -> string list) option

(** {2 Object handles} *)

val register_file : t -> File.t -> int
(** Issue a word-sized handle for a file (e.g. a world file a program
    will OutLoad to). *)

val file_of_handle : t -> int -> File.t option

val read_vm_string : t -> int -> string
(** Read a length-prefixed packed string from VM memory. *)

val write_vm_string : t -> int -> string -> unit
