module Word = Alto_machine.Word
module Vm = Alto_machine.Vm
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Scavenger = Alto_fs.Scavenger
module Compactor = Alto_fs.Compactor
module Patrol = Alto_fs.Patrol
module Bad_sectors = Alto_fs.Bad_sectors
module Flight = Alto_fs.Flight
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof
module Stream = Alto_streams.Stream
module Keyboard = Alto_streams.Keyboard
module Display = Alto_streams.Display

type outcome = { commands_executed : int; quit : bool }

let command_file_name = "Com.cm"

let say system fmt =
  Format.kasprintf
    (fun s -> Stream.put_line (Display.stream (System.display system)) s)
    fmt

let with_root system f =
  match Directory.open_root (System.fs system) with
  | Error e -> say system "cannot open the root directory: %a" Directory.pp_error e
  | Ok root -> f root

let open_by_name system root name =
  match Directory.lookup root name with
  | Error e ->
      say system "%s: %a" name Directory.pp_error e;
      None
  | Ok None ->
      say system "%s: not found" name;
      None
  | Ok (Some e) -> (
      match File.open_leader (System.fs system) e.Directory.entry_file with
      | Error err ->
          say system "%s: %a" name File.pp_error err;
          None
      | Ok file -> Some file)

(* §4: the command scanner records the command line in a file with a
   standard name before transferring control. *)
let record_command system line =
  with_root system (fun root ->
      let fs = System.fs system in
      let file =
        match Directory.lookup root command_file_name with
        | Ok (Some e) -> (
            match File.open_leader fs e.Directory.entry_file with
            | Ok f -> Some f
            | Error _ -> None)
        | Ok None -> (
            match File.create fs ~name:command_file_name with
            | Error _ -> None
            | Ok f -> (
                match Directory.add root ~name:command_file_name (File.leader_name f) with
                | Ok () -> Some f
                | Error _ -> None))
        | Error _ -> None
      in
      match file with
      | None -> say system "warning: cannot record the command in %s" command_file_name
      | Some f ->
          let update =
            let ( let* ) = Result.bind in
            let* () = File.truncate f ~len:0 in
            let* () = File.write_bytes f ~pos:0 line in
            File.flush_leader f
          in
          (match update with
          | Ok () -> ()
          | Error e -> say system "warning: %s: %a" command_file_name File.pp_error e))

let cmd_ls system =
  with_root system (fun root ->
      match Directory.entries root with
      | Error e -> say system "ls: %a" Directory.pp_error e
      | Ok entries ->
          List.iter
            (fun (e : Directory.entry) ->
              match File.open_leader (System.fs system) e.Directory.entry_file with
              | Ok f -> say system "%-24s %6d bytes" e.Directory.entry_name (File.byte_length f)
              | Error _ -> say system "%-24s (unreadable)" e.Directory.entry_name)
            entries;
          say system "%d free pages" (Fs.free_count (System.fs system)))

let cmd_type system name =
  with_root system (fun root ->
      match open_by_name system root name with
      | None -> ()
      | Some file -> (
          match File.read_bytes file ~pos:0 ~len:(File.byte_length file) with
          | Error e -> say system "type: %a" File.pp_error e
          | Ok bytes -> say system "%s" (Bytes.to_string bytes)))

let cmd_put system name text =
  with_root system (fun root ->
      let fs = System.fs system in
      let write file =
        let ( let* ) = Result.bind in
        let* () = File.truncate file ~len:0 in
        let* () = File.write_bytes file ~pos:0 text in
        File.flush_leader file
      in
      match Directory.lookup root name with
      | Error e -> say system "put: %a" Directory.pp_error e
      | Ok (Some e) -> (
          match File.open_leader fs e.Directory.entry_file with
          | Error err -> say system "put: %a" File.pp_error err
          | Ok file -> (
              match write file with
              | Ok () -> ()
              | Error err -> say system "put: %a" File.pp_error err))
      | Ok None -> (
          match File.create fs ~name with
          | Error err -> say system "put: %a" File.pp_error err
          | Ok file -> (
              match Directory.add root ~name (File.leader_name file) with
              | Error err -> say system "put: %a" Directory.pp_error err
              | Ok () -> (
                  match write file with
                  | Ok () -> ()
                  | Error err -> say system "put: %a" File.pp_error err))))

let cmd_delete system name =
  with_root system (fun root ->
      match open_by_name system root name with
      | None -> ()
      | Some file -> (
          match File.delete file with
          | Error e -> say system "delete: %a" File.pp_error e
          | Ok () -> (
              match Directory.remove root name with
              | Ok _ -> ()
              | Error e -> say system "delete: %a" Directory.pp_error e)))

let cmd_rename system old_name new_name =
  with_root system (fun root ->
      match Directory.lookup root old_name with
      | Error e -> say system "rename: %a" Directory.pp_error e
      | Ok None -> say system "rename: %s not found" old_name
      | Ok (Some e) -> (
          match Directory.add root ~name:new_name e.Directory.entry_file with
          | Error err -> say system "rename: %a" Directory.pp_error err
          | Ok () -> (
              match Directory.remove root old_name with
              | Ok _ -> ()
              | Error err -> say system "rename: %a" Directory.pp_error err)))

let cmd_scavenge system =
  (* The scavenger reads the raw pack; push delayed track-buffer writes
     to the platter first so the rebuild sees every acknowledged page. *)
  ignore (Alto_fs.Bio.flush (Fs.bio (System.fs system)));
  match Scavenger.scavenge (System.drive system) with
  | Error msg -> say system "scavenge failed: %s" msg
  | Ok (fs, report) ->
      System.set_fs system fs;
      say system "%a" Scavenger.pp_report report

(* The offline checker run against the live pack: flush the delayed
   writes so the platter is current, then read everything back and print
   the damage census. Read-only — the cure for a bad verdict is
   [scavenge], and the checker says so. *)
let cmd_fsck system =
  ignore (Alto_fs.Bio.flush (Fs.bio (System.fs system)));
  let report = Alto_fs.Fsck.check (System.drive system) in
  say system "%a" Alto_fs.Fsck.pp_report report

let cmd_compact system =
  match Compactor.compact (System.fs system) with
  | Error msg -> say system "compact failed: %s" msg
  | Ok report -> say system "%a" Compactor.pp_report report

let cmd_levels system =
  let resident = System.resident_level system in
  List.iter
    (fun (l : Level.t) ->
      say system "%2d %s %s (%d words)" l.Level.index
        (if l.Level.index <= resident then "resident" else "removed ")
        l.Level.level_name l.Level.size_words)
    Level.all;
  say system "user space: %d..%d" System.user_base (System.user_boundary system - 1)

let cmd_copy system src_name dst_name =
  with_root system (fun root ->
      match open_by_name system root src_name with
      | None -> ()
      | Some src -> (
          match File.read_bytes src ~pos:0 ~len:(File.byte_length src) with
          | Error e -> say system "copy: %a" File.pp_error e
          | Ok bytes -> (
              let fs = System.fs system in
              let write file =
                let ( let* ) = Result.bind in
                let* () = File.truncate file ~len:0 in
                let* () =
                  if Bytes.length bytes = 0 then Ok ()
                  else File.write_bytes file ~pos:0 (Bytes.to_string bytes)
                in
                File.flush_leader file
              in
              match Directory.lookup root dst_name with
              | Error e -> say system "copy: %a" Directory.pp_error e
              | Ok (Some e) -> (
                  match File.open_leader fs e.Directory.entry_file with
                  | Error err -> say system "copy: %a" File.pp_error err
                  | Ok dst -> (
                      match write dst with
                      | Ok () -> ()
                      | Error err -> say system "copy: %a" File.pp_error err))
              | Ok None -> (
                  match File.create fs ~name:dst_name with
                  | Error err -> say system "copy: %a" File.pp_error err
                  | Ok dst -> (
                      match Directory.add root ~name:dst_name (File.leader_name dst) with
                      | Error err -> say system "copy: %a" Directory.pp_error err
                      | Ok () -> (
                          match write dst with
                          | Ok () -> ()
                          | Error err -> say system "copy: %a" File.pp_error err))))))

let cmd_assemble system src_name dst_name =
  with_root system (fun root ->
      match open_by_name system root src_name with
      | None -> ()
      | Some src -> (
          match File.read_bytes src ~pos:0 ~len:(File.byte_length src) with
          | Error e -> say system "assemble: %a" File.pp_error e
          | Ok bytes -> (
              match
                Alto_machine.Asm_text.assemble ~origin:System.user_base
                  (Bytes.to_string bytes)
              with
              | Error msg -> say system "assemble: %s" msg
              | Ok program -> (
                  match Loader.save_program system ~name:dst_name program with
                  | Ok _ -> say system "%s assembled to %s" src_name dst_name
                  | Error e -> say system "assemble: %a" Loader.pp_error e))))

let cmd_compile system src_name dst_name =
  with_root system (fun root ->
      match open_by_name system root src_name with
      | None -> ()
      | Some src -> (
          match File.read_bytes src ~pos:0 ~len:(File.byte_length src) with
          | Error e -> say system "compile: %a" File.pp_error e
          | Ok bytes -> (
              match
                Alto_bcpl.Bcpl.compile ~origin:System.user_base (Bytes.to_string bytes)
              with
              | Error e -> say system "compile: %a" Alto_bcpl.Bcpl.pp_error e
              | Ok program -> (
                  match Loader.save_program system ~name:dst_name program with
                  | Ok _ -> say system "%s compiled to %s" src_name dst_name
                  | Error e -> say system "compile: %a" Loader.pp_error e))))

let cmd_dump system name =
  with_root system (fun root ->
      match open_by_name system root name with
      | None -> ()
      | Some file -> (
          match File.read_words file ~pos:0 ~len:(File.byte_length file / 2) with
          | Error e -> say system "dump: %a" File.pp_error e
          | Ok words -> (
              match Loader.parse_code words with
              | Error e -> say system "dump: %a" Loader.pp_error e
              | Ok parsed ->
                  List.iter (fun line -> say system "%s" line) (Loader.disassemble parsed))))

(* Show the tail of the observability event trace — the flight recorder
   for "what just happened", soft errors and retries included. *)
let cmd_trace system n =
  let module Obs = Alto_obs.Obs in
  let events = Obs.trace () in
  let total = List.length events in
  let tail = if total <= n then events else
    (* Drop all but the last n. *)
    List.filteri (fun i _ -> i >= total - n) events
  in
  if tail = [] then say system "trace: no events recorded"
  else
    List.iter
      (fun (e : Obs.event) ->
        let fields =
          String.concat " "
            (List.map
               (fun (k, v) ->
                 let v =
                   match v with
                   | Obs.I i -> string_of_int i
                   | Obs.S s -> s
                   | Obs.B b -> string_of_bool b
                 in
                 Printf.sprintf "%s=%s" k v)
               e.Obs.fields)
        in
        if fields = "" then
          say system "%8dus %s" e.Obs.ts_us e.Obs.name
        else say system "%8dus %s %s" e.Obs.ts_us e.Obs.name fields)
      tail

(* Show the disk fast path at a glance: the verified-label cache, the
   track buffer cache and the elevator scheduler, plus what the volume
   currently holds in core. *)
let cmd_cache system =
  let module Obs = Alto_obs.Obs in
  let value name =
    match Obs.find name with
    | Some (Obs.Counter n) -> n
    | Some (Obs.Histogram _) | None -> 0
  in
  List.iter
    (fun name -> say system "%-30s %d" name (value name))
    [
      "fs.label_cache.hits";
      "fs.label_cache.misses";
      "fs.label_cache.invalidations";
      "fs.bio.hits";
      "fs.bio.misses";
      "fs.bio.fills";
      "fs.bio.absorbed";
      "fs.bio.flushes";
      "fs.bio.flushed_sectors";
      "fs.bio.evictions";
      "fs.bio.write_conflicts";
      "disk.sched.batches";
      "disk.sched.requests";
      "disk.sched.cylinder_runs";
      "disk.sched.sweeps";
      "disk.sched.merged_batches";
    ];
  say system "%-30s %d" "cached labels"
    (Alto_fs.Label_cache.length (Fs.label_cache (System.fs system)));
  let bio = Fs.bio (System.fs system) in
  say system "%-30s %d" "buffered tracks" (Alto_fs.Bio.cached_tracks bio);
  say system "%-30s %d" "buffered sectors" (Alto_fs.Bio.cached_sectors bio);
  say system "%-30s %d" "dirty sectors" (Alto_fs.Bio.dirty_sectors bio)

(* Flush the track buffer cache's delayed writes on demand and show what
   the delay bought: how many sectors went out, coalesced into how many
   track sweeps, and whether the platter refused any as stale. *)
let cmd_sync system =
  let report = Alto_fs.Bio.flush (Fs.bio (System.fs system)) in
  if report.Alto_fs.Bio.sectors = 0 then say system "sync: nothing dirty"
  else begin
    say system "sync: %d sectors coalesced into %d track sweeps"
      report.Alto_fs.Bio.sectors report.Alto_fs.Bio.tracks;
    if report.Alto_fs.Bio.conflicts > 0 then
      say system "sync: %d delayed writes dropped (sectors re-labelled underneath)"
        report.Alto_fs.Bio.conflicts
  end

(* The volume's self-healing at a glance: whether the pack would mount
   clean, where the patrol sweep stands and what it has moved to safety,
   and how full the two bad-sector stores are. *)
let cmd_health system =
  let fs = System.fs system in
  let patrol = System.patrol system in
  let sectors = Alto_disk.Drive.sector_count (System.drive system) in
  say system "volume:  %s"
    (if Fs.dirty fs then "dirty - bounded recovery due at next boot" else "clean");
  say system "patrol:  cursor %d/%d, %d laps, %d slices this session"
    (Fs.patrol_cursor fs) sectors (Patrol.laps patrol) (Patrol.slices patrol);
  say system "         %d suspect, %d relocated, %d quarantined, %d lost, %d map repairs"
    (Patrol.suspects_found patrol) (Patrol.relocated patrol)
    (Patrol.quarantined patrol) (Patrol.pages_lost patrol)
    (Patrol.map_repairs patrol);
  say system "bad:     %d in the descriptor table, %d spilled"
    (List.length (Fs.bad_sector_table fs))
    (List.length (Fs.spilled_table fs));
  with_root system (fun root ->
      match Directory.lookup root Bad_sectors.file_name with
      | Ok (Some e) -> (
          match File.open_leader fs e.Directory.entry_file with
          | Ok f ->
              say system "         %s: %d bytes" Bad_sectors.file_name
                (File.byte_length f)
          | Error _ -> say system "         %s: unreadable" Bad_sectors.file_name)
      | Ok None -> say system "         no spill file"
      | Error e -> say system "health: %a" Directory.pp_error e)

(* Where the simulated time went, charged to the operation that caused
   it: the causal span tree, then the hottest spans by self time. *)
let cmd_profile system n =
  let root = Prof.tree () in
  if root.Prof.children = [] then say system "profile: no spans recorded"
  else begin
    let line depth (s : Prof.snapshot) =
      let indent = String.make (2 * depth) ' ' in
      let width = max 1 (32 - (2 * depth)) in
      if Prof.disk_us s = 0 then
        say system "%s%-*s %6dx total %9dus self %9dus" indent width s.Prof.name
          s.Prof.calls s.Prof.total_us s.Prof.self_us
      else
        say system
          "%s%-*s %6dx total %9dus self %9dus  disk seek %d rot %d xfer %d retry %d"
          indent width s.Prof.name s.Prof.calls s.Prof.total_us s.Prof.self_us
          s.Prof.seek_us s.Prof.rotation_us s.Prof.transfer_us s.Prof.retry_us
    in
    let rec walk depth s =
      line depth s;
      List.iter (walk (depth + 1)) s.Prof.children
    in
    List.iter (walk 0) root.Prof.children;
    let hot =
      Prof.flatten root
      |> List.filter (fun (s : Prof.snapshot) -> s.Prof.name <> "root")
      |> List.sort (fun (a : Prof.snapshot) b -> compare b.Prof.self_us a.Prof.self_us)
      |> List.filteri (fun i _ -> i < n)
    in
    say system "top %d by self time:" (List.length hot);
    List.iter
      (fun (s : Prof.snapshot) ->
        say system "%-32s %9dus self (%d calls)" s.Prof.name s.Prof.self_us
          s.Prof.calls)
      hot
  end

(* The hottest histograms: every operation's latency distribution at a
   glance, heaviest total time first. *)
let cmd_top system n =
  let hists =
    List.filter_map
      (fun (name, m) ->
        match m with
        | Obs.Histogram s when s.Obs.count > 0 -> Some (name, s)
        | Obs.Histogram _ | Obs.Counter _ -> None)
      (Obs.snapshot ())
    |> List.sort (fun (_, (a : Obs.summary)) (_, b) -> compare b.Obs.sum a.Obs.sum)
    |> List.filteri (fun i _ -> i < n)
  in
  if hists = [] then say system "top: no histograms recorded"
  else begin
    say system "%-28s %8s %12s %8s %8s %8s" "histogram" "count" "mean" "p50"
      "p90" "p99";
    List.iter
      (fun (name, (s : Obs.summary)) ->
        say system "%-28s %8d %12.1f %8d %8d %8d" name s.Obs.count s.Obs.mean
          s.Obs.p50 s.Obs.p90 s.Obs.p99)
      hists
  end

(* The machine's conversations, not its operations: every request trace
   still open plus the last few closed, each with its queue wait, its
   service time and where the service went on the platter. This is the
   causal view the event trace and the profile tree can't give — a
   request's whole life across admission, parking and sweeps. *)
let cmd_requests system n =
  let module Trace = Alto_obs.Trace in
  let infos = Trace.infos () in
  let open_, closed = List.partition (fun i -> i.Trace.status = "open") infos in
  let drop = List.length closed - n in
  let closed = List.filteri (fun i _ -> i >= drop) closed in
  if open_ = [] && closed = [] then say system "requests: none recorded"
  else begin
    let line (i : Trace.info) =
      say system
        "#%-4d %-10s %-24s %-9s wait %8dus service %8dus  disk seek %d rot %d xfer %d"
        i.Trace.id i.Trace.origin i.Trace.name i.Trace.status i.Trace.wait_us
        i.Trace.service_us i.Trace.seek_us i.Trace.rotation_us i.Trace.transfer_us;
      List.iter
        (fun (m, ts) -> say system "      %8dus %s" ts m)
        i.Trace.marks
    in
    if open_ <> [] then begin
      say system "open (%d):" (List.length open_);
      List.iter line open_
    end;
    if closed <> [] then begin
      say system "recently closed (last %d):" (List.length closed);
      List.iter line closed
    end
  end

(* Dump the flight record adopted at boot: what the previous incarnation
   sealed on its way down. *)
let cmd_blackbox system =
  match Flight.adopted () with
  | None -> say system "blackbox: no flight record adopted this boot"
  | Some record -> say system "%s" record

(* Give the attached request server its turn: ticks of the ServerTick
   service until it reports no progress (or the round budget runs out).
   The service lives in level 5 with the rest of the disk code. *)
let cmd_serve system rounds =
  match System.server_tick system with
  | None -> say system "serve: no server attached to this system"
  | Some tick ->
      let rec go done_ remaining =
        if remaining = 0 then done_
        else
          let progress = tick () in
          if progress = 0 then done_ else go (done_ + progress) (remaining - 1)
      in
      let progress = go 0 rounds in
      let module Obs = Alto_obs.Obs in
      let value name =
        match Obs.find name with Some (Obs.Counter n) -> n | _ -> 0
      in
      say system "serve: %d units of progress; %d requests, %d naks so far" progress
        (value "server.reqs") (value "server.naks")

(* The replica fleet's view of itself: per peer the audit cursor, last
   vote outcome and repair traffic, plus the net fault census. The
   report callback keeps the OS from depending on the server package,
   like the ServerTick indirection. *)
let cmd_peers system =
  match System.peer_report system with
  | None -> say system "peers: this machine is not enrolled in a replica fleet"
  | Some render -> List.iter (fun line -> say system "%s" line) (render ())

let cmd_run system name =
  match Loader.run_by_name system name with
  | Error e -> say system "run: %a" Loader.pp_error e
  | Ok stop -> (
      match stop with
      | Vm.Stopped 0 -> ()
      | stop -> say system "%s: %a" name Vm.pp_stop stop)

let looks_like_code_file system name =
  match Directory.open_root (System.fs system) with
  | Error _ -> false
  | Ok root -> (
      match Directory.lookup root name with
      | Ok (Some e) -> (
          match File.open_leader (System.fs system) e.Directory.entry_file with
          | Ok f -> (
              match File.read_words f ~pos:0 ~len:1 with
              | Ok [| w |] -> Word.to_int w = 0xC0DE
              | Ok _ | Error _ -> false)
          | Error _ -> false)
      | Ok None | Error _ -> false)

let split_words line =
  List.filter (fun s -> String.length s > 0) (String.split_on_char ' ' line)

let execute system line =
  record_command system line;
  let words = split_words line in
  (* Every command is a span of its own: its simulated cost lands in an
     exec.<cmd>_us histogram, and everything it causes — batches, rungs,
     patrol slices — hangs under it in the profile tree. *)
  let cmd = match words with w :: _ -> w | [] -> "empty" in
  Obs.time (Fs.clock (System.fs system)) ("exec." ^ cmd ^ "_us") @@ fun () ->
  match words with
  | [] -> `Continue
  | [ "quit" ] ->
      (* A deliberate exit is a clean shutdown: seal a flight record
         (before the clean flag — the write dirties the volume), then
         declare the consistency point so the next boot skips recovery. *)
      Flight.flush ~reason:"quit" (System.fs system);
      (match Fs.mark_clean (System.fs system) with Ok () | Error _ -> ());
      `Quit
  | [ "ls" ] ->
      cmd_ls system;
      `Continue
  | [ "type"; name ] ->
      cmd_type system name;
      `Continue
  | "put" :: name :: rest ->
      cmd_put system name (String.concat " " rest);
      `Continue
  | [ "delete"; name ] ->
      cmd_delete system name;
      `Continue
  | [ "rename"; old_name; new_name ] ->
      cmd_rename system old_name new_name;
      `Continue
  | [ "fsck" ] ->
      cmd_fsck system;
      `Continue
  | [ "scavenge" ] ->
      cmd_scavenge system;
      `Continue
  | [ "compact" ] ->
      cmd_compact system;
      `Continue
  | [ "levels" ] ->
      cmd_levels system;
      `Continue
  | [ "junta"; n ] -> (
      match int_of_string_opt n with
      | Some keep when keep >= 1 && keep <= Level.count ->
          System.junta system ~keep;
          say system "resident through level %d; user space now ends at %d" keep
            (System.user_boundary system - 1);
          `Continue
      | Some _ | None ->
          say system "junta: expected a level 1..13";
          `Continue)
  | [ "counterjunta" ] ->
      System.counter_junta system;
      say system "all levels restored";
      `Continue
  | [ "cache" ] ->
      cmd_cache system;
      `Continue
  | [ "sync" ] ->
      cmd_sync system;
      `Continue
  | [ "health" ] ->
      cmd_health system;
      `Continue
  | [ "trace" ] ->
      cmd_trace system 20;
      `Continue
  | [ "trace"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
          cmd_trace system n;
          `Continue
      | Some _ | None ->
          say system "trace: expected a positive event count";
          `Continue)
  | [ "profile" ] ->
      cmd_profile system 5;
      `Continue
  | [ "profile"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
          cmd_profile system n;
          `Continue
      | Some _ | None ->
          say system "profile: expected a positive span count";
          `Continue)
  | [ "top" ] ->
      cmd_top system 10;
      `Continue
  | [ "top"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
          cmd_top system n;
          `Continue
      | Some _ | None ->
          say system "top: expected a positive histogram count";
          `Continue)
  | [ "requests" ] ->
      cmd_requests system 10;
      `Continue
  | [ "requests"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
          cmd_requests system n;
          `Continue
      | Some _ | None ->
          say system "requests: expected a positive trace count";
          `Continue)
  | [ "blackbox" ] ->
      cmd_blackbox system;
      `Continue
  | [ "peers" ] ->
      cmd_peers system;
      `Continue
  | [ "serve" ] ->
      cmd_serve system 1000;
      `Continue
  | [ "serve"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
          cmd_serve system n;
          `Continue
      | Some _ | None ->
          say system "serve: expected a positive round count";
          `Continue)
  | [ "run"; name ] ->
      cmd_run system name;
      `Continue
  | [ "compile"; src; dst ] ->
      cmd_compile system src dst;
      `Continue
  | [ "assemble"; src; dst ] ->
      cmd_assemble system src dst;
      `Continue
  | [ "copy"; src; dst ] ->
      cmd_copy system src dst;
      `Continue
  | [ "dump"; name ] ->
      cmd_dump system name;
      `Continue
  | [ name ] when looks_like_code_file system name ->
      cmd_run system name;
      `Continue
  | cmd :: _ ->
      say system "%s: unknown command" cmd;
      `Continue

let run ?(max_commands = 1000) system =
  let input = Keyboard.stream (System.keyboard system) in
  let rec loop executed =
    if executed >= max_commands then { commands_executed = executed; quit = false }
    else begin
      Stream.put_string (Display.stream (System.display system)) "> ";
      match Stream.get_line input with
      | None -> { commands_executed = executed; quit = false }
      | Some line -> (
          Stream.put_line (Display.stream (System.display system)) line;
          match execute system line with
          | `Quit -> { commands_executed = executed + 1; quit = true }
          | `Continue ->
              (* The pause between commands is the single-user machine's
                 idle time: spend it verifying one slice of the pack.
                 The patrol lives in level 5's disk code; a junta that
                 removed the disk code removed the patrol with it. *)
              if System.resident_level system >= 5 then begin
                ignore (System.patrol_tick system : Alto_fs.Patrol.report);
                (* The distributed audit shares the idle moment: one
                   ReplicaTick per command keeps this machine answering
                   its peers even while its user types. *)
                match System.replica_tick system with
                | Some tick -> ignore (tick () : int)
                | None -> ()
              end;
              loop (executed + 1))
    end
  in
  loop 0
