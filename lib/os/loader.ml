module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module Vm = Alto_machine.Vm
module Asm = Alto_machine.Asm
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Obs = Alto_obs.Obs

let m_programs_saved = Obs.counter "loader.programs_saved"
let m_programs_loaded = Obs.counter "loader.programs_loaded"
let m_programs_run = Obs.counter "loader.programs_run"
let h_code_words = Obs.histogram "loader.code_words"

type error =
  | File_error of File.error
  | Dir_error of Directory.error
  | Bad_format of string
  | Unknown_service of string
  | Too_big of int

let pp_error fmt = function
  | File_error e -> File.pp_error fmt e
  | Dir_error e -> Directory.pp_error fmt e
  | Bad_format msg -> Format.fprintf fmt "not a code file: %s" msg
  | Unknown_service name -> Format.fprintf fmt "fixup names unknown service %S" name
  | Too_big words -> Format.fprintf fmt "code of %d words does not fit below the system" words

let magic = 0xC0DE
let format_version = 1

let ( let* ) = Result.bind
let file_err r = Result.map_error (fun e -> File_error e) r
let dir_err r = Result.map_error (fun e -> Dir_error e) r

(* Code file layout (words):
     0 magic   2 code length   4 fixup count
     1 version 3 entry offset  5 origin (the address the code was
                                 assembled for and must be loaded at)
     6..  fixups: [code offset; name length; packed name]...
     then the code words. *)

let encode (program : Asm.program) =
  let fixup_words =
    List.concat_map
      (fun (offset, name) ->
        (Word.of_int_exn offset :: Word.of_int_exn (String.length name)
        :: Array.to_list (Word.words_of_string name)))
      program.Asm.fixups
  in
  let header =
    [
      Word.of_int magic;
      Word.of_int format_version;
      Word.of_int_exn (Array.length program.Asm.code);
      Word.of_int_exn (program.Asm.entry - program.Asm.origin);
      Word.of_int_exn (List.length program.Asm.fixups);
      Word.of_int_exn program.Asm.origin;
    ]
  in
  Array.concat [ Array.of_list header; Array.of_list fixup_words; program.Asm.code ]

let save_program system ~name (program : Asm.program) =
  let fs = System.fs system in
  let* root = dir_err (Directory.open_root fs) in
  let* file =
    let* existing = dir_err (Directory.lookup root name) in
    match existing with
    | Some e -> file_err (File.open_leader fs e.Directory.entry_file)
    | None ->
        let* file = file_err (File.create fs ~name) in
        let* () = dir_err (Directory.add root ~name (File.leader_name file)) in
        Ok file
  in
  let words = encode program in
  Obs.incr m_programs_saved;
  Obs.observe h_code_words (Array.length program.Asm.code);
  let clock = Alto_fs.Fs.clock fs in
  Obs.time clock "loader.save_us" @@ fun () ->
  let* () = file_err (File.truncate file ~len:0) in
  let* () = file_err (File.write_words file ~pos:0 words) in
  let* () = file_err (File.flush_leader file) in
  Ok file

type parsed = {
  code : Word.t array;
  entry_offset : int;
  origin : int;
  fixups : (int * string) list;
}

let parse_code words =
  if Array.length words < 6 then Error (Bad_format "too short")
  else if Word.to_int words.(0) <> magic then Error (Bad_format "bad magic")
  else if Word.to_int words.(1) <> format_version then Error (Bad_format "unknown version")
  else begin
    let code_len = Word.to_int words.(2) in
    let entry_offset = Word.to_int words.(3) in
    let fixup_count = Word.to_int words.(4) in
    let origin = Word.to_int words.(5) in
    let rec read_fixups acc pos k =
      if k = 0 then Ok (List.rev acc, pos)
      else if pos + 2 > Array.length words then Error (Bad_format "fixup table truncated")
      else begin
        let offset = Word.to_int words.(pos) in
        let name_len = Word.to_int words.(pos + 1) in
        let name_words = (name_len + 1) / 2 in
        if pos + 2 + name_words > Array.length words then
          Error (Bad_format "fixup name truncated")
        else
          let name =
            Word.string_of_words (Array.sub words (pos + 2) name_words) ~len:name_len
          in
          read_fixups ((offset, name) :: acc) (pos + 2 + name_words) (k - 1)
      end
    in
    let* fixups, code_pos = read_fixups [] 6 fixup_count in
    if code_pos + code_len > Array.length words then Error (Bad_format "code truncated")
    else if entry_offset >= code_len && code_len > 0 then
      Error (Bad_format "entry outside code")
    else if List.exists (fun (offset, _) -> offset >= code_len) fixups then
      Error (Bad_format "fixup outside code")
    else Ok { code = Array.sub words code_pos code_len; entry_offset; origin; fixups }
  end

(* Place a parsed code image at its recorded origin, binding fixups. *)
let install system parsed =
  let code_len = Array.length parsed.code in
  if parsed.origin < System.user_base then
    Error (Bad_format "code assembled below the user area")
  else if parsed.origin + code_len > System.user_boundary system then
    Error (Too_big code_len)
  else begin
    Memory.write_block (System.memory system) ~pos:parsed.origin parsed.code;
    (* Bind every reference to a system procedure's stub. *)
    let rec bind = function
      | [] -> Ok ()
      | (offset, name) :: rest -> (
          match Level.service_address name with
          | addr ->
              Memory.write (System.memory system) (parsed.origin + offset)
                (Word.of_int_exn addr);
              bind rest
          | exception Not_found -> Error (Unknown_service name))
    in
    let* () = bind parsed.fixups in
    Ok (parsed.origin + parsed.entry_offset)
  end

let load system file =
  let clock = Alto_fs.Fs.clock (System.fs system) in
  Obs.time clock "loader.load_us" @@ fun () ->
  let total = File.byte_length file / 2 in
  let* words = file_err (File.read_words file ~pos:0 ~len:total) in
  let* parsed = parse_code words in
  let* entry = install system parsed in
  Obs.incr m_programs_loaded;
  Ok entry

let load_by_name system name =
  let fs = System.fs system in
  let* root = dir_err (Directory.open_root fs) in
  let* entry = dir_err (Directory.lookup root name) in
  match entry with
  | None -> Error (Bad_format (Printf.sprintf "no file named %S" name))
  | Some e ->
      let* file = file_err (File.open_leader fs e.Directory.entry_file) in
      load system file

let disassemble parsed =
  let n = Array.length parsed.code in
  let fetch i = if i < n then parsed.code.(i) else Word.zero in
  let rec go acc offset =
    if offset >= n then List.rev acc
    else
      let address = parsed.origin + offset in
      match Alto_machine.Instr.decode ~fetch ~pc:offset with
      | Ok (instr, next) when next <= n ->
          let line =
            Format.asprintf "%5d: %a%s" address Alto_machine.Instr.pp instr
              (if offset = parsed.entry_offset then "   <- entry" else "")
          in
          go (line :: acc) next
      | Ok _ | Error _ ->
          let line =
            Printf.sprintf "%5d: .word %d" address (Word.to_int parsed.code.(offset))
          in
          go (line :: acc) (offset + 1)
  in
  go [] 0

let run ?(fuel = 2_000_000) system file =
  Obs.incr m_programs_run;
  let* entry = load system file in
  System.set_overlay_loader system (fun name ->
      Result.map_error
        (fun e -> Format.asprintf "%a" pp_error e)
        (load_by_name system name));
  let cpu = System.cpu system in
  Cpu.set_pc cpu (Word.of_int entry);
  Cpu.set_frame_pointer cpu (Word.of_int (System.user_boundary system));
  Ok (Vm.run ~fuel cpu ~handler:(System.handler system))

let run_by_name ?fuel system name =
  let fs = System.fs system in
  let* root = dir_err (Directory.open_root fs) in
  let* entry = dir_err (Directory.lookup root name) in
  match entry with
  | None -> Error (Bad_format (Printf.sprintf "no file named %S" name))
  | Some e ->
      let* file = file_err (File.open_leader fs e.Directory.entry_file) in
      run ?fuel system file
