(** The crash-point injection harness.

    §3.3 promises "recovery from crashes"; this module enumerates the
    crashes. Each trial builds a committed, sealed volume, arms
    {!Alto_disk.Fault.crash_after_writes} so the machine dies at the Nth
    writing operation of a real metadata-mutating workload — cleanly, or
    tearing the fatal sector's label or value — then boots recovery
    ({!System.boot}'s dirty path: flight-record adoption, the bounded
    tail scan, the makeup lap) and interrogates the result with the
    offline checker ({!Alto_fs.Fsck}). A crash point bounded recovery
    cannot answer for escalates to the full scavenger, after which the
    checker must be satisfied and every committed file must read back
    either byte-identical or as a page-exact mix of its two legitimate
    versions.

    Five workloads cover the machinery's writing paths: file
    overwrite/delete/create, the track buffers' coalesced flush sweep,
    the compactor's copy-and-retire moves, the patrol's marginal-page
    relocations, and a world OutLoad. Everything is seeded and
    simulated-clock driven, so a sweep is deterministic end to end. *)

type totals = {
  mutable trials : int;
  mutable crash_points : int;  (** Trials in which the crash fired. *)
  mutable torn_points : int;  (** Crashes that left a torn sector. *)
  mutable completed : int;  (** The countdown outran the workload. *)
  mutable dirty_boots : int;  (** Recoveries down the dirty path. *)
  mutable flight_adoptions : int;
  mutable bounded_recoveries : int;
      (** Boot recovery alone satisfied both the checker and the content
          oracle — no scavenge needed. *)
  mutable scavenges : int;  (** Escalations to the full scavenger. *)
  mutable findings : int;  (** Advisory fsck findings after recovery. *)
  mutable violations : int;  (** Broken invariants — must stay zero. *)
  mutable violation_log : string list;  (** Newest first, for the report. *)
}

val pp_totals : Format.formatter -> totals -> unit

val run : ?points_per_workload:int -> ?only:string list -> unit -> totals
(** Sweep [points_per_workload] (default 15) evenly spaced crash points
    per workload, each in three variants: a clean between-sector crash,
    a torn label, a torn value. [only] restricts to the named workloads
    (["files"], ["bio-flush"], ["compactor"], ["patrol"], ["outload"]).
    Leaves the flight recorder disarmed. *)
