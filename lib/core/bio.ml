module Word = Alto_machine.Word
module Sector = Alto_disk.Sector
module Geometry = Alto_disk.Geometry
module Drive = Alto_disk.Drive
module Sched = Alto_disk.Sched
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof

let m_hits = Obs.counter "fs.bio.hits"
let m_misses = Obs.counter "fs.bio.misses"
let m_fills = Obs.counter "fs.bio.fills"
let m_fill_sectors = Obs.counter "fs.bio.fill_sectors"
let m_absorbed = Obs.counter "fs.bio.absorbed"
let m_flushes = Obs.counter "fs.bio.flushes"
let m_flushed_sectors = Obs.counter "fs.bio.flushed_sectors"
let m_evictions = Obs.counter "fs.bio.evictions"
let m_invalidations = Obs.counter "fs.bio.invalidations"
let m_write_conflicts = Obs.counter "fs.bio.write_conflicts"

(* One whole-track buffer. Per relative sector: the label image and
   value observed at fill/install time, the label generation that
   polices their staleness, and the dirty bit for delayed writes. *)
type slot = {
  base : int;  (* flat index of the track's sector 0 *)
  labels : Word.t array array;
  values : Word.t array array;
  gens : int array;
  valid : bool array;
  dirty : bool array;
  mutable used : int;  (* LRU tick of the last hit *)
}

type t = {
  drive : Drive.t;
  label_cache : Label_cache.t;
  spt : int;
  mutable tracks : int;  (* capacity in whole-track buffers; 0 disables *)
  mutable high_water : int;  (* dirty sectors that trigger a full flush *)
  mutable explicit_high_water : bool;
  slots : (int, slot) Hashtbl.t;  (* keyed by track number *)
  mutable tick : int;
  mutable dirty_count : int;
  mutable on_dirty : unit -> unit;
}

let default_tracks = 16

let create ?(tracks = default_tracks) ?high_water ~label_cache drive =
  if tracks < 0 then invalid_arg "Bio.create: negative track count";
  let spt = (Drive.geometry drive).Geometry.sectors_per_track in
  {
    drive;
    label_cache;
    spt;
    tracks;
    high_water =
      (match high_water with Some h -> h | None -> max 1 (tracks * spt / 2));
    explicit_high_water = high_water <> None;
    slots = Hashtbl.create (max 1 tracks);
    tick = 0;
    dirty_count = 0;
    on_dirty = ignore;
  }

let drive t = t.drive
let enabled t = t.tracks > 0
let set_on_dirty t f = t.on_dirty <- f
let cached_tracks t = Hashtbl.length t.slots
let dirty_sectors t = t.dirty_count

let cached_sectors t =
  Hashtbl.fold
    (fun _ s acc -> acc + Array.fold_left (fun n v -> if v then n + 1 else n) 0 s.valid)
    t.slots 0

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let track_of t index = index / t.spt
let rel_of t index = index mod t.spt

(* {2 Write-back}

   Dirty sectors reach the platter as label-[Check] + value-[Write]:
   the stored label image was platter truth when the write was
   absorbed, so if the check fails the sector was re-labelled
   underneath the delayed write (freed, relocated, repaired) and the
   platter's version of events wins — the write is dropped and
   counted, exactly as a stale hint would have been refused in-band. *)

type flush_report = { sectors : int; tracks : int; conflicts : int }

let flush_sectors t targets =
  match targets with
  | [] -> { sectors = 0; tracks = 0; conflicts = 0 }
  | _ ->
      let targets = Array.of_list targets in
      let requests =
        Array.map
          (fun (slot, rel) ->
            Sched.request
              ~label:slot.labels.(rel) ~value:slot.values.(rel)
              (Disk_address.of_index (slot.base + rel))
              { Drive.op_none with
                Drive.label = Some Drive.Check;
                value = Some Drive.Write;
              })
          targets
      in
      let conflicts = ref 0 in
      Prof.span (Drive.clock t.drive) "bio.flush" (fun () ->
          let outcomes = Sched.run_batch t.drive requests in
          Array.iteri
            (fun i (slot, rel) ->
              (match outcomes.(i).Sched.result with
              | Ok () ->
                  (* The check re-verified the label against the platter
                     an instant ago; capture the generation after the op
                     so retry trips during the flush itself kill the
                     entry rather than hide behind it. *)
                  slot.gens.(rel) <-
                    Drive.label_generation t.drive
                      (Disk_address.of_index (slot.base + rel))
              | Error _ ->
                  incr conflicts;
                  Obs.incr m_write_conflicts;
                  slot.valid.(rel) <- false);
              if slot.dirty.(rel) then begin
                slot.dirty.(rel) <- false;
                t.dirty_count <- t.dirty_count - 1
              end)
            targets);
      let tracks =
        let seen = Hashtbl.create 8 in
        Array.iter (fun (slot, _) -> Hashtbl.replace seen slot.base ()) targets;
        Hashtbl.length seen
      in
      Obs.incr m_flushes;
      Obs.add m_flushed_sectors (Array.length targets);
      { sectors = Array.length targets; tracks; conflicts = !conflicts }

(* Ascending sector order so the elevator sees each flush as contiguous
   track runs and the outcome order is deterministic. *)
let dirty_targets_of t pred =
  Hashtbl.fold
    (fun _ slot acc ->
      let run = ref acc in
      for rel = t.spt - 1 downto 0 do
        if slot.dirty.(rel) && pred slot then run := (slot, rel) :: !run
      done;
      !run)
    t.slots []
  |> List.sort (fun ((a : slot), ra) (b, rb) -> compare (a.base + ra) (b.base + rb))

let flush t = flush_sectors t (dirty_targets_of t (fun _ -> true))

let flush_slot t slot =
  ignore (flush_sectors t (dirty_targets_of t (fun s -> s.base = slot.base)))

(* {2 Residency} *)

let drop_sector t slot rel =
  if slot.valid.(rel) || slot.dirty.(rel) then begin
    slot.valid.(rel) <- false;
    if slot.dirty.(rel) then begin
      slot.dirty.(rel) <- false;
      t.dirty_count <- t.dirty_count - 1
    end;
    Obs.incr m_invalidations
  end

(* Generation-live check; a dead dirty sector is flushed first (the
   platter arbitrates whether the delayed write still applies) so a
   legitimate pending write survives a mere retry trip on the sector. *)
let live t slot rel =
  slot.valid.(rel)
  && begin
       let here = Disk_address.of_index (slot.base + rel) in
       if slot.gens.(rel) = Drive.label_generation t.drive here then true
       else begin
         if slot.dirty.(rel) then flush_slot t slot;
         drop_sector t slot rel;
         false
       end
     end

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun track slot acc ->
        match acc with
        | Some (_, best) when best.used <= slot.used -> acc
        | Some _ | None -> Some (track, slot))
      t.slots None
  in
  match victim with
  | None -> ()
  | Some (track, slot) ->
      flush_slot t slot;
      Hashtbl.remove t.slots track;
      Obs.incr m_evictions

let fresh_slot t track =
  {
    base = track * t.spt;
    labels = Array.init t.spt (fun _ -> Array.make Sector.label_words Word.zero);
    values = Array.init t.spt (fun _ -> Array.make Sector.value_words Word.zero);
    gens = Array.make t.spt 0;
    valid = Array.make t.spt false;
    dirty = Array.make t.spt false;
    used = next_tick t;
  }

let slot_for t track =
  match Hashtbl.find_opt t.slots track with
  | Some slot -> slot
  | None ->
      while Hashtbl.length t.slots >= t.tracks do
        evict_lru t
      done;
      let slot = fresh_slot t track in
      Hashtbl.add t.slots track slot;
      slot

(* {2 The read side} *)

let probe ~count t addr =
  if not (enabled t) then None
  else
    let index = Disk_address.to_index addr in
    match Hashtbl.find_opt t.slots (track_of t index) with
    | None -> None
    | Some slot ->
        let rel = rel_of t index in
        if live t slot rel then begin
          if count then begin
            slot.used <- next_tick t;
            Obs.incr m_hits
          end;
          Some (slot.labels.(rel), slot.values.(rel))
        end
        else None

let lookup t addr = probe ~count:true t addr
let peek t addr = probe ~count:false t addr

let fill t addr =
  if enabled t then begin
    Obs.incr m_misses;
    let index = Disk_address.to_index addr in
    let slot = slot_for t (track_of t index) in
    slot.used <- next_tick t;
    let wanted = ref [] in
    for rel = t.spt - 1 downto 0 do
      (* Dirty sectors hold content newer than the platter; live clean
         sectors are already right. Everything else is (re)read. *)
      if not (slot.dirty.(rel) || live t slot rel) then wanted := rel :: !wanted
    done;
    match !wanted with
    | [] -> ()
    | wanted ->
        let wanted = Array.of_list wanted in
        let requests =
          Array.map
            (fun rel ->
              Sched.request ~label:slot.labels.(rel) ~value:slot.values.(rel)
                (Disk_address.of_index (slot.base + rel))
                { Drive.op_none with
                  Drive.label = Some Drive.Read;
                  value = Some Drive.Read;
                })
            wanted
        in
        Obs.incr m_fills;
        Obs.add m_fill_sectors (Array.length wanted);
        Prof.span (Drive.clock t.drive) "bio.fill" (fun () ->
            let outcomes = Sched.run_batch t.drive requests in
            Array.iteri
              (fun i rel ->
                match outcomes.(i).Sched.result with
                | Ok () ->
                    let here = Disk_address.of_index (slot.base + rel) in
                    (* Post-op generation: retries that tripped during
                       the fill already bumped it, so the entry is live
                       from here until the next piece of evidence. *)
                    slot.gens.(rel) <- Drive.label_generation t.drive here;
                    slot.valid.(rel) <- true;
                    (* A fill reads labels anyway — share them with the
                       chain-walking paths. *)
                    Label_cache.note_verified t.label_cache here slot.labels.(rel)
                | Error _ -> slot.valid.(rel) <- false)
              wanted)
  end

(* {2 The write side} *)

let absorb t addr value =
  if not (enabled t) then false
  else
    let index = Disk_address.to_index addr in
    match Hashtbl.find_opt t.slots (track_of t index) with
    | None -> false
    | Some slot ->
        let rel = rel_of t index in
        if not (live t slot rel) then false
        else begin
          if not slot.dirty.(rel) then begin
            (* The hook runs before the write is recorded: the owner's
               descriptor flush must not sweep up the very write being
               absorbed, and the dirty flag must hit the platter before
               the volume holds acknowledged-but-unwritten state. *)
            t.on_dirty ();
            slot.dirty.(rel) <- true;
            t.dirty_count <- t.dirty_count + 1
          end;
          Array.blit value 0 slot.values.(rel) 0 (Array.length value);
          slot.used <- next_tick t;
          Obs.incr m_absorbed;
          if t.dirty_count >= t.high_water then ignore (flush t);
          true
        end

let install t addr ~label ~value =
  if enabled t then
    let index = Disk_address.to_index addr in
    match Hashtbl.find_opt t.slots (track_of t index) with
    | None -> ()
    | Some slot ->
        let rel = rel_of t index in
        if slot.dirty.(rel) then begin
          (* The caller just wrote through: the platter is current and
             whatever delayed write was pending is superseded. *)
          slot.dirty.(rel) <- false;
          t.dirty_count <- t.dirty_count - 1;
          Obs.incr m_invalidations
        end;
        Array.blit label 0 slot.labels.(rel) 0 (Array.length label);
        Array.blit value 0 slot.values.(rel) 0 (Array.length value);
        slot.gens.(rel) <- Drive.label_generation t.drive addr;
        slot.valid.(rel) <- true;
        slot.used <- next_tick t

let invalidate t addr =
  let index = Disk_address.to_index addr in
  match Hashtbl.find_opt t.slots (track_of t index) with
  | None -> ()
  | Some slot -> drop_sector t slot (rel_of t index)

let clear t =
  let sectors = cached_sectors t in
  if sectors > 0 then Obs.add m_invalidations sectors;
  t.dirty_count <- 0;
  Hashtbl.reset t.slots

let set_tracks (t : t) n =
  if n < 0 then invalid_arg "Bio.set_tracks: negative track count";
  if n < t.tracks then begin
    ignore (flush t);
    if n = 0 then clear t
    else
      while Hashtbl.length t.slots > n do
        evict_lru t
      done
  end;
  t.tracks <- n;
  if not t.explicit_high_water then t.high_water <- max 1 (n * t.spt / 2)
