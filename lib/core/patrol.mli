(** The online patrol: an incremental verify sweep with proactive sector
    relocation and bounded unsafe-shutdown recovery (§3.5 extended).

    The scavenger of §3.5 is an offline program: it repairs a broken pack
    once the damage is done. The patrol is the same label discipline run
    {e before} the damage: during idle moments the system verifies a
    bounded slice of the pack — one cylinder-sized batch of label+value
    reads through the {!Alto_disk.Sched} elevator, about one seek per
    tick — and uses the retry ladder's evidence ({!Alto_disk.Reliable})
    to find sectors that still answer but are starting to fail. A live
    page on such a sector is {e relocated}: copied to a freshly allocated
    sector, its neighbours' link hints and its catalogue entry
    re-pointed, the old sector retired and quarantined, and the verified
    label cache told about both ends of the move. The data survives the
    sector's eventual death instead of being salvaged after it.

    The same sweep doubles as crash recovery. The sweep cursor is
    persisted in the disk descriptor, and the descriptor carries a dirty
    flag set on the first mutation after a consistency point; a pack that
    mounts dirty crashed, and {!recover} finishes the lap in flight —
    cursor to end of pack — instead of scavenging the whole pack. That
    restores {e safety} (every allocation-map lie in the unswept tail is
    found, every half-finished free reclaimed) at a cost bounded by the
    tail, not the pack. {e Completeness} — the head region behind the
    crashed cursor — is owed a {e makeup lap}: create the session's
    patrol with [~makeup_until:recovery.resumed_at] and {!tick} runs an
    extra ordinary slice per idle moment until the cursor crosses that
    region, so pages leaked behind the crash are found within one lap
    instead of lazily.

    What one tick does with each sector, by label classification:

    - {b valid, clean read}: confirm the map says busy (repair the hint
      if not — "map protection").
    - {b valid, suspect} (retries ≥ threshold): relocate, reusing the
      value the batch already read.
    - {b valid, hard failure}: salvage-read label and value; relocate if
      legible, otherwise quarantine and count the page lost.
    - {b free, map busy}: a leaked allocation or half-finished free —
      reclaim the map bit (unless quarantined).
    - {b bad marker, not in table}: a crash separated the marker from
      the table entry — rejoin them.
    - {b garbage}: ownership unknown; left for the scavenger.

    Sectors at fixed addresses (the boot page, the descriptor file) are
    verified but never moved or map-"repaired": their address is their
    identity. Relocation never runs on the descriptor's own pages. *)

type t

val create : ?slice:int -> ?suspect_retries:int -> ?makeup_until:int -> Fs.t -> t
(** [slice] (default 24, one Diablo 31 cylinder) sectors are verified
    per tick; [suspect_retries] (default 1) is the retry count at which
    a live page's sector is considered marginal and the page moved —
    false positives cost one copy, false negatives risk the data.
    [makeup_until] (default 0 = none) marks the head region [[0, k)]
    a crash recovery skipped; ticks run at double rate until the cursor
    crosses it. Raises [Invalid_argument] when [slice] or
    [suspect_retries] is below 1, or [makeup_until] is negative. *)

val fs : t -> Fs.t

val makeup_pending : t -> int
(** Sectors of the post-recovery makeup region the cursor has not
    reached yet; 0 once the completeness lap is done (or was never
    owed). *)

type report = {
  first_sector : int;
  scanned : int;
  suspects : int;  (** Live pages whose sector showed retry evidence. *)
  relocated : int;
  quarantined : int;
  pages_lost : int;  (** Hard failures whose value defeated salvage. *)
  map_repairs : int;
  links_repaired : int;
  wrapped : bool;  (** This tick completed a lap of the pack. *)
}

val tick : t -> report
(** Verify the next slice and heal what needs healing. Advances the
    cursor (wrapping); persists cursor, map and bad-sector spill when
    the tick changed anything or completed a lap — between those points
    the in-core cursor may run ahead of the disk's copy, which only
    makes a recovery rescan a few already-verified sectors. *)

(** {2 Cumulative instance totals (the [health] command's view)} *)

val laps : t -> int
val slices : t -> int
val suspects_found : t -> int
val relocated : t -> int
val quarantined : t -> int
val pages_lost : t -> int
val map_repairs : t -> int

(** {2 Unsafe-shutdown recovery} *)

type recovery = {
  resumed_at : int;  (** The persisted cursor the scan resumed from. *)
  sectors_scanned : int;
  r_suspects : int;
  r_relocated : int;
  r_quarantined : int;
  r_pages_lost : int;
  r_map_repairs : int;
  duration_us : int;  (** Simulated time the scan cost. *)
}

val recover : ?slice:int -> ?suspect_retries:int -> Fs.t -> recovery
(** Finish the lap a crash interrupted: scan from the persisted cursor
    to the end of the pack, then reset the cursor, flush the spill file
    and declare a consistency point ({!Fs.mark_clean}). Boot calls this
    when a pack mounts dirty; cost is proportional to the unswept tail,
    against the scavenger's multiple whole-pack passes. *)

val pp_report : Format.formatter -> report -> unit
val pp_recovery : Format.formatter -> recovery -> unit
