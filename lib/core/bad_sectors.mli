(** The bad-sector spill file.

    The descriptor's bad-sector table holds 64 entries; a pack sick
    enough to overflow it used to lose the extra verdicts at unmount
    ([fs.quarantine_overflow] counted them going). The overflow now
    spills into an ordinary catalogued file, ["BadSectors.table"] in the
    root directory, which this module reads back at mount — so a
    quarantine verdict survives remount no matter how many there are.
    The allocator refuses spilled sectors exactly as it refuses tabled
    ones ({!Fs.quarantine}).

    Being an ordinary file, the table is scavenged, relocated and
    label-checked like any other; losing it loses only the overflow
    verdicts, and the sectors re-convict themselves at the next failure.

    Layout, in words: magic [0xBAD5], entry count, then one sector index
    per entry. *)

type error =
  | Fs_error of Fs.error
  | File_error of File.error
  | Malformed of string  (** The file exists but does not parse. *)

val pp_error : Format.formatter -> error -> unit

val file_name : string
(** ["BadSectors.table"]. *)

val load : Fs.t -> (int, error) result
(** Read the spill file (if catalogued) and re-enter every plausible
    entry via {!Fs.adopt_spilled}; returns how many were adopted. A pack
    with no spill file loads 0 — the common, healthy case. Boot calls
    this right after mount. *)

val flush : Fs.t -> (int, error) result
(** Write {!Fs.spilled_table} out, creating and cataloguing the file on
    first spill; an existing file is rewritten (and truncated) even when
    the spill is empty. Returns the entry count written. The patrol and
    the scavenger call this whenever the spill has grown. *)
