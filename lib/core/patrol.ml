module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Sched = Alto_disk.Sched
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs

let m_slices = Obs.counter "fs.patrol.slices"
let m_verified = Obs.counter "fs.patrol.sectors_verified"
let m_marginal = Obs.counter "fs.patrol.marginal_found"
let m_relocations = Obs.counter "fs.patrol.relocations"
let m_quarantined = Obs.counter "fs.patrol.quarantined"
let m_pages_lost = Obs.counter "fs.patrol.pages_lost"
let m_map_repairs = Obs.counter "fs.patrol.map_repairs"
let m_links_repaired = Obs.counter "fs.patrol.links_repaired"
let m_laps = Obs.counter "fs.patrol.laps"
let m_makeup_slices = Obs.counter "fs.patrol.makeup_slices"
let m_makeup_complete = Obs.counter "fs.patrol.makeup_complete"
let m_recoveries = Obs.counter "fs.patrol.recoveries"

(* One cylinder of the Diablo 31 (2 tracks x 12 sectors): a slice the
   elevator turns into one seek plus streaming reads. *)
let default_slice = 24

type report = {
  first_sector : int;
  scanned : int;
  suspects : int;
  relocated : int;
  quarantined : int;
  pages_lost : int;
  map_repairs : int;
  links_repaired : int;
  wrapped : bool;
}

type t = {
  fs : Fs.t;
  slice : int;
  suspect_retries : int;
  mutable laps : int;
  mutable slices : int;
  mutable total_suspects : int;
  mutable total_relocated : int;
  mutable total_quarantined : int;
  mutable total_lost : int;
  mutable total_map_repairs : int;
  mutable makeup_until : int;
      (** After a crash recovery, the head region [0, makeup_until) was
          skipped by the bounded tail scan; until the cursor crosses it,
          {!tick} runs an extra slice so the completeness lap finishes
          at double rate instead of lazily. 0 = no makeup owed. *)
}

let create ?(slice = default_slice) ?(suspect_retries = 1) ?(makeup_until = 0) fs =
  if slice < 1 then invalid_arg "Patrol.create: slice below 1";
  if suspect_retries < 1 then invalid_arg "Patrol.create: suspect_retries below 1";
  if makeup_until < 0 then invalid_arg "Patrol.create: makeup_until below 0";
  {
    fs;
    slice;
    suspect_retries;
    laps = 0;
    slices = 0;
    total_suspects = 0;
    total_relocated = 0;
    total_quarantined = 0;
    total_lost = 0;
    total_map_repairs = 0;
    makeup_until;
  }

let fs t = t.fs
let laps t = t.laps
let slices t = t.slices

let makeup_pending t =
  if t.makeup_until <= 0 then 0
  else max 0 (t.makeup_until - Fs.patrol_cursor t.fs)
let suspects_found t = t.total_suspects
let relocated t = t.total_relocated
let quarantined t = t.total_quarantined
let pages_lost t = t.total_lost
let map_repairs t = t.total_map_repairs

(* Per-slice tallies, folded into the instance totals and the report. *)
type tally = {
  mutable c_suspects : int;
  mutable c_relocated : int;
  mutable c_quarantined : int;
  mutable c_lost : int;
  mutable c_map : int;
  mutable c_links : int;
  mutable c_changed : bool;
}

let fresh_tally () =
  {
    c_suspects = 0;
    c_relocated = 0;
    c_quarantined = 0;
    c_lost = 0;
    c_map = 0;
    c_links = 0;
    c_changed = false;
  }

(* Write the bad marker through a dying sector, best effort: the value
   surface accepts writes blind, and a sector too far gone to take even
   the marker is quarantined by the table alone. *)
let retire drive addr =
  match
    Reliable.run drive addr
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label:(Label.bad_words ()) ~value:(Label.free_value ()) ()
  with
  | Ok () | Error _ -> ()

let salvage_value drive addr =
  let value = Array.make Sector.value_words Word.zero in
  match
    Reliable.run ~policy:Reliable.salvage_policy drive addr
      { Drive.op_none with value = Some Drive.Read }
      ~value ()
  with
  | Ok () -> Some value
  | Error _ -> None

(* Point one neighbour's link hint at the page's new home. The labels at
   both ends of the move are already correct, so a failed fix-up merely
   leaves a stale hint for the §3.6 ladder to survive — never damage.
   A {e torn} fix-up is another matter: the rewrite overwrites a healthy
   page's only copy in place, and a crash mid-write would turn a hint
   refresh into data loss. So a complete patched twin is staged on a
   free sector first; on success it is freed again, and after a tear the
   scavenger's duplicate rescue adopts it. *)
let fix_neighbour t tally ~fid ~page ~addr ~patch =
  if Disk_address.is_nil addr || page < 0 then ()
  else
    let drive = Fs.drive t.fs and cache = Fs.label_cache t.fs in
    let fn = Page.full_name fid ~page ~addr in
    match Page.read ~cache drive fn with
    | Error _ -> ()
    | Ok (lab, value) ->
        let patched = patch lab in
        let staged =
          match Fs.allocate_page t.fs ~label:(fun _ -> patched) ~value with
          | Ok a -> Some a
          | Error _ -> None
        in
        (match Page.rewrite_label ~cache drive fn ~new_label:patched ~value with
        | Ok () ->
            tally.c_links <- tally.c_links + 1;
            Obs.incr m_links_repaired
        | Error _ -> ());
        (match staged with
        | None -> ()
        | Some a -> ignore (Fs.free_page t.fs (Page.full_name fid ~page ~addr:a)))

(* A relocated leader page: every root entry naming the file gets its
   address hint refreshed, and the descriptor's root pointer too when
   the root directory's own leader moved. *)
let fix_catalogue t dst fid =
  (match Fs.root_dir t.fs with
  | Some fn when File_id.equal fn.Page.abs.Page.fid fid ->
      Fs.set_root_dir t.fs (Page.full_name fid ~page:0 ~addr:dst)
  | Some _ | None -> ());
  match Directory.open_root t.fs with
  | Error _ -> ()
  | Ok root -> (
      match Directory.entries root with
      | Error _ -> ()
      | Ok entries ->
          List.iter
            (fun (e : Directory.entry) ->
              if
                File_id.equal e.Directory.entry_file.Page.abs.Page.fid fid
                && not (Disk_address.equal e.Directory.entry_file.Page.addr dst)
              then ignore (Directory.update_address root e.Directory.entry_name dst))
            entries)

(* Copy a page off a dying sector: first write to a fresh sector through
   the ordinary allocation path (so the free check and the map behave
   exactly as for any allocation), re-point the neighbours and the
   catalogue, then retire and quarantine the old sector. Returns the new
   address, or [None] when the disk is full and the page must limp on. *)
let relocate t tally ~src ~(lab : Label.t) ~value =
  let drive = Fs.drive t.fs and cache = Fs.label_cache t.fs in
  match Fs.allocate_page t.fs ~label:(fun _ -> lab) ~value with
  | Error _ -> None
  | Ok dst ->
      let fid = lab.Label.fid in
      fix_neighbour t tally ~fid ~page:(lab.Label.page - 1) ~addr:lab.Label.prev
        ~patch:(fun (l : Label.t) -> { l with Label.next = dst });
      fix_neighbour t tally ~fid ~page:(lab.Label.page + 1) ~addr:lab.Label.next
        ~patch:(fun (l : Label.t) -> { l with Label.prev = dst });
      if lab.Label.page = 0 then fix_catalogue t dst fid;
      retire drive src;
      Fs.quarantine t.fs src;
      (* Both ends of the move shed any cached label, explicitly: a
         cached image must never resurrect the page at its old address,
         nor mask the fresh label at the new one. *)
      Drive.bump_label_generation drive src;
      Drive.bump_label_generation drive dst;
      Label_cache.invalidate cache src;
      Label_cache.invalidate cache dst;
      (* The track buffer cache holds whole-sector images under the same
         generation discipline; shed both ends eagerly too (a delayed
         write to the old address must not be flushed over the retired
         sector, and the fresh page must be re-read, not remembered). *)
      Bio.invalidate (Fs.bio t.fs) src;
      Bio.invalidate (Fs.bio t.fs) dst;
      tally.c_relocated <- tally.c_relocated + 1;
      tally.c_changed <- true;
      Obs.incr m_relocations;
      Obs.event ~clock:(Drive.clock drive)
        ~fields:
          [
            ("src", Obs.I (Disk_address.to_index src));
            ("dst", Obs.I (Disk_address.to_index dst));
            ("serial", Obs.I fid.File_id.serial);
            ("page", Obs.I lab.Label.page);
          ]
        "fs.patrol.relocate";
      Some dst

let note_quarantined t tally addr ~lost =
  retire (Fs.drive t.fs) addr;
  Fs.quarantine t.fs addr;
  tally.c_quarantined <- tally.c_quarantined + 1;
  tally.c_changed <- true;
  Obs.incr m_quarantined;
  if lost then begin
    tally.c_lost <- tally.c_lost + 1;
    Obs.incr m_pages_lost
  end

(* The batch read hard-failed: the ordinary retry ladder is dry. Learn
   what the sector held under the salvage policy; a still-legible live
   page moves, anything else is quarantined where it stands. *)
let handle_hard_failure t tally addr =
  let drive = Fs.drive t.fs in
  let already = Fs.quarantined t.fs addr || Fs.spilled t.fs addr in
  let label_buf = Array.make Sector.label_words Word.zero in
  let salvage_label () =
    Reliable.run ~policy:Reliable.salvage_policy drive addr
      { Drive.op_none with label = Some Drive.Read }
      ~label:label_buf ()
  in
  match salvage_label () with
  | Error _ -> if not already then note_quarantined t tally addr ~lost:false
  | Ok () -> (
      match Label.classify label_buf with
      | Label.Valid lab -> (
          tally.c_suspects <- tally.c_suspects + 1;
          Obs.incr m_marginal;
          match salvage_value drive addr with
          | Some value -> ignore (relocate t tally ~src:addr ~lab ~value)
          | None ->
              (* The label survived but the data is gone: the page is
                 lost, and saying so beats serving garbage. *)
              if not already then note_quarantined t tally addr ~lost:true)
      | Label.Free | Label.Bad | Label.Garbage _ ->
          if not already then note_quarantined t tally addr ~lost:false)

(* Verify one slice of [k] sectors starting at [start] (wrapping past
   the end of the pack), classify each against its retry evidence and
   the allocation map, and heal what needs healing. The batched read
   itself is {!Audit.read_slice} — the same machinery the replication
   audit digests with. *)
let scan_slice t tally ~start ~k =
  (* Sectors 0..reserved_top are verified like the rest but never moved
     — their address is their identity, and the cure for a dying one is
     the scavenger's full rebuild (or a peer's repair, DESIGN §14). *)
  let reserved_top = Audit.reserved_top t.fs in
  let slice = Audit.read_slice t.fs ~start ~k in
  let indexes = slice.Audit.indexes in
  let labels = slice.Audit.labels in
  let values = slice.Audit.values in
  Obs.incr m_slices;
  Obs.add m_verified k;
  t.slices <- t.slices + 1;
  Array.iteri
    (fun j (outcome : Sched.outcome) ->
      let i = indexes.(j) in
      let addr = Disk_address.of_index i in
      let reserved = i <= reserved_top in
      match outcome.Sched.result with
      | Ok () -> (
          let suspect = outcome.Sched.retries >= t.suspect_retries in
          match Label.classify labels.(j) with
          | Label.Valid lab ->
              (* Map protection: a live page whose map bit reads free
                 would cost a stale-map hit (never data) at the next
                 allocation; fix the hint now. *)
              if (not reserved) && Fs.is_free_in_map t.fs addr then begin
                Fs.mark_busy t.fs addr;
                tally.c_map <- tally.c_map + 1;
                tally.c_changed <- true;
                Obs.incr m_map_repairs
              end;
              if
                suspect && (not reserved)
                && not (File_id.equal lab.Label.fid File_id.descriptor)
              then begin
                tally.c_suspects <- tally.c_suspects + 1;
                Obs.incr m_marginal;
                (* The batch already read the data; reuse it. *)
                ignore (relocate t tally ~src:addr ~lab ~value:values.(j))
              end
          | Label.Free ->
              (* Map reclamation: a freed page whose map bit stayed busy
                 (a crash between the free's label write and the next
                 descriptor flush) is merely leaked; reclaim it. A soft
                 trip on a free sector is only counted — quarantine
                 needs data at risk or a dry ladder, not one retry of
                 noise. *)
              if
                (not reserved)
                && (not (Fs.is_free_in_map t.fs addr))
                && (not (Fs.quarantined t.fs addr))
                && not (Fs.spilled t.fs addr)
              then begin
                Fs.mark_free t.fs addr;
                tally.c_map <- tally.c_map + 1;
                tally.c_changed <- true;
                Obs.incr m_map_repairs
              end
          | Label.Bad ->
              (* A marker without a table entry: a crash separated the
                 two verdicts. Rejoin them. *)
              if not (Fs.quarantined t.fs addr || Fs.spilled t.fs addr) then begin
                Fs.quarantine t.fs addr;
                tally.c_quarantined <- tally.c_quarantined + 1;
                tally.c_changed <- true;
                Obs.incr m_quarantined
              end
          | Label.Garbage _ ->
              (* A scrambled label is ownership unknown — scavenger
                 territory, not the patrol's. *)
              ())
      | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
          if not reserved then handle_hard_failure t tally addr)
    slice.Audit.outcomes

let finish_tally t tally =
  t.total_suspects <- t.total_suspects + tally.c_suspects;
  t.total_relocated <- t.total_relocated + tally.c_relocated;
  t.total_quarantined <- t.total_quarantined + tally.c_quarantined;
  t.total_lost <- t.total_lost + tally.c_lost;
  t.total_map_repairs <- t.total_map_repairs + tally.c_map

let report_of tally ~first_sector ~scanned ~wrapped =
  {
    first_sector;
    scanned;
    suspects = tally.c_suspects;
    relocated = tally.c_relocated;
    quarantined = tally.c_quarantined;
    pages_lost = tally.c_lost;
    map_repairs = tally.c_map;
    links_repaired = tally.c_links;
    wrapped;
  }

(* Persist spilled quarantine verdicts (rare) and the descriptor. Both
   best effort: a failed flush costs freshness, never consistency — the
   labels already carry the truth. *)
let persist t tally ~wrapped =
  if tally.c_changed || wrapped then begin
    if Fs.spilled_table t.fs <> [] then
      (match Bad_sectors.flush t.fs with Ok _ | Error _ -> ());
    match Fs.flush t.fs with Ok () | Error _ -> ()
  end

let tick_once t =
  let n = Drive.sector_count (Fs.drive t.fs) in
  let start = Fs.patrol_cursor t.fs in
  let k = min t.slice n in
  let tally = fresh_tally () in
  Obs.time (Fs.clock t.fs) "fs.patrol.slice_us" (fun () ->
      scan_slice t tally ~start ~k);
  Fs.set_patrol_cursor t.fs ((start + k) mod n);
  let wrapped = start + k >= n in
  if wrapped then begin
    t.laps <- t.laps + 1;
    Obs.incr m_laps
  end;
  finish_tally t tally;
  (* The cursor is persisted on change and at each lap boundary; in
     between it may run ahead of the disk copy, which only makes a
     recovery rescan a few already-verified sectors. *)
  persist t tally ~wrapped;
  report_of tally ~first_sector:start ~scanned:k ~wrapped

let check_makeup t ~wrapped =
  if t.makeup_until > 0 && (wrapped || Fs.patrol_cursor t.fs >= t.makeup_until)
  then begin
    t.makeup_until <- 0;
    Obs.incr m_makeup_complete;
    Obs.event ~clock:(Fs.clock t.fs) "fs.patrol.makeup_complete"
  end

let merge_reports a b =
  {
    first_sector = a.first_sector;
    scanned = a.scanned + b.scanned;
    suspects = a.suspects + b.suspects;
    relocated = a.relocated + b.relocated;
    quarantined = a.quarantined + b.quarantined;
    pages_lost = a.pages_lost + b.pages_lost;
    map_repairs = a.map_repairs + b.map_repairs;
    links_repaired = a.links_repaired + b.links_repaired;
    wrapped = a.wrapped || b.wrapped;
  }

let tick t =
  let r = tick_once t in
  check_makeup t ~wrapped:r.wrapped;
  if t.makeup_until = 0 then r
  else begin
    (* Completeness lap after recovery: the region behind the crashed
       cursor is owed a verify pass, so spend a second ordinary slice
       per idle tick until the lap catches up with where the crash
       happened — pages leaked there are found within one lap, not
       whenever the rotation gets around to them. *)
    Obs.incr m_makeup_slices;
    let r2 = tick_once t in
    check_makeup t ~wrapped:r2.wrapped;
    merge_reports r r2
  end

type recovery = {
  resumed_at : int;
  sectors_scanned : int;
  r_suspects : int;
  r_relocated : int;
  r_quarantined : int;
  r_pages_lost : int;
  r_map_repairs : int;
  duration_us : int;
}

(* Boot after a crash: instead of a whole-pack scavenge, finish the lap
   the patrol had in flight — scan from the persisted cursor to the end
   of the pack, then declare the consistency point. Sectors behind the
   cursor were verified earlier in the lap; what a crash can have left
   there (a leaked allocation, a stale hint) is harmless under the label
   discipline and waits for the next full lap or scavenge. *)
let recover ?slice ?suspect_retries fs =
  let t = create ?slice ?suspect_retries fs in
  let drive = Fs.drive fs in
  let clock = Drive.clock drive in
  let n = Drive.sector_count drive in
  let resumed_at = Fs.patrol_cursor fs in
  let started = Sim_clock.now_us clock in
  Obs.incr m_recoveries;
  let tally = fresh_tally () in
  let pos = ref resumed_at in
  while !pos < n do
    let k = min t.slice (n - !pos) in
    scan_slice t tally ~start:!pos ~k;
    pos := !pos + k
  done;
  finish_tally t tally;
  Fs.set_patrol_cursor fs 0;
  if Fs.spilled_table fs <> [] then
    (match Bad_sectors.flush fs with Ok _ | Error _ -> ());
  (match Fs.mark_clean fs with Ok () | Error _ -> ());
  let duration_us = Sim_clock.now_us clock - started in
  Obs.event ~clock
    ~fields:
      [
        ("resumed_at", Obs.I resumed_at);
        ("scanned", Obs.I (n - resumed_at));
        ("relocated", Obs.I tally.c_relocated);
        ("quarantined", Obs.I tally.c_quarantined);
        ("duration_us", Obs.I duration_us);
      ]
    "fs.patrol.recovery";
  {
    resumed_at;
    sectors_scanned = n - resumed_at;
    r_suspects = tally.c_suspects;
    r_relocated = tally.c_relocated;
    r_quarantined = tally.c_quarantined;
    r_pages_lost = tally.c_lost;
    r_map_repairs = tally.c_map;
    duration_us;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "slice %d+%d: %d suspect, %d relocated, %d quarantined, %d lost, %d map repairs%s"
    r.first_sector r.scanned r.suspects r.relocated r.quarantined r.pages_lost
    r.map_repairs
    (if r.wrapped then " (lap complete)" else "")

let pp_recovery fmt r =
  Format.fprintf fmt
    "recovered from sector %d: %d sectors in %a; %d relocated, %d quarantined, %d lost"
    r.resumed_at r.sectors_scanned Sim_clock.pp_duration r.duration_us r.r_relocated
    r.r_quarantined r.r_pages_lost
