module Word = Alto_machine.Word
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof

(* Label-check aborts: disk operations cut short because the sector's
   label did not carry the absolute name the caller asserted. Every one
   is a hint (or an allocation map) caught lying before it could do
   damage — the quantity §3.3 says the check exists to bound. *)
let m_label_check_aborts = Obs.counter "fs.label_check_aborts"

type absolute = { fid : File_id.t; page : int }

type full_name = { abs : absolute; addr : Disk_address.t }

let full_name fid ~page ~addr = { abs = { fid; page }; addr }

let pp_full_name fmt fn =
  Format.fprintf fmt "(%a, %d) @@ %a" File_id.pp fn.abs.fid fn.abs.page
    Disk_address.pp fn.addr

let next_name fn (label : Label.t) =
  if Disk_address.is_nil label.Label.next then None
  else Some (full_name fn.abs.fid ~page:(fn.abs.page + 1) ~addr:label.Label.next)

let prev_name fn (label : Label.t) =
  if Disk_address.is_nil label.Label.prev then None
  else Some (full_name fn.abs.fid ~page:(fn.abs.page - 1) ~addr:label.Label.prev)

type error = Hint_failed of Drive.error | Bad_label of string

let pp_error fmt = function
  | Hint_failed e -> Format.fprintf fmt "hint failed: %a" Drive.pp_error e
  | Bad_label msg -> Format.fprintf fmt "bad label: %s" msg

let decode_checked_label buf =
  match Label.of_words buf with
  | Ok label -> Ok label
  | Error msg ->
      Obs.incr m_label_check_aborts;
      Error (Bad_label msg)

let hint_failed e =
  (match e with
  | Drive.Check_mismatch _ -> Obs.incr m_label_check_aborts
  | Drive.Bad_sector -> ()
  | Drive.Transient _ ->
      (* The reliable layer already retried; what reaches here is a
         retry-exhausted sector, i.e. a hard failure. *)
      ());
  Error (Hint_failed e)

(* Remember a label image the operation that just completed verified. *)
let note cache addr words =
  match cache with
  | None -> ()
  | Some c -> Label_cache.note_verified c addr words

(* Replay the controller's check action against a cached label image:
   zero memory words learn the cached word, non-zero words must match.
   Mutates [pattern] exactly as the disk check would, and reports the
   first mismatch the same way — so a caller cannot tell a cached
   verdict from a disk verdict except by the microseconds it didn't
   spend. *)
let cached_check pattern cached =
  let n = Array.length pattern in
  let rec scan i =
    if i >= n then Ok ()
    else if Word.equal pattern.(i) Word.zero then begin
      pattern.(i) <- cached.(i);
      scan (i + 1)
    end
    else if Word.equal pattern.(i) cached.(i) then scan (i + 1)
    else
      Error
        (Drive.Check_mismatch
           {
             part = Sector.Label;
             offset = i;
             memory = pattern.(i);
             disk = cached.(i);
           })
  in
  scan 0

let read ?cache ?bio drive fn =
  Prof.span (Drive.clock drive) "page.read" @@ fun () ->
  let label_buf = Label.check_name fn.abs.fid ~page:fn.abs.page in
  let value = Array.make Sector.value_words Word.zero in
  (* Serve from a buffered track sector: replay the check against the
     buffered label image (platter truth while the generation is live),
     copy the value out of core. Mismatch verdicts are reproduced
     exactly — a stale hint is refused whether the track is buffered or
     not. *)
  let serve cached_label cached_value =
    match cached_check label_buf cached_label with
    | Error e -> hint_failed e
    | Ok () -> (
        Array.blit cached_value 0 value 0 Sector.value_words;
        note cache fn.addr label_buf;
        Prof.note "page.bio_hit";
        match decode_checked_label label_buf with
        | Ok label -> Ok (label, value)
        | Error e -> Error e)
  in
  let direct () =
    match
      Reliable.run drive fn.addr
        { Drive.op_none with label = Some Drive.Check; value = Some Drive.Read }
        ~label:label_buf ~value ()
    with
    | Error e -> hint_failed e
    | Ok () -> (
        note cache fn.addr label_buf;
        (match bio with
        | Some b -> Bio.install b fn.addr ~label:label_buf ~value
        | None -> ());
        match decode_checked_label label_buf with
        | Ok label -> Ok (label, value)
        | Error e -> Error e)
  in
  match bio with
  | None -> direct ()
  | Some b -> (
      match Bio.lookup b fn.addr with
      | Some (l, v) -> serve l v
      | None -> (
          Bio.fill b fn.addr;
          match Bio.peek b fn.addr with
          | Some (l, v) -> serve l v
          | None ->
              (* The fill could not read this sector (or the cache is
                 disabled): the direct path reports the true error and
                 climbs the usual ladder. *)
              direct ()))

(* A second source of cached label images: a buffered track sector
   knows its label too. Never fills — a label-only access costs one
   operation, a track fill costs twelve. *)
let bio_label bio addr =
  Option.bind bio (fun b ->
      Option.map (fun (label, _) -> label) (Bio.lookup b addr))

let read_label ?cache ?bio drive fn =
  Prof.span (Drive.clock drive) "page.read_label" @@ fun () ->
  let label_buf = Label.check_name fn.abs.fid ~page:fn.abs.page in
  let cached =
    match Option.bind cache (fun c -> Label_cache.lookup c fn.addr) with
    | Some _ as hit -> hit
    | None -> bio_label bio fn.addr
  in
  match cached with
  | Some cached -> (
      (* A label-only access answered from core: the one disk operation
         this function exists to issue is skipped entirely. *)
      Prof.note "page.cache_hit";
      match cached_check label_buf cached with
      | Error e -> hint_failed e
      | Ok () -> decode_checked_label label_buf)
  | None -> (
      if cache <> None then Prof.note "page.cache_miss";
      match
        Reliable.run drive fn.addr
          { Drive.op_none with label = Some Drive.Check }
          ~label:label_buf ()
      with
      | Error e -> hint_failed e
      | Ok () ->
          note cache fn.addr label_buf;
          decode_checked_label label_buf)

let check_value_size value =
  if Array.length value <> Sector.value_words then
    invalid_arg "Page: value must be 256 words"

let write ?(check = true) ?cache ?bio drive fn value =
  Prof.span (Drive.clock drive) "page.write" @@ fun () ->
  check_value_size value;
  if check then begin
    let label_buf = Label.check_name fn.abs.fid ~page:fn.abs.page in
    (* Delayed write-back: when the sector's track is buffered and
       generation-live, the buffered label image is platter truth, so
       the name check can replay against it and the value can sit in
       the buffer until the next coalesced flush — no disk operation at
       all. A check refusal here is a real refusal: the platter's label
       does not carry the asserted name. *)
    let absorbed =
      match bio with
      | None -> None
      | Some b -> (
          match Bio.lookup b fn.addr with
          | None -> None
          | Some (cached_label, _) -> (
              match cached_check label_buf cached_label with
              | Error e -> Some (hint_failed e)
              | Ok () ->
                  if Bio.absorb b fn.addr value then begin
                    note cache fn.addr label_buf;
                    Prof.note "page.bio_hit";
                    Some (decode_checked_label label_buf)
                  end
                  else None))
    in
    match absorbed with
    | Some result -> result
    | None -> (
        match
          Reliable.run drive fn.addr
            { Drive.op_none with label = Some Drive.Check; value = Some Drive.Write }
            ~label:label_buf ~value ()
        with
        | Error e -> hint_failed e
        | Ok () ->
            note cache fn.addr label_buf;
            (match bio with
            | Some b -> Bio.install b fn.addr ~label:label_buf ~value
            | None -> ());
            decode_checked_label label_buf)
  end
  else begin
    (* The unchecked write bypasses the name discipline the buffer
       relies on; whatever the buffer believed about this sector —
       a delayed write included — is superseded. *)
    (match bio with Some b -> Bio.invalidate b fn.addr | None -> ());
    match
      Reliable.run drive fn.addr
        { Drive.op_none with value = Some Drive.Write }
        ~value ()
    with
    | Error e -> hint_failed e
    | Ok () ->
        (* Without the check we can only trust the caller's absolute name. *)
        Ok
          (Label.make ~fid:fn.abs.fid ~page:fn.abs.page ~length:0
             ~next:Disk_address.nil ~prev:Disk_address.nil)
  end

let rewrite_label ?cache ?bio drive fn ~new_label ~value =
  Prof.span (Drive.clock drive) "page.rewrite_label" @@ fun () ->
  check_value_size value;
  let label_buf = Label.check_name fn.abs.fid ~page:fn.abs.page in
  let checked =
    let cached =
      match Option.bind cache (fun c -> Label_cache.lookup c fn.addr) with
      | Some _ as hit -> hit
      | None -> bio_label bio fn.addr
    in
    match cached with
    | Some cached ->
        Prof.note "page.cache_hit";
        cached_check label_buf cached
    | None ->
        if cache <> None then Prof.note "page.cache_miss";
        Reliable.run drive fn.addr
          { Drive.op_none with label = Some Drive.Check }
          ~label:label_buf ()
  in
  match checked with
  | Error e -> hint_failed e
  | Ok () -> (
      let new_words = Label.to_words new_label in
      match
        Reliable.run drive fn.addr
          { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
          ~label:new_words ~value ()
      with
      | Error e -> hint_failed e
      | Ok () ->
          (* The write is its own verification; the generation captured
             now postdates the write's bump, so the entry is live. *)
          note cache fn.addr new_words;
          (* The label write killed the buffered generation; re-install
             the fresh image (and supersede any delayed value write). *)
          (match bio with
          | Some b -> Bio.install b fn.addr ~label:new_words ~value
          | None -> ());
          Ok ())

let read_raw drive addr =
  let header = Array.make Sector.header_words Word.zero in
  let label = Array.make Sector.label_words Word.zero in
  match
    Reliable.run drive addr
      { Drive.op_none with header = Some Drive.Read; label = Some Drive.Read }
      ~header ~label ()
  with
  | Error e -> Error e
  | Ok () -> Ok (header, label)
