(** The offline checker: the scavenger's diagnosis without its surgery.

    §3.5's scavenger rebuilds a broken pack; this module only {e reads}
    one and reports what the rebuild would find — over a raw pack image,
    with no live [System] and no working descriptor required. It is the
    oracle the crash-injection harness sweeps torn-write crash points
    with, and the library behind the executive's [fsck] command.

    The report separates two severities. {e Findings} are damage the
    label discipline already tolerates: map lies (caught by the label
    check), stale link and address hints (caught by the hint ladder),
    orphans and leaked fragments (adopted or reclaimed by the
    scavenger), duplicate claims from a crash mid-move (disambiguated by
    the chain). {e Violations} are broken promises — a descriptor that
    does not mount, a catalogued file with a missing or unreadable page,
    a dangling directory entry: states bounded recovery must never leave
    behind, where the cure is a full scavenge.

    Everything runs through ordinary timed operations ({!Sweep} plus one
    whole-pack {!Audit.read_slice} batch), so a check's simulated cost
    is honest. Nothing is ever written. Callers checking a {e live}
    volume must {!Bio.flush} it first so the platter holds every
    acknowledged write. *)

module Drive = Alto_disk.Drive

type issue = { i_class : string; i_addr : int option; i_detail : string }

type counts = {
  sectors : int;
  live : int;
  free : int;
  marked_bad : int;
  bad_media : int;
  garbage : int;
  files : int;  (** Distinct file ids holding a parseable leader page. *)
  catalogued : int;  (** Root entries that named a real file. *)
  orphans : int;
}

type report = {
  counts : counts;
  descriptor_ok : bool;
  dirty : bool;
      (** The unsafe-shutdown flag was set: acknowledged delayed writes
          may be lost and bounded recovery is due. Status, not a
          violation — a live volume mid-workload is legitimately
          dirty. *)
  findings : issue list;
  violations : issue list;
  duration_us : int;
}

val check : ?verify_values:bool -> Drive.t -> report
(** Sweep every label, mount the descriptor read-only, compare the map,
    walk the catalogue and every file chain, and ([verify_values],
    default on) read every live page's data back. Counted in
    [fs.fsck.runs] / [fs.fsck.findings] / [fs.fsck.violations]. *)

val clean : report -> bool
(** Mountable, marked clean, and not a single finding or violation —
    the verdict a freshly settled volume must earn. *)

val pp_issue : Format.formatter -> issue -> unit
val pp_report : Format.formatter -> report -> unit
