(** The track buffer cache: whole-track buffers with delayed write-back.

    The verified-label cache (PR 3) proved that a cached copy whose
    staleness is policed by {!Drive.label_generation} pays for itself
    1:1 in saved disk operations. This module generalizes the idea from
    8-word labels to whole tracks, UNIX-v4-bio-style: a read that
    misses fills the {e entire} track in one elevator batch (a full
    track read costs one revolution from wherever the head lands, now
    that the sweep is rotation-aware), and every later sector read on
    that track is answered from memory. Writes are absorbed into the
    buffer, marked dirty and {e delayed}; they reach the platter
    coalesced into contiguous track sweeps through the same elevator —
    on eviction, on {!Fs.flush}, on an explicit {!flush} (the
    executive's [sync], OutLoad, quit), or when the dirty count crosses
    the high-water mark.

    {2 Coherence}

    Every buffered sector stores the {!Drive.label_generation} observed
    when its content was read or written, and is dead the moment the
    generation moves — the exact discipline of {!Label_cache}, so
    quarantine, retry evidence and patrol relocation can never be
    masked by the cache. Delayed writes carry the label image that was
    verified when the write was absorbed and are flushed as
    label-[Check] + value-[Write]: if anything re-labelled the sector
    in the meantime the platter wins, the stale write is dropped and
    counted ([fs.bio.write_conflicts]).

    {2 Crash safety}

    A dirty buffer means acknowledged-but-unwritten values, so the
    owner ({!Fs}) is told on every clean-to-dirty transition (the
    [on_dirty] hook) and sets the descriptor dirty flag; a power
    failure with buffers pending therefore boots into the bounded
    {!Patrol.recover} tail scan. Only {e values} of already-labelled
    pages are ever delayed — labels, allocation and the descriptor
    always write through — so a crash loses at most recent page
    contents, never structure.

    Readers of true pack state (audit digests, the patrol, the
    scavenger, raw transfers) must either bypass this cache after a
    {!flush}, or {!invalidate}/{!clear} what they overwrite. *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address

type t

val create : ?tracks:int -> ?high_water:int -> label_cache:Label_cache.t -> Drive.t -> t
(** An empty cache of at most [tracks] whole-track buffers (default 16;
    0 disables the cache entirely — every probe misses and nothing is
    absorbed). [high_water] is the dirty-sector count that triggers an
    automatic full flush (default: half the cache's sector capacity).
    Labels read by track fills are shared with [label_cache], so a fill
    also warms the chain-walking paths. *)

val drive : t -> Drive.t
val enabled : t -> bool

val set_tracks : t -> int -> unit
(** Resize (shrinking flushes and evicts; 0 flushes everything and
    disables). Raises [Invalid_argument] on a negative count. *)

val lookup : t -> Disk_address.t -> (Word.t array * Word.t array) option
(** [(label, value)] for the sector if it is buffered and its
    generation is still live; counts a hit. The arrays are the cache's
    own storage — callers must copy, not mutate. A generation-dead
    dirty sector is flushed (platter arbitrates) and dropped before
    reporting a miss; misses are counted by {!fill}, so probe-then-fill
    reads count one miss each. *)

val fill : t -> Disk_address.t -> unit
(** Read every unbuffered, non-dirty sector of the address's track in
    one elevator batch and install the survivors (sectors whose read
    hard-fails stay unbuffered — the caller's per-sector fallback path
    sees the true error). Counts one miss and one fill. May evict (and
    so flush) the least-recently-used track. No-op when disabled. *)

val peek : t -> Disk_address.t -> (Word.t array * Word.t array) option
(** {!lookup} without touching the hit/miss counters or the LRU clock —
    for the second probe after a {!fill}. *)

val absorb : t -> Disk_address.t -> Word.t array -> bool
(** Absorb a value write into the buffer: only when the sector is
    buffered and generation-live (so the stored label image is platter
    truth and the caller has already checked its name against it). On
    success the value is copied in, the sector marked dirty, the
    [on_dirty] hook run, and the write is delayed until a flush —
    [false] means the caller must write through (and then {!install}
    or {!invalidate}). *)

val install : t -> Disk_address.t -> label:Word.t array -> value:Word.t array -> unit
(** Record the outcome of a write-through or direct read as a clean
    buffered sector — only if its track is already resident (a write
    never allocates a buffer). Supersedes any pending dirty content for
    that sector. *)

val invalidate : t -> Disk_address.t -> unit
(** Drop the sector's buffered content {e without} flushing — for
    callers that just overwrote or relocated the sector out-of-band
    (quarantine, patrol relocation, replica repair): whatever the
    buffer held, including a pending dirty value, is superseded. *)

val clear : t -> unit
(** Drop every buffer, dirty ones included, without flushing — for
    InLoad's wholesale world swap ({e after} an explicit {!flush}) and
    for tests. *)

type flush_report = { sectors : int; tracks : int; conflicts : int }

val flush : t -> flush_report
(** Write every dirty sector back through one elevator batch —
    label-[Check] + value-[Write], coalesced by the C-SCAN sweep into
    contiguous track runs. Conflicted sectors (the platter was
    re-labelled since the write was absorbed) are dropped and counted.
    Buffers stay resident and clean. *)

val set_on_dirty : t -> (unit -> unit) -> unit
(** Hook run on every clean-to-dirty sector transition, {e before} the
    write is recorded — {!Fs} wires this to its mutation bookkeeping so
    the descriptor dirty flag reaches the platter while the volume's
    delayed writes are still reconstructible by a bounded recovery. *)

val cached_tracks : t -> int
val cached_sectors : t -> int
val dirty_sectors : t -> int
