module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Sched = Alto_disk.Sched
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof

let m_runs = Obs.counter "scavenger.runs"
let m_failed_runs = Obs.counter "scavenger.failed_runs"
let m_sectors_scanned = Obs.counter "scavenger.sectors_scanned"
let m_files_found = Obs.counter "scavenger.files_found"
let m_orphans_adopted = Obs.counter "scavenger.orphans_adopted"
let m_links_repaired = Obs.counter "scavenger.links_repaired"
let m_labels_reclaimed = Obs.counter "scavenger.labels_reclaimed"
let m_pages_lost = Obs.counter "scavenger.pages_lost"
let m_pages_quarantined = Obs.counter "scavenger.pages_quarantined"
let m_relocated_pages = Obs.counter "scavenger.relocated_pages"
let m_entries_fixed = Obs.counter "scavenger.entries_fixed"
let m_entries_removed = Obs.counter "scavenger.entries_removed"
let m_roots_rebuilt = Obs.counter "scavenger.roots_rebuilt"
let m_marginal_relocated = Obs.counter "scavenger.marginal_relocated"
let m_duplicates_rescued = Obs.counter "scavenger.duplicates_rescued"
let m_leaders_rebuilt = Obs.counter "scavenger.leaders_rebuilt"

(* The span histogram "scavenger.duration_us" is owned by the
   [Obs.time] wrapper in {!scavenge}. *)

type report = {
  sectors_scanned : int;
  files_found : int;
  nameless_files : int;
  directories_found : int;
  orphans_adopted : int;
  links_repaired : int;
  labels_reclaimed : int;
  bad_sectors : int;
  entries_fixed : int;
  entries_removed : int;
  incomplete_files : int;
  pages_lost : int;
  duplicate_pages : int;
  relocated_pages : int;
  marginal_relocated : int;
  pages_marked_bad : int;
  duplicates_rescued : int;
  leaders_rebuilt : int;
  root_rebuilt : bool;
  duration_us : int;
}

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>scanned %d sectors in %a@,\
     files %d (dirs %d), orphans adopted %d@,\
     links repaired %d, labels reclaimed %d, bad sectors %d@,\
     entries fixed %d, removed %d; incomplete files %d, pages lost %d@,\
     duplicates %d, relocated %d%s%s%s%s%s@]"
    r.sectors_scanned Sim_clock.pp_duration r.duration_us r.files_found
    r.directories_found r.orphans_adopted r.links_repaired r.labels_reclaimed
    r.bad_sectors r.entries_fixed r.entries_removed r.incomplete_files
    r.pages_lost r.duplicate_pages r.relocated_pages
    (if r.marginal_relocated > 0 then
       Printf.sprintf ", %d marginal pages rescued" r.marginal_relocated
     else "")
    (if r.pages_marked_bad > 0 then
       Printf.sprintf ", %d pages marked bad" r.pages_marked_bad
     else "")
    (if r.duplicates_rescued > 0 then
       Printf.sprintf ", %d pages rescued from twins" r.duplicates_rescued
     else "")
    (if r.leaders_rebuilt > 0 then
       Printf.sprintf ", %d leaders rebuilt" r.leaders_rebuilt
     else "")
    (if r.root_rebuilt then ", root rebuilt" else "")


(* Mutable per-file assembly: page number -> (sector index, label). *)
type file_pages = (int, int * Label.t) Hashtbl.t

type state = {
  drive : Drive.t;
  mutable duplicate_pages : int;
  mutable duplicates_rescued : int;
  mutable leaders_rebuilt : int;
  mutable pages_lost : int;
  mutable incomplete_files : int;
  mutable links_repaired : int;
  mutable labels_reclaimed : int;
  mutable relocated_pages : int;
  mutable marginal_relocated : int;
  mutable entries_fixed : int;
  mutable entries_removed : int;
  mutable orphans_adopted : int;
}

(* Copy one page's sector to a fresh location, out of the descriptor's
   reserved range (or off a marginal surface). The read runs under the
   salvage policy: this is the last copy of somebody's data, so the
   scavenger tries much harder than the ordinary ladder before giving
   the page up. *)
let move_page st ~fid ~pn ~src ~dst (label : Label.t) =
  let value = Array.make Sector.value_words Word.zero in
  let src_addr = Disk_address.of_index src and dst_addr = Disk_address.of_index dst in
  match
    Reliable.run ~policy:Reliable.salvage_policy st.drive src_addr
      { Drive.op_none with value = Some Drive.Read }
      ~value ()
  with
  | Error _ -> false
  | Ok () -> (
      ignore fid;
      ignore pn;
      match
        Reliable.run st.drive dst_addr
          { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
          ~label:(Label.to_words label) ~value ()
      with
      | Error _ -> false
      | Ok () ->
          st.relocated_pages <- st.relocated_pages + 1;
          true)

(* Rewrite a page's label with corrected links (reads the value first —
   the write-continuation rule means a label write must carry the value
   along — then writes both back). The read runs under the salvage
   policy: the page being re-chained may sit on a marginal sector, and a
   failed repair here strands the rest of the file behind a dangling
   link. *)
let repair_label st ~fid ~pn ~addr_index ~length ~next ~prev =
  let addr = Disk_address.of_index addr_index in
  let value = Array.make Sector.value_words Word.zero in
  match
    Reliable.run ~policy:Reliable.salvage_policy st.drive addr
      { Drive.op_none with label = Some Drive.Check; value = Some Drive.Read }
      ~label:(Label.check_name fid ~page:pn) ~value ()
  with
  | Error _ -> false
  | Ok () -> (
      let new_label = Label.make ~fid ~page:pn ~length ~next ~prev in
      match
        Reliable.run st.drive addr
          { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
          ~label:(Label.to_words new_label) ~value ()
      with
      | Ok () ->
          st.links_repaired <- st.links_repaired + 1;
          true
      | Error _ -> false)

let scavenge_run ~verify_values ~suspect_retries drive =
  let clock = Drive.clock drive in
  let started = Sim_clock.now_us clock in
  (* Each pass that touches the disk runs under a named span, so the
     profile splits the minute the paper quotes into its real parts. *)
  let pass name f = Prof.span clock ("scavenger." ^ name) f in
  let sweep = pass "sweep" (fun () -> Sweep.run drive) in
  let n = Array.length sweep.Sweep.classes in
  let st =
    {
      drive;
      duplicate_pages = 0;
      duplicates_rescued = 0;
      leaders_rebuilt = 0;
      pages_lost = 0;
      incomplete_files = 0;
      links_repaired = 0;
      labels_reclaimed = 0;
      relocated_pages = 0;
      marginal_relocated = 0;
      entries_fixed = 0;
      entries_removed = 0;
      orphans_adopted = 0;
    }
  in

  (* 1. Group live pages by file id; detect duplicate absolute names.
     The first claimant wins, but the losers are kept aside: a crash
     mid-move (compaction, relocation) leaves two sectors claiming one
     page, and if the chosen copy turns out torn the twin may still
     hold the data. *)
  let files : (File_id.t, file_pages) Hashtbl.t = Hashtbl.create 64 in
  let spares : (File_id.t * int, (int * Label.t) list) Hashtbl.t = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    match sweep.Sweep.classes.(i) with
    | Sweep.Live label ->
        let fid = label.Label.fid in
        (* The descriptor is rebuilt from scratch, so its old pages are
           simply not collected. *)
        if not (File_id.equal fid File_id.descriptor) then begin
          let pages =
            match Hashtbl.find_opt files fid with
            | Some p -> p
            | None ->
                let p = Hashtbl.create 8 in
                Hashtbl.add files fid p;
                p
          in
          match Hashtbl.find_opt pages label.Label.page with
          | Some _ ->
              st.duplicate_pages <- st.duplicate_pages + 1;
              let key = (fid, label.Label.page) in
              let prior = Option.value ~default:[] (Hashtbl.find_opt spares key) in
              Hashtbl.replace spares key ((i, label) :: prior)
          | None -> Hashtbl.add pages label.Label.page (i, label)
        end
    | Sweep.Free_sector | Sweep.Marked_bad | Sweep.Bad_media | Sweep.Garbage _ -> ()
  done;

  (* 1b. Optional value verification: read every live page's data under
     the salvage retry policy. A sector whose label works but whose data
     surface is gone gets the bad marker written into its label — §3.5's
     "marked in the label with a special value so that they will never
     be used again" — and its page drops out of its file. A sector that
     reads back only after [suspect_retries] or more retries is
     *marginal*: still readable today, unlikely to be tomorrow. Its page
     survives, but the sector joins the suspect list and its data is
     copied off to a fresh sector in step 4. *)
  let quarantined : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let suspects : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  if verify_values then
    pass "verify" (fun () ->
    (* One elevator batch over every live page. The probe buffer is
       shared: the pass only cares whether each read succeeded and how
       hard the retry ladder worked, never what the data was. *)
    let probe = Array.make Alto_disk.Sector.value_words Word.zero in
    let live =
      Hashtbl.fold
        (fun fid (pages : file_pages) acc ->
          Hashtbl.fold (fun pn (i, _) acc -> (i, pn, fid, pages) :: acc) pages acc)
        files []
    in
    let live = Array.of_list live in
    Array.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) live;
    let requests =
      Array.map
        (fun (i, _, _, _) ->
          Sched.request ~value:probe (Disk_address.of_index i)
            { Drive.op_none with Drive.value = Some Drive.Read })
        live
    in
    let outcomes =
      Sched.run_batch ~policy:Reliable.salvage_policy st.drive requests
    in
    Array.iteri
      (fun j outcome ->
        let i, pn, fid, pages = live.(j) in
        match outcome.Sched.result with
        | Ok () ->
            if outcome.Sched.retries >= suspect_retries then
              Hashtbl.replace suspects i ()
        | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
            (* Write the marker; the data surface accepts writes blind. *)
            (match
               Reliable.run st.drive (Disk_address.of_index i)
                 { Drive.op_none with
                   Drive.label = Some Drive.Write;
                   value = Some Drive.Write
                 }
                 ~label:(Label.bad_words ()) ~value:(Label.free_value ()) ()
             with
            | Ok () | Error _ -> ());
            Hashtbl.replace quarantined i ();
            (* Before declaring the page lost, try its twins: a crash
               between a move's copy and its retire leaves a readable
               duplicate, and the torn copy must not take the data down
               with it. *)
            let rec rescue = function
              | [] ->
                  Hashtbl.remove pages pn;
                  st.pages_lost <- st.pages_lost + 1
              | (si, slabel) :: rest -> (
                  match
                    Reliable.run ~policy:Reliable.salvage_policy st.drive
                      (Disk_address.of_index si)
                      { Drive.op_none with
                        Drive.label = Some Drive.Check;
                        value = Some Drive.Read
                      }
                      ~label:(Label.check_name fid ~page:pn)
                      ~value:probe ()
                  with
                  | Ok () ->
                      Hashtbl.replace pages pn (si, slabel);
                      st.duplicates_rescued <- st.duplicates_rescued + 1
                  | Error _ -> rescue rest)
            in
            rescue (Option.value ~default:[] (Hashtbl.find_opt spares (fid, pn))))
      outcomes);

  (* 2. Per-file contiguity: keep the longest prefix 0..k; everything
     beyond a gap is lost. A headless file — its leader sector torn by a
     crash or decayed — still has every data page on the platter, each
     label naming its (file, page): §3.2 keeps "all the properties of
     the file other than its length and its data" in the leader, so a
     fresh leader on a free sector is the only thing reconstruction
     needs to write. The file keeps its directory name if catalogued
     (entries bind the file id, not the leader sector) and gets a
     Scavenged name otherwise. *)
  let spare_free = ref (n - 1) in
  let take_free_sector () =
    while
      !spare_free >= 0
      &&
      match sweep.Sweep.classes.(!spare_free) with
      | Sweep.Free_sector -> false
      | Sweep.Live _ | Sweep.Marked_bad | Sweep.Bad_media | Sweep.Garbage _ -> true
    do
      decr spare_free
    done;
    if !spare_free < 0 then None
    else begin
      let i = !spare_free in
      decr spare_free;
      Some i
    end
  in
  let rebuild_leader fid (pages : file_pages) =
    match Hashtbl.find_opt pages 1 with
    | None -> false
    | Some (p1_i, _) -> (
        let rec last k = if Hashtbl.mem pages (k + 1) then last (k + 1) else k in
        let k = last 1 in
        let last_i, _ = Hashtbl.find pages k in
        let leader =
          Leader.make
            ~name:
              (Printf.sprintf "Scavenged.%d!%d" fid.File_id.serial fid.File_id.version)
            ~last_page:k
            ~last_addr:(Disk_address.of_index last_i)
            ~maybe_consecutive:false ()
        in
        let label =
          Label.make ~fid ~page:0 ~length:Sector.bytes_per_page
            ~next:(Disk_address.of_index p1_i) ~prev:Disk_address.nil
        in
        match take_free_sector () with
        | None -> false
        | Some dst -> (
            match
              Reliable.run st.drive (Disk_address.of_index dst)
                { Drive.op_none with
                  Drive.label = Some Drive.Write;
                  value = Some Drive.Write
                }
                ~label:(Label.to_words label)
                ~value:(Leader.to_value leader) ()
            with
            | Ok () ->
                Hashtbl.replace pages 0 (dst, label);
                st.leaders_rebuilt <- st.leaders_rebuilt + 1;
                true
            | Error _ -> false))
  in
  let final : (File_id.t, (int * Label.t) array) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun fid (pages : file_pages) ->
      if Hashtbl.length pages = 0 then ()
      else if not (Hashtbl.mem pages 0 || rebuild_leader fid pages) then begin
        st.incomplete_files <- st.incomplete_files + 1;
        st.pages_lost <- st.pages_lost + Hashtbl.length pages
      end
      else begin
        let rec prefix k = if Hashtbl.mem pages (k + 1) then prefix (k + 1) else k in
        let k = prefix 0 in
        let total = Hashtbl.length pages in
        if total > k + 1 then begin
          st.incomplete_files <- st.incomplete_files + 1;
          Hashtbl.iter
            (fun pn (_, _) -> if pn > k then st.pages_lost <- st.pages_lost + 1)
            pages
        end;
        Hashtbl.replace final fid (Array.init (k + 1) (fun pn -> Hashtbl.find pages pn))
      end)
    files;

  (* 3. Occupancy: the reserved range, bad sectors, and every kept page. *)
  let fs = Fs.create_unmounted drive in
  let reserved_top = 1 + Fs.descriptor_page_count fs in
  let reserved i = i >= 1 && i <= reserved_top in
  let busy = Array.make n false in
  busy.(0) <- true;
  for i = 1 to reserved_top do
    busy.(i) <- true
  done;
  let bad_sectors = ref 0 in
  for i = 0 to n - 1 do
    match sweep.Sweep.classes.(i) with
    | Sweep.Marked_bad | Sweep.Bad_media ->
        busy.(i) <- true;
        incr bad_sectors
    | Sweep.Live _ | Sweep.Free_sector | Sweep.Garbage _ ->
        if Hashtbl.mem quarantined i then busy.(i) <- true
  done;
  Hashtbl.iter
    (fun _ pages ->
      Array.iter (fun (i, _) -> if not (reserved i) then busy.(i) <- true) pages)
    final;

  (* 4. Evacuate live pages from the reserved range (page 0, the boot
     page, stays where it is) — and off suspect sectors, while their
     data can still be read. An evacuated suspect gets the bad marker in
     its old label and joins the quarantine list; if no room or the copy
     fails, the page stays put and keeps limping. *)
  let next_target = ref 0 in
  let pick_target () =
    while
      !next_target < n
      && (busy.(!next_target)
         ||
         match sweep.Sweep.classes.(!next_target) with
         | Sweep.Marked_bad | Sweep.Bad_media -> true
         | Sweep.Live _ | Sweep.Free_sector | Sweep.Garbage _ -> false)
    do
      incr next_target
    done;
    if !next_target >= n then None
    else begin
      busy.(!next_target) <- true;
      Some !next_target
    end
  in
  pass "evacuate" (fun () ->
  Hashtbl.iter
    (fun fid pages ->
      Array.iteri
        (fun pn (i, label) ->
          let suspect = Hashtbl.mem suspects i in
          if reserved i || suspect then
            match pick_target () with
            | Some dst when move_page st ~fid ~pn ~src:i ~dst label ->
                pages.(pn) <- (dst, label);
                if suspect then begin
                  st.marginal_relocated <- st.marginal_relocated + 1;
                  (* Retire the old copy: bad marker in the label so the
                     sector reads as quarantined ever after, never as a
                     duplicate of the page that just moved. *)
                  (match
                     Reliable.run st.drive (Disk_address.of_index i)
                       { Drive.op_none with
                         Drive.label = Some Drive.Write;
                         value = Some Drive.Write
                       }
                       ~label:(Label.bad_words ()) ~value:(Label.free_value ())
                       ()
                   with
                  | Ok () | Error _ -> ());
                  Hashtbl.replace quarantined i ()
                end
            | Some _ | None ->
                if suspect then
                  (* Could not rescue it; the page stays on the marginal
                     sector and keeps its data for now. *)
                  pages.(pn) <- (i, label)
                else begin
                  (* No room or the move failed: the page is lost. *)
                  st.pages_lost <- st.pages_lost + 1;
                  pages.(pn) <- (i, label)
                end)
        pages)
    final);

  (* 5. Free every non-busy sector that is not already free — one
     elevator batch of label+value writes. Writes never mutate their
     buffers, so every request shares the two free patterns. *)
  let free_label = Label.free_words () and free_value = Label.free_value () in
  let to_free = ref [] in
  for i = n - 1 downto 0 do
    if not busy.(i) then
      match sweep.Sweep.classes.(i) with
      | Sweep.Free_sector -> ()
      | Sweep.Garbage _ | Sweep.Live _ -> to_free := i :: !to_free
      | Sweep.Marked_bad | Sweep.Bad_media -> assert false
  done;
  let to_free = Array.of_list !to_free in
  let free_outcomes =
    pass "free" (fun () ->
        Sched.run_batch st.drive
          (Array.map
             (fun i ->
               Sched.request ~label:free_label ~value:free_value
                 (Disk_address.of_index i)
                 { Drive.op_none with
                   Drive.label = Some Drive.Write;
                   value = Some Drive.Write
                 })
             to_free))
  in
  Array.iteri
    (fun j outcome ->
      let i = to_free.(j) in
      match outcome.Sched.result with
      | Ok () -> (
          match sweep.Sweep.classes.(i) with
          | Sweep.Garbage _ ->
              st.labels_reclaimed <- st.labels_reclaimed + 1
          | Sweep.Live _ | Sweep.Free_sector | Sweep.Marked_bad
          | Sweep.Bad_media ->
              ())
      | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
          busy.(i) <- true;
          incr bad_sectors)
    free_outcomes;

  (* 6. Install the rebuilt allocation map, and record every sector
     known bad — marked in the label, unreadable media, or quarantined
     during this run — in the volume's persistent bad-sector table so
     the verdict survives remounts. *)
  for i = 0 to n - 1 do
    let addr = Disk_address.of_index i in
    if busy.(i) then Fs.mark_busy fs addr else Fs.mark_free fs addr;
    let known_bad =
      match sweep.Sweep.classes.(i) with
      | Sweep.Marked_bad | Sweep.Bad_media -> true
      | Sweep.Live _ | Sweep.Free_sector | Sweep.Garbage _ ->
          Hashtbl.mem quarantined i
    in
    if known_bad then Fs.quarantine fs addr
  done;

  (* 7. Repair links (and force the last page's next link to NIL). *)
  pass "links" (fun () ->
  Hashtbl.iter
    (fun fid pages ->
      let last = Array.length pages - 1 in
      let addr_of pn =
        if pn < 0 || pn > last then Disk_address.nil
        else Disk_address.of_index (fst pages.(pn))
      in
      Array.iteri
        (fun pn (i, label) ->
          let next = addr_of (pn + 1) and prev = addr_of (pn - 1) in
          if
            (not (Disk_address.equal label.Label.next next))
            || not (Disk_address.equal label.Label.prev prev)
          then begin
            if
              repair_label st ~fid ~pn ~addr_index:i ~length:label.Label.length
                ~next ~prev
            then
              pages.(pn) <-
                (i, Label.make ~fid ~page:pn ~length:label.Label.length ~next ~prev)
          end)
        pages)
    final);

  (* 8. Read every leader page: the leader name is the file's survival
     kit, so the scavenger verifies each one is legible. This pass is a
     large share of the minute the paper quotes — one scattered read per
     file — so the whole set goes through the elevator as one batch. *)
  let nameless_files = ref 0 in
  let leaders =
    Array.of_list
      (Hashtbl.fold (fun fid pages acc -> (fid, fst pages.(0)) :: acc) final [])
  in
  let leader_values =
    Array.init (Array.length leaders) (fun _ ->
        Array.make Sector.value_words Word.zero)
  in
  let leader_outcomes =
    pass "leaders" (fun () ->
        Sched.run_batch drive
          (Array.mapi
             (fun j (fid, i) ->
               Sched.request
                 ~label:(Label.check_name fid ~page:0)
                 ~value:leader_values.(j)
                 (Disk_address.of_index i)
                 { Drive.op_none with
                   Drive.label = Some Drive.Check;
                   value = Some Drive.Read
                 })
             leaders))
  in
  Array.iteri
    (fun j outcome ->
      match outcome.Sched.result with
      | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
          incr nameless_files
      | Ok () -> (
          match Leader.of_value leader_values.(j) with
          | Ok _ -> ()
          | Error _ -> incr nameless_files))
    leader_outcomes;

  (* 9. Serial counter: beyond every serial seen. *)
  let max_serial =
    Hashtbl.fold (fun fid _ m -> max m fid.File_id.serial) final 0
  in
  Fs.set_next_serial fs (max (max_serial + 1) File_id.first_user_serial);

  (* 9. Directories: verify entries, fix addresses, drop dangling ones. *)
  let leader_name_of fid = Page.full_name fid ~page:0 ~addr:(Disk_address.of_index (fst (Hashtbl.find final fid).(0))) in
  let referenced : (File_id.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let open_directories =
    pass "directories" (fun () ->
        Hashtbl.fold
          (fun fid _ acc ->
            if File_id.is_directory fid then
              match File.open_leader fs (leader_name_of fid) with
              | Ok file -> (fid, file) :: acc
              | Error _ -> acc
            else acc)
          final [])
  in
  pass "directories" (fun () ->
  List.iter
    (fun (_fid, dir_file) ->
      let entries, damaged = Directory.salvage dir_file in
      let changed = ref damaged in
      let kept =
        List.filter_map
          (fun (e : Directory.entry) ->
            let efid = e.Directory.entry_file.Page.abs.Page.fid in
            match Hashtbl.find_opt final efid with
            | None ->
                st.entries_removed <- st.entries_removed + 1;
                changed := true;
                None
            | Some pages ->
                Hashtbl.replace referenced efid ();
                let real = Disk_address.of_index (fst pages.(0)) in
                if Disk_address.equal e.Directory.entry_file.Page.addr real then Some e
                else begin
                  st.entries_fixed <- st.entries_fixed + 1;
                  changed := true;
                  Some
                    {
                      e with
                      Directory.entry_file =
                        Page.full_name efid ~page:0 ~addr:real;
                    }
                end)
          entries
      in
      if !changed then
        match Directory.rewrite dir_file kept with
        | Ok () -> ()
        | Error _ -> ())
    open_directories);

  (* 10. Choose or rebuild the root directory. *)
  let find_root () =
    match
      List.find_opt
        (fun (fid, _) -> File_id.equal fid File_id.root_directory)
        open_directories
    with
    | Some (_, file) -> Some file
    | None ->
        List.find_opt
          (fun (_, file) -> String.equal (File.leader file).Leader.name "SysDir.")
          open_directories
        |> Option.map snd
  in
  let root_rebuilt = ref false in
  let root_result =
    pass "root" (fun () ->
        match find_root () with
        | Some file -> Ok file
        | None ->
            root_rebuilt := true;
            let fid =
              if Hashtbl.mem final File_id.root_directory then
                Fs.fresh_fid ~directory:true fs
              else File_id.root_directory
            in
            File.create_with_id fs fid ~name:"SysDir.")
  in
  match root_result with
  | Error e -> Error (Format.asprintf "cannot rebuild a root directory: %a" File.pp_error e)
  | Ok root -> (
      Fs.set_root_dir fs (File.leader_name root);
      Hashtbl.replace referenced (File.fid root) ();

      (* 11. Adopt orphans under their leader names. *)
      let unique_name base =
        let rec go candidate k =
          match Directory.lookup root candidate with
          | Ok None -> candidate
          | Ok (Some _) -> go (Printf.sprintf "%s~%d" base k) (k + 1)
          | Error _ -> candidate
        in
        go base 1
      in
      pass "orphans" (fun () ->
      Hashtbl.iter
        (fun fid pages ->
          if not (Hashtbl.mem referenced fid) then begin
            let addr = Disk_address.of_index (fst pages.(0)) in
            let fn = Page.full_name fid ~page:0 ~addr in
            let base =
              match Page.read drive fn with
              | Ok (_, value) -> (
                  match Leader.of_value value with
                  | Ok leader when String.length leader.Leader.name > 0 ->
                      leader.Leader.name
                  | Ok _ | Error _ ->
                      Printf.sprintf "Scavenged.%d!%d" fid.File_id.serial
                        fid.File_id.version)
              | Error _ ->
                  Printf.sprintf "Scavenged.%d!%d" fid.File_id.serial
                    fid.File_id.version
            in
            match Directory.add root ~name:(unique_name base) fn with
            | Ok () -> st.orphans_adopted <- st.orphans_adopted + 1
            | Error _ -> ()
          end)
        final);

      (* 12. A fresh descriptor at the standard address. *)
      match pass "rebuild" (fun () -> Fs.rebuild_descriptor fs) with
      | Error e -> Error (Format.asprintf "cannot write a fresh descriptor: %a" Fs.pp_error e)
      | Ok () ->
          (* The rebuilt volume is a consistency point: persist any
             quarantine verdicts that overflowed the descriptor table,
             seal a flight record, and clear the unsafe-shutdown flag.
             Best effort — failure costs only a redundant recovery scan
             at the next boot. *)
          pass "rebuild" (fun () ->
              if Fs.spilled_table fs <> [] then
                (match Bad_sectors.flush fs with Ok _ | Error _ -> ());
              Flight.flush ~reason:"scavenge" fs;
              if Fs.dirty fs then
                match Fs.mark_clean fs with Ok () | Error _ -> ());
          let report =
            {
              sectors_scanned = n;
              files_found = Hashtbl.length final;
              nameless_files = !nameless_files;
              directories_found = List.length open_directories;
              orphans_adopted = st.orphans_adopted;
              links_repaired = st.links_repaired;
              labels_reclaimed = st.labels_reclaimed;
              bad_sectors = !bad_sectors;
              entries_fixed = st.entries_fixed;
              entries_removed = st.entries_removed;
              incomplete_files = st.incomplete_files;
              pages_lost = st.pages_lost;
              duplicate_pages = st.duplicate_pages;
              relocated_pages = st.relocated_pages;
              marginal_relocated = st.marginal_relocated;
              pages_marked_bad = Hashtbl.length quarantined;
              duplicates_rescued = st.duplicates_rescued;
              leaders_rebuilt = st.leaders_rebuilt;
              root_rebuilt = !root_rebuilt;
              duration_us = Sim_clock.now_us clock - started;
            }
          in
          Ok (fs, report))

(* Publish one run's report into the registry: the scavenger's findings
   become structured metrics, not just the ad-hoc record. *)
let record_report r =
  Obs.add m_sectors_scanned r.sectors_scanned;
  Obs.add m_files_found r.files_found;
  Obs.add m_orphans_adopted r.orphans_adopted;
  Obs.add m_links_repaired r.links_repaired;
  Obs.add m_labels_reclaimed r.labels_reclaimed;
  Obs.add m_pages_lost r.pages_lost;
  Obs.add m_pages_quarantined r.pages_marked_bad;
  Obs.add m_relocated_pages r.relocated_pages;
  Obs.add m_marginal_relocated r.marginal_relocated;
  Obs.add m_duplicates_rescued r.duplicates_rescued;
  Obs.add m_leaders_rebuilt r.leaders_rebuilt;
  Obs.add m_entries_fixed r.entries_fixed;
  Obs.add m_entries_removed r.entries_removed;
  if r.root_rebuilt then Obs.incr m_roots_rebuilt

let scavenge ?(verify_values = false) ?(suspect_retries = 2) drive =
  if suspect_retries < 1 then invalid_arg "Scavenger: suspect_retries below 1";
  let clock = Drive.clock drive in
  Obs.incr m_runs;
  let result =
    Obs.time clock "scavenger.duration_us" (fun () ->
        scavenge_run ~verify_values ~suspect_retries drive)
  in
  (match result with
  | Ok (_, report) ->
      record_report report;
      Obs.event ~clock
        ~fields:
          [
            ("sectors", Obs.I report.sectors_scanned);
            ("files", Obs.I report.files_found);
            ("pages_lost", Obs.I report.pages_lost);
            ("duration_us", Obs.I report.duration_us);
          ]
        "scavenger.report"
  | Error _ -> Obs.incr m_failed_runs);
  result
