module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address

type sector_class =
  | Live of Label.t
  | Free_sector
  | Marked_bad
  | Bad_media
  | Garbage of string

type t = {
  classes : sector_class array;
  headers_ok : bool array;
  duration_us : int;
}

let classify_sector header label ~pack_id ~index =
  let cls =
    match Label.classify label with
    | Label.Valid l -> Live l
    | Label.Free -> Free_sector
    | Label.Bad -> Marked_bad
    | Label.Garbage msg -> Garbage msg
  in
  let header_ok =
    Word.to_int header.(0) = pack_id
    && Disk_address.equal (Disk_address.of_word header.(1)) (Disk_address.of_index index)
  in
  (cls, header_ok)

let run drive =
  let clock = Drive.clock drive in
  let started = Sim_clock.now_us clock in
  let n = Drive.sector_count drive in
  let classes = Array.make n Free_sector in
  let headers_ok = Array.make n true in
  for i = 0 to n - 1 do
    let addr = Disk_address.of_index i in
    match Page.read_raw drive addr with
    | Error Drive.Bad_sector -> classes.(i) <- Bad_media
    | Error (Drive.Transient _) ->
        (* read_raw goes through the reliable layer, so a transient here
           means retries were exhausted: treat as failing media. *)
        classes.(i) <- Bad_media
    | Error (Drive.Check_mismatch _) ->
        (* read_raw performs no checks. *)
        assert false
    | Ok (header, label) ->
        let cls, header_ok =
          classify_sector header label ~pack_id:(Drive.pack_id drive) ~index:i
        in
        classes.(i) <- cls;
        headers_ok.(i) <- header_ok
  done;
  { classes; headers_ok; duration_us = Sim_clock.now_us clock - started }

let live_count t =
  Array.fold_left
    (fun n c -> match c with Live _ -> n + 1 | Free_sector | Marked_bad | Bad_media | Garbage _ -> n)
    0 t.classes

let pp_class fmt = function
  | Live l -> Format.fprintf fmt "live %a" Label.pp l
  | Free_sector -> Format.pp_print_string fmt "free"
  | Marked_bad -> Format.pp_print_string fmt "marked bad"
  | Bad_media -> Format.pp_print_string fmt "bad media"
  | Garbage msg -> Format.fprintf fmt "garbage (%s)" msg
