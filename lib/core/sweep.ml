module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Sched = Alto_disk.Sched
module Disk_address = Alto_disk.Disk_address

type sector_class =
  | Live of Label.t
  | Free_sector
  | Marked_bad
  | Bad_media
  | Garbage of string

type t = {
  classes : sector_class array;
  headers_ok : bool array;
  duration_us : int;
}

let classify_sector header label ~pack_id ~index =
  let cls =
    match Label.classify label with
    | Label.Valid l -> Live l
    | Label.Free -> Free_sector
    | Label.Bad -> Marked_bad
    | Label.Garbage msg -> Garbage msg
  in
  let header_ok =
    Word.to_int header.(0) = pack_id
    && Disk_address.equal (Disk_address.of_word header.(1)) (Disk_address.of_index index)
  in
  (cls, header_ok)

let run drive =
  let clock = Drive.clock drive in
  let started = Sim_clock.now_us clock in
  let n = Drive.sector_count drive in
  let classes = Array.make n Free_sector in
  let headers_ok = Array.make n true in
  (* The whole pack in one elevator batch: header and label of every
     sector, each through the retry ladder, issued cylinder by cylinder
     from wherever the heads happen to be. *)
  let headers = Array.init n (fun _ -> Array.make Sector.header_words Word.zero) in
  let labels = Array.init n (fun _ -> Array.make Sector.label_words Word.zero) in
  let requests =
    Array.init n (fun i ->
        Sched.request ~header:headers.(i) ~label:labels.(i)
          (Disk_address.of_index i)
          { Drive.op_none with header = Some Drive.Read; label = Some Drive.Read })
  in
  let outcomes = Sched.run_batch drive requests in
  for i = 0 to n - 1 do
    match outcomes.(i).Sched.result with
    | Error Drive.Bad_sector -> classes.(i) <- Bad_media
    | Error (Drive.Transient _) ->
        (* The batch goes through the reliable layer, so a transient here
           means retries were exhausted: treat as failing media. *)
        classes.(i) <- Bad_media
    | Error (Drive.Check_mismatch _) ->
        (* The sweep performs no checks. *)
        assert false
    | Ok () ->
        let cls, header_ok =
          classify_sector headers.(i) labels.(i) ~pack_id:(Drive.pack_id drive)
            ~index:i
        in
        classes.(i) <- cls;
        headers_ok.(i) <- header_ok
  done;
  { classes; headers_ok; duration_us = Sim_clock.now_us clock - started }

let live_count t =
  Array.fold_left
    (fun n c -> match c with Live _ -> n + 1 | Free_sector | Marked_bad | Bad_media | Garbage _ -> n)
    0 t.classes

let pp_class fmt = function
  | Live l -> Format.fprintf fmt "live %a" Label.pp l
  | Free_sector -> Format.pp_print_string fmt "free"
  | Marked_bad -> Format.pp_print_string fmt "marked bad"
  | Bad_media -> Format.pp_print_string fmt "bad media"
  | Garbage msg -> Format.fprintf fmt "garbage (%s)" msg
