(** A small LRU cache of recently {e verified} labels.

    §3.6's hint ladder spends most of its budget re-reading labels it
    checked moments ago: a chain walk reads every link, opening a file
    confirms the leader's last-page hint, and [fs.hints.*.misses] (PR 1)
    showed the same sectors verified over and over. This cache remembers
    the label image a successful check or read just verified, so the
    next label-only access costs nothing.

    Safety is the whole design. An entry is valid only while the drive's
    {!Alto_disk.Drive.label_generation} for its sector still equals the
    generation captured at verification time; the drive bumps that
    counter on every label write (in-band or poke), on the sector being
    marked bad or degrading, and on every transient trip — the retry
    evidence {!Alto_disk.Reliable} acts on. A quarantined or suspect
    sector therefore can never be satisfied from a stale entry: the act
    that made it suspect also killed the entry. {!lookup} detects dead
    entries lazily and counts them as [fs.label_cache.invalidations].

    The cache is consulted and primed by {!Page}; one instance hangs off
    each {!Fs.t} handle. Counters: [fs.label_cache.{hits,misses,
    invalidations}]. *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address

type t

val create : ?capacity:int -> Drive.t -> t
(** An empty cache over one drive; [capacity] (default 128) entries,
    evicting least-recently-used. Raises [Invalid_argument] when
    [capacity < 1]. *)

val drive : t -> Drive.t

val lookup : t -> Disk_address.t -> Word.t array option
(** The verified label image for this sector, or [None] on a miss. A
    stored entry whose generation has moved is removed, counted as an
    invalidation, and reported as a miss. The returned array is a copy —
    mutating it (as a check's wildcard fill does) cannot corrupt the
    cache. *)

val note_verified : t -> Disk_address.t -> Word.t array -> unit
(** Remember a label image the caller has {e just} verified against the
    disk (a successful check, read-back, or completed label write). The
    generation is captured at call time, so any concurrent staleness
    evidence recorded during the verifying operation itself — a
    transient trip absorbed by a retry, say — is already folded in. *)

val invalidate : t -> Disk_address.t -> unit
(** Drop one sector's entry, counting an invalidation if present.
    Generation checking makes this redundant for anything the drive can
    see; it exists for layers above the drive (e.g. {!Fs.quarantine})
    that want the entry gone eagerly. *)

val clear : t -> unit
(** Drop everything — the cure when the world underneath may have been
    swapped wholesale (an inload restoring a saved world's disk state
    relative to which every in-core entry is unvouched-for). *)

val length : t -> int
