module Sim_clock = Alto_machine.Sim_clock
module Obs = Alto_obs.Obs
module Trace = Alto_obs.Trace
module Json = Alto_obs.Json

let file_name = "FlightRecorder.log"
let magic = "altos.flight/1"
let default_capacity = 256

let m_flushes = Obs.counter "fs.flight.flushes"
let m_adoptions = Obs.counter "fs.flight.adoptions"

(* The recorder is machine-wide, like the registry it snapshots. It
   stays disarmed until {!enable} so the raw library layers (and their
   tests) never grow a surprise catalogued file; booting the full
   machine arms it. *)
let armed = ref false
let capacity = ref default_capacity
let ring : Obs.event Queue.t = Queue.create ()
let sink : Obs.sink_id option ref = ref None
let last_adopted : string option ref = ref None

let on_event e =
  Queue.push e ring;
  while Queue.length ring > !capacity do
    ignore (Queue.pop ring)
  done

let enable () =
  armed := true;
  match !sink with
  | Some _ -> ()
  | None -> sink := Some (Obs.add_sink on_event)

let disable () =
  armed := false;
  (match !sink with Some id -> Obs.remove_sink id | None -> ());
  sink := None;
  Queue.clear ring;
  last_adopted := None

let is_enabled () = !armed

let set_capacity n =
  if n <= 0 then invalid_arg "Flight.set_capacity: capacity must be positive";
  capacity := n;
  while Queue.length ring > n do
    ignore (Queue.pop ring)
  done

let field_json = function
  | Obs.I i -> Json.Int i
  | Obs.S s -> Json.String s
  | Obs.B b -> Json.Bool b

let event_json (e : Obs.event) =
  Json.Obj
    [
      ("seq", Json.Int e.Obs.seq);
      ("ts_us", Json.Int e.Obs.ts_us);
      ("name", Json.String e.Obs.name);
      ("fields", Json.Obj (List.map (fun (k, v) -> (k, field_json v)) e.Obs.fields));
    ]

(* Render before writing: the write itself emits events that would
   otherwise mutate the ring mid-serialization. *)
let render ~reason fs =
  let events = List.rev (Queue.fold (fun acc e -> event_json e :: acc) [] ring) in
  Json.to_string
    (Json.Obj
       [
         ("magic", Json.String magic);
         ("sealed_at_us", Json.Int (Sim_clock.now_us (Fs.clock fs)));
         ("reason", Json.String reason);
         ("metrics", Obs.metrics_json ());
         ("events", Json.List events);
         (* The requests in flight (and the last few closed) at the
            moment of sealing: a crash shows {e which conversations}
            were cut short, not just which events preceded it. *)
         ("requests", Trace.flight_json ());
       ])

(* FNV-1a over the payload bytes, version-stable. *)
let fnv64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

(* The sealed record is length-prefixed and checksummed:
   ["altos.flight/1 <bytes> <fnv64hex>\n<json>"]. The seal is itself a
   burst of delayed-then-flushed writes, so a crash mid-seal can leave
   the file holding any page-level mix of the old record and the new —
   adoption must be able to refuse the mix, not parse it. *)
let seal_header payload =
  Printf.sprintf "%s %d %016Lx\n" magic (String.length payload) (fnv64 payload)

let validate_sealed content =
  let nl = String.index_opt content '\n' in
  match nl with
  | None -> None
  | Some nl -> (
      let header = String.sub content 0 nl in
      let payload = String.sub content (nl + 1) (String.length content - nl - 1) in
      match String.split_on_char ' ' header with
      | [ m; len; sum ]
        when m = magic
             && int_of_string_opt len = Some (String.length payload)
             && (try Scanf.sscanf sum "%Lx%!" (fun s -> s) = fnv64 payload
                 with Scanf.Scan_failure _ | Failure _ | End_of_file -> false) ->
          Some payload
      | _ -> None)

let find_file fs =
  match Directory.open_root fs with
  | Error _ -> None
  | Ok root -> (
      match Directory.lookup root file_name with
      | Error _ | Ok None -> None
      | Ok (Some entry) -> (
          match File.open_leader fs entry.Directory.entry_file with
          | Error _ -> None
          | Ok file -> Some file))

let create_file fs =
  match File.create fs ~name:file_name with
  | Error _ -> None
  | Ok file -> (
      match Directory.open_root fs with
      | Error _ -> None
      | Ok root -> (
          match Directory.add root ~name:file_name (File.leader_name file) with
          | Error _ -> None
          | Ok () -> Some file))

(* Best effort end to end: a machine going down must not be stopped by
   its own black box failing to write. *)
let flush ~reason fs =
  if !armed then begin
    let payload = render ~reason fs in
    let content = seal_header payload ^ payload in
    match (match find_file fs with Some f -> Some f | None -> create_file fs) with
    | None -> ()
    | Some file -> (
        match File.write_bytes file ~pos:0 content with
        | Error _ -> ()
        | Ok () -> (
            match File.truncate file ~len:(String.length content) with
            | Error _ -> ()
            | Ok () -> (
                match File.flush_leader file with
                | Error _ -> ()
                | Ok () ->
                    (* The record's writes may sit delayed in the track
                       buffers; a black box that only exists in core is
                       no black box. Push them to the platter now. *)
                    ignore (Bio.flush (Fs.bio fs));
                    Obs.incr m_flushes;
                    Obs.event ~clock:(Fs.clock fs)
                      ~fields:[ ("reason", Obs.S reason); ("bytes", Obs.I (String.length content)) ]
                      "fs.flight.flush")))
  end

let adopt fs =
  match find_file fs with
  | None -> None
  | Some file -> (
      let len = File.byte_length file in
      if len <= 0 then None
      else
        match File.read_bytes file ~pos:0 ~len with
        | Error _ -> None
        | Ok bytes -> (
            let content = Bytes.to_string bytes in
            (* Only a whole record counts: the header's length and
               checksum must cover exactly the bytes that follow, so a
               record torn by a crash mid-seal — truncated, or a
               page-level mix of two seals — reads as "no flight
               record", never as garbage handed to a consumer. *)
            match validate_sealed content with
            | None -> None
            | Some payload ->
                last_adopted := Some payload;
                Obs.incr m_adoptions;
                Obs.event ~clock:(Fs.clock fs)
                  ~fields:[ ("bytes", Obs.I (String.length payload)) ]
                  "fs.flight.adopt";
                Some payload))

let adopted () = !last_adopted
