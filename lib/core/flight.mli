(** The on-pack flight recorder: the machine's black box.

    A bounded {!Obs} sink keeps the newest trace events in core; at each
    consistency point ([quit], OutLoad, scavenge completion) the
    recorder seals them — together with a full metrics snapshot — into
    a catalogued [FlightRecorder.log] file on the pack: a one-line
    header followed by one JSON object:

    {v
    altos.flight/1 <payload bytes> <fnv64 of payload, hex>
    { "magic": "altos.flight/1", "sealed_at_us": …, "reason": "quit",
      "metrics": { … }, "events": [ {"seq": …, "ts_us": …, …}, … ] }
    v}

    After an unsafe shutdown, boot {e adopts} the record before recovery
    overwrites anything: the operator (and [blackbox] in the Executive)
    can read the machine's last recorded moments even though the crash
    itself wrote nothing. A pack without the file mounts exactly as
    before — adoption simply finds nothing.

    The seal is itself a burst of delayed-then-flushed writes, so a
    crash {e during} a seal can leave the file holding any page-level
    mix of the old record and the new. The header's length and checksum
    must cover exactly the bytes that follow; a torn seal therefore
    reads as "no flight record", never as garbage handed to a consumer.

    The recorder is machine-wide and starts disarmed; {!enable} is
    called when the full machine boots. Library-level users of [Fs]
    never see the file appear on its own. Everything it writes derives
    from the simulated clock and the metric registry, so fixed-seed
    runs stay byte-deterministic with the recorder armed. *)

val file_name : string
(** ["FlightRecorder.log"], catalogued in the root directory. *)

val enable : unit -> unit
(** Arm the recorder: register the event sink (idempotent) and allow
    {!flush} to write. *)

val disable : unit -> unit
(** Disarm, remove the sink, drop the buffered events, and forget any
    adopted record — the clean slate the crash harness resets each
    simulated incarnation to. *)

val is_enabled : unit -> bool

val set_capacity : int -> unit
(** Resize the in-core event buffer (default 256 newest events),
    evicting the oldest. Raises [Invalid_argument] when not positive. *)

val flush : reason:string -> Fs.t -> unit
(** Seal the current buffer and metrics into the pack, creating the
    file on first use. Best effort and a no-op while disarmed: a dying
    machine must not be stopped by its own black box. Call {e before}
    {!Fs.mark_clean} — the write dirties the volume. *)

val adopt : Fs.t -> string option
(** Read the record left by the previous incarnation, validate its seal,
    and remember the JSON payload for {!adopted}. Called at boot, before
    recovery runs. Returns [None] on packs without a record and on
    records whose header, length or checksum fail — a seal torn by the
    crash is indistinguishable from no record at all. *)

val adopted : unit -> string option
(** The record adopted at boot, if any — what [blackbox] prints. *)
