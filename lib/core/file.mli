(** Files (§3.2): allocation-level objects built out of pages.

    "A file is a set of pages with absolute names (FV, 0) … (FV, n)." Page
    0 is the leader; data lives in pages 1..n; every page but the last is
    full. The basic operations are exactly the paper's: create an empty
    file, add pages at the end, delete pages from the end, delete the
    whole file — plus the byte-positioned reads and writes the stream
    package is built from.

    A file handle is a bag of hints: the leader address, a cached address
    per page number, the last page's number and length. Every disk access
    is label-checked, so a stale hint can never damage anything; when one
    fails the handle re-derives it by following links from the nearest
    page it still trusts ("it can follow links from that page, still
    avoiding the directory lookup", §3.6). Only when the file itself has
    moved or vanished does an operation give up with [Hint_failed] — at
    which point the caller climbs the rest of the recovery ladder
    ({!Hints}). *)

module Word = Alto_machine.Word
module Disk_address = Alto_disk.Disk_address

type t

type error =
  | Hint_failed
      (** The file could not be reached through any hint this handle
          holds; consult a directory or the scavenger. *)
  | No_such_page of int
      (** The page number is beyond the end of the file. *)
  | Fs_error of Fs.error
  | Structure of string
      (** The file's on-disk structure is inconsistent (scavenger bait). *)

val pp_error : Format.formatter -> error -> unit

val create : Fs.t -> name:string -> (t, error) result
(** A new file: a fresh id, a leader page carrying [name] as its leader
    name, and one empty data page. The file is {e not} entered in any
    directory — "a separate mechanism exists for associating names with
    files" (§3.4). *)

val create_directory_file : Fs.t -> name:string -> (t, error) result
(** As {!create} but with a directory-flagged id, so the scavenger can
    tell the file holds directory entries. *)

val create_with_id : Fs.t -> File_id.t -> name:string -> (t, error) result
(** As {!create} with a caller-chosen id — for system files with
    well-known ids (the scavenger rebuilding a root directory). *)

val open_leader : Fs.t -> Page.full_name -> (t, error) result
(** Open an existing file from the full name of its leader page (as found
    in a directory entry or an installed hint file). *)

val fs : t -> Fs.t
val fid : t -> File_id.t
val leader_name : t -> Page.full_name
val leader : t -> Leader.t
(** The in-core copy of the leader's properties. *)

val last_page : t -> int
val byte_length : t -> int

val page_name : t -> int -> (Page.full_name, error) result
(** Resolve a page number to a full name, through the hint cache or by
    chasing links. *)

val read_page : t -> int -> (Word.t array * int, error) result
(** Value and byte count of data page [pn >= 1]. *)

val read_bytes : t -> pos:int -> len:int -> (Bytes.t, error) result
(** Up to [len] bytes from byte position [pos]; shorter at end of file. *)

(** {2 Planned whole-file reads}

    {!read_bytes} split apart at the disk wait, for callers (the file
    server's activities) that want every data page as one request set on
    the standing elevator queue and the bytes assembled only when the
    shared sweep has completed them. Each planned request is
    label-checked; a refuted or failed page falls back to the ordinary
    one-page path during {!finish_read}. *)

type read_plan

val plan_read : t -> (read_plan option, error) result
(** The label-checked value reads for every data page of this file.
    [None] when the file is empty (nothing to read). *)

val plan_requests : read_plan -> Alto_disk.Sched.request array
(** The requests to submit — outcomes must come back in this order. *)

val finish_read : read_plan -> Alto_disk.Sched.outcome array -> (string, error) result
(** Adopt the outcomes (cache-priming hints and labels exactly as the
    batched read path does), fall back page-wise where a request failed,
    and assemble the file's whole contents. Raises [Invalid_argument]
    when the outcome count does not match the plan. *)

val write_bytes : t -> pos:int -> string -> (unit, error) result
(** Overwrite and/or extend. [pos] may not exceed the current length
    (files have no holes). Growing the last page or adding pages pays
    the label-rewrite revolution the paper describes. *)

val append_bytes : t -> string -> (unit, error) result

val truncate : t -> len:int -> (unit, error) result
(** Delete pages from the end until the file holds [len] bytes. *)

val delete : t -> (unit, error) result
(** Free every page, last to first. The handle is dead afterwards.
    Directory entries pointing at the file become dangling — their
    removal is, again, a separate mechanism. *)

val read_words : t -> pos:int -> len:int -> (Word.t array, error) result
(** Word-granularity IO used by the directory package; [pos] and [len]
    count words. Reads beyond end of file return a shorter array. *)

val write_words : t -> pos:int -> Word.t array -> (unit, error) result

val flush_leader : t -> (unit, error) result
(** Write the in-core leader properties (dates, last-page hint) back to
    page 0. The system calls this when a stream is closed; a crash before
    then costs nothing but hint freshness. *)

val invalidate_hints : t -> unit
(** Forget every cached page address (the leader's stays). Tests and
    experiments use this to force the re-derivation paths. *)

val retain_hints : t -> every:int -> unit
(** Keep only every [k]-th page's address (and the leader's), dropping
    the rest — §3.6: "Hint addresses can also be kept for every k-th
    page of the file to reduce the number of links that must be
    followed." Experiment E4's sweep measures what each density buys.
    Raises [Invalid_argument] when [every < 1]. *)

val hinted_pages : t -> int
(** How many page addresses the handle currently holds — benchmarks
    report hint coverage. *)
